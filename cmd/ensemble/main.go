// Command ensemble runs an N-member perturbed Doksuri ensemble over a shared
// pool of rank groups: initial-condition and physics-parameter perturbations,
// work-stealing (or static) scheduling, per-member resilient supervision with
// retry and quarantine, and graceful degradation under a quorum.
//
//	ensemble -members 4 -groups 2 -quorum 3 \
//	  -member-faults '1=nan@esm.step:1:repeat' -expect-completed 3 -expect-quarantined 1
//
// Exits nonzero when the quorum is missed or when -expect-completed /
// -expect-quarantined are set (≥ 0) and the report disagrees — the form
// scripts/check.sh uses as its degraded-completion lap.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/ensemble"
	"repro/internal/obs"
	"repro/internal/typhoon"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ensemble: ")
	label := flag.String("config", "25v10", "coupled configuration label")
	members := flag.Int("members", 4, "ensemble size (member 0 is the control)")
	groups := flag.Int("groups", 2, "rank groups in the pool")
	groupRanks := flag.Int("group-ranks", 1, "ranks per group (each member world's size)")
	hours := flag.Float64("hours", 1, "simulated hours per member")
	quorum := flag.Int("quorum", 0, "members that must complete (0 = all)")
	attempts := flag.Int("attempts", 3, "scheduler attempts per member before quarantine")
	retries := flag.Int("retries", 3, "in-place rollback retries within one attempt")
	ckEvery := flag.Int("checkpoint-every", 4, "coupling steps between member checkpoints")
	backoff := flag.Duration("backoff", 2*time.Millisecond, "rollback backoff base")
	deadline := flag.Duration("deadline", 0, "wall-clock fence per attempt (0 = off)")
	sched := flag.String("sched", ensemble.SchedSteal, "scheduler: steal or static")
	seed := flag.Int64("seed", 1, "master seed for perturbations and jitter")
	posDeg := flag.Float64("perturb-pos", 0.5, "vortex position perturbation half-width, degrees")
	dpsFrac := flag.Float64("perturb-dps", 0.15, "pressure-deficit perturbation half-width, fraction")
	radFrac := flag.Float64("perturb-radius", 0.10, "vortex radius perturbation half-width, fraction")
	physFrac := flag.Float64("phys-frac", 0.05, "atmos Kh/KhMomentum perturbation half-width, fraction")
	memberFaults := flag.String("member-faults", "", "per-member fault plans, 'idx=spec|idx=spec'")
	dir := flag.String("dir", "", "restart base directory (default: a temp dir)")
	expectCompleted := flag.Int("expect-completed", -1, "fail unless exactly this many members completed")
	expectQuarantined := flag.Int("expect-quarantined", -1, "fail unless exactly this many members quarantined")
	flag.Parse()

	baseDir := *dir
	if baseDir == "" {
		tmp, err := os.MkdirTemp("", "ensemble-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		baseDir = tmp
	}
	faults, err := parseMemberFaults(*memberFaults)
	if err != nil {
		log.Fatal(err)
	}

	cfg := ensemble.Config{
		Label:           *label,
		Members:         *members,
		Groups:          *groups,
		Ranks:           *groupRanks,
		Hours:           *hours,
		Quorum:          *quorum,
		MaxAttempts:     *attempts,
		Retries:         *retries,
		CheckpointEvery: *ckEvery,
		Backoff:         *backoff,
		Deadline:        *deadline,
		Seed:            *seed,
		BaseDir:         baseDir,
		Sched:           *sched,
		Perturb:         typhoon.Perturbation{PosDeg: *posDeg, DeltaPsFrac: *dpsFrac, RadiusFrac: *radFrac},
		PhysFrac:        *physFrac,
		MemberFaults:    faults,
		Obs:             obs.New(0, nil),
	}
	rep, err := ensemble.Run(cfg)
	if rep != nil {
		fmt.Print(rep)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *expectCompleted >= 0 && rep.Completed != *expectCompleted {
		log.Fatalf("expected %d completed members, got %d", *expectCompleted, rep.Completed)
	}
	if *expectQuarantined >= 0 && rep.Quarantined != *expectQuarantined {
		log.Fatalf("expected %d quarantined members, got %d", *expectQuarantined, rep.Quarantined)
	}
}

// parseMemberFaults decodes 'idx=spec|idx=spec'. Only the first '=' splits —
// the spec grammar itself uses '=' (rank=R, delay=D).
func parseMemberFaults(s string) (map[int]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[int]string)
	for _, part := range strings.Split(s, "|") {
		idxStr, spec, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("member fault %q: want idx=spec", part)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil {
			return nil, fmt.Errorf("member fault %q: bad index: %v", part, err)
		}
		out[idx] = spec
	}
	return out, nil
}
