// Command bench4 measures what the ocean + sea-ice 2D decomposition bought:
// the coupled steps/sec of the fully-decomposed dataflow (atmosphere, land,
// ocean, and ice all partitioned) against the fully-replicated baseline at
// 1, 2, 4, 8, and 16 ranks, the ocean halo traffic through the unified
// cpl.halo.* counters, and the steady-state allocation count of the batched
// tripolar exchange. It writes the result as BENCH_4.json next to bench3's
// BENCH_3.json and validates its own output before exiting, including the
// acceptance gates: the coupled speedup at 4 ranks must strictly beat
// BENCH_3's atmosphere-only decomposition speedup, it must keep improving
// from 4 to 8 ranks, and the decomposed dataflow must be strictly faster
// than the replicated one at 8 and 16 ranks.
//
//	bench4 [-config 25v10] [-steps 45] [-schedule seq] [-remap cons] [-out BENCH_4.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pp"
)

// bench3Speedup4 is BENCH_3's recorded 4-rank speedup — the floor the
// coupled decomposition must beat. Overridden by the live BENCH_3.json when
// present.
const bench3Speedup4 = 1.858951737221757

// rankResult is one rank count's replicated-vs-decomposed comparison.
type rankResult struct {
	Ranks int `json:"ranks"`

	ReplicatedStepsPerSec float64 `json:"replicated_steps_per_sec"`
	DecomposedStepsPerSec float64 `json:"decomposed_steps_per_sec"`
	Speedup               float64 `json:"speedup"`
	ReplicatedSYPD        float64 `json:"replicated_sypd"`
	DecomposedSYPD        float64 `json:"decomposed_sypd"`

	// Halo traffic of the decomposed run (rank 0's unified counters).
	OcnHaloMsgs  int64 `json:"ocn_halo_msgs"`
	OcnHaloBytes int64 `json:"ocn_halo_bytes"`
	AtmHaloMsgs  int64 `json:"atm_halo_msgs"`
	AtmHaloBytes int64 `json:"atm_halo_bytes"`
}

// result is the benchmark record scripts/check.sh consumes.
type result struct {
	Name     string `json:"name"`
	Config   string `json:"config"`
	Steps    int    `json:"steps"`
	Backend  string `json:"backend"`
	Schedule string `json:"schedule"`
	Remap    string `json:"remap"`

	Results []rankResult `json:"results"`

	// BENCH_3's 4-rank speedup, the gate floor (the compiled-in constant
	// when BENCH_3.json is absent).
	Bench3Speedup4 float64 `json:"bench3_speedup_4ranks"`

	// Steady-state allocation audit of the batched tripolar halo exchange
	// (2-rank, scalar + vector fields).
	OcnHaloAllocsPerExchange float64 `json:"ocn_halo_allocs_per_exchange"`

	WallSec   float64 `json:"wall_sec"`
	Timestamp string  `json:"timestamp"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench4: ")
	label := flag.String("config", "25v10", "coupled configuration label")
	steps := flag.Int("steps", 45, "coupling steps to time per dataflow")
	schedName := flag.String("schedule", "seq", "component schedule (seq or conc)")
	remapName := flag.String("remap", "cons", "flux remap mode (nn or cons)")
	out := flag.String("out", "BENCH_4.json", "output path")
	flag.Parse()

	cfg, err := core.ConfigForLabel(*label)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := core.ParseSchedule(*schedName)
	if err != nil {
		log.Fatal(err)
	}
	remap, err := core.ParseRemap(*remapName)
	if err != nil {
		log.Fatal(err)
	}
	sp := pp.Serial{}
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)

	wall := time.Now()
	res := result{
		Name:     "ocn-2d-decomposition",
		Config:   cfg.Label,
		Steps:    *steps,
		Backend:  sp.Name(),
		Schedule: sched.String(),
		Remap:    remap.String(),

		Bench3Speedup4:           bench3Speedup4,
		OcnHaloAllocsPerExchange: measureOcnHaloAllocs(),
	}
	if s, err := readBench3Speedup("BENCH_3.json"); err == nil && s > 0 {
		res.Bench3Speedup4 = s
	}
	for _, ranks := range []int{1, 2, 4, 8, 16} {
		rep := runDataflow(cfg, sched, remap, ranks, *steps, false, sp, start)
		dec := runDataflow(cfg, sched, remap, ranks, *steps, true, sp, start)
		rr := rankResult{
			Ranks:                 ranks,
			ReplicatedStepsPerSec: rep.stepsPerSec,
			DecomposedStepsPerSec: dec.stepsPerSec,
			ReplicatedSYPD:        rep.sypd,
			DecomposedSYPD:        dec.sypd,
			OcnHaloMsgs:           dec.ocnHaloMsgs,
			OcnHaloBytes:          dec.ocnHaloBytes,
			AtmHaloMsgs:           dec.atmHaloMsgs,
			AtmHaloBytes:          dec.atmHaloBytes,
		}
		if rep.stepsPerSec > 0 {
			rr.Speedup = dec.stepsPerSec / rep.stepsPerSec
		}
		res.Results = append(res.Results, rr)
	}
	res.WallSec = time.Since(wall).Seconds()
	res.Timestamp = time.Now().UTC().Format(time.RFC3339)

	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := validate(*out); err != nil {
		log.Fatalf("self-validation of %s failed: %v", *out, err)
	}
	for _, rr := range res.Results {
		fmt.Printf("%s ranks=%d: replicated %.2f steps/s, decomposed %.2f steps/s (%.2fx), ocn halo %d msgs / %d bytes\n",
			res.Name, rr.Ranks, rr.ReplicatedStepsPerSec, rr.DecomposedStepsPerSec, rr.Speedup, rr.OcnHaloMsgs, rr.OcnHaloBytes)
	}
	fmt.Printf("tripolar exchange: %.1f allocs/op in steady state -> %s\n", res.OcnHaloAllocsPerExchange, *out)
}

// dataflowRun is one dataflow's measurement.
type dataflowRun struct {
	stepsPerSec  float64
	sypd         float64
	ocnHaloMsgs  int64
	ocnHaloBytes int64
	atmHaloMsgs  int64
	atmHaloBytes int64
}

// runDataflow times `steps` coupling steps of a fresh model with both
// domain decompositions on or off together: decomp=false is the
// no-decomposition baseline (every rank computes every component in full),
// decomp=true the production dataflow. It runs three laps over the same
// model and keeps the fastest — the first lap doubles as warm-up for
// one-time buffer growth, which would otherwise bias the comparison
// against the decomposed dataflow, and best-of-N damps scheduler noise on
// an oversubscribed host — and reports the halo traffic of the last lap,
// the deterministic steady-state volume of `steps` couplings.
func runDataflow(cfg core.Config, sched core.Schedule, remap core.RemapMode, ranks, steps int, decomp bool, sp pp.Space, start time.Time) dataflowRun {
	var r dataflowRun
	par.Run(ranks, func(c *par.Comm) {
		handle := obs.New(c.Rank(), nil)
		e, err := core.NewWithOptions(cfg, c,
			core.WithInterval(start, start.Add(240*time.Hour)),
			core.WithSpace(sp),
			core.WithObserver(handle),
			core.WithSchedule(sched),
			core.WithRemap(remap),
			core.WithAtmDecomp(decomp),
			core.WithOcnDecomp(decomp))
		if err != nil {
			log.Fatal(err)
		}
		reg := handle.Registry()
		counters := func() [4]int64 {
			return [4]int64{
				reg.Counter(obs.Labeled("cpl.halo.msgs", "component", "ocn")).Value(),
				reg.Counter(obs.Labeled("cpl.halo.bytes", "component", "ocn")).Value(),
				reg.Counter(obs.Labeled("cpl.halo.msgs", "component", "atm")).Value(),
				reg.Counter(obs.Labeled("cpl.halo.bytes", "component", "atm")).Value(),
			}
		}
		const laps = 3
		var before [4]int64
		for lap := 0; lap < laps; lap++ {
			if lap == laps-1 {
				before = counters()
			}
			t0 := time.Now()
			sypd, err := e.MeasureSYPD(steps)
			if err != nil {
				log.Fatal(err)
			}
			elapsed := time.Since(t0).Seconds()
			if c.Rank() != 0 || elapsed <= 0 {
				continue
			}
			if sps := float64(steps) / elapsed; sps > r.stepsPerSec {
				r.stepsPerSec, r.sypd = sps, sypd
			}
		}
		if c.Rank() != 0 {
			return
		}
		after := counters()
		r.ocnHaloMsgs = after[0] - before[0]
		r.ocnHaloBytes = after[1] - before[1]
		r.atmHaloMsgs = after[2] - before[2]
		r.atmHaloBytes = after[3] - before[3]
	})
	return r
}

// measureOcnHaloAllocs returns the steady-state heap allocations per batched
// tripolar halo exchange on 2 ranks: rank 0 measures a Mallocs delta while
// rank 1 drives the matching exchanges.
func measureOcnHaloAllocs() float64 {
	const iters = 100
	var allocs float64
	par.Run(2, func(c *par.Comm) {
		g, err := grid.NewTripolar(48, 24, 10)
		if err != nil {
			log.Fatal(err)
		}
		d, err := grid.NewTripolarDecompLayout(g, c, 2, 1, 1)
		if err != nil {
			log.Fatal(err)
		}
		const nlev = 10
		n2 := d.LNI() * d.LNJ()
		fields := []grid.HaloField{
			{Data: make([]float64, nlev*n2), NLev: nlev},
			{Data: make([]float64, nlev*n2), NLev: nlev},
			{Data: make([]float64, nlev*n2), NLev: nlev, Vec: true},
			{Data: make([]float64, nlev*n2), NLev: nlev, Vec: true},
			{Data: make([]float64, n2), NLev: 1},
		}
		step := func() { d.ExchangeFields(fields) }
		step() // warm both parity buffers
		step()
		c.Barrier()
		if c.Rank() == 0 {
			allocs = mallocsPer(iters, step)
		} else {
			for i := 0; i < iters; i++ {
				step()
			}
		}
		c.Barrier()
	})
	return allocs
}

// mallocsPer reports the mean heap allocations of f over iters calls,
// measured with a runtime.MemStats Mallocs delta.
func mallocsPer(iters int, f func()) float64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(iters)
}

// readBench3Speedup pulls the 4-rank speedup out of bench3's record.
func readBench3Speedup(path string) (float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var rec struct {
		Results []struct {
			Ranks   int     `json:"ranks"`
			Speedup float64 `json:"speedup"`
		} `json:"results"`
	}
	if err := json.Unmarshal(b, &rec); err != nil {
		return 0, err
	}
	for _, rr := range rec.Results {
		if rr.Ranks == 4 {
			return rr.Speedup, nil
		}
	}
	return 0, fmt.Errorf("no 4-rank entry in %s", path)
}

// validate re-reads the written record with strict field checking and
// enforces the acceptance gates scripts/check.sh relies on.
func validate(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var rec result
	if err := dec.Decode(&rec); err != nil {
		return err
	}
	switch {
	case rec.Name == "" || rec.Config == "" || rec.Timestamp == "":
		return fmt.Errorf("missing identification fields")
	case rec.Steps < 1:
		return fmt.Errorf("non-positive steps")
	case len(rec.Results) < 5:
		return fmt.Errorf("want rank counts 1, 2, 4, 8, 16; got %d entries", len(rec.Results))
	case rec.OcnHaloAllocsPerExchange != 0:
		return fmt.Errorf("steady-state tripolar exchange allocates (%v allocs/op)", rec.OcnHaloAllocsPerExchange)
	}
	byRanks := map[int]rankResult{}
	for _, rr := range rec.Results {
		if !(rr.ReplicatedStepsPerSec > 0) || !(rr.DecomposedStepsPerSec > 0) {
			return fmt.Errorf("ranks=%d: non-positive steps/sec", rr.Ranks)
		}
		if rr.Ranks > 1 && rr.OcnHaloMsgs == 0 {
			return fmt.Errorf("ranks=%d: decomposed run exchanged no ocean halo messages", rr.Ranks)
		}
		byRanks[rr.Ranks] = rr
	}
	for _, want := range []int{1, 2, 4, 8, 16} {
		if _, ok := byRanks[want]; !ok {
			return fmt.Errorf("missing %d-rank entry", want)
		}
	}
	// Gates 1 and 2 compare timing ratios with single-digit-percent
	// margins, so they only hold statistically over a long enough
	// measurement window; short smoke runs check schema and the
	// structural gates only.
	if rec.Steps >= 30 {
		// Gate 1: the coupled decomposition at 4 ranks beats the
		// atmosphere-only decomposition BENCH_3 recorded there.
		if byRanks[4].Speedup <= rec.Bench3Speedup4 {
			return fmt.Errorf("4-rank speedup %.3f does not beat BENCH_3's %.3f",
				byRanks[4].Speedup, rec.Bench3Speedup4)
		}
		// Gate 2: the speedup keeps improving from 4 to 8 ranks.
		if byRanks[8].Speedup <= byRanks[4].Speedup {
			return fmt.Errorf("speedup not monotone: %.3f at 8 ranks vs %.3f at 4",
				byRanks[8].Speedup, byRanks[4].Speedup)
		}
	}
	// Gate 3: decomposed strictly faster than replicated at 8 and 16 ranks.
	for _, ranks := range []int{8, 16} {
		rr := byRanks[ranks]
		if rr.DecomposedStepsPerSec <= rr.ReplicatedStepsPerSec {
			return fmt.Errorf("ranks=%d: decomposed %.2f steps/s not faster than replicated %.2f",
				ranks, rr.DecomposedStepsPerSec, rr.ReplicatedStepsPerSec)
		}
	}
	return nil
}
