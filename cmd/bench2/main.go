// Command bench2 measures what this round of optimization bought: the
// coupled steps/sec of the concurrent component schedule against the
// sequential one at the bench1 configuration, the steady-state allocation
// counts of the coupling hot path (rearranger and ocean step), and the
// measured atmosphere–ocean overlap fraction. It writes the result as
// BENCH_2.json next to bench1's BENCH_1.json baseline and validates its
// own output file before exiting.
//
//	bench2 [-config 25v10] [-ranks 2] [-steps 45] [-out BENCH_2.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/coupler"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/ocean"
	"repro/internal/par"
	"repro/internal/pp"
)

// result is the benchmark record: one schedule comparison plus the
// hot-path allocation audit.
type result struct {
	Name     string `json:"name"`
	Config   string `json:"config"`
	Ranks    int    `json:"ranks"`
	Steps    int    `json:"steps"`
	Backend  string `json:"backend"`
	Schedule string `json:"schedule"`

	// Schedule comparison at the bench1 configuration.
	SeqStepsPerSec  float64 `json:"seq_steps_per_sec"`
	ConcStepsPerSec float64 `json:"conc_steps_per_sec"`
	Speedup         float64 `json:"speedup"`
	SeqSYPD         float64 `json:"seq_sypd"`
	ConcSYPD        float64 `json:"conc_sypd"`
	OverlapFrac     float64 `json:"overlap_frac"`
	WaitAtmSec      float64 `json:"cpl_wait_atm_sec"`
	WaitOcnSec      float64 `json:"cpl_wait_ocn_sec"`

	// Steady-state allocation audit of the coupling hot path.
	RearrangeAllocsPerCall float64 `json:"rearrange_allocs_per_call"`
	OceanAllocsPerStep     float64 `json:"ocean_allocs_per_step"`

	// bench1 baseline for context (0 when BENCH_1.json is absent).
	BaselineSYPD float64 `json:"baseline_sypd"`

	WallSec   float64 `json:"wall_sec"`
	Timestamp string  `json:"timestamp"`
}

// schedRun is one schedule's measurement.
type schedRun struct {
	stepsPerSec float64
	sypd        float64
	overlap     float64
	waitAtm     time.Duration
	waitOcn     time.Duration
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench2: ")
	label := flag.String("config", "25v10", "coupled configuration label")
	ranks := flag.Int("ranks", 2, "process count")
	steps := flag.Int("steps", 45, "coupling steps to time per schedule")
	out := flag.String("out", "BENCH_2.json", "output path")
	flag.Parse()

	cfg, err := core.ConfigForLabel(*label)
	if err != nil {
		log.Fatal(err)
	}
	sp := pp.NewHost(0)
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)

	wall := time.Now()
	seq := runSchedule(cfg, core.ScheduleSeq, *ranks, *steps, sp, start)
	conc := runSchedule(cfg, core.ScheduleConc, *ranks, *steps, sp, start)
	rearrAllocs := measureRearrangeAllocs()
	ocnAllocs := measureOceanAllocs()

	res := result{
		Name:     "schedule-overlap",
		Config:   cfg.Label,
		Ranks:    *ranks,
		Steps:    *steps,
		Backend:  sp.Name(),
		Schedule: "seq-vs-conc",

		SeqStepsPerSec:  seq.stepsPerSec,
		ConcStepsPerSec: conc.stepsPerSec,
		SeqSYPD:         seq.sypd,
		ConcSYPD:        conc.sypd,
		OverlapFrac:     conc.overlap,
		WaitAtmSec:      conc.waitAtm.Seconds(),
		WaitOcnSec:      conc.waitOcn.Seconds(),

		RearrangeAllocsPerCall: rearrAllocs,
		OceanAllocsPerStep:     ocnAllocs,

		WallSec:   time.Since(wall).Seconds(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	if seq.stepsPerSec > 0 {
		res.Speedup = conc.stepsPerSec / seq.stepsPerSec
	}
	if base, err := readBaselineSYPD("BENCH_1.json"); err == nil {
		res.BaselineSYPD = base
	}

	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := validate(*out); err != nil {
		log.Fatalf("self-validation of %s failed: %v", *out, err)
	}
	fmt.Printf("%s: seq %.2f steps/s, conc %.2f steps/s (%.2fx), overlap %.2f, rearrange %.1f allocs/call, ocean %.1f allocs/step -> %s\n",
		res.Name, res.SeqStepsPerSec, res.ConcStepsPerSec, res.Speedup,
		res.OverlapFrac, res.RearrangeAllocsPerCall, res.OceanAllocsPerStep, *out)
}

// runSchedule times `steps` coupling steps of a fresh model under the
// given schedule and collects the overlap instrumentation.
func runSchedule(cfg core.Config, sched core.Schedule, ranks, steps int, sp pp.Space, start time.Time) schedRun {
	var r schedRun
	par.Run(ranks, func(c *par.Comm) {
		handle := obs.New(c.Rank(), nil)
		e, err := core.NewWithOptions(cfg, c,
			core.WithInterval(start, start.Add(24*time.Hour)),
			core.WithSpace(sp),
			core.WithObserver(handle),
			core.WithSchedule(sched))
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		sypd, err := e.MeasureSYPD(steps)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0).Seconds()
		if c.Rank() != 0 {
			return
		}
		r.sypd = sypd
		if elapsed > 0 {
			r.stepsPerSec = float64(steps) / elapsed
		}
		r.overlap = e.OverlapFraction()
		r.waitAtm, _ = handle.Section("cpl.wait.atm")
		r.waitOcn, _ = handle.Section("cpl.wait.ocn")
	})
	return r
}

// measureRearrangeAllocs returns the steady-state heap allocations per
// RearrangeInto call (P2P mode, single rank) via a Mallocs delta.
func measureRearrangeAllocs() float64 {
	const n, iters = 512, 200
	var allocs float64
	par.Run(1, func(c *par.Comm) {
		src, err := coupler.OfflineGSMap(func(gi int) int { return 0 }, n, 1)
		if err != nil {
			log.Fatal(err)
		}
		r, err := coupler.BuildRouter(c, src, src)
		if err != nil {
			log.Fatal(err)
		}
		sv, _ := coupler.NewAttrVect([]string{"t", "s"}, n)
		dv, _ := coupler.NewAttrVect([]string{"t", "s"}, n)
		// Warm call grows the persistent buffers.
		if err := coupler.RearrangeInto(c, r, sv, dv, coupler.ModeP2P, nil); err != nil {
			log.Fatal(err)
		}
		allocs = mallocsPer(iters, func() {
			if err := coupler.RearrangeInto(c, r, sv, dv, coupler.ModeP2P, nil); err != nil {
				log.Fatal(err)
			}
		})
	})
	return allocs
}

// measureOceanAllocs returns the steady-state heap allocations per ocean
// step on a single rank.
func measureOceanAllocs() float64 {
	var allocs float64
	par.Run(1, func(c *par.Comm) {
		g, err := grid.NewTripolar(24, 12, 4)
		if err != nil {
			log.Fatal(err)
		}
		b, err := grid.NewTripolarReplicated(g, c, 1)
		if err != nil {
			log.Fatal(err)
		}
		o, err := ocean.New(g, b, ocean.DefaultConfig(), pp.Serial{})
		if err != nil {
			log.Fatal(err)
		}
		o.Step()
		o.Step()
		allocs = mallocsPer(20, o.Step)
	})
	return allocs
}

// mallocsPer reports the mean heap allocations of f over iters calls,
// measured with a runtime.MemStats Mallocs delta.
func mallocsPer(iters int, f func()) float64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(iters)
}

// readBaselineSYPD pulls the sypd field out of bench1's record.
func readBaselineSYPD(path string) (float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var rec struct {
		SYPD float64 `json:"sypd"`
	}
	if err := json.Unmarshal(b, &rec); err != nil {
		return 0, err
	}
	return rec.SYPD, nil
}

// validate re-reads the written record with strict field checking and
// sanity-checks the values — the schema contract scripts/check.sh relies
// on.
func validate(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var rec result
	if err := dec.Decode(&rec); err != nil {
		return err
	}
	switch {
	case rec.Name == "" || rec.Config == "" || rec.Timestamp == "":
		return fmt.Errorf("missing identification fields")
	case rec.Ranks < 1 || rec.Steps < 1:
		return fmt.Errorf("non-positive ranks/steps")
	case !(rec.SeqStepsPerSec > 0) || !(rec.ConcStepsPerSec > 0):
		return fmt.Errorf("non-positive steps/sec")
	case math.IsNaN(rec.Speedup) || rec.Speedup <= 0:
		return fmt.Errorf("invalid speedup %v", rec.Speedup)
	case rec.OverlapFrac < 0 || rec.OverlapFrac > 1:
		return fmt.Errorf("overlap fraction %v outside [0,1]", rec.OverlapFrac)
	case rec.RearrangeAllocsPerCall != 0:
		return fmt.Errorf("steady-state rearrange allocates (%v allocs/call)", rec.RearrangeAllocsPerCall)
	case rec.OceanAllocsPerStep != 0:
		return fmt.Errorf("steady-state ocean step allocates (%v allocs/step)", rec.OceanAllocsPerStep)
	}
	return nil
}
