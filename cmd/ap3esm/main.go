// Command ap3esm runs the coupled model at one of the Table 1
// configurations (scale-mapped to runnable grids) and reports diagnostics
// and the measured SYPD.
//
//	ap3esm -config 25v10 -days 1 -ranks 2 -backend Host -mixed -schedule conc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pp"
	"repro/internal/precision"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ap3esm: ")
	label := flag.String("config", "25v10", "coupled configuration label (1v1, 3v2, 6v3, 10v5, 25v10)")
	days := flag.Float64("days", 1, "simulated days to run")
	ranks := flag.Int("ranks", 1, "process count (both the atmosphere/land and ocean/ice domains decompose over it)")
	backend := flag.String("backend", "Serial", "execution space: Serial, Host, CPE")
	mixed := flag.Bool("mixed", false, "run the dynamical cores in FP64/FP32 group-scaled mixed precision")
	obsSpec := flag.String("obs", "off", "observability sink: off, mem, jsonl:PATH, prom:ADDR")
	faults := flag.String("faults", "", "fault plan, e.g. 'io-error@pario.write:2;nan@esm.step:21' (see internal/fault)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault plan's RNG (bit/tear placement)")
	ckEvery := flag.Int("checkpoint-every", 0, "checkpoint every N coupling steps and auto-recover from faults (0 = off)")
	ckDir := flag.String("restart-dir", "restart", "restart-set directory for -checkpoint-every")
	maxRetries := flag.Int("max-retries", 3, "consecutive failed recoveries before giving up")
	schedName := flag.String("schedule", "seq", "component schedule: seq (sequential groups) or conc (overlapped ocean/atmosphere)")
	atmDecomp := flag.Bool("atm-decomp", true, "domain-decompose the atmosphere and land across ranks (false = replicated baseline dataflow)")
	ocnDecomp := flag.Bool("ocn-decomp", true, "domain-decompose the ocean and sea ice across ranks (false = replicated baseline dataflow)")
	remapName := flag.String("remap", "nn", "air-sea flux remap: nn (nearest-neighbour) or cons (first-order conservative)")
	audit := flag.Bool("audit", false, "record the per-coupling-interval conservation budget and print the ledger report")
	auditGate := flag.Float64("audit-gate", 0, "fail if the max relative heat/freshwater residual exceeds this (0 = report only; implies -audit)")
	wireName := flag.String("wire", "f64", "halo/rearranger wire format: f64 (exact) or gs32 (group-scaled FP32 compression)")
	kprecName := flag.String("kprec", "f64", "kernel precision: f64 (bit-for-bit) or mixed (float32 vectorized kernels, float64 accumulations)")
	flag.Parse()

	cfg, err := core.ConfigForLabel(*label)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := core.ParseSchedule(*schedName)
	if err != nil {
		log.Fatal(err)
	}
	remap, err := core.ParseRemap(*remapName)
	if err != nil {
		log.Fatal(err)
	}
	wire, err := par.ParseWireFormat(*wireName)
	if err != nil {
		log.Fatal(err)
	}
	kprec, err := pp.ParsePrec(*kprecName)
	if err != nil {
		log.Fatal(err)
	}
	if *auditGate > 0 {
		*audit = true
	}
	if *mixed {
		cfg.Policy = precision.Mixed
	}
	sp, err := pp.DefaultSpace(*backend)
	if err != nil {
		log.Fatal(err)
	}

	sink, err := obs.OpenSink(*obsSpec)
	if err != nil {
		log.Fatal(err)
	}
	if ps, ok := sink.(*obs.PromSink); ok && ps.Addr() != "" {
		fmt.Printf("serving metrics at http://%s/metrics\n", ps.Addr())
	}

	plan, err := fault.Parse(*faults, *faultSeed)
	if err != nil {
		log.Fatal(err)
	}
	if plan != nil {
		fault.Arm(plan)
		defer fault.Disarm()
		fmt.Printf("armed fault plan: %s\n", plan)
	}

	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	stop := start.Add(time.Duration(*days*24) * time.Hour)

	fmt.Printf("AP3ESM %s (stands for %d km atm / %d km ocn): atm icos level %d, ocean %dx%dx%d, %d ranks, %s backend, %v, %s schedule, %s kernels\n",
		cfg.Label, cfg.PaperAtmKm, cfg.PaperOcnKm, cfg.AtmLevel,
		cfg.OcnNX, cfg.OcnNY, cfg.OcnNLev, *ranks, sp.Name(), cfg.Policy, sched, kprec)

	par.Run(*ranks, func(c *par.Comm) {
		var observer obs.Observer = obs.Nop{}
		var handle *obs.Obs
		if sink != nil {
			handle = obs.New(c.Rank(), sink)
			observer = handle
		}
		if plan != nil && c.Rank() == 0 && handle != nil {
			plan.SetObserver(handle) // fault.injected.* counters on rank 0's stream
		}
		mk := func() (*core.ESM, error) {
			return core.NewWithOptions(cfg, c,
				core.WithInterval(start, stop),
				core.WithSpace(sp),
				core.WithObserver(observer),
				core.WithSchedule(sched),
				core.WithRemap(remap),
				core.WithAudit(*audit),
				core.WithAtmDecomp(*atmDecomp),
				core.WithOcnDecomp(*ocnDecomp),
				core.WithWireCompression(wire),
				core.WithKernelPrecision(kprec))
		}
		e, err := mk()
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Now()
		daysRun := 0.0
		if *ckEvery > 0 {
			// Resilient path: the supervisor checkpoints every N coupling
			// steps and rolls back on health or checkpoint failures.
			var rep *core.ResilientReport
			e, rep, err = core.RunResilient(mk, core.ResilientConfig{
				Days: *days, CheckpointEvery: *ckEvery, MaxRetries: *maxRetries,
				Dir: *ckDir, NGroups: 1,
			})
			if c.Rank() == 0 {
				for _, ev := range rep.Recoveries {
					fmt.Printf("  recovery: step %d (%s), attempt %d, resumed from step %d\n",
						ev.Step, ev.Reason, ev.Attempt, ev.Resumed)
				}
			}
			if err != nil {
				log.Fatal(err)
			}
			daysRun = e.SimulatedSeconds() / 86400
		} else {
			for e.Step() {
				daysRun = e.SimulatedSeconds() / 86400
				if e.CouplingSteps()%45 == 0 {
					// Every diagnostic reduces across ranks — the atmosphere
					// scans are owned-range only under the decomposition — so
					// every rank computes them; rank 0 prints.
					maxWind := c.Allreduce(e.Atm.MaxWindLocal(), par.OpMax)
					minPs := c.Allreduce(e.Atm.MinPsLocal(), par.OpMin)
					ke := e.Ocn.SurfaceKineticEnergy()
					iceArea := e.Ice.IceArea()
					if c.Rank() == 0 {
						fmt.Printf("  t=%5.2f d  atm max wind %5.1f m/s  min ps %7.0f Pa  ocean KE %.2e  ice area %.3g m2\n",
							daysRun, maxWind, minPs, ke, iceArea)
					}
				}
			}
		}
		if c.Rank() == 0 {
			elapsed := time.Since(wall).Seconds()
			sypd := (e.SimulatedSeconds() / elapsed) * 86400 / (365 * 86400)
			fmt.Printf("completed %.2f simulated days in %.1f s wall -> %.2f SYPD (miniature configuration)\n",
				daysRun, elapsed, sypd)
		}
		if l := e.Budget(); l != nil {
			// The ledger terms are identical on every rank (the audit
			// allreduces all partials, owned-range or replicated): rank 0
			// reports, every rank agrees on the gate verdict.
			s := l.Summary()
			if c.Rank() == 0 {
				fmt.Printf("conservation budget (%s remap):\n%s", remap, l.Report())
			}
			if g := *auditGate; g > 0 && (s.MaxHeatResid > g || s.MaxFWResid > g) {
				log.Fatalf("budget gate: max residual heat %.3e / fw %.3e exceeds %.1e",
					s.MaxHeatResid, s.MaxFWResid, g)
			}
		}
		if sink != nil {
			rows := e.TimingReport() // collective: every rank participates
			if c.Rank() == 0 {
				fmt.Print(core.FormatTiming(rows))
			}
			handle.FlushMetrics()
		}
	})

	if sink != nil {
		if ps, ok := sink.(*obs.PromSink); ok {
			ps.Render(os.Stdout) // final exposition for batch runs
		}
		if err := sink.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
