// Command bench1 measures the SYPD of the quickstart configuration (25v10,
// two ranks, Host space, six simulated hours) and writes the result as
// BENCH_1.json — the short repeatable benchmark the check script runs so the
// performance trajectory of the reproduction is recorded alongside its
// tests.
//
//	bench1 [-config 25v10] [-ranks 2] [-steps 45] [-out BENCH_1.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pp"
)

// result is the benchmark record. Fields mirror what the paper's Table 4
// rows report: the configuration, the resource count, and the achieved
// simulation speed.
type result struct {
	Name      string  `json:"name"`
	Config    string  `json:"config"`
	Ranks     int     `json:"ranks"`
	Steps     int     `json:"steps"`
	Backend   string  `json:"backend"`
	SYPD      float64 `json:"sypd"`
	WallSec   float64 `json:"wall_sec"`
	AtmSec    float64 `json:"atm_sec"`
	OcnSec    float64 `json:"ocn_sec"`
	Timestamp string  `json:"timestamp"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench1: ")
	label := flag.String("config", "25v10", "coupled configuration label")
	ranks := flag.Int("ranks", 2, "process count")
	steps := flag.Int("steps", 45, "coupling steps to time (45 = six simulated hours)")
	out := flag.String("out", "BENCH_1.json", "output path")
	flag.Parse()

	cfg, err := core.ConfigForLabel(*label)
	if err != nil {
		log.Fatal(err)
	}
	sp := pp.NewHost(0)
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)

	var res result
	wall := time.Now()
	par.Run(*ranks, func(c *par.Comm) {
		e, err := core.NewWithOptions(cfg, c,
			core.WithInterval(start, start.Add(24*time.Hour)),
			core.WithSpace(sp),
			core.WithObserver(obs.New(c.Rank(), nil)))
		if err != nil {
			log.Fatal(err)
		}
		sypd, err := e.MeasureSYPD(*steps)
		if err != nil {
			log.Fatal(err)
		}
		rows := e.TimingReport() // collective
		if c.Rank() != 0 {
			return
		}
		res = result{
			Name:    "quickstart-sypd",
			Config:  cfg.Label,
			Ranks:   *ranks,
			Steps:   *steps,
			Backend: sp.Name(),
			SYPD:    sypd,
		}
		for _, r := range rows {
			switch r.Section {
			case "atm":
				res.AtmSec = r.MaxWall.Seconds()
			case "ocn":
				res.OcnSec = r.MaxWall.Seconds()
			}
		}
	})
	res.WallSec = time.Since(wall).Seconds()
	res.Timestamp = time.Now().UTC().Format(time.RFC3339)

	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.2f SYPD (%s, %d ranks, %d steps, %.1f s wall) -> %s\n",
		res.Name, res.SYPD, res.Config, res.Ranks, res.Steps, res.WallSec, *out)
}
