// Command doksuri runs the Super Typhoon Doksuri forecast experiment
// (§7.1, Figs 1, 6, 7): it seeds the Holland vortex at the best track's
// genesis position in the coupled model, integrates, tracks the storm, and
// prints the simulated track against the bundled CMA-style best track plus
// the Fig 6 structure diagnostics.
//
//	doksuri -config 10v5 -hours 24 -track
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/pp"
	"repro/internal/typhoon"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doksuri: ")
	label := flag.String("config", "10v5", "coupled configuration label")
	hours := flag.Int("hours", 24, "forecast length in simulated hours")
	track := flag.Bool("track", true, "print the track comparison (Fig 7)")
	backend := flag.String("backend", "Host", "execution space: Serial, Host, CPE")
	out := flag.String("out", "", "write a Fig 1-style surface snapshot (pario binary) to this path at the end")
	flag.Parse()

	cfg, err := core.ConfigForLabel(*label)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := pp.DefaultSpace(*backend)
	if err != nil {
		log.Fatal(err)
	}
	best := typhoon.BestTrackDoksuri()
	start := best[0].Time
	stop := start.Add(time.Duration(*hours+1) * time.Hour)

	par.Run(1, func(c *par.Comm) {
		e, err := core.New(cfg, c, start, stop, sp)
		if err != nil {
			log.Fatal(err)
		}
		seed := typhoon.DoksuriSeed()
		if err := typhoon.Seed(e.Atm, seed); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("seeded Doksuri at (%.1fE, %.1fN), deficit %.0f Pa, RMW %.0f km; config %s\n",
			seed.LonDeg, seed.LatDeg, seed.DeltaPs, seed.RadiusKm, cfg.Label)

		stepsPerHour := cfg.AtmCouplingsPerDay / 24 * 1 // 180/day = 7.5/h; use coupling steps
		_ = stepsPerHour
		prev := typhoon.Fix{Time: start, LonDeg: seed.LonDeg, LatDeg: seed.LatDeg}
		var fixes []typhoon.Fix
		perHour := float64(cfg.AtmCouplingsPerDay) / 24
		for h := 6; h <= *hours; h += 6 {
			target := int(math.Round(float64(h) * perHour))
			for e.CouplingSteps() < target {
				if !e.Step() {
					log.Fatal("clock exhausted")
				}
			}
			fix, err := typhoon.FindCenterNear(e.Atm, start.Add(time.Duration(h)*time.Hour), prev, 1500, 800)
			if err != nil {
				log.Fatal(err)
			}
			fixes = append(fixes, fix)
			prev = fix
			fmt.Printf("  +%3dh  centre (%6.1fE, %5.1fN)  min ps %7.0f Pa  max wind %5.1f m/s\n",
				h, fix.LonDeg, fix.LatDeg, fix.PressPa, fix.WindMS)
		}

		// Fig 6 structure diagnostics.
		last := fixes[len(fixes)-1]
		rmw := typhoon.RadiusOfMaxWind(e.Atm, last, 900)
		u, v := e.Atm.Wind10m()
		speed := make([]float64, len(u))
		for i := range u {
			speed[i] = math.Hypot(u[i], v[i])
		}
		fsv := typhoon.FineScaleVariance(e.Atm.Mesh, speed)
		ro := e.Ocn.SurfaceRossby()
		var roMax float64
		for _, r := range ro {
			if a := math.Abs(r); a > roMax {
				roMax = a
			}
		}
		fmt.Printf("structure: radius of max wind %.0f km, fine-scale wind variance %.3g, peak |Rossby| %.3g\n",
			rmw, fsv, roMax)

		if *out != "" {
			if err := e.WriteSnapshot(*out); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote surface snapshot (sst, kinetic energy, Rossby number, ice, ps, wind, precip, cloud) to %s\n", *out)
		}

		if *track {
			fmt.Println("track vs CMA-style best track:")
			for _, p := range best {
				fmt.Printf("  best %s  (%6.1fE, %5.1fN)  %4.0f m/s  %6.0f Pa\n",
					p.Time.Format("2006-01-02 15Z"), p.LonDeg, p.LatDeg, p.WindMS, p.PressPa)
			}
			errKm, err := typhoon.TrackError(fixes, best)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("mean track error over the forecast: %.0f km\n", errKm)
		}
	})
}
