// Command bench7 measures the forecast-state serving layer: it builds a
// quantized snapshot archive from a coupled run, storms the query API with
// concurrent point lookups over HTTP, cross-checks the staged nearest-analog
// pipeline against the brute-force float64 reference, and times the live
// ingest hook against an identical run without it. It writes the result as
// BENCH_7.json and validates its own output before exiting, including the
// acceptance gates: at least 1000 point queries/sec, exact analog top-k
// agreement, and at most 2% step-time regression from live ingest.
//
//	bench7 [-config 25v10] [-steps 36] [-snapshots 48] [-clients 8] [-queries 4000] [-out BENCH_7.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/pp"
	"repro/internal/statestore"
)

// ingestTolerance is the allowed live-ingest step-time regression: the
// ingesting run must hold at least this fraction of the baseline
// throughput. The hook's cost is a collective gather per checkpoint plus a
// non-blocking channel send; persistence happens on a side goroutine.
const ingestTolerance = 0.98

// minPointQPS is the concurrent point-query throughput floor. Point decode
// touches 12 bytes of one group, so even the HTTP round trip leaves orders
// of magnitude of headroom over this gate.
const minPointQPS = 1000

// result is the benchmark record scripts/check.sh consumes.
type result struct {
	Name   string `json:"name"`
	Config string `json:"config"`

	// Archive build (phase A).
	Snapshots   int   `json:"snapshots"`
	FieldCells  int   `json:"field_cells"`  // elements across the schema
	RawBytes    int64 `json:"raw_bytes"`    // float64 volume offered
	StoredBytes int64 `json:"stored_bytes"` // quantized volume on disk

	// Concurrent query storm over HTTP (phase B).
	Clients      int     `json:"clients"`
	PointQueries int     `json:"point_queries"`
	PointQPS     float64 `json:"point_qps"`

	// Nearest-analog exactness (phase C).
	AnalogChecks int  `json:"analog_checks"`
	AnalogExact  bool `json:"analog_exact"`

	// Live-ingest overhead (phase D): best-of-3 resilient runs each way.
	Steps           int     `json:"steps"`
	BaselineStepsPS float64 `json:"baseline_steps_per_sec"`
	IngestStepsPS   float64 `json:"ingest_steps_per_sec"`
	IngestRatio     float64 `json:"ingest_ratio"`
	IngestSnapshots int     `json:"ingest_snapshots"`
	IngestDropped   int64   `json:"ingest_dropped"`

	WallSec   float64 `json:"wall_sec"`
	Timestamp string  `json:"timestamp"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench7: ")
	label := flag.String("config", "25v10", "coupled configuration label")
	steps := flag.Int("steps", 36, "coupling steps per live-ingest lap")
	snapshots := flag.Int("snapshots", 48, "archive snapshots to build for the query phases")
	clients := flag.Int("clients", 8, "concurrent query clients")
	queries := flag.Int("queries", 4000, "total point queries for the storm")
	out := flag.String("out", "BENCH_7.json", "output path")
	flag.Parse()

	cfg, err := core.ConfigForLabel(*label)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Now()
	res := result{Name: "forecast-serving", Config: cfg.Label, Clients: *clients, Steps: *steps}

	dir, err := os.MkdirTemp("", "bench7-store-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	buildArchive(cfg, dir, *snapshots, &res)
	st, err := statestore.Open(dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	queryStorm(st, *clients, *queries, &res)
	analogCheck(st, &res)
	liveIngest(cfg, *steps, &res)

	res.WallSec = time.Since(wall).Seconds()
	res.Timestamp = time.Now().UTC().Format(time.RFC3339)

	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := validate(*out); err != nil {
		log.Fatalf("self-validation of %s failed: %v", *out, err)
	}
	fmt.Printf("%s: %d snapshots (%.2fx compressed), %.0f point q/s over %d clients, analogs exact=%v, ingest ratio %.3f\n",
		res.Name, res.Snapshots, float64(res.RawBytes)/float64(res.StoredBytes),
		res.PointQPS, res.Clients, res.AnalogExact, res.IngestRatio)
	fmt.Printf("wrote %s\n", *out)
}

// buildArchive steps a 1-rank coupled model and appends one snapshot per
// coupling step until the archive holds n snapshots.
func buildArchive(cfg core.Config, dir string, n int, res *result) {
	w, err := statestore.Create(dir, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	par.Run(1, func(c *par.Comm) {
		e, err := core.NewWithOptions(cfg, c,
			core.WithInterval(start, start.Add(240*time.Hour)),
			core.WithSpace(pp.Serial{}))
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if !e.Step() {
				log.Fatalf("model stopped after %d steps", i)
			}
			snap, ok := e.CaptureServeSnapshot()
			if !ok {
				log.Fatal("rank 0 capture returned ok=false")
			}
			for _, f := range snap.Fields {
				res.RawBytes += int64(8 * len(f.Data))
				if i == 0 {
					res.FieldCells += len(f.Data)
				}
			}
			if err := w.Append(snap); err != nil {
				log.Fatal(err)
			}
		}
	})
	res.Snapshots = w.Snapshots()
	fi, err := os.Stat(filepath.Join(dir, statestore.DataFile))
	if err != nil {
		log.Fatal(err)
	}
	res.StoredBytes = fi.Size()
}

// queryStorm serves the archive over HTTP and hammers /v1/point with
// concurrent clients, each walking a deterministic snap/cell sequence.
func queryStorm(st *statestore.Store, clients, queries int, res *result) {
	srv, err := statestore.NewServer(st, "127.0.0.1:0", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	nSnaps := st.Snapshots()
	cells := 0
	for _, f := range st.Fields() {
		if f.Name == statestore.PsField {
			cells = f.Elems
		}
	}
	perClient := queries / clients
	var done, failed atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for q := 0; q < perClient; q++ {
				snap := (cl*131 + q*7) % nSnaps
				cell := (cl*17 + q*13) % cells
				url := fmt.Sprintf("%s/v1/point?field=%s&cell=%d&snap=%d", base, statestore.PsField, cell, snap)
				resp, err := http.Get(url)
				if err != nil || resp.StatusCode != http.StatusOK {
					failed.Add(1)
					if resp != nil {
						resp.Body.Close()
					}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				done.Add(1)
			}
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	if failed.Load() > 0 {
		log.Fatalf("%d of %d point queries failed", failed.Load(), queries)
	}
	res.PointQueries = int(done.Load())
	if elapsed > 0 {
		res.PointQPS = float64(done.Load()) / elapsed
	}
}

// analogCheck compares the staged analog pipeline with the brute-force
// float64 reference for several query snapshots and k values: top-k must
// match exactly — same snapshots, bit-identical distances.
func analogCheck(st *statestore.Store, res *result) {
	res.AnalogExact = true
	for _, snap := range []int{0, st.Snapshots() / 2, st.Snapshots() - 1} {
		q, err := st.DecodeField(snap, statestore.PsField)
		if err != nil {
			log.Fatal(err)
		}
		for _, k := range []int{1, 5, st.Snapshots()} {
			got, err := st.NearestAnalogs(statestore.PsField, q, k, 4)
			if err != nil {
				log.Fatal(err)
			}
			want, err := st.BruteForceAnalogs(statestore.PsField, q, k)
			if err != nil {
				log.Fatal(err)
			}
			res.AnalogChecks++
			if len(got) != len(want) {
				res.AnalogExact = false
				continue
			}
			for i := range got {
				if got[i].Snap != want[i].Snap || got[i].Dist != want[i].Dist {
					res.AnalogExact = false
				}
			}
		}
	}
}

// liveIngest times best-of-3 resilient runs with the capture hook ingesting
// into a fresh store against best-of-3 identical runs without it.
func liveIngest(cfg core.Config, steps int, res *result) {
	days := float64(steps) / float64(cfg.AtmCouplingsPerDay)
	ckEvery := steps / 4
	if ckEvery < 1 {
		ckEvery = 1
	}
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	lap := func(hook func(e *core.ESM), ckDir string) float64 {
		var sps float64
		par.Run(1, func(c *par.Comm) {
			mk := func() (*core.ESM, error) {
				return core.NewWithOptions(cfg, c,
					core.WithInterval(start, start.Add(240*time.Hour)),
					core.WithSpace(pp.Serial{}))
			}
			t0 := time.Now()
			_, rep, err := core.RunResilient(mk, core.ResilientConfig{
				Days: days, CheckpointEvery: ckEvery, MaxRetries: 3,
				Dir: ckDir, OnCheckpoint: hook,
			})
			if err != nil {
				log.Fatal(err)
			}
			if elapsed := time.Since(t0).Seconds(); elapsed > 0 {
				sps = float64(rep.Steps) / elapsed
			}
		})
		return sps
	}
	// Interleave the arms — baseline, ingest, baseline, ... — so slow
	// scheduler or thermal drift hits both equally, and take the best lap of
	// each; a GC between laps keeps one arm's garbage off the other's clock.
	const laps = 5
	tmp, err := os.MkdirTemp("", "bench7-live-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	for i := 0; i < laps; i++ {
		runtime.GC()
		ckDir := filepath.Join(tmp, fmt.Sprintf("ck-base-%d", i))
		if sps := lap(nil, ckDir); sps > res.BaselineStepsPS {
			res.BaselineStepsPS = sps
		}

		runtime.GC()
		storeDir := filepath.Join(tmp, fmt.Sprintf("store-%d", i))
		w, err := statestore.Create(storeDir, 0, nil)
		if err != nil {
			log.Fatal(err)
		}
		in := statestore.NewIngester(w, 4, nil)
		sps := lap(core.ServeCaptureHook(in), filepath.Join(tmp, fmt.Sprintf("ck-ingest-%d", i)))
		if err := in.Close(); err != nil {
			log.Fatal(err)
		}
		if sps > res.IngestStepsPS {
			res.IngestStepsPS = sps
			res.IngestSnapshots = w.Snapshots()
			res.IngestDropped = in.Dropped()
		}
		w.Close()
	}
	if res.BaselineStepsPS > 0 {
		res.IngestRatio = res.IngestStepsPS / res.BaselineStepsPS
	}
}

// validate re-reads the written record with strict field checking and
// enforces the acceptance gates scripts/check.sh relies on.
func validate(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var rec result
	if err := dec.Decode(&rec); err != nil {
		return err
	}
	switch {
	case rec.Name == "" || rec.Config == "" || rec.Timestamp == "":
		return fmt.Errorf("missing identification fields")
	case rec.Snapshots < 2 || rec.FieldCells < 1:
		return fmt.Errorf("archive too small: %d snapshots, %d cells", rec.Snapshots, rec.FieldCells)
	case rec.StoredBytes <= 0 || rec.RawBytes <= rec.StoredBytes:
		return fmt.Errorf("quantized store (%d B) not smaller than raw (%d B)", rec.StoredBytes, rec.RawBytes)
	case rec.PointQueries < 1:
		return fmt.Errorf("no point queries completed")
	case rec.AnalogChecks < 9:
		return fmt.Errorf("only %d analog cross-checks ran", rec.AnalogChecks)
	case rec.IngestSnapshots < 1:
		return fmt.Errorf("live ingest committed no snapshots")
	}
	// Gate 1: concurrent point-query throughput.
	if rec.PointQPS < minPointQPS {
		return fmt.Errorf("point throughput %.0f q/s below the %d q/s gate", rec.PointQPS, minPointQPS)
	}
	// Gate 2: the staged analog pipeline is exact against brute force.
	if !rec.AnalogExact {
		return fmt.Errorf("analog pipeline disagrees with the brute-force reference")
	}
	// Gate 3: live ingest must not perturb the step loop. A timing ratio
	// only holds statistically over a long enough window; short smoke runs
	// check the schema and exactness gates only.
	if rec.Steps >= 30 && rec.IngestRatio < ingestTolerance {
		return fmt.Errorf("live-ingest run at %.3fx of baseline throughput, below the %.2f gate",
			rec.IngestRatio, ingestTolerance)
	}
	return nil
}
