// Command serve answers forecast-state queries over a snapshot store:
// point and region time series with group-granular decode, nearest-analog
// search over the quantized archive, and derived diagnostics (typhoon
// minimum pressure, maximum wind, conservation residuals).
//
//	serve -store out/store -addr 127.0.0.1:8080              (finished archive)
//	serve -live -config 25v10 -days 0.2 -store out/store     (ingest while serving)
//
// In live mode the coupled model runs under the resilient supervisor and
// hands every committed checkpoint to the store's persistence goroutine;
// queries see each snapshot as soon as its manifest commit lands.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pp"
	"repro/internal/statestore"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	store := flag.String("store", "", "snapshot store directory (required)")
	addr := flag.String("addr", "127.0.0.1:8080", "query API listen address")
	obsSpec := flag.String("obs", "off", "observability sink: off, mem, jsonl:PATH, prom:ADDR")
	live := flag.Bool("live", false, "run the coupled model and ingest its checkpoints while serving")
	label := flag.String("config", "25v10", "coupled configuration label for -live")
	days := flag.Float64("days", 0.2, "simulated days to run for -live")
	ranks := flag.Int("ranks", 1, "process count for -live")
	ckEvery := flag.Int("checkpoint-every", 10, "coupling steps between checkpoints (and snapshots) for -live")
	ckDir := flag.String("restart-dir", "", "restart-set directory for -live (default STORE/restart)")
	depth := flag.Int("depth", 4, "ingest queue depth for -live (bounds snapshot staleness)")
	audit := flag.Bool("audit", false, "record conservation budgets and store the residual fields for -live")
	flag.Parse()

	if *store == "" {
		log.Fatal("need -store DIR")
	}
	sink, err := obs.OpenSink(*obsSpec)
	if err != nil {
		log.Fatal(err)
	}
	var observer statestore.Observer
	var handle *obs.Obs
	if sink != nil {
		handle = obs.New(0, sink)
		observer = handle
		if ps, ok := sink.(*obs.PromSink); ok && ps.Addr() != "" {
			fmt.Printf("serving metrics at http://%s/metrics\n", ps.Addr())
		}
	}

	runDone := make(chan error, 1)
	if *live {
		if err := runLive(*store, *label, *days, *ranks, *ckEvery, *ckDir, *depth, *audit, handle, runDone); err != nil {
			log.Fatal(err)
		}
	} else {
		close(runDone)
	}

	st, err := openStore(*store, observer, *live)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := statestore.NewServer(st, *addr, observer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d snapshots at http://%s/v1/meta\n", st.Snapshots(), srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-runDone:
		if err != nil {
			log.Printf("model run: %v", err)
		} else if *live {
			fmt.Println("model run complete; still serving (interrupt to exit)")
		}
		<-sig
	case <-sig:
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	st.Close()
	if sink != nil {
		if handle != nil {
			handle.FlushMetrics()
		}
		if err := sink.Close(); err != nil {
			log.Fatal(err)
		}
	}
}

// runLive starts the coupled run on a background goroutine, ingesting every
// committed checkpoint, and returns once the store's first snapshot is
// committed (so the caller can open it).
func runLive(store, label string, days float64, ranks, ckEvery int, ckDir string, depth int, audit bool, handle *obs.Obs, done chan<- error) error {
	cfg, err := core.ConfigForLabel(label)
	if err != nil {
		return err
	}
	var observer statestore.Observer
	if handle != nil {
		observer = handle
	}
	w, err := statestore.Create(store, 0, observer)
	if err != nil {
		return err
	}
	in := statestore.NewIngester(w, depth, observer)
	if ckDir == "" {
		ckDir = filepath.Join(store, "restart")
	}
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	stop := start.Add(time.Duration(days * 24 * float64(time.Hour)))
	go func() {
		var runErr error
		par.Run(ranks, func(c *par.Comm) {
			var o obs.Observer = obs.Nop{}
			if handle != nil && c.Rank() == 0 {
				o = handle
			}
			mk := func() (*core.ESM, error) {
				return core.NewWithOptions(cfg, c,
					core.WithInterval(start, stop),
					core.WithSpace(pp.Serial{}),
					core.WithObserver(o),
					core.WithAudit(audit))
			}
			_, rep, err := core.RunResilient(mk, core.ResilientConfig{
				Days: days, CheckpointEvery: ckEvery, MaxRetries: 3,
				Dir: ckDir, OnCheckpoint: core.ServeCaptureHook(in),
			})
			if err != nil && c.Rank() == 0 {
				runErr = err
			}
			if c.Rank() == 0 && rep != nil {
				fmt.Printf("run complete: %d steps, %d checkpoints, %d snapshots dropped\n",
					rep.Steps, rep.Checkpoints, in.Dropped())
			}
		})
		if err := in.Close(); err != nil && runErr == nil {
			runErr = err
		}
		if err := w.Close(); err != nil && runErr == nil {
			runErr = err
		}
		done <- runErr
	}()
	return nil
}

// openStore opens the store directory; in live mode it waits for the first
// manifest commit to appear.
func openStore(dir string, o statestore.Observer, wait bool) (*statestore.Store, error) {
	deadline := time.Now().Add(5 * time.Minute)
	for {
		st, err := statestore.Open(dir, o)
		if err == nil || !wait || time.Now().After(deadline) {
			return st, err
		}
		time.Sleep(100 * time.Millisecond)
	}
}
