// Command bench3 measures what the atmosphere domain decomposition bought:
// the coupled steps/sec of the decomposed dataflow against the historical
// replicated one at 1, 2, and 4 ranks, the halo-exchange traffic the
// decomposition adds, and the steady-state allocation count of the halo
// hot path. It writes the result as BENCH_3.json next to bench2's
// BENCH_2.json and validates its own output file before exiting — including
// the acceptance gate that the decomposed dataflow is strictly faster than
// the replicated one at the largest rank count.
//
//	bench3 [-config 25v10] [-steps 45] [-schedule seq] [-remap cons] [-out BENCH_3.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pp"
)

// rankResult is one rank count's replicated-vs-decomposed comparison.
type rankResult struct {
	Ranks int `json:"ranks"`

	ReplicatedStepsPerSec float64 `json:"replicated_steps_per_sec"`
	DecomposedStepsPerSec float64 `json:"decomposed_steps_per_sec"`
	Speedup               float64 `json:"speedup"`
	ReplicatedSYPD        float64 `json:"replicated_sypd"`
	DecomposedSYPD        float64 `json:"decomposed_sypd"`

	// Halo traffic of the decomposed run (rank 0's counters).
	HaloMsgs  int64 `json:"halo_msgs"`
	HaloBytes int64 `json:"halo_bytes"`
}

// result is the benchmark record scripts/check.sh consumes.
type result struct {
	Name     string `json:"name"`
	Config   string `json:"config"`
	Steps    int    `json:"steps"`
	Backend  string `json:"backend"`
	Schedule string `json:"schedule"`
	Remap    string `json:"remap"`

	Results []rankResult `json:"results"`

	// Steady-state allocation audit of the decomposition hot path
	// (2-rank cell + edge halo exchange).
	HaloAllocsPerExchange float64 `json:"halo_allocs_per_exchange"`

	WallSec   float64 `json:"wall_sec"`
	Timestamp string  `json:"timestamp"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench3: ")
	label := flag.String("config", "25v10", "coupled configuration label")
	steps := flag.Int("steps", 45, "coupling steps to time per dataflow")
	schedName := flag.String("schedule", "seq", "component schedule (seq or conc)")
	remapName := flag.String("remap", "cons", "flux remap mode (nn or cons)")
	out := flag.String("out", "BENCH_3.json", "output path")
	flag.Parse()

	cfg, err := core.ConfigForLabel(*label)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := core.ParseSchedule(*schedName)
	if err != nil {
		log.Fatal(err)
	}
	remap, err := core.ParseRemap(*remapName)
	if err != nil {
		log.Fatal(err)
	}
	sp := pp.NewHost(0)
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)

	wall := time.Now()
	res := result{
		Name:     "atm-domain-decomposition",
		Config:   cfg.Label,
		Steps:    *steps,
		Backend:  sp.Name(),
		Schedule: sched.String(),
		Remap:    remap.String(),

		HaloAllocsPerExchange: measureHaloAllocs(),
	}
	for _, ranks := range []int{1, 2, 4} {
		rep := runDataflow(cfg, sched, remap, ranks, *steps, false, sp, start)
		dec := runDataflow(cfg, sched, remap, ranks, *steps, true, sp, start)
		rr := rankResult{
			Ranks:                 ranks,
			ReplicatedStepsPerSec: rep.stepsPerSec,
			DecomposedStepsPerSec: dec.stepsPerSec,
			ReplicatedSYPD:        rep.sypd,
			DecomposedSYPD:        dec.sypd,
			HaloMsgs:              dec.haloMsgs,
			HaloBytes:             dec.haloBytes,
		}
		if rep.stepsPerSec > 0 {
			rr.Speedup = dec.stepsPerSec / rep.stepsPerSec
		}
		res.Results = append(res.Results, rr)
	}
	res.WallSec = time.Since(wall).Seconds()
	res.Timestamp = time.Now().UTC().Format(time.RFC3339)

	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := validate(*out); err != nil {
		log.Fatalf("self-validation of %s failed: %v", *out, err)
	}
	for _, rr := range res.Results {
		fmt.Printf("%s ranks=%d: replicated %.2f steps/s, decomposed %.2f steps/s (%.2fx), halo %d msgs / %d bytes\n",
			res.Name, rr.Ranks, rr.ReplicatedStepsPerSec, rr.DecomposedStepsPerSec, rr.Speedup, rr.HaloMsgs, rr.HaloBytes)
	}
	fmt.Printf("halo exchange: %.1f allocs/op in steady state -> %s\n", res.HaloAllocsPerExchange, *out)
}

// dataflowRun is one dataflow's measurement.
type dataflowRun struct {
	stepsPerSec float64
	sypd        float64
	haloMsgs    int64
	haloBytes   int64
}

// runDataflow times `steps` coupling steps of a fresh model with the
// atmosphere decomposition on or off.
func runDataflow(cfg core.Config, sched core.Schedule, remap core.RemapMode, ranks, steps int, decomp bool, sp pp.Space, start time.Time) dataflowRun {
	var r dataflowRun
	par.Run(ranks, func(c *par.Comm) {
		handle := obs.New(c.Rank(), nil)
		e, err := core.NewWithOptions(cfg, c,
			core.WithInterval(start, start.Add(24*time.Hour)),
			core.WithSpace(sp),
			core.WithObserver(handle),
			core.WithSchedule(sched),
			core.WithRemap(remap),
			core.WithAtmDecomp(decomp))
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		sypd, err := e.MeasureSYPD(steps)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0).Seconds()
		if c.Rank() != 0 {
			return
		}
		r.sypd = sypd
		if elapsed > 0 {
			r.stepsPerSec = float64(steps) / elapsed
		}
		reg := handle.Registry()
		r.haloMsgs = reg.Counter("cpl.atm.halo.msgs").Value()
		r.haloBytes = reg.Counter("cpl.atm.halo.bytes").Value()
	})
	return r
}

// measureHaloAllocs returns the steady-state heap allocations per combined
// cell + edge halo exchange on 2 ranks: rank 0 measures a Mallocs delta
// while rank 1 drives the matching exchanges, which are themselves
// allocation-free after warm-up so they do not pollute the count.
func measureHaloAllocs() float64 {
	const iters = 100
	var allocs float64
	par.Run(2, func(c *par.Comm) {
		mesh, err := grid.NewIcosMesh(4)
		if err != nil {
			log.Fatal(err)
		}
		d, err := grid.NewIcosDecomp(mesh, c)
		if err != nil {
			log.Fatal(err)
		}
		cells := make([]float64, 3*mesh.NCells())
		edges := make([]float64, 3*mesh.NEdges())
		step := func() {
			d.ExchangeCells(cells, 3)
			d.ExchangeEdges(edges, 3)
		}
		step() // warm both parity buffers
		step()
		c.Barrier()
		if c.Rank() == 0 {
			allocs = mallocsPer(iters, step)
		} else {
			for i := 0; i < iters; i++ {
				step()
			}
		}
		c.Barrier()
	})
	return allocs
}

// mallocsPer reports the mean heap allocations of f over iters calls,
// measured with a runtime.MemStats Mallocs delta.
func mallocsPer(iters int, f func()) float64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(iters)
}

// validate re-reads the written record with strict field checking and
// sanity-checks the values — the schema contract scripts/check.sh relies
// on, including the acceptance gate: at the largest rank count the
// decomposed dataflow must be strictly faster than the replicated one.
func validate(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var rec result
	if err := dec.Decode(&rec); err != nil {
		return err
	}
	switch {
	case rec.Name == "" || rec.Config == "" || rec.Timestamp == "":
		return fmt.Errorf("missing identification fields")
	case rec.Steps < 1:
		return fmt.Errorf("non-positive steps")
	case len(rec.Results) < 3:
		return fmt.Errorf("want rank counts 1, 2, 4; got %d entries", len(rec.Results))
	case rec.HaloAllocsPerExchange != 0:
		return fmt.Errorf("steady-state halo exchange allocates (%v allocs/op)", rec.HaloAllocsPerExchange)
	}
	last := rec.Results[len(rec.Results)-1]
	for _, rr := range rec.Results {
		if !(rr.ReplicatedStepsPerSec > 0) || !(rr.DecomposedStepsPerSec > 0) {
			return fmt.Errorf("ranks=%d: non-positive steps/sec", rr.Ranks)
		}
		if rr.Ranks > 1 && rr.HaloMsgs == 0 {
			return fmt.Errorf("ranks=%d: decomposed run exchanged no halo messages", rr.Ranks)
		}
	}
	if last.DecomposedStepsPerSec <= last.ReplicatedStepsPerSec {
		return fmt.Errorf("ranks=%d: decomposed %.2f steps/s not faster than replicated %.2f",
			last.Ranks, last.DecomposedStepsPerSec, last.ReplicatedStepsPerSec)
	}
	return nil
}
