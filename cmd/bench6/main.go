// Command bench6 measures what group-scaled wire compression bought: the
// coupled steps/sec and wire bytes/step of the gs32 wire format against the
// exact f64 baseline at 2, 4, 8, and 16 ranks, with the nearest-neighbour
// remap so every compressible path — both halo exchanges and the coupler
// rearrangers — is live. Wire volume comes from rank 0's cpl.halo.bytes
// (atm + ocn components) and coupler.rearrange.bytes counter deltas over the
// final lap, the deterministic steady-state traffic of `steps` couplings. It
// writes the result as BENCH_6.json and validates its own output before
// exiting, including the acceptance gates: gs32 must cut the wire bytes by
// at least 1.6x at 8 ranks, and must not regress steps/sec at 2 ranks beyond
// scheduler noise.
//
//	bench6 [-config 25v10] [-steps 45] [-schedule seq] [-out BENCH_6.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pp"
)

// regressionTolerance is the allowed steps/sec noise band for the 2-rank
// no-regression gate: gs32 must hold at least this fraction of the f64
// throughput. The encode/decode work is small next to the component kernels,
// so any real regression shows up far below this line.
const regressionTolerance = 0.9

// wireRun is one wire format's measurement at one rank count.
type wireRun struct {
	StepsPerSec float64 `json:"steps_per_sec"`
	SYPD        float64 `json:"sypd"`

	// Per-lap wire traffic (rank 0's counters over the final lap).
	HaloAtmBytes   int64 `json:"halo_atm_bytes"`
	HaloOcnBytes   int64 `json:"halo_ocn_bytes"`
	RearrangeBytes int64 `json:"rearrange_bytes"`
	WireBytes      int64 `json:"wire_bytes"`     // total on-the-wire bytes
	WireRawBytes   int64 `json:"wire_raw_bytes"` // same traffic uncompressed

	// Cumulative raw/wire ratio the model publishes (1.0 under f64, where
	// the gauge stays unset and is reported as 0).
	WireRatio float64 `json:"wire_ratio"`
}

// rankResult is one rank count's f64-vs-gs32 comparison.
type rankResult struct {
	Ranks int     `json:"ranks"`
	F64   wireRun `json:"f64"`
	GS32  wireRun `json:"gs32"`

	// BytesReduction is f64 total wire bytes over gs32's — the compression
	// the wire actually saw, across every path including the exempt
	// conservative router (absent here: remap is nn).
	BytesReduction float64 `json:"bytes_reduction"`
	// SpeedRatio is gs32 steps/sec over f64's.
	SpeedRatio float64 `json:"speed_ratio"`
}

// result is the benchmark record scripts/check.sh consumes.
type result struct {
	Name     string `json:"name"`
	Config   string `json:"config"`
	Steps    int    `json:"steps"`
	Backend  string `json:"backend"`
	Schedule string `json:"schedule"`
	Remap    string `json:"remap"`

	Results []rankResult `json:"results"`

	WallSec   float64 `json:"wall_sec"`
	Timestamp string  `json:"timestamp"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench6: ")
	label := flag.String("config", "25v10", "coupled configuration label")
	steps := flag.Int("steps", 45, "coupling steps to time per wire format")
	schedName := flag.String("schedule", "seq", "component schedule (seq or conc)")
	out := flag.String("out", "BENCH_6.json", "output path")
	flag.Parse()

	cfg, err := core.ConfigForLabel(*label)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := core.ParseSchedule(*schedName)
	if err != nil {
		log.Fatal(err)
	}
	sp := pp.Serial{}
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)

	wall := time.Now()
	res := result{
		Name:     "wire-compression",
		Config:   cfg.Label,
		Steps:    *steps,
		Backend:  sp.Name(),
		Schedule: sched.String(),
		Remap:    core.RemapNN.String(),
	}
	for _, ranks := range []int{2, 4, 8, 16} {
		f64 := runWire(cfg, sched, ranks, *steps, par.WireF64, sp, start)
		gs := runWire(cfg, sched, ranks, *steps, par.WireGS32, sp, start)
		rr := rankResult{Ranks: ranks, F64: f64, GS32: gs}
		if gs.WireBytes > 0 {
			rr.BytesReduction = float64(f64.WireBytes) / float64(gs.WireBytes)
		}
		if f64.StepsPerSec > 0 {
			rr.SpeedRatio = gs.StepsPerSec / f64.StepsPerSec
		}
		res.Results = append(res.Results, rr)
	}
	res.WallSec = time.Since(wall).Seconds()
	res.Timestamp = time.Now().UTC().Format(time.RFC3339)

	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := validate(*out); err != nil {
		log.Fatalf("self-validation of %s failed: %v", *out, err)
	}
	for _, rr := range res.Results {
		fmt.Printf("%s ranks=%d: f64 %.2f steps/s / %d wire B, gs32 %.2f steps/s / %d wire B -> %.2fx smaller, %.2fx speed\n",
			res.Name, rr.Ranks, rr.F64.StepsPerSec, rr.F64.WireBytes,
			rr.GS32.StepsPerSec, rr.GS32.WireBytes, rr.BytesReduction, rr.SpeedRatio)
	}
	fmt.Printf("wrote %s\n", *out)
}

// runWire times `steps` coupling steps of a fresh fully-decomposed model
// under the given wire format, running three laps over the same model and
// keeping the fastest — the first lap doubles as warm-up for the one-time
// pack-buffer and encoding growth, and best-of-N damps scheduler noise on an
// oversubscribed host. The traffic counters are read as deltas over the last
// lap, the deterministic steady-state volume of `steps` couplings.
func runWire(cfg core.Config, sched core.Schedule, ranks, steps int, wire par.WireFormat, sp pp.Space, start time.Time) wireRun {
	var r wireRun
	par.Run(ranks, func(c *par.Comm) {
		handle := obs.New(c.Rank(), nil)
		e, err := core.NewWithOptions(cfg, c,
			core.WithInterval(start, start.Add(240*time.Hour)),
			core.WithSpace(sp),
			core.WithObserver(handle),
			core.WithSchedule(sched),
			core.WithRemap(core.RemapNN),
			core.WithWireCompression(wire))
		if err != nil {
			log.Fatal(err)
		}
		reg := handle.Registry()
		counters := func() [5]int64 {
			return [5]int64{
				reg.Counter(obs.Labeled("cpl.halo.bytes", "component", "atm")).Value(),
				reg.Counter(obs.Labeled("cpl.halo.bytes", "component", "ocn")).Value(),
				reg.Counter("coupler.rearrange.bytes").Value(),
				reg.Counter("cpl.wire.bytes").Value(),
				reg.Counter("cpl.wire.raw.bytes").Value(),
			}
		}
		const laps = 3
		var before [5]int64
		for lap := 0; lap < laps; lap++ {
			if lap == laps-1 {
				before = counters()
			}
			t0 := time.Now()
			sypd, err := e.MeasureSYPD(steps)
			if err != nil {
				log.Fatal(err)
			}
			elapsed := time.Since(t0).Seconds()
			if c.Rank() != 0 || elapsed <= 0 {
				continue
			}
			if sps := float64(steps) / elapsed; sps > r.StepsPerSec {
				r.StepsPerSec, r.SYPD = sps, sypd
			}
		}
		if c.Rank() != 0 {
			return
		}
		after := counters()
		r.HaloAtmBytes = after[0] - before[0]
		r.HaloOcnBytes = after[1] - before[1]
		r.RearrangeBytes = after[2] - before[2]
		r.WireBytes = after[3] - before[3]
		r.WireRawBytes = after[4] - before[4]
		r.WireRatio = reg.Gauge("cpl.wire.ratio").Value()
	})
	return r
}

// validate re-reads the written record with strict field checking and
// enforces the acceptance gates scripts/check.sh relies on.
func validate(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var rec result
	if err := dec.Decode(&rec); err != nil {
		return err
	}
	switch {
	case rec.Name == "" || rec.Config == "" || rec.Timestamp == "":
		return fmt.Errorf("missing identification fields")
	case rec.Steps < 1:
		return fmt.Errorf("non-positive steps")
	case len(rec.Results) < 4:
		return fmt.Errorf("want rank counts 2, 4, 8, 16; got %d entries", len(rec.Results))
	}
	byRanks := map[int]rankResult{}
	for _, rr := range rec.Results {
		if !(rr.F64.StepsPerSec > 0) || !(rr.GS32.StepsPerSec > 0) {
			return fmt.Errorf("ranks=%d: non-positive steps/sec", rr.Ranks)
		}
		if rr.F64.WireBytes == 0 || rr.GS32.WireBytes == 0 {
			return fmt.Errorf("ranks=%d: no wire traffic recorded", rr.Ranks)
		}
		// The f64 baseline must account every byte as raw (ratio 1 exact).
		if rr.F64.WireRawBytes != rr.F64.WireBytes {
			return fmt.Errorf("ranks=%d: f64 raw/wire bytes disagree: %d vs %d",
				rr.Ranks, rr.F64.WireRawBytes, rr.F64.WireBytes)
		}
		// gs32 must ship the same raw volume as f64 did on the wire.
		if rr.GS32.WireRawBytes != rr.F64.WireBytes {
			return fmt.Errorf("ranks=%d: gs32 raw bytes %d != f64 wire bytes %d",
				rr.Ranks, rr.GS32.WireRawBytes, rr.F64.WireBytes)
		}
		byRanks[rr.Ranks] = rr
	}
	for _, want := range []int{2, 4, 8, 16} {
		if _, ok := byRanks[want]; !ok {
			return fmt.Errorf("missing %d-rank entry", want)
		}
	}
	// Gate 1: at 8 ranks gs32 cuts the wire volume by at least 1.6x.
	if rr := byRanks[8]; rr.BytesReduction < 1.6 {
		return fmt.Errorf("8-rank wire-byte reduction %.3fx below the 1.6x gate", rr.BytesReduction)
	}
	// Gate 2: no steps/sec regression at 2 ranks beyond scheduler noise.
	// A timing ratio only holds statistically over a long enough window;
	// short smoke runs check schema and the byte gates only.
	if rec.Steps >= 30 {
		if rr := byRanks[2]; rr.SpeedRatio < regressionTolerance {
			return fmt.Errorf("2-rank gs32 runs at %.3fx of f64 throughput, below the %.2f no-regression gate",
				rr.SpeedRatio, regressionTolerance)
		}
	}
	return nil
}
