// Command bench8 measures what the single-source mixed-precision kernel
// layer bought: the coupled steps/sec of the float32 kernel instantiations
// (-kprec mixed) against the bit-for-bit float64 baseline at 1 and 8 ranks.
// Both runs go through the identical registered kernels and thin drivers —
// the only difference is the Vec execution-space wrapper selecting the
// float32 bodies — so the ratio isolates the arithmetic-width win. It
// writes the result as BENCH_8.json and validates its own output before
// exiting, including the acceptance gate: mixed must beat f64 steps/sec at
// 8 ranks. A timing ratio only holds statistically over a long enough
// window, so short smoke runs check the schema only.
//
//	bench8 [-config 25v10] [-steps 45] [-schedule seq] [-out BENCH_8.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/pp"
)

// winGate is the 8-rank speed ratio mixed precision must clear: a measured
// win, not a tie. regressionTolerance is the 1-rank noise floor — mixed may
// not be slower than f64 beyond scheduler noise even where the conversion
// overhead is least amortized.
const (
	winGate             = 1.0
	regressionTolerance = 0.9
)

// precRun is one kernel precision's measurement at one rank count.
type precRun struct {
	StepsPerSec float64 `json:"steps_per_sec"`
	SYPD        float64 `json:"sypd"`
}

// rankResult is one rank count's f64-vs-mixed comparison.
type rankResult struct {
	Ranks int     `json:"ranks"`
	F64   precRun `json:"f64"`
	Mixed precRun `json:"mixed"`

	// SpeedRatio is mixed steps/sec over f64's.
	SpeedRatio float64 `json:"speed_ratio"`
}

// result is the benchmark record scripts/check.sh consumes.
type result struct {
	Name     string `json:"name"`
	Config   string `json:"config"`
	Steps    int    `json:"steps"`
	Backend  string `json:"backend"`
	Schedule string `json:"schedule"`

	Results []rankResult `json:"results"`

	WallSec   float64 `json:"wall_sec"`
	Timestamp string  `json:"timestamp"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench8: ")
	label := flag.String("config", "25v10", "coupled configuration label")
	steps := flag.Int("steps", 45, "coupling steps to time per kernel precision")
	schedName := flag.String("schedule", "seq", "component schedule (seq or conc)")
	backend := flag.String("backend", "Serial", "execution space: Serial, Host, CPE")
	out := flag.String("out", "BENCH_8.json", "output path")
	flag.Parse()

	cfg, err := core.ConfigForLabel(*label)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := core.ParseSchedule(*schedName)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := pp.DefaultSpace(*backend)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)

	wall := time.Now()
	res := result{
		Name:     "kernel-precision",
		Config:   cfg.Label,
		Steps:    *steps,
		Backend:  sp.Name(),
		Schedule: sched.String(),
	}
	for _, ranks := range []int{1, 8} {
		f64 := runPrec(cfg, sched, ranks, *steps, pp.PrecF64, sp, start)
		mx := runPrec(cfg, sched, ranks, *steps, pp.PrecMixed, sp, start)
		rr := rankResult{Ranks: ranks, F64: f64, Mixed: mx}
		if f64.StepsPerSec > 0 {
			rr.SpeedRatio = mx.StepsPerSec / f64.StepsPerSec
		}
		res.Results = append(res.Results, rr)
	}
	res.WallSec = time.Since(wall).Seconds()
	res.Timestamp = time.Now().UTC().Format(time.RFC3339)

	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := validate(*out); err != nil {
		log.Fatalf("self-validation of %s failed: %v", *out, err)
	}
	for _, rr := range res.Results {
		fmt.Printf("%s ranks=%d: f64 %.2f steps/s (%.2f SYPD), mixed %.2f steps/s (%.2f SYPD) -> %.2fx speed\n",
			res.Name, rr.Ranks, rr.F64.StepsPerSec, rr.F64.SYPD,
			rr.Mixed.StepsPerSec, rr.Mixed.SYPD, rr.SpeedRatio)
	}
	fmt.Printf("wrote %s\n", *out)
}

// runPrec times `steps` coupling steps of a fresh fully-decomposed model at
// the given kernel precision, running three laps over the same model and
// keeping the fastest — the first lap doubles as warm-up for the one-time
// scratch and geometry-table builds, and best-of-N damps scheduler noise on
// an oversubscribed host.
func runPrec(cfg core.Config, sched core.Schedule, ranks, steps int, kp pp.Prec, sp pp.Space, start time.Time) precRun {
	var r precRun
	par.Run(ranks, func(c *par.Comm) {
		e, err := core.NewWithOptions(cfg, c,
			core.WithInterval(start, start.Add(240*time.Hour)),
			core.WithSpace(sp),
			core.WithSchedule(sched),
			core.WithKernelPrecision(kp))
		if err != nil {
			log.Fatal(err)
		}
		const laps = 3
		for lap := 0; lap < laps; lap++ {
			t0 := time.Now()
			sypd, err := e.MeasureSYPD(steps)
			if err != nil {
				log.Fatal(err)
			}
			elapsed := time.Since(t0).Seconds()
			if c.Rank() != 0 || elapsed <= 0 {
				continue
			}
			if sps := float64(steps) / elapsed; sps > r.StepsPerSec {
				r.StepsPerSec, r.SYPD = sps, sypd
			}
		}
	})
	return r
}

// validate re-reads the written record with strict field checking and
// enforces the acceptance gates scripts/check.sh relies on.
func validate(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var rec result
	if err := dec.Decode(&rec); err != nil {
		return err
	}
	switch {
	case rec.Name == "" || rec.Config == "" || rec.Timestamp == "":
		return fmt.Errorf("missing identification fields")
	case rec.Steps < 1:
		return fmt.Errorf("non-positive steps")
	case len(rec.Results) != 2:
		return fmt.Errorf("want rank counts 1 and 8; got %d entries", len(rec.Results))
	}
	byRanks := map[int]rankResult{}
	for _, rr := range rec.Results {
		if !(rr.F64.StepsPerSec > 0) || !(rr.Mixed.StepsPerSec > 0) {
			return fmt.Errorf("ranks=%d: non-positive steps/sec", rr.Ranks)
		}
		byRanks[rr.Ranks] = rr
	}
	for _, want := range []int{1, 8} {
		if _, ok := byRanks[want]; !ok {
			return fmt.Errorf("missing %d-rank entry", want)
		}
	}
	// Timing gates hold only over a long enough window; smoke runs stop at
	// the schema checks above.
	if rec.Steps >= 30 {
		// Gate 1: mixed precision must be a measured win at 8 ranks.
		if rr := byRanks[8]; rr.SpeedRatio <= winGate {
			return fmt.Errorf("8-rank mixed runs at %.3fx of f64 throughput, not above the %.2fx win gate",
				rr.SpeedRatio, winGate)
		}
		// Gate 2: no regression at 1 rank beyond scheduler noise.
		if rr := byRanks[1]; rr.SpeedRatio < regressionTolerance {
			return fmt.Errorf("1-rank mixed runs at %.3fx of f64 throughput, below the %.2f no-regression floor",
				rr.SpeedRatio, regressionTolerance)
		}
	}
	return nil
}
