// Command tables regenerates the paper's tables and figures from the
// calibrated models and prints them as text:
//
//	tables -table 1      Table 1  (model configurations / grid counts)
//	tables -table 2      Table 2  (strong scaling, ORISE + Sunway)
//	tables -fig 2        Figure 2 (state-of-the-art scatter and line)
//	tables -fig 8a       Figure 8a (strong-scaling curves)
//	tables -fig 8b       Figure 8b (weak-scaling ladders)
//	tables -rearr        rearranger traffic (§5.2.4 p2p vs alltoall counts)
//	tables -budget       nn vs conservative remap budget residuals (§5.1.1)
//	tables -all          everything
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/coupler"
	"repro/internal/par"
	"repro/internal/perfmodel"
	"repro/internal/pp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")
	table := flag.Int("table", 0, "table number to print (1 or 2)")
	fig := flag.String("fig", "", "figure to print (2, 8a, 8b)")
	rearr := flag.Bool("rearr", false, "print the rearranger traffic table")
	budgetTab := flag.Bool("budget", false, "print the nn-vs-conservative remap budget residual table")
	all := flag.Bool("all", false, "print every table and figure")
	flag.Parse()

	if !*all && *table == 0 && *fig == "" && !*rearr && !*budgetTab {
		flag.Usage()
		os.Exit(2)
	}

	m, err := perfmodel.NewModel()
	if err != nil {
		log.Fatal(err)
	}

	if *all || *table == 1 {
		fmt.Println("=== Table 1: model configurations (regenerated from grid formulas/catalogs) ===")
		fmt.Print(perfmodel.FormatTable1(perfmodel.Table1()))
		fmt.Println()
	}
	if *all || *table == 2 {
		fmt.Println("=== Table 2: strong scaling (paper vs calibrated model) ===")
		fmt.Print(perfmodel.FormatTable2(m.Table2()))
		fmt.Println()
	}
	if *all || *fig == "2" {
		fmt.Println("=== Figure 2: state of the art ===")
		entries := perfmodel.Figure2Entries()
		line := perfmodel.FitSOTALine(entries)
		fmt.Printf("SOTA line: log10(SYPD) = %.4f·log10(points) + %.4f\n", line.Slope, line.Intercept)
		for _, e := range entries {
			above, factor := line.Above(e)
			tag := " "
			if e.ThisWork {
				tag = "*"
			}
			fmt.Printf("%s %-20s %d  %9.3g pts  %5.2f SYPD  line %5.2f  above=%-5v (%.2fx)\n",
				tag, e.Name, e.Year, e.GridPoints, e.SYPD, line.At(e.GridPoints), above, factor)
		}
		fmt.Println()
	}
	if *all || *fig == "8a" {
		fmt.Println("=== Figure 8a: strong scaling curves ===")
		for _, id := range m.IDs() {
			label, pts, err := m.Fig8aSeries(id, 8)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s (%s):\n", label, id)
			for _, p := range pts {
				mark := ""
				if p.IsAnchor {
					mark = fmt.Sprintf("   <- paper %.4g", p.Paper)
				}
				fmt.Printf("  %8d nodes  %12.0f  %9.4f SYPD%s\n", p.Nodes, p.Resource, p.SYPD, mark)
			}
		}
		aLo, aHi, _ := m.SpeedupRange(perfmodel.CurveATM3MPE, perfmodel.CurveATM3CPE, true)
		oLo, oHi, _ := m.SpeedupRange(perfmodel.CurveOCN2MPE, perfmodel.CurveOCN2CPE, true)
		fmt.Printf("CPE+OPT over MPE: ATM %.0f-%.0fx (paper 112-184), OCN %.0f-%.0fx (paper 84-150)\n\n", aLo, aHi, oLo, oHi)
	}
	if *all || *fig == "8b" {
		fmt.Println("=== Figure 8b: weak scaling ===")
		atm, err := m.WeakSeries(perfmodel.CurveATM3CPE, perfmodel.ATMWeakLadder())
		if err != nil {
			log.Fatal(err)
		}
		ocn, err := m.WeakSeries(perfmodel.CurveOCN2CPE, perfmodel.OCNWeakLadder())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("atmosphere (paper final efficiency 87.85%):")
		for _, p := range atm {
			fmt.Printf("  %3d km  %6d nodes  %9d cores  %7.4f SYPD  eff %6.2f%%\n",
				p.ResKm, p.Nodes, p.Cores, p.SYPD, 100*p.Efficiency)
		}
		fmt.Println("ocean (paper final efficiency 96.57%):")
		for _, p := range ocn {
			fmt.Printf("  %3d km  %6d nodes  %9d cores  %7.4f SYPD  eff %6.2f%%\n",
				p.ResKm, p.Nodes, p.Cores, p.SYPD, 100*p.Efficiency)
		}
		fmt.Println()
	}
	if *all || *rearr {
		fmt.Println("=== Rearranger traffic: p2p vs alltoall messages (§5.2.4) ===")
		if err := printRearrTable(); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *all || *budgetTab {
		fmt.Println("=== Coupled budget residuals: nn vs conservative remap (§5.1.1) ===")
		if err := printBudgetTable(); err != nil {
			log.Fatal(err)
		}
	}
}

// printBudgetTable runs the 25v10 coupled configuration twice — once with
// the nearest-neighbour flux remap, once with the first-order conservative
// remap — with the conservation audit on, and prints the residual summary
// pair: the nn interface leak is orders of magnitude above round-off, the
// conservative path closes to ~1e-12 relative.
func printBudgetTable() error {
	cfg, err := core.ConfigForLabel("25v10")
	if err != nil {
		return err
	}
	const steps = 50 // 10 ocean coupling intervals at 25v10
	run := func(remap core.RemapMode) (budget.Summary, error) {
		var s budget.Summary
		var runErr error
		par.Run(1, func(c *par.Comm) {
			e, err := core.NewWithOptions(cfg, c, core.WithSpace(pp.Serial{}),
				core.WithRemap(remap), core.WithAudit(true))
			if err != nil {
				runErr = err
				return
			}
			for i := 0; i < steps; i++ {
				e.Step()
			}
			s = e.Budget().Summary()
		})
		return s, runErr
	}
	nn, err := run(core.RemapNN)
	if err != nil {
		return err
	}
	cons, err := run(core.RemapCons)
	if err != nil {
		return err
	}
	fmt.Printf("25v10, %d base steps, serial backend, seq schedule; residuals are relative\n", steps)
	fmt.Print(budget.FormatComparison(nn, cons))
	return nil
}

// printRearrTable builds routers over an ocean-sized index space at
// several rank counts and prints, per count, the total messages each mode
// produces — the corrected accounting where the self-rank block never
// counts as a p2p message while the collective touches every pair slot.
// Two redistribution patterns bracket the real coupler: a dense
// block->cyclic shuffle (every pair exchanges) and a sparse half-block
// shift (each rank talks to at most two neighbors, the §5.2.4 regime
// where the p2p rearranger wins big).
func printRearrTable() error {
	const n = 128 * 64 // a 25v10-class ocean surface index space
	fmt.Printf("%6s  %10s  |%12s  %10s  |%12s  %10s\n",
		"ranks", "alltoall", "dense p2p", "reduction", "sparse p2p", "reduction")
	for _, p := range []int{2, 4, 8, 16, 32} {
		bw := (n + p - 1) / p
		block := func(gi int) int {
			pe := gi / bw
			if pe >= p {
				pe = p - 1
			}
			return pe
		}
		src, err := coupler.OfflineGSMap(block, n, p)
		if err != nil {
			return err
		}
		denseDst, err := coupler.OfflineGSMap(func(gi int) int { return gi % p }, n, p)
		if err != nil {
			return err
		}
		sparseDst, err := coupler.OfflineGSMap(func(gi int) int {
			return block((gi + bw/2) % n)
		}, n, p)
		if err != nil {
			return err
		}
		a2aTotal := 0
		totals := make(map[*coupler.GSMap]int)
		for _, dst := range []*coupler.GSMap{denseDst, sparseDst} {
			rs, err := coupler.BuildRouterOffline(src, dst, p)
			if err != nil {
				return err
			}
			a2aTotal = 0
			for pe, r := range rs {
				a2a, p2p := r.MessageCount(pe, p)
				a2aTotal += a2a
				totals[dst] += p2p
			}
		}
		red := func(p2p int) float64 {
			if p2p == 0 {
				return float64(a2aTotal)
			}
			return float64(a2aTotal) / float64(p2p)
		}
		fmt.Printf("%6d  %10d  |%12d  %9.2fx  |%12d  %9.2fx\n",
			p, a2aTotal, totals[denseDst], red(totals[denseDst]),
			totals[sparseDst], red(totals[sparseDst]))
	}
	return nil
}
