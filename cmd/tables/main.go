// Command tables regenerates the paper's tables and figures from the
// calibrated models and prints them as text:
//
//	tables -table 1      Table 1  (model configurations / grid counts)
//	tables -table 2      Table 2  (strong scaling, ORISE + Sunway)
//	tables -fig 2        Figure 2 (state-of-the-art scatter and line)
//	tables -fig 8a       Figure 8a (strong-scaling curves)
//	tables -fig 8b       Figure 8b (weak-scaling ladders)
//	tables -all          everything
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/perfmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")
	table := flag.Int("table", 0, "table number to print (1 or 2)")
	fig := flag.String("fig", "", "figure to print (2, 8a, 8b)")
	all := flag.Bool("all", false, "print every table and figure")
	flag.Parse()

	if !*all && *table == 0 && *fig == "" {
		flag.Usage()
		os.Exit(2)
	}

	m, err := perfmodel.NewModel()
	if err != nil {
		log.Fatal(err)
	}

	if *all || *table == 1 {
		fmt.Println("=== Table 1: model configurations (regenerated from grid formulas/catalogs) ===")
		fmt.Print(perfmodel.FormatTable1(perfmodel.Table1()))
		fmt.Println()
	}
	if *all || *table == 2 {
		fmt.Println("=== Table 2: strong scaling (paper vs calibrated model) ===")
		fmt.Print(perfmodel.FormatTable2(m.Table2()))
		fmt.Println()
	}
	if *all || *fig == "2" {
		fmt.Println("=== Figure 2: state of the art ===")
		entries := perfmodel.Figure2Entries()
		line := perfmodel.FitSOTALine(entries)
		fmt.Printf("SOTA line: log10(SYPD) = %.4f·log10(points) + %.4f\n", line.Slope, line.Intercept)
		for _, e := range entries {
			above, factor := line.Above(e)
			tag := " "
			if e.ThisWork {
				tag = "*"
			}
			fmt.Printf("%s %-20s %d  %9.3g pts  %5.2f SYPD  line %5.2f  above=%-5v (%.2fx)\n",
				tag, e.Name, e.Year, e.GridPoints, e.SYPD, line.At(e.GridPoints), above, factor)
		}
		fmt.Println()
	}
	if *all || *fig == "8a" {
		fmt.Println("=== Figure 8a: strong scaling curves ===")
		for _, id := range m.IDs() {
			label, pts, err := m.Fig8aSeries(id, 8)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s (%s):\n", label, id)
			for _, p := range pts {
				mark := ""
				if p.IsAnchor {
					mark = fmt.Sprintf("   <- paper %.4g", p.Paper)
				}
				fmt.Printf("  %8d nodes  %12.0f  %9.4f SYPD%s\n", p.Nodes, p.Resource, p.SYPD, mark)
			}
		}
		aLo, aHi, _ := m.SpeedupRange(perfmodel.CurveATM3MPE, perfmodel.CurveATM3CPE, true)
		oLo, oHi, _ := m.SpeedupRange(perfmodel.CurveOCN2MPE, perfmodel.CurveOCN2CPE, true)
		fmt.Printf("CPE+OPT over MPE: ATM %.0f-%.0fx (paper 112-184), OCN %.0f-%.0fx (paper 84-150)\n\n", aLo, aHi, oLo, oHi)
	}
	if *all || *fig == "8b" {
		fmt.Println("=== Figure 8b: weak scaling ===")
		atm, err := m.WeakSeries(perfmodel.CurveATM3CPE, perfmodel.ATMWeakLadder())
		if err != nil {
			log.Fatal(err)
		}
		ocn, err := m.WeakSeries(perfmodel.CurveOCN2CPE, perfmodel.OCNWeakLadder())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("atmosphere (paper final efficiency 87.85%):")
		for _, p := range atm {
			fmt.Printf("  %3d km  %6d nodes  %9d cores  %7.4f SYPD  eff %6.2f%%\n",
				p.ResKm, p.Nodes, p.Cores, p.SYPD, 100*p.Efficiency)
		}
		fmt.Println("ocean (paper final efficiency 96.57%):")
		for _, p := range ocn {
			fmt.Printf("  %3d km  %6d nodes  %9d cores  %7.4f SYPD  eff %6.2f%%\n",
				p.ResKm, p.Nodes, p.Cores, p.SYPD, 100*p.Efficiency)
		}
	}
}
