// Command bench5 measures what the ensemble's work-stealing scheduler buys
// over static member-to-group partitioning when part of the pool straggles:
// it runs the same N-member ensemble twice — once static, once stealing —
// with one rank group slowed by a repeat-stall injected at the ens.dispatch
// fault site, and reports members/hour for both. It writes BENCH_5.json next
// to the other benchmark records and validates its own output before
// exiting, including the acceptance gates: work stealing must complete the
// ensemble at ≥ 1.2x the static throughput under the injected stalls, every
// member must complete under both schedulers, at least one member must
// actually be stolen, and the member dispatch path must not allocate in
// steady state.
//
//	bench5 [-config 25v10] [-members 6] [-groups 2] [-hours 0.5] [-stall 800ms] [-out BENCH_5.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/ensemble"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/typhoon"
)

// stealGateFloor is the acceptance gate: members/hour under work stealing
// over static partitioning with one slowed group.
const stealGateFloor = 1.2

// gateMinStall is the smallest injected stall the throughput gate applies
// at; shorter smoke runs check schema and the structural gates only, because
// the stall no longer dominates member runtime.
const gateMinStall = 400 * time.Millisecond

type result struct {
	Name    string  `json:"name"`
	Config  string  `json:"config"`
	Members int     `json:"members"`
	Groups  int     `json:"groups"`
	Ranks   int     `json:"ranks_per_group"`
	Hours   float64 `json:"hours_per_member"`
	StallMs float64 `json:"injected_stall_ms"`

	StaticWallSec        float64 `json:"static_wall_sec"`
	StealWallSec         float64 `json:"steal_wall_sec"`
	StaticMembersPerHour float64 `json:"static_members_per_hour"`
	StealMembersPerHour  float64 `json:"steal_members_per_hour"`
	Speedup              float64 `json:"speedup"`

	StaticCompleted int `json:"static_completed"`
	StealCompleted  int `json:"steal_completed"`
	Steals          int `json:"steals"`

	// Steady-state allocation audit of the member dispatch path
	// (scheduler next/requeue plus the disarmed ens.dispatch fault hook).
	DispatchAllocsPerOp float64 `json:"dispatch_allocs_per_op"`

	GateSpeedupFloor float64 `json:"gate_speedup_floor"`
	WallSec          float64 `json:"wall_sec"`
	Timestamp        string  `json:"timestamp"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench5: ")
	label := flag.String("config", "25v10", "coupled configuration label")
	members := flag.Int("members", 6, "ensemble size")
	groups := flag.Int("groups", 2, "rank groups in the pool")
	ranks := flag.Int("ranks", 1, "ranks per group")
	hours := flag.Float64("hours", 0.5, "simulated hours per member")
	stall := flag.Duration("stall", 800*time.Millisecond, "injected dispatch stall on the slow group")
	out := flag.String("out", "BENCH_5.json", "output path")
	flag.Parse()

	wall := time.Now()
	res := result{
		Name:    "ensemble-work-stealing",
		Config:  *label,
		Members: *members,
		Groups:  *groups,
		Ranks:   *ranks,
		Hours:   *hours,
		StallMs: float64(stall.Milliseconds()),

		DispatchAllocsPerOp: measureDispatchAllocs(),
		GateSpeedupFloor:    stealGateFloor,
	}

	run := func(sched string) (wallSec float64, completed, steals int) {
		dir, err := os.MkdirTemp("", "bench5-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		cfg := ensemble.Config{
			Label:   *label,
			Members: *members,
			Groups:  *groups,
			Ranks:   *ranks,
			Hours:   *hours,
			Seed:    1,
			BaseDir: dir,
			Sched:   sched,
			Perturb: typhoon.DefaultPerturbation(),
			// The last group is the straggler: every dispatch it makes waits
			// out the stall first, the way a slow node delays its share of
			// the ensemble.
			GroupFaults: map[int]string{
				*groups - 1: fmt.Sprintf("stall@ens.dispatch:1:delay=%s:repeat", stall),
			},
			Obs: obs.New(0, nil),
		}
		t0 := time.Now()
		rep, err := ensemble.Run(cfg)
		if err != nil {
			log.Fatalf("%s ensemble failed: %v", sched, err)
		}
		return time.Since(t0).Seconds(), rep.Completed, rep.Steals
	}
	res.StaticWallSec, res.StaticCompleted, _ = run(ensemble.SchedStatic)
	res.StealWallSec, res.StealCompleted, res.Steals = run(ensemble.SchedSteal)
	if res.StaticWallSec > 0 {
		res.StaticMembersPerHour = float64(*members) * 3600 / res.StaticWallSec
	}
	if res.StealWallSec > 0 {
		res.StealMembersPerHour = float64(*members) * 3600 / res.StealWallSec
	}
	if res.StaticMembersPerHour > 0 {
		res.Speedup = res.StealMembersPerHour / res.StaticMembersPerHour
	}
	res.WallSec = time.Since(wall).Seconds()
	res.Timestamp = time.Now().UTC().Format(time.RFC3339)

	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := validate(*out); err != nil {
		log.Fatalf("self-validation of %s failed: %v", *out, err)
	}
	fmt.Printf("%s: static %.1f members/h, steal %.1f members/h (%.2fx, %d steals), dispatch %.1f allocs/op -> %s\n",
		res.Name, res.StaticMembersPerHour, res.StealMembersPerHour, res.Speedup, res.Steals,
		res.DispatchAllocsPerOp, *out)
}

// measureDispatchAllocs returns the steady-state heap allocations per member
// dispatch: one scheduler next/requeue hand-off plus the disarmed
// ens.dispatch fault hook — the loop a group supervisor spins while cycling
// a retried member.
func measureDispatchAllocs() float64 {
	fault.Disarm()
	const iters = 5000
	s := ensemble.NewSchedulerForBench(8, 2)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		if f := fault.PointScoped("ens.g00", "ens.dispatch", 0); f != nil {
			log.Fatal("disarmed dispatch hook fired")
		}
		m, _, ok := s.Next(0)
		if !ok {
			log.Fatal("bench queue closed early")
		}
		s.Requeue(m)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(iters)
}

// validate re-reads the written record with strict field checking and
// enforces the acceptance gates scripts/check.sh relies on.
func validate(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var rec result
	if err := dec.Decode(&rec); err != nil {
		return err
	}
	switch {
	case rec.Name == "" || rec.Config == "" || rec.Timestamp == "":
		return fmt.Errorf("missing identification fields")
	case rec.Members < 2 || rec.Groups < 2:
		return fmt.Errorf("need ≥ 2 members and ≥ 2 groups, got %d and %d", rec.Members, rec.Groups)
	case !(rec.StaticMembersPerHour > 0) || !(rec.StealMembersPerHour > 0):
		return fmt.Errorf("non-positive throughput")
	case rec.StaticCompleted != rec.Members || rec.StealCompleted != rec.Members:
		return fmt.Errorf("lost members: static %d/%d, steal %d/%d",
			rec.StaticCompleted, rec.Members, rec.StealCompleted, rec.Members)
	case rec.Steals < 1:
		return fmt.Errorf("work stealing never stole a member")
	case rec.DispatchAllocsPerOp != 0:
		return fmt.Errorf("member dispatch path allocates (%v allocs/op)", rec.DispatchAllocsPerOp)
	}
	// The throughput gate holds when the injected stall dominates member
	// runtime; sub-threshold smoke runs check schema and structure only.
	if rec.StallMs >= float64(gateMinStall.Milliseconds()) && rec.Speedup < rec.GateSpeedupFloor {
		return fmt.Errorf("work-stealing speedup %.3f under injected stalls below the %.1fx gate",
			rec.Speedup, rec.GateSpeedupFloor)
	}
	return nil
}
