// Typhoon: the Fig 6 resolution-contrast experiment. The same Doksuri
// vortex is seeded into a coarse ("25v10-class") and a finer
// ("3v2-class") coupled configuration; after a short integration the
// fine run shows a more compact eye, a stronger pressure deficit, and
// richer fine-scale structure in the wind field and the ocean's surface
// Rossby-number response.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/pp"
	"repro/internal/typhoon"
)

func runCase(label string, hours int) (fix typhoon.Fix, rmw, fsv, roMax float64) {
	cfg, err := core.ConfigForLabel(label)
	if err != nil {
		log.Fatal(err)
	}
	start := typhoon.BestTrackDoksuri()[0].Time
	par.Run(1, func(c *par.Comm) {
		esm, err := core.New(cfg, c, start, start.Add(48*time.Hour), pp.NewHost(0))
		if err != nil {
			log.Fatal(err)
		}
		seed := typhoon.DoksuriSeed()
		if err := typhoon.Seed(esm.Atm, seed); err != nil {
			log.Fatal(err)
		}
		steps := hours * cfg.AtmCouplingsPerDay / 24
		for s := 0; s < steps; s++ {
			esm.Step()
		}
		prev := typhoon.Fix{Time: start, LonDeg: seed.LonDeg, LatDeg: seed.LatDeg}
		fix, err = typhoon.FindCenterNear(esm.Atm, start.Add(time.Duration(hours)*time.Hour), prev, 1500, 800)
		if err != nil {
			log.Fatal(err)
		}
		rmw = typhoon.RadiusOfMaxWind(esm.Atm, fix, 900)
		u, v := esm.Atm.Wind10m()
		speed := make([]float64, len(u))
		for i := range u {
			speed[i] = math.Hypot(u[i], v[i])
		}
		fsv = typhoon.FineScaleVariance(esm.Atm.Mesh, speed)
		for _, r := range esm.Ocn.SurfaceRossby() {
			if a := math.Abs(r); a > roMax {
				roMax = a
			}
		}
	})
	return
}

func main() {
	log.SetFlags(0)
	const hours = 6
	fmt.Printf("Doksuri vortex after %d simulated hours, coarse vs fine (Fig 6 contrast):\n", hours)
	for _, label := range []string{"25v10", "3v2"} {
		fix, rmw, fsv, roMax := runCase(label, hours)
		rmwStr := fmt.Sprintf("%4.0f km", rmw)
		if rmw < 1 {
			rmwStr = "  <1 cell" // eye unresolved on this mesh
		}
		fmt.Printf("  %-6s centre (%6.1fE, %5.1fN)  min ps %7.0f Pa  max wind %5.1f m/s  RMW %s  fine-scale %.3g  peak|Ro| %.3g\n",
			label, fix.LonDeg, fix.LatDeg, fix.PressPa, fix.WindMS, rmwStr, fsv, roMax)
	}
	fmt.Println("expected shape: the finer configuration holds a deeper centre, a more compact eye,")
	fmt.Println("and more fine-scale variance — the paper's Fig 6a/6c vs 6b/6d contrast.")
}
