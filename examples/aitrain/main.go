// Aitrain: the §5.2.1 workflow end to end — generate a training corpus
// from the conventional physics suite, train the AI tendency CNN and the
// AI radiation MLP, report losses, swap the trained suite into the
// atmosphere, and compare per-column throughput against the conventional
// suite.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/aiphys"
	"repro/internal/atmos"
	"repro/internal/pp"
)

func main() {
	log.SetFlags(0)

	m, err := atmos.New(3, 8, atmos.DefaultConfig(), pp.NewHost(0))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training the AI physics suite on conventional-suite supervision…")
	suite, res, err := aiphys.TrainedSuite(m, 10, 600, 20, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  CNN (tendencies): initial loss %.1f -> test loss %.3f (zero-predictor baseline ~1.0)\n",
		res.InitialCNN, res.TestLossCNN)
	fmt.Printf("  MLP (radiation):  initial loss %.1f -> test loss %.3f\n",
		res.InitialMLP, res.TestLossMLP)
	fmt.Printf("  CNN parameters: %d (paper architecture at width 110 has ~5e5)\n",
		suite.CNN.Params.Count())

	// Throughput comparison on one column.
	conv := atmos.NewConventionalSuite(m)
	nlev := m.NLev
	in := atmos.ColumnIn{
		U: make([]float64, nlev), V: make([]float64, nlev),
		T: make([]float64, nlev), Q: make([]float64, nlev),
		P:   make([]float64, nlev),
		Lat: 0.3, TSkin: 300, CosZ: 0.7,
	}
	for k := 0; k < nlev; k++ {
		in.T[k] = 280
		in.P[k] = m.Sig[k] * atmos.P0
		in.Q[k] = 0.004
	}
	out := atmos.ColumnOut{
		DT: make([]float64, nlev), DQ: make([]float64, nlev),
		DU: make([]float64, nlev), DV: make([]float64, nlev),
	}
	const reps = 2000
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		conv.Column(in, 480, &out)
	}
	tConv := time.Since(t0)
	t0 = time.Now()
	for i := 0; i < reps; i++ {
		suite.Column(in, 480, &out)
	}
	tAI := time.Since(t0)
	fmt.Printf("per-column cost: conventional %v, AI suite %v (%.2fx)\n",
		tConv/reps, tAI/reps, float64(tConv)/float64(tAI))

	// Plug the trained suite into the model and integrate.
	m.Physics = suite
	for s := 0; s < 2*m.Cfg.PhysicsEvery; s++ {
		m.Step()
	}
	fmt.Printf("model under AI physics after 2 physics steps: max wind %.1f m/s (stable)\n", m.MaxWind())
}
