// Scaling: drive the calibrated performance model through the paper's
// headline scaling questions — the Fig 8a curves, the weak-scaling ladders,
// and the two-domain layout optimization — from the public perfmodel API.
package main

import (
	"fmt"
	"log"

	"repro/internal/perfmodel"
)

func main() {
	log.SetFlags(0)
	m, err := perfmodel.NewModel()
	if err != nil {
		log.Fatal(err)
	}

	// Strong scaling: where does the 1 km coupled model land at full scale?
	c1v1 := m.MustCurve(perfmodel.CurveESM1v1)
	fmt.Printf("1v1 coupled AP3ESM at 37.2M cores: %.2f SYPD (paper 0.54)\n", c1v1.SYPD(37172980))
	fmt.Printf("  strong-scaling efficiency 8.7M -> 37.2M cores: %.1f%% (paper 90.7%%)\n",
		100*c1v1.Efficiency(8745360, 37172980))

	// Component cost anatomy: why efficiency falls (Fig 8a bend).
	atm := m.MustCurve(perfmodel.CurveATM3CPE)
	for _, cores := range []float64{2129920, 8519680, 17039360} {
		comp, halo, coll := atm.Breakdown(cores)
		fmt.Printf("  3 km ATM at %8.0f cores: compute %4.1f%%, halo %4.1f%%, collectives %4.1f%%\n",
			cores, 100*comp, 100*halo, 100*coll)
	}

	// Weak scaling ladders (Fig 8b).
	for _, spec := range []struct {
		id     string
		ladder []perfmodel.WeakRung
		name   string
	}{
		{perfmodel.CurveATM3CPE, perfmodel.ATMWeakLadder(), "atmosphere"},
		{perfmodel.CurveOCN2CPE, perfmodel.OCNWeakLadder(), "ocean"},
	} {
		series, err := m.WeakSeries(spec.id, spec.ladder)
		if err != nil {
			log.Fatal(err)
		}
		last := series[len(series)-1]
		fmt.Printf("%s weak scaling to %d nodes: %.2f%% efficiency\n",
			spec.name, last.Nodes, 100*last.Efficiency)
	}

	// Task-layout optimization (§5.1.2): how to split a 30M-core allocation.
	ocn := m.MustCurve(perfmodel.CurveOCN2CPE)
	cpl := perfmodel.ImpliedCouplerTime(m.MustCurve(perfmodel.CurveESM3v2), atm, ocn, 3e7)
	seq := perfmodel.SequentialLayout(atm, ocn, 3e7, cpl)
	conc, err := perfmodel.OptimalSplit(atm, ocn, 3e7, cpl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3v2 on 30M cores: sequential layout %.2f SYPD; concurrent two-domain %.2f SYPD at %.0f%% atmosphere share\n",
		seq.SYPD, conc.SYPD, 100*conc.AtmFraction)

	// Projection: the full Table 1 ladder at near-full-system scale — the
	// paper only measured the 3v2 and 1v1 rungs.
	ladder, err := m.ProjectionLadder(3.6e7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("projected coupled ladder at 36M cores (paper measured 3v2=1.01, 1v1=0.54):")
	for _, p := range ladder {
		fmt.Printf("  %-6s %7.2f SYPD  (atm share %.0f%%)\n", p.Label, p.SYPD, 100*p.AtmShare)
	}
}
