// Observe: run the coupled model on two ranks with the full observability
// layer enabled — a shared JSONL event sink, the getTiming-style component
// report, and a rank-reduced view of the traffic counters the par layer
// accumulates (§5.2.4's communication accounting).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pp"
)

func main() {
	log.SetFlags(0)

	cfg, err := core.ConfigForLabel("25v10")
	if err != nil {
		log.Fatal(err)
	}

	// One sink is shared by every rank; each rank gets its own *obs.Obs so
	// span timelines stay per-rank, exactly like GPTL's per-process trees.
	logPath := filepath.Join(os.TempDir(), "ap3esm-observe.jsonl")
	sink, err := obs.NewJSONLSink(logPath)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	par.Run(2, func(c *par.Comm) {
		o := obs.New(c.Rank(), sink)
		esm, err := core.NewWithOptions(cfg, c,
			core.WithInterval(start, start.Add(24*time.Hour)),
			core.WithSpace(pp.NewHost(0)),
			core.WithObserver(o))
		if err != nil {
			log.Fatal(err)
		}

		// Nesting demo: wrap the whole integration in a user span; the
		// component sections (atm/ice/ocn) nest beneath it in the timeline.
		sp := o.StartSpan("run")
		esm.RunDays(0.25) // six simulated hours
		sp.End()

		// The classic report: max wall across ranks, SYPD per component.
		rows := esm.TimingReport() // collective
		if c.Rank() == 0 {
			fmt.Print(core.FormatTiming(rows))
		}

		// Rank-reduced traffic counters: max shows the busiest rank, sum the
		// total volume. Collective, like the report.
		reduced := obs.ReduceObserver(c, o)
		if c.Rank() == 0 {
			fmt.Println("\ncommunication counters (reduced across ranks):")
			for _, p := range reduced {
				if p.Kind == obs.KindCounter && strings.HasPrefix(p.Name, "par.") {
					fmt.Printf("  %-22s max %12.0f  sum %12.0f\n", p.Name, p.Max, p.Sum)
				}
			}
		}

		o.FlushMetrics() // land the counters next to the spans in the log
	})

	if err := sink.Close(); err != nil {
		log.Fatal(err)
	}
	events, err := obs.ReadJSONL(logPath)
	if err != nil {
		log.Fatal(err)
	}
	spans := 0
	for _, e := range events {
		if e.Kind == "span" {
			spans++
		}
	}
	fmt.Printf("\nevent log %s: %d events (%d spans)\n", logPath, len(events), spans)
}
