// Concurrent: run the same two-rank coupled configuration under the
// sequential and the concurrent component schedule and show what the
// overlap buys — the paper's concurrent-components lever (§5.1) at
// miniature scale. The concurrent schedule overlaps the ocean's
// baroclinic substeps with the atmosphere + land group and computes the
// replicated atmosphere once instead of on every rank, bit-for-bit
// reproducing the sequential answer.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pp"
)

func main() {
	log.SetFlags(0)
	cfg, err := core.ConfigForLabel("25v10")
	if err != nil {
		log.Fatal(err)
	}
	const ranks, steps = 2, 30
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)

	type outcome struct {
		sypd    float64
		wall    float64
		overlap float64
		waitAtm time.Duration
		sst     float64 // mean SST checksum for the bitwise claim
	}
	run := func(sched core.Schedule) outcome {
		var out outcome
		par.Run(ranks, func(c *par.Comm) {
			handle := obs.New(c.Rank(), nil)
			e, err := core.NewWithOptions(cfg, c,
				core.WithInterval(start, start.Add(24*time.Hour)),
				core.WithSpace(pp.NewHost(0)),
				core.WithObserver(handle),
				core.WithSchedule(sched))
			if err != nil {
				log.Fatal(err)
			}
			t0 := time.Now()
			sypd, err := e.MeasureSYPD(steps)
			if err != nil {
				log.Fatal(err)
			}
			if c.Rank() != 0 {
				return
			}
			out.sypd = sypd
			out.wall = time.Since(t0).Seconds()
			out.overlap = e.OverlapFraction()
			out.waitAtm, _ = handle.Section("cpl.wait.atm")
			sum := 0.0
			for _, v := range e.Atm.SST {
				sum += v
			}
			out.sst = sum / float64(len(e.Atm.SST))
		})
		return out
	}

	seq := run(core.ScheduleSeq)
	conc := run(core.ScheduleConc)

	fmt.Printf("%s, %d ranks, %d coupling steps:\n", cfg.Label, ranks, steps)
	fmt.Printf("  seq : %6.2f SYPD  (%.2f s wall)\n", seq.sypd, seq.wall)
	fmt.Printf("  conc: %6.2f SYPD  (%.2f s wall)  overlap %.2f, ocean idle %.0f ms\n",
		conc.sypd, conc.wall, conc.overlap, conc.waitAtm.Seconds()*1e3)
	fmt.Printf("  speedup %.2fx\n", conc.sypd/seq.sypd)
	if seq.sst == conc.sst {
		fmt.Printf("  final mean SST identical under both schedules: %.6f K\n", seq.sst)
	} else {
		fmt.Printf("  WARNING: schedules diverged: seq %.12f K vs conc %.12f K\n", seq.sst, conc.sst)
	}
}
