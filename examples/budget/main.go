// Budget: audit the coupled energy and freshwater budget across the
// air–sea interface (§5.1.1) under the two flux remap modes. The
// nearest-neighbour path samples the atmosphere at each ocean cell's
// closest column, so the globally integrated flux the atmosphere exports
// and the flux the ocean receives disagree by a systematic residual; the
// first-order conservative remap delivers exactly the area-weighted
// export, closing the ledger to round-off. The demo runs both modes on
// two ranks with the audit on and prints the full interval ledger for the
// conservative run plus the side-by-side residual comparison.
package main

import (
	"fmt"
	"log"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/pp"
)

func main() {
	log.SetFlags(0)
	cfg, err := core.ConfigForLabel("25v10")
	if err != nil {
		log.Fatal(err)
	}
	const ranks, steps = 2, 50 // 10 ocean coupling intervals

	run := func(remap core.RemapMode) (budget.Summary, string) {
		var s budget.Summary
		var report string
		par.Run(ranks, func(c *par.Comm) {
			e, err := core.NewWithOptions(cfg, c,
				core.WithSpace(pp.Serial{}),
				core.WithSchedule(core.ScheduleConc),
				core.WithRemap(remap),
				core.WithAudit(true))
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < steps; i++ {
				e.Step()
			}
			// The ledger is identical on every rank (replicated atmosphere
			// sums, allreduced ocean sums); take rank 0's copy.
			if c.Rank() == 0 {
				s = e.Budget().Summary()
				report = e.Budget().Report()
			}
		})
		return s, report
	}

	nn, _ := run(core.RemapNN)
	cons, consReport := run(core.RemapCons)

	fmt.Printf("%s, %d ranks, %d base steps, concurrent schedule\n\n", cfg.Label, ranks, steps)
	fmt.Println("conservative-remap ledger (one line per ocean coupling interval):")
	fmt.Print(consReport)
	fmt.Println()
	fmt.Println("nearest-neighbour vs conservative residuals:")
	fmt.Print(budget.FormatComparison(nn, cons))
	if cons.MaxHeatResid <= 1e-10 && cons.MaxFWResid <= 1e-10 {
		fmt.Println("\nconservative remap closes the coupled budget to round-off.")
	} else {
		fmt.Printf("\nWARNING: conservative residuals above round-off (heat %.3e, fw %.3e)\n",
			cons.MaxHeatResid, cons.MaxFWResid)
	}
}
