// Quickstart: build the coupled AP3ESM at the 25v10-mapped configuration,
// run six simulated hours, and print the state of every component — the
// minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/pp"
)

func main() {
	log.SetFlags(0)

	// 1. Pick a coupled configuration from the Table 1 catalog.
	cfg, err := core.ConfigForLabel("25v10")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Launch the SPMD world (2 ranks share the ocean/ice domain) and
	//    assemble atmosphere + ocean + sea ice + land under the coupler.
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	par.Run(2, func(c *par.Comm) {
		esm, err := core.NewWithOptions(cfg, c,
			core.WithInterval(start, start.Add(24*time.Hour)),
			core.WithSpace(pp.NewHost(0)))
		if err != nil {
			log.Fatal(err)
		}

		// 3. Integrate six simulated hours (45 coupling steps at 180/day).
		esm.RunDays(0.25)

		// 4. Inspect each component through its public diagnostics. The
		//    ocean and ice diagnostics are collective (they reduce across
		//    ranks), so every rank calls them; rank 0 prints.
		minPs, _ := esm.Atm.MinPs()
		ke := esm.Ocn.SurfaceKineticEnergy()
		ssh := esm.Ocn.MeanSSH()
		maxCur := esm.Ocn.MaxSurfaceSpeed()
		iceA := esm.Ice.IceArea()
		iceV := esm.Ice.IceVolume()
		if c.Rank() == 0 {
			fmt.Printf("after %.2f simulated days:\n", esm.SimulatedSeconds()/86400)
			fmt.Printf("  atmosphere: max wind %.1f m/s, min surface pressure %.0f Pa, mean precip %.2e kg/m2/s\n",
				esm.Atm.MaxWind(), minPs, esm.Atm.GlobalPrecipRate())
			fmt.Printf("  ocean:      surface KE %.3e m2/s2, mean SSH %.2e m, max current %.2f m/s\n",
				ke, ssh, maxCur)
			fmt.Printf("  sea ice:    area %.3g m2, volume %.3g m3\n", iceA, iceV)
			fmt.Printf("  land:       mean soil T %.1f K, total bucket water %.1f m\n",
				esm.Lnd.MeanSoilTemp(), esm.Lnd.TotalWater())
		}
	})
}
