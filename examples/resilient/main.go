// Resilient: run the coupled model under an armed fault plan and let the
// supervising driver absorb the failures. The plan drops an I/O error into
// the second checkpoint write and a NaN into the ocean temperature mid-run;
// RunResilient checkpoints every 8 coupling steps, catches both faults
// through the health guardrails and the v2 checkpoint checksums, rolls back
// to the last good set, and still finishes — bit-for-bit identical to a
// fault-free run, because one-shot injections never refire on the replayed
// steps.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/par"
	"repro/internal/pp"
)

func main() {
	log.SetFlags(0)

	cfg, err := core.ConfigForLabel("25v10")
	if err != nil {
		log.Fatal(err)
	}
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	mk := func(c *par.Comm) func() (*core.ESM, error) {
		return func() (*core.ESM, error) {
			return core.NewWithOptions(cfg, c,
				core.WithInterval(start, start.Add(24*time.Hour)),
				core.WithSpace(pp.Serial{}))
		}
	}

	work, err := os.MkdirTemp("", "ap3esm-resilient")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	const days = 30.0 / 180 // 30 coupling steps at 180 couplings/day

	// Fault-free reference run.
	refDir := filepath.Join(work, "ref")
	par.Run(1, func(c *par.Comm) {
		e, err := mk(c)()
		if err != nil {
			log.Fatal(err)
		}
		e.RunDays(days)
		if err := e.WriteRestart(refDir, 1); err != nil {
			log.Fatal(err)
		}
	})

	// The same run under an armed fault plan.
	plan, err := fault.Parse("io-error@pario.write:2;nan@esm.step:21", 42)
	if err != nil {
		log.Fatal(err)
	}
	fault.Arm(plan)
	fmt.Printf("armed fault plan: %s\n", plan)

	gotDir := filepath.Join(work, "got")
	par.Run(1, func(c *par.Comm) {
		e, rep, err := core.RunResilient(mk(c), core.ResilientConfig{
			Days: days, CheckpointEvery: 8, MaxRetries: 5,
			Dir: filepath.Join(work, "ck"),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("completed %d coupling steps with %d checkpoints\n", rep.Steps, rep.Checkpoints)
		for _, ev := range rep.Recoveries {
			fmt.Printf("  recovery: step %d (%s), attempt %d, resumed from step %d\n",
				ev.Step, ev.Reason, ev.Attempt, ev.Resumed)
		}
		fault.Disarm() // the comparison write below must be clean
		if err := e.WriteRestart(gotDir, 1); err != nil {
			log.Fatal(err)
		}
	})
	fmt.Printf("fault counts: %v\n", plan.Counts())

	// The recovery protocol's acceptance property: byte-identical state.
	ref, err := os.ReadFile(filepath.Join(refDir, "part-0.bin"))
	if err != nil {
		log.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(gotDir, "part-0.bin"))
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(ref, got) {
		log.Fatal("recovered run diverged from the fault-free run")
	}
	fmt.Println("recovered restart set is bit-for-bit identical to the fault-free run")
}
