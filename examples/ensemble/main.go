// Ensemble: fan a perturbed Doksuri forecast out over a shared pool of rank
// groups and let the orchestrator keep it alive. Four members — the control
// plus three with perturbed vortex position/intensity and perturbed
// atmospheric diffusivities — run on two rank groups under the work-stealing
// scheduler. One member carries a transient injected NaN: its own resilient
// supervisor rolls it back to the last checkpoint in place, so it still
// completes on its first attempt, bit-for-bit as if the fault never fired.
// The report ends with the ensemble-spread product: mean ± spread of track
// error and central pressure across members.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/ensemble"
	"repro/internal/obs"
	"repro/internal/typhoon"
)

func main() {
	log.SetFlags(0)

	dir, err := os.MkdirTemp("", "ensemble-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	o := obs.New(0, nil)
	rep, err := ensemble.Run(ensemble.Config{
		Label:           "25v10",
		Members:         4,
		Groups:          2,
		Ranks:           1,
		Hours:           2, // 15 coupling steps per member
		Quorum:          3,
		CheckpointEvery: 4,
		Backoff:         2 * time.Millisecond,
		Seed:            2023,
		BaseDir:         dir,
		Perturb:         typhoon.DefaultPerturbation(),
		PhysFrac:        0.05,
		// A transient fault on member 2: one NaN into the coupled state at
		// its 9th step, absorbed by the member's checkpoint/rollback
		// supervisor without costing the member its slot.
		MemberFaults: map[int]string{2: "nan@esm.step:9"},
		Obs:          o,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)

	fmt.Println("ensemble counters:")
	for _, p := range o.Snapshot() {
		if p.Kind == obs.KindCounter && len(p.Name) > 4 && p.Name[:4] == "ens." {
			fmt.Printf("  %-28s %d\n", p.Name, p.Count)
		}
	}
	m := rep.Members[2]
	fmt.Printf("member m02 absorbed %d rollback(s) in place on attempt %d\n", m.Rollbacks, m.Attempts)
}
