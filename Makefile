# Developer entry points. `make check` is the full local gate: vet, build,
# race-enabled tests, the restart-decoder fuzz smoke, and the short SYPD
# benchmark (BENCH_1.json).

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz check bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test ./internal/pario -run '^$$' -fuzz FuzzReadSubfile -fuzztime $(FUZZTIME)

bench:
	$(GO) run ./cmd/bench1 -out BENCH_1.json

check: vet build race fuzz bench

clean:
	rm -f BENCH_1.json
