# Developer entry points. `make check` is the full local gate: vet, build,
# race-enabled tests (including the concurrent-schedule and decomposed-
# atmosphere/ocean stress laps, plus the multi-world ensemble isolation
# lap and the compressed-wire lap), the restart-decoder and group-scaled
# round-trip fuzz smokes, the conservation-budget gate on four decomposed
# ranks (plus its compressed-wire twin), the two-rank resilient rollback
# lap, the degraded ensemble lap (one member permanently failed, quorum
# 3/4), the serve-race lap (concurrent query storm against a live
# ingesting forecast store), the mixed-kernel-precision race lap plus its
# audited CLI gate, and the eight benchmarks (BENCH_1.json through
# BENCH_8.json).

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race race-conc race-decomp race-ocn-decomp race-ensemble race-wire race-kernels serve-race fuzz budget resilient ensemble check bench bench2 bench3 bench4 bench5 bench6 bench7 bench8 clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

race-conc:
	$(GO) test -race ./internal/core -run 'TestConcScheduleRaceStress|TestConcSeqBitForBit' -count 1

race-decomp:
	$(GO) test -race ./internal/core -run 'TestDecompRankCountInvariance|TestDecompRestartRoundTrip' -count 1

race-ocn-decomp:
	$(GO) test -race ./internal/grid -run 'TestTripolar' -count 1
	$(GO) test -race ./internal/ocean ./internal/seaice -run 'TestSerialParallelEquivalence|TestParallelSerialIceAgreement|TestCompactionComposesWithBlockPartition' -count 1

race-ensemble:
	$(GO) test -race ./internal/ensemble -run 'TestTwoWorldsStepConcurrently|TestDispatchPathDoesNotAllocate' -count 1
	$(GO) test -race ./internal/fault -run 'TestPlanConcurrentUse' -count 1

race-wire:
	$(GO) test -race ./internal/core -run 'TestWireGS32ConservationAudit' -count 1 -short
	$(GO) run ./cmd/ap3esm -config 25v10 -days 0.31 -ranks 2 -schedule conc -remap cons -wire gs32 -audit-gate 1e-10

race-kernels:
	$(GO) test -race ./internal/core -run 'TestKernelPrecisionMixedConservationAudit' -count 1 -short
	$(GO) run ./cmd/ap3esm -config 25v10 -days 0.31 -ranks 2 -schedule conc -remap cons -kprec mixed -audit-gate 1e-10

serve-race:
	$(GO) test -race ./internal/statestore -run 'TestConcurrentQueryStorm|TestAnalogPipelineMatchesBruteForce' -count 1
	$(GO) test -race ./internal/core -run 'TestServeLiveIngest' -count 1

fuzz:
	$(GO) test ./internal/pario -run '^$$' -fuzz FuzzReadSubfile -fuzztime $(FUZZTIME)
	$(GO) test ./internal/precision -run '^$$' -fuzz FuzzGroupScaledRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/statestore -run '^$$' -fuzz FuzzManifestDecode -fuzztime $(FUZZTIME)

budget:
	$(GO) run ./cmd/ap3esm -config 25v10 -days 0.31 -ranks 4 -schedule conc -remap cons -audit-gate 1e-10

resilient:
	$(GO) run ./cmd/ap3esm -config 25v10 -days 0.31 -ranks 2 -remap cons \
	  -checkpoint-every 5 -restart-dir /tmp/ap3esm-resilient -faults 'nan@esm.step:21'
	rm -rf /tmp/ap3esm-resilient

ensemble:
	$(GO) run ./cmd/ensemble -members 4 -groups 2 -quorum 3 -attempts 2 -retries 1 \
	  -member-faults '1=nan@esm.step:1:repeat' -expect-completed 3 -expect-quarantined 1

bench:
	$(GO) run ./cmd/bench1 -out BENCH_1.json

bench2:
	$(GO) run ./cmd/bench2 -out BENCH_2.json

bench3:
	$(GO) run ./cmd/bench3 -out BENCH_3.json

bench4:
	$(GO) run ./cmd/bench4 -out BENCH_4.json

bench5:
	$(GO) run ./cmd/bench5 -out BENCH_5.json

bench6:
	$(GO) run ./cmd/bench6 -out BENCH_6.json

bench7:
	$(GO) run ./cmd/bench7 -out BENCH_7.json

bench8:
	$(GO) run ./cmd/bench8 -out BENCH_8.json

check: vet build race race-conc race-decomp race-ocn-decomp race-ensemble race-wire race-kernels serve-race fuzz budget resilient ensemble bench bench2 bench3 bench4 bench5 bench6 bench7 bench8

clean:
	rm -f BENCH_1.json BENCH_2.json BENCH_3.json BENCH_4.json BENCH_5.json BENCH_6.json BENCH_7.json BENCH_8.json
