# Developer entry points. `make check` is the full local gate: vet, build,
# race-enabled tests, and the short SYPD benchmark (BENCH_1.json).

GO ?= go

.PHONY: all build vet test race check bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/bench1 -out BENCH_1.json

check: vet build race bench

clean:
	rm -f BENCH_1.json
