# Developer entry points. `make check` is the full local gate: vet, build,
# race-enabled tests (including the concurrent-schedule stress lap), the
# restart-decoder fuzz smoke, the conservation-budget gate, and the two
# benchmarks (BENCH_1.json, BENCH_2.json).

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race race-conc fuzz budget check bench bench2 clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

race-conc:
	$(GO) test -race ./internal/core -run 'TestConcScheduleRaceStress|TestConcSeqBitForBit' -count 1

fuzz:
	$(GO) test ./internal/pario -run '^$$' -fuzz FuzzReadSubfile -fuzztime $(FUZZTIME)

budget:
	$(GO) run ./cmd/ap3esm -config 25v10 -days 0.31 -ranks 2 -schedule conc -remap cons -audit-gate 1e-10

bench:
	$(GO) run ./cmd/bench1 -out BENCH_1.json

bench2:
	$(GO) run ./cmd/bench2 -out BENCH_2.json

check: vet build race race-conc fuzz budget bench bench2

clean:
	rm -f BENCH_1.json BENCH_2.json
