package repro

// Ablation benchmarks for the reproduction's own design choices, as
// DESIGN.md commits to: each isolates one mechanism the headline results
// rely on and measures its cost or stability effect.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/aiphys"
	"repro/internal/atmos"
	"repro/internal/grid"
	"repro/internal/ocean"
	"repro/internal/par"
	"repro/internal/pp"
)

// BenchmarkAblationBarotropicSubsteps sweeps the barotropic subcycling
// ratio (the paper's 2 s : 20 s split is 10). Fewer substeps than the CFL
// requirement are rejected by the adaptive guard; more substeps cost
// linearly. This quantifies why LICOM pays for a 10:1 split.
func BenchmarkAblationBarotropicSubsteps(b *testing.B) {
	for _, nsub := range []int{10, 20, 40} {
		b.Run(fmt.Sprintf("nsub-%d", nsub), func(b *testing.B) {
			g, _ := grid.NewTripolar(96, 48, 10)
			par.Run(1, func(c *par.Comm) {
				blk, _ := grid.NewTripolarReplicated(g, c, 1)
				cfg := ocean.DefaultConfig()
				cfg.NBarotropicSub = nsub
				o, err := ocean.New(g, blk, cfg, pp.Serial{})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					o.Step()
				}
				b.StopTimer()
				if v := o.MaxSurfaceSpeed(); math.IsNaN(v) {
					b.Fatalf("unstable at nsub=%d", nsub)
				}
				b.ReportMetric(float64(o.Cfg.NBarotropicSub), "effective-nsub")
			})
		})
	}
}

// BenchmarkAblationAIWidth sweeps the AI tendency CNN width from the
// laptop training size to the paper's ~5e5-parameter architecture,
// measuring per-column inference cost — the trade the paper's suite makes
// against tensor-unit throughput.
func BenchmarkAblationAIWidth(b *testing.B) {
	m, err := atmos.New(2, 30, atmos.DefaultConfig(), pp.Serial{})
	if err != nil {
		b.Fatal(err)
	}
	for _, width := range []int{8, 32, 110} {
		b.Run(fmt.Sprintf("width-%d", width), func(b *testing.B) {
			suite, _, err := aiphys.TrainedSuite(m, width, 32, 1, 5)
			if err != nil {
				b.Fatal(err)
			}
			nlev := m.NLev
			in := atmos.ColumnIn{
				U: make([]float64, nlev), V: make([]float64, nlev),
				T: make([]float64, nlev), Q: make([]float64, nlev),
				P: make([]float64, nlev), TSkin: 290,
			}
			for k := 0; k < nlev; k++ {
				in.T[k] = 270
				in.P[k] = m.Sig[k] * atmos.P0
			}
			out := atmos.ColumnOut{
				DT: make([]float64, nlev), DQ: make([]float64, nlev),
				DU: make([]float64, nlev), DV: make([]float64, nlev),
			}
			b.ReportMetric(float64(suite.CNN.Params.Count()), "params")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				suite.Column(in, 480, &out)
			}
		})
	}
}

// BenchmarkAblationDivergenceDamping runs the atmosphere with and without
// divergence damping from a perturbed state and reports the resulting
// maximum wind — the noise-control mechanism of the dycore.
func BenchmarkAblationDivergenceDamping(b *testing.B) {
	run := func(div4 float64) float64 {
		cfg := atmos.DefaultConfig()
		cfg.Div4 = div4
		m, err := atmos.New(3, 6, cfg, pp.NewHost(0))
		if err != nil {
			b.Fatal(err)
		}
		m.Ps[10] += 800
		m.Ps[321] -= 800
		for s := 0; s < 2*cfg.PhysicsEvery; s++ {
			m.Step()
		}
		return m.MaxWind()
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(0.02)
		without = run(0)
	}
	b.ReportMetric(with, "maxwind-damped")
	b.ReportMetric(without, "maxwind-undamped")
}

// BenchmarkAblationRiMixing measures the cost of the Richardson-number
// vertical mixing closure (canuto stand-in) on top of the base ocean step.
func BenchmarkAblationRiMixing(b *testing.B) {
	for _, enabled := range []bool{false, true} {
		name := "off"
		if enabled {
			name = "on"
		}
		b.Run("rimixing-"+name, func(b *testing.B) {
			g, _ := grid.NewTripolar(96, 48, 10)
			par.Run(1, func(c *par.Comm) {
				blk, _ := grid.NewTripolarReplicated(g, c, 1)
				cfg := ocean.DefaultConfig()
				cfg.RiMixing = enabled
				o, err := ocean.New(g, blk, cfg, pp.Serial{})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					o.Step()
				}
			})
		})
	}
}

// BenchmarkAblationHaloWidth measures the halo-exchange cost of the
// distributed ocean grid across process layouts — the communication the
// §5.2.2 topology rebuild optimizes.
func BenchmarkAblationHaloWidth(b *testing.B) {
	g, _ := grid.NewTripolar(192, 96, 5)
	for _, layout := range [][2]int{{1, 1}, {2, 2}, {4, 2}} {
		b.Run(fmt.Sprintf("ranks-%dx%d", layout[0], layout[1]), func(b *testing.B) {
			par.Run(layout[0]*layout[1], func(c *par.Comm) {
				blk, err := grid.NewTripolarDecompLayout(g, c, layout[0], layout[1], 1)
				if err != nil {
					b.Fatal(err)
				}
				f := blk.Alloc()
				for i := range f {
					f[i] = float64(i)
				}
				if c.Rank() == 0 {
					b.ResetTimer()
				}
				for i := 0; i < b.N; i++ {
					blk.Exchange(f)
				}
			})
		})
	}
}
