#!/bin/sh
# Full local gate, equivalent to `make check`: vet, build, race-enabled
# tests, a dedicated race stress lap over the concurrent component
# schedule, a short fuzz of the restart-file decoder, the coupled
# conservation-budget gate (conservative remap must close to 1e-10
# relative), and the two benchmarks writing BENCH_1.json and BENCH_2.json
# at the repo root.
set -eu
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

echo "== go vet"
go vet ./...
echo "== go build"
go build ./...
echo "== go test -race"
go test -race ./...
echo "== conc schedule race stress (2 ranks, p2p rearrange)"
go test -race ./internal/core -run 'TestConcScheduleRaceStress|TestConcSeqBitForBit' -count 1
echo "== fuzz FuzzReadSubfile ($FUZZTIME)"
go test ./internal/pario -run '^$' -fuzz FuzzReadSubfile -fuzztime "$FUZZTIME"
echo "== conservation budget gate (cons remap, 2 ranks, conc schedule, 1e-10)"
go run ./cmd/ap3esm -config 25v10 -days 0.31 -ranks 2 -schedule conc -remap cons -audit-gate 1e-10
echo "== bench1"
go run ./cmd/bench1 -out BENCH_1.json
echo "== bench2 smoke (schema self-validation)"
go run ./cmd/bench2 -steps 6 -out /tmp/bench2_smoke.json
rm -f /tmp/bench2_smoke.json
echo "== bench2"
go run ./cmd/bench2 -out BENCH_2.json
