#!/bin/sh
# Full local gate, equivalent to `make check`: vet, build, race-enabled
# tests, dedicated race stress laps over the concurrent component
# schedule, the decomposed atmosphere and ocean, the multi-world
# ensemble isolation paths, and the group-scaled compressed wire format,
# short fuzzes of the restart-file decoder and the group-scaled encoder
# round trip, the coupled conservation-budget gate on four decomposed
# ranks (conservative remap must close to 1e-10 relative) plus its
# compressed-wire twin on two ranks, a two-rank checkpoint/rollback lap
# through core.RunResilient with an injected mid-run NaN, a degraded
# ensemble lap (4 members on 2 rank groups, one member permanently
# failed, quorum 3/4), a serve-race lap storming the forecast store's
# query paths while it ingests live, a short fuzz of the store's manifest
# decoder, a mixed-kernel-precision race lap plus its audited CLI gate,
# and the eight benchmarks writing BENCH_1.json through BENCH_8.json at
# the repo root.
set -eu
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

echo "== go vet"
go vet ./...
echo "== go build"
go build ./...
echo "== go test -race"
go test -race ./...
echo "== conc schedule race stress (2 ranks, p2p rearrange)"
go test -race ./internal/core -run 'TestConcScheduleRaceStress|TestConcSeqBitForBit' -count 1
echo "== decomposed atmosphere race lap (4 ranks, both schedules, halo p2p)"
go test -race ./internal/core -run 'TestDecompRankCountInvariance|TestDecompRestartRoundTrip' -count 1
echo "== decomposed ocean/ice race lap (tripolar halos, serial-parallel equivalence)"
go test -race ./internal/grid -run 'TestTripolar' -count 1
go test -race ./internal/ocean ./internal/seaice -run 'TestSerialParallelEquivalence|TestParallelSerialIceAgreement|TestCompactionComposesWithBlockPartition' -count 1
echo "== ensemble isolation race lap (two concurrent worlds, dispatch alloc audit, shared fault plan)"
go test -race ./internal/ensemble -run 'TestTwoWorldsStepConcurrently|TestDispatchPathDoesNotAllocate' -count 1
go test -race ./internal/fault -run 'TestPlanConcurrentUse' -count 1
echo "== compressed wire race lap (gs32 halos + rearrangers, audited)"
go test -race ./internal/core -run 'TestWireGS32ConservationAudit' -count 1 -short
echo "== mixed kernel precision race lap (float32 kernel instantiations, audited)"
go test -race ./internal/core -run 'TestKernelPrecisionMixedConservationAudit' -count 1 -short
echo "== serve race lap (concurrent query storm against a live ingesting store)"
go test -race ./internal/statestore -run 'TestConcurrentQueryStorm|TestAnalogPipelineMatchesBruteForce' -count 1
go test -race ./internal/core -run 'TestServeLiveIngest' -count 1
echo "== fuzz FuzzReadSubfile ($FUZZTIME)"
go test ./internal/pario -run '^$' -fuzz FuzzReadSubfile -fuzztime "$FUZZTIME"
echo "== fuzz FuzzGroupScaledRoundTrip ($FUZZTIME)"
go test ./internal/precision -run '^$' -fuzz FuzzGroupScaledRoundTrip -fuzztime "$FUZZTIME"
echo "== fuzz FuzzManifestDecode ($FUZZTIME)"
go test ./internal/statestore -run '^$' -fuzz FuzzManifestDecode -fuzztime "$FUZZTIME"
echo "== conservation budget gate (cons remap, 4 decomposed ranks, conc schedule, 1e-10)"
go run ./cmd/ap3esm -config 25v10 -days 0.31 -ranks 4 -schedule conc -remap cons -audit-gate 1e-10
echo "== compressed wire budget gate (gs32, 2 ranks, conc schedule, 1e-10)"
go run ./cmd/ap3esm -config 25v10 -days 0.31 -ranks 2 -schedule conc -remap cons -wire gs32 -audit-gate 1e-10
echo "== mixed kernel budget gate (kprec mixed, 2 ranks, conc schedule, 1e-10)"
go run ./cmd/ap3esm -config 25v10 -days 0.31 -ranks 2 -schedule conc -remap cons -kprec mixed -audit-gate 1e-10
echo "== resilient rollback lap (2 decomposed ranks, checkpoint + injected NaN)"
RESTART_DIR="$(mktemp -d)"
go run ./cmd/ap3esm -config 25v10 -days 0.31 -ranks 2 -remap cons \
  -checkpoint-every 5 -restart-dir "$RESTART_DIR" -faults 'nan@esm.step:21'
rm -rf "$RESTART_DIR"
echo "== degraded ensemble lap (4 members, 2 rank groups, 1 permanent failure, quorum 3/4)"
go run ./cmd/ensemble -members 4 -groups 2 -quorum 3 -attempts 2 -retries 1 \
  -member-faults '1=nan@esm.step:1:repeat' -expect-completed 3 -expect-quarantined 1
echo "== bench1"
go run ./cmd/bench1 -out BENCH_1.json
echo "== bench2 smoke (schema self-validation)"
go run ./cmd/bench2 -steps 6 -out /tmp/bench2_smoke.json
rm -f /tmp/bench2_smoke.json
echo "== bench2"
go run ./cmd/bench2 -out BENCH_2.json
echo "== bench3 smoke (schema self-validation)"
go run ./cmd/bench3 -steps 8 -out /tmp/bench3_smoke.json
rm -f /tmp/bench3_smoke.json
echo "== bench3"
go run ./cmd/bench3 -out BENCH_3.json
echo "== bench4 smoke (schema self-validation)"
go run ./cmd/bench4 -steps 8 -out /tmp/bench4_smoke.json
rm -f /tmp/bench4_smoke.json
echo "== bench4"
go run ./cmd/bench4 -out BENCH_4.json
echo "== bench5 smoke (schema self-validation, sub-gate stall)"
go run ./cmd/bench5 -members 4 -hours 0.25 -stall 200ms -out /tmp/bench5_smoke.json
rm -f /tmp/bench5_smoke.json
echo "== bench5"
go run ./cmd/bench5 -out BENCH_5.json
echo "== bench6 smoke (schema self-validation)"
go run ./cmd/bench6 -steps 6 -out /tmp/bench6_smoke.json
rm -f /tmp/bench6_smoke.json
echo "== bench6"
go run ./cmd/bench6 -out BENCH_6.json
echo "== bench7 smoke (schema self-validation, QPS + analog gates)"
go run ./cmd/bench7 -steps 10 -snapshots 12 -queries 1200 -out /tmp/bench7_smoke.json
rm -f /tmp/bench7_smoke.json
echo "== bench7"
go run ./cmd/bench7 -out BENCH_7.json
echo "== bench8 smoke (schema self-validation)"
go run ./cmd/bench8 -steps 6 -out /tmp/bench8_smoke.json
rm -f /tmp/bench8_smoke.json
echo "== bench8"
go run ./cmd/bench8 -out BENCH_8.json
