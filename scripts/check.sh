#!/bin/sh
# Full local gate, equivalent to `make check`: vet, build, race-enabled
# tests, and the short SYPD benchmark writing BENCH_1.json at the repo root.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...
echo "== go build"
go build ./...
echo "== go test -race"
go test -race ./...
echo "== bench1"
go run ./cmd/bench1 -out BENCH_1.json
