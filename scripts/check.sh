#!/bin/sh
# Full local gate, equivalent to `make check`: vet, build, race-enabled
# tests, a short fuzz of the restart-file decoder, and the short SYPD
# benchmark writing BENCH_1.json at the repo root.
set -eu
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

echo "== go vet"
go vet ./...
echo "== go build"
go build ./...
echo "== go test -race"
go test -race ./...
echo "== fuzz FuzzReadSubfile ($FUZZTIME)"
go test ./internal/pario -run '^$' -fuzz FuzzReadSubfile -fuzztime "$FUZZTIME"
echo "== bench1"
go run ./cmd/bench1 -out BENCH_1.json
