package pp

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func spaces() []Space {
	return []Space{Serial{}, NewHost(4), NewCPE(16)}
}

func TestParallelForCoversRangeOnAllBackends(t *testing.T) {
	for _, s := range spaces() {
		for _, n := range []int{0, 1, 7, 64, 1000} {
			hits := make([]int32, n)
			s.ParallelFor(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Errorf("%s n=%d: index %d visited %d times", s.Name(), n, i, h)
				}
			}
		}
	}
}

func TestParallelReduceSumMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 5000
	vals := make([]float64, n)
	var want float64
	for i := range vals {
		vals[i] = float64(rng.Intn(100))
		want += vals[i]
	}
	for _, s := range spaces() {
		got := s.ParallelReduce(n, 0, func(i int) float64 { return vals[i] }, func(a, b float64) float64 { return a + b })
		if got != want {
			t.Errorf("%s: sum = %v, want %v", s.Name(), got, want)
		}
	}
}

func TestParallelReduceMax(t *testing.T) {
	vals := []float64{3, -1, 9, 2, 9.5, 0}
	for _, s := range spaces() {
		got := s.ParallelReduce(len(vals), math.Inf(-1),
			func(i int) float64 { return vals[i] },
			math.Max)
		if got != 9.5 {
			t.Errorf("%s: max = %v", s.Name(), got)
		}
	}
}

func TestReduceEmptyRangeReturnsIdentity(t *testing.T) {
	for _, s := range spaces() {
		got := s.ParallelReduce(0, 42, func(i int) float64 { return 0 }, func(a, b float64) float64 { return a + b })
		if got != 42 {
			t.Errorf("%s: got %v", s.Name(), got)
		}
	}
}

func TestBackendEquivalenceProperty(t *testing.T) {
	// The same kernel must produce identical output on every backend.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		in := make([]float64, n)
		for i := range in {
			in[i] = rng.Float64()
		}
		ref := make([]float64, n)
		Serial{}.ParallelFor(n, func(i int) { ref[i] = in[i]*in[i] + 1 })
		for _, s := range []Space{NewHost(3), NewCPE(8)} {
			out := make([]float64, n)
			s.ParallelFor(n, func(i int) { out[i] = in[i]*in[i] + 1 })
			for i := range out {
				if out[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCPEScratchCapacity(t *testing.T) {
	c := NewCPE(0)
	if c.Concurrency() != CPEGangSize {
		t.Errorf("gang = %d", c.Concurrency())
	}
	for w := 0; w < CPEGangSize; w++ {
		if len(c.Scratch(w)) != LDMFloats {
			t.Fatalf("worker %d scratch len %d", w, len(c.Scratch(w)))
		}
	}
	// Scratch areas must be distinct.
	c.Scratch(0)[0] = 1
	if c.Scratch(1)[0] == 1 {
		t.Error("scratch areas alias")
	}
}

func TestDefaultSpace(t *testing.T) {
	for name, want := range map[string]string{
		"Serial": "Serial", "MPE": "Serial",
		"Host": "Host", "openmp": "Host",
		"CPE": "CPE", "athread": "CPE",
	} {
		s, err := DefaultSpace(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != want {
			t.Errorf("%s -> %s, want %s", name, s.Name(), want)
		}
	}
	if _, err := DefaultSpace("CUDA9000"); err == nil {
		t.Error("expected error for unknown space")
	}
}

func TestMDRangeTileDecomposition(t *testing.T) {
	r, err := NewMDRange([]int{0, 0}, []int{10, 7}, []int{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	// ceil(10/4)=3 by ceil(7/3)=3 tiles.
	if r.NumTiles() != 9 {
		t.Fatalf("tiles = %d", r.NumTiles())
	}
	covered := [10][7]int{}
	for tile := 0; tile < r.NumTiles(); tile++ {
		lo, hi := r.tileBounds(tile)
		for i := lo[0]; i < hi[0]; i++ {
			for j := lo[1]; j < hi[1]; j++ {
				covered[i][j]++
			}
		}
	}
	for i := range covered {
		for j := range covered[i] {
			if covered[i][j] != 1 {
				t.Errorf("(%d,%d) covered %d times", i, j, covered[i][j])
			}
		}
	}
}

func TestMDRangeValidation(t *testing.T) {
	if _, err := NewMDRange([]int{0}, []int{1, 2}, []int{1}); err == nil {
		t.Error("rank mismatch accepted")
	}
	if _, err := NewMDRange([]int{5}, []int{2}, []int{1}); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := NewMDRange(nil, nil, nil); err == nil {
		t.Error("empty range accepted")
	}
	// Zero tile defaults to the whole extent.
	r, err := NewMDRange([]int{0, 0}, []int{8, 8}, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumTiles() != 1 {
		t.Errorf("tiles = %d", r.NumTiles())
	}
}

func TestParallelForMD2WithProfiling(t *testing.T) {
	r, _ := NewMDRange([]int{0, 0}, []int{32, 32}, []int{8, 8})
	var sum int64
	stats := ParallelForMD2(NewHost(4), r, true, func(i, j int) {
		atomic.AddInt64(&sum, int64(i+j))
	})
	want := int64(0)
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			want += int64(i + j)
		}
	}
	if sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
	if stats.Tiles != 16 || len(stats.PerTile) != 16 {
		t.Errorf("stats tiles = %d", stats.Tiles)
	}
	if stats.Imbalance() < 1 {
		t.Errorf("imbalance = %v < 1", stats.Imbalance())
	}
}

func TestParallelForMD3(t *testing.T) {
	r, _ := NewMDRange([]int{0, 0, 0}, []int{3, 4, 5}, []int{1, 2, 5})
	hits := make([]int32, 3*4*5)
	ParallelForMD3(NewCPE(4), r, func(i, j, k int) {
		atomic.AddInt32(&hits[(i*4+j)*5+k], 1)
	})
	for idx, h := range hits {
		if h != 1 {
			t.Fatalf("cell %d visited %d times", idx, h)
		}
	}
}

func TestRegistryRegisterAndLaunch(t *testing.T) {
	reg := NewRegistry()
	out := make([]float64, 10)
	h := reg.MustRegister("ocean.tracer.advect", func(s Space, args any) {
		in := args.([]float64)
		s.ParallelFor(len(in), func(i int) { out[i] = 2 * in[i] })
	})
	in := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if err := reg.Launch(h, Serial{}, in); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != 2*float64(i) {
			t.Errorf("out[%d] = %v", i, out[i])
		}
	}
	if err := reg.LaunchByName("ocean.tracer.advect", NewHost(2), in); err != nil {
		t.Fatal(err)
	}
	if got := reg.LaunchCount("ocean.tracer.advect"); got != 2 {
		t.Errorf("launch count = %d", got)
	}
}

func TestRegistryDuplicateAndMissing(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister("k", func(Space, any) {})
	if _, err := reg.Register("k", func(Space, any) {}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := reg.Launch(HashName("nope"), Serial{}, nil); err == nil {
		t.Error("launch of unregistered kernel succeeded")
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "k" {
		t.Errorf("names = %v", names)
	}
}

func TestHashNameStable(t *testing.T) {
	// FNV-1a of "a" is a fixed public value; guards accidental algorithm change.
	if HashName("a") != 0xaf63dc4c8601ec8c {
		t.Errorf("HashName(a) = %#x", HashName("a"))
	}
	if HashName("a") == HashName("b") {
		t.Error("distinct names hash equal")
	}
}

func TestView3IndexingAndLevels(t *testing.T) {
	v := NewView3("temp", 3, 4, 5)
	if v.Size() != 60 {
		t.Fatalf("size = %d", v.Size())
	}
	v.Set(2, 3, 4, 7.5)
	if v.At(2, 3, 4) != 7.5 {
		t.Error("set/at mismatch")
	}
	if v.Index(1, 0, 0) != 20 {
		t.Errorf("index = %d", v.Index(1, 0, 0))
	}
	lvl := v.Level(2)
	if len(lvl) != 20 || lvl[19] != 7.5 {
		t.Errorf("level slice wrong: len=%d last=%v", len(lvl), lvl[len(lvl)-1])
	}
	v.Fill(1)
	if v.At(0, 0, 0) != 1 || v.At(2, 3, 4) != 1 {
		t.Error("fill failed")
	}
	w := NewView3("copy", 3, 4, 5)
	w.CopyFrom(v)
	if w.At(1, 2, 3) != 1 {
		t.Error("copy failed")
	}
}

func TestView3CopyExtentMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewView3("a", 1, 2, 3).CopyFrom(NewView3("b", 3, 2, 1))
}
