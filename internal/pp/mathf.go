package pp

import (
	"math"
	"unsafe"
)

// Exp is the kernel layer's single-source exponential. The float64
// instantiation is exactly math.Exp, so float64 kernel bodies that call it
// stay bit-for-bit with the code they replaced; the float32 instantiation
// takes FastExpf, the vectorizable polynomial path that makes the mixed
// kernels worth running — transcendental calls, not arithmetic width, are
// where scalar float32 actually buys throughput.
//
// The size test is a compile-time constant per instantiation (float32 and
// float64 stencil to different shapes), so the untaken branch folds away.
func Exp[T Float](x T) T {
	if unsafe.Sizeof(x) == 4 {
		return T(FastExpf(float32(x)))
	}
	return T(math.Exp(float64(x)))
}

// FastExpf computes e^x in float32 with a branch-light polynomial: reduce
// x = n·ln2 + r with r in [-ln2/2, ln2/2] (Cody–Waite two-part ln2, so the
// reduction stays exact for |n| up to 128), evaluate e^r by a degree-6
// Taylor polynomial (truncation ~1e-8 relative, under float32's ~6e-8
// rounding — "fast", not correctly rounded), and apply 2^n by constructing
// the scale's exponent bits directly. Inputs outside the float32-normal
// result range clamp to +Inf and 0; the subnormal fringe below e^-87
// flushes to zero. NaN propagates.
func FastExpf(x float32) float32 {
	const (
		log2e = float32(1.4426950408889634)
		// ln2 split so n*ln2hi is exact in float32 (11-bit mantissa × 8-bit n).
		ln2hi = float32(0.693359375)
		ln2lo = float32(-2.12194440e-4)
		// Taylor coefficients of e^r: 1/k!.
		c2 = float32(0.5)
		c3 = float32(1.0 / 6)
		c4 = float32(1.0 / 24)
		c5 = float32(1.0 / 120)
		c6 = float32(1.0 / 720)
	)
	if x != x { // NaN
		return x
	}
	if x > 88.7 { // e^x overflows float32
		return float32(math.Inf(1))
	}
	if x < -87 { // result subnormal or zero: flush
		return 0
	}
	// n = round-half-up(x/ln2) via truncate-and-adjust; |n| <= 128 fits int32.
	zn := x*log2e + 0.5
	n := int32(zn)
	if float32(n) > zn {
		n--
	}
	fn := float32(n)
	r := (x - fn*ln2hi) - fn*ln2lo
	p := 1 + r*(1+r*(c2+r*(c3+r*(c4+r*(c5+r*c6)))))
	return p * math.Float32frombits(uint32(n+127)<<23)
}
