package pp

import "fmt"

// View3 is a rank-3 array view with (k, j, i) layout-right indexing —
// level outermost, longitude innermost — the memory layout shared by the
// ocean and atmosphere field storage. It is the minimal analogue of a
// Kokkos::View sufficient for this reproduction.
type View3 struct {
	Data       []float64
	NK, NJ, NI int
	Label      string
}

// NewView3 allocates a zeroed nk × nj × ni view.
func NewView3(label string, nk, nj, ni int) *View3 {
	if nk < 0 || nj < 0 || ni < 0 {
		panic(fmt.Sprintf("pp: negative view extent %d/%d/%d", nk, nj, ni))
	}
	return &View3{
		Data: make([]float64, nk*nj*ni),
		NK:   nk, NJ: nj, NI: ni,
		Label: label,
	}
}

// Index returns the flat offset of (k, j, i).
func (v *View3) Index(k, j, i int) int { return (k*v.NJ+j)*v.NI + i }

// At returns the element at (k, j, i).
func (v *View3) At(k, j, i int) float64 { return v.Data[(k*v.NJ+j)*v.NI+i] }

// Set stores x at (k, j, i).
func (v *View3) Set(k, j, i int, x float64) { v.Data[(k*v.NJ+j)*v.NI+i] = x }

// Level returns the contiguous slice of level k (a nj × ni plane).
func (v *View3) Level(k int) []float64 {
	base := k * v.NJ * v.NI
	return v.Data[base : base+v.NJ*v.NI]
}

// Fill sets every element to x.
func (v *View3) Fill(x float64) {
	for i := range v.Data {
		v.Data[i] = x
	}
}

// CopyFrom copies another view's contents; extents must match.
func (v *View3) CopyFrom(src *View3) {
	if v.NK != src.NK || v.NJ != src.NJ || v.NI != src.NI {
		panic(fmt.Sprintf("pp: view copy extent mismatch %s(%d,%d,%d) <- %s(%d,%d,%d)",
			v.Label, v.NK, v.NJ, v.NI, src.Label, src.NK, src.NJ, src.NI))
	}
	copy(v.Data, src.Data)
}

// Size returns the total element count.
func (v *View3) Size() int { return len(v.Data) }
