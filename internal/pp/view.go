package pp

import "fmt"

// View3 is a rank-3 array view with (k, j, i) layout-right indexing —
// level outermost, longitude innermost — the memory layout shared by the
// ocean and atmosphere field storage. It is the minimal analogue of a
// Kokkos::View sufficient for this reproduction.
type View3 struct {
	Data       []float64
	NK, NJ, NI int
	Label      string
}

// NewView3 allocates a zeroed nk × nj × ni view.
func NewView3(label string, nk, nj, ni int) *View3 {
	if nk < 0 || nj < 0 || ni < 0 {
		panic(fmt.Sprintf("pp: negative view extent %d/%d/%d", nk, nj, ni))
	}
	return &View3{
		Data: make([]float64, nk*nj*ni),
		NK:   nk, NJ: nj, NI: ni,
		Label: label,
	}
}

// Index returns the flat offset of (k, j, i).
func (v *View3) Index(k, j, i int) int { return (k*v.NJ+j)*v.NI + i }

// At returns the element at (k, j, i).
func (v *View3) At(k, j, i int) float64 { return v.Data[(k*v.NJ+j)*v.NI+i] }

// Set stores x at (k, j, i).
func (v *View3) Set(k, j, i int, x float64) { v.Data[(k*v.NJ+j)*v.NI+i] = x }

// Level returns the contiguous slice of level k (a nj × ni plane).
func (v *View3) Level(k int) []float64 {
	base := k * v.NJ * v.NI
	return v.Data[base : base+v.NJ*v.NI]
}

// Fill sets every element to x.
func (v *View3) Fill(x float64) {
	for i := range v.Data {
		v.Data[i] = x
	}
}

// CopyFrom copies another view's contents; extents must match.
func (v *View3) CopyFrom(src *View3) {
	if v.NK != src.NK || v.NJ != src.NJ || v.NI != src.NI {
		panic(fmt.Sprintf("pp: view copy extent mismatch %s(%d,%d,%d) <- %s(%d,%d,%d)",
			v.Label, v.NK, v.NJ, v.NI, src.Label, src.NK, src.NJ, src.NI))
	}
	copy(v.Data, src.Data)
}

// Size returns the total element count.
func (v *View3) Size() int { return len(v.Data) }

// View3Of is the generic counterpart of View3 for the single-source kernel
// layer: it binds a caller-owned buffer (no allocation, no copy) and carries
// the extents so binding validates shape once, outside the hot loop. Kernel
// bodies grab Data and index flat — the Kokkos-subview idiom where the view
// is the binding/extent contract and the inner loop works on raw storage.
type View3Of[T Float] struct {
	Data       []T
	NK, NJ, NI int
	Label      string
}

// BindView3 wraps data as an nk × nj × ni view over the caller's buffer,
// panicking on an extent/length mismatch — shape errors surface at bind
// time, not as silent out-of-range math inside a kernel.
func BindView3[T Float](label string, data []T, nk, nj, ni int) View3Of[T] {
	if nk < 0 || nj < 0 || ni < 0 || len(data) != nk*nj*ni {
		panic(fmt.Sprintf("pp: view %s binds %d elements to extents (%d,%d,%d)",
			label, len(data), nk, nj, ni))
	}
	return View3Of[T]{Data: data, NK: nk, NJ: nj, NI: ni, Label: label}
}

// Index returns the flat offset of (k, j, i).
func (v View3Of[T]) Index(k, j, i int) int { return (k*v.NJ+j)*v.NI + i }

// At returns the element at (k, j, i).
func (v View3Of[T]) At(k, j, i int) T { return v.Data[(k*v.NJ+j)*v.NI+i] }

// Set stores x at (k, j, i).
func (v View3Of[T]) Set(k, j, i int, x T) { v.Data[(k*v.NJ+j)*v.NI+i] = x }

// Level returns the contiguous nj × ni plane of level k.
func (v View3Of[T]) Level(k int) []T {
	base := k * v.NJ * v.NI
	return v.Data[base : base+v.NJ*v.NI]
}

// Convert32 narrows src into dst with a 4-way unrolled loop — the mirror
// refresh on the mixed-precision path. Lengths must match.
func Convert32(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("pp: convert32 length mismatch %d != %d", len(dst), len(src)))
	}
	n := len(src) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] = float32(src[i])
		dst[i+1] = float32(src[i+1])
		dst[i+2] = float32(src[i+2])
		dst[i+3] = float32(src[i+3])
	}
	for i := n; i < len(src); i++ {
		dst[i] = float32(src[i])
	}
}

// Convert64 widens src into dst with a 4-way unrolled loop — publishing
// mixed-precision kernel results back into the float64 model state.
func Convert64(dst []float64, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("pp: convert64 length mismatch %d != %d", len(dst), len(src)))
	}
	n := len(src) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] = float64(src[i])
		dst[i+1] = float64(src[i+1])
		dst[i+2] = float64(src[i+2])
		dst[i+3] = float64(src[i+3])
	}
	for i := n; i < len(src); i++ {
		dst[i] = float64(src[i])
	}
}
