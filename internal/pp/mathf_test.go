package pp

import (
	"math"
	"testing"
)

// The float64 instantiation of Exp must be math.Exp bit-for-bit — that is
// what lets kernel bodies call it and keep the f64 path pinned by the
// golden tests.
func TestExpFloat64BitForBit(t *testing.T) {
	for x := -50.0; x <= 50.0; x += 0.7 {
		if got, want := Exp(x), math.Exp(x); got != want {
			t.Fatalf("Exp[float64](%v) = %v, want math.Exp = %v", x, got, want)
		}
	}
}

// FastExpf must track math.Exp within a few float32 ulps across the range
// the radiation and kernel sweeps use (attenuation arguments are negative;
// moderate positive arguments ride along for generality).
func TestFastExpfAccuracy(t *testing.T) {
	worst := 0.0
	for x := -86.0; x <= 60.0; x += 0.0173 {
		got := float64(FastExpf(float32(x)))
		want := math.Exp(float64(float32(x)))
		rel := math.Abs(got-want) / want
		if rel > worst {
			worst = rel
		}
		if rel > 1e-6 {
			t.Fatalf("FastExpf(%v) = %v, want %v (rel err %.3e)", x, got, want, rel)
		}
	}
	t.Logf("worst relative error %.3e", worst)
	if worst > 5e-7 {
		t.Errorf("worst relative error %.3e exceeds the 5e-7 design envelope", worst)
	}
}

// The edge behaviour the kernels rely on: saturated attenuation underflows
// cleanly to zero, overflow saturates to +Inf, NaN propagates, and the
// float32 instantiation of the generic Exp routes through FastExpf.
func TestFastExpfEdges(t *testing.T) {
	if got := FastExpf(-200); got != 0 {
		t.Errorf("FastExpf(-200) = %v, want 0", got)
	}
	if got := FastExpf(200); !math.IsInf(float64(got), 1) {
		t.Errorf("FastExpf(200) = %v, want +Inf", got)
	}
	if got := FastExpf(float32(math.NaN())); got == got {
		t.Errorf("FastExpf(NaN) = %v, want NaN", got)
	}
	if got := FastExpf(0); got != 1 {
		t.Errorf("FastExpf(0) = %v, want 1", got)
	}
	if got, want := Exp(float32(-3.25)), FastExpf(-3.25); got != want {
		t.Errorf("Exp[float32](-3.25) = %v, want FastExpf = %v", got, want)
	}
}
