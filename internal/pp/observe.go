package pp

// Observer is the instrumentation hook consumed by the portability layer —
// the structural subset of obs.Observer it needs, declared locally so pp
// (at the bottom of the dependency order) does not import obs.
type Observer interface {
	AddCount(name string, delta int64)
	ObserveValue(name string, v float64)
}

// Instrumented wraps an execution space so every kernel launch and its
// iteration count are reported — the per-backend invocation accounting the
// paper's tile-profiling discussion (§5.3) builds on. The wrapper preserves
// the inner space's name, concurrency, and scheduling.
type Instrumented struct {
	inner Space
	o     Observer
}

// Instrument wraps s with launch accounting on o. A nil observer returns s
// unchanged, so disabled observability costs nothing.
func Instrument(s Space, o Observer) Space {
	if o == nil {
		return s
	}
	if in, ok := s.(*Instrumented); ok {
		s = in.inner // re-instrumenting replaces the observer, not stacks it
	}
	return &Instrumented{inner: s, o: o}
}

// Unwrap returns the underlying space.
func (in *Instrumented) Unwrap() Space { return in.inner }

// Name implements Space, transparently.
func (in *Instrumented) Name() string { return in.inner.Name() }

// Concurrency implements Space.
func (in *Instrumented) Concurrency() int { return in.inner.Concurrency() }

// ParallelFor implements Space, counting the launch before dispatch so the
// per-iteration path stays untouched.
func (in *Instrumented) ParallelFor(n int, f func(i int)) {
	in.o.AddCount("pp.for.launches", 1)
	in.o.AddCount("pp.for.iters", int64(n))
	in.inner.ParallelFor(n, f)
}

// ParallelReduce implements Space.
func (in *Instrumented) ParallelReduce(n int, identity float64, f func(i int) float64, join func(a, b float64) float64) float64 {
	in.o.AddCount("pp.reduce.launches", 1)
	in.o.AddCount("pp.reduce.iters", int64(n))
	return in.inner.ParallelReduce(n, identity, f, join)
}

// Record publishes the profile into the observer: one histogram sample per
// tile time (seconds) under name+".tile_seconds" and the max/mean imbalance
// factor under name+".imbalance" — the tile-imbalance distribution of §5.3.
func (s *TileStats) Record(o Observer, name string) {
	if s == nil || o == nil {
		return
	}
	for _, d := range s.PerTile {
		o.ObserveValue(name+".tile_seconds", d.Seconds())
	}
	o.ObserveValue(name+".imbalance", s.Imbalance())
}
