package pp

import (
	"math"
	"testing"
)

// Small-n regression for the CPE worker cap: spawning min(GOMAXPROCS, 64)
// goroutines when n <= chunk leaves all but one idle. With the cap at
// ⌈n/chunk⌉ the results must stay identical to the serial reference on
// every backend, across n spanning empty, sub-chunk, chunk-boundary, and
// multi-gang sizes.
func TestSmallNAllBackends(t *testing.T) {
	sizes := []int{0, 1, 3, 15, 16, 17, 63, 64, 65, 128, 129, 1024, 1057}
	backends := []Space{Serial{}, NewHost(4), NewCPE(16), NewCPE(64), NewCPE(1),
		NewVec(Serial{}), NewVec(NewHost(4)), NewVec(NewCPE(16))}
	for _, n := range sizes {
		in := make([]float64, n)
		for i := range in {
			// Integer-valued floats: sums are exact under any join order, so
			// the cross-backend identity below is order-insensitive (matching
			// the convention of TestParallelReduceSumMatchesSerial).
			in[i] = float64((i*37)%201 - 100)
		}
		ref := make([]float64, n)
		Serial{}.ParallelFor(n, func(i int) { ref[i] = in[i]*in[i] + 1 })
		refSum := Serial{}.ParallelReduce(n, 0,
			func(i int) float64 { return in[i] },
			func(a, b float64) float64 { return a + b })
		refMax := Serial{}.ParallelReduce(n, math.Inf(-1),
			func(i int) float64 { return in[i] },
			math.Max)
		for _, s := range backends {
			out := make([]float64, n)
			s.ParallelFor(n, func(i int) { out[i] = in[i]*in[i] + 1 })
			for i := range out {
				if out[i] != ref[i] {
					t.Fatalf("%s n=%d: ParallelFor out[%d] = %g, want %g", s.Name(), n, i, out[i], ref[i])
				}
			}
			sum := s.ParallelReduce(n, 0,
				func(i int) float64 { return in[i] },
				func(a, b float64) float64 { return a + b })
			if sum != refSum {
				t.Errorf("%s n=%d: ParallelReduce sum = %.17g, want %.17g", s.Name(), n, sum, refSum)
			}
			max := s.ParallelReduce(n, math.Inf(-1),
				func(i int) float64 { return in[i] },
				math.Max)
			if max != refMax {
				t.Errorf("%s n=%d: ParallelReduce max = %g, want %g", s.Name(), n, max, refMax)
			}
		}
	}
}

// The cap itself: never more workers than occupied chunks, never zero for
// positive n, never above the gang.
func TestCPEProcsFor(t *testing.T) {
	c := NewCPE(16)
	for _, tc := range []struct{ n, max int }{
		{1, 1}, {16, 1}, {17, 2}, {32, 2}, {33, 3}, {16 * 64, 64}, {1 << 20, 64},
	} {
		got := c.procsFor(tc.n)
		if got < 1 || got > tc.max || got > c.gang {
			t.Errorf("procsFor(%d) = %d, want in [1, %d]", tc.n, got, tc.max)
		}
	}
}
