// Package pp is the performance-portability layer of the reproduction — the
// stand-in for Kokkos (used by the ocean component) and OpenMP/SWGOMP (used
// by the atmosphere, land, and sea-ice components) described in §5.1 and
// §5.3 of the paper.
//
// A kernel is written once against ParallelFor/ParallelReduce and an
// execution-space handle, and runs unchanged on any backend:
//
//   - Serial: the MPE-only baseline (one management core per process);
//   - Host: a goroutine worker pool, the OpenMP-threads analogue;
//   - CPE: a simulated Sunway compute-processing-element cluster — a fixed
//     64-worker gang with block-cyclic scheduling and per-worker scratch,
//     mirroring the athread/LDM programming model;
//   - Vec: a wrapper over any of the above that keeps the inner schedule but
//     signals mixed precision — registered kernels run their float32
//     instantiations with unrolled inner loops (see kernel.go, vec.go).
//
// The package also provides the hash-based kernel registration and callback
// mechanism the paper introduces for template-metaprogramming-constrained
// Sunway toolchains (§5.3), multi-dimensional tiled ranges with per-tile
// profiling, and simple device views.
package pp

import (
	"fmt"
	"runtime"
	"sync"
)

// Space is an execution space: a place where parallel kernels run.
type Space interface {
	// Name identifies the backend ("Serial", "Host", "CPE", "Vec(...)").
	Name() string
	// Concurrency is the number of workers the space schedules onto.
	Concurrency() int
	// ParallelFor executes f(i) for every i in [0, n).
	ParallelFor(n int, f func(i int))
	// ParallelReduce executes f(i) for every i in [0, n) and combines the
	// results with join, starting from identity. join must be associative
	// and commutative.
	ParallelReduce(n int, identity float64, f func(i int) float64, join func(a, b float64) float64) float64
}

// Serial runs kernels on the calling goroutine. It models the MPE-only
// baseline configuration from Table 2.
type Serial struct{}

// Name implements Space.
func (Serial) Name() string { return "Serial" }

// Concurrency implements Space.
func (Serial) Concurrency() int { return 1 }

// ParallelFor implements Space.
func (Serial) ParallelFor(n int, f func(i int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}

// ParallelReduce implements Space.
func (Serial) ParallelReduce(n int, identity float64, f func(i int) float64, join func(a, b float64) float64) float64 {
	acc := identity
	for i := 0; i < n; i++ {
		acc = join(acc, f(i))
	}
	return acc
}

// Host is a shared worker-pool space, the analogue of an OpenMP parallel
// region on the host cores.
type Host struct {
	workers int
}

// NewHost creates a Host space with the given worker count; workers <= 0
// selects GOMAXPROCS.
func NewHost(workers int) *Host {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Host{workers: workers}
}

// Name implements Space.
func (h *Host) Name() string { return "Host" }

// Concurrency implements Space.
func (h *Host) Concurrency() int { return h.workers }

// ParallelFor implements Space with a static block schedule, the OpenMP
// default ("schedule(static)").
func (h *Host) ParallelFor(n int, f func(i int)) {
	parallelForBlocks(h.workers, n, f)
}

// ParallelReduce implements Space. Each worker reduces its block privately
// and block results are joined in worker order, so the result is
// deterministic for a fixed worker count.
func (h *Host) ParallelReduce(n int, identity float64, f func(i int) float64, join func(a, b float64) float64) float64 {
	return parallelReduceBlocks(h.workers, n, identity, f, join)
}

// CPE simulates one Sunway compute-processing-element cluster: a gang of 64
// workers with block-cyclic scheduling (the athread loop-mapping produced by
// SWGOMP) and a fixed-size per-worker scratch buffer standing in for the
// 256 KB local data memory (LDM).
type CPE struct {
	gang    int
	chunk   int
	scratch [][]float64
}

// CPEGangSize is the number of compute processing elements in one Sunway
// core group.
const CPEGangSize = 64

// LDMFloats is the per-CPE scratch capacity in float64 words (256 KB LDM).
const LDMFloats = 256 * 1024 / 8

// NewCPE creates a simulated CPE cluster. chunk is the block-cyclic chunk
// size; chunk <= 0 selects 64, a typical SWGOMP mapping.
func NewCPE(chunk int) *CPE {
	if chunk <= 0 {
		chunk = 64
	}
	s := make([][]float64, CPEGangSize)
	for i := range s {
		s[i] = make([]float64, LDMFloats)
	}
	return &CPE{gang: CPEGangSize, chunk: chunk, scratch: s}
}

// Name implements Space.
func (c *CPE) Name() string { return "CPE" }

// Concurrency implements Space.
func (c *CPE) Concurrency() int { return c.gang }

// Scratch exposes worker w's LDM-like scratch slice. Kernels that want the
// Sunway tiling style stage data here; the simulation only enforces the
// capacity, not the latency.
func (c *CPE) Scratch(w int) []float64 { return c.scratch[w] }

// procsFor caps the spawned goroutines at the number of occupied chunks
// ⌈n/chunk⌉: beyond that, block-cyclic workers have no chunk to run, so
// spawning them only burns scheduler time on small n.
func (c *CPE) procsFor(n int) int {
	procs := runtime.GOMAXPROCS(0)
	if procs > c.gang {
		procs = c.gang
	}
	if chunks := (n + c.chunk - 1) / c.chunk; procs > chunks {
		procs = chunks
	}
	return procs
}

// ParallelFor implements Space with block-cyclic scheduling: worker w runs
// chunks w, w+gang, w+2·gang, … of size chunk.
func (c *CPE) ParallelFor(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	// The simulated gang multiplexes onto the real machine's cores.
	procs := c.procsFor(n)
	worker := func(p int) {
		for w := p; w < c.gang; w += procs {
			for start := w * c.chunk; start < n; start += c.gang * c.chunk {
				end := start + c.chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					f(i)
				}
			}
		}
	}
	if procs == 1 {
		worker(0)
		return
	}
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			worker(p)
		}(p)
	}
	wg.Wait()
}

// ParallelReduce implements Space. Per-worker partials are joined in worker
// order for determinism.
func (c *CPE) ParallelReduce(n int, identity float64, f func(i int) float64, join func(a, b float64) float64) float64 {
	if n <= 0 {
		return identity
	}
	procs := c.procsFor(n)
	partials := make([]float64, c.gang)
	touched := make([]bool, c.gang)
	// Worker p sweeps gang slots p, p+procs, … — the per-slot partials are
	// identical for any procs because joining happens per slot, in slot
	// order, below.
	worker := func(p int) {
		for w := p; w < c.gang; w += procs {
			acc := identity
			did := false
			for start := w * c.chunk; start < n; start += c.gang * c.chunk {
				end := start + c.chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					acc = join(acc, f(i))
					did = true
				}
			}
			partials[w] = acc
			touched[w] = did
		}
	}
	if procs == 1 {
		worker(0)
	} else {
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				worker(p)
			}(p)
		}
		wg.Wait()
	}
	acc := identity
	first := true
	for w, pv := range partials {
		if !touched[w] {
			continue
		}
		if first {
			acc = pv // identity already folded into this partial
			first = false
		} else {
			acc = join(acc, pv)
		}
	}
	return acc
}

// parallelForBlocks statically partitions [0,n) into one contiguous block
// per worker.
func parallelForBlocks(workers, n int, f func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

func parallelReduceBlocks(workers, n int, identity float64, f func(i int) float64, join func(a, b float64) float64) float64 {
	if n == 0 {
		return identity
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		acc := identity
		for i := 0; i < n; i++ {
			acc = join(acc, f(i))
		}
		return acc
	}
	partials := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := identity
			for i := lo; i < hi; i++ {
				acc = join(acc, f(i))
			}
			partials[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	acc := identity
	for _, p := range partials {
		acc = join(acc, p)
	}
	return acc
}

// DefaultSpace returns the backend selected by name, mirroring how the
// coupled model picks an implementation per architecture (§5.1.1).
func DefaultSpace(name string) (Space, error) {
	switch name {
	case "Serial", "serial", "MPE", "mpe":
		return Serial{}, nil
	case "Host", "host", "OpenMP", "openmp":
		return NewHost(0), nil
	case "CPE", "cpe", "Athread", "athread":
		return NewCPE(0), nil
	case "Vec", "vec":
		// Mixed-precision vectorized space scheduling on the host pool.
		return NewVec(NewHost(0)), nil
	default:
		return nil, fmt.Errorf("pp: unknown execution space %q", name)
	}
}
