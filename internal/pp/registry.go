package pp

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Kernel is a registered parallel kernel: it receives the execution space
// and an opaque argument bundle. On the real Sunway system, Kokkos kernels
// are C++ templates that the TMP-constrained device toolchain cannot
// instantiate; the paper's workaround (§5.3) registers each concrete kernel
// under a hash at host-compile time and dispatches on the device through a
// callback table. Registry reproduces that mechanism.
type Kernel func(s Space, args any)

// Registry maps kernel-name hashes to callbacks.
type Registry struct {
	mu      sync.RWMutex
	byHash  map[uint64]Kernel
	nameOf  map[uint64]string
	launces map[uint64]int
	obs     Observer
}

// SetObserver forwards per-kernel launch counts to o under
// "pp.kernel.<name>". A nil observer disables forwarding.
func (r *Registry) SetObserver(o Observer) {
	r.mu.Lock()
	r.obs = o
	r.mu.Unlock()
}

// NewRegistry returns an empty kernel registry.
func NewRegistry() *Registry {
	return &Registry{
		byHash:  make(map[uint64]Kernel),
		nameOf:  make(map[uint64]string),
		launces: make(map[uint64]int),
	}
}

// HashName computes the 64-bit FNV-1a hash used as the kernel's registration
// key, mirroring the paper's hash-based function registration.
func HashName(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Register adds a kernel under its name hash and returns the hash. A second
// registration under a colliding hash with a different name is an error —
// the failure mode the mechanism must guard against.
func (r *Registry) Register(name string, k Kernel) (uint64, error) {
	h := HashName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.nameOf[h]; ok {
		if prev != name {
			return 0, fmt.Errorf("pp: hash collision: %q and %q both hash to %#x", prev, name, h)
		}
		return 0, fmt.Errorf("pp: kernel %q already registered", name)
	}
	r.byHash[h] = k
	r.nameOf[h] = name
	return h, nil
}

// MustRegister is Register that panics on error, for package-level tables.
func (r *Registry) MustRegister(name string, k Kernel) uint64 {
	h, err := r.Register(name, k)
	if err != nil {
		panic(err)
	}
	return h
}

// Launch dispatches the kernel registered under hash h on space s.
func (r *Registry) Launch(h uint64, s Space, args any) error {
	r.mu.RLock()
	k, ok := r.byHash[h]
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("pp: no kernel registered under hash %#x", h)
	}
	r.mu.Lock()
	r.launces[h]++
	obs, name := r.obs, r.nameOf[h]
	r.mu.Unlock()
	if obs != nil {
		obs.AddCount("pp.kernel."+name, 1)
	}
	k(s, args)
	return nil
}

// LaunchByName is a convenience wrapper hashing the name first.
func (r *Registry) LaunchByName(name string, s Space, args any) error {
	return r.Launch(HashName(name), s, args)
}

// LaunchCount returns how many times the named kernel has been launched.
func (r *Registry) LaunchCount(name string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.launces[HashName(name)]
}

// Names returns the registered kernel names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nameOf))
	for _, n := range r.nameOf {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
