package pp

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
)

// Kernel is a registered parallel kernel: it receives the execution space
// and an opaque argument bundle. On the real Sunway system, Kokkos kernels
// are C++ templates that the TMP-constrained device toolchain cannot
// instantiate; the paper's workaround (§5.3) registers each concrete kernel
// under a hash at host-compile time and dispatches on the device through a
// callback table. Registry reproduces that mechanism. Kernel bodies select
// their precision instantiation from PrecOf(s) and read typed arguments out
// of the bundle, so one registration covers every backend × precision.
type Kernel func(s Space, args any)

// kernelEntry is one registered kernel. The observer metric name is
// precomputed at registration and the launch counter is atomic, so Launch
// does no allocation and takes no write lock on the hot path.
type kernelEntry struct {
	name     string
	metric   string
	k        Kernel
	launches atomic.Int64
}

// Registry maps kernel-name hashes to callbacks.
type Registry struct {
	mu     sync.RWMutex
	byHash map[uint64]*kernelEntry
	obs    Observer
}

// SetObserver forwards per-kernel launch counts to o under
// "pp.kernel.<name>". A nil observer disables forwarding.
func (r *Registry) SetObserver(o Observer) {
	r.mu.Lock()
	r.obs = o
	r.mu.Unlock()
}

// NewRegistry returns an empty kernel registry.
func NewRegistry() *Registry {
	return &Registry{byHash: make(map[uint64]*kernelEntry)}
}

// Kernels is the package-level default registry. Components register their
// hot kernels here at init time and drivers launch through it — one callback
// table per process, like the paper's host-compiled dispatch table.
var Kernels = NewRegistry()

// HashName computes the 64-bit FNV-1a hash used as the kernel's registration
// key, mirroring the paper's hash-based function registration.
func HashName(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Register adds a kernel under its name hash and returns the hash. A second
// registration under a colliding hash with a different name is an error —
// the failure mode the mechanism must guard against.
func (r *Registry) Register(name string, k Kernel) (uint64, error) {
	return r.registerHashed(HashName(name), name, k)
}

// registerHashed is the guts of Register with the hash supplied by the
// caller, so the collision branch is reachable from tests without mining
// for real FNV-1a collisions.
func (r *Registry) registerHashed(h uint64, name string, k Kernel) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byHash[h]; ok {
		if prev.name != name {
			return 0, fmt.Errorf("pp: hash collision: %q and %q both hash to %#x", prev.name, name, h)
		}
		return 0, fmt.Errorf("pp: kernel %q already registered", name)
	}
	r.byHash[h] = &kernelEntry{name: name, metric: "pp.kernel." + name, k: k}
	return h, nil
}

// MustRegister is Register that panics on error, for package-level tables.
func (r *Registry) MustRegister(name string, k Kernel) uint64 {
	h, err := r.Register(name, k)
	if err != nil {
		panic(err)
	}
	return h
}

// Launch dispatches the kernel registered under hash h on space s. The
// per-kernel count goes to the registry's observer (if set) and, when s is
// an Instrumented space, to that space's observer as well — so per-world
// accounting works without sharing a global observer across concurrent
// ensemble members.
func (r *Registry) Launch(h uint64, s Space, args any) error {
	r.mu.RLock()
	e, ok := r.byHash[h]
	obs := r.obs
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("pp: no kernel registered under hash %#x", h)
	}
	e.launches.Add(1)
	if obs != nil {
		obs.AddCount(e.metric, 1)
	}
	if in, isIn := s.(*Instrumented); isIn && in.o != nil {
		in.o.AddCount(e.metric, 1)
	}
	e.k(s, args)
	return nil
}

// MustLaunch is Launch that panics on error, for hot paths launching under
// hashes obtained from MustRegister (which cannot be unregistered).
func (r *Registry) MustLaunch(h uint64, s Space, args any) {
	if err := r.Launch(h, s, args); err != nil {
		panic(err)
	}
}

// LaunchByName is a convenience wrapper hashing the name first.
func (r *Registry) LaunchByName(name string, s Space, args any) error {
	return r.Launch(HashName(name), s, args)
}

// LaunchCount returns how many times the named kernel has been launched.
func (r *Registry) LaunchCount(name string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e, ok := r.byHash[HashName(name)]; ok {
		return int(e.launches.Load())
	}
	return 0
}

// Names returns the registered kernel names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byHash))
	for _, e := range r.byHash {
		out = append(out, e.name)
	}
	sort.Strings(out)
	return out
}
