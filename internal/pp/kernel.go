package pp

import "fmt"

// Float is the type-parameter constraint for single-source kernel bodies:
// one generic body instantiates at float64 (the bit-for-bit reference path)
// and at float32 (the vectorized mixed-precision path). This is the Go
// analogue of templating a Kokkos kernel over its scalar type — the FESOM2
// Fortran→Kokkos port keeps one kernel source across precisions the same
// way.
type Float interface {
	~float32 | ~float64
}

// Prec selects which instantiation of the kernel bodies a component runs.
type Prec int

const (
	// PrecF64 runs every kernel in float64 — bit-for-bit with the
	// pre-kernel-layer scalar code on Serial/Host/CPE.
	PrecF64 Prec = iota
	// PrecMixed runs the ported hot kernels in float32 with unrolled inner
	// loops, keeping accumulations, pressure/geopotential integrals, and
	// tracer transport in float64 (the precision policy in DESIGN.md).
	PrecMixed
)

// String implements fmt.Stringer, matching the -kprec flag spellings.
func (p Prec) String() string {
	switch p {
	case PrecF64:
		return "f64"
	case PrecMixed:
		return "mixed"
	default:
		return fmt.Sprintf("Prec(%d)", int(p))
	}
}

// ParsePrec parses the -kprec flag value.
func ParsePrec(s string) (Prec, error) {
	switch s {
	case "f64", "F64", "float64", "":
		return PrecF64, nil
	case "mixed", "Mixed", "f32", "float32":
		return PrecMixed, nil
	default:
		return PrecF64, fmt.Errorf("pp: unknown kernel precision %q (want f64 or mixed)", s)
	}
}
