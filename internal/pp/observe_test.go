package pp

import (
	"sync"
	"testing"
	"time"
)

// recordObserver collects counts and samples for the instrumentation tests.
type recordObserver struct {
	mu      sync.Mutex
	counts  map[string]int64
	samples map[string][]float64
}

func newRecordObserver() *recordObserver {
	return &recordObserver{counts: make(map[string]int64), samples: make(map[string][]float64)}
}

func (r *recordObserver) AddCount(name string, delta int64) {
	r.mu.Lock()
	r.counts[name] += delta
	r.mu.Unlock()
}

func (r *recordObserver) ObserveValue(name string, v float64) {
	r.mu.Lock()
	r.samples[name] = append(r.samples[name], v)
	r.mu.Unlock()
}

func TestInstrumentCountsLaunches(t *testing.T) {
	o := newRecordObserver()
	s := Instrument(NewHost(2), o)
	if s.Name() != "Host" {
		t.Fatalf("instrumented name = %q, want transparent Host", s.Name())
	}

	var mu sync.Mutex
	sum := 0
	s.ParallelFor(100, func(i int) {
		mu.Lock()
		sum += i
		mu.Unlock()
	})
	if sum != 4950 {
		t.Fatalf("ParallelFor result corrupted: sum = %d", sum)
	}
	got := s.ParallelReduce(10, 0, func(i int) float64 { return float64(i) },
		func(a, b float64) float64 { return a + b })
	if got != 45 {
		t.Fatalf("ParallelReduce = %g, want 45", got)
	}

	if o.counts["pp.for.launches"] != 1 || o.counts["pp.for.iters"] != 100 {
		t.Errorf("for counts = %v", o.counts)
	}
	if o.counts["pp.reduce.launches"] != 1 || o.counts["pp.reduce.iters"] != 10 {
		t.Errorf("reduce counts = %v", o.counts)
	}
}

func TestInstrumentNilAndRewrap(t *testing.T) {
	base := NewHost(2)
	if got := Instrument(base, nil); got != Space(base) {
		t.Fatal("nil observer must return the space unchanged")
	}
	o1, o2 := newRecordObserver(), newRecordObserver()
	once := Instrument(base, o1)
	twice := Instrument(once, o2)
	in, ok := twice.(*Instrumented)
	if !ok || in.Unwrap() != Space(base) {
		t.Fatal("re-instrumenting must replace the observer, not stack wrappers")
	}
	twice.ParallelFor(5, func(int) {})
	if o1.counts["pp.for.launches"] != 0 || o2.counts["pp.for.launches"] != 1 {
		t.Errorf("counts went to the wrong observer: o1=%v o2=%v", o1.counts, o2.counts)
	}
}

func TestRegistryObserverCountsKernels(t *testing.T) {
	o := newRecordObserver()
	reg := NewRegistry()
	reg.SetObserver(o)
	h, err := reg.Register("ocean.baro.step", func(_ Space, args any) {
		v := args.(*float64)
		*v += 1
	})
	if err != nil {
		t.Fatal(err)
	}
	var x float64
	for i := 0; i < 3; i++ {
		if err := reg.Launch(h, Serial{}, &x); err != nil {
			t.Fatal(err)
		}
	}
	if x != 3 {
		t.Fatalf("kernel did not run: x = %g", x)
	}
	if got := o.counts["pp.kernel.ocean.baro.step"]; got != 3 {
		t.Errorf("kernel launch count = %d, want 3", got)
	}
}

func TestTileStatsRecord(t *testing.T) {
	o := newRecordObserver()
	s := &TileStats{
		Tiles:   3,
		Min:     time.Millisecond,
		Max:     3 * time.Millisecond,
		Total:   6 * time.Millisecond,
		PerTile: []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond},
	}
	s.Record(o, "ocn.hdiff")
	if got := o.samples["ocn.hdiff.tile_seconds"]; len(got) != 3 {
		t.Fatalf("tile samples = %v, want 3", got)
	}
	imb := o.samples["ocn.hdiff.imbalance"]
	if len(imb) != 1 || imb[0] < 1 {
		t.Fatalf("imbalance sample = %v", imb)
	}
	// Nil-safety on both sides.
	(*TileStats)(nil).Record(o, "x")
	s.Record(nil, "x")
}
