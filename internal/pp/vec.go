package pp

// Vec is the vectorized mixed-precision execution space. It delegates all
// scheduling to an inner space (Serial, Host, or CPE keep their iteration
// order and determinism guarantees) and acts purely as a precision signal:
// kernels query PrecOf(space) and select their float32 instantiation with
// unrolled inner loops when launched on a Vec. This mirrors how a Kokkos
// execution space carries compile-time properties orthogonal to scheduling —
// the same kernel source runs on every backend, only the scalar type and
// unroll factor change.
type Vec struct {
	inner Space
}

// NewVec wraps s as a mixed-precision space. Wrapping a Vec is idempotent.
func NewVec(s Space) *Vec {
	if v, ok := s.(*Vec); ok {
		return v
	}
	return &Vec{inner: s}
}

// Unwrap returns the scheduling space underneath.
func (v *Vec) Unwrap() Space { return v.inner }

// Name implements Space.
func (v *Vec) Name() string { return "Vec(" + v.inner.Name() + ")" }

// Concurrency implements Space.
func (v *Vec) Concurrency() int { return v.inner.Concurrency() }

// ParallelFor implements Space by delegating to the inner schedule.
func (v *Vec) ParallelFor(n int, f func(i int)) { v.inner.ParallelFor(n, f) }

// ParallelReduce implements Space. Reductions keep the inner space's
// deterministic join order — accumulations are exactly what the mixed
// policy leaves in float64.
func (v *Vec) ParallelReduce(n int, identity float64, f func(i int) float64, join func(a, b float64) float64) float64 {
	return v.inner.ParallelReduce(n, identity, f, join)
}

// PrecOf reports the precision a kernel launched on s should run at,
// unwrapping instrumentation layers to find a Vec marker.
func PrecOf(s Space) Prec {
	for {
		switch t := s.(type) {
		case *Instrumented:
			s = t.inner
		case *Vec:
			return PrecMixed
		default:
			return PrecF64
		}
	}
}
