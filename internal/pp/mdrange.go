package pp

import (
	"fmt"
	"sync"
	"time"
)

// MDRange is a tiled multi-dimensional iteration range, the analogue of
// Kokkos::MDRangePolicy. The paper highlights finer-grained tile profiling
// for multi-dimensional parallel iterations as one of the Kokkos advantages
// on Sunway (§5.3); TileStats captures exactly that.
type MDRange struct {
	Lower []int
	Upper []int
	Tile  []int
}

// NewMDRange builds a range over [lower[d], upper[d]) per dimension with the
// given tile extents; a zero or negative tile extent defaults to the full
// dimension length.
func NewMDRange(lower, upper, tile []int) (*MDRange, error) {
	if len(lower) != len(upper) || len(lower) != len(tile) {
		return nil, fmt.Errorf("pp: mdrange rank mismatch: %d/%d/%d", len(lower), len(upper), len(tile))
	}
	if len(lower) == 0 {
		return nil, fmt.Errorf("pp: mdrange needs at least one dimension")
	}
	t := make([]int, len(tile))
	for d := range tile {
		if upper[d] < lower[d] {
			return nil, fmt.Errorf("pp: mdrange dim %d has upper %d < lower %d", d, upper[d], lower[d])
		}
		t[d] = tile[d]
		if t[d] <= 0 {
			t[d] = upper[d] - lower[d]
			if t[d] == 0 {
				t[d] = 1
			}
		}
	}
	lo := append([]int(nil), lower...)
	hi := append([]int(nil), upper...)
	return &MDRange{Lower: lo, Upper: hi, Tile: t}, nil
}

// NumTiles returns the total number of tiles in the range.
func (r *MDRange) NumTiles() int {
	n := 1
	for d := range r.Lower {
		len := r.Upper[d] - r.Lower[d]
		n *= (len + r.Tile[d] - 1) / r.Tile[d]
	}
	return n
}

// Size returns the total number of iterations in the range.
func (r *MDRange) Size() int {
	n := 1
	for d := range r.Lower {
		n *= r.Upper[d] - r.Lower[d]
	}
	return n
}

// tileBounds decodes flat tile index t into per-dimension [lo,hi) bounds.
func (r *MDRange) tileBounds(t int) (lo, hi []int) {
	nd := len(r.Lower)
	lo = make([]int, nd)
	hi = make([]int, nd)
	for d := nd - 1; d >= 0; d-- {
		length := r.Upper[d] - r.Lower[d]
		tiles := (length + r.Tile[d] - 1) / r.Tile[d]
		idx := t % tiles
		t /= tiles
		lo[d] = r.Lower[d] + idx*r.Tile[d]
		hi[d] = lo[d] + r.Tile[d]
		if hi[d] > r.Upper[d] {
			hi[d] = r.Upper[d]
		}
	}
	return lo, hi
}

// TileStats holds per-tile profiling results from ParallelForMD.
type TileStats struct {
	Tiles   int
	Min     time.Duration
	Max     time.Duration
	Total   time.Duration
	PerTile []time.Duration
}

// Imbalance returns max/mean tile time, a load-imbalance factor (1 = perfectly
// balanced). Returns 0 for an empty range.
func (s *TileStats) Imbalance() float64 {
	if s.Tiles == 0 || s.Total == 0 {
		return 0
	}
	mean := float64(s.Total) / float64(s.Tiles)
	return float64(s.Max) / mean
}

// ParallelForMD2 runs f(i, j) over a 2-D MDRange on the space, tile by tile,
// and optionally profiles each tile. The tile loop parallelizes across the
// space; iterations within a tile run sequentially on one worker, matching
// Kokkos' MDRange semantics.
func ParallelForMD2(s Space, r *MDRange, profile bool, f func(i, j int)) *TileStats {
	if len(r.Lower) != 2 {
		panic(fmt.Sprintf("pp: ParallelForMD2 on rank-%d range", len(r.Lower)))
	}
	nt := r.NumTiles()
	countMD(s, nt, r.Size())
	var stats *TileStats
	var mu sync.Mutex
	if profile {
		stats = &TileStats{Tiles: nt, PerTile: make([]time.Duration, nt), Min: 1 << 62}
	}
	s.ParallelFor(nt, func(t int) {
		var start time.Time
		if profile {
			start = time.Now()
		}
		lo, hi := r.tileBounds(t)
		for i := lo[0]; i < hi[0]; i++ {
			for j := lo[1]; j < hi[1]; j++ {
				f(i, j)
			}
		}
		if profile {
			d := time.Since(start)
			mu.Lock()
			stats.PerTile[t] = d
			stats.Total += d
			if d < stats.Min {
				stats.Min = d
			}
			if d > stats.Max {
				stats.Max = d
			}
			mu.Unlock()
		}
	})
	if profile && nt == 0 {
		stats.Min = 0
	}
	if profile {
		if in, ok := s.(*Instrumented); ok {
			stats.Record(in.o, "pp.md")
		}
	}
	return stats
}

// countMD reports an MD launch and its tile/iteration extents when the space
// is instrumented. MD dispatch used to reach Instrumented.ParallelFor
// untyped, so MD launches were indistinguishable from 1-D ones and tile
// stats bypassed the pp.* counters entirely.
func countMD(s Space, tiles, iters int) {
	if in, ok := s.(*Instrumented); ok {
		in.o.AddCount("pp.md.launches", 1)
		in.o.AddCount("pp.md.tiles", int64(tiles))
		in.o.AddCount("pp.md.iters", int64(iters))
	}
}

// ParallelForMD3 runs f(i, j, k) over a 3-D MDRange on the space. The outer
// two dimensions tile across workers; the innermost runs contiguously, the
// layout used by the ocean's (level, lat, lon) loops.
func ParallelForMD3(s Space, r *MDRange, f func(i, j, k int)) {
	if len(r.Lower) != 3 {
		panic(fmt.Sprintf("pp: ParallelForMD3 on rank-%d range", len(r.Lower)))
	}
	nt := r.NumTiles()
	countMD(s, nt, r.Size())
	s.ParallelFor(nt, func(t int) {
		lo, hi := r.tileBounds(t)
		for i := lo[0]; i < hi[0]; i++ {
			for j := lo[1]; j < hi[1]; j++ {
				for k := lo[2]; k < hi[2]; k++ {
					f(i, j, k)
				}
			}
		}
	})
}
