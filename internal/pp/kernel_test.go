package pp

import (
	"strings"
	"testing"
)

func TestParsePrec(t *testing.T) {
	for in, want := range map[string]Prec{
		"f64": PrecF64, "float64": PrecF64, "": PrecF64,
		"mixed": PrecMixed, "f32": PrecMixed, "float32": PrecMixed,
	} {
		got, err := ParsePrec(in)
		if err != nil || got != want {
			t.Errorf("ParsePrec(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePrec("f16"); err == nil {
		t.Error("expected error for unknown precision")
	}
	if PrecF64.String() != "f64" || PrecMixed.String() != "mixed" {
		t.Errorf("Prec strings = %q/%q", PrecF64, PrecMixed)
	}
}

func TestVecSignalsMixedAndDelegates(t *testing.T) {
	inner := NewCPE(16)
	v := NewVec(inner)
	if v.Name() != "Vec(CPE)" || v.Concurrency() != inner.Concurrency() {
		t.Fatalf("Vec identity: name=%q conc=%d", v.Name(), v.Concurrency())
	}
	if v.Unwrap() != Space(inner) {
		t.Fatal("Unwrap must return the inner space")
	}
	if NewVec(v) != v {
		t.Fatal("NewVec must be idempotent on a Vec")
	}
	// PrecOf sees through instrumentation in either wrap order.
	o := newRecordObserver()
	if PrecOf(Serial{}) != PrecF64 || PrecOf(Instrument(Serial{}, o)) != PrecF64 {
		t.Error("plain spaces must report f64")
	}
	if PrecOf(v) != PrecMixed || PrecOf(Instrument(v, o)) != PrecMixed {
		t.Error("Vec (instrumented or not) must report mixed")
	}
	// Scheduling delegates: the inner CPE order and results are preserved.
	out := make([]float64, 100)
	v.ParallelFor(100, func(i int) { out[i] = float64(i) })
	for i := range out {
		if out[i] != float64(i) {
			t.Fatalf("out[%d] = %g", i, out[i])
		}
	}
	sum := v.ParallelReduce(10, 0, func(i int) float64 { return float64(i) },
		func(a, b float64) float64 { return a + b })
	if sum != 45 {
		t.Fatalf("reduce = %g", sum)
	}
}

func TestDefaultSpaceVecAlias(t *testing.T) {
	for _, name := range []string{"Vec", "vec"} {
		s, err := DefaultSpace(name)
		if err != nil {
			t.Fatal(err)
		}
		if PrecOf(s) != PrecMixed {
			t.Errorf("DefaultSpace(%q) is not mixed precision", name)
		}
	}
}

// Satellite: hash-collision and double-registration behavior, pinned.
// Real FNV-1a collisions are infeasible to mine, so the collision branch is
// driven through registerHashed with a forced hash.
func TestRegistryCollisionAndDoubleRegistration(t *testing.T) {
	reg := NewRegistry()
	nop := func(Space, any) {}
	h, err := reg.registerHashed(0xdead, "ocn.momentum", nop)
	if err != nil || h != 0xdead {
		t.Fatalf("registerHashed: %v", err)
	}
	// Different name, same hash: the collision error, naming both kernels.
	_, err = reg.registerHashed(0xdead, "atm.momentum", nop)
	if err == nil || !strings.Contains(err.Error(), "hash collision") ||
		!strings.Contains(err.Error(), "ocn.momentum") || !strings.Contains(err.Error(), "atm.momentum") {
		t.Fatalf("collision error = %v", err)
	}
	// Same name twice: the double-registration error, not a collision.
	_, err = reg.registerHashed(0xdead, "ocn.momentum", nop)
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("double-registration error = %v", err)
	}
	// Neither failure clobbered the original registration.
	if got := reg.Names(); len(got) != 1 || got[0] != "ocn.momentum" {
		t.Fatalf("Names = %v", got)
	}
	if err := reg.Launch(0xdead, Serial{}, nil); err != nil {
		t.Fatal(err)
	}
	// The forced hash differs from HashName, so count via the entry itself.
	if got := reg.byHash[0xdead].launches.Load(); got != 1 {
		t.Fatalf("launch count = %d after failed registrations, want 1", got)
	}
}

// Registered kernels launched on an instrumented space report per-kernel
// counts to that space's observer — the per-world accounting path used by
// concurrent ensemble members, which cannot share the registry observer.
func TestLaunchCountsOnInstrumentedSpace(t *testing.T) {
	regObs, spObs := newRecordObserver(), newRecordObserver()
	reg := NewRegistry()
	reg.SetObserver(regObs)
	h := reg.MustRegister("ocn.continuity", func(s Space, _ any) {
		s.ParallelFor(4, func(int) {})
	})
	sp := Instrument(NewVec(Serial{}), spObs)
	for i := 0; i < 2; i++ {
		if err := reg.Launch(h, sp, nil); err != nil {
			t.Fatal(err)
		}
	}
	if regObs.counts["pp.kernel.ocn.continuity"] != 2 {
		t.Errorf("registry observer counts = %v", regObs.counts)
	}
	if spObs.counts["pp.kernel.ocn.continuity"] != 2 {
		t.Errorf("space observer counts = %v", spObs.counts)
	}
	if spObs.counts["pp.for.launches"] != 2 {
		t.Errorf("inner launches not counted: %v", spObs.counts)
	}
}

// Satellite: MD launches and tile stats must flow through the pp.* counters
// instead of bypassing Instrumented untyped.
func TestMDLaunchesCounted(t *testing.T) {
	o := newRecordObserver()
	s := Instrument(NewHost(2), o)
	r2, err := NewMDRange([]int{0, 0}, []int{7, 5}, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	var hits [7 * 5]int32
	ParallelForMD2(s, r2, true, func(i, j int) { hits[i*5+j]++ })
	r3, err := NewMDRange([]int{0, 0, 0}, []int{3, 4, 5}, []int{2, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	ParallelForMD3(s, r3, func(i, j, k int) {})
	if got := o.counts["pp.md.launches"]; got != 2 {
		t.Errorf("pp.md.launches = %d, want 2", got)
	}
	if got := o.counts["pp.md.tiles"]; got != int64(r2.NumTiles()+r3.NumTiles()) {
		t.Errorf("pp.md.tiles = %d, want %d", got, r2.NumTiles()+r3.NumTiles())
	}
	if got := o.counts["pp.md.iters"]; got != 7*5+3*4*5 {
		t.Errorf("pp.md.iters = %d, want %d", got, 7*5+3*4*5)
	}
	// Profiled MD2 tile stats reach the observer under pp.md.*.
	if got := o.samples["pp.md.tile_seconds"]; len(got) != r2.NumTiles() {
		t.Errorf("pp.md.tile_seconds samples = %d, want %d", len(got), r2.NumTiles())
	}
	if got := o.samples["pp.md.imbalance"]; len(got) != 1 {
		t.Errorf("pp.md.imbalance samples = %d, want 1", len(got))
	}
	// Uninstrumented spaces take the zero-overhead path.
	ParallelForMD2(NewHost(2), r2, false, func(i, j int) {})
	if got := o.counts["pp.md.launches"]; got != 2 {
		t.Errorf("uninstrumented launch leaked a count: %d", got)
	}
}

// Satellite: MDRange edge tiles — non-divisible extents, empty ranges, and
// single-tile ranges — on every backend including Vec.
func TestMDRangeEdgeTiles(t *testing.T) {
	backends := []Space{Serial{}, NewHost(4), NewCPE(16), NewCPE(1),
		NewVec(Serial{}), NewVec(NewHost(4)), NewVec(NewCPE(16))}
	cases := []struct {
		name         string
		lo, hi, tile []int
	}{
		{"non-divisible", []int{0, 0}, []int{7, 13}, []int{3, 5}},
		{"non-divisible-offset", []int{2, 1}, []int{11, 8}, []int{4, 3}},
		{"empty-dim0", []int{3, 0}, []int{3, 9}, []int{2, 2}},
		{"empty-both", []int{0, 0}, []int{0, 0}, []int{1, 1}},
		{"single-tile", []int{0, 0}, []int{5, 6}, []int{0, 0}},
		{"tile-larger-than-dim", []int{0, 0}, []int{3, 2}, []int{16, 16}},
		{"tile-one", []int{0, 0}, []int{4, 4}, []int{1, 1}},
	}
	for _, tc := range cases {
		r, err := NewMDRange(tc.lo, tc.hi, tc.tile)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		ni, nj := tc.hi[0]-tc.lo[0], tc.hi[1]-tc.lo[1]
		want := make([]int, ni*nj)
		ParallelForMD2(Serial{}, r, false, func(i, j int) {
			want[(i-tc.lo[0])*nj+(j-tc.lo[1])]++
		})
		for i, c := range want {
			if c != 1 {
				t.Fatalf("%s: serial reference covered cell %d %d times", tc.name, i, c)
			}
		}
		if got := r.Size(); got != ni*nj {
			t.Errorf("%s: Size = %d, want %d", tc.name, got, ni*nj)
		}
		for _, s := range backends {
			got := make([]int32, ni*nj)
			ParallelForMD2(s, r, false, func(i, j int) {
				idx := (i-tc.lo[0])*nj + (j - tc.lo[1])
				got[idx]++ // tiles are disjoint: no two workers share a cell
			})
			for i, c := range got {
				if c != 1 {
					t.Fatalf("%s on %s: cell %d covered %d times", tc.name, s.Name(), i, c)
				}
			}
		}
	}
	// Rank-3 edge tiles: non-divisible in every dimension, on Vec too.
	r3, err := NewMDRange([]int{0, 1, 0}, []int{5, 8, 7}, []int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range backends {
		var total int64
		var mu2 = make(chan struct{}, 1)
		mu2 <- struct{}{}
		counts := make([]int32, 5*7*7)
		ParallelForMD3(s, r3, func(i, j, k int) {
			<-mu2
			total++
			counts[(i*7+(j-1))*7+k]++
			mu2 <- struct{}{}
		})
		if total != int64(r3.Size()) {
			t.Fatalf("MD3 on %s: %d iterations, want %d", s.Name(), total, r3.Size())
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("MD3 on %s: cell %d covered %d times", s.Name(), i, c)
			}
		}
	}
}

func TestConvertRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 5, 7, 8, 1023} {
		src := make([]float64, n)
		for i := range src {
			src[i] = float64(i)*0.5 - 100
		}
		dst32 := make([]float32, n)
		Convert32(dst32, src)
		back := make([]float64, n)
		Convert64(back, dst32)
		for i := range src {
			if dst32[i] != float32(src[i]) || back[i] != float64(float32(src[i])) {
				t.Fatalf("n=%d i=%d: %g -> %g -> %g", n, i, src[i], dst32[i], back[i])
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch must panic")
		}
	}()
	Convert32(make([]float32, 3), make([]float64, 4))
}

func TestBindView3(t *testing.T) {
	buf := make([]float32, 2*3*4)
	v := BindView3("u", buf, 2, 3, 4)
	v.Set(1, 2, 3, 42)
	if buf[v.Index(1, 2, 3)] != 42 || v.At(1, 2, 3) != 42 {
		t.Fatal("view writes must land in the caller's buffer")
	}
	if lv := v.Level(1); len(lv) != 12 || lv[2*4+3] != 42 {
		t.Fatalf("Level(1) = len %d", len(lv))
	}
	defer func() {
		if recover() == nil {
			t.Error("extent mismatch must panic at bind time")
		}
	}()
	BindView3("bad", buf, 2, 3, 5)
}
