// Package pario implements the parallel input/output strategy of §5.2.5:
// distributed fields are written either through the original single-file
// path (every rank's data funnelled through rank 0 — the baseline that
// overwhelms the file system at scale) or through the optimized
// data-partitioning path, where ranks are grouped, each group aggregates
// its members' chunks to a group leader, and the leaders write independent
// binary subfiles concurrently. Readers reassemble the global field from
// either layout bit-for-bit.
//
// The format is a simple self-describing binary layout (the paper likewise
// switches to a raw binary format to cut I/O volume and metadata pressure).
package pario

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/par"
)

// Magic identifies AP3ESM reproduction restart files.
const Magic = 0x41503352 // "AP3R"

// Version is the current format version.
const Version = 1

// Field is one named local chunk of a global 1-D-indexed variable
// (multidimensional fields are flattened by the caller; the format only
// needs the global offset).
type Field struct {
	Name   string
	Global int // global element count
	Start  int // this rank's first global element
	Data   []float64
}

type chunk struct {
	Start int
	Data  []float64
}

// writeFile writes one subfile holding, for every field, a sorted set of
// chunks.
func writeFile(path string, global map[string]int, chunks map[string][]chunk) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pario: %w", err)
	}
	defer f.Close()

	names := make([]string, 0, len(chunks))
	for n := range chunks {
		names = append(names, n)
	}
	sort.Strings(names)

	w := func(v any) error { return binary.Write(f, binary.LittleEndian, v) }
	if err := w(uint32(Magic)); err != nil {
		return err
	}
	if err := w(uint32(Version)); err != nil {
		return err
	}
	if err := w(uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		if err := w(uint32(len(name))); err != nil {
			return err
		}
		if _, err := f.Write([]byte(name)); err != nil {
			return err
		}
		if err := w(uint64(global[name])); err != nil {
			return err
		}
		cs := chunks[name]
		sort.Slice(cs, func(i, j int) bool { return cs[i].Start < cs[j].Start })
		if err := w(uint32(len(cs))); err != nil {
			return err
		}
		for _, c := range cs {
			if err := w(uint64(c.Start)); err != nil {
				return err
			}
			if err := w(uint64(len(c.Data))); err != nil {
				return err
			}
			if err := w(c.Data); err != nil {
				return err
			}
		}
	}
	return nil
}

// readFile parses one subfile.
func readFile(path string) (map[string]int, map[string][]chunk, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("pario: %w", err)
	}
	defer f.Close()

	r := func(v any) error { return binary.Read(f, binary.LittleEndian, v) }
	var magic, version, nfields uint32
	if err := r(&magic); err != nil {
		return nil, nil, fmt.Errorf("pario: reading %s: %w", path, err)
	}
	if magic != Magic {
		return nil, nil, fmt.Errorf("pario: %s is not an AP3R file (magic %#x)", path, magic)
	}
	if err := r(&version); err != nil {
		return nil, nil, err
	}
	if version != Version {
		return nil, nil, fmt.Errorf("pario: %s has version %d, want %d", path, version, Version)
	}
	if err := r(&nfields); err != nil {
		return nil, nil, err
	}
	global := make(map[string]int)
	chunks := make(map[string][]chunk)
	for i := uint32(0); i < nfields; i++ {
		var nameLen uint32
		if err := r(&nameLen); err != nil {
			return nil, nil, err
		}
		if nameLen > 4096 {
			return nil, nil, fmt.Errorf("pario: corrupt name length %d", nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := f.Read(nameBuf); err != nil {
			return nil, nil, err
		}
		name := string(nameBuf)
		var glob uint64
		if err := r(&glob); err != nil {
			return nil, nil, err
		}
		global[name] = int(glob)
		var nchunks uint32
		if err := r(&nchunks); err != nil {
			return nil, nil, err
		}
		for cidx := uint32(0); cidx < nchunks; cidx++ {
			var start, length uint64
			if err := r(&start); err != nil {
				return nil, nil, err
			}
			if err := r(&length); err != nil {
				return nil, nil, err
			}
			if length > uint64(glob) {
				return nil, nil, fmt.Errorf("pario: corrupt chunk length %d", length)
			}
			data := make([]float64, length)
			if err := r(data); err != nil {
				return nil, nil, err
			}
			chunks[name] = append(chunks[name], chunk{Start: int(start), Data: data})
		}
	}
	return global, chunks, nil
}

const ioTag = 8200

// Observer is the instrumentation hook consumed by the I/O layer — the
// structural subset of obs.Observer it needs, declared locally so pario
// does not import obs.
type Observer interface {
	AddCount(name string, delta int64)
	SetGauge(name string, v float64)
}

// recordLocal counts this rank's contribution to a write: field count and
// flattened data bytes under the given path prefix.
func recordLocal(o Observer, prefix string, fields []Field) {
	if o == nil {
		return
	}
	var bytes int64
	for _, f := range fields {
		bytes += int64(8 * len(f.Data))
	}
	o.AddCount(prefix+".calls", 1)
	o.AddCount(prefix+".fields", int64(len(fields)))
	o.AddCount(prefix+".bytes", bytes)
}

// recordAggregate counts the volume funnelled through an aggregating
// leader (rank 0 of the write communicator).
func recordAggregate(o Observer, prefix string, chunks map[string][]chunk) {
	if o == nil {
		return
	}
	var bytes int64
	for _, cs := range chunks {
		for _, c := range cs {
			bytes += int64(8 * len(c.Data))
		}
	}
	o.AddCount(prefix+".aggregated_bytes", bytes)
}

// WriteSingle is the baseline path: every rank sends its chunks to rank 0,
// which writes one file. Returns only on rank 0 errors; other ranks always
// return nil after sending.
func WriteSingle(c *par.Comm, path string, fields []Field) error {
	return WriteSingleTo(c, path, fields, nil)
}

// WriteSingleTo is WriteSingle reporting aggregation sizes to an observer
// ("pario.single.*" counters).
func WriteSingleTo(c *par.Comm, path string, fields []Field, o Observer) error {
	type payload struct {
		Name   string
		Global int
		Start  int
		Data   []float64
	}
	recordLocal(o, "pario.single", fields)
	var mine []payload
	for _, fd := range fields {
		mine = append(mine, payload{fd.Name, fd.Global, fd.Start, fd.Data})
	}
	all := par.Gather(c, 0, mine)
	if c.Rank() != 0 {
		return nil
	}
	global := make(map[string]int)
	chunks := make(map[string][]chunk)
	for _, rankFields := range all {
		for _, p := range rankFields {
			global[p.Name] = p.Global
			chunks[p.Name] = append(chunks[p.Name], chunk{Start: p.Start, Data: p.Data})
		}
	}
	recordAggregate(o, "pario.single", chunks)
	return writeFile(path, global, chunks)
}

// WriteSubfiles is the optimized path: ranks are divided into nGroups
// groups; each group's leader aggregates the group's chunks and writes
// dir/part-<g>.bin. All leaders write concurrently.
func WriteSubfiles(c *par.Comm, dir string, nGroups int, fields []Field) error {
	return WriteSubfilesTo(c, dir, nGroups, fields, nil)
}

// WriteSubfilesTo is WriteSubfiles reporting aggregation sizes to an
// observer ("pario.subfile.*" counters plus the group fan-in gauges).
func WriteSubfilesTo(c *par.Comm, dir string, nGroups int, fields []Field, o Observer) error {
	if nGroups < 1 || nGroups > c.Size() {
		return fmt.Errorf("pario: %d groups for %d ranks", nGroups, c.Size())
	}
	group := c.Rank() * nGroups / c.Size()
	sub := c.Split(group, c.Rank())
	recordLocal(o, "pario.subfile", fields)
	if o != nil {
		o.SetGauge("pario.subfile.groups", float64(nGroups))
		o.SetGauge("pario.subfile.group_ranks", float64(sub.Size()))
	}

	type payload struct {
		Name   string
		Global int
		Start  int
		Data   []float64
	}
	var mine []payload
	for _, fd := range fields {
		mine = append(mine, payload{fd.Name, fd.Global, fd.Start, fd.Data})
	}
	all := par.Gather(sub, 0, mine)
	if sub.Rank() != 0 {
		c.Barrier()
		return nil
	}
	global := make(map[string]int)
	chunks := make(map[string][]chunk)
	for _, rankFields := range all {
		for _, p := range rankFields {
			global[p.Name] = p.Global
			chunks[p.Name] = append(chunks[p.Name], chunk{Start: p.Start, Data: p.Data})
		}
	}
	recordAggregate(o, "pario.subfile", chunks)
	err := writeFile(filepath.Join(dir, fmt.Sprintf("part-%d.bin", group)), global, chunks)
	c.Barrier()
	return err
}

// ReadGlobal reassembles global fields from one or more files (a single
// file or a subfile set). Missing elements are an error; overlapping
// chunks are an error.
func ReadGlobal(paths []string) (map[string][]float64, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("pario: no files")
	}
	out := make(map[string][]float64)
	filled := make(map[string][]bool)
	for _, p := range paths {
		global, chunks, err := readFile(p)
		if err != nil {
			return nil, err
		}
		for name, cs := range chunks {
			if _, ok := out[name]; !ok {
				out[name] = make([]float64, global[name])
				for i := range out[name] {
					out[name][i] = math.NaN()
				}
				filled[name] = make([]bool, global[name])
			}
			for _, c := range cs {
				for i, v := range c.Data {
					gi := c.Start + i
					if gi >= len(out[name]) {
						return nil, fmt.Errorf("pario: %s chunk exceeds global size", name)
					}
					if filled[name][gi] {
						return nil, fmt.Errorf("pario: %s element %d written twice", name, gi)
					}
					out[name][gi] = v
					filled[name][gi] = true
				}
			}
		}
	}
	for name, fl := range filled {
		for i, ok := range fl {
			if !ok {
				return nil, fmt.Errorf("pario: %s element %d missing", name, i)
			}
		}
	}
	return out, nil
}

// SubfilePaths lists the part files a WriteSubfiles call produced.
func SubfilePaths(dir string, nGroups int) []string {
	out := make([]string, nGroups)
	for g := range out {
		out[g] = filepath.Join(dir, fmt.Sprintf("part-%d.bin", g))
	}
	return out
}
