// Package pario implements the parallel input/output strategy of §5.2.5:
// distributed fields are written either through the original single-file
// path (every rank's data funnelled through rank 0 — the baseline that
// overwhelms the file system at scale) or through the optimized
// data-partitioning path, where ranks are grouped, each group aggregates
// its members' chunks to a group leader, and the leaders write independent
// binary subfiles concurrently. Readers reassemble the global field from
// either layout bit-for-bit.
//
// The format is a simple self-describing binary layout (the paper likewise
// switches to a raw binary format to cut I/O volume and metadata pressure).
// Format v2 hardens it for the fault-tolerance layer: every field carries a
// CRC32C over its encoded bytes, the file ends in a checksummed trailer that
// detects truncation, and subfiles are written to a temporary name and
// atomically renamed into place. v1 files remain readable. Malformed input
// of either version yields typed errors (ErrCorrupt, ErrTruncated) instead
// of panics or unbounded allocations.
package pario

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/par"
)

// Magic identifies AP3ESM reproduction restart files.
const Magic = 0x41503352 // "AP3R"

// Version is the current format version (v2: per-field CRC32C + trailer).
const Version = 2

// TrailerMagic opens the v2 end-of-file trailer.
const TrailerMagic = 0x41503354 // "AP3T"

// Decoder guardrails: a field name, a declared global size, or a chunk that
// exceeds these is corrupt by definition, which bounds what a hostile or
// truncated file can make the reader allocate.
const (
	maxNameLen     = 4096
	maxGlobalElems = 1 << 24 // 16M elements (128 MiB) per field, far above any runnable config
)

// Typed decode errors. Wrapped errors carry file/offset detail; match with
// errors.Is.
var (
	// ErrCorrupt reports bytes that cannot be a well-formed file of any
	// supported version: bad magic, checksum mismatch, or impossible sizes.
	ErrCorrupt = errors.New("corrupt restart data")
	// ErrTruncated reports a file that ends before its own declared
	// structure does — the torn-write signature.
	ErrTruncated = errors.New("truncated restart data")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Field is one named local chunk of a global 1-D-indexed variable
// (multidimensional fields are flattened by the caller; the format only
// needs the global offset).
type Field struct {
	Name   string
	Global int // global element count
	Start  int // this rank's first global element
	Data   []float64
}

type chunk struct {
	Start int
	Data  []float64
}

// encodeFile renders one subfile in the given format version. v2 appends a
// CRC32C after each field's encoded bytes and a (magic, payload length,
// CRC32C) trailer over the whole payload. Field names and chunks are sorted,
// so the encoding is deterministic: identical state yields identical bytes.
func encodeFile(global map[string]int, chunks map[string][]chunk, version int) []byte {
	names := make([]string, 0, len(chunks))
	for n := range chunks {
		names = append(names, n)
	}
	sort.Strings(names)

	var buf []byte
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	u32(Magic)
	u32(uint32(version))
	u32(uint32(len(names)))
	for _, name := range names {
		fieldStart := len(buf)
		u32(uint32(len(name)))
		buf = append(buf, name...)
		u64(uint64(global[name]))
		cs := chunks[name]
		sort.Slice(cs, func(i, j int) bool { return cs[i].Start < cs[j].Start })
		u32(uint32(len(cs)))
		for _, c := range cs {
			u64(uint64(c.Start))
			u64(uint64(len(c.Data)))
			for _, v := range c.Data {
				u64(math.Float64bits(v))
			}
		}
		if version >= 2 {
			u32(crc32.Checksum(buf[fieldStart:], crcTable))
		}
	}
	if version >= 2 {
		payload := len(buf)
		u32(TrailerMagic)
		u64(uint64(payload))
		u32(crc32.Checksum(buf[:payload], crcTable))
	}
	return buf
}

// writeFile writes one subfile holding, for every field, a sorted set of
// chunks. The bytes land in a temporary sibling that is atomically renamed
// into place, so a crash mid-write never leaves a partial file under the
// final name. The "pario.write" fault site covers the whole operation:
// io-error fails it, torn and bitflip corrupt the bytes that reach disk
// (which the v2 checksums then catch on read).
func writeFile(path string, global map[string]int, chunks map[string][]chunk) error {
	data := encodeFile(global, chunks, Version)
	if f := fault.Point("pario.write", fault.AnyRank); f != nil {
		if f.Kind == fault.IOError {
			return fmt.Errorf("pario: writing %s: %w", path, f.Error())
		}
		data = f.Corrupt(data)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("pario: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("pario: %w", err)
	}
	return nil
}

// byteReader walks an in-memory file image with explicit bounds checks;
// running past the end is ErrTruncated, never a panic.
type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) remaining() int { return len(r.data) - r.off }

func (r *byteReader) need(n int, what string) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("pario: %s at offset %d needs %d bytes, %d left: %w",
			what, r.off, n, r.remaining(), ErrTruncated)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *byteReader) u32(what string) (uint32, error) {
	b, err := r.need(4, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *byteReader) u64(what string) (uint64, error) {
	b, err := r.need(8, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// decodeFile parses a v1 or v2 subfile image. Every structural quantity is
// validated against the bytes actually present before any allocation, so a
// corrupt or truncated image costs O(len(data)) and returns ErrCorrupt or
// ErrTruncated rather than panicking or over-allocating.
func decodeFile(data []byte) (map[string]int, map[string][]chunk, error) {
	r := &byteReader{data: data}
	magic, err := r.u32("magic")
	if err != nil {
		return nil, nil, err
	}
	if magic != Magic {
		return nil, nil, fmt.Errorf("pario: not an AP3R file (magic %#x): %w", magic, ErrCorrupt)
	}
	version, err := r.u32("version")
	if err != nil {
		return nil, nil, err
	}
	if version != 1 && version != 2 {
		return nil, nil, fmt.Errorf("pario: unsupported version %d: %w", version, ErrCorrupt)
	}
	if version >= 2 {
		// Validate the trailer before trusting any interior structure: it is
		// the cheap whole-file truncation and corruption detector.
		const trailerLen = 4 + 8 + 4
		if len(data) < trailerLen {
			return nil, nil, fmt.Errorf("pario: %d bytes cannot hold a v2 trailer: %w", len(data), ErrTruncated)
		}
		t := &byteReader{data: data, off: len(data) - trailerLen}
		tmagic, _ := t.u32("trailer magic")
		plen, _ := t.u64("trailer length")
		fcrc, _ := t.u32("trailer crc")
		payload := len(data) - trailerLen
		if tmagic != TrailerMagic || plen != uint64(payload) {
			return nil, nil, fmt.Errorf("pario: trailer missing or displaced (magic %#x, declared %d vs %d payload bytes): %w",
				tmagic, plen, payload, ErrTruncated)
		}
		if got := crc32.Checksum(data[:payload], crcTable); got != fcrc {
			return nil, nil, fmt.Errorf("pario: file checksum %#x, trailer says %#x: %w", got, fcrc, ErrCorrupt)
		}
		r.data = data[:payload] // fields must not read into the trailer
	}
	nfields, err := r.u32("field count")
	if err != nil {
		return nil, nil, err
	}
	// Each field needs at least a name length, a global size, and a chunk
	// count — reject counts the remaining bytes cannot possibly hold.
	if int64(nfields) > int64(r.remaining())/16+1 {
		return nil, nil, fmt.Errorf("pario: %d fields declared in %d bytes: %w", nfields, r.remaining(), ErrCorrupt)
	}
	global := make(map[string]int)
	chunks := make(map[string][]chunk)
	for i := uint32(0); i < nfields; i++ {
		fieldStart := r.off
		nameLen, err := r.u32("name length")
		if err != nil {
			return nil, nil, err
		}
		if nameLen > maxNameLen {
			return nil, nil, fmt.Errorf("pario: field name of %d bytes: %w", nameLen, ErrCorrupt)
		}
		nameBuf, err := r.need(int(nameLen), "field name")
		if err != nil {
			return nil, nil, err
		}
		name := string(nameBuf)
		glob, err := r.u64("global size")
		if err != nil {
			return nil, nil, err
		}
		if glob > maxGlobalElems {
			return nil, nil, fmt.Errorf("pario: field %q declares %d global elements: %w", name, glob, ErrCorrupt)
		}
		nchunks, err := r.u32("chunk count")
		if err != nil {
			return nil, nil, err
		}
		if int64(nchunks) > int64(r.remaining())/16+1 {
			return nil, nil, fmt.Errorf("pario: %d chunks declared in %d bytes: %w", nchunks, r.remaining(), ErrCorrupt)
		}
		if _, dup := global[name]; dup {
			return nil, nil, fmt.Errorf("pario: field %q appears twice: %w", name, ErrCorrupt)
		}
		global[name] = int(glob)
		for ci := uint32(0); ci < nchunks; ci++ {
			start, err := r.u64("chunk start")
			if err != nil {
				return nil, nil, err
			}
			length, err := r.u64("chunk length")
			if err != nil {
				return nil, nil, err
			}
			if length > glob || start > glob || start+length > glob {
				return nil, nil, fmt.Errorf("pario: field %q chunk [%d,%d) outside global size %d: %w",
					name, start, start+length, glob, ErrCorrupt)
			}
			raw, err := r.need(int(length)*8, "chunk data")
			if err != nil {
				return nil, nil, err
			}
			vals := make([]float64, length)
			for j := range vals {
				vals[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*j:]))
			}
			chunks[name] = append(chunks[name], chunk{Start: int(start), Data: vals})
		}
		if version >= 2 {
			fieldCRC := crc32.Checksum(r.data[fieldStart:r.off], crcTable)
			stored, err := r.u32("field crc")
			if err != nil {
				return nil, nil, err
			}
			if stored != fieldCRC {
				return nil, nil, fmt.Errorf("pario: field %q checksum %#x, stored %#x: %w",
					name, fieldCRC, stored, ErrCorrupt)
			}
		}
	}
	return global, chunks, nil
}

// readFile parses one subfile from disk.
func readFile(path string) (map[string]int, map[string][]chunk, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("pario: reading %s: %w", path, err)
	}
	global, chunks, err := decodeFile(data)
	if err != nil {
		return nil, nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return global, chunks, nil
}

const ioTag = 8200

// Observer is the instrumentation hook consumed by the I/O layer — the
// structural subset of obs.Observer it needs, declared locally so pario
// does not import obs.
type Observer interface {
	AddCount(name string, delta int64)
	SetGauge(name string, v float64)
}

// recordLocal counts this rank's contribution to a write: field count and
// flattened data bytes under the given path prefix.
func recordLocal(o Observer, prefix string, fields []Field) {
	if o == nil {
		return
	}
	var bytes int64
	for _, f := range fields {
		bytes += int64(8 * len(f.Data))
	}
	o.AddCount(prefix+".calls", 1)
	o.AddCount(prefix+".fields", int64(len(fields)))
	o.AddCount(prefix+".bytes", bytes)
}

// recordAggregate counts the volume funnelled through an aggregating
// leader (rank 0 of the write communicator).
func recordAggregate(o Observer, prefix string, chunks map[string][]chunk) {
	if o == nil {
		return
	}
	var bytes int64
	for _, cs := range chunks {
		for _, c := range cs {
			bytes += int64(8 * len(c.Data))
		}
	}
	o.AddCount(prefix+".aggregated_bytes", bytes)
}

// WriteSingle is the baseline path: every rank sends its chunks to rank 0,
// which writes one file. Returns only on rank 0 errors; other ranks always
// return nil after sending.
func WriteSingle(c *par.Comm, path string, fields []Field) error {
	return WriteSingleTo(c, path, fields, nil)
}

// WriteSingleTo is WriteSingle reporting aggregation sizes to an observer
// ("pario.single.*" counters).
func WriteSingleTo(c *par.Comm, path string, fields []Field, o Observer) error {
	type payload struct {
		Name   string
		Global int
		Start  int
		Data   []float64
	}
	recordLocal(o, "pario.single", fields)
	var mine []payload
	for _, fd := range fields {
		mine = append(mine, payload{fd.Name, fd.Global, fd.Start, fd.Data})
	}
	all := par.Gather(c, 0, mine)
	if c.Rank() != 0 {
		return nil
	}
	global := make(map[string]int)
	chunks := make(map[string][]chunk)
	for _, rankFields := range all {
		for _, p := range rankFields {
			global[p.Name] = p.Global
			chunks[p.Name] = append(chunks[p.Name], chunk{Start: p.Start, Data: p.Data})
		}
	}
	recordAggregate(o, "pario.single", chunks)
	return writeFile(path, global, chunks)
}

// WriteSubfiles is the optimized path: ranks are divided into nGroups
// groups; each group's leader aggregates the group's chunks and writes
// dir/part-<g>.bin. All leaders write concurrently.
func WriteSubfiles(c *par.Comm, dir string, nGroups int, fields []Field) error {
	return WriteSubfilesTo(c, dir, nGroups, fields, nil)
}

// WriteSubfilesTo is WriteSubfiles reporting aggregation sizes to an
// observer ("pario.subfile.*" counters plus the group fan-in gauges).
func WriteSubfilesTo(c *par.Comm, dir string, nGroups int, fields []Field, o Observer) error {
	if nGroups < 1 || nGroups > c.Size() {
		return fmt.Errorf("pario: %d groups for %d ranks", nGroups, c.Size())
	}
	group := c.Rank() * nGroups / c.Size()
	sub := c.Split(group, c.Rank())
	recordLocal(o, "pario.subfile", fields)
	if o != nil {
		o.SetGauge("pario.subfile.groups", float64(nGroups))
		o.SetGauge("pario.subfile.group_ranks", float64(sub.Size()))
	}

	type payload struct {
		Name   string
		Global int
		Start  int
		Data   []float64
	}
	var mine []payload
	for _, fd := range fields {
		mine = append(mine, payload{fd.Name, fd.Global, fd.Start, fd.Data})
	}
	all := par.Gather(sub, 0, mine)
	if sub.Rank() != 0 {
		c.Barrier()
		return nil
	}
	global := make(map[string]int)
	chunks := make(map[string][]chunk)
	for _, rankFields := range all {
		for _, p := range rankFields {
			global[p.Name] = p.Global
			chunks[p.Name] = append(chunks[p.Name], chunk{Start: p.Start, Data: p.Data})
		}
	}
	recordAggregate(o, "pario.subfile", chunks)
	err := writeFile(filepath.Join(dir, fmt.Sprintf("part-%d.bin", group)), global, chunks)
	c.Barrier()
	return err
}

// ReadGlobal reassembles global fields from one or more files (a single
// file or a subfile set). Missing elements are an error; overlapping
// chunks are an error.
func ReadGlobal(paths []string) (map[string][]float64, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("pario: no files")
	}
	out := make(map[string][]float64)
	filled := make(map[string][]bool)
	for _, p := range paths {
		global, chunks, err := readFile(p)
		if err != nil {
			return nil, err
		}
		for name, cs := range chunks {
			if _, ok := out[name]; !ok {
				out[name] = make([]float64, global[name])
				for i := range out[name] {
					out[name][i] = math.NaN()
				}
				filled[name] = make([]bool, global[name])
			}
			for _, c := range cs {
				for i, v := range c.Data {
					gi := c.Start + i
					if gi >= len(out[name]) {
						return nil, fmt.Errorf("pario: %s chunk exceeds global size (file %s)", name, p)
					}
					if filled[name][gi] {
						return nil, fmt.Errorf("pario: %s element %d written twice (file %s)", name, gi, p)
					}
					out[name][gi] = v
					filled[name][gi] = true
				}
			}
		}
	}
	for name, fl := range filled {
		for i, ok := range fl {
			if !ok {
				return nil, fmt.Errorf("pario: %s element %d missing (files %s)", name, i, strings.Join(paths, ", "))
			}
		}
	}
	return out, nil
}

// SubfilePaths lists the part files a WriteSubfiles call produced.
func SubfilePaths(dir string, nGroups int) []string {
	out := make([]string, nGroups)
	for g := range out {
		out[g] = filepath.Join(dir, fmt.Sprintf("part-%d.bin", g))
	}
	return out
}
