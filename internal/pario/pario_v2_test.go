package pario

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// sampleEncoding builds a small well-formed two-field image.
func sampleEncoding(version int) []byte {
	global := map[string]int{"temp": 8, "salt": 8}
	chunks := map[string][]chunk{
		"temp": {{Start: 0, Data: []float64{0, 1, 2, 3}}, {Start: 4, Data: []float64{4, 5, 6, 7}}},
		"salt": {{Start: 0, Data: []float64{0, .25, .5, .75, 1, 1.25, 1.5, 1.75}}},
	}
	return encodeFile(global, chunks, version)
}

func TestDecodeValidV2(t *testing.T) {
	global, chunks, err := decodeFile(sampleEncoding(2))
	if err != nil {
		t.Fatal(err)
	}
	if global["temp"] != 8 || len(chunks["temp"]) != 2 || len(chunks["salt"]) != 1 {
		t.Fatalf("decoded global=%v chunks=%v", global, chunks)
	}
}

func TestDecodeV1Compat(t *testing.T) {
	// A legacy v1 image (no checksums, no trailer) must stay readable.
	global, chunks, err := decodeFile(sampleEncoding(1))
	if err != nil {
		t.Fatalf("v1 image rejected: %v", err)
	}
	if global["salt"] != 8 || chunks["salt"][0].Data[1] != 0.25 {
		t.Fatal("v1 decode wrong")
	}
}

// TestDecodeDamage corrupts or truncates each section of a v2 file and
// asserts the typed error the reader must return.
func TestDecodeDamage(t *testing.T) {
	valid := sampleEncoding(2)
	flip := func(off int) func([]byte) []byte {
		return func(b []byte) []byte { b[off] ^= 0x01; return b }
	}
	put32 := func(off int, v uint32) func([]byte) []byte {
		return func(b []byte) []byte { binary.LittleEndian.PutUint32(b[off:], v); return b }
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"magic flipped", flip(0), ErrCorrupt},
		{"bad version", put32(4, 99), ErrCorrupt},
		{"huge field count", put32(8, 1 << 30), ErrCorrupt},
		{"header only", func(b []byte) []byte { return b[:12] }, ErrTruncated},
		{"torn mid body", func(b []byte) []byte { return b[:len(b)/2] }, ErrTruncated},
		{"trailer shaved", func(b []byte) []byte { return b[:len(b)-3] }, ErrTruncated},
		{"name length bomb", put32(12, 1 << 20), ErrCorrupt},
		// Offset 12 starts the first field: 4 (name len) + 4 ("salt").
		{"global size bomb", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[20:], 1<<40)
			return b
		}, ErrCorrupt},
		{"field byte flipped", flip(40), ErrCorrupt},      // inside salt's chunk data
		{"last data byte", flip(len(valid) - 17), ErrCorrupt}, // inside temp, before its CRC
		{"trailer crc flipped", flip(len(valid) - 1), ErrCorrupt},
		{"trailer magic flipped", flip(len(valid) - 16), ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := tc.mutate(append([]byte(nil), valid...))
			_, _, err := decodeFile(img)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
	// The pristine image still decodes (mutations copied it).
	if _, _, err := decodeFile(valid); err != nil {
		t.Fatalf("pristine image broke: %v", err)
	}
}

func TestChunkBoundsChecked(t *testing.T) {
	// A chunk whose start+length overruns its declared global size must be
	// ErrCorrupt, not an over-allocation or silent wraparound.
	img := encodeFile(map[string]int{"x": 4},
		map[string][]chunk{"x": {{Start: 3, Data: []float64{1, 2, 3}}}}, 2)
	if _, _, err := decodeFile(img); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("overrunning chunk: %v", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "part-0.bin")
	global := map[string]int{"v": 2}
	good := map[string][]chunk{"v": {{Start: 0, Data: []float64{1, 2}}}}
	if err := writeFile(path, global, good); err != nil {
		t.Fatal(err)
	}
	before, _ := os.ReadFile(path)

	// An injected I/O error must leave the previous file untouched and no
	// temporary debris behind.
	plan, _ := fault.New(1, fault.Injection{Kind: fault.IOError, Site: "pario.write", Hit: 1, Rank: fault.AnyRank})
	fault.Arm(plan)
	err := writeFile(path, global, map[string][]chunk{"v": {{Start: 0, Data: []float64{9, 9}}}})
	fault.Disarm()
	if err == nil {
		t.Fatal("injected I/O error not surfaced")
	}
	after, _ := os.ReadFile(path)
	if string(before) != string(after) {
		t.Fatal("failed write clobbered the previous file")
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries after failed write", len(ents))
	}
}

func TestInjectedTornAndBitflipDetected(t *testing.T) {
	for _, kind := range []fault.Kind{fault.Torn, fault.Bitflip} {
		dir := t.TempDir()
		path := filepath.Join(dir, "part-0.bin")
		plan, _ := fault.New(7, fault.Injection{Kind: kind, Site: "pario.write", Hit: 1, Rank: fault.AnyRank})
		fault.Arm(plan)
		err := writeFile(path, map[string]int{"v": 64},
			map[string][]chunk{"v": {{Start: 0, Data: make([]float64, 64)}}})
		fault.Disarm()
		if err != nil {
			t.Fatalf("%s: write itself failed: %v", kind, err)
		}
		if _, _, rerr := readFile(path); !errors.Is(rerr, ErrCorrupt) && !errors.Is(rerr, ErrTruncated) {
			t.Fatalf("%s damage not detected: %v", kind, rerr)
		}
	}
}

func TestEncodingDeterministic(t *testing.T) {
	a, b := sampleEncoding(2), sampleEncoding(2)
	if string(a) != string(b) {
		t.Fatal("identical state produced different bytes")
	}
}
