package pario

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/par"
)

// makeFields builds each rank's contiguous chunk of nGlobal elements for
// two variables with deterministic values.
func makeFields(c *par.Comm, nGlobal int) []Field {
	per := nGlobal / c.Size()
	start := c.Rank() * per
	n := per
	if c.Rank() == c.Size()-1 {
		n = nGlobal - start
	}
	mk := func(name string, scale float64) Field {
		d := make([]float64, n)
		for i := range d {
			d[i] = scale * float64(start+i)
		}
		return Field{Name: name, Global: nGlobal, Start: start, Data: d}
	}
	return []Field{mk("temp", 1), mk("salt", 0.25)}
}

func checkGlobal(t *testing.T, got map[string][]float64, nGlobal int) {
	t.Helper()
	for name, scale := range map[string]float64{"temp": 1, "salt": 0.25} {
		f, ok := got[name]
		if !ok || len(f) != nGlobal {
			t.Fatalf("field %s missing or wrong size", name)
		}
		for i, v := range f {
			if v != scale*float64(i) {
				t.Fatalf("%s[%d] = %v, want %v", name, i, v, scale*float64(i))
			}
		}
	}
}

func TestSingleFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "restart.bin")
	const nGlobal = 237
	par.Run(5, func(c *par.Comm) {
		if err := WriteSingle(c, path, makeFields(c, nGlobal)); err != nil {
			t.Error(err)
		}
	})
	got, err := ReadGlobal([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	checkGlobal(t, got, nGlobal)
}

func TestSubfileRoundTrip(t *testing.T) {
	const nGlobal = 300
	for _, groups := range []int{1, 2, 3, 6} {
		dir := t.TempDir()
		par.Run(6, func(c *par.Comm) {
			if err := WriteSubfiles(c, dir, groups, makeFields(c, nGlobal)); err != nil {
				t.Error(err)
			}
		})
		got, err := ReadGlobal(SubfilePaths(dir, groups))
		if err != nil {
			t.Fatalf("groups=%d: %v", groups, err)
		}
		checkGlobal(t, got, nGlobal)
	}
}

func TestSingleAndSubfileBitIdentical(t *testing.T) {
	const nGlobal = 144
	dir := t.TempDir()
	single := filepath.Join(dir, "single.bin")
	par.Run(4, func(c *par.Comm) {
		fields := makeFields(c, nGlobal)
		if err := WriteSingle(c, single, fields); err != nil {
			t.Error(err)
		}
		if err := WriteSubfiles(c, dir, 2, fields); err != nil {
			t.Error(err)
		}
	})
	a, err := ReadGlobal([]string{single})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadGlobal(SubfilePaths(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	for name := range a {
		for i := range a[name] {
			if a[name][i] != b[name][i] {
				t.Fatalf("%s[%d] differs between layouts", name, i)
			}
		}
	}
}

func TestSubfileGroupValidation(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		if err := WriteSubfiles(c, t.TempDir(), 0, nil); err == nil && c.Rank() == 0 {
			t.Error("0 groups accepted")
		}
	})
}

func TestReadErrors(t *testing.T) {
	if _, err := ReadGlobal(nil); err == nil {
		t.Error("empty path list accepted")
	}
	if _, err := ReadGlobal([]string{"/nonexistent/file.bin"}); err == nil {
		t.Error("missing file accepted")
	}
	// Garbage file.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.bin")
	os.WriteFile(bad, []byte("not a restart"), 0o644)
	if _, err := ReadGlobal([]string{bad}); err == nil {
		t.Error("garbage file accepted")
	}
}

func TestMissingChunkDetected(t *testing.T) {
	// Write only part 0 of a 2-subfile set and try to read it alone.
	dir := t.TempDir()
	par.Run(4, func(c *par.Comm) {
		if err := WriteSubfiles(c, dir, 2, makeFields(c, 100)); err != nil {
			t.Error(err)
		}
	})
	if _, err := ReadGlobal([]string{filepath.Join(dir, "part-0.bin")}); err == nil {
		t.Error("incomplete field accepted")
	}
}

func TestDuplicateChunkDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	par.Run(1, func(c *par.Comm) {
		WriteSingle(c, path, []Field{{Name: "x", Global: 4, Start: 0, Data: []float64{1, 2, 3, 4}}})
	})
	// Reading the same file twice duplicates every element.
	if _, err := ReadGlobal([]string{path, path}); err == nil {
		t.Error("duplicate chunks accepted")
	}
}

// TestReadGlobalErrorsCarryPath pins the message formats of ReadGlobal's
// error paths: every failure a user can hit while assembling a multi-subfile
// restart must name the offending file, because "element 37 written twice"
// alone is useless against a directory of part files.
func TestReadGlobalErrorsCarryPath(t *testing.T) {
	dir := t.TempDir()
	one := filepath.Join(dir, "one.bin")
	wide := filepath.Join(dir, "wide.bin")
	par.Run(1, func(c *par.Comm) {
		WriteSingle(c, one, []Field{{Name: "x", Global: 4, Start: 0, Data: []float64{1, 2, 3, 4}}})
		WriteSingle(c, wide, []Field{{Name: "x", Global: 8, Start: 4, Data: []float64{5, 6, 7, 8}}})
	})

	missing := filepath.Join(dir, "nope.bin")
	if _, err := ReadGlobal([]string{missing}); err == nil || !strings.Contains(err.Error(), "pario: reading "+missing) {
		t.Errorf("unreadable-file error %q does not name the file", err)
	}
	if _, err := ReadGlobal([]string{one, one}); err == nil ||
		!strings.Contains(err.Error(), fmt.Sprintf("pario: x element 0 written twice (file %s)", one)) {
		t.Errorf("duplicate-element error %q does not name the file", err)
	}
	// one declares global=4, so wide's chunk at [4, 8) lands out of range.
	if _, err := ReadGlobal([]string{one, wide}); err == nil ||
		!strings.Contains(err.Error(), fmt.Sprintf("pario: x chunk exceeds global size (file %s)", wide)) {
		t.Errorf("oversize-chunk error %q does not name the file", err)
	}
	if _, err := ReadGlobal([]string{wide}); err == nil ||
		!strings.Contains(err.Error(), fmt.Sprintf("pario: x element 0 missing (files %s)", wide)) {
		t.Errorf("missing-element error %q does not list the files read", err)
	}
}

// Property: random rank counts, group counts, and sizes always round-trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ranks := 1 + rng.Intn(6)
		groups := 1 + rng.Intn(ranks)
		nGlobal := ranks * (1 + rng.Intn(40))
		vals := make([]float64, nGlobal)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		dir := t.TempDir()
		ok := true
		par.Run(ranks, func(c *par.Comm) {
			per := nGlobal / ranks
			start := c.Rank() * per
			n := per
			if c.Rank() == ranks-1 {
				n = nGlobal - start
			}
			fl := Field{Name: "v", Global: nGlobal, Start: start,
				Data: append([]float64(nil), vals[start:start+n]...)}
			if err := WriteSubfiles(c, dir, groups, []Field{fl}); err != nil {
				ok = false
			}
		})
		if !ok {
			return false
		}
		got, err := ReadGlobal(SubfilePaths(dir, groups))
		if err != nil {
			return false
		}
		for i, v := range got["v"] {
			if v != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
