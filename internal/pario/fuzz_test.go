package pario

import (
	"testing"
)

// FuzzReadSubfile drives the v1/v2 decoder with arbitrary bytes: it must
// never panic or allocate past its guardrails, and anything it accepts must
// satisfy the format's own invariants.
func FuzzReadSubfile(f *testing.F) {
	global := map[string]int{"temp": 8, "salt": 4}
	chunks := map[string][]chunk{
		"temp": {{Start: 0, Data: []float64{0, 1, 2, 3}}, {Start: 4, Data: []float64{4, 5, 6, 7}}},
		"salt": {{Start: 0, Data: []float64{1, 2, 3, 4}}},
	}
	v1 := encodeFile(global, chunks, 1)
	v2 := encodeFile(global, chunks, 2)
	f.Add(v1)
	f.Add(v2)
	f.Add(v2[:len(v2)/2])
	f.Add(v2[:12])
	f.Add([]byte("not a restart"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, cs, err := decodeFile(data)
		if err != nil {
			return
		}
		// Accepted images must be internally consistent.
		for name, list := range cs {
			glob, ok := g[name]
			if !ok {
				t.Fatalf("chunks for undeclared field %q", name)
			}
			if glob > maxGlobalElems {
				t.Fatalf("field %q accepted with global size %d", name, glob)
			}
			for _, c := range list {
				if c.Start < 0 || c.Start+len(c.Data) > glob {
					t.Fatalf("field %q chunk [%d,%d) outside global size %d",
						name, c.Start, c.Start+len(c.Data), glob)
				}
			}
		}
	})
}
