package typhoon

import (
	"math"
	"testing"
)

// Apply is deterministic in (envelope, seed), distinct across seeds, and
// stays inside the envelope.
func TestPerturbationApply(t *testing.T) {
	base := DoksuriSeed()
	env := DefaultPerturbation()

	a := env.Apply(base, 3)
	if b := env.Apply(base, 3); a != b {
		t.Fatalf("same seed produced different configs: %+v vs %+v", a, b)
	}
	if c := env.Apply(base, 4); a == c {
		t.Fatal("different seeds produced identical configs")
	}

	for seed := int64(0); seed < 50; seed++ {
		s := env.Apply(base, seed)
		if math.Abs(s.LonDeg-base.LonDeg) > env.PosDeg || math.Abs(s.LatDeg-base.LatDeg) > env.PosDeg {
			t.Fatalf("seed %d: position %+v outside ±%g° of base", seed, s, env.PosDeg)
		}
		if f := s.DeltaPs/base.DeltaPs - 1; math.Abs(f) > env.DeltaPsFrac+1e-12 {
			t.Fatalf("seed %d: deficit fraction %g outside ±%g", seed, f, env.DeltaPsFrac)
		}
		if f := s.RadiusKm/base.RadiusKm - 1; math.Abs(f) > env.RadiusFrac+1e-12 {
			t.Fatalf("seed %d: radius fraction %g outside ±%g", seed, f, env.RadiusFrac)
		}
		if s.Moisten != base.Moisten {
			t.Fatalf("seed %d: Moisten flag changed", seed)
		}
	}

	if z := (Perturbation{}).Apply(base, 7); z != base {
		t.Fatalf("zero envelope changed the seed: %+v", z)
	}
}

// Zeroing one amplitude must not reshuffle the other fields' draws.
func TestPerturbationDrawOrderStable(t *testing.T) {
	base := DoksuriSeed()
	full := DefaultPerturbation()
	noPos := full
	noPos.PosDeg = 0

	a := full.Apply(base, 11)
	b := noPos.Apply(base, 11)
	if b.LonDeg != base.LonDeg || b.LatDeg != base.LatDeg {
		t.Fatalf("zeroed position still moved: %+v", b)
	}
	if a.DeltaPs != b.DeltaPs || a.RadiusKm != b.RadiusKm {
		t.Fatalf("zeroing position reshuffled intensity/size draws: %+v vs %+v", a, b)
	}
}
