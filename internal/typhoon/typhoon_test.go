package typhoon

import (
	"math"
	"testing"
	"time"

	"repro/internal/atmos"
	"repro/internal/pp"
)

func newModel(t *testing.T, level int) *atmos.Model {
	t.Helper()
	m, err := atmos.New(level, 8, atmos.DefaultConfig(), pp.Serial{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBestTrackShape(t *testing.T) {
	bt := BestTrackDoksuri()
	if len(bt) != 8 {
		t.Fatalf("%d points", len(bt))
	}
	for i := 1; i < len(bt); i++ {
		// Doksuri moved west-northwest: longitude decreasing, latitude
		// increasing, time strictly forward.
		if !bt[i].Time.After(bt[i-1].Time) {
			t.Fatal("time not increasing")
		}
		if bt[i].LonDeg >= bt[i-1].LonDeg {
			t.Fatal("longitude not decreasing (WNW motion)")
		}
		if bt[i].LatDeg <= bt[i-1].LatDeg {
			t.Fatal("latitude not increasing")
		}
	}
	// Peak intensity near the Luzon Strait (55 m/s super typhoon).
	var peak float64
	for _, p := range bt {
		if p.WindMS > peak {
			peak = p.WindMS
		}
	}
	if peak < 51 {
		t.Errorf("peak wind %v, want super-typhoon strength", peak)
	}
}

func TestSeedValidation(t *testing.T) {
	m := newModel(t, 2)
	if err := Seed(m, SeedConfig{DeltaPs: -1, RadiusKm: 100}); err == nil {
		t.Error("negative deficit accepted")
	}
	if err := Seed(m, SeedConfig{DeltaPs: 100, RadiusKm: 0}); err == nil {
		t.Error("zero radius accepted")
	}
}

func TestSeedCreatesDepressionAndCyclone(t *testing.T) {
	m := newModel(t, 4)
	cfg := DoksuriSeed()
	if err := Seed(m, cfg); err != nil {
		t.Fatal(err)
	}
	fix, err := FindCenter(m, time.Now(), 800)
	if err != nil {
		t.Fatal(err)
	}
	// Center near the seed position.
	if d := GreatCircleKm(fix.LonDeg, fix.LatDeg, cfg.LonDeg, cfg.LatDeg); d > 600 {
		t.Errorf("center %v km from seed", d)
	}
	if fix.PressPa >= atmos.P0-cfg.DeltaPs/3 {
		t.Errorf("central pressure %v, deficit too shallow", fix.PressPa)
	}
	if fix.WindMS < 5 {
		t.Errorf("max wind %v too weak", fix.WindMS)
	}
	// Cyclonic (positive NH) vorticity at the center region.
	vort := m.SurfaceVorticity()
	_, c := m.MinPs()
	if vort[c] <= 0 {
		t.Errorf("vorticity at center %v, want cyclonic (>0)", vort[c])
	}
}

func TestSeededVortexSurvivesIntegration(t *testing.T) {
	m := newModel(t, 4)
	if err := Seed(m, DoksuriSeed()); err != nil {
		t.Fatal(err)
	}
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	var fixes []Fix
	for h := 0; h < 4; h++ {
		m.StepModel()
		fix, err := FindCenter(m, start.Add(time.Duration(h)*time.Hour), 800)
		if err != nil {
			t.Fatal(err)
		}
		fixes = append(fixes, fix)
		if math.IsNaN(fix.PressPa) {
			t.Fatal("NaN pressure")
		}
	}
	// The depression persists (weaker than seeded is fine; gone is not).
	last := fixes[len(fixes)-1]
	if last.PressPa > atmos.P0-100 {
		t.Errorf("vortex dissipated: centre pressure %v", last.PressPa)
	}
}

func TestTrackErrorComputation(t *testing.T) {
	best := BestTrackDoksuri()
	// A simulated track identical to the best track has zero error.
	var sim []Fix
	for _, p := range best {
		sim = append(sim, Fix{Time: p.Time, LonDeg: p.LonDeg, LatDeg: p.LatDeg})
	}
	e, err := TrackError(sim, best)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("identical track error %v", e)
	}
	// One degree of longitude at ~15°N is ≈ 107 km.
	sim[0].LonDeg += 1
	e, _ = TrackError(sim, best)
	want := 107.0 / float64(len(sim))
	if math.Abs(e-want) > 3 {
		t.Errorf("error %v, want ≈ %v", e, want)
	}
	// No matching times.
	far := []Fix{{Time: best[0].Time.Add(1000 * time.Hour)}}
	if _, err := TrackError(far, best); err == nil {
		t.Error("unmatched track accepted")
	}
	if _, err := TrackError(nil, best); err == nil {
		t.Error("empty track accepted")
	}
}

// Resolution contrast (Fig 6): the same vortex seeded on a finer mesh must
// produce a more compact eye and richer fine-scale structure.
func TestResolutionContrast(t *testing.T) {
	seed := DoksuriSeed()
	measure := func(level int) (rmw, fsv float64) {
		m := newModel(t, level)
		if err := Seed(m, seed); err != nil {
			t.Fatal(err)
		}
		m.StepModel()
		fix, err := FindCenter(m, time.Now(), 900)
		if err != nil {
			t.Fatal(err)
		}
		u, v := m.Wind10m()
		speed := make([]float64, len(u))
		for i := range u {
			speed[i] = math.Hypot(u[i], v[i])
		}
		return RadiusOfMaxWind(m, fix, 900), FineScaleVariance(m.Mesh, speed)
	}
	rmwCoarse, fsvCoarse := measure(4) // "25 km class"
	rmwFine, fsvFine := measure(5)     // "3 km class" stand-in (one level finer)
	if rmwFine <= 0 || rmwCoarse <= 0 {
		t.Fatalf("rmw = %v / %v", rmwCoarse, rmwFine)
	}
	if rmwFine >= rmwCoarse {
		t.Errorf("finer mesh eye not more compact: %v km vs %v km", rmwFine, rmwCoarse)
	}
	if fsvFine <= 0 || fsvCoarse <= 0 {
		t.Fatalf("fine-scale variance = %v / %v", fsvCoarse, fsvFine)
	}
}

func TestFineScaleVarianceProperties(t *testing.T) {
	m := newModel(t, 3)
	mesh := m.Mesh
	// Constant field: zero variance ratio.
	flat := make([]float64, mesh.NCells())
	for i := range flat {
		flat[i] = 5
	}
	if FineScaleVariance(mesh, flat) != 0 {
		t.Error("constant field has structure")
	}
	// Checkerboard-like noise has much more fine-scale variance than a
	// smooth large-scale field.
	smooth := make([]float64, mesh.NCells())
	noisy := make([]float64, mesh.NCells())
	for c := range smooth {
		smooth[c] = math.Sin(mesh.LonCell[c]) * math.Cos(mesh.LatCell[c])
		noisy[c] = float64((c%2)*2 - 1)
	}
	if FineScaleVariance(mesh, noisy) <= FineScaleVariance(mesh, smooth) {
		t.Error("noise not detected as fine-scale structure")
	}
	// Wrong length: graceful zero.
	if FineScaleVariance(mesh, flat[:3]) != 0 {
		t.Error("bad length not handled")
	}
}

func TestGreatCircleKm(t *testing.T) {
	// One degree of latitude ≈ 111 km.
	if d := GreatCircleKm(120, 20, 120, 21); math.Abs(d-111.2) > 1 {
		t.Errorf("1° lat = %v km", d)
	}
	if d := GreatCircleKm(0, 0, 180, 0); math.Abs(d-20015) > 30 {
		t.Errorf("antipodal = %v km", d)
	}
}
