package typhoon

import (
	"math"
	"math/rand"
)

// Ensemble perturbations (§7.1's forecast experiment widened to an ensemble):
// operational typhoon ensembles perturb the analysis — vortex position,
// intensity, size — so the member spread brackets the forecast uncertainty.
// Perturbation describes the amplitude envelope; Apply draws one member's
// deterministic sample from it, so member i's seed always reproduces member
// i's initial condition regardless of scheduling.

// Perturbation bounds the initial-condition perturbations applied to a
// vortex seed. Each field is a half-width: Apply draws uniformly from
// [-x, +x] around the base value.
type Perturbation struct {
	PosDeg      float64 // vortex center displacement, degrees lon and lat
	DeltaPsFrac float64 // fractional perturbation of the pressure deficit
	RadiusFrac  float64 // fractional perturbation of the radius of max wind
}

// DefaultPerturbation is a modest operational-style envelope: ±0.5° position,
// ±15% intensity, ±10% size.
func DefaultPerturbation() Perturbation {
	return Perturbation{PosDeg: 0.5, DeltaPsFrac: 0.15, RadiusFrac: 0.10}
}

// Apply returns base with this envelope's perturbations drawn from seed.
// The draw order is fixed (lon, lat, deficit, radius), so a given (envelope,
// seed) pair always yields the same SeedConfig — the determinism the
// ensemble's bit-for-bit member isolation tests pin. A zero envelope returns
// base unchanged for any seed.
func (p Perturbation) Apply(base SeedConfig, seed int64) SeedConfig {
	rng := rand.New(rand.NewSource(seed))
	sym := func(half float64) float64 {
		if half == 0 {
			// Keep the draw order fixed even for zeroed fields, so narrowing
			// one amplitude does not reshuffle the others' samples.
			rng.Float64()
			return 0
		}
		return half * (2*rng.Float64() - 1)
	}
	out := base
	out.LonDeg += sym(p.PosDeg)
	out.LatDeg += sym(p.PosDeg)
	out.DeltaPs *= 1 + sym(p.DeltaPsFrac)
	out.RadiusKm *= 1 + sym(p.RadiusFrac)
	// Clamp to the Seed preconditions: perturbed members must stay seedable.
	out.DeltaPs = math.Max(out.DeltaPs, 1)
	out.RadiusKm = math.Max(out.RadiusKm, 1)
	return out
}
