// Package typhoon implements the forecast-experiment machinery of the
// paper's headline demonstration (§7.1, Figs 1, 6, 7): seeding a
// Holland-profile tropical-cyclone vortex into the atmosphere component,
// tracking the storm center through the simulation (minimum surface
// pressure with a vorticity check), comparing the simulated track and
// intensity against a bundled CMA-style best track of Super Typhoon Doksuri
// (2023), and the structure diagnostics (radius of maximum wind,
// fine-scale variance) that distinguish the high-resolution run from the
// coarse one in Fig 6.
package typhoon

import (
	"fmt"
	"math"
	"time"

	"repro/internal/atmos"
	"repro/internal/grid"
)

// TrackPoint is one position fix of a tropical cyclone.
type TrackPoint struct {
	Time    time.Time
	LonDeg  float64
	LatDeg  float64
	WindMS  float64 // maximum sustained wind, m/s
	PressPa float64 // central pressure, Pa
}

// BestTrackDoksuri returns a daily CMA-style best track of Super Typhoon
// Doksuri (July 2023), digitized approximately from public advisories: the
// storm formed east of the Philippines on 21 July, intensified to super
// typhoon strength while crossing the Luzon Strait around 25 July, and made
// landfall in Fujian on 28 July with extreme rainfall over China.
func BestTrackDoksuri() []TrackPoint {
	day := func(d int) time.Time {
		return time.Date(2023, 7, d, 0, 0, 0, 0, time.UTC)
	}
	return []TrackPoint{
		{day(21), 131.5, 14.0, 18, 100000},
		{day(22), 129.3, 15.4, 25, 99200},
		{day(23), 127.0, 16.3, 33, 97500},
		{day(24), 124.6, 17.6, 42, 95500},
		{day(25), 122.4, 19.8, 55, 92500},
		{day(26), 120.6, 21.8, 50, 93500},
		{day(27), 119.9, 23.6, 42, 95500},
		{day(28), 119.0, 25.6, 38, 96500},
	}
}

// SeedConfig describes the initial vortex.
type SeedConfig struct {
	LonDeg   float64
	LatDeg   float64
	DeltaPs  float64 // central pressure deficit, Pa
	RadiusKm float64 // radius of maximum wind
	Moisten  bool    // saturate the core for rainfall
}

// DoksuriSeed returns the genesis-position seed matching the best track's
// first fix.
func DoksuriSeed() SeedConfig {
	return SeedConfig{LonDeg: 131.5, LatDeg: 14.0, DeltaPs: 1500, RadiusKm: 300, Moisten: true}
}

// Seed plants a warm-core, gradient-balanced Holland-profile vortex in the
// atmosphere model: a surface pressure depression, cyclonic tangential
// winds on every level (decaying upward), and optionally a moistened core.
func Seed(m *atmos.Model, cfg SeedConfig) error {
	if cfg.DeltaPs <= 0 || cfg.RadiusKm <= 0 {
		return fmt.Errorf("typhoon: non-positive vortex parameters")
	}
	mesh := m.Mesh
	nc, ne := mesh.NCells(), mesh.NEdges()
	center := grid.FromLonLat(cfg.LonDeg*math.Pi/180, cfg.LatDeg*math.Pi/180)
	rm := cfg.RadiusKm * 1000 / grid.EarthRadius // radians
	sign := 1.0
	if cfg.LatDeg < 0 {
		sign = -1 // cyclonic is clockwise in the southern hemisphere
	}

	// Surface pressure: Holland-like exponential depression.
	for c := 0; c < nc; c++ {
		r := grid.GreatCircleDist(mesh.CellCenter[c], center)
		m.Ps[c] -= cfg.DeltaPs * math.Exp(-pow15(r/rm))
		if cfg.Moisten && r < 3*rm {
			kb := m.NLev - 1
			for k := kb; k >= m.NLev*2/3; k-- {
				i := k*nc + c
				p := m.SigmaP(k, c)
				m.Qv[i] = math.Min(0.95*qsatLocal(m.T[i], p), m.Qv[i]*4+0.004)
			}
		}
		// Warm core in the mid troposphere.
		if r < 3*rm {
			for k := m.NLev / 3; k < m.NLev*2/3; k++ {
				m.T[k*nc+c] += 2 * math.Exp(-pow15(r/rm))
			}
		}
	}

	// Tangential wind at edges: v(r) = vmax·(r/rm)·exp(1−(r/rm)^1.5) style
	// profile, applied as the edge-normal projection of the azimuthal flow,
	// decaying with height.
	vmax := math.Sqrt(cfg.DeltaPs / 1.15) // rough gradient-wind scale
	for e := 0; e < ne; e++ {
		mid := mesh.EdgeMidpoint[e]
		r := grid.GreatCircleDist(mid, center)
		if r > 8*rm || r < 1e-9 {
			continue
		}
		x := r / rm
		v := vmax * x * math.Exp(1-x*x)
		// Azimuthal unit vector at mid: ĉ = normalize(center × mid) gives
		// counterclockwise (cyclonic, NH) circulation around the center.
		az := center.Cross(mid)
		if az.Norm() < 1e-12 {
			continue
		}
		az = az.Normalize().Scale(sign)
		c1, c2 := mesh.CellsOnEdge[e][0], mesh.CellsOnEdge[e][1]
		nrm := mesh.CellCenter[c2].Sub(mesh.CellCenter[c1])
		nrm = nrm.Sub(mid.Scale(nrm.Dot(mid))).Normalize()
		proj := v * az.Dot(nrm)
		for k := 0; k < m.NLev; k++ {
			depth := float64(k+1) / float64(m.NLev) // stronger near the surface
			m.U[k*ne+e] += proj * depth
		}
	}
	return nil
}

// pow15 returns x^1.5 for x >= 0.
func pow15(x float64) float64 { return x * math.Sqrt(x) }

func qsatLocal(t, p float64) float64 {
	es := 610.78 * math.Exp(17.27*(t-273.15)/(t-35.85))
	q := 0.622 * es / math.Max(p-0.378*es, 1)
	return math.Min(q, 0.08)
}

// Fix is one simulated storm-center fix.
type Fix struct {
	Time    time.Time
	LonDeg  float64
	LatDeg  float64
	PressPa float64
	WindMS  float64 // maximum lowest-level wind within the search radius
}

// FindCenter locates the storm in the model: the minimum surface pressure
// cell, validated by cyclonic vorticity, with the peak 10 m wind within
// searchKm of the center.
func FindCenter(m *atmos.Model, at time.Time, searchKm float64) (Fix, error) {
	minPs, c := m.MinPs()
	if c < 0 {
		return Fix{}, fmt.Errorf("typhoon: no pressure minimum found")
	}
	lon := m.Mesh.LonCell[c] * 180 / math.Pi
	if lon < 0 {
		lon += 360
	}
	lat := m.Mesh.LatCell[c] * 180 / math.Pi

	u, v := m.Wind10m()
	center := m.Mesh.CellCenter[c]
	rad := searchKm * 1000 / grid.EarthRadius
	var wmax float64
	for i := 0; i < m.Mesh.NCells(); i++ {
		if grid.GreatCircleDist(m.Mesh.CellCenter[i], center) > rad {
			continue
		}
		if s := math.Hypot(u[i], v[i]); s > wmax {
			wmax = s
		}
	}
	return Fix{Time: at, LonDeg: lon, LatDeg: lat, PressPa: minPs, WindMS: wmax}, nil
}

// FindCenterNear locates the storm as the minimum surface pressure within
// windowKm of a previous fix — the standard tracker practice that keeps the
// tracker locked on the storm when deeper synoptic lows exist elsewhere on
// the globe. Valid only when the model's fields are globally live (replicated
// runs); decomposed runs must assemble global fields collectively and call
// FindCenterNearFields.
func FindCenterNear(m *atmos.Model, at time.Time, prev Fix, windowKm, searchKm float64) (Fix, error) {
	u, v := m.Wind10m()
	return FindCenterNearFields(m.Mesh, m.Ps, u, v, at, prev, windowKm, searchKm)
}

// FindCenterNearFields is FindCenterNear on pre-assembled global fields: ps
// on cells, (u, v) the 10 m wind components on cells. It has no model
// dependency, so an ensemble driver can gather the globals once (e.g. via
// core.GlobalAtmPs / core.GlobalWind10m under atmosphere decomposition) and
// track on rank 0 without touching stale halo cells.
func FindCenterNearFields(mesh *grid.IcosMesh, ps, u, v []float64, at time.Time, prev Fix, windowKm, searchKm float64) (Fix, error) {
	pcen := grid.FromLonLat(prev.LonDeg*math.Pi/180, prev.LatDeg*math.Pi/180)
	window := windowKm * 1000 / grid.EarthRadius
	best, at2 := math.Inf(1), -1
	for c := 0; c < mesh.NCells(); c++ {
		if grid.GreatCircleDist(mesh.CellCenter[c], pcen) > window {
			continue
		}
		if ps[c] < best {
			best, at2 = ps[c], c
		}
	}
	if at2 < 0 {
		return Fix{}, fmt.Errorf("typhoon: no cells within %v km of previous fix", windowKm)
	}
	lon := mesh.LonCell[at2] * 180 / math.Pi
	if lon < 0 {
		lon += 360
	}
	lat := mesh.LatCell[at2] * 180 / math.Pi

	center := mesh.CellCenter[at2]
	rad := searchKm * 1000 / grid.EarthRadius
	var wmax float64
	for i := 0; i < mesh.NCells(); i++ {
		if grid.GreatCircleDist(mesh.CellCenter[i], center) > rad {
			continue
		}
		if s := math.Hypot(u[i], v[i]); s > wmax {
			wmax = s
		}
	}
	return Fix{Time: at, LonDeg: lon, LatDeg: lat, PressPa: best, WindMS: wmax}, nil
}

// GreatCircleKm returns the distance between two (lon, lat) fixes in km.
func GreatCircleKm(lon1, lat1, lon2, lat2 float64) float64 {
	a := grid.FromLonLat(lon1*math.Pi/180, lat1*math.Pi/180)
	b := grid.FromLonLat(lon2*math.Pi/180, lat2*math.Pi/180)
	return grid.GreatCircleDist(a, b) * grid.EarthRadius / 1000
}

// TrackError returns the mean great-circle separation (km) between
// simulated fixes and best-track points at matching times (nearest best
// point within 12 h; fixes without a match are skipped).
func TrackError(sim []Fix, best []TrackPoint) (float64, error) {
	if len(sim) == 0 || len(best) == 0 {
		return 0, fmt.Errorf("typhoon: empty track")
	}
	var sum float64
	var n int
	for _, f := range sim {
		var nearest *TrackPoint
		bestDt := 12 * time.Hour
		for i := range best {
			dt := f.Time.Sub(best[i].Time)
			if dt < 0 {
				dt = -dt
			}
			if dt <= bestDt {
				bestDt = dt
				nearest = &best[i]
			}
		}
		if nearest == nil {
			continue
		}
		sum += GreatCircleKm(f.LonDeg, f.LatDeg, nearest.LonDeg, nearest.LatDeg)
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("typhoon: no time-matched fixes")
	}
	return sum / float64(n), nil
}

// RadiusOfMaxWind estimates the storm's eye size: the mean distance (km)
// from the center to the cells in the top percentile of 10 m wind within
// searchKm. Finer meshes resolve a more compact eye (Fig 6a vs 6b).
func RadiusOfMaxWind(m *atmos.Model, fix Fix, searchKm float64) float64 {
	u, v := m.Wind10m()
	center := grid.FromLonLat(fix.LonDeg*math.Pi/180, fix.LatDeg*math.Pi/180)
	rad := searchKm * 1000 / grid.EarthRadius
	var wmax float64
	for c := 0; c < m.Mesh.NCells(); c++ {
		if grid.GreatCircleDist(m.Mesh.CellCenter[c], center) > rad {
			continue
		}
		if s := math.Hypot(u[c], v[c]); s > wmax {
			wmax = s
		}
	}
	if wmax == 0 {
		return 0
	}
	var sum float64
	var n int
	for c := 0; c < m.Mesh.NCells(); c++ {
		r := grid.GreatCircleDist(m.Mesh.CellCenter[c], center)
		if r > rad {
			continue
		}
		if math.Hypot(u[c], v[c]) >= 0.9*wmax {
			sum += r * grid.EarthRadius / 1000
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FineScaleVariance measures resolved small-scale structure: the mean
// squared physical gradient of a cell field across edges (per metre),
// normalized by the field variance. A coarse mesh smooths sharp eyewall and
// frontal gradients, so higher resolution resolves more gradient variance —
// the Fig 6c vs 6d contrast for the ocean Rossby-number response and the
// wind field.
func FineScaleVariance(mesh *grid.IcosMesh, field []float64) float64 {
	if len(field) != mesh.NCells() {
		return 0
	}
	var mean float64
	for _, v := range field {
		mean += v
	}
	mean /= float64(len(field))
	var varF float64
	for _, v := range field {
		varF += (v - mean) * (v - mean)
	}
	varF /= float64(len(field))
	if varF == 0 {
		return 0
	}
	var grad float64
	for e := 0; e < mesh.NEdges(); e++ {
		c1, c2 := mesh.CellsOnEdge[e][0], mesh.CellsOnEdge[e][1]
		d := (field[c2] - field[c1]) / (mesh.Dc[e] * grid.EarthRadius)
		grad += d * d
	}
	grad /= float64(mesh.NEdges())
	return grad / varF
}
