package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one observability record: a closed span on a rank's timeline or
// a flushed metric value. Span events carry Path/StartNs/DurNs; metric
// events carry Value/Count.
type Event struct {
	Kind    string  `json:"kind"`
	Rank    int     `json:"rank"`
	Name    string  `json:"name"`
	Path    string  `json:"path,omitempty"`
	StartNs int64   `json:"start_ns,omitempty"`
	DurNs   int64   `json:"dur_ns,omitempty"`
	Value   float64 `json:"value,omitempty"`
	Count   int64   `json:"count,omitempty"`
}

// Sink receives events from every rank's Obs. Implementations must be safe
// for concurrent Emit from all ranks.
type Sink interface {
	// Attach registers a rank's observer so pull-style sinks (Prometheus)
	// can snapshot it on demand.
	Attach(o *Obs)
	// Emit records one event.
	Emit(e Event)
	// Flush forces buffered output to its destination.
	Flush() error
	// Close flushes and releases the sink.
	Close() error
}

// OpenSink builds a sink from a command-line spec:
//
//	off (or "")  -> nil sink: accumulate in memory, emit nothing
//	mem          -> in-memory sink (tests, programmatic inspection)
//	jsonl:PATH   -> JSONL event log appended to PATH
//	prom:ADDR    -> Prometheus text exposition served at http://ADDR/metrics
func OpenSink(spec string) (Sink, error) {
	switch {
	case spec == "" || spec == "off":
		return nil, nil
	case spec == "mem":
		return NewMemorySink(), nil
	case strings.HasPrefix(spec, "jsonl:"):
		return NewJSONLSink(strings.TrimPrefix(spec, "jsonl:"))
	case strings.HasPrefix(spec, "prom:"):
		return NewPromSink(strings.TrimPrefix(spec, "prom:"))
	default:
		return nil, fmt.Errorf("obs: unknown sink spec %q (want off, mem, jsonl:PATH, prom:ADDR)", spec)
	}
}

// MemorySink buffers events in memory — the test sink.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
	obs    []*Obs
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Attach implements Sink.
func (m *MemorySink) Attach(o *Obs) {
	m.mu.Lock()
	m.obs = append(m.obs, o)
	m.mu.Unlock()
}

// Emit implements Sink.
func (m *MemorySink) Emit(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Flush implements Sink.
func (m *MemorySink) Flush() error { return nil }

// Close implements Sink.
func (m *MemorySink) Close() error { return nil }

// Events returns a copy of everything emitted so far.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// JSONLSink appends one JSON object per event to a file — the event-log
// sink a post-processing tool (or test) replays into timelines.
type JSONLSink struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// NewJSONLSink creates (truncating) the log file at path.
func NewJSONLSink(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	return &JSONLSink{f: f, w: bufio.NewWriter(f)}, nil
}

// Attach implements Sink.
func (s *JSONLSink) Attach(*Obs) {}

// Emit implements Sink.
func (s *JSONLSink) Emit(e Event) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	s.mu.Lock()
	s.w.Write(b)
	s.w.WriteByte('\n')
	s.mu.Unlock()
}

// Flush implements Sink.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// Close implements Sink.
func (s *JSONLSink) Close() error {
	if err := s.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// ReadJSONL loads an event log written by JSONLSink — the read half of the
// round-trip.
func ReadJSONL(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	defer f.Close()
	var out []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("obs: bad event line %q: %w", line, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// PromSink exposes the attached observers' registries in Prometheus text
// exposition format. Metrics are pulled (rendered on demand from live
// snapshots), so Emit is a no-op; an optional HTTP server answers
// GET /metrics.
type PromSink struct {
	mu   sync.Mutex
	obs  []*Obs
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when the serve goroutine exits
}

// NewPromText returns a render-only Prometheus sink (no HTTP server).
func NewPromText() *PromSink { return &PromSink{} }

// NewPromSink starts an HTTP server on addr serving /metrics. addr may use
// port 0 to pick a free port; Addr reports the bound address.
func NewPromSink(addr string) (*PromSink, error) {
	p := &PromSink{}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: prom listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		p.Render(w)
	})
	p.ln = ln
	// ReadHeaderTimeout bounds how long a connection may dribble its request
	// headers — without it a slowloris peer pins goroutines and fds forever.
	p.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	p.done = make(chan struct{})
	go func() {
		defer close(p.done)
		p.srv.Serve(ln)
	}()
	return p, nil
}

// Addr returns the served address ("" for render-only sinks).
func (p *PromSink) Addr() string {
	if p.ln == nil {
		return ""
	}
	return p.ln.Addr().String()
}

// Attach implements Sink.
func (p *PromSink) Attach(o *Obs) {
	p.mu.Lock()
	p.obs = append(p.obs, o)
	p.mu.Unlock()
}

// Emit implements Sink: Prometheus metrics are pulled, not pushed.
func (p *PromSink) Emit(Event) {}

// Flush implements Sink.
func (p *PromSink) Flush() error { return nil }

// Close implements Sink. It shuts the HTTP server down and joins the serve
// goroutine, so when Close returns the listener is released and the port is
// immediately re-bindable.
func (p *PromSink) Close() error {
	if p.srv == nil {
		return nil
	}
	err := p.srv.Close()
	<-p.done
	return err
}

// promName sanitizes a metric name into the Prometheus charset under the
// ap3esm_ namespace: "par.send.bytes" -> "ap3esm_par_send_bytes". Labeled
// names (see Labeled) must be split with SplitLabels first; promName only
// sees base names.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("ap3esm_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Render writes the text exposition of every attached observer, one series
// per rank via a rank label. Sections render as _seconds and _calls pairs;
// histograms render the standard _bucket/_sum/_count triplet.
func (p *PromSink) Render(w io.Writer) {
	p.mu.Lock()
	obsList := append([]*Obs(nil), p.obs...)
	p.mu.Unlock()
	sort.Slice(obsList, func(i, j int) bool { return obsList[i].rank < obsList[j].rank })

	typed := make(map[string]bool)
	writeType := func(name, kind string) {
		if !typed[name] {
			fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
			typed[name] = true
		}
	}
	for _, o := range obsList {
		for _, name := range o.SectionNames() {
			d, calls := o.Section(name)
			sn := promName("section." + name)
			writeType(sn+"_seconds", "counter")
			fmt.Fprintf(w, "%s_seconds{rank=\"%d\"} %g\n", sn, o.rank, d.Seconds())
			writeType(sn+"_calls", "counter")
			fmt.Fprintf(w, "%s_calls{rank=\"%d\"} %d\n", sn, o.rank, calls)
		}
		reg := o.Registry()
		reg.mu.RLock()
		counters := sortedKeys(reg.counters)
		gauges := sortedKeys(reg.gauges)
		hists := sortedKeys(reg.hists)
		reg.mu.RUnlock()
		for _, n := range counters {
			pn, extra := promSeries(n)
			writeType(pn, "counter")
			fmt.Fprintf(w, "%s{%srank=\"%d\"} %d\n", pn, extra, o.rank, reg.Counter(n).Value())
		}
		for _, n := range gauges {
			pn, extra := promSeries(n)
			writeType(pn, "gauge")
			fmt.Fprintf(w, "%s{%srank=\"%d\"} %g\n", pn, extra, o.rank, reg.Gauge(n).Value())
		}
		for _, n := range hists {
			h := reg.Histogram(n)
			pn := promName(n)
			writeType(pn, "histogram")
			bounds, cum := h.Buckets()
			for i, ub := range bounds {
				le := "+Inf"
				if !math.IsInf(ub, 1) {
					le = fmt.Sprintf("%g", ub)
				}
				fmt.Fprintf(w, "%s_bucket{rank=\"%d\",le=\"%s\"} %d\n", pn, o.rank, le, cum[i])
			}
			fmt.Fprintf(w, "%s_sum{rank=\"%d\"} %g\n", pn, o.rank, h.Sum())
			fmt.Fprintf(w, "%s_count{rank=\"%d\"} %d\n", pn, o.rank, h.Count())
		}
	}
}

// promSeries splits a (possibly labeled) registry name into the sanitized
// Prometheus family name and a label prefix ready to splice before the rank
// label: `cpl.halo.msgs{component="ocn"}` becomes
// ("ap3esm_cpl_halo_msgs", `component="ocn",`).
func promSeries(name string) (pn, labelPrefix string) {
	base, labels := SplitLabels(name)
	if labels != "" {
		labels += ","
	}
	return promName(base), labels
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
