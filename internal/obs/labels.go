package obs

import "strings"

// Labeled renders a metric name with label pairs in the canonical form the
// sinks understand: Labeled("cpl.halo.msgs", "component", "ocn") returns
// `cpl.halo.msgs{component="ocn"}`. Labeled names index the registry as
// ordinary strings — each label combination is its own series — and the
// Prometheus renderer splits the label body back out so the base name stays
// one metric family. kv must hold alternating keys and values.
func Labeled(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("obs: Labeled needs alternating key, value pairs")
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(kv[i+1])
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// SplitLabels separates a canonical labeled name produced by Labeled into
// its base name and label body (without braces). Unlabeled names return the
// name unchanged with an empty label body.
func SplitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}
