// Package obs is the unified observability layer of the reproduction: one
// instrumentation API feeding the per-component timers (§6.2's GPTL role),
// the communication-pattern counters (§5.2.4), and the performance
// trajectory the benchmark tooling records.
//
// The package provides four pieces:
//
//   - a metrics registry — counters, gauges, and histograms with atomic
//     hot-path increments;
//   - lightweight trace spans with parent/child nesting and per-rank
//     timelines;
//   - pluggable sinks — in-memory (tests), JSONL event log, and
//     Prometheus-style text exposition;
//   - a rank-reduction step (Reduce) taking max/sum across ranks,
//     preserving the paper's max-wall convention.
//
// Every consumer package (core, par, pp, coupler, pario) declares the small
// structural subset of Observer it needs, so only core and the command
// binaries import obs directly; *Obs satisfies all of them.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Observer is the redesigned instrumentation API consumed across the stack.
// *Obs is the live implementation; Nop is the disabled one (near-zero
// overhead: every method is an empty shell).
type Observer interface {
	// StartSpan opens a trace span nested under the caller's current span.
	// The returned span may be nil (Nop); Span.End is nil-safe.
	StartSpan(name string) *Span
	// AddCount adds delta to the named counter.
	AddCount(name string, delta int64)
	// SetGauge stores v as the named gauge's value.
	SetGauge(name string, v float64)
	// ObserveValue records one sample into the named histogram.
	ObserveValue(name string, v float64)
	// Section returns a section's accumulated span wall time and call count.
	Section(name string) (time.Duration, int)
	// SectionNames returns the sections seen so far, sorted.
	SectionNames() []string
	// Snapshot returns every section and metric as a Point.
	Snapshot() []Point
}

// section accumulates closed spans by name — the getTiming accumulation the
// core timing report reduces across ranks.
type section struct {
	total time.Duration
	calls int
}

// Obs is one rank's observability handle: a registry, a span stack, and an
// optional shared sink. All methods are safe for concurrent use, but spans
// nest per Obs, so each rank (goroutine) owns its own Obs, mirroring how
// GPTL keeps per-process timer trees.
type Obs struct {
	rank  int
	epoch time.Time
	sink  Sink
	reg   *Registry

	mu       sync.Mutex
	sections map[string]*section
	cur      *Span
}

// New creates a rank's observer. sink may be nil (accumulate only, emit
// nothing) or shared by all ranks of a run.
func New(rank int, sink Sink) *Obs {
	o := &Obs{
		rank:     rank,
		epoch:    time.Now(),
		sink:     sink,
		reg:      NewRegistry(),
		sections: make(map[string]*section),
	}
	if sink != nil {
		sink.Attach(o)
	}
	return o
}

// Rank returns the rank this observer instruments.
func (o *Obs) Rank() int { return o.rank }

// Registry exposes the rank's metric registry for direct handle caching on
// hot paths.
func (o *Obs) Registry() *Registry { return o.reg }

// StartSpan implements Observer: it opens a span nested under the current
// one and makes it current.
func (o *Obs) StartSpan(name string) *Span {
	o.mu.Lock()
	parent := o.cur
	path := name
	if parent != nil {
		path = parent.path + "/" + name
	}
	s := &Span{o: o, name: name, path: path, parent: parent, start: time.Now()}
	o.cur = s
	o.mu.Unlock()
	return s
}

// AddCount implements Observer.
func (o *Obs) AddCount(name string, delta int64) { o.reg.Counter(name).Add(delta) }

// SetGauge implements Observer.
func (o *Obs) SetGauge(name string, v float64) { o.reg.Gauge(name).Set(v) }

// ObserveValue implements Observer.
func (o *Obs) ObserveValue(name string, v float64) { o.reg.Histogram(name).Observe(v) }

// AddSection accumulates d directly into the named section, outside the
// span stack. Concurrent component groups need this: spans nest per Obs
// (per rank), so a region whose duration is measured off the rank's driver
// goroutine cannot open a span without corrupting the timeline — its wall
// time is folded in here instead. Emits the same timeline event a closed
// span of that duration ending now would.
func (o *Obs) AddSection(name string, d time.Duration) {
	o.mu.Lock()
	sec := o.sections[name]
	if sec == nil {
		sec = &section{}
		o.sections[name] = sec
	}
	sec.total += d
	sec.calls++
	sink := o.sink
	o.mu.Unlock()
	if sink != nil {
		startNs := time.Since(o.epoch).Nanoseconds() - d.Nanoseconds()
		sink.Emit(Event{
			Kind:    "span",
			Rank:    o.rank,
			Name:    name,
			Path:    name,
			StartNs: startNs,
			DurNs:   d.Nanoseconds(),
		})
	}
}

// Section implements Observer.
func (o *Obs) Section(name string) (time.Duration, int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := o.sections[name]
	if s == nil {
		return 0, 0
	}
	return s.total, s.calls
}

// SectionNames implements Observer.
func (o *Obs) SectionNames() []string {
	o.mu.Lock()
	names := make([]string, 0, len(o.sections))
	for n := range o.sections {
		names = append(names, n)
	}
	o.mu.Unlock()
	sort.Strings(names)
	return names
}

// Snapshot implements Observer: sections first (sorted by name), then the
// registry's metrics.
func (o *Obs) Snapshot() []Point {
	o.mu.Lock()
	secs := make([]Point, 0, len(o.sections))
	for n, s := range o.sections {
		secs = append(secs, Point{Name: n, Kind: KindSection, Value: s.total.Seconds(), Count: int64(s.calls)})
	}
	o.mu.Unlock()
	sort.Slice(secs, func(i, j int) bool { return secs[i].Name < secs[j].Name })
	return append(secs, o.reg.Snapshot()...)
}

// FlushMetrics emits every section and metric to the sink as one event
// apiece — the end-of-run dump that lands counters next to the span
// timeline in a JSONL log.
func (o *Obs) FlushMetrics() {
	if o.sink == nil {
		return
	}
	for _, p := range o.Snapshot() {
		o.sink.Emit(Event{Kind: p.Kind.String(), Rank: o.rank, Name: p.Name, Value: p.Value, Count: p.Count})
	}
}

// Nop is the disabled observer: every method is an empty shell, so an
// instrumented call site costs one interface dispatch and nothing else.
type Nop struct{}

// StartSpan implements Observer; the nil span's End is a no-op.
func (Nop) StartSpan(string) *Span { return nil }

// AddCount implements Observer.
func (Nop) AddCount(string, int64) {}

// SetGauge implements Observer.
func (Nop) SetGauge(string, float64) {}

// ObserveValue implements Observer.
func (Nop) ObserveValue(string, float64) {}

// Section implements Observer.
func (Nop) Section(string) (time.Duration, int) { return 0, 0 }

// SectionNames implements Observer.
func (Nop) SectionNames() []string { return nil }

// Snapshot implements Observer.
func (Nop) Snapshot() []Point { return nil }
