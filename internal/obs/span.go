package obs

import "time"

// Span is one timed region of a rank's timeline. Spans nest: StartSpan
// makes the new span the current one, End restores its parent, and the
// path records the ancestry ("esm/ocn/halo"). Closing a span accumulates
// into its section (by leaf name, the getTiming convention) and emits a
// timeline event to the sink.
type Span struct {
	o      *Obs
	name   string
	path   string
	parent *Span
	start  time.Time
}

// Name returns the span's leaf name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Path returns the span's nesting path.
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// End closes the span, accumulating its wall time into the section named
// after it. Safe on a nil span (the Nop observer's product).
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	o := s.o
	o.mu.Lock()
	sec := o.sections[s.name]
	if sec == nil {
		sec = &section{}
		o.sections[s.name] = sec
	}
	sec.total += d
	sec.calls++
	if o.cur == s {
		o.cur = s.parent
	}
	sink := o.sink
	startNs := s.start.Sub(o.epoch).Nanoseconds()
	o.mu.Unlock()
	if sink != nil {
		sink.Emit(Event{
			Kind:    "span",
			Rank:    o.rank,
			Name:    s.name,
			Path:    s.path,
			StartNs: startNs,
			DurNs:   d.Nanoseconds(),
		})
	}
}

// Timed runs f inside a span on o — the one-line instrumentation helper.
func Timed(o Observer, name string, f func()) {
	sp := o.StartSpan(name)
	f()
	sp.End()
}
