package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count with an atomic hot-path
// increment, the GPTL-style event counter of the observability layer.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value metric stored as atomic float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultBounds are the histogram bucket upper bounds used when none are
// given: exponential decades spanning microseconds to tens of seconds, which
// covers both tile times and whole-component walls.
var DefaultBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Histogram is a fixed-bucket distribution with atomic observation counts;
// tile-imbalance and message-size distributions land here.
type Histogram struct {
	bounds  []float64      // ascending upper bounds; implicit +Inf bucket last
	counts  []atomic.Int64 // len(bounds)+1
	sumBits atomic.Uint64  // float64 bits of the running sum, CAS-updated
	n       atomic.Int64
}

// NewHistogram builds a histogram over the given ascending bucket upper
// bounds; with no bounds it uses DefaultBounds.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBounds
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the bucket upper bounds and the cumulative count at or
// below each bound, Prometheus-style; the final entry is the +Inf bucket.
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	bounds = append([]float64(nil), h.bounds...)
	bounds = append(bounds, math.Inf(1))
	cumulative = make([]int64, len(h.counts))
	var acc int64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}

// Kind classifies a metric point.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
	KindSection
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindSection:
		return "section"
	default:
		return "unknown"
	}
}

// Point is one metric's local value, the unit of snapshots and of the
// cross-rank reduction. For sections Value is accumulated wall seconds and
// Count the call count; for histograms Value is the sample sum and Count the
// sample count.
type Point struct {
	Name  string
	Kind  Kind
	Value float64
	Count int64
}

// Registry is a name-indexed collection of counters, gauges, and histograms.
// Get-or-create lookups take a lock; the returned metric handles are
// lock-free on the hot path.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// (or DefaultBounds) on first use. Later calls ignore the bounds.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = NewHistogram(bounds...)
	r.hists[name] = h
	return h
}

// Snapshot returns every registered metric as a Point, sorted by name
// within kind order (counters, gauges, histograms).
func (r *Registry) Snapshot() []Point {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pts := make([]Point, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n, c := range r.counters {
		v := c.Value()
		pts = append(pts, Point{Name: n, Kind: KindCounter, Value: float64(v), Count: v})
	}
	for n, g := range r.gauges {
		pts = append(pts, Point{Name: n, Kind: KindGauge, Value: g.Value()})
	}
	for n, h := range r.hists {
		pts = append(pts, Point{Name: n, Kind: KindHistogram, Value: h.Sum(), Count: h.Count()})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Kind != pts[j].Kind {
			return pts[i].Kind < pts[j].Kind
		}
		return pts[i].Name < pts[j].Name
	})
	return pts
}
