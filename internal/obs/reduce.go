package obs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/par"
)

// ReducedPoint is one metric reduced across the ranks of a communicator.
// Max preserves the paper's §6.2 convention (the slowest rank sets the
// wall); Sum aggregates traffic-style counters.
type ReducedPoint struct {
	Name     string
	Kind     Kind
	Max      float64
	Sum      float64
	MaxCount int64
	SumCount int64
}

// Reduce reduces each rank's metric points across the communicator,
// returning, for every metric name seen on any rank, the max and sum of its
// value and count. Collective: every rank must call it with its local
// points; all ranks receive the same rows, sorted by (kind, name).
//
// Ranks need not have identical metric sets — the union is gathered first
// (a rank missing a metric contributes zero), exactly as the timing report
// handles sections that only some ranks execute.
func Reduce(c *par.Comm, pts []Point) []ReducedPoint {
	local := make(map[string]Point, len(pts))
	keys := make([]string, 0, len(pts))
	for _, p := range pts {
		k := pointKey(p.Kind, p.Name)
		if _, dup := local[k]; !dup {
			keys = append(keys, k)
		}
		local[k] = p
	}

	// Union of keys across ranks, identically ordered everywhere.
	union := map[string]bool{}
	for _, list := range par.Allgather(c, keys) {
		for _, k := range list {
			union[k] = true
		}
	}
	all := make([]string, 0, len(union))
	for k := range union {
		all = append(all, k)
	}
	sort.Strings(all)

	vals := make([]float64, len(all))
	counts := make([]float64, len(all))
	for i, k := range all {
		p := local[k] // zero Point when this rank never touched the metric
		vals[i] = p.Value
		counts[i] = float64(p.Count)
	}
	maxVals := c.AllreduceSlice(vals, par.OpMax)
	sumVals := c.AllreduceSlice(vals, par.OpSum)
	maxCounts := c.AllreduceSlice(counts, par.OpMax)
	sumCounts := c.AllreduceSlice(counts, par.OpSum)

	out := make([]ReducedPoint, len(all))
	for i, k := range all {
		kind, name := splitPointKey(k)
		out[i] = ReducedPoint{
			Name:     name,
			Kind:     kind,
			Max:      maxVals[i],
			Sum:      sumVals[i],
			MaxCount: int64(maxCounts[i]),
			SumCount: int64(sumCounts[i]),
		}
	}
	return out
}

// ReduceObserver is Reduce over an observer's full snapshot.
func ReduceObserver(c *par.Comm, o Observer) []ReducedPoint {
	return Reduce(c, o.Snapshot())
}

// pointKey orders points by kind then name with an unambiguous separator.
func pointKey(k Kind, name string) string { return fmt.Sprintf("%d\x00%s", k, name) }

func splitPointKey(key string) (Kind, string) {
	i := strings.IndexByte(key, 0)
	return Kind(key[0] - '0'), key[i+1:]
}
