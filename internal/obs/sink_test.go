package obs

import (
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestJSONLRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	sink, err := NewJSONLSink(path)
	if err != nil {
		t.Fatal(err)
	}
	o := New(2, sink)
	Timed(o, "ocn", func() { time.Sleep(time.Millisecond) })
	o.AddCount("par.send.bytes", 4096)
	o.FlushMetrics()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	var span, section, counter *Event
	for i := range events {
		e := &events[i]
		switch {
		case e.Kind == "span" && e.Name == "ocn":
			span = e
		case e.Kind == "section" && e.Name == "ocn":
			section = e
		case e.Kind == "counter" && e.Name == "par.send.bytes":
			counter = e
		}
	}
	if span == nil || span.Rank != 2 || span.DurNs < int64(time.Millisecond) {
		t.Fatalf("span event missing or wrong: %+v", span)
	}
	if section == nil || section.Count != 1 || section.Value <= 0 {
		t.Fatalf("flushed section missing or wrong: %+v", section)
	}
	if counter == nil || counter.Count != 4096 {
		t.Fatalf("flushed counter missing or wrong: %+v", counter)
	}
}

func TestReadJSONLSkipsBlankAndRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.jsonl")
	sink, err := NewJSONLSink(good)
	if err != nil {
		t.Fatal(err)
	}
	sink.Emit(Event{Kind: "span", Name: "x"})
	sink.Close()
	if events, err := ReadJSONL(good); err != nil || len(events) != 1 {
		t.Fatalf("good file: %v, %v", events, err)
	}
	if _, err := ReadJSONL(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestPromRender(t *testing.T) {
	sink := NewPromText()
	o0 := New(0, sink)
	o1 := New(1, sink)
	Timed(o0, "atm", func() {})
	Timed(o1, "atm", func() {})
	o0.AddCount("par.send.bytes", 100)
	o1.AddCount("par.send.bytes", 200)
	o0.SetGauge("pario.subfile.groups", 2)
	o0.ObserveValue("tile_seconds", 0.004)

	var b strings.Builder
	sink.Render(&b)
	text := b.String()

	for _, want := range []string{
		`ap3esm_section_atm_seconds{rank="0"}`,
		`ap3esm_section_atm_calls{rank="1"} 1`,
		`ap3esm_par_send_bytes{rank="0"} 100`,
		`ap3esm_par_send_bytes{rank="1"} 200`,
		`ap3esm_pario_subfile_groups{rank="0"} 2`,
		`ap3esm_tile_seconds_bucket{rank="0",le="+Inf"} 1`,
		`ap3esm_tile_seconds_count{rank="0"} 1`,
		"# TYPE ap3esm_par_send_bytes counter",
		"# TYPE ap3esm_tile_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	// The TYPE line for a shared metric must appear exactly once.
	if n := strings.Count(text, "# TYPE ap3esm_par_send_bytes counter"); n != 1 {
		t.Errorf("TYPE line repeated %d times", n)
	}
}

func TestPromHTTP(t *testing.T) {
	sink, err := NewPromSink("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	o := New(0, sink)
	o.AddCount("par.send.msgs", 7)

	resp, err := http.Get("http://" + sink.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `ap3esm_par_send_msgs{rank="0"} 7`) {
		t.Fatalf("HTTP exposition missing counter:\n%s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
}

// TestPromCloseReleasesListener pins the shutdown contract: Close joins the
// serve goroutine, so the port is immediately re-bindable — no leaked
// listener, no goroutine still accepting on a dead sink. It also checks the
// server carries a ReadHeaderTimeout (the slowloris guard).
func TestPromCloseReleasesListener(t *testing.T) {
	sink, err := NewPromSink("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if sink.srv.ReadHeaderTimeout <= 0 {
		t.Fatal("prom server has no ReadHeaderTimeout (slowloris-able)")
	}
	addr := sink.Addr()
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-sink.done:
	case <-time.After(2 * time.Second):
		t.Fatal("serve goroutine still running after Close")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s after Close: %v", addr, err)
	}
	ln.Close()
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("GET succeeded against a closed sink")
	}
}

func TestOpenSink(t *testing.T) {
	if s, err := OpenSink("off"); err != nil || s != nil {
		t.Fatalf("off -> (%v, %v), want (nil, nil)", s, err)
	}
	if s, err := OpenSink(""); err != nil || s != nil {
		t.Fatalf("empty -> (%v, %v), want (nil, nil)", s, err)
	}
	if s, err := OpenSink("mem"); err != nil || s == nil {
		t.Fatalf("mem -> (%v, %v)", s, err)
	}
	path := filepath.Join(t.TempDir(), "log.jsonl")
	s, err := OpenSink("jsonl:" + path)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := OpenSink("bogus:x"); err == nil {
		t.Fatal("bogus spec should error")
	}
}
