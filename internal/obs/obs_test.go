package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/par"
)

func TestSpanNestingAndSections(t *testing.T) {
	sink := NewMemorySink()
	o := New(0, sink)

	outer := o.StartSpan("step")
	inner := o.StartSpan("ocn")
	if got := inner.Path(); got != "step/ocn" {
		t.Fatalf("nested path = %q, want step/ocn", got)
	}
	time.Sleep(time.Millisecond)
	inner.End()
	sib := o.StartSpan("atm")
	if got := sib.Path(); got != "step/atm" {
		t.Fatalf("sibling path = %q, want step/atm (parent restored after End)", got)
	}
	sib.End()
	outer.End()

	d, calls := o.Section("ocn")
	if calls != 1 || d <= 0 {
		t.Fatalf("section ocn = (%v, %d), want one positive call", d, calls)
	}
	if _, calls := o.Section("step"); calls != 1 {
		t.Fatalf("outer section not accumulated")
	}
	names := o.SectionNames()
	want := []string{"atm", "ocn", "step"}
	if len(names) != 3 || names[0] != want[0] || names[1] != want[1] || names[2] != want[2] {
		t.Fatalf("SectionNames = %v, want %v", names, want)
	}

	events := sink.Events()
	if len(events) != 3 {
		t.Fatalf("emitted %d events, want 3 span events", len(events))
	}
	for _, e := range events {
		if e.Kind != "span" || e.DurNs <= 0 {
			t.Fatalf("bad span event %+v", e)
		}
	}
}

func TestNilSpanAndNop(t *testing.T) {
	var s *Span
	s.End() // must not panic
	if s.Name() != "" || s.Path() != "" {
		t.Fatal("nil span accessors should be empty")
	}
	var o Observer = Nop{}
	o.StartSpan("x").End()
	o.AddCount("c", 1)
	o.ObserveValue("h", 1)
	if pts := o.Snapshot(); pts != nil {
		t.Fatalf("Nop snapshot = %v, want nil", pts)
	}
}

func TestRegistryMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs").Add(3)
	r.Counter("msgs").Inc()
	if v := r.Counter("msgs").Value(); v != 4 {
		t.Fatalf("counter = %d, want 4", v)
	}
	r.Gauge("groups").Set(2.5)
	if v := r.Gauge("groups").Value(); v != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", v)
	}
	h := r.Histogram("lat", 0.001, 0.1)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)
	if h.Count() != 3 || math.Abs(h.Sum()-5.0505) > 1e-12 {
		t.Fatalf("hist count/sum = %d/%g", h.Count(), h.Sum())
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || !math.IsInf(bounds[2], 1) {
		t.Fatalf("bounds = %v", bounds)
	}
	if cum[0] != 1 || cum[1] != 2 || cum[2] != 3 {
		t.Fatalf("cumulative = %v, want [1 2 3]", cum)
	}

	pts := r.Snapshot()
	if len(pts) != 3 {
		t.Fatalf("snapshot = %v, want 3 points", pts)
	}
	if pts[0].Kind != KindCounter || pts[1].Kind != KindGauge || pts[2].Kind != KindHistogram {
		t.Fatalf("snapshot kind order wrong: %v", pts)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-9 {
		t.Fatalf("sum = %g, want 8", h.Sum())
	}
}

func TestReduceAcrossRanks(t *testing.T) {
	par.Run(3, func(c *par.Comm) {
		rank := c.Rank()
		pts := []Point{
			{Name: "wall", Kind: KindSection, Value: float64(rank + 1), Count: int64(10 * (rank + 1))},
		}
		if rank == 1 {
			// Only one rank carries this metric; others contribute zero.
			pts = append(pts, Point{Name: "io.bytes", Kind: KindCounter, Value: 512, Count: 512})
		}
		red := Reduce(c, pts)
		if len(red) != 2 {
			t.Errorf("rank %d: reduced %d rows, want 2 (union)", rank, len(red))
			return
		}
		// Sorted by (kind, name): counter first, then section.
		iob, wall := red[0], red[1]
		if iob.Name != "io.bytes" || iob.Kind != KindCounter {
			t.Errorf("rank %d: row 0 = %+v", rank, iob)
		}
		if iob.Max != 512 || iob.Sum != 512 {
			t.Errorf("rank %d: io.bytes max/sum = %g/%g, want 512/512", rank, iob.Max, iob.Sum)
		}
		if wall.Name != "wall" || wall.Max != 3 || wall.Sum != 6 {
			t.Errorf("rank %d: wall = %+v, want max 3 sum 6", rank, wall)
		}
		if wall.MaxCount != 30 || wall.SumCount != 60 {
			t.Errorf("rank %d: wall counts = %d/%d, want 30/60", rank, wall.MaxCount, wall.SumCount)
		}
	})
}

func TestTimedHelper(t *testing.T) {
	o := New(0, nil)
	Timed(o, "work", func() { time.Sleep(time.Millisecond) })
	if d, calls := o.Section("work"); calls != 1 || d < time.Millisecond {
		t.Fatalf("Timed section = (%v, %d)", d, calls)
	}
}

func TestSnapshotOrder(t *testing.T) {
	o := New(0, nil)
	o.AddCount("z.counter", 1)
	Timed(o, "a.section", func() {})
	pts := o.Snapshot()
	if len(pts) != 2 {
		t.Fatalf("snapshot = %v", pts)
	}
	if pts[0].Kind != KindSection || pts[1].Kind != KindCounter {
		t.Fatalf("sections must precede registry metrics: %v", pts)
	}
}

func TestPromName(t *testing.T) {
	if got := promName("par.send.bytes"); got != "ap3esm_par_send_bytes" {
		t.Fatalf("promName = %q", got)
	}
	if got := promName("x-y/z"); !strings.HasPrefix(got, "ap3esm_") || strings.ContainsAny(got, "-/") {
		t.Fatalf("promName left invalid chars: %q", got)
	}
}
