package obs

import (
	"strings"
	"testing"
)

func TestLabeledCanonicalFormAndSplit(t *testing.T) {
	if got := Labeled("cpl.halo.msgs"); got != "cpl.halo.msgs" {
		t.Errorf("no-label form = %q", got)
	}
	name := Labeled("cpl.halo.msgs", "component", "ocn")
	if name != `cpl.halo.msgs{component="ocn"}` {
		t.Errorf("canonical form = %q", name)
	}
	multi := Labeled("x", "a", "1", "b", "2")
	if multi != `x{a="1",b="2"}` {
		t.Errorf("multi-label form = %q", multi)
	}
	base, labels := SplitLabels(name)
	if base != "cpl.halo.msgs" || labels != `component="ocn"` {
		t.Errorf("SplitLabels = %q, %q", base, labels)
	}
	if b, l := SplitLabels("plain.name"); b != "plain.name" || l != "" {
		t.Errorf("unlabeled split = %q, %q", b, l)
	}
	defer func() {
		if recover() == nil {
			t.Error("odd kv accepted")
		}
	}()
	Labeled("x", "key-without-value")
}

// The Prometheus renderer keeps labeled counters in one metric family: the
// label body moves into the series' braces alongside the rank label, so the
// unified cpl.halo.* counters render as one family with a component label.
func TestPromRenderSplitsLabeledCounters(t *testing.T) {
	sink := NewPromText()
	o := New(3, sink)
	o.AddCount(Labeled("cpl.halo.msgs", "component", "ocn"), 7)
	o.AddCount(Labeled("cpl.halo.msgs", "component", "atm"), 5)
	o.AddCount("cpl.atm.halo.msgs", 5) // deprecated alias stays a plain series
	o.FlushMetrics()
	var b strings.Builder
	sink.Render(&b)
	out := b.String()
	for _, want := range []string{
		`ap3esm_cpl_halo_msgs{component="ocn",rank="3"} 7`,
		`ap3esm_cpl_halo_msgs{component="atm",rank="3"} 5`,
		`ap3esm_cpl_atm_halo_msgs{rank="3"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered exposition missing %q:\n%s", want, out)
		}
	}
}
