package fault

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// A scoped plan fires only inside its scope; Point and foreign scopes never
// see it, and DisarmScoped withdraws exactly one scope.
func TestScopedPlanIsolation(t *testing.T) {
	defer Disarm()
	mk := func(spec string) *Plan {
		p, err := Parse(spec, 7)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	ArmScoped("m00", mk("nan@esm.step:1"))
	ArmScoped("m01", mk("io-error@esm.step:1"))
	defer DisarmScoped("m00")
	defer DisarmScoped("m01")

	if f := Point("esm.step", 0); f != nil {
		t.Fatalf("global Point saw a scoped plan: %+v", f)
	}
	if f := PointScoped("m02", "esm.step", 0); f != nil {
		t.Fatalf("foreign scope saw another member's plan: %+v", f)
	}
	f0 := PointScoped("m00", "esm.step", 0)
	if f0 == nil || f0.Kind != NaN {
		t.Fatalf("m00 got %+v, want its own nan", f0)
	}
	f1 := PointScoped("m01", "esm.step", 0)
	if f1 == nil || f1.Kind != IOError {
		t.Fatalf("m01 got %+v, want its own io-error", f1)
	}

	DisarmScoped("m00")
	if p := ArmedScoped("m00"); p != nil {
		t.Fatal("m00 still armed after DisarmScoped")
	}
	if p := ArmedScoped("m01"); p == nil {
		t.Fatal("DisarmScoped(m00) withdrew m01's plan")
	}
}

// Hit counters advance independently per plan: a member scope whose own
// plan schedules nothing still falls through to the global plan, and each
// plan counts the call on its own (site, rank) counter.
func TestScopedFallsThroughToGlobal(t *testing.T) {
	defer Disarm()
	g, err := Parse("stall@par.send:2:delay=1ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse("nan@esm.step:1", 2)
	if err != nil {
		t.Fatal(err)
	}
	Arm(g)
	ArmScoped("m05", m)
	defer DisarmScoped("m05")

	if f := PointScoped("m05", "par.send", 0); f != nil {
		t.Fatalf("first par.send call fired %+v, global plan wants hit 2", f)
	}
	f := PointScoped("m05", "par.send", 0)
	if f == nil || f.Kind != Stall {
		t.Fatalf("second par.send call got %+v, want the global stall", f)
	}
	if c := m.Counts(); c[Stall] != 0 {
		t.Fatalf("member plan recorded the global plan's firing: %v", c)
	}
	if c := g.Counts(); c[Stall] != 1 {
		t.Fatalf("global stall count = %v, want 1", c)
	}
}

// An empty registry must restore the single-load fast path.
func TestRegistryNormalizesToNil(t *testing.T) {
	p, err := Parse("nan@x:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	ArmScoped("tmp", p)
	Arm(p)
	Disarm()
	DisarmScoped("tmp")
	if s := armed.Load(); s != nil {
		t.Fatalf("empty registry left a non-nil snapshot: %+v", s)
	}
}

type lockedObs struct {
	mu sync.Mutex
	n  map[string]int64
}

func (o *lockedObs) AddCount(name string, d int64) {
	o.mu.Lock()
	if o.n == nil {
		o.n = make(map[string]int64)
	}
	o.n[name] += d
	o.mu.Unlock()
}

// SetMember emits the canonical labeled series next to the plain counter.
func TestMemberLabeledCounters(t *testing.T) {
	p, err := Parse("nan@esm.step:1", 3)
	if err != nil {
		t.Fatal(err)
	}
	ob := &lockedObs{}
	p.SetObserver(ob)
	p.SetMember("m07")
	if f := p.point("esm.step", 0); f == nil {
		t.Fatal("injection did not fire")
	}
	if ob.n["fault.injected.nan"] != 1 {
		t.Fatalf("plain counter = %d, want 1", ob.n["fault.injected.nan"])
	}
	if ob.n[`fault.injected.nan{member="m07"}`] != 1 {
		t.Fatalf("labeled counter missing: %v", ob.n)
	}
}

// The -race lap of the goroutine-safety satellite: many member worlds hammer
// one shared plan and their own scoped plans concurrently — Point hits, the
// seeded RNG behind Corrupt, Counts snapshots, and Arm/Disarm swaps all race
// against each other unless the plan's mutex and the registry snapshot hold.
func TestPlanConcurrentUse(t *testing.T) {
	defer Disarm()
	shared, err := New(11,
		Injection{Kind: Bitflip, Site: "pario.write", Hit: 3, Rank: AnyRank, Repeat: true},
		Injection{Kind: Stall, Site: "par.send", Hit: 5, Rank: AnyRank, Repeat: true, Delay: time.Microsecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	shared.SetObserver(&lockedObs{})
	shared.SetMember("fleet")
	Arm(shared)

	const workers = 8
	const iters = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scope := fmt.Sprintf("m%02d", w)
			own, err := New(int64(w), Injection{Kind: NaN, Site: "esm.step", Hit: 2, Rank: AnyRank, Repeat: true})
			if err != nil {
				t.Error(err)
				return
			}
			ArmScoped(scope, own)
			defer DisarmScoped(scope)
			buf := make([]byte, 64)
			for i := 0; i < iters; i++ {
				if f := PointScoped(scope, "pario.write", w); f != nil {
					f.Corrupt(buf)
				}
				if f := PointScoped(scope, "par.send", w); f != nil {
					f.Sleep()
				}
				PointScoped(scope, "esm.step", w)
				if i%64 == 0 {
					shared.Counts()
					own.Counts()
				}
			}
		}(w)
	}
	wg.Wait()
	got := shared.Counts()
	if got[Bitflip] == 0 || got[Stall] == 0 {
		t.Fatalf("shared plan never fired under concurrency: %v", got)
	}
}
