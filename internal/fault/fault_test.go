package fault

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	p, err := Parse("io-error@pario.write:2;nan@esm.step:17;stall@par.send:3:rank=1:delay=50ms;bitflip@pario.write:4:repeat", 7)
	if err != nil {
		t.Fatal(err)
	}
	inj := p.Injections()
	if len(inj) != 4 {
		t.Fatalf("parsed %d injections", len(inj))
	}
	want := map[string]Injection{
		"pario.write|io-error": {Kind: IOError, Site: "pario.write", Hit: 2, Rank: AnyRank},
		"esm.step|nan":         {Kind: NaN, Site: "esm.step", Hit: 17, Rank: AnyRank},
		"par.send|stall":       {Kind: Stall, Site: "par.send", Hit: 3, Rank: 1, Delay: 50 * time.Millisecond},
		"pario.write|bitflip":  {Kind: Bitflip, Site: "pario.write", Hit: 4, Rank: AnyRank, Repeat: true},
	}
	for _, in := range inj {
		w, ok := want[in.Site+"|"+string(in.Kind)]
		if !ok || in != w {
			t.Errorf("injection %+v, want %+v", in, w)
		}
	}
	if s := p.String(); !strings.Contains(s, "stall@par.send:3:rank=1:delay=50ms") {
		t.Errorf("String() = %q", s)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"io-error",                  // no site
		"io-error@pario.write",     // no hit
		"io-error@pario.write:x",   // bad hit
		"io-error@pario.write:0",   // hit < 1
		"explode@pario.write:1",    // unknown kind
		"nan@esm.step:1:color=red", // unknown option
		"stall@par.send:1:delay=z", // bad delay
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if p, err := Parse("  ", 1); err != nil || p != nil {
		t.Errorf("blank spec: plan %v err %v", p, err)
	}
}

func TestPointFiresOnceAtHit(t *testing.T) {
	p, err := New(1, Injection{Kind: IOError, Site: "s", Hit: 3, Rank: AnyRank})
	if err != nil {
		t.Fatal(err)
	}
	Arm(p)
	defer Disarm()
	for i := 1; i <= 6; i++ {
		f := Point("s", 0)
		if (i == 3) != (f != nil) {
			t.Errorf("call %d: fault %v", i, f)
		}
	}
	if Point("other", 0) != nil {
		t.Error("unrelated site fired")
	}
	if c := p.Counts(); c[IOError] != 1 {
		t.Errorf("counts %v", c)
	}
}

func TestPointPerRankCounters(t *testing.T) {
	p, _ := New(1, Injection{Kind: NaN, Site: "s", Hit: 2, Rank: AnyRank})
	Arm(p)
	defer Disarm()
	// Each rank has an independent hit sequence: both fire on their own
	// second call, regardless of interleaving.
	if Point("s", 0) != nil || Point("s", 1) != nil {
		t.Error("fired on first hit")
	}
	if Point("s", 0) == nil || Point("s", 1) == nil {
		t.Error("missed second hit")
	}
}

func TestRankRestriction(t *testing.T) {
	p, _ := New(1, Injection{Kind: Stall, Site: "s", Hit: 1, Rank: 2})
	Arm(p)
	defer Disarm()
	if Point("s", 0) != nil || Point("s", AnyRank) != nil {
		t.Error("rank-restricted injection fired elsewhere")
	}
	if Point("s", 2) == nil {
		t.Error("rank 2 injection missed")
	}
}

func TestRepeat(t *testing.T) {
	p, _ := New(1, Injection{Kind: IOError, Site: "s", Hit: 2, Rank: AnyRank, Repeat: true})
	Arm(p)
	defer Disarm()
	fired := 0
	for i := 0; i < 8; i++ {
		if Point("s", 0) != nil {
			fired++
		}
	}
	if fired != 4 {
		t.Errorf("repeat every 2nd of 8 calls fired %d times", fired)
	}
}

func TestCorruptDeterministic(t *testing.T) {
	mutate := func(seed int64, kind Kind) []byte {
		p, _ := New(seed, Injection{Kind: kind, Site: "s", Hit: 1, Rank: AnyRank})
		Arm(p)
		defer Disarm()
		buf := bytes.Repeat([]byte{0xAA}, 64)
		return Point("s", 0).Corrupt(buf)
	}
	a, b := mutate(42, Bitflip), mutate(42, Bitflip)
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different bitflips")
	}
	if bytes.Equal(a, bytes.Repeat([]byte{0xAA}, 64)) {
		t.Error("bitflip changed nothing")
	}
	ta, tb := mutate(7, Torn), mutate(7, Torn)
	if len(ta) != len(tb) {
		t.Error("same seed produced different tears")
	}
	if len(ta) >= 64 || len(ta) < 1 {
		t.Errorf("torn length %d", len(ta))
	}
}

func TestDisarmedPointIsNil(t *testing.T) {
	Disarm()
	if Point("anything", 0) != nil {
		t.Error("disarmed Point fired")
	}
}

type countObs struct{ got map[string]int64 }

func (c *countObs) AddCount(name string, d int64) { c.got[name] += d }

func TestObserverCounters(t *testing.T) {
	p, _ := New(1, Injection{Kind: NaN, Site: "s", Hit: 1, Rank: AnyRank})
	o := &countObs{got: make(map[string]int64)}
	p.SetObserver(o)
	Arm(p)
	defer Disarm()
	Point("s", 0)
	if o.got["fault.injected.nan"] != 1 {
		t.Errorf("observer counts %v", o.got)
	}
}
