// Package fault is the deterministic fault-injection subsystem behind the
// robustness story: at km-scale the paper's production runs hold ~100k
// heterogeneous nodes for days, so mean-time-between-failure is shorter than
// a run and the checkpoint/restart path (§5.2.5) must survive real failures.
// This package makes those failures reproducible at laptop scale.
//
// A Plan schedules seeded failures at named sites. Code under test calls
// Point(site, rank) at each site; when no plan is armed the hook costs one
// atomic load and a nil check, so production paths keep their shape. When a
// plan is armed, the Nth matching call at a site returns a Fault describing
// what to break:
//
//   - io-error — the operation must fail with Fault.Error()
//   - torn     — a write must persist only a prefix (Fault.Corrupt)
//   - bitflip  — one deterministically chosen bit flips (Fault.Corrupt)
//   - stall    — a message is lost in flight / a rank delays (Fault.Sleep)
//   - nan      — a NaN lands in a coupled prognostic field
//
// Plan spec grammar (the -faults flag):
//
//	SPEC  := entry (';' entry)*
//	entry := kind '@' site ':' hit (':' opt)*
//	opt   := 'rank=' INT | 'delay=' DURATION | 'repeat'
//
// e.g. "io-error@pario.write:2;nan@esm.step:17;stall@par.send:3:rank=1".
// hit is 1-based and counted per (site, rank), so multi-rank runs stay
// deterministic: each rank sees its own call sequence.
//
// Plans arm at two levels. Arm installs the process-global plan (the
// historical behaviour: ranks are goroutines in one process, so one plan
// serves the whole miniature machine). ArmScoped installs a plan for one
// named scope — an ensemble member world created with par.RunNamed — so
// concurrent members each carry their own injection schedule; sites inside
// a scoped world call PointScoped and consult the member's plan first, then
// the global one.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind names one failure mode.
type Kind string

// The supported failure modes.
const (
	IOError Kind = "io-error"
	Torn    Kind = "torn"
	Bitflip Kind = "bitflip"
	Stall   Kind = "stall"
	NaN     Kind = "nan"
)

// AnyRank matches every rank in an Injection, and is what sites that do not
// know their rank pass to Point (only rank-agnostic injections match there).
const AnyRank = -1

// Observer is the structural subset of obs.Observer this package emits
// counters through ("fault.injected.<kind>"), declared locally so fault
// stays a leaf package.
type Observer interface {
	AddCount(name string, delta int64)
}

// Injection schedules one failure at a named site.
type Injection struct {
	Kind  Kind
	Site  string
	Hit   int           // fire on the Hit-th matching Point call (1-based)
	Rank  int           // restrict to one rank; AnyRank matches all
	Delay time.Duration // stall duration (stall kind only)
	// Repeat refires on every Hit-th call instead of exactly once. One-shot
	// injections never refire after a rollback because hit counters are
	// monotonic across the whole process lifetime.
	Repeat bool
}

func (in Injection) validate() error {
	switch in.Kind {
	case IOError, Torn, Bitflip, Stall, NaN:
	default:
		return fmt.Errorf("fault: unknown kind %q", in.Kind)
	}
	if in.Site == "" {
		return fmt.Errorf("fault: injection without a site")
	}
	if in.Hit < 1 {
		return fmt.Errorf("fault: %s@%s: hit must be ≥ 1, got %d", in.Kind, in.Site, in.Hit)
	}
	return nil
}

// Plan is an armed schedule of injections plus the seeded RNG that makes
// corruption positions reproducible. All methods are safe for concurrent use
// by the rank goroutines — the RNG and the hit counters are guarded by one
// mutex, so many member worlds can drive their own plans (and even share a
// plan) inside one process without racing.
type Plan struct {
	Seed int64

	mu     sync.Mutex
	rng    *rand.Rand
	inj    []Injection
	hits   map[string]int // "site|rank" -> Point calls seen
	counts map[Kind]int
	obs    Observer
	member string // ensemble member label for the injected.* counters
}

// New builds a plan from explicit injections.
func New(seed int64, inj ...Injection) (*Plan, error) {
	for _, in := range inj {
		if err := in.validate(); err != nil {
			return nil, err
		}
	}
	return &Plan{
		Seed:   seed,
		rng:    rand.New(rand.NewSource(seed)),
		inj:    append([]Injection(nil), inj...),
		hits:   make(map[string]int),
		counts: make(map[Kind]int),
	}, nil
}

// Parse builds a plan from the spec grammar documented at the top of the
// package. An empty spec yields a nil plan (nothing to arm).
func Parse(spec string, seed int64) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var inj []Injection
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kind, rest, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("fault: entry %q: want kind@site:hit", entry)
		}
		parts := strings.Split(rest, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("fault: entry %q: missing hit count", entry)
		}
		hit, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("fault: entry %q: bad hit count: %v", entry, err)
		}
		in := Injection{Kind: Kind(kind), Site: parts[0], Hit: hit, Rank: AnyRank}
		for _, opt := range parts[2:] {
			switch {
			case strings.HasPrefix(opt, "rank="):
				r, err := strconv.Atoi(opt[len("rank="):])
				if err != nil {
					return nil, fmt.Errorf("fault: entry %q: bad rank: %v", entry, err)
				}
				in.Rank = r
			case strings.HasPrefix(opt, "delay="):
				d, err := time.ParseDuration(opt[len("delay="):])
				if err != nil {
					return nil, fmt.Errorf("fault: entry %q: bad delay: %v", entry, err)
				}
				in.Delay = d
			case opt == "repeat":
				in.Repeat = true
			default:
				return nil, fmt.Errorf("fault: entry %q: unknown option %q", entry, opt)
			}
		}
		if err := in.validate(); err != nil {
			return nil, err
		}
		inj = append(inj, in)
	}
	return New(seed, inj...)
}

// SetObserver forwards every injection as a "fault.injected.<kind>" counter.
func (p *Plan) SetObserver(o Observer) {
	p.mu.Lock()
	p.obs = o
	p.mu.Unlock()
}

// SetMember attributes the plan's injections to an ensemble member: every
// firing emits, next to the plain "fault.injected.<kind>" counter, the
// labeled series `fault.injected.<kind>{member="<name>"}` (the canonical
// obs.Labeled form, built locally so fault stays a leaf package), letting
// fleet telemetry attribute faults to members.
func (p *Plan) SetMember(name string) {
	p.mu.Lock()
	p.member = name
	p.mu.Unlock()
}

// Counts returns how many times each kind has fired so far.
func (p *Plan) Counts() map[Kind]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Kind]int, len(p.counts))
	for k, v := range p.counts {
		out[k] = v
	}
	return out
}

// Injections returns the scheduled injections (a copy).
func (p *Plan) Injections() []Injection { return append([]Injection(nil), p.inj...) }

// String renders the plan in the spec grammar, sorted for stable output.
func (p *Plan) String() string {
	entries := make([]string, 0, len(p.inj))
	for _, in := range p.inj {
		s := fmt.Sprintf("%s@%s:%d", in.Kind, in.Site, in.Hit)
		if in.Rank != AnyRank {
			s += fmt.Sprintf(":rank=%d", in.Rank)
		}
		if in.Delay > 0 {
			s += fmt.Sprintf(":delay=%s", in.Delay)
		}
		if in.Repeat {
			s += ":repeat"
		}
		entries = append(entries, s)
	}
	sort.Strings(entries)
	return strings.Join(entries, ";")
}

func (p *Plan) point(site string, rank int) *Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := site + "|" + strconv.Itoa(rank)
	p.hits[key]++
	n := p.hits[key]
	for _, in := range p.inj {
		if in.Site != site {
			continue
		}
		if in.Rank != AnyRank && in.Rank != rank {
			continue
		}
		if in.Repeat {
			if n%in.Hit != 0 {
				continue
			}
		} else if n != in.Hit {
			continue
		}
		p.counts[in.Kind]++
		if p.obs != nil {
			p.obs.AddCount("fault.injected."+string(in.Kind), 1)
			if p.member != "" {
				p.obs.AddCount("fault.injected."+string(in.Kind)+`{member="`+p.member+`"}`, 1)
			}
		}
		return &Fault{Kind: in.Kind, Site: site, Rank: rank, Delay: in.Delay, plan: p}
	}
	return nil
}

func (p *Plan) randInt(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Intn(n)
}

// armedSet is the immutable snapshot of every armed plan: the process-global
// plan (the historical Arm/Disarm pair) plus the scope-keyed plans the
// ensemble orchestrator arms per member world. Point loads one snapshot
// atomically, so the disarmed fast path stays a single load and a nil check
// while concurrent Arm/Disarm calls from member supervisors never race.
type armedSet struct {
	global *Plan
	scoped map[string]*Plan
}

var (
	armed atomic.Pointer[armedSet]
	armMu sync.Mutex // serializes read-modify-write swaps of the snapshot
)

// rearm publishes a new snapshot under armMu; an empty snapshot is stored as
// nil so the disarmed fast path keeps its shape.
func rearm(mut func(next *armedSet)) {
	armMu.Lock()
	defer armMu.Unlock()
	next := &armedSet{}
	if cur := armed.Load(); cur != nil {
		next.global = cur.global
		next.scoped = make(map[string]*Plan, len(cur.scoped))
		for k, v := range cur.scoped {
			next.scoped[k] = v
		}
	}
	mut(next)
	if next.global == nil && len(next.scoped) == 0 {
		armed.Store(nil)
		return
	}
	armed.Store(next)
}

// Arm makes p the active process-global plan: it matches every Point and
// PointScoped call in the process.
func Arm(p *Plan) { rearm(func(next *armedSet) { next.global = p }) }

// Disarm deactivates the process-global plan; scoped plans stay armed.
func Disarm() { rearm(func(next *armedSet) { next.global = nil }) }

// Armed returns the active process-global plan, or nil.
func Armed() *Plan {
	s := armed.Load()
	if s == nil {
		return nil
	}
	return s.global
}

// ArmScoped arms p for one scope — an ensemble member world, identified by
// the name its communicator was created with (par.RunNamed). Sites inside
// that world consult the scoped plan first and then the global plan, so
// per-member injection schedules coexist with a fleet-wide one. A nil p is
// equivalent to DisarmScoped.
func ArmScoped(scope string, p *Plan) {
	if scope == "" {
		Arm(p)
		return
	}
	rearm(func(next *armedSet) {
		if p == nil {
			delete(next.scoped, scope)
			return
		}
		if next.scoped == nil {
			next.scoped = make(map[string]*Plan, 1)
		}
		next.scoped[scope] = p
	})
}

// DisarmScoped withdraws the plan armed for one scope.
func DisarmScoped(scope string) {
	if scope == "" {
		Disarm()
		return
	}
	rearm(func(next *armedSet) { delete(next.scoped, scope) })
}

// ArmedScoped returns the plan armed for a scope, or nil.
func ArmedScoped(scope string) *Plan {
	s := armed.Load()
	if s == nil {
		return nil
	}
	return s.scoped[scope]
}

// Point is the injection hook compiled into fault sites that have no member
// scope: it reports the fault scheduled for this call, or nil. rank is the
// calling rank where known, AnyRank otherwise. With no plan armed this is
// one atomic load.
func Point(site string, rank int) *Fault {
	s := armed.Load()
	if s == nil || s.global == nil {
		return nil
	}
	return s.global.point(site, rank)
}

// PointScoped is the injection hook for sites that know which member world
// they run inside (scope "" means none — the plain Point behaviour). The
// scoped plan is consulted first; when it schedules nothing for this call
// the global plan is consulted next, so both see and count the call — each
// plan's hit counters advance independently, keeping per-member schedules
// deterministic regardless of what the fleet-wide plan does.
func PointScoped(scope, site string, rank int) *Fault {
	s := armed.Load()
	if s == nil {
		return nil
	}
	if scope != "" {
		if p := s.scoped[scope]; p != nil {
			if f := p.point(site, rank); f != nil {
				return f
			}
		}
	}
	if s.global == nil {
		return nil
	}
	return s.global.point(site, rank)
}

// Fault is one firing injection, handed to the site that must enact it.
type Fault struct {
	Kind  Kind
	Site  string
	Rank  int
	Delay time.Duration
	plan  *Plan
}

// Error returns the error an io-error site must fail with.
func (f *Fault) Error() error {
	return fmt.Errorf("fault: injected %s at %s (rank %d)", f.Kind, f.Site, f.Rank)
}

// Corrupt mutates an encoded buffer according to the fault kind: bitflip
// flips one seeded-random bit in place; torn returns a strict prefix
// (dropping at least one byte). Other kinds return buf unchanged.
func (f *Fault) Corrupt(buf []byte) []byte {
	switch f.Kind {
	case Bitflip:
		if len(buf) > 0 {
			i := f.plan.randInt(len(buf))
			buf[i] ^= 1 << f.plan.randInt(8)
		}
	case Torn:
		if len(buf) > 1 {
			return buf[:1+f.plan.randInt(len(buf)-1)]
		}
	}
	return buf
}

// Sleep blocks for the injection's delay (stall kind); no-op otherwise.
func (f *Fault) Sleep() {
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
}
