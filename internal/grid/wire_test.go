package grid

import (
	"math"
	"sync"
	"testing"

	"repro/internal/par"
)

// countingObs is a minimal HaloObserver recording per-name totals.
type countingObs struct {
	mu sync.Mutex
	m  map[string]int64
}

func newCountingObs() *countingObs { return &countingObs{m: map[string]int64{}} }

func (o *countingObs) AddCount(name string, d int64) {
	o.mu.Lock()
	o.m[name] += d
	o.mu.Unlock()
}

func (o *countingObs) get(name string) int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.m[name]
}

// gs32Budget is the per-value absolute error bound of the compressed wire
// for values of magnitude ≤ maxAbs: the group scale is at most 2·maxAbs and
// the quantization error one float32 ulp at the clamp bound, 2⁻²³ of the
// scale — so 2⁻²² of the group max.
func gs32Budget(maxAbs float64) float64 { return maxAbs * math.Pow(2, -22) }

// TestIcosExchangeGS32WithinBudget runs the cell and edge halo exchanges
// under both wire formats on identical fields and checks every extended
// value: f64 is bit-exact, gs32 lands within the group-scaled bit-error
// budget of the exact halo value.
func TestIcosExchangeGS32WithinBudget(t *testing.T) {
	m := icosMesh(t, 2)
	nc, ne := m.NCells(), m.NEdges()
	const nlev = 3
	cellVal := func(k, c int) float64 { return float64(k*10000+c) + 0.25 }
	edgeVal := func(k, e int) float64 { return -float64(k*10000+e) - 0.75 }
	for _, ranks := range []int{2, 4} {
		par.Run(ranks, func(c *par.Comm) {
			d, err := NewIcosDecomp(m, c)
			if err != nil {
				t.Errorf("NewIcosDecomp: %v", err)
				return
			}
			run := func(w par.WireFormat) ([]float64, []float64) {
				d.SetWire(w)
				fc := make([]float64, nlev*nc)
				fe := make([]float64, nlev*ne)
				for k := 0; k < nlev; k++ {
					for cell := d.C0; cell < d.C1; cell++ {
						fc[k*nc+cell] = cellVal(k, cell)
					}
					for _, e := range d.CompEdges {
						fe[k*ne+e] = edgeVal(k, e)
					}
				}
				d.ExchangeCells(fc, nlev)
				d.ExchangeEdges(fe, nlev)
				return fc, fe
			}
			fc64, fe64 := run(par.WireF64)
			fcGS, feGS := run(par.WireGS32)
			d.SetWire(par.WireF64)
			budget := gs32Budget(float64(nlev*10000 + ne))
			for k := 0; k < nlev; k++ {
				for _, cell := range d.ExtCells {
					if got, want := fc64[k*nc+cell], cellVal(k, cell); got != want {
						t.Errorf("f64 cell %d lev %d = %v, want %v", cell, k, got, want)
						return
					}
					if d := math.Abs(fcGS[k*nc+cell] - cellVal(k, cell)); d > budget {
						t.Errorf("gs32 cell %d lev %d off by %v, budget %v", cell, k, d, budget)
						return
					}
				}
				for _, e := range d.ExtEdges {
					if got, want := fe64[k*ne+e], edgeVal(k, e); got != want {
						t.Errorf("f64 edge %d lev %d = %v, want %v", e, k, got, want)
						return
					}
					if d := math.Abs(feGS[k*ne+e] - edgeVal(k, e)); d > budget {
						t.Errorf("gs32 edge %d lev %d off by %v, budget %v", e, k, d, budget)
						return
					}
				}
			}
		})
	}
}

// TestIcosExchangeGS32ZeroAllocs pins the compressed halo path to zero
// steady-state allocations, like the f64 variant: the persistent per-peer
// group-scaled encodings and the decode scratch must absorb every exchange
// once both parity sets are warm.
func TestIcosExchangeGS32ZeroAllocs(t *testing.T) {
	m := icosMesh(t, 2)
	nc, ne := m.NCells(), m.NEdges()
	const nlev, runs = 4, 20
	par.Run(2, func(c *par.Comm) {
		d, err := NewIcosDecomp(m, c)
		if err != nil {
			t.Errorf("NewIcosDecomp: %v", err)
			return
		}
		d.SetWire(par.WireGS32)
		fc := make([]float64, nlev*nc)
		fe := make([]float64, nlev*ne)
		step := func() {
			d.ExchangeCells(fc, nlev)
			d.ExchangeEdges(fe, nlev)
		}
		step()
		step()
		c.Barrier()
		if c.Rank() == 0 {
			avg := testing.AllocsPerRun(runs, step)
			if avg != 0 {
				t.Errorf("gs32 halo exchange allocates %v per call in steady state, want 0", avg)
			}
		} else {
			for i := 0; i < runs+1; i++ {
				step()
			}
		}
		c.Barrier()
	})
}

// TestTripolarGS32MatchesF64 runs a batched tripolar exchange — scalar,
// multi-level, and vec fields over a layout with south boundary, fold, and
// periodic x — under both wire formats and checks gs32 halos stay within the
// bit-error budget of the bit-exact f64 halos everywhere.
func TestTripolarGS32MatchesF64(t *testing.T) {
	g, err := NewTripolar(16, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	par.Run(4, func(c *par.Comm) {
		d, err := NewTripolarDecompLayout(g, c, 2, 2, 2)
		if err != nil {
			t.Error(err)
			return
		}
		const nlev = 2
		n2 := d.LNI() * d.LNJ()
		fill := func() (s1, sk, v []float64) {
			s1 = d.Alloc()
			sk = make([]float64, nlev*n2)
			v = d.Alloc()
			for lj := 0; lj < d.NJ; lj++ {
				for li := 0; li < d.NI; li++ {
					gi := d.GIdx(li, lj)
					s1[d.LIdx(li, lj)] = 1000 + float64(gi)
					v[d.LIdx(li, lj)] = -2000 - float64(gi)
					for k := 0; k < nlev; k++ {
						sk[k*n2+d.LIdx(li, lj)] = float64(k*100000+gi) + 0.5
					}
				}
			}
			return
		}
		run := func(w par.WireFormat) []HaloField {
			d.SetWire(w)
			s1, sk, v := fill()
			fields := []HaloField{
				{Data: s1, NLev: 1},
				{Data: sk, NLev: nlev},
				{Data: v, NLev: 1, Vec: true},
			}
			d.ExchangeFields(fields)
			return fields
		}
		f64 := run(par.WireF64)
		gs := run(par.WireGS32)
		d.SetWire(par.WireF64)
		budget := gs32Budget(2*100000 + float64(g.NX*g.NY))
		for fi := range f64 {
			a, b := f64[fi].Data, gs[fi].Data
			for i := range a {
				if diff := math.Abs(a[i] - b[i]); diff > budget {
					t.Errorf("rank %d field %d idx %d: gs32 %v vs f64 %v (|Δ| %v > %v)",
						c.Rank(), fi, i, b[i], a[i], diff, budget)
					return
				}
			}
		}
	})
}

// TestHaloAliasMatchesLabeled pins the deprecated cpl.atm.halo.* aliases to
// the labeled cpl.halo.*{component="atm"} counters under BOTH wire formats
// — the alias must report exactly what the canonical counter reports,
// compressed bytes included — and checks the wire accounting: actual wire
// bytes equal the halo bytes, raw bytes exceed them under gs32 by at least
// the 1.6× reduction the bench gates, and match them exactly under f64.
func TestHaloAliasMatchesLabeled(t *testing.T) {
	m := icosMesh(t, 2)
	nc := m.NCells()
	for _, w := range []par.WireFormat{par.WireF64, par.WireGS32} {
		par.Run(2, func(c *par.Comm) {
			d, err := NewIcosDecomp(m, c)
			if err != nil {
				t.Errorf("NewIcosDecomp: %v", err)
				return
			}
			ob := newCountingObs()
			d.SetObserver(ob)
			d.SetWire(w)
			fc := make([]float64, 3*nc)
			for i := range fc {
				fc[i] = float64(i) + 0.125
			}
			for i := 0; i < 4; i++ {
				d.ExchangeCells(fc, 3)
			}
			if got, want := ob.get("cpl.atm.halo.msgs"), ob.get(ctrHaloMsgsAtm); got != want || want == 0 {
				t.Errorf("wire=%v: alias msgs %d, labeled %d (want equal, nonzero)", w, got, want)
			}
			labeledBytes := ob.get(ctrHaloBytesAtm)
			if got := ob.get("cpl.atm.halo.bytes"); got != labeledBytes || labeledBytes == 0 {
				t.Errorf("wire=%v: alias bytes %d, labeled %d (want equal, nonzero)", w, got, labeledBytes)
			}
			raw, wire := ob.get("cpl.wire.raw.bytes"), ob.get("cpl.wire.bytes")
			if wire != labeledBytes {
				t.Errorf("wire=%v: cpl.wire.bytes %d != halo bytes %d", w, wire, labeledBytes)
			}
			switch w {
			case par.WireF64:
				if raw != wire {
					t.Errorf("f64: raw %d != wire %d", raw, wire)
				}
			case par.WireGS32:
				if float64(raw) < 1.6*float64(wire) {
					t.Errorf("gs32: raw %d / wire %d = %.2fx, want ≥ 1.6x", raw, wire, float64(raw)/float64(wire))
				}
			}
		})
	}
}

// TestTripolarWireCounters checks the ocean decomposition's wire accounting
// under gs32: halo bytes equal actual wire bytes and the raw/wire ratio
// clears the same 1.6× bar.
func TestTripolarWireCounters(t *testing.T) {
	g, err := NewTripolar(16, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	par.Run(4, func(c *par.Comm) {
		d, err := NewTripolarDecompLayout(g, c, 2, 2, 2)
		if err != nil {
			t.Error(err)
			return
		}
		ob := newCountingObs()
		d.SetObserver(ob)
		d.SetWire(par.WireGS32)
		f := d.Alloc()
		for i := range f {
			f[i] = float64(i)
		}
		for i := 0; i < 4; i++ {
			d.Exchange(f)
		}
		haloBytes := ob.get(ctrHaloBytesOcn)
		raw, wire := ob.get("cpl.wire.raw.bytes"), ob.get("cpl.wire.bytes")
		if wire != haloBytes || haloBytes == 0 {
			t.Errorf("cpl.wire.bytes %d != ocean halo bytes %d (want equal, nonzero)", wire, haloBytes)
		}
		if float64(raw) < 1.6*float64(wire) {
			t.Errorf("gs32 ocean: raw %d / wire %d = %.2fx, want ≥ 1.6x", raw, wire, float64(raw)/float64(wire))
		}
	})
}
