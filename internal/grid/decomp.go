package grid

import (
	"fmt"

	"repro/internal/par"
)

// Block is one rank's rectangular patch of a Tripolar grid, with halo
// storage. Local arrays are (NJ+2H) × (NI+2H), row-major, with the owned
// region at offset (H, H).
type Block struct {
	G      *Tripolar
	Cart   *par.Cart
	I0, J0 int // global origin of the owned region
	NI, NJ int // owned extents
	H      int // halo width
}

// NewBlock decomposes the grid over the cartesian communicator. NX must be
// divisible by the process columns and NY by the process rows (the
// production model pads; the reproduction keeps exact divisibility for
// clarity). The x direction is periodic; the y direction is closed at the
// south and folded at the north.
func NewBlock(g *Tripolar, ct *par.Cart, halo int) (*Block, error) {
	if g.NX%ct.NX != 0 || g.NY%ct.NY != 0 {
		return nil, fmt.Errorf("grid: %dx%d grid not divisible by %dx%d process layout", g.NX, g.NY, ct.NX, ct.NY)
	}
	if halo < 1 {
		return nil, fmt.Errorf("grid: halo width must be >= 1, got %d", halo)
	}
	ni := g.NX / ct.NX
	nj := g.NY / ct.NY
	if halo > ni || halo > nj {
		return nil, fmt.Errorf("grid: halo %d exceeds local block %dx%d", halo, ni, nj)
	}
	return &Block{
		G: g, Cart: ct,
		I0: ct.CX * ni, J0: ct.CY * nj,
		NI: ni, NJ: nj, H: halo,
	}, nil
}

// LNI and LNJ return the local array extents including halos.
func (b *Block) LNI() int { return b.NI + 2*b.H }

// LNJ returns the local row count including halos.
func (b *Block) LNJ() int { return b.NJ + 2*b.H }

// Alloc returns a zeroed local array (one level).
func (b *Block) Alloc() []float64 { return make([]float64, b.LNI()*b.LNJ()) }

// LIdx converts owned-region coordinates (li, lj) ∈ [0,NI)×[0,NJ) to the
// flat local index including the halo offset.
func (b *Block) LIdx(li, lj int) int { return (lj+b.H)*b.LNI() + li + b.H }

// GIdx converts owned-region coordinates to the flat global surface index.
func (b *Block) GIdx(li, lj int) int { return (b.J0+lj)*b.G.NX + b.I0 + li }

// AtNorthFold reports whether this block touches the folded northern row.
func (b *Block) AtNorthFold() bool { return b.J0+b.NJ == b.G.NY }

// AtSouth reports whether this block touches the closed southern boundary.
func (b *Block) AtSouth() bool { return b.J0 == 0 }

// foldPartnerRank is the rank owning the mirrored columns across the fold.
func (b *Block) foldPartnerRank() int {
	px := b.Cart.NX - 1 - b.Cart.CX
	return b.Cart.RankAt(px, b.Cart.CY)
}

// Halo exchange tags; offset by field tag to allow concurrent exchanges.
const (
	tagWest = 1000 + iota
	tagEast
	tagSouth
	tagNorth
	tagFold
)

// Exchange fills the halo of a local field: periodic in x, zero-gradient at
// the closed southern boundary, fold exchange at the tripolar northern
// boundary (ghost row j = NY is the top row mirrored in longitude). The
// corner halos are correct because the y exchange completes before the x
// exchange, so x messages carry already-filled y ghosts.
func (b *Block) Exchange(f []float64) { b.exchange(f, 1) }

// ExchangeVec is Exchange for velocity components. The cell-centred fold
// mirroring is misaligned by half a cell for staggered velocity fields, so
// the fold — which is already closed to mass flux in this reproduction — is
// treated as a free-slip wall: ghost rows above it take zero-gradient
// copies of the top owned row (after the sign-flipped exchange has filled
// the x halos consistently on every layout).
func (b *Block) ExchangeVec(f []float64) {
	b.exchange(f, -1)
	if b.AtNorthFold() {
		lni := b.LNI()
		src := f[(b.H+b.NJ-1)*lni : (b.H+b.NJ)*lni]
		for r := 0; r < b.H; r++ {
			copy(f[(b.H+b.NJ+r)*lni:(b.H+b.NJ+r+1)*lni], src)
		}
	}
}

func (b *Block) exchange(f []float64, foldSign float64) {
	lni, h := b.LNI(), b.H
	c := b.Cart.Comm

	// --- Y direction ---
	_, _, south, north := b.Cart.Neighbors()
	if south >= 0 {
		par.Send(c, south, tagSouth, b.rowSlab(f, h)) // my bottom owned rows
	}
	if north >= 0 {
		par.Send(c, north, tagNorth, b.rowSlab(f, b.NJ)) // my top owned rows
	}
	foldLocal := false
	if b.AtNorthFold() {
		// Top ghost rows come from the mirrored block across the fold.
		if partner := b.foldPartnerRank(); partner == c.Rank() {
			// The mirrored block is this one: fill the fold ghosts directly,
			// allocation-free. Ghost row (NJ+r) takes the own owned row
			// (NJ-1-r), columns mirrored; source rows (< h+NJ) and
			// destination rows (>= h+NJ) never overlap.
			foldLocal = true
			for r := 0; r < h; r++ {
				src := f[(b.NJ+h-1-r)*lni : (b.NJ+h-r)*lni]
				dst := f[(h+b.NJ+r)*lni : (h+b.NJ+r+1)*lni]
				for li := 0; li < b.NI; li++ {
					dst[h+li] = foldSign * src[h+b.NI-1-li]
				}
			}
		} else {
			par.Send(c, partner, tagFold, b.rowSlab(f, b.NJ))
		}
	}
	if south >= 0 {
		data, _ := par.Recv[[]float64](c, south, tagNorth)
		b.putRowSlab(f, 0, data)
	} else {
		// Closed south: zero-gradient.
		for r := 0; r < h; r++ {
			copy(f[r*lni:(r+1)*lni], f[h*lni:(h+1)*lni])
		}
	}
	if north >= 0 {
		data, _ := par.Recv[[]float64](c, north, tagSouth)
		b.putRowSlab(f, h+b.NJ, data)
	} else if b.AtNorthFold() && !foldLocal {
		partner := b.foldPartnerRank()
		data, _ := par.Recv[[]float64](c, partner, tagFold)
		// The fold reverses longitude and row order: ghost row (NJ+r) takes
		// the partner's owned row (NJ-1-r), columns mirrored.
		for r := 0; r < h; r++ {
			src := data[(h-1-r)*lni : (h-r)*lni]
			dst := f[(h+b.NJ+r)*lni : (h+b.NJ+r+1)*lni]
			// Mirror only the owned columns; x halos are filled afterwards.
			for li := 0; li < b.NI; li++ {
				dst[h+li] = foldSign * src[h+b.NI-1-li]
			}
		}
	}

	// --- X direction (periodic), carries the corner ghosts ---
	west, east, _, _ := b.Cart.Neighbors()
	if b.Cart.NX == 1 {
		// Periodic wrap within the single block, row by row without staging
		// buffers: west ghosts take the east owned columns, east ghosts the
		// west owned columns (disjoint ranges for any h <= NI).
		lnj := b.LNJ()
		for j := 0; j < lnj; j++ {
			row := f[j*lni : (j+1)*lni]
			copy(row[:h], row[b.NI:b.NI+h])
			copy(row[h+b.NI:], row[h:2*h])
		}
	} else {
		par.Send(c, west, tagWest, b.colSlab(f, h))
		par.Send(c, east, tagEast, b.colSlab(f, b.NI))
		dataE, _ := par.Recv[[]float64](c, east, tagWest)
		b.putColSlab(f, h+b.NI, dataE)
		dataW, _ := par.Recv[[]float64](c, west, tagEast)
		b.putColSlab(f, 0, dataW)
	}
}

// rowSlab copies h rows of f starting at local row j0 into a fresh message
// buffer; putRowSlab writes such a buffer back at row j0. They are methods
// rather than closures so the all-local exchange paths allocate nothing.
func (b *Block) rowSlab(f []float64, j0 int) []float64 {
	lni, h := b.LNI(), b.H
	out := make([]float64, h*lni)
	for r := 0; r < h; r++ {
		copy(out[r*lni:(r+1)*lni], f[(j0+r)*lni:(j0+r+1)*lni])
	}
	return out
}

func (b *Block) putRowSlab(f []float64, j0 int, data []float64) {
	lni, h := b.LNI(), b.H
	for r := 0; r < h; r++ {
		copy(f[(j0+r)*lni:(j0+r+1)*lni], data[r*lni:(r+1)*lni])
	}
}

// colSlab copies h columns of f starting at local column i0 into a fresh
// message buffer; putColSlab writes such a buffer back at column i0.
func (b *Block) colSlab(f []float64, i0 int) []float64 {
	lni, lnj, h := b.LNI(), b.LNJ(), b.H
	out := make([]float64, h*lnj)
	for j := 0; j < lnj; j++ {
		for r := 0; r < h; r++ {
			out[j*h+r] = f[j*lni+i0+r]
		}
	}
	return out
}

func (b *Block) putColSlab(f []float64, i0 int, data []float64) {
	lni, lnj, h := b.LNI(), b.LNJ(), b.H
	for j := 0; j < lnj; j++ {
		for r := 0; r < h; r++ {
			f[j*lni+i0+r] = data[j*h+r]
		}
	}
}

// GatherGlobal assembles the owned regions of a local field from all ranks
// into a global NY×NX array on rank 0 (nil elsewhere).
func (b *Block) GatherGlobal(f []float64) []float64 {
	type patch struct {
		I0, J0, NI, NJ int
		Data           []float64
	}
	own := make([]float64, b.NI*b.NJ)
	for lj := 0; lj < b.NJ; lj++ {
		for li := 0; li < b.NI; li++ {
			own[lj*b.NI+li] = f[b.LIdx(li, lj)]
		}
	}
	patches := par.Gather(b.Cart.Comm, 0, patch{b.I0, b.J0, b.NI, b.NJ, own})
	if b.Cart.Comm.Rank() != 0 {
		return nil
	}
	out := make([]float64, b.G.NX*b.G.NY)
	for _, p := range patches {
		for lj := 0; lj < p.NJ; lj++ {
			copy(out[(p.J0+lj)*b.G.NX+p.I0:(p.J0+lj)*b.G.NX+p.I0+p.NI],
				p.Data[lj*p.NI:(lj+1)*p.NI])
		}
	}
	return out
}
