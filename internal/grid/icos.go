package grid

import (
	"fmt"
	"math"
	"sort"
)

// IcosMesh is a spherical centroidal mesh built by recursive bisection of
// the icosahedron, in the cell/edge/vertex layout of the GRIST atmosphere
// model (and of MPAS-style C-grid models generally):
//
//   - Cells are the (hexagonal, plus twelve pentagonal) Voronoi regions
//     around the triangulation nodes; scalar prognostics (mass, temperature,
//     tracers) live at cell centers.
//   - Edges connect adjacent cell centers; the normal velocity component
//     lives at edge midpoints.
//   - Vertices are the triangle circumcenters (the dual mesh nodes);
//     vorticity lives at vertices.
//
// Element counts at refinement level l are Cells = 10·4^l + 2,
// Edges = 30·4^l, Vertices = 20·4^l, the closed forms that regenerate the
// atmosphere columns of Table 1.
type IcosMesh struct {
	Level int

	// Geometry (unit sphere).
	CellCenter   []Vec3    // [nCells]
	VertexPos    []Vec3    // [nVertices] triangle circumcenters
	EdgeMidpoint []Vec3    // [nEdges]
	AreaCell     []float64 // [nCells] steradians; sums to 4π
	AreaDual     []float64 // [nVertices] spherical triangle areas; sums to 4π
	Dc           []float64 // [nEdges] arc distance between the two cell centers
	Dv           []float64 // [nEdges] arc distance between the two vertices
	LatCell      []float64 // [nCells]
	LonCell      []float64 // [nCells]

	// Topology.
	CellsOnEdge    [][2]int // [nEdges] the two cells an edge separates
	VerticesOnEdge [][2]int // [nEdges] the two dual nodes an edge connects
	EdgesOnCell    [][]int  // [nCells] 5 or 6 edges, counterclockwise
	EdgeSignOnCell [][]int  // +1 if the edge normal points out of the cell
	CellsOnCell    [][]int  // [nCells] neighbouring cells across EdgesOnCell
	EdgesOnVertex  [][3]int // [nVertices] the three edges meeting at a vertex
	EdgeSignOnVtx  [][3]int // +1 if the edge's (v1→v2) tangent circulates ccw
	CellsOnVertex  [][3]int // [nVertices] corner cells of the dual triangle
}

// NCells returns the number of primal cells.
func (m *IcosMesh) NCells() int { return len(m.CellCenter) }

// NEdges returns the number of edges.
func (m *IcosMesh) NEdges() int { return len(m.CellsOnEdge) }

// NVertices returns the number of dual (triangle) nodes.
func (m *IcosMesh) NVertices() int { return len(m.VertexPos) }

// IcosCounts returns the closed-form element counts for refinement level l.
func IcosCounts(level int) (cells, edges, vertices int64) {
	p := int64(1) << uint(2*level) // 4^level
	return 10*p + 2, 30 * p, 20 * p
}

// icosahedron returns the 12 nodes and 20 faces of the unit icosahedron.
func icosahedron() ([]Vec3, [][3]int) {
	phi := (1 + math.Sqrt(5)) / 2
	raw := []Vec3{
		{-1, phi, 0}, {1, phi, 0}, {-1, -phi, 0}, {1, -phi, 0},
		{0, -1, phi}, {0, 1, phi}, {0, -1, -phi}, {0, 1, -phi},
		{phi, 0, -1}, {phi, 0, 1}, {-phi, 0, -1}, {-phi, 0, 1},
	}
	verts := make([]Vec3, len(raw))
	for i, v := range raw {
		verts[i] = v.Normalize()
	}
	faces := [][3]int{
		{0, 11, 5}, {0, 5, 1}, {0, 1, 7}, {0, 7, 10}, {0, 10, 11},
		{1, 5, 9}, {5, 11, 4}, {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
		{3, 9, 4}, {3, 4, 2}, {3, 2, 6}, {3, 6, 8}, {3, 8, 9},
		{4, 9, 5}, {2, 4, 11}, {6, 2, 10}, {8, 6, 7}, {9, 8, 1},
	}
	return verts, faces
}

// NewIcosMesh builds the mesh at the given refinement level. Level 0 is the
// raw icosahedron (12 cells); each level quadruples the triangle count.
// Levels above 7 (163 842 cells) are rejected to avoid accidental huge
// allocations; use IcosCounts for the paper-scale configurations.
func NewIcosMesh(level int) (*IcosMesh, error) {
	if level < 0 || level > 7 {
		return nil, fmt.Errorf("grid: icosahedral level %d out of buildable range [0,7]", level)
	}
	nodes, tris := icosahedron()
	for l := 0; l < level; l++ {
		nodes, tris = subdivide(nodes, tris)
	}
	return assemble(level, nodes, tris), nil
}

// subdivide splits each triangle into four, deduplicating edge midpoints.
func subdivide(nodes []Vec3, tris [][3]int) ([]Vec3, [][3]int) {
	type key struct{ a, b int }
	mid := make(map[key]int, len(tris)*3/2)
	midpoint := func(a, b int) int {
		k := key{a, b}
		if a > b {
			k = key{b, a}
		}
		if id, ok := mid[k]; ok {
			return id
		}
		p := nodes[a].Add(nodes[b]).Normalize()
		nodes = append(nodes, p)
		id := len(nodes) - 1
		mid[k] = id
		return id
	}
	out := make([][3]int, 0, len(tris)*4)
	for _, t := range tris {
		ab := midpoint(t[0], t[1])
		bc := midpoint(t[1], t[2])
		ca := midpoint(t[2], t[0])
		out = append(out,
			[3]int{t[0], ab, ca},
			[3]int{t[1], bc, ab},
			[3]int{t[2], ca, bc},
			[3]int{ab, bc, ca},
		)
	}
	return nodes, out
}

// assemble derives the full topology and geometry from nodes and triangles.
func assemble(level int, nodes []Vec3, tris [][3]int) *IcosMesh {
	nCells := len(nodes)
	nVerts := len(tris)

	m := &IcosMesh{
		Level:      level,
		CellCenter: nodes,
		VertexPos:  make([]Vec3, nVerts),
		AreaDual:   make([]float64, nVerts),
		AreaCell:   make([]float64, nCells),
		LatCell:    make([]float64, nCells),
		LonCell:    make([]float64, nCells),
	}

	// Dual nodes: triangle circumcenters and areas. Cell areas by the
	// barycentric split (one third of each incident triangle), which
	// conserves total sphere area exactly.
	for t, tri := range tris {
		a, b, c := nodes[tri[0]], nodes[tri[1]], nodes[tri[2]]
		m.VertexPos[t] = Circumcenter(a, b, c)
		area := SphericalTriangleArea(a, b, c)
		m.AreaDual[t] = area
		for _, n := range tri {
			m.AreaCell[n] += area / 3
		}
	}
	for c := range nodes {
		m.LonCell[c], m.LatCell[c] = lonlatOf(nodes[c])
	}

	// Edges: deduplicate triangle sides. Each edge records the two cells it
	// separates and the two triangles (dual nodes) it connects.
	type ekey struct{ a, b int }
	edgeID := make(map[ekey]int, 3*nVerts/2)
	var cellsOnEdge [][2]int
	var trisOnEdge [][2]int
	for t, tri := range tris {
		for s := 0; s < 3; s++ {
			a, b := tri[s], tri[(s+1)%3]
			k := ekey{a, b}
			if a > b {
				k = ekey{b, a}
			}
			if id, ok := edgeID[k]; ok {
				trisOnEdge[id][1] = t
			} else {
				edgeID[k] = len(cellsOnEdge)
				cellsOnEdge = append(cellsOnEdge, [2]int{k.a, k.b})
				trisOnEdge = append(trisOnEdge, [2]int{t, -1})
			}
		}
	}
	nEdges := len(cellsOnEdge)
	m.CellsOnEdge = cellsOnEdge
	m.VerticesOnEdge = make([][2]int, nEdges)
	m.EdgeMidpoint = make([]Vec3, nEdges)
	m.Dc = make([]float64, nEdges)
	m.Dv = make([]float64, nEdges)

	for e := range cellsOnEdge {
		c1, c2 := cellsOnEdge[e][0], cellsOnEdge[e][1]
		t1, t2 := trisOnEdge[e][0], trisOnEdge[e][1]
		// Orient (v1, v2) so that v1→v2 is 90° counterclockwise from c1→c2
		// (the standard C-grid convention: positive normal from c1 to c2).
		nrm := nodes[c2].Sub(nodes[c1])
		tan := m.VertexPos[t2].Sub(m.VertexPos[t1])
		mid := nodes[c1].Add(nodes[c2]).Normalize()
		if mid.Cross(nrm).Dot(tan) < 0 {
			t1, t2 = t2, t1
		}
		m.VerticesOnEdge[e] = [2]int{t1, t2}
		m.EdgeMidpoint[e] = mid
		m.Dc[e] = GreatCircleDist(nodes[c1], nodes[c2])
		m.Dv[e] = GreatCircleDist(m.VertexPos[t1], m.VertexPos[t2])
	}

	// Cell -> edges with outward signs, and neighbouring cells.
	m.EdgesOnCell = make([][]int, nCells)
	m.EdgeSignOnCell = make([][]int, nCells)
	m.CellsOnCell = make([][]int, nCells)
	for e, ce := range cellsOnEdge {
		c1, c2 := ce[0], ce[1]
		m.EdgesOnCell[c1] = append(m.EdgesOnCell[c1], e)
		m.EdgeSignOnCell[c1] = append(m.EdgeSignOnCell[c1], +1) // normal c1→c2 is outward for c1
		m.CellsOnCell[c1] = append(m.CellsOnCell[c1], c2)
		m.EdgesOnCell[c2] = append(m.EdgesOnCell[c2], e)
		m.EdgeSignOnCell[c2] = append(m.EdgeSignOnCell[c2], -1)
		m.CellsOnCell[c2] = append(m.CellsOnCell[c2], c1)
	}
	// Deterministic ordering of the edge lists.
	for c := range m.EdgesOnCell {
		idx := make([]int, len(m.EdgesOnCell[c]))
		for i := range idx {
			idx[i] = i
		}
		ec, sc, cc := m.EdgesOnCell[c], m.EdgeSignOnCell[c], m.CellsOnCell[c]
		sort.Slice(idx, func(i, j int) bool { return ec[idx[i]] < ec[idx[j]] })
		ne := make([]int, len(idx))
		ns := make([]int, len(idx))
		nc := make([]int, len(idx))
		for i, k := range idx {
			ne[i], ns[i], nc[i] = ec[k], sc[k], cc[k]
		}
		m.EdgesOnCell[c], m.EdgeSignOnCell[c], m.CellsOnCell[c] = ne, ns, nc
	}

	// Vertex -> edges with circulation signs, and corner cells. The sign is
	// +1 when the edge-normal direction (c1 → c2) advances counterclockwise
	// around the vertex as seen from outside the sphere, so that summing
	// sign·u_e·dc_e around the dual triangle is the discrete circulation.
	m.EdgesOnVertex = make([][3]int, nVerts)
	m.EdgeSignOnVtx = make([][3]int, nVerts)
	m.CellsOnVertex = make([][3]int, nVerts)
	fill := make([]int, nVerts)
	for e := range cellsOnEdge {
		c1, c2 := cellsOnEdge[e][0], cellsOnEdge[e][1]
		dir := nodes[c2].Sub(nodes[c1])
		for _, v := range m.VerticesOnEdge[e] {
			p := m.VertexPos[v]
			ccw := p.Cross(m.EdgeMidpoint[e].Sub(p))
			sign := +1
			if dir.Dot(ccw) < 0 {
				sign = -1
			}
			m.EdgesOnVertex[v][fill[v]] = e
			m.EdgeSignOnVtx[v][fill[v]] = sign
			fill[v]++
		}
	}
	for t, tri := range tris {
		m.CellsOnVertex[t] = tri
	}
	return m
}

func lonlatOf(v Vec3) (lon, lat float64) { return lonLatPair(v) }

func lonLatPair(v Vec3) (lon, lat float64) {
	lon, lat = LonLat(v)
	return
}

// MeanCellSpacingKm returns the mean distance between adjacent cell centers
// in kilometres, the conventional "resolution" of the mesh.
func (m *IcosMesh) MeanCellSpacingKm() float64 {
	if len(m.Dc) == 0 {
		return 0
	}
	var sum float64
	for _, d := range m.Dc {
		sum += d
	}
	return sum / float64(len(m.Dc)) * EarthRadius / 1000
}

// GristLevelForRes maps the paper's nominal atmosphere resolutions (km) to
// icosahedral refinement levels, matching the element counts in Table 1.
var GristLevelForRes = map[int]int{
	25: 8,
	10: 9,
	6:  10,
	3:  11,
	1:  12,
}
