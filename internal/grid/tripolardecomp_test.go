package grid

import (
	"testing"

	"repro/internal/par"
)

// tripolarWithDryBlock builds a tripolar grid and dries out one whole block
// of the pbx×pby layout, so land-block elimination has something to drop.
func tripolarWithDryBlock(t *testing.T, nx, ny, nl, pbx, pby, bx, by int) *Tripolar {
	t.Helper()
	g, err := NewTripolar(nx, ny, nl)
	if err != nil {
		t.Fatal(err)
	}
	bni, bnj := nx/pbx, ny/pby
	for j := by * bnj; j < (by+1)*bnj; j++ {
		for i := bx * bni; i < (bx+1)*bni; i++ {
			gi := j*nx + i
			g.Mask[gi] = false
			g.KMT[gi] = 0
			g.Depth[gi] = 0
		}
	}
	return g
}

// The partition contract: the owned ranges of all ranks are disjoint and
// together cover exactly the cells of the wet blocks; Owner agrees with the
// ranges; elimination never drops a wet cell; and DryBlocks accounts for
// every unowned cell.
func TestTripolarPartitionProperties(t *testing.T) {
	g := tripolarWithDryBlock(t, 24, 12, 4, 2, 2, 0, 0)
	par.Run(3, func(c *par.Comm) {
		d, err := NewTripolarDecompLayout(g, c, 2, 2, 1)
		if err != nil {
			t.Error(err)
			return
		}
		n := g.NX * g.NY
		mine := make([]float64, n)
		for _, r := range d.OwnedRanges() {
			for k := 0; k < r[1]; k++ {
				gi := r[0] + k
				if d.Owner(gi) != c.Rank() {
					t.Errorf("owned index %d reports Owner %d, not this rank %d", gi, d.Owner(gi), c.Rank())
				}
				if !d.InExt(gi) {
					t.Errorf("owned index %d not in the extended region", gi)
				}
				mine[gi]++
			}
		}
		owners := c.AllreduceSlice(mine, par.OpSum)
		var unowned int
		for gi, cnt := range owners {
			switch {
			case cnt == 0:
				if g.KMT[gi] > 0 {
					t.Fatalf("wet cell %d dropped by land-block elimination", gi)
				}
				if pe := d.Owner(gi); pe != -1 {
					t.Fatalf("unowned cell %d reports owner %d", gi, pe)
				}
				unowned++
			case cnt == 1:
				if pe := d.Owner(gi); pe < 0 || pe >= c.Size() {
					t.Fatalf("cell %d owner %d out of range", gi, pe)
				}
			default:
				t.Fatalf("cell %d owned by %v ranks", gi, cnt)
			}
		}
		// DryBlocks covers exactly the unowned cells.
		dry := 0
		for _, db := range d.DryBlocks() {
			dry += db.NI * db.NJ
			for lj := 0; lj < db.NJ; lj++ {
				for li := 0; li < db.NI; li++ {
					if owners[(db.J0+lj)*g.NX+db.I0+li] != 0 {
						t.Fatalf("dry-block cell (%d,%d) is owned", db.I0+li, db.J0+lj)
					}
				}
			}
		}
		if dry != unowned {
			t.Errorf("DryBlocks covers %d cells, but %d are unowned", dry, unowned)
		}
	})
}

// The automatic layout search must also never drop a wet cell and must
// produce one wet block per rank.
func TestTripolarLayoutSearchElimination(t *testing.T) {
	g := tripolarWithDryBlock(t, 24, 12, 4, 2, 2, 0, 0)
	par.Run(3, func(c *par.Comm) {
		d, err := NewTripolarDecomp(g, c, 1)
		if err != nil {
			t.Error(err)
			return
		}
		for gi := 0; gi < g.NX*g.NY; gi++ {
			if g.KMT[gi] > 0 && d.Owner(gi) < 0 {
				t.Fatalf("wet cell %d unowned under the searched %dx%d layout", gi, d.PBX, d.PBY)
			}
		}
	})
}

// The pole-fold halo: the ghost row above the folded boundary carries the
// mirrored top row of the partner block — ghost (i, NY) equals owned
// (NX-1-i, NY-1) — and the x-phase carries the fold values into the corner
// ghosts. The south boundary is zero-gradient and x is periodic.
func TestTripolarFoldHaloSymmetry(t *testing.T) {
	g, err := NewTripolar(16, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	enc := func(gi int) float64 { return float64(gi + 1) }
	par.Run(2, func(c *par.Comm) {
		d, err := NewTripolarDecompLayout(g, c, 2, 1, 1)
		if err != nil {
			t.Error(err)
			return
		}
		lni, h := d.LNI(), d.H
		f := d.Alloc()
		for i := range f {
			f[i] = -999 // sentinel: every checked ghost must be overwritten
		}
		for lj := 0; lj < d.NJ; lj++ {
			for li := 0; li < d.NI; li++ {
				f[d.LIdx(li, lj)] = enc(d.GIdx(li, lj))
			}
		}
		d.Exchange(f)

		if !d.AtNorthFold() {
			t.Fatal("2x1 layout block misses the fold")
		}
		// Fold ghosts over the owned columns.
		for li := 0; li < d.NI; li++ {
			got := f[(h+d.NJ)*lni+h+li]
			want := enc((g.NY-1)*g.NX + (g.NX - 1 - (d.I0 + li)))
			if got != want {
				t.Fatalf("fold ghost at li=%d: got %v, want %v", li, got, want)
			}
		}
		// Fold corner ghosts arrive via the full-height x-phase: the west
		// ghost of the fold row mirrors the west neighbour's eastmost column.
		wCol := (d.I0 - 1 + g.NX) % g.NX
		if got, want := f[(h+d.NJ)*lni], enc((g.NY-1)*g.NX+(g.NX-1-wCol)); got != want {
			t.Fatalf("fold west corner: got %v, want %v", got, want)
		}
		// South boundary: zero-gradient copy of the first owned row.
		for li := 0; li < d.NI; li++ {
			if f[0*lni+h+li] != f[h*lni+h+li] {
				t.Fatalf("south ghost at li=%d not zero-gradient", li)
			}
		}
		// Periodic x ghosts across the rank boundary.
		for lj := 0; lj < d.NJ; lj++ {
			jg := d.J0 + lj
			if got, want := f[(h+lj)*lni], enc(jg*g.NX+wCol); got != want {
				t.Fatalf("west ghost at lj=%d: got %v, want %v", lj, got, want)
			}
			eCol := (d.I0 + d.NI) % g.NX
			if got, want := f[(h+lj)*lni+h+d.NI], enc(jg*g.NX+eCol); got != want {
				t.Fatalf("east ghost at lj=%d: got %v, want %v", lj, got, want)
			}
		}

		// Velocity fields see the fold as a free-slip wall: the ghost rows
		// duplicate the top owned row across the full local width.
		v := d.Alloc()
		for lj := 0; lj < d.NJ; lj++ {
			for li := 0; li < d.NI; li++ {
				v[d.LIdx(li, lj)] = enc(d.GIdx(li, lj))
			}
		}
		d.ExchangeVec(v)
		for x := 0; x < lni; x++ {
			if v[(h+d.NJ)*lni+x] != v[(h+d.NJ-1)*lni+x] {
				t.Fatalf("vec fold ghost at x=%d not free-slip", x)
			}
		}
	})
}

// Halos facing an eliminated block are zero — exact, because ocean and ice
// fields are identically zero over land.
func TestTripolarEliminatedNeighborZeroHalos(t *testing.T) {
	g := tripolarWithDryBlock(t, 24, 12, 4, 2, 2, 0, 0)
	par.Run(3, func(c *par.Comm) {
		d, err := NewTripolarDecompLayout(g, c, 2, 2, 1)
		if err != nil {
			t.Error(err)
			return
		}
		lni, h := d.LNI(), d.H
		f := d.Alloc()
		for i := range f {
			f[i] = 7
		}
		d.Exchange(f)
		switch {
		case d.I0 == 0 && d.J0 > 0:
			// Block (0,1): its south neighbour is the dry block.
			for li := 0; li < d.NI; li++ {
				if f[0*lni+h+li] != 0 {
					t.Fatalf("south ghost toward the dry block is %v, want 0", f[h+li])
				}
			}
		case d.I0 > 0 && d.J0 == 0:
			// Block (1,0): both x neighbours wrap onto the dry block.
			for lj := 0; lj < d.NJ; lj++ {
				if f[(h+lj)*lni] != 0 || f[(h+lj)*lni+h+d.NI] != 0 {
					t.Fatalf("x ghosts toward the dry block not zeroed at lj=%d", lj)
				}
			}
		}
	})
}

// TestTripolarExchangeZeroAllocs pins the batched halo exchange hot path to
// zero steady-state allocations at 2 ranks — the real multi-rank path
// through par.SendF64/RecvF64, not a replicated short-circuit. AllocsPerRun
// measures global mallocs, so the peer's matching exchanges must be
// allocation-free too; it runs exactly runs+1 of them (AllocsPerRun's
// warm-up call plus runs measured calls).
func TestTripolarExchangeZeroAllocs(t *testing.T) {
	g, err := NewTripolar(16, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	const nlev, runs = 3, 20
	par.Run(2, func(c *par.Comm) {
		d, err := NewTripolarDecompLayout(g, c, 2, 1, 1)
		if err != nil {
			t.Error(err)
			return
		}
		n2 := d.LNI() * d.LNJ()
		fields := []HaloField{
			{Data: make([]float64, nlev*n2), NLev: nlev},
			{Data: make([]float64, nlev*n2), NLev: nlev, Vec: true},
			{Data: make([]float64, n2), NLev: 1},
		}
		step := func() { d.ExchangeFields(fields) }
		// Warm both parity buffer sets.
		step()
		step()
		c.Barrier()
		if c.Rank() == 0 {
			if avg := testing.AllocsPerRun(runs, step); avg != 0 {
				t.Errorf("halo exchange allocates %v per call in steady state, want 0", avg)
			}
		} else {
			for i := 0; i < runs+1; i++ {
				step()
			}
		}
		c.Barrier()
	})
}
