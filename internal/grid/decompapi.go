package grid

import "repro/internal/par"

// Decomp is the decomposition contract shared by every component grid: the
// icosahedral atmosphere mesh (IcosDecomp) and the tripolar ocean/sea-ice
// grid (TripolarDecomp) both implement it, so the coupler, budget audit,
// restart, and snapshot paths in core can be written once against ownership
// queries and owned ranges instead of special-casing one component's
// concrete decomposition.
//
// A decomposition partitions a global index space (mesh cells, or grid
// columns) over the ranks of a communicator. Every global element is owned
// by at most one rank; elements owned by no rank (Owner == -1) are
// land-eliminated — the paper's non-ocean-point exclusion applied to the
// partition itself — and carry identically-zero field values.
type Decomp interface {
	// Comm returns the communicator the decomposition spans.
	Comm() *par.Comm

	// NGlobal returns the global number of decomposed elements.
	NGlobal() int

	// Owner returns the rank owning global element gi, or -1 when the
	// element is assigned to no rank (a land-eliminated block).
	Owner(gi int) int

	// InExt reports whether gi lies in this rank's extended
	// (owned + halo) region.
	InExt(gi int) bool

	// OwnedRanges returns this rank's owned global indices as
	// {start, length} runs, ascending and non-overlapping. The slice is
	// cached by the decomposition; callers must not mutate it.
	OwnedRanges() [][2]int

	// ExchangeCells fills the halo of an nlev-level field held in the
	// decomposition's local storage layout (global-length per level for
	// the mesh decomposition, halo-padded block per level for the
	// tripolar one).
	ExchangeCells(f []float64, nlev int)

	// Gather assembles one level of a local field into the full global
	// array on rank 0 (nil on the other ranks; a replicated
	// decomposition may return it everywhere). Collective.
	Gather(f []float64) []float64

	// SetObserver attaches the halo traffic counters
	// (cpl.halo.{msgs,bytes} with a component label).
	SetObserver(o HaloObserver)

	// SetWire selects the halo wire format: par.WireF64 (default) ships
	// raw float64 payloads bit-exactly, par.WireGS32 ships group-scaled
	// FP32 encodings. Every rank must select the same format.
	SetWire(w par.WireFormat)
}

// EdgeDecomp is the optional extension implemented by decompositions that
// also partition a mesh edge set (the atmosphere's velocity dofs live on
// edges). Restart and state-assembly code asserts on it instead of naming a
// concrete decomposition type.
type EdgeDecomp interface {
	// OwnedEdgeList returns the ascending edge ids owned by this rank —
	// a partition of the global edge set across ranks.
	OwnedEdgeList() []int
}
