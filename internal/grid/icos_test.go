package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIcosCountsClosedForm(t *testing.T) {
	// Level 0 is the icosahedron itself.
	c, e, v := IcosCounts(0)
	if c != 12 || e != 30 || v != 20 {
		t.Fatalf("level 0 counts = %d/%d/%d", c, e, v)
	}
	// Paper-scale levels (Table 1 atmosphere rows).
	cases := []struct {
		resKm int
		cells float64 // paper's rounded values (hex-cell convention)
		edges float64
		verts float64
	}{
		{25, 6.7e5, 2.0e6, 1.3e6},
		{10, 2.6e6, 7.9e6, 5.2e6},
		{6, 1.1e7, 3.2e7, 2.1e7},
		{3, 4.2e7, 1.3e8, 8.4e7},
	}
	for _, tc := range cases {
		lvl := GristLevelForRes[tc.resKm]
		c, e, v := IcosCounts(lvl)
		for _, chk := range []struct {
			got  int64
			want float64
		}{{c, tc.cells}, {e, tc.edges}, {v, tc.verts}} {
			if math.Abs(float64(chk.got)-chk.want)/chk.want > 0.05 {
				t.Errorf("res %d km level %d: got %d, paper %g", tc.resKm, lvl, chk.got, chk.want)
			}
		}
	}
	// 1 km row: the paper prints the dual (triangle) convention — cells and
	// vertices swapped.
	c, e, v = IcosCounts(GristLevelForRes[1])
	if math.Abs(float64(v)-3.4e8)/3.4e8 > 0.05 {
		t.Errorf("1 km: paper cells 3.4e8 vs our vertices %d", v)
	}
	if math.Abs(float64(e)-5.0e8)/5.0e8 > 0.05 {
		t.Errorf("1 km: paper edges 5.0e8 vs our edges %d", e)
	}
	if math.Abs(float64(c)-1.7e8)/1.7e8 > 0.05 {
		t.Errorf("1 km: paper vertices 1.7e8 vs our cells %d", c)
	}
}

func TestMeshCountsMatchFormulas(t *testing.T) {
	for lvl := 0; lvl <= 4; lvl++ {
		m, err := NewIcosMesh(lvl)
		if err != nil {
			t.Fatal(err)
		}
		wc, we, wv := IcosCounts(lvl)
		if int64(m.NCells()) != wc || int64(m.NEdges()) != we || int64(m.NVertices()) != wv {
			t.Errorf("level %d: %d/%d/%d, want %d/%d/%d",
				lvl, m.NCells(), m.NEdges(), m.NVertices(), wc, we, wv)
		}
	}
}

func TestMeshEulerCharacteristic(t *testing.T) {
	// Property over buildable levels: V - E + F = 2 for the sphere.
	f := func(raw uint8) bool {
		lvl := int(raw % 5)
		m, err := NewIcosMesh(lvl)
		if err != nil {
			return false
		}
		return m.NCells()-m.NEdges()+m.NVertices() == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestMeshAreasCoverSphere(t *testing.T) {
	m, err := NewIcosMesh(3)
	if err != nil {
		t.Fatal(err)
	}
	var cellSum, dualSum float64
	for _, a := range m.AreaCell {
		if a <= 0 {
			t.Fatal("non-positive cell area")
		}
		cellSum += a
	}
	for _, a := range m.AreaDual {
		if a <= 0 {
			t.Fatal("non-positive dual area")
		}
		dualSum += a
	}
	if math.Abs(cellSum-4*math.Pi) > 1e-9 {
		t.Errorf("cell areas sum to %v, want 4π", cellSum)
	}
	if math.Abs(dualSum-4*math.Pi) > 1e-9 {
		t.Errorf("dual areas sum to %v, want 4π", dualSum)
	}
}

func TestMeshTopologyConsistency(t *testing.T) {
	m, err := NewIcosMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	// Twelve pentagons, the rest hexagons.
	pent := 0
	for c := range m.EdgesOnCell {
		switch len(m.EdgesOnCell[c]) {
		case 5:
			pent++
		case 6:
		default:
			t.Fatalf("cell %d has %d edges", c, len(m.EdgesOnCell[c]))
		}
		// Edge/cell cross-references agree.
		for k, e := range m.EdgesOnCell[c] {
			c1, c2 := m.CellsOnEdge[e][0], m.CellsOnEdge[e][1]
			if c1 != c && c2 != c {
				t.Fatalf("edge %d not incident to cell %d", e, c)
			}
			other := c1
			if c1 == c {
				other = c2
			}
			if m.CellsOnCell[c][k] != other {
				t.Fatalf("CellsOnCell mismatch at cell %d slot %d", c, k)
			}
			sign := m.EdgeSignOnCell[c][k]
			if (c1 == c && sign != 1) || (c2 == c && sign != -1) {
				t.Fatalf("bad outward sign at cell %d edge %d", c, e)
			}
		}
	}
	if pent != 12 {
		t.Errorf("%d pentagons, want 12", pent)
	}
	// Every edge appears on exactly two cells and two vertices.
	edgeCellCount := make([]int, m.NEdges())
	for c := range m.EdgesOnCell {
		for _, e := range m.EdgesOnCell[c] {
			edgeCellCount[e]++
		}
	}
	for e, n := range edgeCellCount {
		if n != 2 {
			t.Fatalf("edge %d on %d cells", e, n)
		}
	}
	edgeVtxCount := make([]int, m.NEdges())
	for v := range m.EdgesOnVertex {
		for _, e := range m.EdgesOnVertex[v] {
			edgeVtxCount[e]++
		}
	}
	for e, n := range edgeVtxCount {
		if n != 2 {
			t.Fatalf("edge %d on %d vertices", e, n)
		}
	}
}

func TestMeshGeometryPositive(t *testing.T) {
	m, err := NewIcosMesh(3)
	if err != nil {
		t.Fatal(err)
	}
	for e := range m.Dc {
		if m.Dc[e] <= 0 || m.Dv[e] <= 0 {
			t.Fatalf("edge %d: dc=%v dv=%v", e, m.Dc[e], m.Dv[e])
		}
	}
	// Unit-vector invariants.
	for _, p := range m.VertexPos {
		if math.Abs(p.Norm()-1) > 1e-12 {
			t.Fatal("vertex not on unit sphere")
		}
	}
	// Resolution decreases by ~2x per level.
	m2, _ := NewIcosMesh(2)
	r2, r3 := m2.MeanCellSpacingKm(), m.MeanCellSpacingKm()
	if r2/r3 < 1.8 || r2/r3 > 2.2 {
		t.Errorf("spacing ratio %v, want ~2", r2/r3)
	}
}

// The discrete curl of a discrete gradient must vanish identically: for any
// cell scalar h, circulation of grad(h) around every dual triangle is a
// telescoping sum. This validates the edge orientation conventions that the
// dycore depends on.
func TestCurlOfGradientIsZero(t *testing.T) {
	m, err := NewIcosMesh(3)
	if err != nil {
		t.Fatal(err)
	}
	h := make([]float64, m.NCells())
	for c := range h {
		h[c] = math.Sin(3*m.LonCell[c]) * math.Cos(2*m.LatCell[c])
	}
	gradE := make([]float64, m.NEdges())
	for e := range gradE {
		c1, c2 := m.CellsOnEdge[e][0], m.CellsOnEdge[e][1]
		gradE[e] = (h[c2] - h[c1]) / m.Dc[e]
	}
	for v := range m.EdgesOnVertex {
		var circ float64
		for k := 0; k < 3; k++ {
			e := m.EdgesOnVertex[v][k]
			circ += float64(m.EdgeSignOnVtx[v][k]) * gradE[e] * m.Dc[e]
		}
		if math.Abs(circ) > 1e-12 {
			t.Fatalf("vertex %d: curl(grad) = %v", v, circ)
		}
	}
}

// The discrete divergence theorem: the area-weighted sum of div(u) over all
// cells is zero for any edge field u, because each edge contributes with
// opposite signs to its two cells.
func TestGlobalDivergenceIsZero(t *testing.T) {
	m, err := NewIcosMesh(3)
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, m.NEdges())
	for e := range u {
		lon, lat := LonLat(m.EdgeMidpoint[e])
		u[e] = math.Sin(5*lon) + math.Cos(3*lat)
	}
	var total float64
	for c := range m.EdgesOnCell {
		var div float64
		for k, e := range m.EdgesOnCell[c] {
			div += float64(m.EdgeSignOnCell[c][k]) * u[e] * m.Dv[e]
		}
		total += div // area cancels: div_c = div/A_c, weight by A_c
	}
	if math.Abs(total) > 1e-9 {
		t.Errorf("global divergence = %v", total)
	}
}

func TestNewIcosMeshRejectsBadLevels(t *testing.T) {
	if _, err := NewIcosMesh(-1); err == nil {
		t.Error("negative level accepted")
	}
	if _, err := NewIcosMesh(8); err == nil {
		t.Error("level 8 accepted (would allocate ~1M cells)")
	}
}

func TestSphereHelpers(t *testing.T) {
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	if d := GreatCircleDist(a, b); math.Abs(d-math.Pi/2) > 1e-14 {
		t.Errorf("dist = %v", d)
	}
	// Octant triangle has area π/2.
	c := Vec3{0, 0, 1}
	if ar := SphericalTriangleArea(a, b, c); math.Abs(ar-math.Pi/2) > 1e-12 {
		t.Errorf("area = %v", ar)
	}
	cc := Circumcenter(a, b, c)
	want := Vec3{1, 1, 1}.Normalize()
	if cc.Sub(want).Norm() > 1e-12 {
		t.Errorf("circumcenter = %v", cc)
	}
	lon, lat := LonLat(FromLonLat(1.0, 0.5))
	if math.Abs(lon-1.0) > 1e-14 || math.Abs(lat-0.5) > 1e-14 {
		t.Errorf("lonlat roundtrip: %v %v", lon, lat)
	}
}

func TestLonLatRoundTripProperty(t *testing.T) {
	f := func(lonRaw, latRaw float64) bool {
		lon := math.Mod(math.Abs(lonRaw), 2*math.Pi) - math.Pi
		lat := math.Mod(math.Abs(latRaw), math.Pi) - math.Pi/2
		l2, la2 := LonLat(FromLonLat(lon, lat))
		// Longitude is degenerate at the poles.
		if math.Abs(math.Abs(lat)-math.Pi/2) < 1e-9 {
			return math.Abs(la2-lat) < 1e-9
		}
		return math.Abs(la2-lat) < 1e-9 && math.Abs(math.Mod(l2-lon+3*math.Pi, 2*math.Pi)-math.Pi) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
