package grid

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/par"
)

func icosMesh(t testing.TB, level int) *IcosMesh {
	t.Helper()
	m, err := NewIcosMesh(level)
	if err != nil {
		t.Fatalf("NewIcosMesh(%d): %v", level, err)
	}
	return m
}

// decompInvariants checks the structural contract of one rank's decomposition
// and returns the owned count for the imbalance check.
func decompInvariants(t *testing.T, d *IcosDecomp, rank, size int) int {
	t.Helper()
	m := d.M
	nc := m.NCells()
	// Owner agrees with the range table, covers [0, size), and owns this
	// rank's range.
	for c := 0; c < nc; c++ {
		o := d.Owner(c)
		if o < 0 || o >= size {
			t.Fatalf("rank %d: Owner(%d) = %d out of range", rank, c, o)
		}
		if (c >= d.C0 && c < d.C1) != (o == rank) {
			t.Fatalf("rank %d: Owner(%d)=%d disagrees with range [%d,%d)", rank, c, o, d.C0, d.C1)
		}
	}
	// ExtCells = owned ∪ halo, ascending, halo disjoint from owned.
	for i := 1; i < len(d.ExtCells); i++ {
		if d.ExtCells[i] <= d.ExtCells[i-1] {
			t.Fatalf("rank %d: ExtCells not strictly ascending at %d", rank, i)
		}
	}
	if len(d.ExtCells) != d.NOwned()+len(d.HaloCells) {
		t.Fatalf("rank %d: |ExtCells| %d != owned %d + halo %d", rank, len(d.ExtCells), d.NOwned(), len(d.HaloCells))
	}
	for _, h := range d.HaloCells {
		if d.Owner(h) == rank {
			t.Fatalf("rank %d: halo cell %d is owned", rank, h)
		}
		// Every halo cell is adjacent to an owned cell.
		adj := false
		for _, nb := range m.CellsOnCell[h] {
			if d.Owner(nb) == rank {
				adj = true
			}
		}
		if !adj {
			t.Fatalf("rank %d: halo cell %d not adjacent to owned region", rank, h)
		}
	}
	// Ring-1 closure: every neighbour of an owned cell is in ExtCells.
	for c := d.C0; c < d.C1; c++ {
		for _, nb := range m.CellsOnCell[c] {
			if !d.InExt(nb) {
				t.Fatalf("rank %d: neighbour %d of owned %d missing from ExtCells", rank, nb, c)
			}
		}
	}
	// CompEdges are exactly the edges with an owned endpoint; RecvEdges are
	// the extended edges without one; CompVerts' stencils stay inside the
	// extended sets (the no-vertex-exchange guarantee).
	for _, e := range d.CompEdges {
		c1, c2 := m.CellsOnEdge[e][0], m.CellsOnEdge[e][1]
		if d.Owner(c1) != rank && d.Owner(c2) != rank {
			t.Fatalf("rank %d: CompEdge %d has no owned endpoint", rank, e)
		}
	}
	for _, e := range d.RecvEdges {
		c1, c2 := m.CellsOnEdge[e][0], m.CellsOnEdge[e][1]
		if d.Owner(c1) == rank || d.Owner(c2) == rank {
			t.Fatalf("rank %d: RecvEdge %d has an owned endpoint", rank, e)
		}
		if !d.InExtEdge(e) {
			t.Fatalf("rank %d: RecvEdge %d not in ExtEdges", rank, e)
		}
	}
	for _, v := range d.CompVerts {
		for _, e := range m.EdgesOnVertex[v] {
			if !d.InExtEdge(e) {
				t.Fatalf("rank %d: vertex %d stencil edge %d outside ExtEdges", rank, v, e)
			}
		}
		for _, c := range m.CellsOnVertex[v] {
			if !d.InExt(c) {
				t.Fatalf("rank %d: vertex %d stencil cell %d outside ExtCells", rank, v, c)
			}
		}
	}
	return d.NOwned()
}

func TestIcosDecompInvariants(t *testing.T) {
	m := icosMesh(t, 2) // 162 cells
	for _, ranks := range []int{1, 2, 3, 4, 5, 7} {
		owned := make([]int, ranks)
		ownEdgeCount := make([]int, ranks)
		par.Run(ranks, func(c *par.Comm) {
			d, err := NewIcosDecomp(m, c)
			if err != nil {
				t.Errorf("NewIcosDecomp: %v", err)
				return
			}
			owned[c.Rank()] = decompInvariants(t, d, c.Rank(), ranks)
			ownEdgeCount[c.Rank()] = len(d.OwnEdges)
		})
		// Every cell owned exactly once, imbalance ≤ ceil(N/ranks).
		total, maxOwned := 0, 0
		for _, n := range owned {
			total += n
			if n > maxOwned {
				maxOwned = n
			}
		}
		if total != m.NCells() {
			t.Fatalf("ranks=%d: owned cells sum to %d, want %d", ranks, total, m.NCells())
		}
		ceil := (m.NCells() + ranks - 1) / ranks
		if maxOwned > ceil {
			t.Fatalf("ranks=%d: max owned %d exceeds ceil(N/ranks)=%d", ranks, maxOwned, ceil)
		}
		// OwnEdges partitions the edge set.
		te := 0
		for _, n := range ownEdgeCount {
			te += n
		}
		if te != m.NEdges() {
			t.Fatalf("ranks=%d: OwnEdges sum to %d, want %d", ranks, te, m.NEdges())
		}
	}
}

// TestIcosDecompHaloSymmetry checks that the exchange plans of every rank
// pair mirror each other entry for entry — rank a's send list to b is b's
// receive list from a, in identical order.
func TestIcosDecompHaloSymmetry(t *testing.T) {
	m := icosMesh(t, 2)
	for _, ranks := range []int{2, 3, 4, 5} {
		ds := make([]*IcosDecomp, ranks)
		par.Run(ranks, func(c *par.Comm) {
			d, err := NewIcosDecomp(m, c)
			if err != nil {
				t.Errorf("NewIcosDecomp: %v", err)
				return
			}
			ds[c.Rank()] = d
		})
		peerIdx := func(d *IcosDecomp, r int) int {
			for i, p := range d.Peers {
				if p == r {
					return i
				}
			}
			return -1
		}
		for a := 0; a < ranks; a++ {
			for _, b := range ds[a].Peers {
				ia, ib := peerIdx(ds[a], b), peerIdx(ds[b], a)
				if ib < 0 {
					t.Fatalf("ranks=%d: %d peers with %d but not vice versa", ranks, a, b)
				}
				if !equalInts(ds[a].cellSend[ia], ds[b].cellRecv[ib]) {
					t.Fatalf("ranks=%d: cell plan %d→%d asymmetric: send %v recv %v",
						ranks, a, b, ds[a].cellSend[ia], ds[b].cellRecv[ib])
				}
				if !equalInts(ds[a].edgeSend[ia], ds[b].edgeRecv[ib]) {
					t.Fatalf("ranks=%d: edge plan %d→%d asymmetric: send %v recv %v",
						ranks, a, b, ds[a].edgeSend[ia], ds[b].edgeRecv[ib])
				}
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIcosDecompPartitionProperty is the property test over arbitrary rank
// counts, including ones that do not divide the cell count: the contiguous
// partition must cover every cell exactly once with imbalance ≤ 1.
func TestIcosDecompPartitionProperty(t *testing.T) {
	m := icosMesh(t, 2)
	nc := m.NCells()
	prop := func(seed uint16) bool {
		ranks := 1 + int(seed)%nc
		starts := make([]int, ranks+1)
		for r := 0; r <= ranks; r++ {
			starts[r] = r * nc / ranks
		}
		if starts[0] != 0 || starts[ranks] != nc {
			return false
		}
		minSz, maxSz := nc, 0
		for r := 0; r < ranks; r++ {
			sz := starts[r+1] - starts[r]
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			// Owner formula agrees with the range on the boundary cells.
			for _, c := range []int{starts[r], starts[r+1] - 1} {
				if c < starts[r] || c >= starts[r+1] {
					continue
				}
				if o := (ranks*(c+1) - 1) / nc; o != r {
					return false
				}
			}
		}
		ceil := (nc + ranks - 1) / ranks
		return maxSz <= ceil && maxSz-minSz <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestIcosExchangeMatchesGlobal steps a halo exchange against the brute
// force answer: cell and edge fields initialized to rank-dependent garbage
// outside the owned region must come back bit-identical to the analytic
// global field on every extended index.
func TestIcosExchangeMatchesGlobal(t *testing.T) {
	m := icosMesh(t, 2)
	nc, ne := m.NCells(), m.NEdges()
	const nlev = 3
	cellVal := func(k, c int) float64 { return float64(k*10000+c) + 0.25 }
	edgeVal := func(k, e int) float64 { return -float64(k*10000+e) - 0.75 }
	for _, ranks := range []int{2, 3, 4} {
		par.Run(ranks, func(c *par.Comm) {
			d, err := NewIcosDecomp(m, c)
			if err != nil {
				t.Errorf("NewIcosDecomp: %v", err)
				return
			}
			fc := make([]float64, nlev*nc)
			fe := make([]float64, nlev*ne)
			for i := range fc {
				fc[i] = math.NaN()
			}
			for i := range fe {
				fe[i] = math.NaN()
			}
			for k := 0; k < nlev; k++ {
				for cell := d.C0; cell < d.C1; cell++ {
					fc[k*nc+cell] = cellVal(k, cell)
				}
				for _, e := range d.CompEdges {
					fe[k*ne+e] = edgeVal(k, e)
				}
			}
			d.ExchangeCells(fc, nlev)
			d.ExchangeEdges(fe, nlev)
			for k := 0; k < nlev; k++ {
				for _, cell := range d.ExtCells {
					if got, want := fc[k*nc+cell], cellVal(k, cell); got != want {
						t.Errorf("ranks=%d rank %d: cell %d lev %d = %v, want %v", ranks, c.Rank(), cell, k, got, want)
						return
					}
				}
				for _, e := range d.ExtEdges {
					if got, want := fe[k*ne+e], edgeVal(k, e); got != want {
						t.Errorf("ranks=%d rank %d: edge %d lev %d = %v, want %v", ranks, c.Rank(), e, k, got, want)
						return
					}
				}
			}
		})
	}
}

// TestIcosExchangeZeroAllocs pins the halo exchange hot path to zero
// steady-state allocations at 2 ranks — the real multi-rank path through
// par.SendF64/RecvF64, not the 1-rank self short-circuit. AllocsPerRun
// measures global mallocs, so the peer rank's matching exchanges must be
// allocation-free too; the peer runs exactly runs+1 of them (AllocsPerRun's
// warm-up call plus runs measured calls).
func TestIcosExchangeZeroAllocs(t *testing.T) {
	m := icosMesh(t, 2)
	nc, ne := m.NCells(), m.NEdges()
	const nlev, runs = 4, 20
	par.Run(2, func(c *par.Comm) {
		d, err := NewIcosDecomp(m, c)
		if err != nil {
			t.Errorf("NewIcosDecomp: %v", err)
			return
		}
		fc := make([]float64, nlev*nc)
		fe := make([]float64, nlev*ne)
		step := func() {
			d.ExchangeCells(fc, nlev)
			d.ExchangeEdges(fe, nlev)
		}
		// Warm both parity buffer sets.
		step()
		step()
		c.Barrier()
		if c.Rank() == 0 {
			avg := testing.AllocsPerRun(runs, step)
			if avg != 0 {
				t.Errorf("halo exchange allocates %v per call in steady state, want 0", avg)
			}
		} else {
			for i := 0; i < runs+1; i++ {
				step()
			}
		}
		c.Barrier()
	})
}

func TestIcosDecompTooManyRanks(t *testing.T) {
	m := icosMesh(t, 0) // 12 cells
	par.Run(1, func(c *par.Comm) {
		if _, err := NewIcosDecomp(m, c); err != nil {
			t.Errorf("1 rank on 12 cells: %v", err)
		}
	})
	// A size larger than the cell count must be rejected, checked directly
	// on the constructor's guard (runs at 13 goroutine ranks).
	par.Run(13, func(c *par.Comm) {
		if _, err := NewIcosDecomp(m, c); err == nil {
			t.Errorf("13 ranks on 12 cells: want error")
		}
	})
}
