package grid

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/precision"
)

// TripolarDecomp is the 2D tripolar block decomposition of the ocean (and
// sea-ice) grid: one uniform rectangular block per rank with halo storage,
// periodic in x, closed at the south, folded at the tripolar north — the
// same halo semantics as Block — plus the two capabilities Block lacks:
//
//   - land-block elimination: the layout search may choose a process grid
//     with more blocks than ranks and leave the all-land blocks unassigned
//     (the paper's non-ocean-point compaction applied to the partition
//     itself). Halos facing an eliminated block are zero-filled, which is
//     exact because every exchanged ocean/ice field is identically zero on
//     land;
//   - batched, split-phase halo exchange: StartExchange posts the y-phase
//     sends for a whole batch of fields, FinishExchange drains them and runs
//     the x phase, so the caller can overlap interior compute with the halo
//     traffic (interior-first stepping).
//
// It implements the shared Decomp contract, so core's coupler, budget,
// restart, and snapshot paths treat the ocean exactly like the decomposed
// atmosphere. A replicated variant (NewTripolarReplicated) gives every rank
// the full grid as one local block with no communication — the historical
// baseline the scaling benchmarks compare against.
type TripolarDecomp struct {
	G *Tripolar

	// Geometry of this rank's patch, Block-compatible: local arrays are
	// (NJ+2H) × (NI+2H), row-major, owned region at offset (H, H).
	I0, J0 int // global origin of the owned region
	NI, NJ int // owned extents
	H      int // halo width

	PBX, PBY int   // process-block grid extents (blocks, not ranks)
	BNI, BNJ int   // uniform block extents: NX/PBX, NY/PBY
	bx, by   int   // this rank's block coordinates
	rankOf   []int // block (by*PBX+bx) -> owning rank; -1 = eliminated

	comm       *par.Comm
	replicated bool

	// Geometric neighbours (-1 = none assigned). southBoundary and atFold
	// mark the physical boundaries; a -1 rank on an interior side means
	// the neighbouring block was land-eliminated, so its halo stays zero
	// — that block's exact field value.
	southRank, northRank  int
	westRank, eastRank    int
	foldRank              int
	southBoundary, atFold bool

	// Per-parity, per-direction send staging. An exchange alternates
	// buffer sets; a neighbour is guaranteed to have drained parity-p's
	// previous message before this rank repacks it (its own exchange n+1
	// cannot have completed otherwise), so steady-state exchanges
	// allocate nothing.
	sendBuf [2][nTriDir][]float64
	parity  int
	one     [1]HaloField // scratch for the single-field Exchange wrappers

	// Compressed wire format state, mirroring the f64 staging: one
	// group-scaled encoding per parity and direction (repacked only after
	// the neighbour has provably drained the previous message of that
	// parity), and one decode scratch reused across the sequential receives
	// of FinishExchange.
	wire   par.WireFormat
	sendGS [2][nTriDir]*precision.GroupScaled
	rbuf   []float64

	ownedRanges [][2]int
	dryBlocks   []DryBlock

	obs       HaloObserver
	pendMsgs  int64
	pendBytes int64
	pendRaw   int64
}

// TripolarDecomp implements the shared Decomp contract.
var _ Decomp = (*TripolarDecomp)(nil)

// DryBlock is the geometry of one land-eliminated block — needed by restart
// writers, which must cover the full global index space and therefore emit
// zero-filled chunks for the blocks nobody owns.
type DryBlock struct {
	I0, J0, NI, NJ int
}

// HaloField describes one field of a batched halo exchange: NLev levels of
// LNI()*LNJ() local storage laid out [k*LNI*LNJ + idx]. Vec marks velocity
// components: the cell-centred fold mirroring is misaligned for staggered
// fields, so they skip the fold message and take free-slip (zero-gradient)
// copies of the top owned row instead, exactly as Block.ExchangeVec.
type HaloField struct {
	Data []float64
	NLev int
	Vec  bool
}

// Halo exchange message tags: disjoint from Block's 1000–1004, the
// icosahedral decomposition's 6000–6001, and the coupler rearranger's 7100,
// so the concurrent schedule can drain ocean halo traffic on the component
// goroutine while the atmosphere exchanges on the driver.
const (
	tagTriSouth = 2000 + iota // carries a block's bottom owned rows, travelling south
	tagTriNorth               // top owned rows, travelling north
	tagTriWest                // west owned columns, travelling west
	tagTriEast                // east owned columns, travelling east
	tagTriFold                // top owned rows, crossing the fold
)

// Send-buffer direction slots.
const (
	dirSouth = iota
	dirNorth
	dirWest
	dirEast
	dirFold
	nTriDir
)

// NewTripolarDecomp partitions the grid over the communicator: it searches
// the divisor layouts of the grid for a process-block grid whose wet-block
// count equals the rank count — eliminating all-land blocks — and picks the
// one whose maximum per-block active-point load (ΣKMT) is smallest. Every
// rank derives the same layout offline, so construction needs no traffic.
func NewTripolarDecomp(g *Tripolar, c *par.Comm, halo int) (*TripolarDecomp, error) {
	if halo < 1 {
		return nil, fmt.Errorf("grid: halo width must be >= 1, got %d", halo)
	}
	size := c.Size()
	bestScore := -1
	var bestPBX, bestPBY int
	var bestLoads []int
	for pbx := 1; pbx <= g.NX; pbx++ {
		if g.NX%pbx != 0 || g.NX/pbx < halo {
			continue
		}
		for pby := 1; pby <= g.NY; pby++ {
			if g.NY%pby != 0 || g.NY/pby < halo || pbx*pby < size {
				continue
			}
			loads := blockLoads(g, pbx, pby)
			nWet, maxLoad := 0, 0
			for _, l := range loads {
				if l > 0 {
					nWet++
					if l > maxLoad {
						maxLoad = l
					}
				}
			}
			if nWet != size {
				continue
			}
			if bestScore < 0 || maxLoad < bestScore {
				bestScore, bestPBX, bestPBY, bestLoads = maxLoad, pbx, pby, loads
			}
		}
	}
	if bestScore < 0 {
		return nil, fmt.Errorf("grid: no block layout of the %dx%d tripolar grid has exactly %d wet blocks (halo %d)",
			g.NX, g.NY, size, halo)
	}
	return newTripolarFromLayout(g, c, halo, bestPBX, bestPBY, bestLoads)
}

// NewTripolarDecompLayout builds the decomposition on an explicit
// process-block grid — the hook tests and benches use to pin a layout. The
// layout's wet-block count must equal the communicator size.
func NewTripolarDecompLayout(g *Tripolar, c *par.Comm, pbx, pby, halo int) (*TripolarDecomp, error) {
	if halo < 1 {
		return nil, fmt.Errorf("grid: halo width must be >= 1, got %d", halo)
	}
	if pbx < 1 || pby < 1 || g.NX%pbx != 0 || g.NY%pby != 0 {
		return nil, fmt.Errorf("grid: %dx%d grid not divisible by %dx%d block layout", g.NX, g.NY, pbx, pby)
	}
	if g.NX/pbx < halo || g.NY/pby < halo {
		return nil, fmt.Errorf("grid: halo %d exceeds local block %dx%d", halo, g.NX/pbx, g.NY/pby)
	}
	loads := blockLoads(g, pbx, pby)
	nWet := 0
	for _, l := range loads {
		if l > 0 {
			nWet++
		}
	}
	if nWet != c.Size() {
		return nil, fmt.Errorf("grid: %dx%d layout has %d wet blocks, want %d (one per rank)", pbx, pby, nWet, c.Size())
	}
	return newTripolarFromLayout(g, c, halo, pbx, pby, loads)
}

// NewTripolarReplicated gives every rank the whole grid as one local block:
// no ownership split, no communication — every exchange resolves locally
// with the identical boundary semantics. Owner reports rank 0 as the
// canonical owner and OwnedRanges is empty off rank 0, so collective writers
// emit each element exactly once.
func NewTripolarReplicated(g *Tripolar, c *par.Comm, halo int) (*TripolarDecomp, error) {
	if halo < 1 {
		return nil, fmt.Errorf("grid: halo width must be >= 1, got %d", halo)
	}
	if halo > g.NX || halo > g.NY {
		return nil, fmt.Errorf("grid: halo %d exceeds grid %dx%d", halo, g.NX, g.NY)
	}
	d := &TripolarDecomp{
		G: g, comm: c, H: halo,
		PBX: 1, PBY: 1, BNI: g.NX, BNJ: g.NY,
		rankOf: []int{0}, replicated: true,
	}
	d.finishGeometry()
	// Every replicated rank folds onto its own copy of the grid, whatever
	// its rank number (finishGeometry derives foldRank from the block map,
	// which names rank 0).
	d.foldRank = c.Rank()
	return d, nil
}

// blockLoads returns the per-block active-point count (ΣKMT) of a layout;
// zero marks an all-land block.
func blockLoads(g *Tripolar, pbx, pby int) []int {
	bni, bnj := g.NX/pbx, g.NY/pby
	loads := make([]int, pbx*pby)
	for j := 0; j < g.NY; j++ {
		by := j / bnj
		for i := 0; i < g.NX; i++ {
			loads[by*pbx+i/bni] += g.KMT[j*g.NX+i]
		}
	}
	return loads
}

func newTripolarFromLayout(g *Tripolar, c *par.Comm, halo, pbx, pby int, loads []int) (*TripolarDecomp, error) {
	d := &TripolarDecomp{
		G: g, comm: c, H: halo,
		PBX: pbx, PBY: pby, BNI: g.NX / pbx, BNJ: g.NY / pby,
	}
	d.rankOf = make([]int, pbx*pby)
	r := 0
	for bi, load := range loads {
		if load > 0 {
			d.rankOf[bi] = r
			if r == c.Rank() {
				d.bx, d.by = bi%pbx, bi/pbx
			}
			r++
		} else {
			d.rankOf[bi] = -1
			d.dryBlocks = append(d.dryBlocks, DryBlock{
				I0: (bi % pbx) * d.BNI, J0: (bi / pbx) * d.BNJ,
				NI: d.BNI, NJ: d.BNJ,
			})
		}
	}
	d.finishGeometry()
	return d, nil
}

// finishGeometry derives this rank's patch extents, neighbour ranks, and
// cached owned ranges from the block assignment.
func (d *TripolarDecomp) finishGeometry() {
	d.I0, d.J0 = d.bx*d.BNI, d.by*d.BNJ
	d.NI, d.NJ = d.BNI, d.BNJ

	d.southRank, d.northRank, d.westRank, d.eastRank, d.foldRank = -1, -1, -1, -1, -1
	d.southBoundary = d.by == 0
	d.atFold = d.by == d.PBY-1
	if !d.southBoundary {
		d.southRank = d.rankOf[(d.by-1)*d.PBX+d.bx]
	}
	if !d.atFold {
		d.northRank = d.rankOf[(d.by+1)*d.PBX+d.bx]
	} else {
		d.foldRank = d.rankOf[d.by*d.PBX+(d.PBX-1-d.bx)]
	}
	if d.PBX > 1 {
		d.westRank = d.rankOf[d.by*d.PBX+(d.bx-1+d.PBX)%d.PBX]
		d.eastRank = d.rankOf[d.by*d.PBX+(d.bx+1)%d.PBX]
	}

	switch {
	case d.replicated && d.comm.Rank() != 0:
		d.ownedRanges = [][2]int{}
	case d.replicated:
		d.ownedRanges = [][2]int{{0, d.G.NX * d.G.NY}}
	default:
		d.ownedRanges = make([][2]int, 0, d.NJ)
		for lj := 0; lj < d.NJ; lj++ {
			d.ownedRanges = append(d.ownedRanges, [2]int{(d.J0+lj)*d.G.NX + d.I0, d.NI})
		}
	}
}

// --- Block-compatible geometry ---

// LNI returns the local array width including halos.
func (d *TripolarDecomp) LNI() int { return d.NI + 2*d.H }

// LNJ returns the local row count including halos.
func (d *TripolarDecomp) LNJ() int { return d.NJ + 2*d.H }

// Alloc returns a zeroed local array (one level).
func (d *TripolarDecomp) Alloc() []float64 { return make([]float64, d.LNI()*d.LNJ()) }

// LIdx converts owned-region coordinates (li, lj) ∈ [0,NI)×[0,NJ) to the
// flat local index including the halo offset.
func (d *TripolarDecomp) LIdx(li, lj int) int { return (lj+d.H)*d.LNI() + li + d.H }

// GIdx converts owned-region coordinates to the flat global surface index.
func (d *TripolarDecomp) GIdx(li, lj int) int { return (d.J0+lj)*d.G.NX + d.I0 + li }

// AtNorthFold reports whether this block touches the folded northern row.
func (d *TripolarDecomp) AtNorthFold() bool { return d.atFold }

// AtSouth reports whether this block touches the closed southern boundary.
func (d *TripolarDecomp) AtSouth() bool { return d.southBoundary }

// Replicated reports whether every rank holds the full grid (the
// no-decomposition baseline): collectives over the decomposition reduce to
// local reads and restart/snapshot writers emit from rank 0 only.
func (d *TripolarDecomp) Replicated() bool { return d.replicated }

// DryBlocks returns the land-eliminated blocks (identical on every rank;
// callers must not mutate).
func (d *TripolarDecomp) DryBlocks() []DryBlock { return d.dryBlocks }

// --- Decomp contract ---

// Comm implements Decomp.
func (d *TripolarDecomp) Comm() *par.Comm { return d.comm }

// NGlobal implements Decomp: the global surface point count.
func (d *TripolarDecomp) NGlobal() int { return d.G.NX * d.G.NY }

// Owner implements Decomp: ownership is geometric by block, so a land
// column inside a wet block is owned by that block's rank, while columns of
// eliminated blocks are owned by nobody (-1).
func (d *TripolarDecomp) Owner(gi int) int {
	if d.replicated {
		return 0
	}
	i, j := gi%d.G.NX, gi/d.G.NX
	return d.rankOf[(j/d.BNJ)*d.PBX+i/d.BNI]
}

// InExt implements Decomp: whether the global cell's value is locally
// available after an exchange — owned, inside the halo ring (periodic in
// x), or a fold image row of a fold-touching block.
func (d *TripolarDecomp) InExt(gi int) bool {
	if d.replicated {
		return true
	}
	nx := d.G.NX
	i, j := gi%nx, gi/nx
	if d.xNear(i) {
		lo := d.J0 - d.H
		if lo < 0 {
			lo = 0
		}
		if j >= lo && j < d.J0+d.NJ+d.H && j < d.G.NY {
			return true
		}
	}
	return d.atFold && j >= d.G.NY-d.H && d.xNear(nx-1-i)
}

// xNear reports whether global column i is within H of the owned column
// range in periodic x.
func (d *TripolarDecomp) xNear(i int) bool {
	if i >= d.I0 && i < d.I0+d.NI {
		return true
	}
	nx := d.G.NX
	dl := (d.I0 - i + nx) % nx
	dr := (i - (d.I0 + d.NI - 1) + nx) % nx
	return dl <= d.H || dr <= d.H
}

// OwnedRanges implements Decomp: one {start, NI} run per owned row
// (replicated: the full index space on rank 0, empty elsewhere). Cached;
// callers must not mutate.
func (d *TripolarDecomp) OwnedRanges() [][2]int { return d.ownedRanges }

// SetObserver attaches the halo traffic counters
// (cpl.halo.{msgs,bytes} with component="ocn").
func (d *TripolarDecomp) SetObserver(o HaloObserver) { d.obs = o }

// SetWire selects the halo wire format (par.WireF64 bit-exact default,
// par.WireGS32 group-scaled compression of every halo message). Must not
// change between a StartExchange and its FinishExchange.
func (d *TripolarDecomp) SetWire(w par.WireFormat) { d.wire = w }

// Wire returns the active halo wire format.
func (d *TripolarDecomp) Wire() par.WireFormat { return d.wire }

// ExchangeCells implements Decomp: a batched scalar exchange of one
// nlev-level field in local block layout.
func (d *TripolarDecomp) ExchangeCells(f []float64, nlev int) {
	d.one[0] = HaloField{Data: f, NLev: nlev}
	d.ExchangeFields(d.one[:])
	d.one[0].Data = nil
}

// Gather implements Decomp: GatherGlobal on one level.
func (d *TripolarDecomp) Gather(f []float64) []float64 { return d.GatherGlobal(f) }

// AllreduceSum reduces a scalar over the decomposition's ranks. In the
// replicated mode every rank already holds the global value, so the
// collective is skipped (summing would count the domain once per rank).
func (d *TripolarDecomp) AllreduceSum(v float64) float64 {
	if d.replicated {
		return v
	}
	return d.comm.Allreduce(v, par.OpSum)
}

// AllreduceMax is AllreduceSum's max counterpart.
func (d *TripolarDecomp) AllreduceMax(v float64) float64 {
	if d.replicated {
		return v
	}
	return d.comm.Allreduce(v, par.OpMax)
}

// GatherGlobal assembles the owned regions of a local field from all ranks
// into a global NY×NX array on rank 0 (nil elsewhere). Eliminated blocks
// stay zero — their exact field value. In the replicated mode the block is
// the grid, so the result is assembled locally on every rank.
func (d *TripolarDecomp) GatherGlobal(f []float64) []float64 {
	nx := d.G.NX
	if d.replicated {
		out := make([]float64, nx*d.G.NY)
		for lj := 0; lj < d.NJ; lj++ {
			for li := 0; li < d.NI; li++ {
				out[(d.J0+lj)*nx+d.I0+li] = f[d.LIdx(li, lj)]
			}
		}
		return out
	}
	type patch struct {
		I0, J0, NI, NJ int
		Data           []float64
	}
	own := make([]float64, d.NI*d.NJ)
	for lj := 0; lj < d.NJ; lj++ {
		for li := 0; li < d.NI; li++ {
			own[lj*d.NI+li] = f[d.LIdx(li, lj)]
		}
	}
	patches := par.Gather(d.comm, 0, patch{d.I0, d.J0, d.NI, d.NJ, own})
	if d.comm.Rank() != 0 {
		return nil
	}
	out := make([]float64, nx*d.G.NY)
	for _, p := range patches {
		for lj := 0; lj < p.NJ; lj++ {
			copy(out[(p.J0+lj)*nx+p.I0:(p.J0+lj)*nx+p.I0+p.NI], p.Data[lj*p.NI:(lj+1)*p.NI])
		}
	}
	return out
}

// --- Halo exchange ---

// Exchange fills the halo of a one-level scalar field (see ExchangeFields).
// The single-field wrappers share scratch state and must not be called
// concurrently with any other exchange on this decomposition.
func (d *TripolarDecomp) Exchange(f []float64) {
	d.one[0] = HaloField{Data: f, NLev: 1}
	d.ExchangeFields(d.one[:])
	d.one[0].Data = nil
}

// ExchangeVec fills the halo of a one-level velocity component field.
func (d *TripolarDecomp) ExchangeVec(f []float64) {
	d.one[0] = HaloField{Data: f, NLev: 1, Vec: true}
	d.ExchangeFields(d.one[:])
	d.one[0].Data = nil
}

// ExchangeFields fills the halos of a batch of fields in one split-phase
// exchange: periodic in x, zero-gradient at the closed south, fold-mirrored
// (scalar) or free-slip (vec) at the tripolar north, zero against
// land-eliminated neighbours. All ranks must pass identical batch shapes
// (field order, levels, vec flags); the halo values are identical to
// per-field Block exchanges on any layout.
func (d *TripolarDecomp) ExchangeFields(fields []HaloField) {
	d.StartExchange(fields)
	d.FinishExchange(fields)
}

// StartExchange posts the y-phase sends of a batched exchange. Between
// StartExchange and FinishExchange the caller may compute on owned cells
// (the messages are already packed) but must not write the fields' halo or
// owned storage. Every StartExchange must be followed by exactly one
// FinishExchange with the same batch.
func (d *TripolarDecomp) StartExchange(fields []HaloField) {
	d.parity ^= 1
	if d.PBX == 1 && d.PBY == 1 {
		return // single block: every boundary resolves locally in Finish
	}
	if d.southRank >= 0 {
		d.sendWire(d.southRank, tagTriSouth, dirSouth, d.packRows(fields, d.H, dirSouth, false))
	}
	if d.northRank >= 0 {
		d.sendWire(d.northRank, tagTriNorth, dirNorth, d.packRows(fields, d.NJ, dirNorth, false))
	}
	if d.atFold && d.foldRank >= 0 && d.foldRank != d.comm.Rank() && hasScalar(fields) {
		// The fold message compresses AFTER the pack: the packed buffer is
		// the partner's top owned rows in natural column order, and the
		// receiver mirrors columns only while unpacking the *decoded* values
		// — so quantization groups span contiguous physical rows on both
		// sides and the mirror never straddles a group boundary mid-flight.
		d.sendWire(d.foldRank, tagTriFold, dirFold, d.packRows(fields, d.NJ, dirFold, true))
	}
}

// sendWire ships one packed staging buffer in the active wire format and
// accrues the pending traffic counters (flushed once per exchange).
func (d *TripolarDecomp) sendWire(dst, tag, dir int, buf []float64) {
	d.pendMsgs++
	d.pendRaw += int64(8 * len(buf))
	if d.wire == par.WireGS32 {
		gs := d.sendGS[d.parity][dir]
		if gs == nil {
			gs = &precision.GroupScaled{}
			d.sendGS[d.parity][dir] = gs
		}
		if err := precision.EncodeGroupScaledInto(gs, buf, par.WireGroup); err != nil {
			panic(err) // group size is a package constant; unreachable
		}
		par.SendGS(d.comm, dst, tag, gs)
		d.pendBytes += int64(gs.Bytes())
		return
	}
	par.SendF64(d.comm, dst, tag, buf)
	d.pendBytes += int64(8 * len(buf))
}

// recvWire blocks for one halo message and returns its float64 values,
// decoding through the error-returning forms: a mis-typed or corrupt message
// panics with the typed error, which core's checked stepper converts into a
// rollback-able failure. Under WireGS32 the returned slice aliases the shared
// decode scratch, valid until the next recvWire call.
func (d *TripolarDecomp) recvWire(src, tag int) []float64 {
	if d.wire == par.WireGS32 {
		gs, _, err := par.RecvGS(d.comm, src, tag)
		if err != nil {
			panic(err)
		}
		if cap(d.rbuf) < gs.N {
			d.rbuf = make([]float64, gs.N)
		}
		msg := d.rbuf[:gs.N]
		if err := gs.DecodeInto(msg); err != nil {
			panic(err)
		}
		return msg
	}
	msg, _, err := par.RecvF64E(d.comm, src, tag)
	if err != nil {
		panic(err)
	}
	return msg
}

// FinishExchange drains the y-phase receives, applies the boundary fills,
// runs the x phase (which carries the already-filled corner rows), and
// applies the free-slip fold override to vec fields.
func (d *TripolarDecomp) FinishExchange(fields []HaloField) {
	lni, lnj, h := d.LNI(), d.LNJ(), d.H
	n2 := lni * lnj

	// --- Y direction: south ghost rows ---
	switch {
	case d.southRank >= 0:
		d.unpackRows(fields, d.recvWire(d.southRank, tagTriNorth), 0)
	case d.southBoundary:
		// Closed south: zero-gradient full-row copies (the stale x halos
		// they carry are overwritten by the x phase).
		for _, f := range fields {
			for k := 0; k < f.NLev; k++ {
				base := k * n2
				for r := 0; r < h; r++ {
					copy(f.Data[base+r*lni:base+(r+1)*lni], f.Data[base+h*lni:base+(h+1)*lni])
				}
			}
		}
	default:
		d.zeroRows(fields, 0) // eliminated south neighbour
	}

	// --- Y direction: north ghost rows (plain neighbour or fold) ---
	switch {
	case !d.atFold && d.northRank >= 0:
		d.unpackRows(fields, d.recvWire(d.northRank, tagTriSouth), h+d.NJ)
	case !d.atFold:
		d.zeroRows(fields, h+d.NJ) // eliminated north neighbour
	case d.foldRank == d.comm.Rank():
		// Self-partnered fold: ghost row (NJ+r) takes the own owned row
		// (NJ-1-r), columns mirrored. Vec fields skip the mirror — the
		// free-slip override below fully overwrites their fold ghosts.
		for _, f := range fields {
			if f.Vec {
				continue
			}
			for k := 0; k < f.NLev; k++ {
				base := k * n2
				for r := 0; r < h; r++ {
					src := f.Data[base+(d.NJ+h-1-r)*lni : base+(d.NJ+h-r)*lni]
					dst := f.Data[base+(h+d.NJ+r)*lni : base+(h+d.NJ+r+1)*lni]
					for li := 0; li < d.NI; li++ {
						dst[h+li] = src[h+d.NI-1-li]
					}
				}
			}
		}
	case d.foldRank >= 0:
		if hasScalar(fields) {
			d.unpackFold(fields, d.recvWire(d.foldRank, tagTriFold))
		}
	default:
		d.zeroRows(fields, h+d.NJ) // eliminated fold partner
	}

	// --- X direction (periodic), carries the corner ghosts ---
	if d.PBX == 1 {
		for _, f := range fields {
			for k := 0; k < f.NLev; k++ {
				base := k * n2
				for j := 0; j < lnj; j++ {
					row := f.Data[base+j*lni : base+(j+1)*lni]
					copy(row[:h], row[d.NI:d.NI+h])
					copy(row[h+d.NI:], row[h:2*h])
				}
			}
		}
	} else {
		if d.westRank >= 0 {
			d.sendWire(d.westRank, tagTriWest, dirWest, d.packCols(fields, h, dirWest))
		}
		if d.eastRank >= 0 {
			d.sendWire(d.eastRank, tagTriEast, dirEast, d.packCols(fields, d.NI, dirEast))
		}
		if d.eastRank >= 0 {
			d.unpackCols(fields, d.recvWire(d.eastRank, tagTriWest), h+d.NI)
		} else {
			d.zeroCols(fields, h+d.NI)
		}
		if d.westRank >= 0 {
			d.unpackCols(fields, d.recvWire(d.westRank, tagTriEast), 0)
		} else {
			d.zeroCols(fields, 0)
		}
	}

	// --- Free-slip fold override for vec fields: ghost rows take full
	// copies (x halos included) of the top owned row ---
	if d.atFold {
		for _, f := range fields {
			if !f.Vec {
				continue
			}
			for k := 0; k < f.NLev; k++ {
				base := k * n2
				src := f.Data[base+(h+d.NJ-1)*lni : base+(h+d.NJ)*lni]
				for r := 0; r < h; r++ {
					copy(f.Data[base+(h+d.NJ+r)*lni:base+(h+d.NJ+r+1)*lni], src)
				}
			}
		}
	}

	if d.obs != nil && d.pendMsgs > 0 {
		d.obs.AddCount(ctrHaloMsgsOcn, d.pendMsgs)
		d.obs.AddCount(ctrHaloBytesOcn, d.pendBytes)
		d.obs.AddCount(ctrWireRawBytes, d.pendRaw)
		d.obs.AddCount(ctrWireBytes, d.pendBytes)
	}
	d.pendMsgs, d.pendBytes, d.pendRaw = 0, 0, 0
}

// hasScalar reports whether the batch carries any non-vec field (the fold
// message is scalar-only; an all-vec batch sends none).
func hasScalar(fields []HaloField) bool {
	for _, f := range fields {
		if !f.Vec {
			return true
		}
	}
	return false
}

// packRows stages H rows starting at raw local row j0, owned columns only,
// for every (matching) field and level, into the direction's parity buffer.
func (d *TripolarDecomp) packRows(fields []HaloField, j0, dir int, scalarOnly bool) []float64 {
	lni, h := d.LNI(), d.H
	n2 := lni * d.LNJ()
	need := 0
	for _, f := range fields {
		if scalarOnly && f.Vec {
			continue
		}
		need += f.NLev * h * d.NI
	}
	buf := d.sendBuf[d.parity][dir]
	if cap(buf) < need {
		buf = make([]float64, need)
		d.sendBuf[d.parity][dir] = buf
	}
	buf = buf[:need]
	pos := 0
	for _, f := range fields {
		if scalarOnly && f.Vec {
			continue
		}
		for k := 0; k < f.NLev; k++ {
			base := k * n2
			for r := 0; r < h; r++ {
				start := base + (j0+r)*lni + h
				copy(buf[pos:pos+d.NI], f.Data[start:start+d.NI])
				pos += d.NI
			}
		}
	}
	return buf
}

// unpackRows writes a row-slab message back at raw local row j0, owned
// columns only.
func (d *TripolarDecomp) unpackRows(fields []HaloField, msg []float64, j0 int) {
	lni, h := d.LNI(), d.H
	n2 := lni * d.LNJ()
	pos := 0
	for _, f := range fields {
		for k := 0; k < f.NLev; k++ {
			base := k * n2
			for r := 0; r < h; r++ {
				start := base + (j0+r)*lni + h
				copy(f.Data[start:start+d.NI], msg[pos:pos+d.NI])
				pos += d.NI
			}
		}
	}
	if pos != len(msg) {
		panic(fmt.Sprintf("grid: tripolar row message has %d values, want %d", len(msg), pos))
	}
}

// unpackFold writes the fold partner's top-owned-row message into the fold
// ghost rows: ghost row (NJ+r) takes the partner's owned row (NJ-1-r) with
// columns mirrored (partner local column NI-1-li lands at li).
func (d *TripolarDecomp) unpackFold(fields []HaloField, msg []float64) {
	lni, h := d.LNI(), d.H
	n2 := lni * d.LNJ()
	pos := 0
	for _, f := range fields {
		if f.Vec {
			continue
		}
		for k := 0; k < f.NLev; k++ {
			base := k * n2
			fieldStart := pos
			for r := 0; r < h; r++ {
				src := msg[fieldStart+(h-1-r)*d.NI : fieldStart+(h-r)*d.NI]
				dst := f.Data[base+(h+d.NJ+r)*lni : base+(h+d.NJ+r+1)*lni]
				for li := 0; li < d.NI; li++ {
					dst[h+li] = src[d.NI-1-li]
				}
			}
			pos += h * d.NI
		}
	}
	if pos != len(msg) {
		panic(fmt.Sprintf("grid: tripolar fold message has %d values, want %d", len(msg), pos))
	}
}

// zeroRows zeroes H full rows starting at raw local row j0 — the fill
// against land-eliminated neighbours, whose fields are identically zero.
func (d *TripolarDecomp) zeroRows(fields []HaloField, j0 int) {
	lni, h := d.LNI(), d.H
	n2 := lni * d.LNJ()
	for _, f := range fields {
		for k := 0; k < f.NLev; k++ {
			base := k * n2
			zero := f.Data[base+j0*lni : base+(j0+h)*lni]
			for i := range zero {
				zero[i] = 0
			}
		}
	}
}

// packCols stages H columns starting at raw local column i0, full local
// height (ghost rows included, so corners travel), layout [j*H + r].
func (d *TripolarDecomp) packCols(fields []HaloField, i0, dir int) []float64 {
	lni, lnj, h := d.LNI(), d.LNJ(), d.H
	n2 := lni * lnj
	need := 0
	for _, f := range fields {
		need += f.NLev * h * lnj
	}
	buf := d.sendBuf[d.parity][dir]
	if cap(buf) < need {
		buf = make([]float64, need)
		d.sendBuf[d.parity][dir] = buf
	}
	buf = buf[:need]
	pos := 0
	for _, f := range fields {
		for k := 0; k < f.NLev; k++ {
			base := k * n2
			for j := 0; j < lnj; j++ {
				for r := 0; r < h; r++ {
					buf[pos] = f.Data[base+j*lni+i0+r]
					pos++
				}
			}
		}
	}
	return buf
}

// unpackCols writes a column-slab message back at raw local column i0.
func (d *TripolarDecomp) unpackCols(fields []HaloField, msg []float64, i0 int) {
	lni, lnj, h := d.LNI(), d.LNJ(), d.H
	n2 := lni * lnj
	pos := 0
	for _, f := range fields {
		for k := 0; k < f.NLev; k++ {
			base := k * n2
			for j := 0; j < lnj; j++ {
				for r := 0; r < h; r++ {
					f.Data[base+j*lni+i0+r] = msg[pos]
					pos++
				}
			}
		}
	}
	if pos != len(msg) {
		panic(fmt.Sprintf("grid: tripolar column message has %d values, want %d", len(msg), pos))
	}
}

// zeroCols zeroes H columns starting at raw local column i0, full height.
func (d *TripolarDecomp) zeroCols(fields []HaloField, i0 int) {
	lni, lnj, h := d.LNI(), d.LNJ(), d.H
	n2 := lni * lnj
	for _, f := range fields {
		for k := 0; k < f.NLev; k++ {
			base := k * n2
			for j := 0; j < lnj; j++ {
				for r := 0; r < h; r++ {
					f.Data[base+j*lni+i0+r] = 0
				}
			}
		}
	}
}
