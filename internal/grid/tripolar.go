package grid

import (
	"fmt"
	"math"
)

// Tripolar is the structured ocean/sea-ice grid of the reproduction — a
// latitude–longitude grid that is periodic in longitude and closes the
// Arctic with a fold row, standing in for LICOM's tripolar grid (which
// displaces the two northern poles onto land; the fold here reproduces the
// same communication pattern across the top boundary without the metric
// distortion machinery).
//
// Cell (i, j) has center longitude Lon[i], latitude Lat[j], i fastest.
// The analytic land mask produces ≈71 % ocean coverage, matching the
// motivation for the non-ocean-point exclusion optimization (§5.2.2).
type Tripolar struct {
	NX, NY int
	NLevel int

	Lon []float64 // [NX] cell-center longitudes, radians, [0, 2π)
	Lat []float64 // [NY] cell-center latitudes, radians, south to north

	DX []float64 // [NY] zonal cell width in metres at each latitude row
	DY float64   // meridional cell height in metres (uniform)

	Area []float64 // [NY*NX] cell areas in m²

	// Mask is true where the surface cell is ocean.
	Mask []bool // [NY*NX]

	// Depth is the analytic bathymetry in metres (0 on land).
	Depth []float64 // [NY*NX]

	// KMT is the number of active vertical levels in each column (0 on land).
	KMT []int // [NY*NX]

	// LevelDepth[k] is the depth of the bottom of level k in metres.
	LevelDepth []float64 // [NLevel]
}

// LICOMConfig is one row of the LICOM resolution catalog (Table 1): the
// nominal resolution in km and the global grid extents used by the paper.
type LICOMConfig struct {
	ResKm      int
	NLon, NLat int
	NLevel     int
}

// LICOMCatalog reproduces the ocean columns of Table 1. Grid extents are
// configuration constants of the original model (a 0.01° tripolar grid at
// 1 km, and proportional coarsenings), not derivable quantities.
var LICOMCatalog = []LICOMConfig{
	{ResKm: 1, NLon: 36000, NLat: 22018, NLevel: 80},
	{ResKm: 2, NLon: 18000, NLat: 11511, NLevel: 80},
	{ResKm: 3, NLon: 10800, NLat: 6907, NLevel: 80},
	{ResKm: 5, NLon: 7200, NLat: 4605, NLevel: 80},
	{ResKm: 10, NLon: 3600, NLat: 2302, NLevel: 80},
}

// LICOMConfigForRes returns the catalog row for a nominal resolution.
func LICOMConfigForRes(resKm int) (LICOMConfig, error) {
	for _, c := range LICOMCatalog {
		if c.ResKm == resKm {
			return c, nil
		}
	}
	return LICOMConfig{}, fmt.Errorf("grid: no LICOM configuration at %d km", resKm)
}

// southLat is the southern boundary of the ocean grid (78.5°S, the LICOM
// convention: the grid stops at the Antarctic coast).
const southLat = -78.5 * math.Pi / 180

// northLat is the northern boundary, where the tripolar fold seam closes
// the domain. A real tripolar grid displaces its two northern poles onto
// land so cell widths stay bounded; the reproduction emulates that by
// capping the grid at 85°N, keeping the zonal spacing away from the
// converging-meridian singularity.
const northLat = 85.0 * math.Pi / 180

// NewTripolar builds an nx × ny × nlevel ocean grid with the analytic land
// mask and bathymetry. nx must be even (required by the fold exchange).
func NewTripolar(nx, ny, nlevel int) (*Tripolar, error) {
	if nx <= 0 || ny <= 0 || nlevel <= 0 {
		return nil, fmt.Errorf("grid: invalid tripolar extents %d×%d×%d", nx, ny, nlevel)
	}
	if nx%2 != 0 {
		return nil, fmt.Errorf("grid: tripolar nx must be even for the fold, got %d", nx)
	}
	g := &Tripolar{NX: nx, NY: ny, NLevel: nlevel}

	g.Lon = make([]float64, nx)
	for i := range g.Lon {
		g.Lon[i] = (float64(i) + 0.5) * 2 * math.Pi / float64(nx)
	}
	g.Lat = make([]float64, ny)
	dlat := (northLat - southLat) / float64(ny)
	for j := range g.Lat {
		g.Lat[j] = southLat + (float64(j)+0.5)*dlat
	}
	g.DY = dlat * EarthRadius
	g.DX = make([]float64, ny)
	g.Area = make([]float64, nx*ny)
	dlon := 2 * math.Pi / float64(nx)
	for j := range g.Lat {
		g.DX[j] = dlon * EarthRadius * math.Cos(g.Lat[j])
		for i := 0; i < nx; i++ {
			g.Area[j*nx+i] = g.DX[j] * g.DY
		}
	}

	g.LevelDepth = stretchedLevels(nlevel)
	g.Mask = make([]bool, nx*ny)
	g.Depth = make([]float64, nx*ny)
	g.KMT = make([]int, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			lon, lat := g.Lon[i], g.Lat[j]
			d := analyticDepth(lon, lat)
			idx := j*nx + i
			if d > 0 {
				g.Mask[idx] = true
				g.Depth[idx] = d
				g.KMT[idx] = levelsFor(d, g.LevelDepth)
			}
		}
	}
	return g, nil
}

// stretchedLevels returns bottom depths for nlevel vertical levels with the
// usual upper-ocean refinement: ~10 m surface layers stretching to ~150 m
// layers toward a 5500 m maximum depth.
func stretchedLevels(nlevel int) []float64 {
	const maxDepth = 5500.0
	out := make([]float64, nlevel)
	for k := 0; k < nlevel; k++ {
		s := (float64(k) + 1) / float64(nlevel)
		// Cubic stretching: fine near the surface.
		out[k] = maxDepth * (0.15*s + 0.85*s*s*s)
	}
	return out
}

// levelsFor returns the number of whole levels above depth d.
func levelsFor(d float64, levels []float64) int {
	n := 0
	for _, bot := range levels {
		if bot <= d {
			n++
		} else {
			break
		}
	}
	if n == 0 {
		n = 1 // any ocean point keeps at least the surface level
	}
	return n
}

// analyticDepth is the synthetic bathymetry: a smooth basin structure with
// idealized continents, tuned so the global ocean fraction is ≈71 %.
// Returns 0 over land, positive depth in metres over ocean.
func analyticDepth(lon, lat float64) float64 {
	if landFunction(lon, lat) > 0 {
		return 0
	}
	// Basin depth: deep mid-basin, shallower near the (smooth) coasts and
	// along a mid-ocean-ridge-like feature.
	ridge := math.Exp(-squared((math.Mod(lon+math.Pi, 2*math.Pi)-math.Pi)*2)) * 1500
	base := 4200 + 800*math.Cos(3*lon)*math.Cos(2*lat)
	d := base - ridge
	if d < 100 {
		d = 100
	}
	return d
}

// IsLand reports whether the analytic continents cover (lon, lat), both in
// radians. The atmosphere and land components share this mask so that
// surface types agree across components without a remapping file.
func IsLand(lon, lat float64) bool { return landFunction(lon, lat) > 0 }

// landFunction is positive over land. Idealized continents: two meridional
// "americas/afro-eurasia" bands widening to the north, an antarctic cap, and
// an australia-like blob; tuned to ≈29 % land.
func landFunction(lon, lat float64) float64 {
	deg := 180 / math.Pi
	lonD := lon * deg
	latD := lat * deg

	v := -1.0
	// Antarctic cap (grid starts at 78.5°S so only its fringe appears).
	if latD < -70 {
		v = 1
	}
	// "Americas": band near lon 280°, widening with latitude.
	v = math.Max(v, bandMembership(lonD, latD, 280, 14, -55, 75))
	// "Afro-Eurasia": wide band near lon 45°.
	v = math.Max(v, bandMembership(lonD, latD, 45, 30, -35, 75))
	// "East Asia extension" near lon 105°.
	v = math.Max(v, bandMembership(lonD, latD, 105, 18, 5, 72))
	// "Australia" blob.
	v = math.Max(v, blobMembership(lonD, latD, 133, -25, 20, 12))
	// "Greenland" blob.
	v = math.Max(v, blobMembership(lonD, latD, 318, 72, 14, 10))
	return v
}

// bandMembership is positive inside a meridional land band centred at
// lonC with half-width halfW (degrees), between latitudes latS and latN,
// with a wavy coastline.
func bandMembership(lonD, latD, lonC, halfW, latS, latN float64) float64 {
	if latD < latS || latD > latN {
		return -1
	}
	dl := math.Abs(math.Mod(lonD-lonC+540, 360) - 180)
	wavy := halfW * (1 + 0.25*math.Sin(latD/9) + 0.15*math.Cos(latD/5))
	return wavy - dl
}

// blobMembership is positive inside an elliptical blob centred at
// (lonC, latC) with semi-axes a (lon degrees) and b (lat degrees).
func blobMembership(lonD, latD, lonC, latC, a, b float64) float64 {
	dl := math.Mod(lonD-lonC+540, 360) - 180
	dla := latD - latC
	return 1 - (dl*dl/(a*a) + dla*dla/(b*b))
}

func squared(x float64) float64 { return x * x }

// OceanFraction returns the area-weighted fraction of the surface covered
// by ocean.
func (g *Tripolar) OceanFraction() float64 {
	var ocean, total float64
	for idx, a := range g.Area {
		total += a
		if g.Mask[idx] {
			ocean += a
		}
	}
	return ocean / total
}

// ActivePoints3D returns the number of wet 3-D grid points (Σ KMT) and the
// total 3-D points (NX·NY·NLevel); their ratio drives the ≈30 % resource
// saving of the non-ocean-point exclusion.
func (g *Tripolar) ActivePoints3D() (active, total int64) {
	for _, k := range g.KMT {
		active += int64(k)
	}
	return active, int64(g.NX) * int64(g.NY) * int64(g.NLevel)
}

// Index returns the flat surface index of column (i, j).
func (g *Tripolar) Index(i, j int) int { return j*g.NX + i }

// FoldPartner returns the longitude index this column exchanges with across
// the northern fold: the tripolar closure maps i ↔ NX-1-i on the top row.
func (g *Tripolar) FoldPartner(i int) int { return g.NX - 1 - i }

// Coriolis returns the Coriolis parameter f = 2Ω sin(lat) at row j.
func (g *Tripolar) Coriolis(j int) float64 {
	const omega = 7.2921e-5
	return 2 * omega * math.Sin(g.Lat[j])
}
