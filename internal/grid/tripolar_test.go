package grid

import (
	"math"
	"testing"

	"repro/internal/par"
)

func TestTripolarConstruction(t *testing.T) {
	g, err := NewTripolar(72, 36, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Lon) != 72 || len(g.Lat) != 36 || len(g.Mask) != 72*36 {
		t.Fatal("extent mismatch")
	}
	// Latitudes run south to north inside (southLat, π/2).
	for j := 1; j < g.NY; j++ {
		if g.Lat[j] <= g.Lat[j-1] {
			t.Fatal("latitudes not increasing")
		}
	}
	if g.Lat[0] < southLat || g.Lat[g.NY-1] > math.Pi/2 {
		t.Fatal("latitude out of range")
	}
	// Level depths strictly increasing, 20 of them.
	for k := 1; k < g.NLevel; k++ {
		if g.LevelDepth[k] <= g.LevelDepth[k-1] {
			t.Fatal("level depths not increasing")
		}
	}
}

func TestTripolarValidation(t *testing.T) {
	if _, err := NewTripolar(0, 10, 5); err == nil {
		t.Error("accepted zero nx")
	}
	if _, err := NewTripolar(71, 36, 20); err == nil {
		t.Error("accepted odd nx")
	}
}

func TestOceanFractionNearSeventyOnePercent(t *testing.T) {
	// §5.2.2: oceans cover approximately 71% of the surface; the analytic
	// mask must land close so the exclusion experiment saves ~30%.
	g, err := NewTripolar(360, 180, 30)
	if err != nil {
		t.Fatal(err)
	}
	frac := g.OceanFraction()
	if frac < 0.66 || frac > 0.76 {
		t.Errorf("ocean fraction = %.3f, want ~0.71", frac)
	}
}

func TestMaskConsistentWithKMTAndDepth(t *testing.T) {
	g, _ := NewTripolar(144, 72, 30)
	for idx := range g.Mask {
		if g.Mask[idx] {
			if g.Depth[idx] <= 0 || g.KMT[idx] < 1 {
				t.Fatalf("ocean point %d: depth=%v kmt=%d", idx, g.Depth[idx], g.KMT[idx])
			}
			if g.KMT[idx] > g.NLevel {
				t.Fatalf("kmt exceeds nlevel at %d", idx)
			}
		} else {
			if g.Depth[idx] != 0 || g.KMT[idx] != 0 {
				t.Fatalf("land point %d: depth=%v kmt=%d", idx, g.Depth[idx], g.KMT[idx])
			}
		}
	}
}

func TestActivePoints3DSaving(t *testing.T) {
	g, _ := NewTripolar(360, 180, 40)
	active, total := g.ActivePoints3D()
	saving := 1 - float64(active)/float64(total)
	// The 3-D saving combines the ~29% land fraction and bathymetry cut-off;
	// the paper reports ~30% resource reduction.
	if saving < 0.25 || saving > 0.45 {
		t.Errorf("3-D exclusion saving = %.3f, want 0.25–0.45", saving)
	}
}

func TestLICOMCatalogMatchesTable1(t *testing.T) {
	want := map[int][2]int{
		1:  {36000, 22018},
		2:  {18000, 11511},
		3:  {10800, 6907},
		5:  {7200, 4605},
		10: {3600, 2302},
	}
	for res, dims := range want {
		c, err := LICOMConfigForRes(res)
		if err != nil {
			t.Fatal(err)
		}
		if c.NLon != dims[0] || c.NLat != dims[1] || c.NLevel != 80 {
			t.Errorf("res %d: %+v", res, c)
		}
	}
	if _, err := LICOMConfigForRes(7); err == nil {
		t.Error("unknown resolution accepted")
	}
}

func TestCoriolisSignAndMagnitude(t *testing.T) {
	g, _ := NewTripolar(72, 36, 10)
	if g.Coriolis(0) >= 0 {
		t.Error("southern-hemisphere f not negative")
	}
	if g.Coriolis(g.NY-1) <= 0 {
		t.Error("northern f not positive")
	}
	// |f| <= 2Ω.
	for j := 0; j < g.NY; j++ {
		if math.Abs(g.Coriolis(j)) > 2*7.2921e-5+1e-12 {
			t.Fatal("f out of range")
		}
	}
}

func TestFoldPartnerInvolution(t *testing.T) {
	g, _ := NewTripolar(100, 50, 10)
	for i := 0; i < g.NX; i++ {
		if g.FoldPartner(g.FoldPartner(i)) != i {
			t.Fatalf("fold not an involution at %d", i)
		}
	}
}

func TestBlockDecompositionIndices(t *testing.T) {
	g, _ := NewTripolar(48, 24, 5)
	par.Run(4, func(c *par.Comm) {
		ct := par.NewCart(c, 2, 2, true, false)
		b, err := NewBlock(g, ct, 2)
		if err != nil {
			t.Error(err)
			return
		}
		if b.NI != 24 || b.NJ != 12 {
			t.Errorf("block %dx%d", b.NI, b.NJ)
		}
		// Global index of local origin.
		if b.GIdx(0, 0) != b.J0*48+b.I0 {
			t.Error("GIdx origin mismatch")
		}
		if b.LIdx(0, 0) != 2*b.LNI()+2 {
			t.Error("LIdx origin mismatch")
		}
	})
}

func TestBlockValidation(t *testing.T) {
	g, _ := NewTripolar(48, 24, 5)
	par.Run(4, func(c *par.Comm) {
		ct := par.NewCart(c, 4, 1, true, false)
		if _, err := NewBlock(g, ct, 0); err == nil {
			t.Error("halo 0 accepted")
		}
		if _, err := NewBlock(g, ct, 30); err == nil {
			t.Error("oversized halo accepted")
		}
	})
	par.Run(5, func(c *par.Comm) {
		ct := par.NewCart(c, 5, 1, true, false)
		if _, err := NewBlock(g, ct, 1); err == nil {
			t.Error("non-divisible layout accepted")
		}
	})
}

// haloReference fills ghost cells of a global field according to the grid's
// boundary rules, for comparison against the distributed exchange.
func globalAt(g *Tripolar, f []float64, i, j int) float64 {
	// periodic x
	i = ((i % g.NX) + g.NX) % g.NX
	if j < 0 {
		j = 0 // zero-gradient south
	}
	if j >= g.NY {
		// fold: row NY+r maps to row NY-1-r with mirrored longitude
		r := j - g.NY
		j = g.NY - 1 - r
		i = g.NX - 1 - i
	}
	return f[j*g.NX+i]
}

func TestHaloExchangeMatchesGlobalReference(t *testing.T) {
	g, err := NewTripolar(24, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	global := make([]float64, g.NX*g.NY)
	for idx := range global {
		global[idx] = float64(idx)*1.5 + 3
	}
	for _, layout := range [][2]int{{1, 1}, {2, 2}, {4, 1}, {1, 4}, {2, 3}} {
		nx, ny := layout[0], layout[1]
		par.Run(nx*ny, func(c *par.Comm) {
			ct := par.NewCart(c, nx, ny, true, false)
			b, err := NewBlock(g, ct, 1)
			if err != nil {
				t.Error(err)
				return
			}
			f := b.Alloc()
			for lj := 0; lj < b.NJ; lj++ {
				for li := 0; li < b.NI; li++ {
					f[b.LIdx(li, lj)] = global[b.GIdx(li, lj)]
				}
			}
			b.Exchange(f)
			// Every local cell including ghosts must match the reference.
			for lj := -1; lj <= b.NJ; lj++ {
				for li := -1; li <= b.NI; li++ {
					// Skip the four corners at the fold row: the fold and
					// periodic wrap interact there and the reproduction's
					// two-phase exchange defines corners via post-fold x
					// exchange, which matches the reference too.
					gi, gj := b.I0+li, b.J0+lj
					want := globalAt(g, global, gi, gj)
					got := f[(lj+1)*b.LNI()+li+1]
					if math.Abs(got-want) > 1e-12 {
						t.Errorf("layout %dx%d rank %d: ghost (%d,%d) global (%d,%d) = %v, want %v",
							nx, ny, c.Rank(), li, lj, gi, gj, got, want)
						return
					}
				}
			}
		})
	}
}

func TestGatherGlobalReassembles(t *testing.T) {
	g, _ := NewTripolar(24, 12, 3)
	par.Run(6, func(c *par.Comm) {
		ct := par.NewCart(c, 3, 2, true, false)
		b, _ := NewBlock(g, ct, 1)
		f := b.Alloc()
		for lj := 0; lj < b.NJ; lj++ {
			for li := 0; li < b.NI; li++ {
				f[b.LIdx(li, lj)] = float64(b.GIdx(li, lj))
			}
		}
		out := b.GatherGlobal(f)
		if c.Rank() == 0 {
			for idx := range out {
				if out[idx] != float64(idx) {
					t.Errorf("global[%d] = %v", idx, out[idx])
					return
				}
			}
		} else if out != nil {
			t.Error("non-root got data")
		}
	})
}
