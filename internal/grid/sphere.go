// Package grid provides the two horizontal grids of the reproduction: the
// icosahedral (cell/edge/vertex) mesh underlying the GRIST-like atmosphere
// dycore, and the tripolar-style structured latitude–longitude grid
// underlying the LICOM-like ocean and sea-ice components. It also carries
// the closed-form element-count formulas and resolution catalogs that
// regenerate Table 1 of the paper.
package grid

import "math"

// EarthRadius is the mean Earth radius in metres, used to convert unit-sphere
// geometry into physical metrics.
const EarthRadius = 6.371e6

// Vec3 is a point or direction in 3-space; mesh geometry lives on the unit
// sphere.
type Vec3 struct{ X, Y, Z float64 }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s·a.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{s * a.X, s * a.Y, s * a.Z} }

// Dot returns the inner product a·b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the vector product a × b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm returns |a|.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Normalize returns a/|a|; the zero vector is returned unchanged.
func (a Vec3) Normalize() Vec3 {
	n := a.Norm()
	if n == 0 {
		return a
	}
	return a.Scale(1 / n)
}

// GreatCircleDist returns the central angle (radians) between two unit
// vectors, numerically stable near both 0 and π.
func GreatCircleDist(a, b Vec3) float64 {
	return math.Atan2(a.Cross(b).Norm(), a.Dot(b))
}

// SphericalTriangleArea returns the area (steradians) of the triangle with
// unit-vector corners a, b, c, via the van Oosterom–Strackee formula.
func SphericalTriangleArea(a, b, c Vec3) float64 {
	num := math.Abs(a.Dot(b.Cross(c)))
	den := 1 + a.Dot(b) + b.Dot(c) + c.Dot(a)
	return 2 * math.Atan2(num, den)
}

// Circumcenter returns the unit-vector circumcenter of spherical triangle
// (a, b, c), oriented to the same hemisphere as the triangle's centroid.
func Circumcenter(a, b, c Vec3) Vec3 {
	cc := b.Sub(a).Cross(c.Sub(a))
	cc = cc.Normalize()
	centroid := a.Add(b).Add(c)
	if cc.Dot(centroid) < 0 {
		cc = cc.Scale(-1)
	}
	return cc
}

// LonLat converts a unit vector to (longitude, latitude) in radians.
func LonLat(v Vec3) (lon, lat float64) {
	lat = math.Asin(clamp(v.Z, -1, 1))
	lon = math.Atan2(v.Y, v.X)
	return
}

// FromLonLat converts (longitude, latitude) in radians to a unit vector.
func FromLonLat(lon, lat float64) Vec3 {
	cl := math.Cos(lat)
	return Vec3{cl * math.Cos(lon), cl * math.Sin(lon), math.Sin(lat)}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
