package grid

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/precision"
)

// IcosDecomp is the icosahedral-mesh analogue of the tripolar Block: a
// contiguous-range domain decomposition of the atmosphere's cells across the
// communicator, with precomputed halo adjacency and an allocation-free halo
// exchange over par point-to-point messages.
//
// Ownership is by contiguous cell range: rank r owns cells
// [Starts[r], Starts[r+1]), with Starts[r] = ⌊r·N/size⌋, so every cell is
// owned by exactly one rank and no rank holds more than ⌈N/size⌉ cells for
// any rank count, dividing or not.
//
// The stencil closure of the dycore fixes the derived sets:
//
//   - ExtCells: owned cells plus the first ring of neighbours (HaloCells) —
//     where cell-centred diagnostics (tv, phi, ke, div, θ) and the
//     redundantly-computed physics columns must be valid;
//   - CompEdges: edges with at least one owned endpoint. Adjacent ranks
//     compute these redundantly from identical inputs, which keeps the
//     overlap bit-identical without any edge-tendency exchange;
//   - ExtEdges: every edge of an ExtCell — where the velocity must be valid
//     before a substep;
//   - RecvEdges: ExtEdges \ CompEdges, received from the rank that owns the
//     edge (the owner of its first cell; CellsOnEdge is normalized c1 < c2,
//     so edge ownership is well defined and identical on every rank);
//   - CompVerts: the vertices of CompEdges. Every cell and edge their
//     stencils touch lies in ExtCells/ExtEdges, so vorticity needs no
//     exchange either;
//   - OwnEdges: edges whose first cell is owned — a partition of the edge
//     set, used for restart writes.
//
// The exchange plans are built offline and symmetrically: every rank derives
// every rank's halo from the same mesh and the same ownership rule, so the
// send and receive lists of a pair agree without any negotiation traffic
// (the MCT GSMap trick applied to the mesh halo).
type IcosDecomp struct {
	M    *IcosMesh
	comm *par.Comm

	Starts []int // len size+1; rank r owns [Starts[r], Starts[r+1])
	C0, C1 int   // this rank's owned cell range

	ExtCells  []int // owned ∪ ring-1 halo, ascending
	HaloCells []int // ring-1 halo only, ascending
	CompEdges []int // edges with ≥1 owned endpoint, ascending
	ExtEdges  []int // edges of ExtCells, ascending
	RecvEdges []int // ExtEdges \ CompEdges, ascending
	CompVerts []int // vertices of CompEdges, ascending
	OwnEdges  []int // edges with owned first cell, ascending

	inExtCell []bool
	inExtEdge []bool

	// Symmetrized peer set (ascending): the union of every rank this rank
	// exchanges cells or edges with in either direction. Each exchange call
	// sends exactly one (possibly empty) message to, and receives exactly one
	// from, every peer — the invariant that makes the two-deep parity buffer
	// pipeline safe without a barrier.
	Peers []int

	cellSend [][]int // per peer: owned cells to pack, ascending
	cellRecv [][]int // per peer: halo cells to fill, ascending
	edgeSend [][]int // per peer: computed edges to pack, ascending
	edgeRecv [][]int // per peer: stale edges to fill, ascending

	// Parity double buffers, per exchange class: an exchange alternates
	// buffer sets, and a peer is guaranteed to have drained parity-p's
	// previous message before this rank repacks it (its own call n+1 cannot
	// have completed otherwise), so steady-state exchanges allocate nothing.
	cellBuf [2][][]float64
	edgeBuf [2][][]float64
	cellPar int
	edgePar int

	// Compressed wire format state: persistent per-peer group-scaled
	// encodings under the same parity discipline as the f64 staging buffers
	// (the peer has drained parity-p's previous encoding before we re-encode
	// into it), plus one decode scratch reused across the sequential receive
	// loop. All lazily grown, zero steady-state allocations.
	wire   par.WireFormat
	cellGS [2][]*precision.GroupScaled
	edgeGS [2][]*precision.GroupScaled
	rbuf   []float64

	ownedRanges [][2]int // cached single {C0, C1-C0} run for Decomp

	obs HaloObserver
}

// IcosDecomp implements the shared Decomp contract (and EdgeDecomp for its
// edge partition), so core's restart/snapshot/audit paths need no
// mesh-specific type assertions.
var (
	_ Decomp     = (*IcosDecomp)(nil)
	_ EdgeDecomp = (*IcosDecomp)(nil)
)

// HaloObserver is the instrumentation hook of the halo exchange — the
// structural subset of obs.Observer the grid layer needs, declared locally
// to keep the dependency order (obs sits above par, beside grid).
type HaloObserver interface {
	AddCount(name string, delta int64)
}

// exchange message tags: disjoint from the tripolar Block's 1000–1004 and
// the coupler rearranger's 7100, so the concurrent schedule can run the
// atmosphere halo on the driver goroutine while the ocean goroutine drains
// its own halo traffic on the same mailboxes.
const (
	tagHaloCells = 6000
	tagHaloEdges = 6001
)

// NewIcosDecomp partitions the mesh across the communicator and precomputes
// the halo sets and symmetric exchange plans. Every rank must call it
// (collective only in the trivial sense: no traffic, identical offline
// construction).
func NewIcosDecomp(mesh *IcosMesh, comm *par.Comm) (*IcosDecomp, error) {
	size, rank := comm.Size(), comm.Rank()
	nc := mesh.NCells()
	if size > nc {
		return nil, fmt.Errorf("grid: %d ranks exceed %d cells", size, nc)
	}
	d := &IcosDecomp{M: mesh, comm: comm}
	d.Starts = make([]int, size+1)
	for r := 0; r <= size; r++ {
		d.Starts[r] = r * nc / size
	}
	d.C0, d.C1 = d.Starts[rank], d.Starts[rank+1]

	owner := d.Owner
	// Per-rank ring-1 halo cells, from one pass over the cross-owner
	// adjacencies. halo[r] is rank r's halo, identical on every rank.
	halo := make([][]int, size)
	seen := make([]int, nc) // rank+1 markers, avoids clearing between ranks
	for r := 0; r < size; r++ {
		for c := d.Starts[r]; c < d.Starts[r+1]; c++ {
			for _, nb := range mesh.CellsOnCell[c] {
				if owner(nb) != r && seen[nb] != r+1 {
					seen[nb] = r + 1
					halo[r] = append(halo[r], nb)
				}
			}
		}
	}
	for r := range halo {
		sortInts(halo[r])
	}
	d.HaloCells = halo[rank]
	d.ExtCells = mergeSorted(rangeInts(d.C0, d.C1), d.HaloCells)
	d.inExtCell = make([]bool, nc)
	for _, c := range d.ExtCells {
		d.inExtCell[c] = true
	}

	ne := mesh.NEdges()
	// Edge sets for this rank.
	inComp := make([]bool, ne)
	for c := d.C0; c < d.C1; c++ {
		for _, e := range mesh.EdgesOnCell[c] {
			inComp[e] = true
		}
	}
	d.inExtEdge = make([]bool, ne)
	for _, c := range d.ExtCells {
		for _, e := range mesh.EdgesOnCell[c] {
			d.inExtEdge[e] = true
		}
	}
	for e := 0; e < ne; e++ {
		if inComp[e] {
			d.CompEdges = append(d.CompEdges, e)
		}
		if d.inExtEdge[e] {
			d.ExtEdges = append(d.ExtEdges, e)
			if !inComp[e] {
				d.RecvEdges = append(d.RecvEdges, e)
			}
		}
		if owner(mesh.CellsOnEdge[e][0]) == rank {
			d.OwnEdges = append(d.OwnEdges, e)
		}
	}
	inCompVert := make([]bool, mesh.NVertices())
	for _, e := range d.CompEdges {
		inCompVert[mesh.VerticesOnEdge[e][0]] = true
		inCompVert[mesh.VerticesOnEdge[e][1]] = true
	}
	for v := range inCompVert {
		if inCompVert[v] {
			d.CompVerts = append(d.CompVerts, v)
		}
	}

	// Cell exchange plan. Rank s sends owned cell c to rank r exactly when
	// c ∈ halo[r]; both sides enumerate halo[r] in ascending order, so the
	// packed layouts agree.
	cellSendTo := make([][]int, size)
	cellRecvFrom := make([][]int, size)
	for r := 0; r < size; r++ {
		for _, h := range halo[r] {
			o := owner(h)
			if r == rank {
				cellRecvFrom[o] = append(cellRecvFrom[o], h)
			}
			if o == rank && r != rank {
				cellSendTo[r] = append(cellSendTo[r], h)
			}
		}
	}

	// Edge exchange plan: rank r's RecvEdges are the edges of r's ExtCells
	// with no endpoint owned by r; each is sent by the owner of its first
	// cell. Derived for every rank from the same data, so the plan is
	// symmetric by construction.
	edgeSendTo := make([][]int, size)
	edgeRecvFrom := make([][]int, size)
	extEdgeOf := make([]int, 0, len(d.ExtEdges)) // scratch, reused per rank
	inExtR := make([]int, ne)                    // rank+1 markers, avoids clearing
	for r := 0; r < size; r++ {
		extEdgeOf = extEdgeOf[:0]
		collect := func(c int) {
			for _, e := range mesh.EdgesOnCell[c] {
				if inExtR[e] != r+1 {
					inExtR[e] = r + 1
					extEdgeOf = append(extEdgeOf, e)
				}
			}
		}
		for c := d.Starts[r]; c < d.Starts[r+1]; c++ {
			collect(c)
		}
		for _, c := range halo[r] {
			collect(c)
		}
		sortInts(extEdgeOf)
		for _, e := range extEdgeOf {
			c1, c2 := mesh.CellsOnEdge[e][0], mesh.CellsOnEdge[e][1]
			if owner(c1) == r || owner(c2) == r {
				continue // r computes this edge itself
			}
			src := owner(c1)
			if r == rank {
				edgeRecvFrom[src] = append(edgeRecvFrom[src], e)
			}
			if src == rank && r != rank {
				edgeSendTo[r] = append(edgeSendTo[r], e)
			}
		}
	}

	// Symmetrize the peer set: one send and one receive per peer per
	// exchange, empty messages allowed.
	isPeer := make([]bool, size)
	for r := 0; r < size; r++ {
		if r == rank {
			continue
		}
		if len(cellSendTo[r]) > 0 || len(cellRecvFrom[r]) > 0 ||
			len(edgeSendTo[r]) > 0 || len(edgeRecvFrom[r]) > 0 {
			isPeer[r] = true
		}
	}
	// A peer in one direction must be a peer in the other: cells are
	// symmetric by adjacency, edges need the explicit union. Every rank
	// computes the same union because every list above is derived from
	// rank-independent data.
	for r := 0; r < size; r++ {
		if isPeer[r] {
			d.Peers = append(d.Peers, r)
			d.cellSend = append(d.cellSend, cellSendTo[r])
			d.cellRecv = append(d.cellRecv, cellRecvFrom[r])
			d.edgeSend = append(d.edgeSend, edgeSendTo[r])
			d.edgeRecv = append(d.edgeRecv, edgeRecvFrom[r])
		}
	}
	for pb := 0; pb < 2; pb++ {
		d.cellBuf[pb] = make([][]float64, len(d.Peers))
		d.edgeBuf[pb] = make([][]float64, len(d.Peers))
		d.cellGS[pb] = make([]*precision.GroupScaled, len(d.Peers))
		d.edgeGS[pb] = make([]*precision.GroupScaled, len(d.Peers))
	}
	d.ownedRanges = [][2]int{{d.C0, d.C1 - d.C0}}
	return d, nil
}

// Comm implements Decomp.
func (d *IcosDecomp) Comm() *par.Comm { return d.comm }

// NGlobal implements Decomp: the global cell count.
func (d *IcosDecomp) NGlobal() int { return d.M.NCells() }

// OwnedRanges implements Decomp: one contiguous {C0, C1-C0} run. The slice
// is cached; callers must not mutate it.
func (d *IcosDecomp) OwnedRanges() [][2]int { return d.ownedRanges }

// OwnedEdgeList implements EdgeDecomp: the ascending edges whose first cell
// is owned — a partition of the edge set across ranks.
func (d *IcosDecomp) OwnedEdgeList() []int { return d.OwnEdges }

// Gather implements Decomp: it assembles the owned ranges of a one-level
// global-layout cell field onto rank 0 (nil elsewhere). Because ownership is
// a single contiguous range per rank, the gathered chunks concatenate in
// rank order.
func (d *IcosDecomp) Gather(f []float64) []float64 {
	chunk := append([]float64(nil), f[d.C0:d.C1]...)
	chunks := par.Gather(d.comm, 0, chunk)
	if d.comm.Rank() != 0 {
		return nil
	}
	out := make([]float64, d.M.NCells())
	for r, ch := range chunks {
		copy(out[d.Starts[r]:d.Starts[r+1]], ch)
	}
	return out
}

// Owner returns the rank owning cell c under the contiguous-range rule.
func (d *IcosDecomp) Owner(c int) int {
	n := len(d.Starts) - 1
	return (n*(c+1) - 1) / d.M.NCells()
}

// InExt reports whether cell c is in this rank's extended (owned + halo)
// region.
func (d *IcosDecomp) InExt(c int) bool { return d.inExtCell[c] }

// InExtEdge reports whether edge e is in this rank's extended edge set.
func (d *IcosDecomp) InExtEdge(e int) bool { return d.inExtEdge[e] }

// NOwned returns the number of owned cells.
func (d *IcosDecomp) NOwned() int { return d.C1 - d.C0 }

// SetObserver attaches the halo traffic counters:
// cpl.halo.{msgs,bytes} with component="atm", plus the deprecated
// cpl.atm.halo.* aliases for one release.
func (d *IcosDecomp) SetObserver(o HaloObserver) { d.obs = o }

// SetWire selects the halo wire format. Under par.WireGS32 every halo
// message ships as a group-scaled FP32 encoding of the packed staging
// buffer (≈ 1.94× smaller); the default par.WireF64 is bit-exact. Must not
// change mid-exchange; the core layer sets it once at assembly.
func (d *IcosDecomp) SetWire(w par.WireFormat) { d.wire = w }

// Wire returns the active halo wire format.
func (d *IcosDecomp) Wire() par.WireFormat { return d.wire }

// ExchangeCells fills the ring-1 halo of a cell-centred field with nlev
// levels laid out [k*nCells + c]: each peer receives this rank's owned
// boundary cells and contributes the halo cells it owns. Zero steady-state
// allocations; safe concurrently with the ocean's halo traffic (disjoint
// tags).
func (d *IcosDecomp) ExchangeCells(f []float64, nlev int) {
	d.cellPar ^= 1
	d.exchange(f, nlev, d.M.NCells(), tagHaloCells, d.cellSend, d.cellRecv,
		d.cellBuf[d.cellPar], d.cellGS[d.cellPar])
}

// ExchangeEdges fills the stale extended edges of an edge field with nlev
// levels laid out [k*nEdges + e] from the edges' owning ranks. The slice may
// be a single-level window (nlev = 1) of a larger field, e.g. the lowest
// level after the physics' surface-drag projection.
func (d *IcosDecomp) ExchangeEdges(f []float64, nlev int) {
	d.edgePar ^= 1
	d.exchange(f, nlev, d.M.NEdges(), tagHaloEdges, d.edgeSend, d.edgeRecv,
		d.edgeBuf[d.edgePar], d.edgeGS[d.edgePar])
}

func (d *IcosDecomp) exchange(f []float64, nlev, stride, tag int, send, recv [][]int, bufs [][]float64, gsBufs []*precision.GroupScaled) {
	if len(f) < nlev*stride {
		panic(fmt.Sprintf("grid: halo exchange on %d values, want ≥ %d", len(f), nlev*stride))
	}
	var rawBytes, wireBytes int64
	for pi, p := range d.Peers {
		list := send[pi]
		need := nlev * len(list)
		buf := bufs[pi]
		if cap(buf) < need {
			buf = make([]float64, need)
			bufs[pi] = buf
		}
		buf = buf[:need]
		for k := 0; k < nlev; k++ {
			base := k * stride
			out := buf[k*len(list) : (k+1)*len(list)]
			for i, idx := range list {
				out[i] = f[base+idx]
			}
		}
		rawBytes += int64(8 * need)
		if d.wire == par.WireGS32 {
			gs := gsBufs[pi]
			if gs == nil {
				gs = &precision.GroupScaled{}
				gsBufs[pi] = gs
			}
			if err := precision.EncodeGroupScaledInto(gs, buf, par.WireGroup); err != nil {
				panic(err) // group size is a package constant; unreachable
			}
			par.SendGS(d.comm, p, tag, gs)
			wireBytes += int64(gs.Bytes())
		} else {
			par.SendF64(d.comm, p, tag, buf)
			wireBytes += int64(8 * need)
		}
	}
	for pi, p := range d.Peers {
		list := recv[pi]
		want := nlev * len(list)
		var msg []float64
		if d.wire == par.WireGS32 {
			gs, _, err := par.RecvGS(d.comm, p, tag)
			if err != nil {
				// ExchangeCells cannot return errors (the Decomp contract);
				// the typed error panics into core's stepChecked recover,
				// which converts it into a rollback-able step failure.
				panic(err)
			}
			if gs.N != want {
				panic(fmt.Sprintf("grid: halo message from rank %d has %d values, want %d", p, gs.N, want))
			}
			if cap(d.rbuf) < want {
				d.rbuf = make([]float64, want)
			}
			msg = d.rbuf[:want]
			if err := gs.DecodeInto(msg); err != nil {
				panic(err)
			}
		} else {
			m, _, err := par.RecvF64E(d.comm, p, tag)
			if err != nil {
				panic(err)
			}
			if len(m) != want {
				panic(fmt.Sprintf("grid: halo message from rank %d has %d values, want %d", p, len(m), want))
			}
			msg = m
		}
		for k := 0; k < nlev; k++ {
			base := k * stride
			in := msg[k*len(list) : (k+1)*len(list)]
			for i, idx := range list {
				f[base+idx] = in[i]
			}
		}
	}
	if d.obs != nil && len(d.Peers) > 0 {
		d.obs.AddCount(ctrHaloMsgsAtm, int64(len(d.Peers)))
		d.obs.AddCount(ctrHaloBytesAtm, wireBytes)
		// Deprecated aliases, kept one release: the pre-unification flat
		// names, so dashboards keyed on cpl.atm.halo.* keep reading.
		d.obs.AddCount("cpl.atm.halo.msgs", int64(len(d.Peers)))
		d.obs.AddCount("cpl.atm.halo.bytes", wireBytes)
		d.obs.AddCount(ctrWireRawBytes, rawBytes)
		d.obs.AddCount(ctrWireBytes, wireBytes)
	}
}

// Unified per-component halo traffic counter names, in obs.Labeled's
// canonical labeled form (spelled literally here: grid sits beside obs in
// the dependency order and only sees the HaloObserver subset).
const (
	ctrHaloMsgsAtm  = `cpl.halo.msgs{component="atm"}`
	ctrHaloBytesAtm = `cpl.halo.bytes{component="atm"}`
	ctrHaloMsgsOcn  = `cpl.halo.msgs{component="ocn"}`
	ctrHaloBytesOcn = `cpl.halo.bytes{component="ocn"}`
)

// Wire-compression accounting: every compressed-capable path (both halo
// exchanges, the coupler rearranger) adds the payload size it would have
// shipped raw to cpl.wire.raw.bytes and the size it actually shipped to
// cpl.wire.bytes; core's step loop publishes raw/actual as the
// cpl.wire.ratio gauge. Under WireF64 the two advance in lockstep (ratio 1).
const (
	ctrWireRawBytes = "cpl.wire.raw.bytes"
	ctrWireBytes    = "cpl.wire.bytes"
)

// rangeInts returns [lo, hi) as a slice.
func rangeInts(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// mergeSorted merges two ascending, disjoint int slices.
func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func sortInts(s []int) {
	// Insertion sort: the lists are short (ring-1 halos) and mostly sorted
	// (generated in ascending owner-cell order).
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
