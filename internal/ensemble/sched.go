package ensemble

import "sync"

// Scheduler names accepted by Config.Sched.
const (
	SchedSteal  = "steal"  // shared queue: any free group takes the next member
	SchedStatic = "static" // members pinned to their home group (idx mod groups)
)

// The dispatch path is the ensemble's hot loop under faults: a slowed group
// cycles members back through the queue while healthy groups drain it, so
// next/requeue/finish must not allocate in steady state (BENCH_5's alloc
// audit pins this). Both schedulers are a fixed-capacity ring of member
// indices under a mutex+cond — no channels (channel ops allocate sudog on
// contention), no interface boxing, no fmt.

// memberQueue is a fixed-capacity FIFO ring of member indices.
type memberQueue struct {
	mu     sync.Mutex
	cond   sync.Cond
	buf    []int
	head   int
	n      int
	closed bool
}

func newMemberQueue(capacity int) *memberQueue {
	q := &memberQueue{buf: make([]int, capacity)}
	q.cond.L = &q.mu
	return q
}

func (q *memberQueue) push(m int) {
	q.mu.Lock()
	if q.n == len(q.buf) {
		q.mu.Unlock()
		panic("ensemble: member queue overflow")
	}
	q.buf[(q.head+q.n)%len(q.buf)] = m
	q.n++
	q.cond.Signal()
	q.mu.Unlock()
}

// pop blocks until a member is available or the queue closes; ok=false means
// closed-and-drained (the group supervisor's exit signal).
func (q *memberQueue) pop() (m int, ok bool) {
	q.mu.Lock()
	for q.n == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.n == 0 {
		q.mu.Unlock()
		return 0, false
	}
	m = q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.mu.Unlock()
	return m, true
}

func (q *memberQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// scheduler hands members to group supervisors. next blocks until work is
// available (ok=false: all members terminal, supervisor exits); requeue puts
// a failed member back for another attempt; finish marks one member terminal
// (completed or quarantined) and unblocks everyone once all are.
type scheduler interface {
	next(group int) (member int, stolen bool, ok bool)
	requeue(member int)
	finish()
}

// terminalCount closes the queues once every member has reached a terminal
// state — requeued members keep the count open, so supervisors never exit
// while retries remain.
type terminalCount struct {
	mu      sync.Mutex
	left    int
	onEmpty func()
}

func (t *terminalCount) finish() {
	t.mu.Lock()
	t.left--
	done := t.left == 0
	t.mu.Unlock()
	if done {
		t.onEmpty()
	}
}

// stealSched: one shared queue. A group finishing early simply keeps
// popping — members whose home group is busy are "stolen" by whoever is
// free, which is what keeps the pool saturated under stragglers.
type stealSched struct {
	q      *memberQueue
	groups int
	tc     terminalCount
}

func newStealSched(members, groups int) *stealSched {
	s := &stealSched{q: newMemberQueue(members), groups: groups}
	s.tc.left = members
	s.tc.onEmpty = s.q.close
	for m := 0; m < members; m++ {
		s.q.push(m)
	}
	return s
}

func (s *stealSched) next(group int) (int, bool, bool) {
	m, ok := s.q.pop()
	if !ok {
		return 0, false, false
	}
	return m, m%s.groups != group, true
}

func (s *stealSched) requeue(m int) { s.q.push(m) }
func (s *stealSched) finish()       { s.tc.finish() }

// staticSched: the baseline partitioning — member i belongs to group
// i mod groups and nobody else may run it, so a slow group strands its
// share of the ensemble while the others idle. BENCH_5 measures exactly
// that gap.
type staticSched struct {
	qs []*memberQueue
	tc terminalCount
}

func newStaticSched(members, groups int) *staticSched {
	s := &staticSched{qs: make([]*memberQueue, groups)}
	for g := range s.qs {
		s.qs[g] = newMemberQueue(members)
	}
	s.tc.left = members
	s.tc.onEmpty = func() {
		for _, q := range s.qs {
			q.close()
		}
	}
	for m := 0; m < members; m++ {
		s.qs[m%groups].push(m)
	}
	return s
}

func (s *staticSched) next(group int) (int, bool, bool) {
	m, ok := s.qs[group].pop()
	return m, false, ok
}

func (s *staticSched) requeue(m int) { s.qs[m%len(s.qs)].push(m) }
func (s *staticSched) finish()       { s.tc.finish() }

func newScheduler(kind string, members, groups int) scheduler {
	if kind == SchedStatic {
		return newStaticSched(members, groups)
	}
	return newStealSched(members, groups)
}

// BenchScheduler exposes the dispatch-path primitives to the external alloc
// audit (cmd/bench5) without exporting the scheduler internals.
type BenchScheduler struct{ s scheduler }

func NewSchedulerForBench(members, groups int) BenchScheduler {
	return BenchScheduler{s: newStealSched(members, groups)}
}

func (b BenchScheduler) Next(group int) (member int, stolen, ok bool) { return b.s.next(group) }
func (b BenchScheduler) Requeue(member int)                           { b.s.requeue(member) }
