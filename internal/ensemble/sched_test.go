package ensemble

import (
	"sync"
	"testing"

	"repro/internal/fault"
)

// Both schedulers hand every member out exactly once and report terminal
// drain.
func TestSchedulersDeliverAllMembers(t *testing.T) {
	for _, kind := range []string{SchedSteal, SchedStatic} {
		s := newScheduler(kind, 8, 3)
		var mu sync.Mutex
		seen := make(map[int]int)
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for {
					m, _, ok := s.next(g)
					if !ok {
						return
					}
					mu.Lock()
					seen[m]++
					mu.Unlock()
					s.finish()
				}
			}(g)
		}
		wg.Wait()
		if len(seen) != 8 {
			t.Fatalf("%s: delivered %d members, want 8", kind, len(seen))
		}
		for m, n := range seen {
			if n != 1 {
				t.Fatalf("%s: member %d delivered %d times", kind, m, n)
			}
		}
	}
}

// A requeued member goes back to its home queue under static scheduling and
// counts as stolen under work stealing only when a foreign group takes it.
func TestSchedulerRequeueAndSteal(t *testing.T) {
	st := newStaticSched(4, 2)
	m, _, ok := st.next(0)
	if !ok || m%2 != 0 {
		t.Fatalf("static group 0 got member %d", m)
	}
	st.requeue(m)
	if m2, _, _ := st.next(0); m2 != 2 {
		t.Fatalf("static pop after requeue = %d, want FIFO order 2", m2)
	}

	ws := newStealSched(4, 2)
	if m, stolen, _ := ws.next(0); m != 0 || stolen {
		t.Fatalf("first steal pop = (%d, %v), want home member 0", m, stolen)
	}
	if m, stolen, _ := ws.next(0); m != 1 || !stolen {
		t.Fatalf("second steal pop = (%d, %v), want stolen member 1", m, stolen)
	}
}

// The dispatch path must not allocate in steady state: a slow group cycling
// members through next/requeue and the disarmed fault hook are the ops the
// BENCH_5 alloc audit gates.
func TestDispatchPathDoesNotAllocate(t *testing.T) {
	fault.Disarm()
	s := newStealSched(4, 2)
	if n := testing.AllocsPerRun(2000, func() {
		m, _, ok := s.next(0)
		if !ok {
			t.Fatal("queue closed early")
		}
		s.requeue(m)
	}); n != 0 {
		t.Errorf("steal next/requeue allocates %.1f per op", n)
	}
	st := newStaticSched(4, 2)
	if n := testing.AllocsPerRun(2000, func() {
		m, _, ok := st.next(0)
		if !ok {
			t.Fatal("queue closed early")
		}
		st.requeue(m)
	}); n != 0 {
		t.Errorf("static next/requeue allocates %.1f per op", n)
	}
	if n := testing.AllocsPerRun(2000, func() {
		if f := fault.PointScoped("ens.g00", "ens.dispatch", 0); f != nil {
			t.Fatal("disarmed hook fired")
		}
	}); n != 0 {
		t.Errorf("disarmed dispatch hook allocates %.1f per op", n)
	}
}
