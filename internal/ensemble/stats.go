package ensemble

import (
	"math"

	"repro/internal/obs"
)

// Ensemble-spread statistics (the Fig 7-style product): the mean and spread
// across completed members of the forecast-relevant scalars. Spread is the
// sample standard deviation — the operational "ensemble spread" that
// brackets forecast uncertainty.
type SpreadStats struct {
	N int // completed members contributing

	TrackErrMeanKm, TrackErrSpreadKm float64
	MinPsMeanPa, MinPsSpreadPa       float64
	MaxWindMeanMS, MaxWindSpreadMS   float64

	// Conservation-audit residuals aggregated across members: a member whose
	// budgets drift is visible here even when its track looks fine.
	HeatResidMean, HeatResidMax float64
	FWResidMean, FWResidMax     float64
}

func computeSpread(members []MemberResult) SpreadStats {
	var s SpreadStats
	var te, ps, w []float64
	for i := range members {
		m := &members[i]
		if !m.Completed {
			continue
		}
		s.N++
		te = append(te, m.TrackErrKm)
		ps = append(ps, m.MinPsPa)
		w = append(w, m.MaxWindMS)
		s.HeatResidMean += m.MaxHeatResid
		s.FWResidMean += m.MaxFWResid
		s.HeatResidMax = math.Max(s.HeatResidMax, m.MaxHeatResid)
		s.FWResidMax = math.Max(s.FWResidMax, m.MaxFWResid)
	}
	if s.N == 0 {
		return s
	}
	s.HeatResidMean /= float64(s.N)
	s.FWResidMean /= float64(s.N)
	s.TrackErrMeanKm, s.TrackErrSpreadKm = meanSpread(te)
	s.MinPsMeanPa, s.MinPsSpreadPa = meanSpread(ps)
	s.MaxWindMeanMS, s.MaxWindSpreadMS = meanSpread(w)
	return s
}

func meanSpread(xs []float64) (mean, spread float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// publish streams the ensemble product through obs: aggregate ens.* gauges
// plus one labeled series per member, so a dashboard can fan the spread back
// out to the member that caused it.
func publish(o obs.Observer, r *Report) {
	s := r.Spread
	o.SetGauge("ens.spread.track_err_km.mean", s.TrackErrMeanKm)
	o.SetGauge("ens.spread.track_err_km.sigma", s.TrackErrSpreadKm)
	o.SetGauge("ens.spread.min_ps_pa.mean", s.MinPsMeanPa)
	o.SetGauge("ens.spread.min_ps_pa.sigma", s.MinPsSpreadPa)
	o.SetGauge("ens.spread.max_wind_ms.mean", s.MaxWindMeanMS)
	o.SetGauge("ens.spread.max_wind_ms.sigma", s.MaxWindSpreadMS)
	o.SetGauge("ens.budget.heat_resid.max", s.HeatResidMax)
	o.SetGauge("ens.budget.heat_resid.mean", s.HeatResidMean)
	o.SetGauge("ens.budget.fw_resid.max", s.FWResidMax)
	o.SetGauge("ens.budget.fw_resid.mean", s.FWResidMean)
	o.SetGauge("ens.sched.steals", float64(r.Steals))
	for i := range r.Members {
		m := &r.Members[i]
		if !m.Completed {
			continue
		}
		name := m.Spec.Name
		o.SetGauge(obs.Labeled("ens.member.track_err_km", "member", name), m.TrackErrKm)
		o.SetGauge(obs.Labeled("ens.member.min_ps_pa", "member", name), m.MinPsPa)
		o.SetGauge(obs.Labeled("ens.member.max_wind_ms", "member", name), m.MaxWindMS)
		o.SetGauge(obs.Labeled("ens.member.heat_resid", "member", name), m.MaxHeatResid)
		o.SetGauge(obs.Labeled("ens.member.attempts", "member", name), float64(m.Attempts))
	}
}
