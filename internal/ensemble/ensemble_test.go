package ensemble

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/typhoon"
)

func baseConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Label:           "25v10",
		Members:         2,
		Groups:          2,
		Ranks:           1,
		Hours:           1, // 7 coupling steps at 180/day
		CheckpointEvery: 2,
		Retries:         2,
		MaxAttempts:     2,
		Backoff:         time.Millisecond,
		Seed:            42,
		BaseDir:         t.TempDir(),
		Obs:             obs.New(0, nil),
	}
}

func counterVal(o obs.Observer, name string) int64 {
	for _, p := range o.Snapshot() {
		if p.Name == name && p.Kind == obs.KindCounter {
			return p.Count
		}
	}
	return 0
}

// The acceptance scenario: one member carries a permanent fault and is
// quarantined after its attempts are exhausted, while the ensemble completes
// the remaining members in degraded mode under the quorum. The report lists
// the quarantined member's failure chain and the ens.* counters match.
func TestEnsembleDegradedCompletion(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Members = 4
	cfg.Quorum = 3
	cfg.MemberFaults = map[int]string{1: "nan@esm.step:1:repeat"}

	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("degraded ensemble returned an error: %v\n%s", err, rep)
	}
	if rep.Completed != 3 || rep.Quarantined != 1 {
		t.Fatalf("completed=%d quarantined=%d, want 3 and 1\n%s", rep.Completed, rep.Quarantined, rep)
	}
	if !rep.QuorumMet || !rep.Degraded {
		t.Fatalf("quorumMet=%v degraded=%v, want true/true", rep.QuorumMet, rep.Degraded)
	}
	q := rep.Members[1]
	if !q.Quarantined || q.Completed {
		t.Fatalf("member 1 should be quarantined: %+v", q)
	}
	if q.Attempts != cfg.MaxAttempts || len(q.FailureChain) != cfg.MaxAttempts {
		t.Fatalf("quarantine evidence: attempts=%d chain=%v, want %d entries", q.Attempts, q.FailureChain, cfg.MaxAttempts)
	}
	for _, f := range q.FailureChain {
		if !strings.Contains(f, "giving up") {
			t.Errorf("failure chain entry %q does not carry the supervisor's verdict", f)
		}
	}
	for _, i := range []int{0, 2, 3} {
		m := rep.Members[i]
		if !m.Completed || m.Steps != 7 {
			t.Fatalf("member %d: %+v, want completed with 7 steps", i, m)
		}
	}

	if n := counterVal(cfg.Obs, "ens.members.completed"); n != 3 {
		t.Errorf("ens.members.completed = %d, want 3", n)
	}
	if n := counterVal(cfg.Obs, "ens.members.quarantined"); n != 1 {
		t.Errorf("ens.members.quarantined = %d, want 1", n)
	}
	if n := counterVal(cfg.Obs, "ens.retries.total"); n != 1 {
		t.Errorf("ens.retries.total = %d, want 1", n)
	}
	// The member label follows the fault and the recovery machinery.
	if n := counterVal(cfg.Obs, obs.Labeled("fault.injected.nan", "member", "m01")); n == 0 {
		t.Error("no member-labeled fault.injected.nan counter")
	}
	if n := counterVal(cfg.Obs, obs.Labeled("recovery.giveups", "member", "m01")); n != 2 {
		t.Errorf("labeled recovery.giveups = %d, want one per attempt", n)
	}
}

// A transient (one-shot) fault is absorbed in place by the member's own
// RunResilient supervisor — the member is NOT rescheduled, and its final
// state is bit-for-bit the state of a fault-free run of the same member.
func TestEnsembleTransientRecoversInPlace(t *testing.T) {
	clean := baseConfig(t)
	crep, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}

	faulted := baseConfig(t)
	faulted.MemberFaults = map[int]string{1: "nan@esm.step:5"}
	frep, err := Run(faulted)
	if err != nil {
		t.Fatal(err)
	}

	m := frep.Members[1]
	if !m.Completed || m.Attempts != 1 {
		t.Fatalf("transient fault cost the member a reschedule: %+v", m)
	}
	if m.Rollbacks < 1 {
		t.Fatalf("no in-place rollback recorded: %+v", m)
	}
	for i := range frep.Members {
		if frep.Members[i].StateSum != crep.Members[i].StateSum {
			t.Fatalf("member %d state diverged after in-place recovery: %x vs %x",
				i, frep.Members[i].StateSum, crep.Members[i].StateSum)
		}
	}
	if n := counterVal(faulted.Obs, obs.Labeled("recovery.restores", "member", "m01")); n < 1 {
		t.Error("no member-labeled recovery.restores counter")
	}
}

// Below quorum, Run reports the failure as an error while still returning
// the full report.
func TestEnsembleQuorumFailure(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Quorum = 2
	cfg.MemberFaults = map[int]string{1: "nan@esm.step:1:repeat"}

	rep, err := Run(cfg)
	if err == nil {
		t.Fatalf("missed quorum not surfaced\n%s", rep)
	}
	if rep == nil || rep.Completed != 1 || rep.QuorumMet {
		t.Fatalf("report %+v, want 1 completed and quorum not met", rep)
	}
}

// A straggler attempt — a stall fault holding the member's world past the
// wall-clock deadline — is fenced and converted into a reschedulable
// failure; the retry completes because the one-shot stall never refires.
func TestEnsembleDeadlineReschedulesStraggler(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Ranks = 2
	cfg.Hours = 0.25 // one coupling step: the healthy path stays far inside the fence
	// Generous fence: healthy attempts must finish well inside it even under
	// the race detector's slowdown; the stalled attempt never finishes at all.
	cfg.Deadline = 8 * time.Second
	// The stall drops a coupling message after sleeping, deadlocking the
	// world: without the fence this member would hang forever.
	cfg.MemberFaults = map[int]string{1: "stall@par.send:1:delay=10ms"}

	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("ensemble failed: %v\n%s", err, rep)
	}
	m := rep.Members[1]
	if !m.Completed || m.Attempts != 2 {
		t.Fatalf("straggler member: %+v, want completion on attempt 2", m)
	}
	if len(m.FailureChain) != 1 || !strings.Contains(m.FailureChain[0], "deadline") {
		t.Fatalf("failure chain %v, want the fencing verdict", m.FailureChain)
	}
	if n := counterVal(cfg.Obs, "ens.deadline.expired"); n != 1 {
		t.Errorf("ens.deadline.expired = %d, want 1", n)
	}
}

// The spread product covers completed members only and publishes the ens.*
// gauges.
func TestEnsembleSpreadStats(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Members = 3
	cfg.Perturb.PosDeg = 0.5
	cfg.Perturb.DeltaPsFrac = 0.2
	cfg.PhysFrac = 0.1

	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spread.N != 3 {
		t.Fatalf("spread over %d members, want 3", rep.Spread.N)
	}
	if rep.Spread.MinPsSpreadPa <= 0 {
		t.Errorf("perturbed members show zero pressure spread: %+v", rep.Spread)
	}
	found := false
	for _, p := range cfg.Obs.Snapshot() {
		if p.Name == "ens.spread.min_ps_pa.sigma" && p.Kind == obs.KindGauge {
			found = p.Value > 0
		}
	}
	if !found {
		t.Error("ens.spread.min_ps_pa.sigma gauge missing or zero")
	}
	// Member 0 is the control: unperturbed vortex, unit physics scales.
	if s := rep.Members[0].Spec; s.Vortex != typhoon.DoksuriSeed() || s.KhScale != 1 {
		t.Errorf("control member was perturbed: %+v", s)
	}
}
