package ensemble

import (
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pp"
	"repro/internal/typhoon"
)

// ensembleStart anchors every member at the Doksuri genesis time, matching
// the best track's first fix.
func ensembleStart() time.Time { return time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC) }

// Run executes the ensemble over the pool and blocks until every member is
// terminal (completed or quarantined). err is non-nil only for configuration
// problems or a missed quorum — individual member failures are data, not
// errors, and live in the Report either way.
func Run(cfg Config) (*Report, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	coreCfg, err := core.ConfigForLabel(cfg.Label)
	if err != nil {
		return nil, err
	}
	specs := BuildMembers(cfg)
	plans := make([]*fault.Plan, len(specs))
	for i, s := range specs {
		if plans[i], err = planFor(cfg, s); err != nil {
			return nil, err
		}
	}
	// Group-level straggler injection: the plan armed under the group's
	// dispatch scope makes that group slow to pick up work — the harness the
	// work-stealing benchmark (and nothing in a production run) uses.
	groupScopes := make([]string, cfg.Groups)
	for g := range groupScopes {
		groupScopes[g] = fmt.Sprintf("ens.g%02d", g)
	}
	for g, spec := range cfg.GroupFaults {
		if g < 0 || g >= cfg.Groups {
			return nil, fmt.Errorf("ensemble: GroupFaults index %d outside [0, %d)", g, cfg.Groups)
		}
		p, perr := fault.Parse(spec, cfg.Seed*13+int64(g))
		if perr != nil {
			return nil, fmt.Errorf("ensemble: group %d fault spec: %w", g, perr)
		}
		fault.ArmScoped(groupScopes[g], p)
		defer fault.DisarmScoped(groupScopes[g])
	}

	sched := newScheduler(cfg.Sched, cfg.Members, cfg.Groups)
	results := make([]MemberResult, len(specs))
	for i := range results {
		results[i].Spec = specs[i]
	}
	var steals atomic.Int64

	// Group supervisors: each loops picking members off the scheduler and
	// driving the member's attempt; a member is owned by exactly one group
	// at a time (queue hand-off is the synchronization), so its result slot
	// needs no lock.
	var wg sync.WaitGroup
	for g := 0; g < cfg.Groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				// The injectable dispatch point; one atomic load when no
				// group plan is armed.
				if f := fault.PointScoped(groupScopes[g], "ens.dispatch", g); f != nil {
					f.Sleep()
				}
				m, stolen, ok := sched.next(g)
				if !ok {
					return
				}
				if stolen {
					steals.Add(1)
				}
				res := &results[m]
				res.Attempts++
				res.Group = g
				cfg.Obs.AddCount("ens.attempts.total", 1)
				out := runAttempt(cfg, coreCfg, specs[m], plans[m], res.Attempts, g)
				res.Steps, res.Checkpoints = out.steps, out.checkpoints
				res.Rollbacks += out.rollbacks
				if out.err == nil {
					res.Completed = true
					res.Fixes = out.fixes
					res.TrackErrKm = out.trackErr
					res.MinPsPa = out.minPs
					res.MaxWindMS = out.maxWind
					res.MaxHeatResid = out.heatResid
					res.MaxFWResid = out.fwResid
					res.StateSum = out.stateSum
					cfg.Obs.AddCount("ens.members.completed", 1)
					sched.finish()
					continue
				}
				res.FailureChain = append(res.FailureChain,
					fmt.Sprintf("a%d on g%d: %v", res.Attempts, g, out.err))
				if out.deadline {
					cfg.Obs.AddCount("ens.deadline.expired", 1)
				}
				if res.Attempts >= cfg.MaxAttempts {
					res.Quarantined = true
					cfg.Obs.AddCount("ens.members.quarantined", 1)
					sched.finish()
					continue
				}
				cfg.Obs.AddCount("ens.retries.total", 1)
				sched.requeue(m)
			}
		}(g)
	}
	wg.Wait()

	rep := &Report{Members: results, Steals: int(steals.Load())}
	for i := range results {
		if results[i].Completed {
			rep.Completed++
		}
		if results[i].Quarantined {
			rep.Quarantined++
		}
	}
	rep.QuorumMet = rep.Completed >= cfg.Quorum
	rep.Degraded = rep.QuorumMet && rep.Completed < cfg.Members
	rep.Spread = computeSpread(results)
	publish(cfg.Obs, rep)
	if !rep.QuorumMet {
		return rep, fmt.Errorf("ensemble: quorum failed — %d of %d members completed, need %d",
			rep.Completed, cfg.Members, cfg.Quorum)
	}
	return rep, nil
}

// attemptOut is what one attempt hands back to its group supervisor.
type attemptOut struct {
	err      error
	deadline bool // err was the wall-clock fence, not a member failure

	steps, checkpoints, rollbacks int

	fixes                    []typhoon.Fix
	trackErr, minPs, maxWind float64
	heatResid, fwResid       float64
	stateSum                 uint64
}

// runAttempt launches one member attempt as its own par world and supervises
// it against the wall-clock deadline. The world name carries both the member
// and the attempt ("m03#a2"): it scopes the member's fault plan, labels
// par timeouts, and — because each attempt's name and restart directory are
// unique — fences a deadline-expired attempt completely. Go cannot kill the
// zombie world's goroutines, so they are deliberately leaked: their scoped
// plan is disarmed, their restart set is in a directory no retry reads, and
// their result lands in a buffered channel nobody receives from.
func runAttempt(cfg Config, coreCfg core.Config, spec MemberSpec, plan *fault.Plan, attempt, group int) *attemptOut {
	world := fmt.Sprintf("%s#a%d", spec.Name, attempt)
	dir := filepath.Join(cfg.BaseDir, spec.Name, fmt.Sprintf("a%d", attempt))
	if plan != nil {
		fault.ArmScoped(world, plan)
		defer fault.DisarmScoped(world)
	}

	ch := make(chan *attemptOut, 1)
	go func() {
		out := &attemptOut{}
		par.RunNamed(cfg.Ranks, world, func(c *par.Comm) {
			mcfg := coreCfg
			mcfg.AtmCfg.Kh *= spec.KhScale
			mcfg.AtmCfg.KhMomentum *= spec.KhMomScale
			start := ensembleStart()
			stop := start.Add(time.Duration(cfg.Hours * float64(time.Hour)))
			ob := obs.Observer(obs.Nop{})
			if c.Rank() == 0 {
				// Counters are concurrency-safe on the shared ensemble
				// observer; only rank 0 reports, so member counts are not
				// multiplied by the world size.
				ob = cfg.Obs
			}
			mk := func() (*core.ESM, error) {
				e, err := core.NewWithOptions(mcfg, c,
					core.WithInterval(start, stop),
					core.WithSpace(pp.Serial{}),
					core.WithObserver(ob),
					core.WithRemap(core.RemapCons),
					core.WithAudit(true))
				if err != nil {
					return nil, err
				}
				if err := typhoon.Seed(e.Atm, spec.Vortex); err != nil {
					return nil, err
				}
				return e, nil
			}

			var fixes []typhoon.Fix
			prev := typhoon.Fix{LonDeg: spec.Vortex.LonDeg, LatDeg: spec.Vortex.LatDeg}
			record := func(e *core.ESM, ps, u, v []float64) {
				at := e.Clock.Current
				fix, ferr := typhoon.FindCenterNearFields(e.Atm.Mesh, ps, u, v, at, prev,
					cfg.TrackWindowKm, cfg.TrackSearchKm)
				if ferr != nil {
					return
				}
				// A rollback replays steps: drop fixes at or after this time
				// before appending, so the series stays strictly increasing.
				for len(fixes) > 0 && !fixes[len(fixes)-1].Time.Before(at) {
					fixes = fixes[:len(fixes)-1]
				}
				fixes = append(fixes, fix)
				prev = fix
			}
			rc := core.ResilientConfig{
				Days:            cfg.Hours / 24,
				CheckpointEvery: cfg.CheckpointEvery,
				MaxRetries:      cfg.Retries,
				Dir:             dir,
				Backoff:         cfg.Backoff,
				Seed:            cfg.Seed*8191 + int64(spec.Index)*131 + int64(attempt),
				Member:          spec.Name,
				OnCheckpoint: func(e *core.ESM) {
					// Collective gathers on every rank; tracking on rank 0.
					ps := e.GlobalAtmPs()
					u, v := e.GlobalWind10m()
					if c.Rank() == 0 {
						record(e, ps, u, v)
					}
				},
			}
			e, rrep, rerr := core.RunResilient(mk, rc)
			var finalPs, fu, fv []float64
			if rerr == nil {
				finalPs = e.GlobalAtmPs()
				fu, fv = e.GlobalWind10m()
			}
			if c.Rank() != 0 {
				return
			}
			if rrep != nil {
				out.steps, out.checkpoints, out.rollbacks = rrep.Steps, rrep.Checkpoints, len(rrep.Recoveries)
			}
			out.err = rerr
			if rerr != nil {
				return
			}
			record(e, finalPs, fu, fv)
			out.fixes = fixes
			if te, terr := typhoon.TrackError(fixes, typhoon.BestTrackDoksuri()); terr == nil {
				out.trackErr = te
			}
			out.minPs = math.Inf(1)
			for i := range finalPs {
				out.minPs = math.Min(out.minPs, finalPs[i])
				out.maxWind = math.Max(out.maxWind, math.Hypot(fu[i], fv[i]))
			}
			s := e.Budget().Summary()
			out.heatResid, out.fwResid = s.MaxHeatResid, s.MaxFWResid
			out.stateSum = stateSum(finalPs, fu, fv)
		})
		ch <- out
	}()

	if cfg.Deadline <= 0 {
		return <-ch
	}
	timer := time.NewTimer(cfg.Deadline)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out
	case <-timer.C:
		return &attemptOut{
			err:      fmt.Errorf("ensemble: %s exceeded the %v wall-clock deadline (fenced as a straggler)", world, cfg.Deadline),
			deadline: true,
		}
	}
}

// stateSum digests the assembled global surface fields (FNV-1a over the
// float bit patterns) — the member's bit-for-bit identity.
func stateSum(fields ...[]float64) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, f := range fields {
		for _, v := range f {
			b := math.Float64bits(v)
			for s := 0; s < 64; s += 8 {
				h ^= (b >> s) & 0xff
				h *= prime
			}
		}
	}
	return h
}
