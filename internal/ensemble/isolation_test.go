package ensemble

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/pp"
	"repro/internal/typhoon"
)

// Two par.Worlds stepping concurrently (the situation every ensemble run
// creates) must not share any state: run two members side by side under
// -race and pin that each produces exactly the state it produces alone.
func TestTwoWorldsStepConcurrently(t *testing.T) {
	cfg, err := core.ConfigForLabel("25v10")
	if err != nil {
		t.Fatal(err)
	}
	start := ensembleStart()
	runWorld := func(name string, vortex typhoon.SeedConfig) uint64 {
		var sum uint64
		par.RunNamed(2, name, func(c *par.Comm) {
			e, err := core.NewWithOptions(cfg, c,
				core.WithInterval(start, start.Add(24*time.Hour)),
				core.WithSpace(pp.Serial{}))
			if err != nil {
				t.Error(err)
				return
			}
			if err := typhoon.Seed(e.Atm, vortex); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 6; i++ {
				e.Step()
			}
			ps := e.GlobalAtmPs()
			u, v := e.GlobalWind10m()
			if c.Rank() == 0 {
				sum = stateSum(ps, u, v)
			}
		})
		return sum
	}

	va := typhoon.DoksuriSeed()
	vb := typhoon.DefaultPerturbation().Apply(va, 99)

	// Solo references.
	refA := runWorld("solo-a", va)
	refB := runWorld("solo-b", vb)

	// The same two members concurrently, several times over to shake out
	// scheduling interleavings under -race.
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		var gotA, gotB uint64
		wg.Add(2)
		go func() { defer wg.Done(); gotA = runWorld("conc-a", va) }()
		go func() { defer wg.Done(); gotB = runWorld("conc-b", vb) }()
		wg.Wait()
		if gotA != refA || gotB != refB {
			t.Fatalf("round %d: concurrent worlds diverged from solo runs: a %x/%x, b %x/%x",
				round, gotA, refA, gotB, refB)
		}
	}
}

// Member i's result is a function of its spec alone: the same ensemble run
// over a different pool shape and scheduler yields bit-for-bit identical
// per-member states — scheduling and work stealing are invisible to the
// science.
func TestMemberResultsInvariantAcrossPools(t *testing.T) {
	mk := func(groups int, sched string) Config {
		return Config{
			Label: "25v10", Members: 3, Groups: groups, Ranks: 1,
			Hours: 1, CheckpointEvery: 3, Retries: 2, MaxAttempts: 2,
			Backoff: time.Millisecond, Seed: 7, Sched: sched,
			Perturb:  typhoon.DefaultPerturbation(),
			PhysFrac: 0.1,
			BaseDir:  t.TempDir(),
		}
	}
	ref, err := Run(mk(1, SchedStatic))
	if err != nil {
		t.Fatal(err)
	}
	for _, alt := range []Config{mk(2, SchedSteal), mk(3, SchedSteal), mk(2, SchedStatic)} {
		got, err := Run(alt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Members {
			r, g := ref.Members[i], got.Members[i]
			if r.StateSum != g.StateSum {
				t.Fatalf("groups=%d sched=%s: member %d state %x differs from reference %x",
					alt.Groups, alt.Sched, i, g.StateSum, r.StateSum)
			}
			if r.TrackErrKm != g.TrackErrKm || r.MinPsPa != g.MinPsPa {
				t.Fatalf("groups=%d sched=%s: member %d diagnostics differ: %+v vs %+v",
					alt.Groups, alt.Sched, i, g, r)
			}
		}
	}
}
