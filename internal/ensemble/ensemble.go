// Package ensemble is the fan-out orchestrator of the paper's forecast
// experiment (§7.1 widened to operational practice): N perturbed copies of
// the flagship Doksuri scenario run concurrently over a shared pool of rank
// groups, each member under its own resilient supervisor, so the ensemble
// as a whole survives what single runs cannot — a member that dies
// permanently is quarantined and the ensemble completes in degraded mode
// under a quorum, while transient faults are absorbed in place by each
// member's checkpoint/rollback supervisor.
//
// The supervision tree is three layers:
//
//	scheduler (work-stealing or static)        — which member runs where
//	  └─ member supervisor (attempts loop)     — retry, deadline, quarantine
//	       └─ core.RunResilient                — checkpoint, rollback, health
//
// Fault isolation between members rides on the scoped fault-plan registry
// (fault.ArmScoped) keyed by each attempt's par.RunNamed world name: member
// i's injected faults are invisible to member j, and a fenced (deadline-
// expired) attempt's plan cannot leak into the retry.
package ensemble

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/typhoon"
)

// Config parameterizes an ensemble run.
type Config struct {
	Label   string  // coupled configuration label, e.g. "25v10"
	Members int     // ensemble size N (member 0 is the unperturbed control)
	Groups  int     // rank groups in the shared pool
	Ranks   int     // ranks per group (each member world runs this wide)
	Hours   float64 // simulated hours per member

	// Quorum is the minimum number of completed members for the ensemble to
	// count as successful. Completed < Members but ≥ Quorum is a degraded
	// completion; < Quorum is an ensemble failure.
	Quorum int

	// MaxAttempts bounds the scheduler-level retries per member (distinct
	// from RunResilient's in-place rollbacks): a member whose attempts are
	// exhausted is quarantined, not retried forever.
	MaxAttempts int

	CheckpointEvery int           // coupling steps between member checkpoints
	Retries         int           // RunResilient MaxRetries within one attempt
	Backoff         time.Duration // RunResilient base backoff
	Deadline        time.Duration // wall-clock per attempt; 0 disables fencing
	Seed            int64         // master seed: perturbations, jitter
	BaseDir         string        // restart sets live in BaseDir/<member>/a<attempt>
	Sched           string        // "steal" (default) or "static"

	Perturb  typhoon.Perturbation // initial-condition envelope (zero = none)
	PhysFrac float64              // ± fraction on atmos Kh and KhMomentum

	// MemberFaults maps member index → fault plan spec (fault.Parse grammar)
	// armed under that member's world scope for every attempt. Hit counters
	// are monotonic across attempts, so one-shot faults never refire on
	// retry — the transient-vs-permanent distinction the tests pin.
	MemberFaults map[int]string

	// GroupFaults maps group index → plan spec armed under the group's
	// dispatch scope: the "ens.dispatch" site fires in the group supervisor
	// before each member pickup. A repeat-stall here makes a slow group —
	// the straggler harness the work-stealing benchmark uses.
	GroupFaults map[int]string

	// Track parameters for the per-member storm tracker (km).
	TrackWindowKm float64
	TrackSearchKm float64

	Obs obs.Observer // ensemble-level metrics sink; Nop when nil
}

func (c *Config) fill() error {
	if c.Label == "" {
		c.Label = "25v10"
	}
	if c.Members < 1 || c.Groups < 1 || c.Ranks < 1 {
		return fmt.Errorf("ensemble: need Members, Groups, Ranks ≥ 1 (got %d, %d, %d)",
			c.Members, c.Groups, c.Ranks)
	}
	if c.Hours <= 0 {
		c.Hours = 1
	}
	if c.Quorum <= 0 || c.Quorum > c.Members {
		c.Quorum = c.Members
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 3
	}
	if c.CheckpointEvery < 1 {
		c.CheckpointEvery = 4
	}
	if c.Retries < 1 {
		c.Retries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = time.Millisecond
	}
	if c.BaseDir == "" {
		return fmt.Errorf("ensemble: need a BaseDir for member restart sets")
	}
	switch c.Sched {
	case "":
		c.Sched = SchedSteal
	case SchedSteal, SchedStatic:
	default:
		return fmt.Errorf("ensemble: unknown scheduler %q (want %q or %q)", c.Sched, SchedSteal, SchedStatic)
	}
	if c.TrackWindowKm <= 0 {
		c.TrackWindowKm = 2000
	}
	if c.TrackSearchKm <= 0 {
		c.TrackSearchKm = 1000
	}
	if c.Obs == nil {
		c.Obs = obs.Nop{}
	}
	return nil
}

// MemberSpec is one member's deterministic identity: everything needed to
// reproduce its run bit-for-bit, independent of where and when the pool
// schedules it.
type MemberSpec struct {
	Index int
	Name  string // "m03"

	Vortex typhoon.SeedConfig // perturbed initial vortex
	// Physics-parameter perturbation: multiplicative scales on the atmosphere
	// diffusivities (1.0 for the control).
	KhScale    float64
	KhMomScale float64

	FaultSpec string // injected plan, "" for none
}

// BuildMembers derives the N member specs from the config: member 0 is the
// unperturbed control; members 1..N-1 draw initial-condition perturbations
// from the typhoon envelope and physics-parameter scales from the master
// seed. Pure function of (cfg.Seed, cfg.Perturb, cfg.PhysFrac, N).
func BuildMembers(cfg Config) []MemberSpec {
	base := typhoon.DoksuriSeed()
	specs := make([]MemberSpec, cfg.Members)
	for i := range specs {
		s := MemberSpec{
			Index: i, Name: fmt.Sprintf("m%02d", i),
			Vortex: base, KhScale: 1, KhMomScale: 1,
			FaultSpec: cfg.MemberFaults[i],
		}
		if i > 0 {
			memberSeed := cfg.Seed*1009 + int64(i)
			s.Vortex = cfg.Perturb.Apply(base, memberSeed)
			if cfg.PhysFrac > 0 {
				// Two more deterministic draws, decoupled from the vortex
				// stream so changing the envelope never reshuffles physics.
				s.KhScale = 1 + symDraw(memberSeed*31+1, cfg.PhysFrac)
				s.KhMomScale = 1 + symDraw(memberSeed*31+2, cfg.PhysFrac)
			}
		}
		specs[i] = s
	}
	return specs
}

// MemberResult is one member's outcome.
type MemberResult struct {
	Spec        MemberSpec
	Completed   bool
	Quarantined bool
	Attempts    int
	Group       int // group that ran the final attempt

	Steps       int
	Checkpoints int
	Rollbacks   int // in-place RunResilient recoveries across attempts

	// FailureChain lists each failed attempt as "a<N> on g<G>: reason" — the
	// quarantine report's evidence trail.
	FailureChain []string

	// Diagnostics from the completed run (zero when quarantined).
	Fixes        []typhoon.Fix
	TrackErrKm   float64
	MinPsPa      float64
	MaxWindMS    float64
	MaxHeatResid float64
	MaxFWResid   float64

	// StateSum is an FNV-1a digest over the assembled global surface fields —
	// the bit-for-bit identity the isolation tests compare across pool sizes
	// and schedulers.
	StateSum uint64
}

// Report is the ensemble outcome.
type Report struct {
	Members     []MemberResult
	Completed   int
	Quarantined int
	QuorumMet   bool
	Degraded    bool // completed < Members but quorum met
	Steals      int  // members run by a non-home group (steal scheduler)
	Spread      SpreadStats
}

// String renders the operator-facing summary: per-member outcome lines (the
// quarantined ones with their failure chains) and the spread block.
func (r *Report) String() string {
	out := fmt.Sprintf("ensemble: %d/%d members completed", r.Completed, len(r.Members))
	switch {
	case !r.QuorumMet:
		out += " — QUORUM FAILED"
	case r.Degraded:
		out += " — degraded mode"
	}
	out += "\n"
	for i := range r.Members {
		m := &r.Members[i]
		switch {
		case m.Completed:
			out += fmt.Sprintf("  %s g%d a%d: ok steps=%d ckpt=%d rollbacks=%d track=%.0fkm minps=%.0fPa\n",
				m.Spec.Name, m.Group, m.Attempts, m.Steps, m.Checkpoints, m.Rollbacks, m.TrackErrKm, m.MinPsPa)
		case m.Quarantined:
			out += fmt.Sprintf("  %s: QUARANTINED after %d attempts\n", m.Spec.Name, m.Attempts)
			for _, f := range m.FailureChain {
				out += "    " + f + "\n"
			}
		default:
			out += fmt.Sprintf("  %s: not run\n", m.Spec.Name)
		}
	}
	s := r.Spread
	if s.N > 1 {
		out += fmt.Sprintf("  spread(n=%d): track %.0f±%.0f km, minps %.0f±%.0f Pa, heat-resid max %.2e\n",
			s.N, s.TrackErrMeanKm, s.TrackErrSpreadKm, s.MinPsMeanPa, s.MinPsSpreadPa, s.HeatResidMax)
	}
	return out
}

// symDraw returns a deterministic uniform draw in [-half, +half] for a seed.
func symDraw(seed int64, half float64) float64 {
	// splitmix64-style scramble; cheap, stateless, and stable across runs.
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / float64(1<<53) // [0, 1)
	return half * (2*u - 1)
}

// planFor parses and seeds member i's fault plan; nil when the member has
// none. The plan object is shared across the member's attempts so hit
// counters stay monotonic (one-shot faults fire exactly once per member).
func planFor(cfg Config, spec MemberSpec) (*fault.Plan, error) {
	if spec.FaultSpec == "" {
		return nil, nil
	}
	p, err := fault.Parse(spec.FaultSpec, cfg.Seed*7919+int64(spec.Index))
	if err != nil {
		return nil, fmt.Errorf("ensemble: member %s fault spec: %w", spec.Name, err)
	}
	p.SetObserver(cfg.Obs)
	p.SetMember(spec.Name)
	return p, nil
}
