package budget

import (
	"math"
	"strings"
	"testing"
)

type fakeObs struct{ gauges map[string]float64 }

func (f *fakeObs) SetGauge(name string, v float64) {
	if f.gauges == nil {
		f.gauges = map[string]float64{}
	}
	f.gauges[name] = v
}

func TestResidualMath(t *testing.T) {
	iv := Interval{
		HeatAtmCpl: 1e15, HeatCplOcn: 1e15 + 1e5, HeatGross: 2e15,
		FWAtmCpl: 10, FWCplOcn: 10, FWGross: 1e6,
	}
	// |1e5| / max(2e15, ...) = 5e-11.
	if got, want := iv.HeatResid(), 1e5/2e15; math.Abs(got-want) > 1e-25 {
		t.Errorf("HeatResid = %g, want %g", got, want)
	}
	if iv.FWResid() != 0 {
		t.Errorf("FWResid = %g, want 0 for exact agreement", iv.FWResid())
	}
	// Zero everything: residual is 0, not NaN.
	if r := (Interval{}).HeatResid(); r != 0 {
		t.Errorf("empty interval HeatResid = %g", r)
	}
	// The gross denominator must prevent cancellation inflation: a tiny net
	// over a large gross interface stays a tiny relative residual.
	iv = Interval{HeatAtmCpl: 1, HeatCplOcn: 2, HeatGross: 1e12}
	if r := iv.HeatResid(); r > 1e-11 {
		t.Errorf("cancellation-dominated residual %g not scaled by gross", r)
	}
	if got, want := iv.SaltCplOcn(), 0.0; got != want {
		t.Errorf("SaltCplOcn on zero fw = %g", got)
	}
	iv.FWCplOcn = 2000
	if got, want := iv.SaltCplOcn(), 35.0/1000.0*2000; got != want {
		t.Errorf("SaltCplOcn = %g, want %g", got, want)
	}
}

func TestLedgerRecordStreamsGauges(t *testing.T) {
	ob := &fakeObs{}
	l := NewLedger(ob)
	l.Record(Interval{
		Seconds: 2400, HeatSW: 1, HeatLW: -2, HeatSens: -3, HeatLat: -4,
		HeatAtmCpl: -8, HeatCplOcn: -8, HeatGross: 10, HeatIceOcn: 0.5,
		FWAtmCpl: 6, FWCplOcn: 6, FWGross: 7,
		OcnHeat: 1e22, OcnSalt: 1e18, IceFW: 1e15, LndWater: 1e14, AtmWater: 1e13,
		UnmappedCells: 3,
	})
	want := map[string]float64{
		"budget.heat.sw":        1,
		"budget.heat.lw":        -2,
		"budget.heat.sens":      -3,
		"budget.heat.lat":       -4,
		"budget.heat.atm_cpl":   -8,
		"budget.heat.cpl_ocn":   -8,
		"budget.heat.ice_ocn":   0.5,
		"budget.heat.resid":     0,
		"budget.fw.atm_cpl":     6,
		"budget.fw.cpl_ocn":     6,
		"budget.fw.resid":       0,
		"budget.salt.cpl_ocn":   Interval{FWCplOcn: 6}.SaltCplOcn(),
		"budget.store.ocn_heat": 1e22,
		"budget.store.ocn_salt": 1e18,
		"budget.store.ice_fw":   1e15,
		"budget.store.lnd_water": 1e14,
		"budget.store.atm_water": 1e13,
		"budget.unmapped.cells":  3,
	}
	for name, v := range want {
		got, ok := ob.gauges[name]
		if !ok {
			t.Errorf("gauge %q not streamed", name)
		} else if got != v {
			t.Errorf("gauge %q = %g, want %g", name, got, v)
		}
	}
	if got := len(l.Intervals()); got != 1 {
		t.Fatalf("Intervals len = %d", got)
	}
	if l.Intervals()[0].Index != 0 {
		t.Errorf("first interval index = %d", l.Intervals()[0].Index)
	}
	// A nil observer must be record-only, not a crash.
	NewLedger(nil).Record(Interval{})
}

func TestSummaryAndReport(t *testing.T) {
	l := NewLedger(nil)
	l.Record(Interval{HeatAtmCpl: 100, HeatCplOcn: 101, HeatGross: 100,
		FWAtmCpl: 10, FWCplOcn: 10, FWGross: 10, OcnHeat: 5, IceFW: 2})
	l.Record(Interval{HeatAtmCpl: 100, HeatCplOcn: 100, HeatGross: 100,
		FWAtmCpl: 10, FWCplOcn: 12, FWGross: 12, OcnHeat: 8, IceFW: 1, UnmappedCells: 4})
	s := l.Summary()
	if s.N != 2 {
		t.Fatalf("N = %d", s.N)
	}
	if want := 1.0 / 101; math.Abs(s.MaxHeatResid-want) > 1e-15 {
		t.Errorf("MaxHeatResid = %g, want %g", s.MaxHeatResid, want)
	}
	if want := (1.0 / 101) / 2; math.Abs(s.MeanHeatResid-want) > 1e-15 {
		t.Errorf("MeanHeatResid = %g, want %g", s.MeanHeatResid, want)
	}
	if want := 2.0 / 12; math.Abs(s.MaxFWResid-want) > 1e-15 {
		t.Errorf("MaxFWResid = %g, want %g", s.MaxFWResid, want)
	}
	if s.UnmappedCells != 4 {
		t.Errorf("UnmappedCells = %d", s.UnmappedCells)
	}
	if s.HeatAtmCplMean != 100 || s.FWAtmCplMean != 10 {
		t.Errorf("mean transports = %g, %g", s.HeatAtmCplMean, s.FWAtmCplMean)
	}

	rep := l.Report()
	for _, frag := range []string{"heat atm→cpl", "intervals 2", "unmapped cells 4", "heat resid"} {
		if !strings.Contains(rep, frag) {
			t.Errorf("Report missing %q:\n%s", frag, rep)
		}
	}
	// Derived storage deltas: second line shows Δocn heat = 3, Δice fw = -1.
	if !strings.Contains(rep, "3.000e+00") || !strings.Contains(rep, "-1.000e+00") {
		t.Errorf("Report missing storage deltas:\n%s", rep)
	}

	cmp := FormatComparison(s, s)
	if !strings.Contains(cmp, "nn") || !strings.Contains(cmp, "cons") {
		t.Errorf("FormatComparison missing rows:\n%s", cmp)
	}
}
