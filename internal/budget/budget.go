// Package budget is the coupled conservation-audit ledger: per coupling
// interval it records the globally reduced, area-integrated energy and
// freshwater crossing each component interface (atm→cpl, cpl→ocn, ocn↔ice),
// the storage held inside each component, and the relative residual between
// what the atmosphere exported and what the ocean imported. Budget closure
// is what makes multi-decade coupled runs trustworthy (§5.1.1): under the
// conservative remap the residual must close to round-off, and under the
// nearest-neighbour remap the ledger measures the systematic leak.
//
// The package is pure bookkeeping: the driver (internal/core) computes the
// terms — the ocean-side sums already reduced across ranks, the
// atmosphere-side sums replicated — and hands one Interval per ocean
// coupling to Ledger.Record, which derives the residuals and streams every
// term through the observer's gauges.
package budget

import (
	"fmt"
	"math"
	"strings"
)

// Observer is the structural subset of obs.Observer the ledger streams
// gauges through, so only core and the command binaries import obs directly.
type Observer interface {
	SetGauge(name string, v float64)
}

// Interval holds the globally reduced budget terms of one ocean coupling
// interval. Sign convention: positive heat and freshwater terms are directed
// into the ocean (freshwater is evaporation−precipitation, so positive fw
// means the ocean loses water and concentrates salt).
type Interval struct {
	Index   int     // coupling interval number, 0-based
	Seconds float64 // simulated length of the interval

	// Energy across the atm↔ocn interface, W (area-integrated).
	// The atm→cpl side integrates the per-atmosphere-cell flux parts over
	// the conservative overlap areas Ã_c = Σ_i ŵ_ic·A_i; the cpl→ocn side
	// integrates the delivered flux over the ocean cell areas A_i.
	HeatSW, HeatLW, HeatSens, HeatLat float64 // atm→cpl parts
	HeatAtmCpl                        float64 // net atm→cpl export
	HeatCplOcn                        float64 // net delivered to the ocean
	HeatGross                         float64 // Σ Ã_c·|q_c|, residual scale
	HeatIceOcn                        float64 // ice→ocn freeze/melt heat, W

	// Freshwater across the atm↔ocn interface, kg/s.
	FWAtmCpl float64 // atm→cpl export (E−P over overlap areas)
	FWCplOcn float64 // delivered to the ocean
	FWGross  float64 // Σ Ã_c·|emp_c|, residual scale

	// Storage snapshots at the audit instant (per-interval changes are
	// derived between successive records; informational, not gated).
	OcnHeat  float64 // J, ρ₀·c_p·∫T dV
	OcnSalt  float64 // kg of salt, ρ₀·∫S dV / 1000
	IceFW    float64 // kg, ice mass as freshwater equivalent
	LndWater float64 // kg, bucket water
	AtmWater float64 // kg, column water vapour

	// UnmappedCells counts non-land atmosphere cells with no reachable wet
	// ocean column: their fluxes are routed to the land model, never
	// silently dropped, so they appear in neither interface sum.
	UnmappedCells int
}

// HeatResid returns the relative heat-budget residual of the interval:
// |export − import| over the gross interface magnitude, so near-cancelling
// global sums cannot inflate the relative measure.
func (iv Interval) HeatResid() float64 {
	return relResid(iv.HeatAtmCpl, iv.HeatCplOcn, iv.HeatGross)
}

// FWResid returns the relative freshwater-budget residual of the interval.
func (iv Interval) FWResid() float64 {
	return relResid(iv.FWAtmCpl, iv.FWCplOcn, iv.FWGross)
}

// SaltCplOcn returns the virtual salt flux the delivered freshwater implies
// (kg of salt per second): S_ref/1000 · (E−P) integrated over the interface.
func (iv Interval) SaltCplOcn() float64 { return 35.0 / 1000.0 * iv.FWCplOcn }

func relResid(export, imported, gross float64) float64 {
	diff := math.Abs(export - imported)
	scale := math.Max(gross, math.Max(math.Abs(export), math.Abs(imported)))
	if scale == 0 {
		return 0
	}
	return diff / scale
}

// Ledger accumulates the per-interval records of one run and streams them
// through the observer's gauges as they arrive.
type Ledger struct {
	obs Observer // nil disables streaming
	ivs []Interval
}

// NewLedger builds a ledger streaming to ob (nil keeps records only).
func NewLedger(ob Observer) *Ledger { return &Ledger{obs: ob} }

// Record appends one interval and publishes its terms as gauges.
func (l *Ledger) Record(iv Interval) {
	iv.Index = len(l.ivs)
	l.ivs = append(l.ivs, iv)
	if l.obs == nil {
		return
	}
	l.obs.SetGauge("budget.heat.sw", iv.HeatSW)
	l.obs.SetGauge("budget.heat.lw", iv.HeatLW)
	l.obs.SetGauge("budget.heat.sens", iv.HeatSens)
	l.obs.SetGauge("budget.heat.lat", iv.HeatLat)
	l.obs.SetGauge("budget.heat.atm_cpl", iv.HeatAtmCpl)
	l.obs.SetGauge("budget.heat.cpl_ocn", iv.HeatCplOcn)
	l.obs.SetGauge("budget.heat.ice_ocn", iv.HeatIceOcn)
	l.obs.SetGauge("budget.heat.resid", iv.HeatResid())
	l.obs.SetGauge("budget.fw.atm_cpl", iv.FWAtmCpl)
	l.obs.SetGauge("budget.fw.cpl_ocn", iv.FWCplOcn)
	l.obs.SetGauge("budget.fw.resid", iv.FWResid())
	l.obs.SetGauge("budget.salt.cpl_ocn", iv.SaltCplOcn())
	l.obs.SetGauge("budget.store.ocn_heat", iv.OcnHeat)
	l.obs.SetGauge("budget.store.ocn_salt", iv.OcnSalt)
	l.obs.SetGauge("budget.store.ice_fw", iv.IceFW)
	l.obs.SetGauge("budget.store.lnd_water", iv.LndWater)
	l.obs.SetGauge("budget.store.atm_water", iv.AtmWater)
	l.obs.SetGauge("budget.unmapped.cells", float64(iv.UnmappedCells))
}

// Intervals returns the recorded intervals in order.
func (l *Ledger) Intervals() []Interval { return l.ivs }

// Summary condenses a run's records into the closure verdict.
type Summary struct {
	N                            int // intervals recorded
	MaxHeatResid, MeanHeatResid  float64
	MaxFWResid, MeanFWResid      float64
	UnmappedCells                int
	HeatAtmCplMean, FWAtmCplMean float64 // mean interface transports
}

// Summary reduces the recorded intervals.
func (l *Ledger) Summary() Summary {
	s := Summary{N: len(l.ivs)}
	if s.N == 0 {
		return s
	}
	for _, iv := range l.ivs {
		hr, fr := iv.HeatResid(), iv.FWResid()
		s.MaxHeatResid = math.Max(s.MaxHeatResid, hr)
		s.MaxFWResid = math.Max(s.MaxFWResid, fr)
		s.MeanHeatResid += hr
		s.MeanFWResid += fr
		s.HeatAtmCplMean += iv.HeatAtmCpl
		s.FWAtmCplMean += iv.FWAtmCpl
		s.UnmappedCells = iv.UnmappedCells
	}
	n := float64(s.N)
	s.MeanHeatResid /= n
	s.MeanFWResid /= n
	s.HeatAtmCplMean /= n
	s.FWAtmCplMean /= n
	return s
}

// Report formats the full ledger: one line per interval with the interface
// terms and residuals, the per-interval storage changes, and the summary.
func (l *Ledger) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s  %13s %13s %10s  |%13s %13s %10s  |%11s %11s\n",
		"int", "heat atm→cpl", "heat cpl→ocn", "resid",
		"fw atm→cpl", "fw cpl→ocn", "resid", "Δocn heat", "Δice fw")
	for i, iv := range l.ivs {
		dHeat, dIce := 0.0, 0.0
		if i > 0 {
			dHeat = iv.OcnHeat - l.ivs[i-1].OcnHeat
			dIce = iv.IceFW - l.ivs[i-1].IceFW
		}
		fmt.Fprintf(&b, "%4d  %13.5e %13.5e %10.2e  |%13.5e %13.5e %10.2e  |%11.3e %11.3e\n",
			iv.Index, iv.HeatAtmCpl, iv.HeatCplOcn, iv.HeatResid(),
			iv.FWAtmCpl, iv.FWCplOcn, iv.FWResid(), dHeat, dIce)
	}
	s := l.Summary()
	fmt.Fprintf(&b, "intervals %d  unmapped cells %d\n", s.N, s.UnmappedCells)
	fmt.Fprintf(&b, "heat resid: max %.3e  mean %.3e   fw resid: max %.3e  mean %.3e\n",
		s.MaxHeatResid, s.MeanHeatResid, s.MaxFWResid, s.MeanFWResid)
	return b.String()
}

// FormatComparison renders the nearest-vs-conservative table row pair the
// tables command prints: the demonstration that the nearest-mode residual is
// nonzero while the conservative mode closes to round-off.
func FormatComparison(nn, cons Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %9s  %12s %12s  %12s %12s  %9s\n",
		"remap", "intervals", "heat max", "heat mean", "fw max", "fw mean", "unmapped")
	row := func(name string, s Summary) {
		fmt.Fprintf(&b, "%-6s %9d  %12.3e %12.3e  %12.3e %12.3e  %9d\n",
			name, s.N, s.MaxHeatResid, s.MeanHeatResid, s.MaxFWResid, s.MeanFWResid, s.UnmappedCells)
	}
	row("nn", nn)
	row("cons", cons)
	return b.String()
}
