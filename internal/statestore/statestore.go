// Package statestore is the forecast-state serving layer: it persists
// per-interval model state as group-scaled quantized encodings
// (internal/precision §5.2.3) into an indexed, ReaderAt-backed store and
// serves concurrent queries against it — point and region time-series
// extraction with on-demand decode of only the touched groups,
// nearest-analog search over compressed state vectors via a staged
// scan → distance → top-k pipeline, and derived diagnostics (min surface
// pressure, max wind, conservation residuals).
//
// The store is the "millions of users" front door of the ROADMAP: a
// year-scale simulation only matters if its state reaches consumers, so the
// layout is optimized for read concurrency and the ingest path is shaped so
// a live run feeds the store from a checkpoint hook on a side goroutine —
// the coupled step loop never blocks on serving-layer work.
//
// On disk a store is a directory of two files. store.dat is append-only
// quantized field data: per snapshot, per field, the group scales (float64)
// followed by the quantized values (float32), checksummed with CRC32C.
// manifest.bin is the index — schema, snapshot metadata, per-field offsets
// and checksums — rewritten atomically (temp + rename, the pario v2 trailer
// discipline) on every committed snapshot, so a reader that re-reads the
// manifest sees only fully written data and a torn manifest write is
// detected by its trailer rather than misread.
package statestore

import (
	"errors"
	"fmt"
)

// Magic identifies a statestore manifest.
const Magic = 0x41503353 // "AP3S"

// TrailerMagic opens the manifest's end-of-file trailer.
const TrailerMagic = 0x41503355 // "AP3U"

// Version is the current manifest format version.
const Version = 1

// DefaultGroup is the default quantization group size: one shared
// power-of-two scale per 64 consecutive values, matching par.WireGroup so
// the storage footprint is 4 + 8/64 ≈ 4.125 bytes per value.
const DefaultGroup = 64

// Decoder guardrails, mirroring pario's: a manifest declaring more than
// these is corrupt by definition, which bounds what a hostile or truncated
// index can make the reader allocate.
const (
	maxNameLen   = 4096
	maxFields    = 4096
	maxFieldElem = 1 << 24 // 16M elements per field
	maxSnapshots = 1 << 24
)

// Typed decode errors; match with errors.Is.
var (
	// ErrCorrupt reports bytes that cannot be a well-formed manifest:
	// bad magic, checksum mismatch, or impossible sizes.
	ErrCorrupt = errors.New("corrupt state store")
	// ErrTruncated reports a manifest or data file that ends before its own
	// declared structure does.
	ErrTruncated = errors.New("truncated state store")
)

// Field is one named global field of a snapshot.
type Field struct {
	Name string
	Data []float64
}

// Snapshot is one coupling interval's captured model state.
type Snapshot struct {
	Step    int     // coupling step the state was captured at
	SimTime float64 // simulated seconds since the run start
	Fields  []Field
}

// FieldInfo describes one field of the store's fixed schema.
type FieldInfo struct {
	Name  string `json:"name"`
	Elems int    `json:"elems"`
}

// Observer is the instrumentation hook consumed by the serving layer — the
// structural subset of obs.Observer it needs, declared locally so statestore
// does not import obs (the same discipline as pario).
type Observer interface {
	AddCount(name string, delta int64)
	SetGauge(name string, v float64)
	ObserveValue(name string, v float64)
}

// count / gauge / observe are the nil-safe observer helpers.
func count(o Observer, name string, d int64) {
	if o != nil {
		o.AddCount(name, d)
	}
}

func gauge(o Observer, name string, v float64) {
	if o != nil {
		o.SetGauge(name, v)
	}
}

func observe(o Observer, name string, v float64) {
	if o != nil {
		o.ObserveValue(name, v)
	}
}

// groups returns the number of quantization groups covering elems values.
func groups(elems, group int) int { return (elems + group - 1) / group }

// blobLen returns the encoded byte length of one field blob: the group
// scales (8 bytes each) followed by the quantized values (4 bytes each).
func blobLen(elems, group int) int64 { return int64(8*groups(elems, group) + 4*elems) }

// fieldIndex resolves a field name against the schema.
func fieldIndex(fields []FieldInfo, name string) (int, error) {
	for i, f := range fields {
		if f.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("statestore: no field %q in store schema", name)
}
