package statestore

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Nearest-analog search: given a query state vector, find the k archived
// snapshots whose compressed state decodes closest to it in L2 distance —
// the forecast-analog primitive (which past states looked most like this
// one). The search runs as a staged pipeline in the knnc idiom: a scan
// stage emits snapshot ids, a fan-out of distance workers decodes each
// candidate (through the shared cache) and scores it, and a top-k stage
// merges the scored stream. Distances are computed in float64 over the
// decoded (dequantized) state in ascending index order, so the concurrent
// result is bit-identical to a sequential brute-force pass over the same
// decoded states — concurrency changes only which snapshot is scored when,
// never the arithmetic.

// Analog is one scored nearest-analog candidate.
type Analog struct {
	Snap    int     `json:"snap"`
	Step    int     `json:"step"`
	SimTime float64 `json:"sim_time"`
	Dist    float64 `json:"dist"` // squared L2 distance over the decoded field
}

// NearestAnalogs returns the k snapshots of field closest to query,
// ordered by ascending distance with snapshot id breaking ties. workers ≤ 0
// selects 4. The query must have the field's length.
func (s *Store) NearestAnalogs(field string, query []float64, k, workers int) ([]Analog, error) {
	t0 := time.Now()
	m := s.manifestView()
	fi, err := fieldIndex(m.Fields, field)
	if err != nil {
		return nil, err
	}
	if len(query) != m.Fields[fi].Elems {
		return nil, fmt.Errorf("statestore: analog query has %d elements, field %q has %d",
			len(query), field, m.Fields[fi].Elems)
	}
	if k <= 0 {
		return nil, fmt.Errorf("statestore: analog k must be positive, got %d", k)
	}
	if workers <= 0 {
		workers = 4
	}
	n := len(m.Snaps)

	// Stage 1 — scan: emit every committed snapshot id.
	ids := make(chan int, workers)
	go func() {
		for i := 0; i < n; i++ {
			ids <- i
		}
		close(ids)
	}()

	// Stage 2 — distance: fan-out workers decode and score each candidate.
	type scored struct {
		snap int
		dist float64
	}
	out := make(chan scored, workers)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ids {
				v, err := s.DecodeField(i, field)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				out <- scored{snap: i, dist: l2dist(v, query)}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	// Stage 3 — top-k: keep the k best, deterministic under concurrency
	// because the final ordering depends only on (dist, snap).
	best := make([]Analog, 0, k+1)
	for sc := range out {
		a := Analog{Snap: sc.snap, Dist: sc.dist}
		pos := sort.Search(len(best), func(i int) bool {
			if best[i].Dist != a.Dist {
				return best[i].Dist > a.Dist
			}
			return best[i].Snap > a.Snap
		})
		if pos >= k {
			continue
		}
		best = append(best, Analog{})
		copy(best[pos+1:], best[pos:])
		best[pos] = a
		if len(best) > k {
			best = best[:k]
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for i := range best {
		step, sim, err := s.Meta(best[i].Snap)
		if err != nil {
			return nil, err
		}
		best[i].Step, best[i].SimTime = step, sim
	}
	count(s.obs, "serve.analog.queries", 1)
	observe(s.obs, "serve.analog.latency_us", float64(time.Since(t0).Microseconds()))
	return best, nil
}

// BruteForceAnalogs is the reference implementation: a sequential scan over
// every snapshot in index order with the same float64 distance. The
// pipeline must match it exactly; the benchmark gate and tests pin that.
func (s *Store) BruteForceAnalogs(field string, query []float64, k int) ([]Analog, error) {
	m := s.manifestView()
	fi, err := fieldIndex(m.Fields, field)
	if err != nil {
		return nil, err
	}
	if len(query) != m.Fields[fi].Elems {
		return nil, fmt.Errorf("statestore: analog query has %d elements, field %q has %d",
			len(query), field, m.Fields[fi].Elems)
	}
	all := make([]Analog, 0, len(m.Snaps))
	for i := range m.Snaps {
		v, err := s.DecodeField(i, field)
		if err != nil {
			return nil, err
		}
		step, sim, err := s.Meta(i)
		if err != nil {
			return nil, err
		}
		all = append(all, Analog{Snap: i, Step: step, SimTime: sim, Dist: l2dist(v, query)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Snap < all[j].Snap
	})
	if len(all) > k {
		all = all[:k]
	}
	return all, nil
}

// l2dist is the shared distance kernel: squared-difference accumulation in
// ascending index order (both the pipeline workers and the brute-force
// reference call exactly this, so their floats agree bit-for-bit).
func l2dist(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}
