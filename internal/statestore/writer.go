package statestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/precision"
)

// DataFile and ManifestFile are the two members of a store directory.
const (
	DataFile     = "store.dat"
	ManifestFile = "manifest.bin"
)

// Writer persists snapshots into a store directory. Field data is quantized
// group-scaled (precision §5.2.3) and appended to store.dat; the manifest is
// rewritten atomically after every appended snapshot, so a concurrent Store
// reader that re-reads the manifest observes only fully committed state.
//
// The schema — field names and lengths — is fixed by the first Append;
// later snapshots must carry exactly the same fields.
type Writer struct {
	dir   string
	group int
	obs   Observer

	mu   sync.Mutex
	man  manifest
	data *os.File
	off  int64

	// Reusable encode scratch: the quantizer and the serialized blob, so a
	// steady-state Append allocates only the manifest bookkeeping.
	gs   precision.GroupScaled
	blob []byte
}

// Create initializes a store directory (made if absent) and returns a
// Writer. group ≤ 0 selects DefaultGroup. An existing store in dir is
// truncated. o may be nil.
func Create(dir string, group int, o Observer) (*Writer, error) {
	if group <= 0 {
		group = DefaultGroup
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("statestore: %w", err)
	}
	os.Remove(filepath.Join(dir, ManifestFile))
	f, err := os.Create(filepath.Join(dir, DataFile))
	if err != nil {
		return nil, fmt.Errorf("statestore: %w", err)
	}
	return &Writer{dir: dir, group: group, obs: o, data: f, man: manifest{Group: group}}, nil
}

// Dir returns the store directory.
func (w *Writer) Dir() string { return w.dir }

// Snapshots returns the number of committed snapshots.
func (w *Writer) Snapshots() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.man.Snaps)
}

// Append quantizes and persists one snapshot, then commits the manifest.
// Safe for concurrent use, though the ingest path serializes calls anyway.
func (w *Writer) Append(s Snapshot) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.data == nil {
		return fmt.Errorf("statestore: Append on closed writer")
	}
	if len(w.man.Snaps) == 0 && len(w.man.Fields) == 0 {
		for _, f := range s.Fields {
			if len(f.Data) == 0 {
				return fmt.Errorf("statestore: field %q is empty", f.Name)
			}
			if len(f.Data) > maxFieldElem {
				return fmt.Errorf("statestore: field %q has %d elements (max %d)", f.Name, len(f.Data), maxFieldElem)
			}
			w.man.Fields = append(w.man.Fields, FieldInfo{Name: f.Name, Elems: len(f.Data)})
		}
		if len(w.man.Fields) == 0 {
			return fmt.Errorf("statestore: snapshot carries no fields")
		}
	}
	if len(s.Fields) != len(w.man.Fields) {
		return fmt.Errorf("statestore: snapshot carries %d fields, schema has %d", len(s.Fields), len(w.man.Fields))
	}
	meta := snapMeta{
		Step:    int64(s.Step),
		SimTime: s.SimTime,
		Off:     make([]int64, len(w.man.Fields)),
		CRC:     make([]uint32, len(w.man.Fields)),
	}
	var rawBytes, wireBytes int64
	for i, f := range s.Fields {
		want := w.man.Fields[i]
		if f.Name != want.Name || len(f.Data) != want.Elems {
			return fmt.Errorf("statestore: snapshot field %d is %q[%d], schema says %q[%d]",
				i, f.Name, len(f.Data), want.Name, want.Elems)
		}
		if err := precision.EncodeGroupScaledInto(&w.gs, f.Data, w.group); err != nil {
			return fmt.Errorf("statestore: encoding %q: %w", f.Name, err)
		}
		blob := w.encodeBlob()
		if _, err := w.data.WriteAt(blob, w.off); err != nil {
			return fmt.Errorf("statestore: appending %q: %w", f.Name, err)
		}
		meta.Off[i] = w.off
		meta.CRC[i] = crc32.Checksum(blob, crcTable)
		w.off += int64(len(blob))
		rawBytes += int64(8 * len(f.Data))
		wireBytes += int64(len(blob))
	}
	w.man.Snaps = append(w.man.Snaps, meta)
	if err := w.commitManifest(); err != nil {
		// Roll the index entry back so a retried Append re-commits cleanly;
		// the orphaned data bytes are unreachable and harmless.
		w.man.Snaps = w.man.Snaps[:len(w.man.Snaps)-1]
		return err
	}
	count(w.obs, "serve.ingest.snapshots", 1)
	count(w.obs, "serve.ingest.raw.bytes", rawBytes)
	count(w.obs, "serve.ingest.stored.bytes", wireBytes)
	return nil
}

// encodeBlob serializes the writer's scratch encoding as scales then values,
// reusing w.blob.
func (w *Writer) encodeBlob() []byte {
	n := 8*len(w.gs.Scales) + 4*len(w.gs.Vals)
	if cap(w.blob) < n {
		w.blob = make([]byte, 0, n)
	}
	b := w.blob[:0]
	for _, s := range w.gs.Scales {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s))
	}
	for _, v := range w.gs.Vals {
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(v))
	}
	w.blob = b
	return b
}

// commitManifest writes the index to a temporary sibling and atomically
// renames it into place.
func (w *Writer) commitManifest() error {
	path := filepath.Join(w.dir, ManifestFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, encodeManifest(&w.man), 0o644); err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("statestore: %w", err)
	}
	return nil
}

// Close flushes and closes the data file. The manifest is already durable
// (committed per Append).
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.data == nil {
		return nil
	}
	err := w.data.Close()
	w.data = nil
	return err
}

// Ingester feeds a Writer from a live run without perturbing it: Offer
// hands a snapshot to a side goroutine that quantizes and persists it, so
// the caller — the core.RunResilient OnCheckpoint hook, on the coupled
// driver's critical path — pays only a channel send. The queue bounds the
// staleness: at most Depth committed checkpoints can be waiting for
// persistence at any moment, and when the queue is full the newest snapshot
// is dropped (counted on serve.ingest.dropped) rather than blocking the
// model.
type Ingester struct {
	w     *Writer
	obs   Observer
	ch    chan Snapshot
	done  chan struct{}
	mu    sync.Mutex
	err   error
	drops int64
}

// NewIngester starts the persistence goroutine. depth ≤ 0 selects 4.
func NewIngester(w *Writer, depth int, o Observer) *Ingester {
	if depth <= 0 {
		depth = 4
	}
	in := &Ingester{w: w, obs: o, ch: make(chan Snapshot, depth), done: make(chan struct{})}
	go func() {
		defer close(in.done)
		for s := range in.ch {
			if err := w.Append(s); err != nil {
				in.mu.Lock()
				if in.err == nil {
					in.err = err
				}
				in.mu.Unlock()
				count(o, "serve.ingest.errors", 1)
			}
		}
	}()
	return in
}

// Offer enqueues a snapshot for persistence without blocking. The fields
// are shared by reference: the caller must hand over freshly assembled
// slices it will not mutate (the core capture path allocates per capture,
// off the zero-alloc step loop).
func (in *Ingester) Offer(s Snapshot) {
	select {
	case in.ch <- s:
	default:
		in.mu.Lock()
		in.drops++
		in.mu.Unlock()
		count(in.obs, "serve.ingest.dropped", 1)
	}
}

// Dropped returns how many offered snapshots were discarded because the
// persistence queue was full.
func (in *Ingester) Dropped() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.drops
}

// Close drains the queue, stops the persistence goroutine, and returns the
// first persistence error (the writer itself stays open — the owner closes
// it). After Close returns, every Offer that was not dropped is committed.
func (in *Ingester) Close() error {
	close(in.ch)
	<-in.done
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.err
}
