package statestore

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Server is the HTTP query front end over a Store. Every handler is a thin
// JSON shim over the concurrent query API; the heavy lifting (group-granular
// decode, cache, analog pipeline) lives in Store, so programmatic consumers
// can skip HTTP entirely. The server carries a ReadHeaderTimeout (slow
// clients must not pin handler goroutines) and Close joins the serve
// goroutine, so a stopped server leaves no listener or goroutine behind.
type Server struct {
	st   *Store
	obs  Observer
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// readHeaderTimeout bounds how long a connection may dribble its request
// header — the slowloris guard.
const readHeaderTimeout = 5 * time.Second

// NewServer starts serving st on addr (port 0 picks a free port; Addr
// reports the bound address). o may be nil.
func NewServer(st *Store, addr string, o Observer) (*Server, error) {
	s := &Server{st: st, obs: o, done: make(chan struct{})}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("statestore: serve listen: %w", err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: readHeaderTimeout}
	go func() {
		s.srv.Serve(ln)
		close(s.done)
	}()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down and waits for the serve goroutine to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

// Handler returns the query mux — exposed so tests and embedders can drive
// the endpoints without a real listener.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/meta", s.instrument("meta", s.handleMeta))
	mux.HandleFunc("/v1/point", s.instrument("point", s.handlePoint))
	mux.HandleFunc("/v1/region", s.instrument("region", s.handleRegion))
	mux.HandleFunc("/v1/analogs", s.instrument("analogs", s.handleAnalogs))
	mux.HandleFunc("/v1/diag", s.instrument("diag", s.handleDiag))
	return mux
}

// instrument wraps a handler with the serve.* request/error/latency
// telemetry.
func (s *Server) instrument(name string, h func(*http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		count(s.obs, "serve.http.requests", 1)
		v, err := h(r)
		if err != nil {
			count(s.obs, "serve.http.errors", 1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(v)
		observe(s.obs, "serve.http.latency_us", float64(time.Since(t0).Microseconds()))
	}
}

// intParam parses an integer query parameter, with def when absent (def < 0
// and absent is an error unless allowAbsent).
func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("statestore: parameter %s=%q is not an integer", name, raw)
	}
	return v, nil
}

// metaReply is the /v1/meta response.
type metaReply struct {
	Snapshots int         `json:"snapshots"`
	Group     int         `json:"group"`
	Fields    []FieldInfo `json:"fields"`
	FirstStep int         `json:"first_step"`
	LastStep  int         `json:"last_step"`
}

func (s *Server) handleMeta(*http.Request) (any, error) {
	// Meta doubles as the liveness probe of a live-ingesting store: refresh
	// first so the reply reflects the newest committed snapshot.
	if err := s.st.Refresh(); err != nil {
		return nil, err
	}
	rep := metaReply{Snapshots: s.st.Snapshots(), Group: s.st.Group(), Fields: s.st.Fields()}
	if rep.Snapshots > 0 {
		rep.FirstStep, _, _ = s.st.Meta(0)
		rep.LastStep, _, _ = s.st.Meta(rep.Snapshots - 1)
	}
	return rep, nil
}

func (s *Server) handlePoint(r *http.Request) (any, error) {
	field := r.URL.Query().Get("field")
	cell, err := intParam(r, "cell", -1)
	if err != nil {
		return nil, err
	}
	if field == "" || cell < 0 {
		return nil, fmt.Errorf("statestore: /v1/point needs field= and cell=")
	}
	if snap, err := intParam(r, "snap", -1); err != nil {
		return nil, err
	} else if snap >= 0 {
		v, err := s.st.Point(snap, field, cell)
		if err != nil {
			return nil, err
		}
		step, sim, err := s.st.Meta(snap)
		if err != nil {
			return nil, err
		}
		return Sample{Snap: snap, Step: step, SimTime: sim, Value: v}, nil
	}
	return s.st.PointSeries(field, cell)
}

func (s *Server) handleRegion(r *http.Request) (any, error) {
	field := r.URL.Query().Get("field")
	lo, err := intParam(r, "lo", -1)
	if err != nil {
		return nil, err
	}
	hi, err := intParam(r, "hi", -1)
	if err != nil {
		return nil, err
	}
	if field == "" || lo < 0 || hi < 0 {
		return nil, fmt.Errorf("statestore: /v1/region needs field=, lo= and hi=")
	}
	return s.st.RegionSeries(field, lo, hi)
}

func (s *Server) handleAnalogs(r *http.Request) (any, error) {
	field := r.URL.Query().Get("field")
	snap, err := intParam(r, "snap", -1)
	if err != nil {
		return nil, err
	}
	k, err := intParam(r, "k", 5)
	if err != nil {
		return nil, err
	}
	workers, err := intParam(r, "workers", 0)
	if err != nil {
		return nil, err
	}
	if field == "" || snap < 0 {
		return nil, fmt.Errorf("statestore: /v1/analogs needs field= and snap= (the query snapshot)")
	}
	query, err := s.st.DecodeField(snap, field)
	if err != nil {
		return nil, err
	}
	return s.st.NearestAnalogs(field, query, k, workers)
}

func (s *Server) handleDiag(r *http.Request) (any, error) {
	snap, err := intParam(r, "snap", -1)
	if err != nil {
		return nil, err
	}
	if snap >= 0 {
		return s.st.Diagnostics(snap)
	}
	// No snap: the whole diagnostic series (min-Ps / max-wind trajectory).
	n := s.st.Snapshots()
	out := make([]Diag, 0, n)
	for i := 0; i < n; i++ {
		d, err := s.st.Diagnostics(i)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}
