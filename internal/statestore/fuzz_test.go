package statestore

import (
	"testing"
)

// FuzzManifestDecode drives the manifest decoder with arbitrary bytes: it
// must never panic or allocate past its guardrails (the same bounds-checked
// byteReader discipline as pario's FuzzReadSubfile), and anything it
// accepts must satisfy the format's own invariants.
func FuzzManifestDecode(f *testing.F) {
	good := encodeManifest(&manifest{
		Group:  64,
		Fields: []FieldInfo{{Name: "atm.ps", Elems: 120}, {Name: "ocn.sst", Elems: 48}},
		Snaps: []snapMeta{
			{Step: 5, SimTime: 2400, Off: []int64{0, 676}, CRC: []uint32{0xdead, 0xbeef}},
			{Step: 10, SimTime: 4800, Off: []int64{900, 1576}, CRC: []uint32{1, 2}},
		},
	})
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:12])
	f.Add([]byte("not a manifest"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		// Accepted manifests must be internally consistent.
		if m.Group <= 0 || m.Group > maxFieldElem {
			t.Fatalf("accepted group size %d", m.Group)
		}
		if len(m.Fields) == 0 || len(m.Fields) > maxFields {
			t.Fatalf("accepted %d fields", len(m.Fields))
		}
		seen := map[string]bool{}
		for _, fd := range m.Fields {
			if fd.Name == "" || len(fd.Name) > maxNameLen {
				t.Fatalf("accepted field name %q", fd.Name)
			}
			if seen[fd.Name] {
				t.Fatalf("accepted duplicate field %q", fd.Name)
			}
			seen[fd.Name] = true
			if fd.Elems <= 0 || fd.Elems > maxFieldElem {
				t.Fatalf("accepted field %q with %d elements", fd.Name, fd.Elems)
			}
		}
		for i, s := range m.Snaps {
			if s.Step < 0 {
				t.Fatalf("accepted snapshot %d with step %d", i, s.Step)
			}
			if len(s.Off) != len(m.Fields) || len(s.CRC) != len(m.Fields) {
				t.Fatalf("snapshot %d index width %d/%d vs %d fields", i, len(s.Off), len(s.CRC), len(m.Fields))
			}
			for fi, off := range s.Off {
				if off < 0 || off+blobLen(m.Fields[fi].Elems, m.Group) < off {
					t.Fatalf("snapshot %d field %d offset %d overflows", i, fi, off)
				}
			}
		}
		// Round trip: re-encoding an accepted manifest must decode equal.
		again, err := decodeManifest(encodeManifest(m))
		if err != nil {
			t.Fatalf("re-encoded manifest rejected: %v", err)
		}
		if len(again.Snaps) != len(m.Snaps) || len(again.Fields) != len(m.Fields) || again.Group != m.Group {
			t.Fatalf("round trip changed shape: %+v vs %+v", again, m)
		}
	})
}
