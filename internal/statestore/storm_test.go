package statestore

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentQueryStorm is the serve-race lap: a live store ingesting
// snapshots on a side goroutine while a pack of query goroutines hammers
// every read path — point, region, full decode, analogs, diagnostics, and
// manifest refreshes — under the race detector. It also pins the
// bounded-staleness contract: after the ingester closes, every offered
// snapshot that was not counted as dropped is committed and queryable.
func TestConcurrentQueryStorm(t *testing.T) {
	const (
		snaps   = 40
		nAtm    = 180
		nOcn    = 60
		readers = 6
		depth   = 4
	)
	dir := filepath.Join(t.TempDir(), "store")
	w, err := Create(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Seed one snapshot so readers can open the store immediately.
	if err := w.Append(synthSnapshot(0, nAtm, nOcn)); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	in := NewIngester(w, depth, nil)
	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if err := st.Refresh(); err != nil {
					errCh <- err
					return
				}
				n := st.Snapshots()
				if n == 0 {
					continue
				}
				snap := (i*7 + r) % n
				if _, err := st.Point(snap, PsField, (i*13)%nAtm); err != nil {
					errCh <- fmt.Errorf("point: %w", err)
					return
				}
				if _, err := st.RegionSeries(WindField, 0, 70); err != nil {
					errCh <- fmt.Errorf("region: %w", err)
					return
				}
				if _, err := st.Diagnostics(snap); err != nil {
					errCh <- fmt.Errorf("diag: %w", err)
					return
				}
				if i%5 == r%5 {
					q, err := st.DecodeField(snap, PsField)
					if err != nil {
						errCh <- fmt.Errorf("decode: %w", err)
						return
					}
					if _, err := st.NearestAnalogs(PsField, q, 3, 3); err != nil {
						errCh <- fmt.Errorf("analogs: %w", err)
						return
					}
				}
			}
		}(r)
	}
	// The ingest side: offer snapshots as fast as the queue allows; drops
	// are legitimate (the bounded-staleness escape valve) and counted.
	for s := 1; s < snaps; s++ {
		in.Offer(synthSnapshot(s, nAtm, nOcn))
	}
	if err := in.Close(); err != nil {
		t.Fatalf("ingester: %v", err)
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("query storm: %v", err)
	default:
	}

	// Bounded staleness: everything offered minus the counted drops is
	// committed, in order, and queryable.
	if err := st.Refresh(); err != nil {
		t.Fatal(err)
	}
	want := snaps - int(in.Dropped())
	if st.Snapshots() != want {
		t.Fatalf("store holds %d snapshots, want %d (%d offered, %d dropped)",
			st.Snapshots(), want, snaps, in.Dropped())
	}
	if in.Dropped() > 0 {
		t.Logf("dropped %d of %d offers at queue depth %d", in.Dropped(), snaps-1, depth)
	}
	prev := -1
	for i := 0; i < st.Snapshots(); i++ {
		step, _, err := st.Meta(i)
		if err != nil {
			t.Fatal(err)
		}
		if step <= prev {
			t.Fatalf("snapshot %d has step %d, not after %d — ingest reordered commits", i, step, prev)
		}
		prev = step
	}
}

// TestIngesterNeverBlocks pins the hot-path contract: with the queue full,
// Offer returns immediately and counts the drop instead of stalling the
// caller (the OnCheckpoint hook on the coupled driver's critical path).
func TestIngesterNeverBlocks(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	w, err := Create(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// A writer whose data file is fine but whose goroutine is saturated:
	// fill the queue faster than tiny appends drain. Use a large snapshot
	// count with a depth-1 queue; some offers MUST drop, none may block.
	in := NewIngester(w, 1, nil)
	for s := 0; s < 64; s++ {
		in.Offer(synthSnapshot(s, 64, 16))
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if got := int64(w.Snapshots()) + in.Dropped(); got != 64 {
		t.Fatalf("committed %d + dropped %d = %d, want 64", w.Snapshots(), in.Dropped(), got)
	}
}
