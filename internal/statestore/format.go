package statestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// snapMeta is one snapshot's index entry: identity plus, per schema field,
// the blob offset into store.dat and the CRC32C over the blob bytes. Blob
// lengths are derivable from the schema (blobLen), so they are not stored.
type snapMeta struct {
	Step    int64
	SimTime float64
	Off     []int64
	CRC     []uint32
}

// manifest is the decoded index of a store.
type manifest struct {
	Group  int
	Fields []FieldInfo
	Snaps  []snapMeta
}

// encodeManifest renders the index bytes: header, schema, snapshot table,
// and the checksummed trailer that detects truncation (the pario v2
// discipline — validate the trailer before trusting any interior
// structure).
func encodeManifest(m *manifest) []byte {
	var buf []byte
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	u32(Magic)
	u32(Version)
	u32(uint32(m.Group))
	u32(uint32(len(m.Fields)))
	for _, f := range m.Fields {
		u32(uint32(len(f.Name)))
		buf = append(buf, f.Name...)
		u64(uint64(f.Elems))
	}
	u64(uint64(len(m.Snaps)))
	for _, s := range m.Snaps {
		u64(uint64(s.Step))
		u64(math.Float64bits(s.SimTime))
		for i := range m.Fields {
			u64(uint64(s.Off[i]))
			u32(s.CRC[i])
		}
	}
	payload := len(buf)
	u32(TrailerMagic)
	u64(uint64(payload))
	u32(crc32.Checksum(buf[:payload], crcTable))
	return buf
}

// byteReader walks an in-memory manifest image with explicit bounds checks;
// running past the end is ErrTruncated, never a panic. It is the same
// decoder discipline as pario's restart reader, duplicated locally because
// the two formats must stay independently evolvable.
type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) remaining() int { return len(r.data) - r.off }

func (r *byteReader) need(n int, what string) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("statestore: %s at offset %d needs %d bytes, %d left: %w",
			what, r.off, n, r.remaining(), ErrTruncated)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *byteReader) u32(what string) (uint32, error) {
	b, err := r.need(4, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *byteReader) u64(what string) (uint64, error) {
	b, err := r.need(8, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// decodeManifest parses a manifest image. Every structural quantity is
// validated against the bytes actually present before any allocation, so a
// corrupt or truncated image costs O(len(data)) and returns ErrCorrupt or
// ErrTruncated rather than panicking or over-allocating.
func decodeManifest(data []byte) (*manifest, error) {
	r := &byteReader{data: data}
	magic, err := r.u32("magic")
	if err != nil {
		return nil, err
	}
	if magic != Magic {
		return nil, fmt.Errorf("statestore: not a state store manifest (magic %#x): %w", magic, ErrCorrupt)
	}
	version, err := r.u32("version")
	if err != nil {
		return nil, err
	}
	if version != Version {
		return nil, fmt.Errorf("statestore: unsupported manifest version %d: %w", version, ErrCorrupt)
	}
	// Validate the trailer before trusting any interior structure: it is the
	// cheap whole-file truncation and corruption detector.
	const trailerLen = 4 + 8 + 4
	if len(data) < trailerLen {
		return nil, fmt.Errorf("statestore: %d bytes cannot hold a manifest trailer: %w", len(data), ErrTruncated)
	}
	t := &byteReader{data: data, off: len(data) - trailerLen}
	tmagic, _ := t.u32("trailer magic")
	plen, _ := t.u64("trailer length")
	fcrc, _ := t.u32("trailer crc")
	payload := len(data) - trailerLen
	if tmagic != TrailerMagic || plen != uint64(payload) {
		return nil, fmt.Errorf("statestore: manifest trailer missing or displaced (magic %#x, declared %d vs %d payload bytes): %w",
			tmagic, plen, payload, ErrTruncated)
	}
	if got := crc32.Checksum(data[:payload], crcTable); got != fcrc {
		return nil, fmt.Errorf("statestore: manifest checksum %#x, trailer says %#x: %w", got, fcrc, ErrCorrupt)
	}
	r.data = data[:payload] // the body must not read into the trailer

	group, err := r.u32("group size")
	if err != nil {
		return nil, err
	}
	if group == 0 || group > maxFieldElem {
		return nil, fmt.Errorf("statestore: quantization group size %d: %w", group, ErrCorrupt)
	}
	nfields, err := r.u32("field count")
	if err != nil {
		return nil, err
	}
	if nfields == 0 || nfields > maxFields {
		return nil, fmt.Errorf("statestore: %d schema fields: %w", nfields, ErrCorrupt)
	}
	m := &manifest{Group: int(group), Fields: make([]FieldInfo, 0, nfields)}
	seen := make(map[string]bool, nfields)
	for i := uint32(0); i < nfields; i++ {
		nameLen, err := r.u32("field name length")
		if err != nil {
			return nil, err
		}
		if nameLen == 0 || nameLen > maxNameLen {
			return nil, fmt.Errorf("statestore: field name of %d bytes: %w", nameLen, ErrCorrupt)
		}
		nameBuf, err := r.need(int(nameLen), "field name")
		if err != nil {
			return nil, err
		}
		name := string(nameBuf)
		if seen[name] {
			return nil, fmt.Errorf("statestore: field %q appears twice in schema: %w", name, ErrCorrupt)
		}
		seen[name] = true
		elems, err := r.u64("field element count")
		if err != nil {
			return nil, err
		}
		if elems == 0 || elems > maxFieldElem {
			return nil, fmt.Errorf("statestore: field %q declares %d elements: %w", name, elems, ErrCorrupt)
		}
		m.Fields = append(m.Fields, FieldInfo{Name: name, Elems: int(elems)})
	}
	nsnaps, err := r.u64("snapshot count")
	if err != nil {
		return nil, err
	}
	if nsnaps > maxSnapshots {
		return nil, fmt.Errorf("statestore: %d snapshots declared: %w", nsnaps, ErrCorrupt)
	}
	// Each snapshot entry needs 16 bytes of identity plus 12 per field —
	// reject counts the remaining bytes cannot possibly hold.
	entry := 16 + 12*int64(nfields)
	if int64(nsnaps) > int64(r.remaining())/entry+1 {
		return nil, fmt.Errorf("statestore: %d snapshots declared in %d bytes: %w", nsnaps, r.remaining(), ErrCorrupt)
	}
	m.Snaps = make([]snapMeta, 0, nsnaps)
	for i := uint64(0); i < nsnaps; i++ {
		step, err := r.u64("snapshot step")
		if err != nil {
			return nil, err
		}
		simBits, err := r.u64("snapshot sim time")
		if err != nil {
			return nil, err
		}
		simTime := math.Float64frombits(simBits)
		if math.IsNaN(simTime) || math.IsInf(simTime, 0) {
			return nil, fmt.Errorf("statestore: snapshot %d sim time %v: %w", i, simTime, ErrCorrupt)
		}
		s := snapMeta{
			Step:    int64(step),
			SimTime: simTime,
			Off:     make([]int64, nfields),
			CRC:     make([]uint32, nfields),
		}
		if s.Step < 0 {
			return nil, fmt.Errorf("statestore: snapshot %d declares step %d: %w", i, s.Step, ErrCorrupt)
		}
		for fi := range m.Fields {
			off, err := r.u64("field offset")
			if err != nil {
				return nil, err
			}
			if off > math.MaxInt64-uint64(blobLen(m.Fields[fi].Elems, m.Group)) {
				return nil, fmt.Errorf("statestore: snapshot %d field %q offset %d: %w", i, m.Fields[fi].Name, off, ErrCorrupt)
			}
			crc, err := r.u32("field crc")
			if err != nil {
				return nil, err
			}
			s.Off[fi] = int64(off)
			s.CRC[fi] = crc
		}
		m.Snaps = append(m.Snaps, s)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("statestore: %d trailing bytes after snapshot table: %w", r.remaining(), ErrCorrupt)
	}
	return m, nil
}
