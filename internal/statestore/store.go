package statestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Store serves concurrent queries against a store directory through an
// io.ReaderAt over the data file. All query methods are safe for concurrent
// use; Refresh may run concurrently with queries (live ingest), swapping in
// a newer manifest without invalidating the decode cache — committed
// snapshots are immutable, so cached decodes stay valid forever.
type Store struct {
	dir  string
	obs  Observer
	data *os.File

	mu  sync.RWMutex
	man *manifest

	cache *fieldCache
}

// Open loads the manifest and opens the data file. o may be nil.
func Open(dir string, o Observer) (*Store, error) {
	s := &Store{dir: dir, obs: o, cache: newFieldCache(defaultCacheEntries)}
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(dir, DataFile))
	if err != nil {
		return nil, fmt.Errorf("statestore: %w", err)
	}
	s.man = man
	s.data = f
	return s, nil
}

func readManifest(dir string) (*manifest, error) {
	path := filepath.Join(dir, ManifestFile)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("statestore: reading %s: %w", path, err)
	}
	man, err := decodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("%w (manifest %s)", err, path)
	}
	return man, nil
}

// Refresh re-reads the manifest, picking up snapshots a live Writer has
// committed since Open (or the last Refresh). The data file handle is
// shared: committed offsets only ever grow, so readers never see holes.
func (s *Store) Refresh() error {
	man, err := readManifest(s.dir)
	if err != nil {
		return err
	}
	s.mu.Lock()
	// Never move backwards: a torn manifest replaced by an older commit
	// (impossible under the atomic-rename discipline, but cheap to guard)
	// must not shrink the index under a concurrent query.
	if len(man.Snaps) >= len(s.man.Snaps) {
		s.man = man
	}
	s.mu.Unlock()
	count(s.obs, "serve.refresh", 1)
	return nil
}

// manifestView returns the current manifest under the read lock.
func (s *Store) manifestView() *manifest {
	s.mu.RLock()
	m := s.man
	s.mu.RUnlock()
	return m
}

// Snapshots returns the number of committed snapshots visible to queries.
func (s *Store) Snapshots() int { return len(s.manifestView().Snaps) }

// Group returns the quantization group size of the stored encodings.
func (s *Store) Group() int { return s.manifestView().Group }

// Fields returns the store schema.
func (s *Store) Fields() []FieldInfo {
	m := s.manifestView()
	return append([]FieldInfo(nil), m.Fields...)
}

// Meta returns a snapshot's identity.
func (s *Store) Meta(snap int) (step int, simTime float64, err error) {
	m := s.manifestView()
	if snap < 0 || snap >= len(m.Snaps) {
		return 0, 0, fmt.Errorf("statestore: snapshot %d outside [0, %d)", snap, len(m.Snaps))
	}
	return int(m.Snaps[snap].Step), m.Snaps[snap].SimTime, nil
}

// Close releases the data file handle.
func (s *Store) Close() error { return s.data.Close() }

// Sample is one snapshot's contribution to a time series.
type Sample struct {
	Snap    int     `json:"snap"`
	Step    int     `json:"step"`
	SimTime float64 `json:"sim_time"`
	Value   float64 `json:"value"`
}

// Point decodes a single cell of a single snapshot — one 8-byte read for
// the group's scale and one 4-byte read for the quantized value, exactly
// the group-granular decode the layout was designed for. The decode matches
// precision.GroupScaled.DecodeInto bit-for-bit.
func (s *Store) Point(snap int, field string, cell int) (float64, error) {
	m := s.manifestView()
	fi, err := fieldIndex(m.Fields, field)
	if err != nil {
		return 0, err
	}
	if snap < 0 || snap >= len(m.Snaps) {
		return 0, fmt.Errorf("statestore: snapshot %d outside [0, %d)", snap, len(m.Snaps))
	}
	elems := m.Fields[fi].Elems
	if cell < 0 || cell >= elems {
		return 0, fmt.Errorf("statestore: cell %d outside field %q [0, %d)", cell, field, elems)
	}
	off := m.Snaps[snap].Off[fi]
	ng := groups(elems, m.Group)
	var sb [8]byte
	if _, err := s.data.ReadAt(sb[:], off+int64(8*(cell/m.Group))); err != nil {
		return 0, fmt.Errorf("statestore: reading %q scale: %w (%w)", field, err, ErrTruncated)
	}
	var vb [4]byte
	if _, err := s.data.ReadAt(vb[:], off+int64(8*ng)+int64(4*cell)); err != nil {
		return 0, fmt.Errorf("statestore: reading %q value: %w (%w)", field, err, ErrTruncated)
	}
	scale := math.Float64frombits(binary.LittleEndian.Uint64(sb[:]))
	val := math.Float32frombits(binary.LittleEndian.Uint32(vb[:]))
	count(s.obs, "serve.point.queries", 1)
	return float64(val) * scale, nil
}

// PointSeries extracts one cell's value across every snapshot.
func (s *Store) PointSeries(field string, cell int) ([]Sample, error) {
	t0 := time.Now()
	n := s.Snapshots()
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		v, err := s.Point(i, field, cell)
		if err != nil {
			return nil, err
		}
		step, sim, err := s.Meta(i)
		if err != nil {
			return nil, err
		}
		out = append(out, Sample{Snap: i, Step: step, SimTime: sim, Value: v})
	}
	observe(s.obs, "serve.point.latency_us", float64(time.Since(t0).Microseconds()))
	return out, nil
}

// RegionSample aggregates a cell range of one snapshot.
type RegionSample struct {
	Snap    int     `json:"snap"`
	Step    int     `json:"step"`
	SimTime float64 `json:"sim_time"`
	Min     float64 `json:"min"`
	Mean    float64 `json:"mean"`
	Max     float64 `json:"max"`
}

// RegionSeries aggregates cells [lo, hi) of one field across every
// snapshot, decoding only the quantization groups the range touches.
func (s *Store) RegionSeries(field string, lo, hi int) ([]RegionSample, error) {
	t0 := time.Now()
	m := s.manifestView()
	fi, err := fieldIndex(m.Fields, field)
	if err != nil {
		return nil, err
	}
	elems := m.Fields[fi].Elems
	if lo < 0 || hi > elems || lo >= hi {
		return nil, fmt.Errorf("statestore: region [%d, %d) outside field %q [0, %d)", lo, hi, field, elems)
	}
	g := m.Group
	ng := groups(elems, g)
	gLo, gHi := lo/g, (hi-1)/g+1
	scales := make([]byte, 8*(gHi-gLo))
	vals := make([]byte, 4*(hi-lo))
	out := make([]RegionSample, 0, len(m.Snaps))
	for i, sm := range m.Snaps {
		off := sm.Off[fi]
		if _, err := s.data.ReadAt(scales, off+int64(8*gLo)); err != nil {
			return nil, fmt.Errorf("statestore: reading %q scales: %w (%w)", field, err, ErrTruncated)
		}
		if _, err := s.data.ReadAt(vals, off+int64(8*ng)+int64(4*lo)); err != nil {
			return nil, fmt.Errorf("statestore: reading %q values: %w (%w)", field, err, ErrTruncated)
		}
		rs := RegionSample{Snap: i, Step: int(sm.Step), SimTime: sm.SimTime, Min: math.Inf(1), Max: math.Inf(-1)}
		var sum float64
		for c := lo; c < hi; c++ {
			scale := math.Float64frombits(binary.LittleEndian.Uint64(scales[8*(c/g-gLo):]))
			v := float64(math.Float32frombits(binary.LittleEndian.Uint32(vals[4*(c-lo):]))) * scale
			sum += v
			if v < rs.Min {
				rs.Min = v
			}
			if v > rs.Max {
				rs.Max = v
			}
		}
		rs.Mean = sum / float64(hi-lo)
		out = append(out, rs)
	}
	count(s.obs, "serve.region.queries", 1)
	observe(s.obs, "serve.region.latency_us", float64(time.Since(t0).Microseconds()))
	return out, nil
}

// DecodeField decodes one whole field of one snapshot, verifying its CRC32C,
// through the store's bounded decode cache. The returned slice is shared
// with the cache: callers must not mutate it.
func (s *Store) DecodeField(snap int, field string) ([]float64, error) {
	m := s.manifestView()
	fi, err := fieldIndex(m.Fields, field)
	if err != nil {
		return nil, err
	}
	if snap < 0 || snap >= len(m.Snaps) {
		return nil, fmt.Errorf("statestore: snapshot %d outside [0, %d)", snap, len(m.Snaps))
	}
	if v, ok := s.cache.get(snap, fi); ok {
		count(s.obs, "serve.cache.hits", 1)
		return v, nil
	}
	count(s.obs, "serve.cache.misses", 1)
	elems := m.Fields[fi].Elems
	g := m.Group
	ng := groups(elems, g)
	blob := make([]byte, blobLen(elems, g))
	off := m.Snaps[snap].Off[fi]
	if _, err := s.data.ReadAt(blob, off); err != nil {
		return nil, fmt.Errorf("statestore: reading %q of snapshot %d: %w (%w)", field, snap, err, ErrTruncated)
	}
	if got := crc32.Checksum(blob, crcTable); got != m.Snaps[snap].CRC[fi] {
		return nil, fmt.Errorf("statestore: %q of snapshot %d checksum %#x, manifest says %#x: %w",
			field, snap, got, m.Snaps[snap].CRC[fi], ErrCorrupt)
	}
	out := make([]float64, elems)
	for c := 0; c < elems; c++ {
		scale := math.Float64frombits(binary.LittleEndian.Uint64(blob[8*(c/g):]))
		v := math.Float32frombits(binary.LittleEndian.Uint32(blob[8*ng+4*c:]))
		out[c] = float64(v) * scale
	}
	s.cache.put(snap, fi, out)
	return out, nil
}

// defaultCacheEntries bounds the decode cache: full-field decodes are the
// expensive queries (analog search, diagnostics), and 256 entries of the
// largest runnable fields stay well under 100 MB.
const defaultCacheEntries = 256

// fieldCache is a bounded concurrent map of decoded fields keyed by
// (snapshot, field index). Eviction discards an arbitrary entry — committed
// snapshots are immutable, so any policy is correct, and the serving mix
// (scans touch every snapshot once per query) defeats recency anyway.
type fieldCache struct {
	mu      sync.RWMutex
	max     int
	entries map[[2]int][]float64
}

func newFieldCache(max int) *fieldCache {
	return &fieldCache{max: max, entries: make(map[[2]int][]float64)}
}

func (c *fieldCache) get(snap, field int) ([]float64, bool) {
	c.mu.RLock()
	v, ok := c.entries[[2]int{snap, field}]
	c.mu.RUnlock()
	return v, ok
}

func (c *fieldCache) put(snap, field int, v []float64) {
	c.mu.Lock()
	if len(c.entries) >= c.max {
		for k := range c.entries {
			delete(c.entries, k)
			break
		}
	}
	c.entries[[2]int{snap, field}] = v
	c.mu.Unlock()
}

// Diag is the derived-diagnostic record of one snapshot: the minimum
// surface pressure and maximum 10 m wind with their cells (the typhoon
// intensity proxies of Fig 6), plus the conservation-audit residuals when
// the capture recorded them.
type Diag struct {
	Snap        int     `json:"snap"`
	Step        int     `json:"step"`
	SimTime     float64 `json:"sim_time"`
	MinPs       float64 `json:"min_ps"`
	MinPsCell   int     `json:"min_ps_cell"`
	MaxWind     float64 `json:"max_wind"`
	MaxWindCell int     `json:"max_wind_cell"`
	HeatResid   float64 `json:"heat_resid"`
	FWResid     float64 `json:"fw_resid"`
}

// Diagnostic field names the capture path uses. PsField and WindField are
// required for Diagnostics; the residual fields are optional.
const (
	PsField        = "atm.ps"
	WindField      = "atm.wind10m"
	SSTField       = "ocn.sst"
	IceField       = "ice.conc"
	HeatResidField = "budget.heat_resid"
	FWResidField   = "budget.fw_resid"
)

// Diagnostics derives one snapshot's serving diagnostics from the decoded
// state.
func (s *Store) Diagnostics(snap int) (Diag, error) {
	t0 := time.Now()
	step, sim, err := s.Meta(snap)
	if err != nil {
		return Diag{}, err
	}
	d := Diag{Snap: snap, Step: step, SimTime: sim}
	ps, err := s.DecodeField(snap, PsField)
	if err != nil {
		return Diag{}, err
	}
	d.MinPs, d.MinPsCell = math.Inf(1), -1
	for c, v := range ps {
		if v < d.MinPs {
			d.MinPs, d.MinPsCell = v, c
		}
	}
	wind, err := s.DecodeField(snap, WindField)
	if err != nil {
		return Diag{}, err
	}
	d.MaxWind, d.MaxWindCell = math.Inf(-1), -1
	for c, v := range wind {
		if v > d.MaxWind {
			d.MaxWind, d.MaxWindCell = v, c
		}
	}
	if _, err := fieldIndex(s.manifestView().Fields, HeatResidField); err == nil {
		if hr, err := s.DecodeField(snap, HeatResidField); err == nil && len(hr) > 0 {
			d.HeatResid = hr[0]
		}
		if fw, err := s.DecodeField(snap, FWResidField); err == nil && len(fw) > 0 {
			d.FWResid = fw[0]
		}
	}
	count(s.obs, "serve.diag.queries", 1)
	observe(s.obs, "serve.diag.latency_us", float64(time.Since(t0).Microseconds()))
	return d, nil
}
