package statestore

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// getJSON drives one endpoint through the test server and decodes the body.
func getJSON(t *testing.T, ts *httptest.Server, path string, out any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding: %v", path, err)
	}
}

func TestServerEndpoints(t *testing.T) {
	dir := buildStore(t, 5, 140, 50)
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := &Server{st: st}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var meta metaReply
	getJSON(t, ts, "/v1/meta", &meta)
	if meta.Snapshots != 5 || meta.Group != DefaultGroup || len(meta.Fields) != 3 {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.FirstStep != 0 || meta.LastStep != 4 {
		t.Fatalf("meta steps = %d..%d, want 0..4", meta.FirstStep, meta.LastStep)
	}

	var series []Sample
	getJSON(t, ts, fmt.Sprintf("/v1/point?field=%s&cell=3", PsField), &series)
	if len(series) != 5 {
		t.Fatalf("point series length %d, want 5", len(series))
	}
	want, _ := st.Point(2, PsField, 3)
	if series[2].Value != want {
		t.Fatalf("series[2] = %v, want %v", series[2].Value, want)
	}

	var one Sample
	getJSON(t, ts, fmt.Sprintf("/v1/point?field=%s&cell=3&snap=2", PsField), &one)
	if one.Value != want || one.Snap != 2 {
		t.Fatalf("single-point reply = %+v", one)
	}

	var region []RegionSample
	getJSON(t, ts, fmt.Sprintf("/v1/region?field=%s&lo=10&hi=90", WindField), &region)
	if len(region) != 5 || region[0].Min > region[0].Max {
		t.Fatalf("region reply = %+v", region[:1])
	}

	var analogs []Analog
	getJSON(t, ts, fmt.Sprintf("/v1/analogs?field=%s&snap=1&k=3", PsField), &analogs)
	if len(analogs) != 3 || analogs[0].Snap != 1 || analogs[0].Dist != 0 {
		t.Fatalf("analog reply = %+v", analogs)
	}

	var diag Diag
	getJSON(t, ts, "/v1/diag?snap=0", &diag)
	if diag.MinPsCell < 0 || diag.MaxWindCell < 0 {
		t.Fatalf("diag reply = %+v", diag)
	}
	var diags []Diag
	getJSON(t, ts, "/v1/diag", &diags)
	if len(diags) != 5 {
		t.Fatalf("diag series length %d, want 5", len(diags))
	}

	// Error paths come back as HTTP 400, not hung connections or panics.
	for _, bad := range []string{
		"/v1/point?field=no.such&cell=0",
		"/v1/point?field=" + PsField,
		"/v1/point?field=" + PsField + "&cell=kaboom",
		"/v1/region?field=" + PsField + "&lo=50&hi=10",
		"/v1/analogs?field=" + PsField,
		"/v1/diag?snap=99",
	} {
		resp, err := ts.Client().Get(ts.URL + bad)
		if err != nil {
			t.Fatalf("GET %s: %v", bad, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestServerCloseReleasesListener pins the shutdown contract the serving
// layer shares with the Prometheus sink fix: Close joins the serve
// goroutine and frees the port.
func TestServerCloseReleasesListener(t *testing.T) {
	dir := buildStore(t, 2, 64, 16)
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := NewServer(st, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	resp, err := http.Get("http://" + addr + "/v1/meta")
	if err != nil {
		t.Fatalf("live GET: %v", err)
	}
	resp.Body.Close()
	if srv.srv.ReadHeaderTimeout <= 0 {
		t.Fatal("server has no ReadHeaderTimeout (slowloris-able)")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The port must be immediately re-bindable: the listener is gone and the
	// serve goroutine has exited (Close joined it).
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s after Close: %v", addr, err)
	}
	ln.Close()
	select {
	case <-srv.done:
	case <-time.After(2 * time.Second):
		t.Fatal("serve goroutine still running after Close")
	}
}
