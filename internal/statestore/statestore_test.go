package statestore

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/precision"
)

// synthSnapshot builds a deterministic snapshot with wide dynamic range
// (the quantizer's hard case) for step s.
func synthSnapshot(s, nAtm, nOcn int) Snapshot {
	ps := make([]float64, nAtm)
	wind := make([]float64, nAtm)
	sst := make([]float64, nOcn)
	for c := 0; c < nAtm; c++ {
		ps[c] = 1.0e5 - 4000*math.Sin(float64(c+s)*0.17) - 30*float64(s)
		wind[c] = 12*math.Abs(math.Cos(float64(c)*0.31+float64(s)*0.05)) + 1e-7*float64(c%13)
	}
	for c := 0; c < nOcn; c++ {
		sst[c] = 290 + 8*math.Sin(float64(c)*0.09-float64(s)*0.02)
	}
	return Snapshot{
		Step:    s,
		SimTime: float64(s) * 480,
		Fields: []Field{
			{Name: PsField, Data: ps},
			{Name: WindField, Data: wind},
			{Name: SSTField, Data: sst},
		},
	}
}

// buildStore writes n synthetic snapshots into a fresh store under t's
// temp dir and returns the directory.
func buildStore(t *testing.T, n, nAtm, nOcn int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "store")
	w, err := Create(dir, 0, nil)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for s := 0; s < n; s++ {
		if err := w.Append(synthSnapshot(s, nAtm, nOcn)); err != nil {
			t.Fatalf("Append %d: %v", s, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return dir
}

// TestRoundTripMatchesQuantizer pins the core contract: every decode path —
// full field, point, region — must agree bit-for-bit with
// precision.GroupScaled's own round trip of the original data.
func TestRoundTripMatchesQuantizer(t *testing.T) {
	const snaps, nAtm, nOcn = 6, 257, 130 // deliberately not multiples of the group
	dir := buildStore(t, snaps, nAtm, nOcn)
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	if st.Snapshots() != snaps {
		t.Fatalf("Snapshots() = %d, want %d", st.Snapshots(), snaps)
	}
	if st.Group() != DefaultGroup {
		t.Fatalf("Group() = %d, want %d", st.Group(), DefaultGroup)
	}
	for s := 0; s < snaps; s++ {
		orig := synthSnapshot(s, nAtm, nOcn)
		step, sim, err := st.Meta(s)
		if err != nil || step != orig.Step || sim != orig.SimTime {
			t.Fatalf("Meta(%d) = %d, %v, %v; want %d, %v", s, step, sim, err, orig.Step, orig.SimTime)
		}
		for _, f := range orig.Fields {
			gs, err := precision.EncodeGroupScaled(f.Data, DefaultGroup)
			if err != nil {
				t.Fatalf("reference encode: %v", err)
			}
			want := gs.Decode(nil)
			got, err := st.DecodeField(s, f.Name)
			if err != nil {
				t.Fatalf("DecodeField(%d, %s): %v", s, f.Name, err)
			}
			for c := range want {
				if got[c] != want[c] {
					t.Fatalf("snapshot %d %s[%d] = %v, want quantizer round trip %v", s, f.Name, c, got[c], want[c])
				}
			}
			// Point decode must agree with the full decode exactly.
			for _, c := range []int{0, 1, DefaultGroup - 1, DefaultGroup, len(want) - 1} {
				v, err := st.Point(s, f.Name, c)
				if err != nil {
					t.Fatalf("Point(%d, %s, %d): %v", s, f.Name, c, err)
				}
				if v != want[c] {
					t.Fatalf("Point(%d, %s, %d) = %v, want %v", s, f.Name, c, v, want[c])
				}
			}
		}
	}
	// Region aggregation over a range straddling group boundaries.
	lo, hi := DefaultGroup-5, 2*DefaultGroup+7
	rs, err := st.RegionSeries(PsField, lo, hi)
	if err != nil {
		t.Fatalf("RegionSeries: %v", err)
	}
	if len(rs) != snaps {
		t.Fatalf("RegionSeries returned %d samples, want %d", len(rs), snaps)
	}
	for s, r := range rs {
		full, _ := st.DecodeField(s, PsField)
		min, max, sum := math.Inf(1), math.Inf(-1), 0.0
		for c := lo; c < hi; c++ {
			v := full[c]
			sum += v
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		if r.Min != min || r.Max != max || r.Mean != sum/float64(hi-lo) {
			t.Fatalf("region sample %d = {%v %v %v}, want {%v %v %v}", s, r.Min, r.Mean, r.Max, min, sum/float64(hi-lo), max)
		}
	}
}

// TestPointSeriesAndErrors covers series extraction plus the range and
// schema error paths.
func TestPointSeriesAndErrors(t *testing.T) {
	dir := buildStore(t, 4, 100, 50)
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	series, err := st.PointSeries(WindField, 7)
	if err != nil {
		t.Fatalf("PointSeries: %v", err)
	}
	if len(series) != 4 {
		t.Fatalf("series length %d, want 4", len(series))
	}
	for i, smp := range series {
		if smp.Snap != i || smp.Step != i {
			t.Fatalf("sample %d = %+v", i, smp)
		}
	}
	if _, err := st.Point(0, "no.such", 0); err == nil {
		t.Fatal("Point on unknown field succeeded")
	}
	if _, err := st.Point(0, PsField, 100); err == nil {
		t.Fatal("Point past the field length succeeded")
	}
	if _, err := st.Point(99, PsField, 0); err == nil {
		t.Fatal("Point past the snapshot count succeeded")
	}
	if _, err := st.RegionSeries(PsField, 10, 5); err == nil {
		t.Fatal("inverted region succeeded")
	}
	if _, _, err := st.Meta(-1); err == nil {
		t.Fatal("Meta(-1) succeeded")
	}
}

// TestManifestCorruptionTable flips, truncates, and garbles the manifest;
// every mutation must surface as ErrCorrupt or ErrTruncated, never a panic
// or a silent success.
func TestManifestCorruptionTable(t *testing.T) {
	dir := buildStore(t, 3, 90, 40)
	path := filepath.Join(dir, ManifestFile)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(name string, f func([]byte) []byte) {
		bad := f(append([]byte(nil), good...))
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(dir, nil)
		if err == nil {
			t.Fatalf("%s: Open accepted a corrupt manifest", name)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("%s: error %v is neither ErrCorrupt nor ErrTruncated", name, err)
		}
	}
	mutate("truncated half", func(b []byte) []byte { return b[:len(b)/2] })
	mutate("truncated trailer", func(b []byte) []byte { return b[:len(b)-3] })
	mutate("empty", func(b []byte) []byte { return nil })
	mutate("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	mutate("payload bitflip", func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b })
	mutate("trailer bitflip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b })
	// Restore and confirm the good manifest still opens.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("reopening the restored store: %v", err)
	}
	st.Close()
}

// TestDataCorruptionDetected flips a byte in the data file: the full-field
// decode must fail its CRC with ErrCorrupt.
func TestDataCorruptionDetected(t *testing.T) {
	dir := buildStore(t, 2, 80, 40)
	data := filepath.Join(dir, DataFile)
	b, err := os.ReadFile(data)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/3] ^= 0x40
	if err := os.WriteFile(data, b, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	var sawCorrupt bool
	for s := 0; s < st.Snapshots(); s++ {
		for _, f := range st.Fields() {
			if _, err := st.DecodeField(s, f.Name); errors.Is(err, ErrCorrupt) {
				sawCorrupt = true
			}
		}
	}
	if !sawCorrupt {
		t.Fatal("no decode detected the flipped data byte")
	}
}

// TestSchemaEnforced pins the fixed-schema contract: a snapshot with a
// different field set or length is rejected.
func TestSchemaEnforced(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	w, err := Create(dir, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(Snapshot{Step: 0, Fields: []Field{{Name: "a", Data: make([]float64, 10)}}}); err != nil {
		t.Fatalf("first Append: %v", err)
	}
	if err := w.Append(Snapshot{Step: 1, Fields: []Field{{Name: "b", Data: make([]float64, 10)}}}); err == nil {
		t.Fatal("renamed field accepted")
	}
	if err := w.Append(Snapshot{Step: 1, Fields: []Field{{Name: "a", Data: make([]float64, 11)}}}); err == nil {
		t.Fatal("resized field accepted")
	}
	if err := w.Append(Snapshot{Step: 1}); err == nil {
		t.Fatal("field-less snapshot accepted")
	}
}

// TestAnalogPipelineMatchesBruteForce runs the staged pipeline at several
// worker counts against the sequential float64 reference: snapshot ids,
// order, and distances must match exactly.
func TestAnalogPipelineMatchesBruteForce(t *testing.T) {
	const snaps = 24
	dir := buildStore(t, snaps, 200, 60)
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		qs := rng.Intn(snaps)
		query, err := st.DecodeField(qs, PsField)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 3, snaps + 5} {
			want, err := st.BruteForceAnalogs(PsField, query, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3, 8} {
				got, err := st.NearestAnalogs(PsField, query, k, workers)
				if err != nil {
					t.Fatalf("NearestAnalogs(k=%d, workers=%d): %v", k, workers, err)
				}
				if len(got) != len(want) {
					t.Fatalf("k=%d workers=%d: %d results, want %d", k, workers, len(got), len(want))
				}
				for i := range want {
					if got[i].Snap != want[i].Snap || got[i].Dist != want[i].Dist {
						t.Fatalf("k=%d workers=%d result %d = {%d %v}, want {%d %v}",
							k, workers, i, got[i].Snap, got[i].Dist, want[i].Snap, want[i].Dist)
					}
				}
			}
		}
		// The query snapshot itself must always rank first at distance 0.
		top, err := st.NearestAnalogs(PsField, query, 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(top) != 1 || top[0].Snap != qs || top[0].Dist != 0 {
			t.Fatalf("self-query top analog = %+v, want snapshot %d at distance 0", top, qs)
		}
	}
}

// TestDiagnostics pins the derived-diagnostic endpoints against a direct
// scan of the decoded fields, including the optional residual fields.
func TestDiagnostics(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	w, err := Create(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := synthSnapshot(3, 120, 40)
	s.Fields = append(s.Fields,
		Field{Name: HeatResidField, Data: []float64{2.5e-12}},
		Field{Name: FWResidField, Data: []float64{1.25e-13}})
	if err := w.Append(s); err != nil {
		t.Fatal(err)
	}
	w.Close()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	d, err := st.Diagnostics(0)
	if err != nil {
		t.Fatalf("Diagnostics: %v", err)
	}
	ps, _ := st.DecodeField(0, PsField)
	wind, _ := st.DecodeField(0, WindField)
	minPs, minCell := math.Inf(1), -1
	for c, v := range ps {
		if v < minPs {
			minPs, minCell = v, c
		}
	}
	maxW, maxCell := math.Inf(-1), -1
	for c, v := range wind {
		if v > maxW {
			maxW, maxCell = v, c
		}
	}
	if d.MinPs != minPs || d.MinPsCell != minCell {
		t.Fatalf("MinPs = %v@%d, want %v@%d", d.MinPs, d.MinPsCell, minPs, minCell)
	}
	if d.MaxWind != maxW || d.MaxWindCell != maxCell {
		t.Fatalf("MaxWind = %v@%d, want %v@%d", d.MaxWind, d.MaxWindCell, maxW, maxCell)
	}
	if d.HeatResid == 0 || d.FWResid == 0 {
		t.Fatalf("residuals not surfaced: %+v", d)
	}
	// The stored residual went through quantization; it must round-trip to
	// within a float32 mantissa of the original.
	if rel := math.Abs(d.HeatResid-2.5e-12) / 2.5e-12; rel > 1.3e-7 {
		t.Fatalf("heat residual %v drifted %v relative from 2.5e-12", d.HeatResid, rel)
	}
}
