package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSunwayOceanLightSpecs(t *testing.T) {
	m := SunwayOceanLight()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper §6.3: >107520 nodes, 390 cores each, 41,932,800 total.
	if m.Nodes != 107520 || m.CoresPerNode != 390 {
		t.Errorf("nodes/cores = %d/%d", m.Nodes, m.CoresPerNode)
	}
	if m.TotalCores() != 41932800 {
		t.Errorf("total cores %d", m.TotalCores())
	}
	// One process per core group, six CGs per SW26010P.
	if m.RanksPerNode != 6 {
		t.Errorf("ranks per node %d", m.RanksPerNode)
	}
	if m.SupernodeSize != 256 || math.Abs(m.Oversub-16.0/3.0) > 1e-12 {
		t.Errorf("supernode %d, oversub %v", m.SupernodeSize, m.Oversub)
	}
}

func TestORISESpecs(t *testing.T) {
	m := ORISE()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.AccelPerNode != 4 {
		t.Errorf("GPUs per node %d", m.AccelPerNode)
	}
	if m.PCIeGBs != 16 || m.InjectGBs != 25 {
		t.Errorf("PCIe %v, network %v (paper: 16 and 25 GB/s)", m.PCIeGBs, m.InjectGBs)
	}
}

func TestNodeCoreConversions(t *testing.T) {
	m := SunwayOceanLight()
	if m.CoresForNodes(10) != 3900 {
		t.Error("CoresForNodes")
	}
	if m.NodesForCores(3900) != 10 || m.NodesForCores(3901) != 11 {
		t.Error("NodesForCores rounding")
	}
	if m.RanksForNodes(7) != 42 {
		t.Error("RanksForNodes")
	}
}

func TestCrossSupernodeFractionMonotone(t *testing.T) {
	m := SunwayOceanLight()
	if m.CrossSupernodeFraction(256) != 0 {
		t.Error("single supernode should not cross uplinks")
	}
	f := func(a, b uint16) bool {
		na, nb := int(a)+257, int(b)+257
		if na > nb {
			na, nb = nb, na
		}
		fa, fb := m.CrossSupernodeFraction(na), m.CrossSupernodeFraction(nb)
		return fa >= 0 && fb <= 1 && fb >= fa-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEffectiveHaloBWDegrades(t *testing.T) {
	m := SunwayOceanLight()
	small := m.EffectiveHaloBW(100)
	big := m.EffectiveHaloBW(100000)
	if small != m.InjectGBs {
		t.Errorf("within-supernode bandwidth %v", small)
	}
	if big >= small || big <= small/m.Oversub {
		t.Errorf("degraded bandwidth %v out of (%v, %v)", big, small/m.Oversub, small)
	}
	// ORISE has no oversubscription: bandwidth is flat.
	o := ORISE()
	if o.EffectiveHaloBW(10) != o.EffectiveHaloBW(4000) {
		t.Error("ORISE bandwidth should not vary")
	}
}

func TestValidateCatchesBadMachines(t *testing.T) {
	bad := &Machine{Name: "broken"}
	if err := bad.Validate(); err == nil {
		t.Error("empty machine validated")
	}
	m := SunwayOceanLight()
	m.LatencyUS = 0
	if err := m.Validate(); err == nil {
		t.Error("zero latency validated")
	}
}
