// Package machine models the two heterogeneous supercomputers of the paper
// (§6.3): the Sunway OceanLight system (107,520 nodes × one SW26010P
// 390-core CPU each — six core groups of one management processing element
// (MPE) plus 64 compute processing elements (CPEs) — on a 16:3
// oversubscribed multilevel fat tree with 256-node supernodes) and the
// ORISE system (CPU + four HIP GPUs per node, 16 GB/s PCIe, 25 GB/s
// interconnect).
//
// The structs carry the published topology and bandwidth figures; the
// perfmodel package combines them with calibrated per-point kernel costs to
// regenerate the paper's scaling results.
package machine

import (
	"fmt"
	"math"
)

// Machine describes one system.
type Machine struct {
	Name string

	Nodes         int     // total node count
	CoresPerNode  int     // hardware cores per node (Sunway: 390)
	RanksPerNode  int     // processes per node (Sunway: one per CG = 6)
	AccelPerNode  int     // discrete accelerators per node (ORISE: 4 GPUs)
	NodeGFlops    float64 // peak per node, all accelerators/CPEs
	MPEGFlops     float64 // per management core (MPE-only baseline rate)
	MemBWGBs      float64 // per-node memory bandwidth
	InjectGBs     float64 // per-node network injection bandwidth
	LatencyUS     float64 // nearest-neighbour network latency (microseconds)
	SupernodeSize int     // nodes sharing a leaf switch (Sunway: 256)
	Oversub       float64 // uplink oversubscription (Sunway: 16/3)
	PCIeGBs       float64 // host<->accelerator bandwidth (ORISE)
}

// SunwayOceanLight returns the OceanLight system model. Counts are from the
// paper; rate figures follow the published SW26010P characteristics
// (~14 TF/s FP64 per CPU, each of 6 CGs contributing via its 64 CPEs).
func SunwayOceanLight() *Machine {
	return &Machine{
		Name:          "Sunway OceanLight",
		Nodes:         107520,
		CoresPerNode:  390,
		RanksPerNode:  6,
		NodeGFlops:    14000,
		MPEGFlops:     16, // one MPE core, scalar
		MemBWGBs:      307,
		InjectGBs:     25,
		LatencyUS:     2.5,
		SupernodeSize: 256,
		Oversub:       16.0 / 3.0,
	}
}

// ORISE returns the ORISE system model: 4 MI60-class HIP GPUs per node
// (~6.6 TF/s FP64 each), 32-bit PCIe DMA at 16 GB/s, 25 GB/s network.
func ORISE() *Machine {
	return &Machine{
		Name:         "ORISE",
		Nodes:        4096,
		CoresPerNode: 32,
		RanksPerNode: 4, // one rank per GPU
		AccelPerNode: 4,
		NodeGFlops:   4 * 6600,
		MPEGFlops:    32,
		MemBWGBs:     4 * 1024,
		InjectGBs:    25,
		LatencyUS:    1.8,
		PCIeGBs:      16,
	}
}

// TotalCores returns the machine's full core count (Sunway OceanLight:
// 41,932,800).
func (m *Machine) TotalCores() int { return m.Nodes * m.CoresPerNode }

// NodesForCores converts a core count to nodes, rounding up.
func (m *Machine) NodesForCores(cores int) int {
	return (cores + m.CoresPerNode - 1) / m.CoresPerNode
}

// CoresForNodes converts node count to cores.
func (m *Machine) CoresForNodes(nodes int) int { return nodes * m.CoresPerNode }

// RanksForNodes returns the number of MPI-style processes on that many nodes.
func (m *Machine) RanksForNodes(nodes int) int { return nodes * m.RanksPerNode }

// CrossSupernodeFraction estimates the fraction of halo traffic that must
// traverse the oversubscribed uplinks when P ranks hold a 2-D block
// decomposition: once the job spans more than one supernode, roughly the
// block-boundary share of each supernode's surface crosses it. Returns 0
// for jobs inside a single supernode and grows toward an asymptote as the
// job spans more supernodes.
func (m *Machine) CrossSupernodeFraction(nodes int) float64 {
	if m.SupernodeSize == 0 || nodes <= m.SupernodeSize {
		return 0
	}
	supernodes := float64(nodes) / float64(m.SupernodeSize)
	// Each supernode holds a contiguous √n × √n patch of the block
	// decomposition; its boundary ranks talk across the uplinks. The
	// boundary share of one patch is the asymptote, approached as the job
	// spans more supernodes.
	side := math.Sqrt(float64(m.SupernodeSize))
	asym := (4*side - 4) / float64(m.SupernodeSize)
	if asym > 1 {
		asym = 1
	}
	return asym * (1 - 1/supernodes)
}

// EffectiveHaloBW returns the per-node halo bandwidth in GB/s after the
// oversubscription penalty for a job of the given node count.
func (m *Machine) EffectiveHaloBW(nodes int) float64 {
	f := m.CrossSupernodeFraction(nodes)
	if f == 0 || m.Oversub <= 1 {
		return m.InjectGBs
	}
	// Traffic fraction f is slowed by the oversubscription ratio.
	return m.InjectGBs / ((1 - f) + f*m.Oversub)
}

// Validate checks internal consistency.
func (m *Machine) Validate() error {
	if m.Nodes <= 0 || m.CoresPerNode <= 0 || m.RanksPerNode <= 0 {
		return fmt.Errorf("machine %s: non-positive size fields", m.Name)
	}
	if m.NodeGFlops <= 0 || m.InjectGBs <= 0 || m.LatencyUS <= 0 {
		return fmt.Errorf("machine %s: non-positive rate fields", m.Name)
	}
	return nil
}
