// Package seaice is the CICE4-substitute sea-ice component: a
// Semtner-style thermodynamic ice model (growth from ocean heat loss, melt
// from warm air/ocean, concentration evolution) with simple wind-driven
// free drift, on the same tripolar grid and block decomposition as the
// ocean. The paper notes the sea-ice component is not a performance
// bottleneck; the reproduction keeps it faithful to the coupling contract —
// it imports air temperature and ocean state, exports ice fraction and the
// fluxes that modulate air–sea exchange — and applies the same
// non-ocean-point exclusion as the ocean (§5.2.2).
package seaice

import (
	"fmt"
	"math"

	"repro/internal/grid"
)

// RhoIce is the ice density (kg/m³), exported so the budget ledger can
// convert ice volume to freshwater-equivalent mass.
const RhoIce = iceDensity

// Physical constants.
const (
	iceDensity  = 917.0
	latFusion   = 3.34e5 // J/kg
	iceCond     = 2.03   // W/(m K)
	freezePoint = 271.35 // K, seawater freezing
	maxThick    = 5.0    // m, thickness cap
)

// Config sets the ice model parameters.
type Config struct {
	Dt         float64 // step, s
	DriftCoeff float64 // ice speed as a fraction of wind speed (free drift ~2%)
	MinConc    float64 // concentration floor treated as ice-free
}

// DefaultConfig returns standard parameters.
func DefaultConfig() Config {
	return Config{Dt: 3600, DriftCoeff: 0.02, MinConc: 1e-3}
}

// Model is the sea-ice state on one rank's block of the ocean grid. It is
// partitioned on the same ownership map as the ocean: core hands both
// components the same TripolarDecomp, so ice and ocean columns are always
// co-resident and their surface exchange needs no communication.
type Model struct {
	G   *grid.Tripolar
	B   *grid.TripolarDecomp
	Cfg Config

	// State per local cell (with halo storage for drift transport).
	Conc  []float64 // ice concentration, 0–1
	Thick []float64 // mean thickness over the ice-covered fraction, m

	// Imports (set before Step).
	TAir  []float64 // surface air temperature, K
	SST   []float64 // sea surface temperature, K
	WindU []float64 // 10 m wind components
	WindV []float64

	// Exports (valid after Step).
	FreezeHeat []float64 // heat given to the ocean by freezing (negative = extracted), W/m²

	wet []bool
}

// New builds the ice model on the block with an initial polar ice cap.
func New(g *grid.Tripolar, b *grid.TripolarDecomp, cfg Config) (*Model, error) {
	if cfg.Dt <= 0 {
		return nil, fmt.Errorf("seaice: non-positive dt")
	}
	n := b.LNI() * b.LNJ()
	m := &Model{
		G: g, B: b, Cfg: cfg,
		Conc: make([]float64, n), Thick: make([]float64, n),
		TAir: make([]float64, n), SST: make([]float64, n),
		WindU: make([]float64, n), WindV: make([]float64, n),
		FreezeHeat: make([]float64, n),
		wet:        make([]bool, n),
	}
	for lj := 0; lj < b.NJ; lj++ {
		jg := b.J0 + lj
		lat := g.Lat[jg]
		for li := 0; li < b.NI; li++ {
			idx := b.LIdx(li, lj)
			gi := b.GIdx(li, lj)
			m.wet[idx] = g.Mask[gi]
			if !m.wet[idx] {
				continue
			}
			// Initial caps poleward of ±65°.
			if math.Abs(lat) > 65*math.Pi/180 {
				m.Conc[idx] = 0.9
				m.Thick[idx] = 1.5
			}
			m.TAir[idx] = 273.15 + 25*math.Cos(lat)*math.Cos(lat)
			m.SST[idx] = math.Max(freezePoint, 273.15+27*math.Cos(lat)*math.Cos(lat))
		}
	}
	// Wet mask in halos.
	wetF := b.Alloc()
	for lj := 0; lj < b.NJ; lj++ {
		for li := 0; li < b.NI; li++ {
			if m.wet[b.LIdx(li, lj)] {
				wetF[b.LIdx(li, lj)] = 1
			}
		}
	}
	b.Exchange(wetF)
	for i, v := range wetF {
		if v > 0.5 {
			m.wet[i] = true
		}
	}
	return m, nil
}

// Step advances the ice one thermodynamic + drift step. The sweep runs only
// over wet cells — the §5.2.2 exclusion applied to the ice model.
func (m *Model) Step() {
	dt := m.Cfg.Dt
	b := m.B

	// --- Thermodynamics ---
	for lj := 0; lj < b.NJ; lj++ {
		for li := 0; li < b.NI; li++ {
			idx := b.LIdx(li, lj)
			if !m.wet[idx] {
				continue
			}
			m.FreezeHeat[idx] = 0
			tAir := m.TAir[idx]
			sst := m.SST[idx]

			if m.Conc[idx] > m.Cfg.MinConc {
				// Conductive growth/melt through the slab: flux ∝ (Tf−Ta)/h.
				h := math.Max(m.Thick[idx], 0.1)
				cond := iceCond * (freezePoint - tAir) / h // W/m², >0 grows ice
				dh := cond * dt / (iceDensity * latFusion)
				// Bottom melt from warm ocean.
				oceanMelt := 20 * (sst - freezePoint) * dt / (iceDensity * latFusion)
				if oceanMelt > 0 {
					dh -= oceanMelt
				}
				m.Thick[idx] += dh
				if m.Thick[idx] <= 0 {
					m.Thick[idx] = 0
					m.Conc[idx] = 0
				} else if m.Thick[idx] > maxThick {
					m.Thick[idx] = maxThick
				}
				// Concentration: melt shrinks, freezing spreads.
				if dh < 0 {
					m.Conc[idx] = math.Max(0, m.Conc[idx]+dh/2)
				} else {
					m.Conc[idx] = math.Min(1, m.Conc[idx]+dh/4)
				}
				m.FreezeHeat[idx] = -cond * m.Conc[idx]
			} else if sst <= freezePoint && tAir < freezePoint {
				// New ice formation in open freezing water.
				m.Conc[idx] = 0.1
				m.Thick[idx] = 0.1
				m.FreezeHeat[idx] = iceDensity * latFusion * 0.1 * 0.1 / dt
			}
		}
	}

	// --- Free drift: upwind transport of concentration and volume by a
	// fraction of the surface wind ---
	b.ExchangeFields([]grid.HaloField{
		{Data: m.Conc, NLev: 1},
		{Data: m.Thick, NLev: 1},
		{Data: m.WindU, NLev: 1, Vec: true},
		{Data: m.WindV, NLev: 1, Vec: true},
	})

	vol := make([]float64, len(m.Conc))
	for i := range vol {
		vol[i] = m.Conc[i] * m.Thick[i]
	}
	b.Exchange(vol)

	newConc := append([]float64(nil), m.Conc...)
	newVol := append([]float64(nil), vol...)
	for lj := 0; lj < b.NJ; lj++ {
		jg := b.J0 + lj
		dx := m.G.DX[jg]
		dy := m.G.DY
		for li := 0; li < b.NI; li++ {
			idx := b.LIdx(li, lj)
			if !m.wet[idx] {
				continue
			}
			ui := m.Cfg.DriftCoeff * m.WindU[idx]
			vi := m.Cfg.DriftCoeff * m.WindV[idx]
			// First-order upwind gradients, masked at coasts.
			adv := func(f []float64) float64 {
				var d float64
				if ui >= 0 {
					if m.wet[idx-1] {
						d += ui * (f[idx] - f[idx-1]) / dx
					}
				} else if m.wet[idx+1] {
					d += ui * (f[idx+1] - f[idx]) / dx
				}
				if vi >= 0 {
					if m.wet[idx-m.B.LNI()] {
						d += vi * (f[idx] - f[idx-m.B.LNI()]) / dy
					}
				} else if m.wet[idx+m.B.LNI()] {
					d += vi * (f[idx+m.B.LNI()] - f[idx]) / dy
				}
				return d
			}
			newConc[idx] = clamp01(m.Conc[idx] - dt*adv(m.Conc))
			nv := vol[idx] - dt*adv(vol)
			if nv < 0 {
				nv = 0
			}
			newVol[idx] = nv
		}
	}
	for lj := 0; lj < b.NJ; lj++ {
		for li := 0; li < b.NI; li++ {
			idx := b.LIdx(li, lj)
			if !m.wet[idx] {
				continue
			}
			m.Conc[idx] = newConc[idx]
			if newConc[idx] > m.Cfg.MinConc {
				m.Thick[idx] = math.Min(newVol[idx]/newConc[idx], maxThick)
			} else {
				m.Conc[idx] = 0
				m.Thick[idx] = 0
			}
		}
	}
}

// IceArea returns the global ice-covered area (m²).
func (m *Model) IceArea() float64 {
	var local float64
	for lj := 0; lj < m.B.NJ; lj++ {
		jg := m.B.J0 + lj
		for li := 0; li < m.B.NI; li++ {
			idx := m.B.LIdx(li, lj)
			if m.wet[idx] {
				local += m.Conc[idx] * m.G.DX[jg] * m.G.DY
			}
		}
	}
	return m.B.AllreduceSum(local)
}

// LocalVolume returns this rank's contribution to the ice volume (m³),
// unreduced: the budget ledger batches the cross-rank sum with its other
// terms in one collective.
func (m *Model) LocalVolume() float64 {
	var local float64
	for lj := 0; lj < m.B.NJ; lj++ {
		jg := m.B.J0 + lj
		for li := 0; li < m.B.NI; li++ {
			idx := m.B.LIdx(li, lj)
			if m.wet[idx] {
				local += m.Conc[idx] * m.Thick[idx] * m.G.DX[jg] * m.G.DY
			}
		}
	}
	return local
}

// IceVolume returns the global ice volume (m³).
func (m *Model) IceVolume() float64 {
	var local float64
	for lj := 0; lj < m.B.NJ; lj++ {
		jg := m.B.J0 + lj
		for li := 0; li < m.B.NI; li++ {
			idx := m.B.LIdx(li, lj)
			if m.wet[idx] {
				local += m.Conc[idx] * m.Thick[idx] * m.G.DX[jg] * m.G.DY
			}
		}
	}
	return m.B.AllreduceSum(local)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
