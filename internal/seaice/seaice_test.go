package seaice

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/par"
)

func withIce(t *testing.T, nx, ny int, f func(m *Model)) {
	t.Helper()
	g, err := grid.NewTripolar(nx, ny, 5)
	if err != nil {
		t.Fatal(err)
	}
	par.Run(1, func(c *par.Comm) {
		b, err := grid.NewTripolarReplicated(g, c, 1)
		if err != nil {
			t.Error(err)
			return
		}
		m, err := New(g, b, DefaultConfig())
		if err != nil {
			t.Error(err)
			return
		}
		f(m)
	})
}

func TestValidation(t *testing.T) {
	g, _ := grid.NewTripolar(24, 12, 3)
	par.Run(1, func(c *par.Comm) {
		b, _ := grid.NewTripolarReplicated(g, c, 1)
		if _, err := New(g, b, Config{Dt: 0}); err == nil {
			t.Error("zero dt accepted")
		}
	})
}

func TestInitialPolarCaps(t *testing.T) {
	withIce(t, 48, 24, func(m *Model) {
		if m.IceArea() <= 0 || m.IceVolume() <= 0 {
			t.Error("no initial ice")
		}
		// Ice only on wet cells and only near the poles.
		for lj := 0; lj < m.B.NJ; lj++ {
			lat := m.G.Lat[m.B.J0+lj]
			for li := 0; li < m.B.NI; li++ {
				idx := m.B.LIdx(li, lj)
				if m.Conc[idx] > 0 && !m.wet[idx] {
					t.Fatal("ice on land")
				}
				if m.Conc[idx] > 0 && math.Abs(lat) < 55*math.Pi/180 {
					t.Fatalf("initial ice at %.0f°", lat*180/math.Pi)
				}
			}
		}
	})
}

func TestColdAirGrowsIceWarmAirMeltsIt(t *testing.T) {
	withIce(t, 48, 24, func(m *Model) {
		v0 := m.IceVolume()
		// Deep freeze everywhere.
		for i := range m.TAir {
			m.TAir[i] = 250
			m.SST[i] = freezePoint
		}
		for s := 0; s < 48; s++ {
			m.Step()
		}
		v1 := m.IceVolume()
		if v1 <= v0 {
			t.Errorf("ice did not grow in deep freeze: %v -> %v", v0, v1)
		}
		// Tropical heat melts it back.
		for i := range m.TAir {
			m.TAir[i] = 300
			m.SST[i] = 290
		}
		for s := 0; s < 400; s++ {
			m.Step()
		}
		v2 := m.IceVolume()
		if v2 >= v1/10 {
			t.Errorf("ice did not melt: %v -> %v", v1, v2)
		}
	})
}

func TestConcentrationBounds(t *testing.T) {
	withIce(t, 48, 24, func(m *Model) {
		for i := range m.TAir {
			m.TAir[i] = 255
			m.WindU[i] = 8
			m.WindV[i] = -3
		}
		for s := 0; s < 100; s++ {
			m.Step()
		}
		for i, c := range m.Conc {
			if c < 0 || c > 1 {
				t.Fatalf("conc[%d] = %v", i, c)
			}
			if m.Thick[i] < 0 || m.Thick[i] > maxThick+1e-9 {
				t.Fatalf("thick[%d] = %v", i, m.Thick[i])
			}
			if math.IsNaN(c) || math.IsNaN(m.Thick[i]) {
				t.Fatal("NaN in ice state")
			}
		}
	})
}

func TestNewIceFormsInFreezingOpenWater(t *testing.T) {
	withIce(t, 48, 24, func(m *Model) {
		// Clear all ice, freeze mid-latitude water.
		for i := range m.Conc {
			m.Conc[i] = 0
			m.Thick[i] = 0
			m.TAir[i] = 260
			m.SST[i] = freezePoint - 0.1
		}
		m.Step()
		if m.IceArea() <= 0 {
			t.Error("no new ice formed in freezing water")
		}
		// FreezeHeat must be positive somewhere (latent heat released).
		var anyHeat bool
		for _, h := range m.FreezeHeat {
			if h > 0 {
				anyHeat = true
			}
		}
		if !anyHeat {
			t.Error("no freezing heat released")
		}
	})
}

func TestDriftMovesIce(t *testing.T) {
	withIce(t, 48, 24, func(m *Model) {
		// Neutral thermodynamics, strong steady wind: the cap edge advects.
		for i := range m.TAir {
			m.TAir[i] = freezePoint
			m.SST[i] = freezePoint
			m.WindU[i] = 10
		}
		before := append([]float64(nil), m.Conc...)
		for s := 0; s < 20; s++ {
			m.Step()
		}
		var moved bool
		for i := range before {
			if math.Abs(m.Conc[i]-before[i]) > 1e-6 {
				moved = true
				break
			}
		}
		if !moved {
			t.Error("drift did not change the concentration field")
		}
	})
}

func TestParallelSerialIceAgreement(t *testing.T) {
	g, _ := grid.NewTripolar(24, 12, 3)
	run := func(px, py int) []float64 {
		var out []float64
		par.Run(px*py, func(c *par.Comm) {
			b, err := grid.NewTripolarDecompLayout(g, c, px, py, 1)
			if err != nil {
				t.Error(err)
				return
			}
			m, err := New(g, b, DefaultConfig())
			if err != nil {
				t.Error(err)
				return
			}
			for i := range m.WindU {
				m.WindU[i] = 6
				m.TAir[i] = 258
			}
			for s := 0; s < 5; s++ {
				m.Step()
			}
			conc := b.Alloc()
			copy(conc, m.Conc)
			gl := b.GatherGlobal(conc)
			if c.Rank() == 0 {
				out = gl
			}
		})
		return out
	}
	ref := run(1, 1)
	got := run(2, 2)
	for i := range ref {
		if math.Abs(ref[i]-got[i]) > 1e-12 {
			t.Fatalf("conc[%d]: serial %v vs parallel %v", i, ref[i], got[i])
		}
	}
}
