package core

import (
	"math"

	"repro/internal/statestore"
)

// Forecast-state capture for the serving layer: the coupled model hands
// per-checkpoint surface state to a statestore.Ingester, whose side
// goroutine persists it without perturbing the step loop. The capture
// itself is collective (it reuses the WriteSnapshot gathers), so it runs
// inside the RunResilient OnCheckpoint hook where every rank is already at
// the same committed step.

// CaptureServeSnapshot assembles the serving-layer field set: surface
// pressure and 10 m wind speed on atmosphere cells, SST and ice
// concentration on the global ocean grid, and — when the conservation audit
// is on — the latest interval's budget residuals as one-element fields.
// Collective: every rank must call it at the same step. Rank 0 receives the
// assembled snapshot and ok=true; the other ranks receive ok=false.
func (e *ESM) CaptureServeSnapshot() (snap statestore.Snapshot, ok bool) {
	ps := e.GlobalAtmPs()
	e.Atm.Wind10mInto(e.u10, e.v10)
	speed := e.assembleAtmField(func(c int, out []float64) { out[c] = math.Hypot(e.u10[c], e.v10[c]) })

	o := e.Ocn
	b := o.B
	sstG := b.GatherGlobal(o.T[:o.LNI*o.LNJ])
	iceLoc := b.Alloc()
	copy(iceLoc, e.Ice.Conc)
	iceG := b.GatherGlobal(iceLoc)

	if e.Comm.Rank() != 0 {
		return statestore.Snapshot{}, false
	}
	snap = statestore.Snapshot{
		Step:    e.CouplingSteps(),
		SimTime: e.SimulatedSeconds(),
		Fields: []statestore.Field{
			{Name: statestore.PsField, Data: ps},
			{Name: statestore.WindField, Data: speed},
			{Name: statestore.SSTField, Data: sstG},
			{Name: statestore.IceField, Data: iceG},
		},
	}
	if l := e.Budget(); l != nil {
		// The ledger exists for the whole run, so including the residual
		// fields keeps the store schema fixed; before the first audited
		// interval both residuals are simply zero.
		var heat, fw float64
		if ivs := l.Intervals(); len(ivs) > 0 {
			heat = ivs[len(ivs)-1].HeatResid()
			fw = ivs[len(ivs)-1].FWResid()
		}
		snap.Fields = append(snap.Fields,
			statestore.Field{Name: statestore.HeatResidField, Data: []float64{heat}},
			statestore.Field{Name: statestore.FWResidField, Data: []float64{fw}},
		)
	}
	return snap, true
}

// ServeCaptureHook adapts a statestore.Ingester into a RunResilient
// OnCheckpoint callback: every committed checkpoint is captured collectively
// and offered — non-blocking, drop-newest — to the store's persistence
// goroutine by rank 0. Checkpoints replayed after a rollback are filtered by
// step number, so the store's committed sequence stays strictly increasing
// even across recoveries.
func ServeCaptureHook(in *statestore.Ingester) func(e *ESM) {
	last := -1
	return func(e *ESM) {
		snap, ok := e.CaptureServeSnapshot()
		if !ok {
			return
		}
		if snap.Step <= last {
			return // replayed checkpoint after a rollback
		}
		last = snap.Step
		in.Offer(snap)
	}
}
