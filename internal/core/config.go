// Package core assembles AP3ESM: the GRIST-substitute atmosphere, the
// LICOM-substitute ocean, the CICE4-substitute sea ice, and the bucket land
// model, coupled through the CPL7-substitute coupler's component contract,
// clocks, and alarms. The five coupled configurations of Table 1 (1v1 …
// 25v10) are scale-mapped onto runnable grids; the paper-scale element
// counts are regenerated separately by the perfmodel package.
package core

import (
	"fmt"

	"repro/internal/atmos"
	"repro/internal/ocean"
	"repro/internal/precision"
	"repro/internal/seaice"
)

// Config is one coupled configuration.
type Config struct {
	Label string // "1v1", "3v2", "6v3", "10v5", "25v10"

	// Paper resolutions this configuration stands for.
	PaperAtmKm, PaperOcnKm int

	// Runnable grid sizes.
	AtmLevel, AtmNLev     int
	OcnNX, OcnNY, OcnNLev int

	AtmCfg atmos.Config
	OcnCfg ocean.Config
	IceCfg seaice.Config

	// Coupling frequencies per simulated day (paper: 180/36/180).
	AtmCouplingsPerDay int
	OcnCouplingsPerDay int
	IceCouplingsPerDay int

	Policy precision.Policy
}

// Configurations lists the five coupled pairs of Table 1 with their
// scale-mapped runnable sizes (DESIGN.md §3). The coupling cadence keeps
// the paper's 180/36/180 per-day pattern.
func Configurations() []Config {
	mk := func(label string, atmKm, ocnKm, lvl, nx, ny int) Config {
		c := Config{
			Label:      label,
			PaperAtmKm: atmKm, PaperOcnKm: ocnKm,
			AtmLevel: lvl, AtmNLev: 8,
			OcnNX: nx, OcnNY: ny, OcnNLev: 10,
			AtmCfg:             atmos.DefaultConfig(),
			OcnCfg:             ocean.DefaultConfig(),
			IceCfg:             seaice.DefaultConfig(),
			AtmCouplingsPerDay: 180,
			OcnCouplingsPerDay: 36,
			IceCouplingsPerDay: 180,
		}
		// The coupling interval is 8 simulated minutes (180/day): one
		// atmosphere model step per coupling.
		c.AtmCfg.DtDycore = 480.0 / float64(c.AtmCfg.PhysicsEvery) // 8 min / 15 substeps = 32 s
		c.OcnCfg.DtBaroclinic = 1200                               // 36/day → 2400 s interval = 2 steps
		c.IceCfg.Dt = 480
		return c
	}
	return []Config{
		mk("1v1", 1, 1, 5, 192, 96),
		mk("3v2", 3, 2, 4, 144, 72),
		mk("6v3", 6, 3, 4, 96, 48),
		mk("10v5", 10, 5, 3, 72, 36),
		mk("25v10", 25, 10, 3, 48, 24),
	}
}

// ConfigForLabel returns the configuration with the given Table 1 label.
func ConfigForLabel(label string) (Config, error) {
	for _, c := range Configurations() {
		if c.Label == label {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("core: unknown configuration %q (have 1v1, 3v2, 6v3, 10v5, 25v10)", label)
}
