package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pp"
)

// wireFields names the coupled prognostic fields in the order
// globalCoupledState flattens them, with their per-field slices split back
// out so bit-error budgets can be stated per field instead of over one
// anonymous buffer.
var wireFieldNames = []string{"Ps", "T", "Qv", "U", "SST", "TSoil", "Bucket"}

// splitCoupledState cuts a globalCoupledState buffer into named per-field
// slices using the same offsets the assembly used.
func splitCoupledState(e *ESM, buf []float64) map[string][]float64 {
	m := e.Atm
	nc, ne, nl := m.Mesh.NCells(), m.Mesh.NEdges(), m.NLev
	nT := len(e.Lnd.TSoil)
	out := make(map[string][]float64, len(wireFieldNames))
	o := 0
	for _, f := range wireFieldNames {
		n := 0
		switch f {
		case "Ps", "SST":
			n = nc
		case "T", "Qv":
			n = nl * nc
		case "U":
			n = nl * ne
		case "TSoil", "Bucket":
			n = nT
		}
		out[f] = buf[o : o+n]
		o += n
	}
	return out
}

// runWire advances a fresh audited conservative-remap model under the given
// wire format and returns rank 0's per-field global state, the worst audited
// residuals, and the cpl.wire.ratio gauge value (0 when unpublished).
func runWire(t *testing.T, ranks int, sched Schedule, wire par.WireFormat, steps int) (fields map[string][]float64, maxHeat, maxFW, ratio float64) {
	t.Helper()
	cfg, err := ConfigForLabel("25v10")
	if err != nil {
		t.Fatal(err)
	}
	par.Run(ranks, func(c *par.Comm) {
		e, err := NewWithOptions(cfg, c, WithSpace(pp.Serial{}),
			WithSchedule(sched), WithRemap(RemapCons), WithAudit(true),
			WithWireCompression(wire))
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < steps; i++ {
			if !e.Step() {
				t.Errorf("clock exhausted at step %d", i)
				return
			}
		}
		st := globalCoupledState(e)
		if c.Rank() == 0 {
			fields = splitCoupledState(e, st)
			s := e.Budget().Summary()
			maxHeat, maxFW = s.MaxHeatResid, s.MaxFWResid
			if o, ok := e.obs.(*obs.Obs); ok {
				ratio = o.Registry().Gauge("cpl.wire.ratio").Value()
			}
		}
	})
	return fields, maxHeat, maxFW, ratio
}

// The gate the compression rides behind: with group-scaled FP32 on every
// halo and on the nearest-neighbour rearrangers, the conservation audit must
// stay within its 1e-10 residual gate at 2, 4, and 8 ranks under both
// schedules. This holds because the conservative flux router is exempt from
// compression — the delivered flux integrals are the same f64 values both
// sides of the ledger tally — while halo quantization only perturbs
// redundantly recomputed overlap state.
func TestWireGS32ConservationAudit(t *testing.T) {
	const steps = 25 // five audited ocean couplings
	counts := []int{2, 4, 8}
	if testing.Short() {
		counts = []int{2, 8}
	}
	for _, ranks := range counts {
		for _, sched := range []Schedule{ScheduleSeq, ScheduleConc} {
			t.Run(fmt.Sprintf("ranks=%d/%v", ranks, sched), func(t *testing.T) {
				_, maxHeat, maxFW, ratio := runWire(t, ranks, sched, par.WireGS32, steps)
				if maxHeat > 1e-10 || maxFW > 1e-10 {
					t.Errorf("gs32 residuals %.3e/%.3e exceed the 1e-10 gate", maxHeat, maxFW)
				}
				if ratio < 1.6 {
					t.Errorf("cpl.wire.ratio = %.3f, want ≥ 1.6 (compression inactive?)", ratio)
				}
			})
		}
	}
}

// The per-field bit-error budget: a gs32 run may drift from the f64
// reference only within a small relative envelope of each field's dynamic
// range. The per-exchange quantization error is ≤ 2⁻²² of the group max;
// over 25 steps of coupled dynamics the accumulated divergence must stay
// bounded well below any physically meaningful scale.
func TestWireGS32StateWithinBudget(t *testing.T) {
	const steps = 25
	ref, refHeat, refFW, _ := runWire(t, 2, ScheduleSeq, par.WireF64, steps)
	if refHeat > 1e-10 || refFW > 1e-10 {
		t.Fatalf("f64 reference residuals %.3e/%.3e exceed the 1e-10 gate", refHeat, refFW)
	}
	got, _, _, _ := runWire(t, 2, ScheduleSeq, par.WireGS32, steps)
	for _, f := range wireFieldNames {
		a, b := ref[f], got[f]
		if len(a) != len(b) {
			t.Fatalf("%s: length %d vs %d", f, len(a), len(b))
		}
		scale := 0.0
		for _, v := range a {
			if av := math.Abs(v); av > scale {
				scale = av
			}
		}
		if scale == 0 {
			scale = 1
		}
		budget := scale * 1e-4
		worst, at := 0.0, -1
		for i := range a {
			if d := math.Abs(a[i] - b[i]); d > worst {
				worst, at = d, i
			}
		}
		if worst > budget {
			t.Errorf("%s[%d] drifts %.3e from f64, budget %.3e (scale %.3e)",
				f, at, worst, budget, scale)
		}
	}
}

// The default wire format is f64 and must stay bit-for-bit identical to a
// run that never heard of WithWireCompression — the zero-value option is the
// historical behaviour, which the rank-invariance tests then pin across rank
// counts.
func TestWireF64DefaultBitIdentical(t *testing.T) {
	const steps = 15
	explicit, _, _, ratio := runWire(t, 2, ScheduleSeq, par.WireF64, steps)
	if ratio != 0 {
		t.Errorf("cpl.wire.ratio published under f64: %v", ratio)
	}
	baseState, _, _, _ := runDecomp(t, 2, ScheduleSeq, true, steps)
	var base map[string][]float64
	{
		cfg, err := ConfigForLabel("25v10")
		if err != nil {
			t.Fatal(err)
		}
		par.Run(1, func(c *par.Comm) {
			e, err := NewWithOptions(cfg, c)
			if err != nil {
				t.Error(err)
				return
			}
			base = splitCoupledState(e, baseState)
		})
	}
	for _, f := range wireFieldNames {
		for i := range base[f] {
			if base[f][i] != explicit[f][i] {
				t.Fatalf("%s[%d]: explicit f64 %v differs from default %v",
					f, i, explicit[f][i], base[f][i])
			}
		}
	}
}
