package core

import (
	"fmt"
	"math"

	"repro/internal/grid"
)

// RemapMode selects how the coupler remaps air–sea fluxes between the
// atmosphere's icosahedral mesh and the ocean's tripolar grid.
type RemapMode int

const (
	// RemapNN delivers each ocean column the flux computed from its nearest
	// atmosphere cell — the historical mode. Fast and exactly invertible in
	// spot checks, but the area-integrated flux the atmosphere exports is
	// not the flux the ocean imports: the budget ledger reports the leak.
	RemapNN RemapMode = iota
	// RemapCons delivers first-order conservative fluxes: each wet ocean
	// cell receives the normalized-overlap-weighted average of the
	// per-atmosphere-cell fluxes, so the area integral is preserved to
	// round-off — MCT's conservative sparse-matrix interpolation (§5.1.1).
	RemapCons
)

// String implements fmt.Stringer.
func (m RemapMode) String() string {
	switch m {
	case RemapNN:
		return "nn"
	case RemapCons:
		return "cons"
	default:
		return fmt.Sprintf("RemapMode(%d)", int(m))
	}
}

// ParseRemap maps the -remap flag values onto RemapMode.
func ParseRemap(name string) (RemapMode, error) {
	switch name {
	case "nn":
		return RemapNN, nil
	case "cons":
		return RemapCons, nil
	default:
		return 0, fmt.Errorf("core: unknown remap mode %q (want nn or cons)", name)
	}
}

// consSub is the per-axis subsample count of the conservative overlap
// construction: each ocean cell is probed on a consSub×consSub lattice, so
// every weight is a multiple of 1/16 — exactly representable, and each wet
// row's weights sum to exactly 1.0 in floating point.
const consSub = 4

// Regridder holds the maps between the atmosphere's icosahedral mesh and
// the ocean's tripolar grid, the role MCT's sparse matrix interpolation
// plays in CPL7: the nearest-neighbour maps in both directions, and the
// first-order conservative overlap weights used by RemapCons and by the
// budget ledger's atmosphere-side interface integrals.
type Regridder struct {
	// OcnToAtm[i] is the atmosphere cell nearest to global ocean column i.
	OcnToAtm []int
	// AtmToOcn[c] is the global ocean column nearest to atmosphere cell c,
	// or -1 when no wet column is reachable (the cell is served by the land
	// model instead).
	AtmToOcn []int

	// Unmapped lists the non-land atmosphere cells whose spiral search found
	// no wet ocean column within the ring limit (deep-inland cells over the
	// analytic continents at fine ocean resolutions). The driver routes
	// these to the land model explicitly so their fluxes are never dropped.
	Unmapped []int

	// Conservative overlap weights in CSR layout over ocean columns: wet
	// column i overlaps atmosphere cells ConsCol[ConsPtr[i]:ConsPtr[i+1]]
	// with normalized weights ConsW summing to exactly 1 per row. Dry
	// columns have empty rows.
	ConsPtr []int32
	ConsCol []int32
	ConsW   []float64

	// AtmOverlapArea[c] = Ã_c = Σ_i ŵ_ic·A_i is the ocean area (m²) that
	// atmosphere cell c covers through the overlap weights — the
	// atmosphere-side interface areas of the budget ledger. Its total equals
	// the wet ocean area exactly up to summation round-off, which is what
	// makes the conservative mode's export and import integrals agree.
	AtmOverlapArea []float64
}

// NewRegridder precomputes the nearest-neighbour maps and the conservative
// overlap weights.
func NewRegridder(mesh *grid.IcosMesh, g *grid.Tripolar) *Regridder {
	r := &Regridder{
		OcnToAtm:       make([]int, g.NX*g.NY),
		AtmToOcn:       make([]int, mesh.NCells()),
		AtmOverlapArea: make([]float64, mesh.NCells()),
	}

	// Ocean columns → nearest atmosphere cell. A coarse latitude bucketing
	// of atmosphere cells keeps this O(N·√M) instead of O(N·M).
	const nBuckets = 64
	bw := math.Pi / float64(nBuckets)
	buckets := make([][]int, nBuckets)
	for c := 0; c < mesh.NCells(); c++ {
		b := bucketOf(mesh.LatCell[c], nBuckets)
		buckets[b] = append(buckets[b], c)
	}
	nearestAtm := func(p grid.Vec3, lat float64) int {
		best, bestDot := -1, -2.0
		b0 := bucketOf(lat, nBuckets)
		for db := 0; ; db++ {
			lo, hi := b0-db, b0+db
			if lo < 0 && hi >= nBuckets {
				break // every bucket searched
			}
			for _, b := range []int{lo, hi} {
				if b < 0 || b >= nBuckets || (db == 0 && b != b0) {
					continue
				}
				for _, c := range buckets[b] {
					if d := p.Dot(mesh.CellCenter[c]); d > bestDot {
						bestDot, best = d, c
					}
				}
			}
			if best < 0 {
				continue
			}
			// Termination bound: any cell in a still-unsearched bucket ring
			// is separated from p in latitude by at least the distance to
			// the searched band's nearer edge, so its dot product cannot
			// exceed cos(sep). Expanding stops only once the current best
			// provably beats everything outside the band — the fix for the
			// fixed two-ring cutoff, which could return a non-nearest cell
			// when the true nearest sat more than one bucket away.
			sep := math.Inf(1)
			if lo-1 >= 0 {
				sep = lat - (-math.Pi/2 + float64(lo)*bw)
			}
			if hi+1 < nBuckets {
				if s := (-math.Pi/2 + float64(hi+1)*bw) - lat; s < sep {
					sep = s
				}
			}
			if math.IsInf(sep, 1) || math.Cos(sep) < bestDot {
				break
			}
		}
		return best
	}

	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			p := grid.FromLonLat(g.Lon[i], g.Lat[j])
			r.OcnToAtm[j*g.NX+i] = nearestAtm(p, g.Lat[j])
		}
	}

	// Conservative overlap weights: probe each wet ocean cell on a
	// consSub×consSub lattice of sample points; each sample's containing
	// atmosphere cell is its nearest Voronoi center (exact containment on
	// the icosahedral Voronoi mesh), and the normalized weight of an
	// atmosphere cell is its sample count over consSub². Sample points of
	// land-masked atmosphere cells keep their weight (destination-area
	// normalization), so coastal mask mismatch damps the delivered flux
	// rather than breaking the conservation identity.
	dlon := 2 * math.Pi / float64(g.NX)
	dlat := 0.0
	if g.NY > 1 {
		dlat = g.Lat[1] - g.Lat[0]
	}
	r.ConsPtr = make([]int32, g.NX*g.NY+1)
	var hitCells [consSub * consSub]int
	var hitCounts [consSub * consSub]int
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			idx := j*g.NX + i
			if !g.Mask[idx] {
				r.ConsPtr[idx+1] = r.ConsPtr[idx]
				continue
			}
			nHit := 0
			for t := 0; t < consSub; t++ {
				latS := g.Lat[j] + ((float64(t)+0.5)/consSub-0.5)*dlat
				for s := 0; s < consSub; s++ {
					lonS := g.Lon[i] + ((float64(s)+0.5)/consSub-0.5)*dlon
					c := nearestAtm(grid.FromLonLat(lonS, latS), latS)
					found := false
					for h := 0; h < nHit; h++ {
						if hitCells[h] == c {
							hitCounts[h]++
							found = true
							break
						}
					}
					if !found {
						hitCells[nHit] = c
						hitCounts[nHit] = 1
						nHit++
					}
				}
			}
			for h := 0; h < nHit; h++ {
				w := float64(hitCounts[h]) / (consSub * consSub)
				r.ConsCol = append(r.ConsCol, int32(hitCells[h]))
				r.ConsW = append(r.ConsW, w)
				r.AtmOverlapArea[hitCells[h]] += w * g.Area[idx]
			}
			r.ConsPtr[idx+1] = r.ConsPtr[idx] + int32(nHit)
		}
	}

	// Atmosphere cells → nearest wet ocean column (grid-aligned lookup with
	// a spiral search for coastal cells whose nearest column is land).
	for c := 0; c < mesh.NCells(); c++ {
		lon, lat := mesh.LonCell[c], mesh.LatCell[c]
		if lon < 0 {
			lon += 2 * math.Pi
		}
		i := int(lon / (2 * math.Pi) * float64(g.NX))
		i = clampInt(i, 0, g.NX-1)
		j := nearestLatRow(g, lat)
		idx := j*g.NX + i
		if g.Mask[idx] {
			r.AtmToOcn[c] = idx
			continue
		}
		r.AtmToOcn[c] = spiralWet(g, i, j, 6)
		if r.AtmToOcn[c] < 0 && !grid.IsLand(lon, lat) {
			// Non-land cell with no reachable wet column: the driver routes
			// its surface exchange to the land model instead of dropping it.
			r.Unmapped = append(r.Unmapped, c)
		}
	}
	return r
}

// ConsRemap writes into dst (per owned wet ocean global column gi) the
// conservative overlap average of the per-atmosphere-cell field src. The
// caller iterates its block and asks one column at a time, keeping the loop
// allocation-free.
func (r *Regridder) ConsRemap(src []float64, gi int) float64 {
	var acc float64
	for p := r.ConsPtr[gi]; p < r.ConsPtr[gi+1]; p++ {
		acc += r.ConsW[p] * src[r.ConsCol[p]]
	}
	return acc
}

func bucketOf(lat float64, n int) int {
	b := int((lat + math.Pi/2) / math.Pi * float64(n))
	return clampInt(b, 0, n-1)
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// nearestLatRow finds the grid row whose center latitude is closest.
func nearestLatRow(g *grid.Tripolar, lat float64) int {
	best, bestD := 0, math.Inf(1)
	for j := 0; j < g.NY; j++ {
		if d := math.Abs(g.Lat[j] - lat); d < bestD {
			best, bestD = j, d
		}
	}
	return best
}

// spiralWet searches outward for the nearest wet column; -1 if none within
// the ring limit (deep-inland atmosphere cells, served by the land model).
func spiralWet(g *grid.Tripolar, i0, j0, rings int) int {
	for r := 1; r <= rings; r++ {
		for dj := -r; dj <= r; dj++ {
			j := j0 + dj
			if j < 0 || j >= g.NY {
				continue
			}
			for di := -r; di <= r; di++ {
				if maxAbs(di, dj) != r {
					continue
				}
				i := ((i0+di)%g.NX + g.NX) % g.NX
				if g.Mask[j*g.NX+i] {
					return j*g.NX + i
				}
			}
		}
	}
	return -1
}

func maxAbs(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}
