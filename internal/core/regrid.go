package core

import (
	"math"

	"repro/internal/grid"
)

// Regridder holds the nearest-neighbour maps between the atmosphere's
// icosahedral mesh and the ocean's tripolar grid, the role MCT's sparse
// matrix interpolation plays in CPL7. Nearest-neighbour is sufficient for
// the reproduction's resolutions and keeps the maps exactly invertible in
// tests' spot checks.
type Regridder struct {
	// OcnToAtm[i] is the atmosphere cell nearest to global ocean column i.
	OcnToAtm []int
	// AtmToOcn[c] is the global ocean column nearest to atmosphere cell c,
	// or -1 when the nearest column is land (the cell is served by the land
	// model instead).
	AtmToOcn []int
}

// NewRegridder precomputes both maps.
func NewRegridder(mesh *grid.IcosMesh, g *grid.Tripolar) *Regridder {
	r := &Regridder{
		OcnToAtm: make([]int, g.NX*g.NY),
		AtmToOcn: make([]int, mesh.NCells()),
	}

	// Ocean columns → nearest atmosphere cell. A coarse latitude bucketing
	// of atmosphere cells keeps this O(N·√M) instead of O(N·M).
	const nBuckets = 64
	buckets := make([][]int, nBuckets)
	for c := 0; c < mesh.NCells(); c++ {
		b := bucketOf(mesh.LatCell[c], nBuckets)
		buckets[b] = append(buckets[b], c)
	}
	nearestAtm := func(p grid.Vec3, lat float64) int {
		best, bestDot := -1, -2.0
		b0 := bucketOf(lat, nBuckets)
		for db := 0; db < nBuckets; db++ {
			searched := false
			for _, b := range []int{b0 - db, b0 + db} {
				if b < 0 || b >= nBuckets || (db == 0 && b != b0) {
					continue
				}
				searched = true
				for _, c := range buckets[b] {
					if d := p.Dot(mesh.CellCenter[c]); d > bestDot {
						bestDot, best = d, c
					}
				}
			}
			// Once found, one extra ring guards the bucket boundary.
			if best >= 0 && db > 1 {
				break
			}
			if !searched && best >= 0 {
				break
			}
		}
		return best
	}

	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			p := grid.FromLonLat(g.Lon[i], g.Lat[j])
			r.OcnToAtm[j*g.NX+i] = nearestAtm(p, g.Lat[j])
		}
	}

	// Atmosphere cells → nearest wet ocean column (grid-aligned lookup with
	// a spiral search for coastal cells whose nearest column is land).
	for c := 0; c < mesh.NCells(); c++ {
		lon, lat := mesh.LonCell[c], mesh.LatCell[c]
		if lon < 0 {
			lon += 2 * math.Pi
		}
		i := int(lon / (2 * math.Pi) * float64(g.NX))
		i = clampInt(i, 0, g.NX-1)
		j := nearestLatRow(g, lat)
		idx := j*g.NX + i
		if g.Mask[idx] {
			r.AtmToOcn[c] = idx
			continue
		}
		r.AtmToOcn[c] = spiralWet(g, i, j, 6)
	}
	return r
}

func bucketOf(lat float64, n int) int {
	b := int((lat + math.Pi/2) / math.Pi * float64(n))
	return clampInt(b, 0, n-1)
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// nearestLatRow finds the grid row whose center latitude is closest.
func nearestLatRow(g *grid.Tripolar, lat float64) int {
	best, bestD := 0, math.Inf(1)
	for j := 0; j < g.NY; j++ {
		if d := math.Abs(g.Lat[j] - lat); d < bestD {
			best, bestD = j, d
		}
	}
	return best
}

// spiralWet searches outward for the nearest wet column; -1 if none within
// the ring limit (deep-inland atmosphere cells, served by the land model).
func spiralWet(g *grid.Tripolar, i0, j0, rings int) int {
	for r := 1; r <= rings; r++ {
		for dj := -r; dj <= r; dj++ {
			j := j0 + dj
			if j < 0 || j >= g.NY {
				continue
			}
			for di := -r; di <= r; di++ {
				if maxAbs(di, dj) != r {
					continue
				}
				i := ((i0+di)%g.NX + g.NX) % g.NX
				if g.Mask[j*g.NX+i] {
					return j*g.NX + i
				}
			}
		}
	}
	return -1
}

func maxAbs(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}
