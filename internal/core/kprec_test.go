package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/par"
	"repro/internal/pp"
)

// runKprec advances a fresh audited conservative-remap model with the given
// kernel precision and returns rank 0's per-field global state plus the
// worst audited residuals — the kernel-precision twin of runWire.
func runKprec(t *testing.T, ranks int, sched Schedule, kp pp.Prec, steps int) (fields map[string][]float64, maxHeat, maxFW float64) {
	t.Helper()
	cfg, err := ConfigForLabel("25v10")
	if err != nil {
		t.Fatal(err)
	}
	par.Run(ranks, func(c *par.Comm) {
		e, err := NewWithOptions(cfg, c, WithSpace(pp.Serial{}),
			WithSchedule(sched), WithRemap(RemapCons), WithAudit(true),
			WithKernelPrecision(kp))
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < steps; i++ {
			if !e.Step() {
				t.Errorf("clock exhausted at step %d", i)
				return
			}
		}
		st := globalCoupledState(e)
		if c.Rank() == 0 {
			fields = splitCoupledState(e, st)
			s := e.Budget().Summary()
			maxHeat, maxFW = s.MaxHeatResid, s.MaxFWResid
		}
	})
	return fields, maxHeat, maxFW
}

// The gate the mixed-precision kernels ride behind: with the momentum and
// continuity dynamics running their float32 instantiations, the coupled
// conservation audit must stay within the same 1e-10 residual gate as f64,
// at 2, 4, and 8 ranks under both schedules. This holds because the
// accounting-sensitive kernels are float64 by policy — the ocean pressure
// integral, split correction, and tracer transport, and the atmosphere's
// geopotential integral, continuity, and transport — and flux-form
// transport telescopes exactly for any advecting velocity, however
// quantized.
func TestKernelPrecisionMixedConservationAudit(t *testing.T) {
	const steps = 25 // five audited ocean couplings
	counts := []int{2, 4, 8}
	if testing.Short() {
		counts = []int{2, 8}
	}
	for _, ranks := range counts {
		for _, sched := range []Schedule{ScheduleSeq, ScheduleConc} {
			t.Run(fmt.Sprintf("ranks=%d/%v", ranks, sched), func(t *testing.T) {
				_, maxHeat, maxFW := runKprec(t, ranks, sched, pp.PrecMixed, steps)
				if maxHeat > 1e-10 || maxFW > 1e-10 {
					t.Errorf("mixed residuals %.3e/%.3e exceed the 1e-10 gate", maxHeat, maxFW)
				}
			})
		}
	}
}

// The per-field bit-error budget: a mixed-precision run may drift from the
// f64 reference only within a bounded relative envelope of each field's
// dynamic range. Float32 kernel arithmetic rounds at ~6e-8 relative per
// operation and the coupled dynamics amplify it, so the envelope is wider
// than the wire-compression budget (whose error enters only through halo
// overlap state) — but it must stay orders of magnitude below the fields'
// physical variability, or mixed precision would be distorting the answer
// rather than rounding it.
func TestKernelPrecisionMixedStateWithinBudget(t *testing.T) {
	const steps = 25
	ref, refHeat, refFW := runKprec(t, 2, ScheduleSeq, pp.PrecF64, steps)
	if refHeat > 1e-10 || refFW > 1e-10 {
		t.Fatalf("f64 reference residuals %.3e/%.3e exceed the 1e-10 gate", refHeat, refFW)
	}
	got, _, _ := runKprec(t, 2, ScheduleSeq, pp.PrecMixed, steps)
	for _, f := range wireFieldNames {
		a, b := ref[f], got[f]
		if len(a) != len(b) {
			t.Fatalf("%s: length %d vs %d", f, len(a), len(b))
		}
		scale := 0.0
		for _, v := range a {
			if av := math.Abs(v); av > scale {
				scale = av
			}
		}
		if scale == 0 {
			scale = 1
		}
		budget := scale * 1e-3
		worst, at := 0.0, -1
		for i := range a {
			if d := math.Abs(a[i] - b[i]); d > worst {
				worst, at = d, i
			}
		}
		if worst > budget {
			t.Errorf("%s[%d] drifts %.3e from f64, budget %.3e (scale %.3e)",
				f, at, worst, budget, scale)
		}
	}
}

// The default kernel precision is f64 and must stay bit-for-bit identical
// to a run that never heard of WithKernelPrecision — the zero-value option
// is the historical behaviour, which the golden and rank-invariance tests
// then pin.
func TestKernelPrecisionF64DefaultBitIdentical(t *testing.T) {
	const steps = 15
	explicit, _, _ := runKprec(t, 2, ScheduleSeq, pp.PrecF64, steps)
	byDefault, _, _, _ := runWire(t, 2, ScheduleSeq, par.WireF64, steps)
	for _, f := range wireFieldNames {
		for i := range byDefault[f] {
			if byDefault[f][i] != explicit[f][i] {
				t.Fatalf("%s[%d]: explicit f64 %v differs from default %v",
					f, i, explicit[f][i], byDefault[f][i])
			}
		}
	}
}
