package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
)

// Component timing, the reproduction of the paper's measurement mechanism
// (§6.2): wall-clock timers around each component (GPTL's role), with the
// maximum across ranks reported to account for load imbalance, and a
// getTiming-style summary that converts component and whole-model times to
// SYPD.
//
// Since the obs layer landed, the timers themselves are obs spans; Timing
// is a thin adapter kept so existing call sites read accumulated sections
// the way the old accumulate-map did, and TimingReport is obs.Reduce
// rendered in the getTiming format (byte-compatible with the original).

// Timing exposes per-section accumulated wall time, backed by the model's
// observer.
type Timing struct {
	o obs.Observer
}

// Timing returns the adapter over this model's observer.
func (e *ESM) Timing() *Timing { return &Timing{o: e.obs} }

// Observer returns the model's observability handle.
func (e *ESM) Observer() obs.Observer { return e.obs }

// Section returns the accumulated time and call count of a section.
func (t *Timing) Section(name string) (time.Duration, int) {
	return t.o.Section(name)
}

// TimingRow is one line of the getTiming-style report.
type TimingRow struct {
	Section  string
	Calls    int
	MaxWall  time.Duration // maximum across ranks (§6.2 convention)
	SYPD     float64       // throughput if this section were the whole cost
	Fraction float64       // share of the total
}

// TimingReport reduces the timers across ranks (taking the maximum of both
// wall time and call count, as the paper does to account for load
// imbalance) and renders the per-component summary. Collective: every rank
// must call it; all ranks receive the rows.
func (e *ESM) TimingReport() []TimingRow {
	var local []obs.Point
	for _, p := range e.obs.Snapshot() {
		if p.Kind == obs.KindSection {
			local = append(local, p)
		}
	}
	reduced := obs.Reduce(e.Comm, local)

	simYears := e.SimulatedSeconds() / (365 * 86400)
	var total time.Duration
	rows := make([]TimingRow, 0, len(reduced))
	for _, p := range reduced {
		maxSec := p.Max
		d := time.Duration(maxSec * float64(time.Second))
		total += d
		sypd := 0.0
		if maxSec > 0 {
			sypd = simYears / (maxSec / 86400)
		}
		rows = append(rows, TimingRow{Section: p.Name, Calls: int(p.MaxCount), MaxWall: d, SYPD: sypd})
	}
	for i := range rows {
		if total > 0 {
			rows[i].Fraction = float64(rows[i].MaxWall) / float64(total)
		}
	}
	return rows
}

// FormatTiming renders the rows like the coupler's getTiming output.
func FormatTiming(rows []TimingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %14s %10s %7s\n", "component", "calls", "max wall", "SYPD", "share")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %14s %10.2f %6.1f%%\n",
			r.Section, r.Calls, r.MaxWall.Round(time.Microsecond), r.SYPD, 100*r.Fraction)
	}
	return b.String()
}

// timed wraps one component invocation with its span.
func (e *ESM) timed(name string, f func()) {
	sp := e.obs.StartSpan(name)
	f()
	sp.End()
}
