package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/par"
)

// Component timing, the reproduction of the paper's measurement mechanism
// (§6.2): wall-clock timers around each component (GPTL's role), with the
// maximum across ranks reported to account for load imbalance, and a
// getTiming-style summary that converts component and whole-model times to
// SYPD.

// Timing accumulates per-section wall time.
type Timing struct {
	sections map[string]time.Duration
	calls    map[string]int
}

func newTiming() *Timing {
	return &Timing{
		sections: make(map[string]time.Duration),
		calls:    make(map[string]int),
	}
}

// add records one timed call of a section.
func (t *Timing) add(name string, d time.Duration) {
	t.sections[name] += d
	t.calls[name]++
}

// Section returns the accumulated time and call count of a section.
func (t *Timing) Section(name string) (time.Duration, int) {
	return t.sections[name], t.calls[name]
}

// TimingRow is one line of the getTiming-style report.
type TimingRow struct {
	Section  string
	Calls    int
	MaxWall  time.Duration // maximum across ranks (§6.2 convention)
	SYPD     float64       // throughput if this section were the whole cost
	Fraction float64       // share of the total
}

// TimingReport reduces the timers across ranks (taking the maximum, as the
// paper does to account for load imbalance) and renders the per-component
// summary. Collective: every rank must call it; all ranks receive the rows.
func (e *ESM) TimingReport() []TimingRow {
	names := make([]string, 0, len(e.timing.sections))
	for n := range e.timing.sections {
		names = append(names, n)
	}
	// All ranks must iterate sections in the same order for the collective
	// reduction; gather the union of names first.
	allNames := par.Allgather(e.Comm, names)
	set := map[string]bool{}
	for _, list := range allNames {
		for _, n := range list {
			set[n] = true
		}
	}
	names = names[:0]
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)

	simYears := e.SimulatedSeconds() / (365 * 86400)
	var total time.Duration
	rows := make([]TimingRow, 0, len(names))
	for _, n := range names {
		local, _ := e.timing.Section(n)
		maxSec := e.Comm.Allreduce(local.Seconds(), par.OpMax)
		d := time.Duration(maxSec * float64(time.Second))
		total += d
		_, calls := e.timing.Section(n)
		sypd := 0.0
		if maxSec > 0 {
			sypd = simYears / (maxSec / 86400)
		}
		rows = append(rows, TimingRow{Section: n, Calls: calls, MaxWall: d, SYPD: sypd})
	}
	for i := range rows {
		if total > 0 {
			rows[i].Fraction = float64(rows[i].MaxWall) / float64(total)
		}
	}
	return rows
}

// FormatTiming renders the rows like the coupler's getTiming output.
func FormatTiming(rows []TimingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %14s %10s %7s\n", "component", "calls", "max wall", "SYPD", "share")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %14s %10.2f %6.1f%%\n",
			r.Section, r.Calls, r.MaxWall.Round(time.Microsecond), r.SYPD, 100*r.Fraction)
	}
	return b.String()
}

// timed wraps one component invocation with its timer.
func (e *ESM) timed(name string, f func()) {
	t0 := time.Now()
	f()
	e.timing.add(name, time.Since(t0))
}
