package core

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/par"
	"repro/internal/pp"
	"repro/internal/typhoon"
)

func resilientStart() time.Time { return time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC) }

func mkESM(t *testing.T, c *par.Comm) func() (*ESM, error) {
	t.Helper()
	cfg, err := ConfigForLabel("25v10")
	if err != nil {
		t.Fatal(err)
	}
	start := resilientStart()
	return func() (*ESM, error) {
		e, err := New(cfg, c, start, start.Add(24*time.Hour), pp.Serial{})
		if err != nil {
			return nil, err
		}
		typhoon.Seed(e.Atm, typhoon.DoksuriSeed())
		return e, nil
	}
}

func readSet(t *testing.T, dir string, nGroups int) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for g := 0; g < nGroups; g++ {
		name := filepath.Join(dir, "part-"+string(rune('0'+g))+".bin")
		b, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(name)] = b
	}
	return out
}

// The acceptance property: with a seeded plan injecting a checkpoint I/O
// error and a mid-run NaN, RunResilient completes the run and its final
// restart set is byte-identical to a fault-free run's.
func TestRunResilientRecoversBitForBit(t *testing.T) {
	const steps = 30
	days := float64(steps) / 180 // 180 atm couplings per simulated day

	// Fault-free reference.
	refDir := t.TempDir()
	par.Run(1, func(c *par.Comm) {
		e, err := mkESM(t, c)()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			e.Step()
		}
		if err := e.WriteRestart(refDir, 1); err != nil {
			t.Fatal(err)
		}
	})

	// Faulted resilient run: the 2nd checkpoint write fails with an I/O
	// error, and a NaN lands in the ocean temperature at the 21st step call.
	plan, err := fault.Parse("io-error@pario.write:2;nan@esm.step:21", 42)
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(plan)
	defer fault.Disarm()
	ckDir := filepath.Join(t.TempDir(), "ck")
	gotDir := t.TempDir()
	par.Run(1, func(c *par.Comm) {
		e, rep, err := RunResilient(mkESM(t, c), ResilientConfig{
			Days: days, CheckpointEvery: 8, MaxRetries: 5,
			Dir: ckDir, Backoff: time.Millisecond,
		})
		if err != nil {
			t.Fatalf("resilient run failed: %v (recoveries %+v)", err, rep.Recoveries)
		}
		if rep.Steps != steps {
			t.Fatalf("completed %d steps, want %d", rep.Steps, steps)
		}
		if len(rep.Recoveries) != 2 {
			t.Fatalf("expected 2 recoveries, got %+v", rep.Recoveries)
		}
		if rep.Recoveries[0].Resumed != 8 || rep.Recoveries[1].Resumed != 8 {
			t.Errorf("recoveries resumed from %+v, want step 8", rep.Recoveries)
		}
		fault.Disarm() // the final write below must be clean
		if err := e.WriteRestart(gotDir, 1); err != nil {
			t.Fatal(err)
		}
	})
	if c := plan.Counts(); c[fault.IOError] != 1 || c[fault.NaN] != 1 {
		t.Errorf("fault counts %v", c)
	}

	ref, got := readSet(t, refDir, 1), readSet(t, gotDir, 1)
	for name := range ref {
		if string(ref[name]) != string(got[name]) {
			t.Fatalf("%s differs from the fault-free run (not bit-identical)", name)
		}
	}
}

// A bit-flipped checkpoint must be caught by the v2 checksums at restore
// time and answered by falling back to the initial state — still finishing
// bit-for-bit.
func TestRunResilientSurvivesCorruptCheckpoint(t *testing.T) {
	const steps = 20
	days := float64(steps) / 180

	refDir := t.TempDir()
	par.Run(1, func(c *par.Comm) {
		e, _ := mkESM(t, c)()
		for i := 0; i < steps; i++ {
			e.Step()
		}
		if err := e.WriteRestart(refDir, 1); err != nil {
			t.Fatal(err)
		}
	})

	// The very first checkpoint is written with a flipped bit; the NaN at
	// step 12 then forces a rollback onto that corrupt set.
	plan, err := fault.Parse("bitflip@pario.write:1;nan@esm.step:12", 7)
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(plan)
	defer fault.Disarm()
	ckDir := filepath.Join(t.TempDir(), "ck")
	gotDir := t.TempDir()
	par.Run(1, func(c *par.Comm) {
		e, rep, err := RunResilient(mkESM(t, c), ResilientConfig{
			Days: days, CheckpointEvery: 8, MaxRetries: 5,
			Dir: ckDir, Backoff: time.Millisecond,
		})
		if err != nil {
			t.Fatalf("resilient run failed: %v (recoveries %+v)", err, rep.Recoveries)
		}
		if len(rep.Recoveries) == 0 || rep.Recoveries[0].Resumed != 0 {
			t.Fatalf("expected a restart from scratch, got %+v", rep.Recoveries)
		}
		fault.Disarm()
		if err := e.WriteRestart(gotDir, 1); err != nil {
			t.Fatal(err)
		}
	})

	ref, got := readSet(t, refDir, 1), readSet(t, gotDir, 1)
	for name := range ref {
		if string(ref[name]) != string(got[name]) {
			t.Fatalf("%s differs from the fault-free run after corrupt-checkpoint fallback", name)
		}
	}
}

// Two ranks: the collective agreement paths — a checkpoint I/O error on the
// single group leader must roll back BOTH ranks, and the run still matches a
// fault-free 2-rank run.
func TestRunResilientTwoRanks(t *testing.T) {
	const steps = 16
	days := float64(steps) / 180

	refDir := t.TempDir()
	par.Run(2, func(c *par.Comm) {
		e, err := mkESM(t, c)()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			e.Step()
		}
		if err := e.WriteRestart(refDir, 1); err != nil {
			t.Fatal(err)
		}
	})

	plan, err := fault.Parse("io-error@pario.write:2", 3)
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(plan)
	defer fault.Disarm()
	ckDir := filepath.Join(t.TempDir(), "ck")
	gotDir := t.TempDir()
	par.Run(2, func(c *par.Comm) {
		e, rep, err := RunResilient(mkESM(t, c), ResilientConfig{
			Days: days, CheckpointEvery: 6, MaxRetries: 3,
			Dir: ckDir, Backoff: time.Millisecond,
		})
		if err != nil {
			t.Fatalf("rank %d: %v", c.Rank(), err)
		}
		if len(rep.Recoveries) != 1 {
			t.Fatalf("rank %d: recoveries %+v", c.Rank(), rep.Recoveries)
		}
		if c.Rank() == 0 {
			fault.Disarm()
		}
		c.Barrier()
		if err := e.WriteRestart(gotDir, 1); err != nil {
			t.Fatal(err)
		}
	})

	ref, got := readSet(t, refDir, 1), readSet(t, gotDir, 1)
	for name := range ref {
		if string(ref[name]) != string(got[name]) {
			t.Fatalf("%s differs from the fault-free 2-rank run", name)
		}
	}
}

// When every retry hits the same fault, the driver gives up after
// MaxRetries instead of looping forever.
func TestRunResilientGivesUp(t *testing.T) {
	plan, err := fault.New(1, fault.Injection{
		Kind: fault.NaN, Site: "esm.step", Hit: 1, Rank: fault.AnyRank, Repeat: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(plan)
	defer fault.Disarm()
	par.Run(1, func(c *par.Comm) {
		_, rep, err := RunResilient(mkESM(t, c), ResilientConfig{
			Days: 0.1, CheckpointEvery: 4, MaxRetries: 2,
			Dir: filepath.Join(t.TempDir(), "ck"), Backoff: time.Millisecond,
		})
		if err == nil {
			t.Fatal("permanent fault not surfaced")
		}
		if len(rep.Recoveries) != 3 {
			t.Errorf("recoveries %+v, want MaxRetries+1 = 3", rep.Recoveries)
		}
	})
}

// Health catches each guardrail class with a per-component message.
func TestHealthGuardrails(t *testing.T) {
	par.Run(1, func(c *par.Comm) {
		mk := mkESM(t, c)
		cases := []struct {
			name   string
			poke   func(e *ESM)
			within string
		}{
			{"clean", func(e *ESM) {}, ""},
			{"atm nan", func(e *ESM) { e.Atm.T[0] = math.NaN() }, "atm health"},
			{"atm pressure", func(e *ESM) { e.Atm.Ps[0] = 1e3 }, "atm health"},
			{"ocn nan", func(e *ESM) { e.Ocn.T[0] = math.NaN() }, "ocn health"},
			{"ocn current", func(e *ESM) { e.Ocn.U[0] = 80 }, "CFL guardrail"},
			{"ice conc", func(e *ESM) { e.Ice.Conc[0] = 2.5 }, "ice health"},
		}
		for _, tc := range cases {
			e, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			tc.poke(e)
			err = e.Health()
			if tc.within == "" {
				if err != nil {
					t.Errorf("%s: %v", tc.name, err)
				}
				continue
			}
			if err == nil {
				t.Errorf("%s: not detected", tc.name)
			} else if !strings.Contains(err.Error(), tc.within) {
				t.Errorf("%s: error %q lacks %q", tc.name, err, tc.within)
			}
		}
	})
}
