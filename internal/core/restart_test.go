package core

import (
	"testing"
	"time"

	"repro/internal/par"
	"repro/internal/pario"
	"repro/internal/pp"
	"repro/internal/typhoon"
)

// The headline restart property: run A→B→C in one go, or run A→B, write a
// restart, load it into a fresh model, and run B→C — the final states must
// be bit-for-bit identical, including tracer-window flux accumulators and
// coupling-alarm phasing.
func TestRestartBitIdentical(t *testing.T) {
	const (
		stepsA = 23 // deliberately not a multiple of the ocean alarm period
		stepsB = 22
	)
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	cfg, err := ConfigForLabel("25v10")
	if err != nil {
		t.Fatal(err)
	}

	snapshot := func(e *ESM) map[string][]float64 {
		out := map[string][]float64{
			"atm.ps": append([]float64(nil), e.Atm.Ps...),
			"atm.t":  append([]float64(nil), e.Atm.T...),
			"atm.u":  append([]float64(nil), e.Atm.U...),
			"ocn.t":  append([]float64(nil), e.Ocn.T...),
			"ocn.e":  append([]float64(nil), e.Ocn.Eta...),
			"ice.c":  append([]float64(nil), e.Ice.Conc...),
			"lnd.t":  append([]float64(nil), e.Lnd.TSoil...),
		}
		return out
	}

	// Uninterrupted reference run.
	var ref map[string][]float64
	par.Run(1, func(c *par.Comm) {
		e, err := New(cfg, c, start, start.Add(24*time.Hour), pp.Serial{})
		if err != nil {
			t.Fatal(err)
		}
		typhoon.Seed(e.Atm, typhoon.DoksuriSeed())
		for i := 0; i < stepsA+stepsB; i++ {
			e.Step()
		}
		ref = snapshot(e)
	})

	// Interrupted run with a checkpoint in the middle.
	dir := t.TempDir()
	par.Run(1, func(c *par.Comm) {
		e, err := New(cfg, c, start, start.Add(24*time.Hour), pp.Serial{})
		if err != nil {
			t.Fatal(err)
		}
		typhoon.Seed(e.Atm, typhoon.DoksuriSeed())
		for i := 0; i < stepsA; i++ {
			e.Step()
		}
		if err := e.WriteRestart(dir, 1); err != nil {
			t.Fatal(err)
		}
	})
	var got map[string][]float64
	par.Run(1, func(c *par.Comm) {
		e, err := New(cfg, c, start, start.Add(24*time.Hour), pp.Serial{})
		if err != nil {
			t.Fatal(err)
		}
		// Note: no vortex seeding here — the state comes from the file.
		if err := e.ReadRestart(dir, 1); err != nil {
			t.Fatal(err)
		}
		if e.CouplingSteps() != stepsA {
			t.Fatalf("restored coupling steps %d", e.CouplingSteps())
		}
		if e.RestartAt() != start.Add(stepsA*8*time.Minute) {
			t.Fatalf("restored clock %v", e.RestartAt())
		}
		for i := 0; i < stepsB; i++ {
			e.Step()
		}
		got = snapshot(e)
	})

	for name := range ref {
		if len(ref[name]) != len(got[name]) {
			t.Fatalf("%s: length mismatch", name)
		}
		for i := range ref[name] {
			if ref[name][i] != got[name][i] {
				t.Fatalf("%s[%d]: restart %v vs uninterrupted %v (not bit-identical)",
					name, i, got[name][i], ref[name][i])
			}
		}
	}
}

// Restart across different process counts: a checkpoint written by 1 rank
// restores onto 4 ranks and continues identically.
func TestRestartAcrossRankCounts(t *testing.T) {
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	cfg, err := ConfigForLabel("25v10")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const stepsA, stepsB = 10, 8

	var ref []float64
	par.Run(1, func(c *par.Comm) {
		e, _ := New(cfg, c, start, start.Add(24*time.Hour), pp.Serial{})
		for i := 0; i < stepsA; i++ {
			e.Step()
		}
		if err := e.WriteRestart(dir, 1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < stepsB; i++ {
			e.Step()
		}
		ref = e.Ocn.GatherSurface(e.Ocn.Eta)
	})

	var got []float64
	par.Run(4, func(c *par.Comm) {
		e, err := New(cfg, c, start, start.Add(24*time.Hour), pp.Serial{})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.ReadRestart(dir, 1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < stepsB; i++ {
			e.Step()
		}
		out := e.Ocn.GatherSurface(e.Ocn.Eta)
		if c.Rank() == 0 {
			got = out
		}
	})

	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("eta[%d]: 1-rank %v vs restarted 4-rank %v", i, ref[i], got[i])
		}
	}
}

func TestRestartErrors(t *testing.T) {
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	cfg, _ := ConfigForLabel("25v10")
	par.Run(1, func(c *par.Comm) {
		e, _ := New(cfg, c, start, start.Add(time.Hour), pp.Serial{})
		// Reading a nonexistent restart fails.
		if err := e.ReadRestart(t.TempDir(), 1); err == nil {
			t.Error("missing restart accepted")
		}
		// Reading into a used model fails.
		dir := t.TempDir()
		e.Step()
		if err := e.WriteRestart(dir, 1); err != nil {
			t.Fatal(err)
		}
		if err := e.ReadRestart(dir, 1); err == nil {
			t.Error("restart into non-fresh model accepted")
		}
	})
}

func TestWriteSnapshot(t *testing.T) {
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	cfg, _ := ConfigForLabel("25v10")
	path := t.TempDir() + "/snap.bin"
	par.Run(2, func(c *par.Comm) {
		e, err := New(cfg, c, start, start.Add(time.Hour), pp.Serial{})
		if err != nil {
			t.Fatal(err)
		}
		e.Step()
		if err := e.WriteSnapshot(path); err != nil {
			t.Fatal(err)
		}
	})
	fields, err := pario.ReadGlobal([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.OcnNX * cfg.OcnNY
	for name, wantLen := range map[string]int{
		"ocn.rossby": g, "ocn.ke": g, "ocn.sst": g, "ice.conc": g,
	} {
		if len(fields[name]) != wantLen {
			t.Errorf("%s: %d values, want %d", name, len(fields[name]), wantLen)
		}
	}
	nc := len(fields["atm.ps"])
	if nc == 0 || len(fields["atm.wind10m"]) != nc || len(fields["atm.loncell"]) != nc {
		t.Error("atmosphere snapshot fields inconsistent")
	}
	for _, v := range fields["atm.ps"] {
		if v < 8e4 || v > 1.1e5 {
			t.Fatalf("snapshot ps %v", v)
		}
	}
	for _, v := range fields["atm.cloud"] {
		if v < 0 || v > 1 {
			t.Fatalf("snapshot cloud %v", v)
		}
	}
}
