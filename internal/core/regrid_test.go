package core

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func TestParseRemap(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want RemapMode
	}{{"nn", RemapNN}, {"cons", RemapCons}} {
		got, err := ParseRemap(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseRemap(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseRemap("bilinear"); err == nil {
		t.Error("unknown remap mode accepted")
	}
}

// bruteNearest is the O(M) reference for the bucketed nearest-cell search.
func bruteNearest(mesh *grid.IcosMesh, p grid.Vec3) (int, float64) {
	best, bestDot := -1, -2.0
	for c := 0; c < mesh.NCells(); c++ {
		if d := p.Dot(mesh.CellCenter[c]); d > bestDot {
			bestDot, best = d, c
		}
	}
	return best, bestDot
}

// The bucketed search must return a true nearest cell for every ocean
// column — the regression for the fixed two-ring early break, which could
// stop before reaching the real nearest cell when it sat more than one
// latitude bucket away. Ties are compared by dot product, which both
// searches compute identically.
func TestNearestAtmMatchesBruteForce(t *testing.T) {
	cases := []struct {
		nx, ny, stride int
	}{
		{48, 24, 1},   // C24-vs-coarse: full sweep
		{360, 160, 7}, // ~1° ocean rows against the coarse mesh: subsampled
	}
	mesh, err := grid.NewIcosMesh(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		g, err := grid.NewTripolar(tc.nx, tc.ny, 3)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRegridder(mesh, g)
		checked := 0
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i += tc.stride {
				p := grid.FromLonLat(g.Lon[i], g.Lat[j])
				_, wantDot := bruteNearest(mesh, p)
				got := r.OcnToAtm[j*g.NX+i]
				if gotDot := p.Dot(mesh.CellCenter[got]); gotDot != wantDot {
					t.Fatalf("%dx%d col (%d,%d): bucketed pick dot %.17g, brute force %.17g",
						tc.nx, tc.ny, i, j, gotDot, wantDot)
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatal("no columns checked")
		}
	}
}

// Every wet row of the conservative weights must sum to exactly 1.0: the
// weights are multiples of 1/16, so the sum is exact in floating point and
// any deviation is a construction bug.
func TestConsWeightsNormalized(t *testing.T) {
	mesh, _ := grid.NewIcosMesh(3)
	g, _ := grid.NewTripolar(48, 24, 5)
	r := NewRegridder(mesh, g)
	for idx := range g.Mask {
		var sum float64
		for p := r.ConsPtr[idx]; p < r.ConsPtr[idx+1]; p++ {
			if r.ConsW[p] <= 0 || r.ConsW[p] > 1 {
				t.Fatalf("column %d: weight %g out of range", idx, r.ConsW[p])
			}
			sum += r.ConsW[p]
		}
		if g.Mask[idx] {
			if sum != 1.0 {
				t.Fatalf("wet column %d: weights sum to %.17g, want exactly 1", idx, sum)
			}
		} else if r.ConsPtr[idx] != r.ConsPtr[idx+1] {
			t.Fatalf("dry column %d has %d weights", idx, r.ConsPtr[idx+1]-r.ConsPtr[idx])
		}
	}
}

// The conservation identity behind the budget closure: for any source field
// q, the ocean-side integral of the remapped field equals the
// atmosphere-side integral over the overlap areas Ã_c, up to summation
// round-off. Also checks Σ Ã_c equals the wet ocean area.
func TestConsConservationIdentity(t *testing.T) {
	mesh, _ := grid.NewIcosMesh(3)
	g, _ := grid.NewTripolar(48, 24, 5)
	r := NewRegridder(mesh, g)

	q := make([]float64, mesh.NCells())
	for c := range q {
		// Deterministic, sign-changing, multi-scale field.
		q[c] = 250*math.Sin(3*mesh.LonCell[c])*math.Cos(2*mesh.LatCell[c]) - 40
	}
	var ocnInt, atmInt, gross, wetArea, overlapArea float64
	for idx := range g.Mask {
		if !g.Mask[idx] {
			continue
		}
		ocnInt += g.Area[idx] * r.ConsRemap(q, idx)
		wetArea += g.Area[idx]
	}
	for c, ar := range r.AtmOverlapArea {
		atmInt += ar * q[c]
		gross += ar * math.Abs(q[c])
		overlapArea += ar
	}
	if gross == 0 {
		t.Fatal("degenerate test field")
	}
	if resid := math.Abs(ocnInt-atmInt) / gross; resid > 1e-12 {
		t.Errorf("conservation identity residual %.3e exceeds 1e-12", resid)
	}
	if rel := math.Abs(overlapArea-wetArea) / wetArea; rel > 1e-12 {
		t.Errorf("Σ Ã_c differs from wet area by %.3e relative", rel)
	}
}

// The regridder must be deterministic: the unmapped set (and all maps) of
// two constructions over the same grids are identical, so the
// budget.unmapped.cells gauge is stable across runs.
func TestUnmappedStableAndDisjointFromMapped(t *testing.T) {
	mesh, _ := grid.NewIcosMesh(3)
	g, _ := grid.NewTripolar(96, 48, 3)
	a, b := NewRegridder(mesh, g), NewRegridder(mesh, g)
	if len(a.Unmapped) != len(b.Unmapped) {
		t.Fatalf("unmapped count unstable: %d vs %d", len(a.Unmapped), len(b.Unmapped))
	}
	for i := range a.Unmapped {
		if a.Unmapped[i] != b.Unmapped[i] {
			t.Fatalf("unmapped set unstable at %d", i)
		}
	}
	for _, c := range a.Unmapped {
		if a.AtmToOcn[c] >= 0 {
			t.Errorf("unmapped cell %d has an ocean column", c)
		}
		if grid.IsLand(mesh.LonCell[c], mesh.LatCell[c]) {
			t.Errorf("unmapped cell %d is a land cell", c)
		}
	}
}

// Punching an artificial all-land region into the mask around a non-land
// atmosphere cell must surface that cell in Unmapped: the spiral search has
// nothing wet to reach within its ring limit, and the driver then routes
// the cell to the land model instead of dropping its fluxes.
func TestUnmappedDetectsInlandCells(t *testing.T) {
	mesh, _ := grid.NewIcosMesh(3)
	g, _ := grid.NewTripolar(360, 160, 3)

	// Find a mid-ocean atmosphere cell and dry out a block far wider than
	// the 6-ring spiral around its aligned column.
	target := -1
	for c := 0; c < mesh.NCells(); c++ {
		lon, lat := mesh.LonCell[c], mesh.LatCell[c]
		if lon < 0 {
			lon += 2 * math.Pi
		}
		if lat > -10*math.Pi/180 && lat < 10*math.Pi/180 &&
			lon > math.Pi+30*math.Pi/180 && lon < math.Pi+50*math.Pi/180 &&
			!grid.IsLand(lon, lat) {
			target = c
			break
		}
	}
	if target < 0 {
		t.Fatal("no mid-Pacific test cell found")
	}
	lon := mesh.LonCell[target]
	if lon < 0 {
		lon += 2 * math.Pi
	}
	i0 := int(lon / (2 * math.Pi) * float64(g.NX))
	j0 := nearestLatRow(g, mesh.LatCell[target])
	for dj := -9; dj <= 9; dj++ {
		for di := -9; di <= 9; di++ {
			j := j0 + dj
			if j < 0 || j >= g.NY {
				continue
			}
			i := ((i0+di)%g.NX + g.NX) % g.NX
			g.Mask[j*g.NX+i] = false
		}
	}
	r := NewRegridder(mesh, g)
	found := false
	for _, c := range r.Unmapped {
		if c == target {
			found = true
		}
	}
	if !found {
		t.Fatalf("cell %d over the dried-out region not reported unmapped (got %v)",
			target, r.Unmapped)
	}
}
