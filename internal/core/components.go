package core

import (
	"fmt"
	"time"

	"repro/internal/coupler"
)

// The adapters below wrap each model in the CPL7 component contract
// (coupler.Component): init/run/finalize plus import/export of named
// attribute vectors. The driver validates the exchange graph through them
// at startup; field names follow the convention that a name is exported by
// exactly one component.

type atmComp struct{ e *ESM }

func (a *atmComp) Name() string { return "atm" }
// atmExchangeFields is the atmosphere's export list: the split air–sea flux
// parts (the budget ledger's per-interface terms) replace the former
// aggregate qheat_parts/fwflux_parts placeholders.
var atmExchangeFields = []string{
	"taux", "tauy", "qsw", "qlw", "qsens", "qlat", "fwflux",
	"tair", "uwind", "vwind",
}

func (a *atmComp) Init() (exports, imports []string, err error) {
	return atmExchangeFields, []string{"sst", "ifrac"}, nil
}
func (a *atmComp) Run(dt time.Duration) error { a.e.atmosphereStep(); return nil }
func (a *atmComp) Export() (*coupler.AttrVect, error) {
	m := a.e.Atm
	nc := m.Mesh.NCells()
	av, err := coupler.NewAttrVect(atmExchangeFields, nc)
	if err != nil {
		return nil, err
	}
	if a.e.af == nil {
		a.e.af = newAtmFluxes(nc)
	}
	a.e.computeAtmFluxes()
	copy(av.MustField("taux"), a.e.af.taux)
	copy(av.MustField("tauy"), a.e.af.tauy)
	copy(av.MustField("qsw"), a.e.af.sw)
	copy(av.MustField("qlw"), a.e.af.lw)
	copy(av.MustField("qsens"), a.e.af.sens)
	copy(av.MustField("qlat"), a.e.af.lat)
	copy(av.MustField("fwflux"), a.e.af.emp)
	kb := m.NLev - 1
	copy(av.MustField("tair"), m.T[kb*nc:(kb+1)*nc])
	u, v := m.Wind10m()
	copy(av.MustField("uwind"), u)
	copy(av.MustField("vwind"), v)
	return av, nil
}
func (a *atmComp) Import(av *coupler.AttrVect) error {
	m := a.e.Atm
	if av.LSize != m.Mesh.NCells() {
		return fmt.Errorf("core: atm import size %d, want %d", av.LSize, m.Mesh.NCells())
	}
	if sst, err := av.Field("sst"); err == nil {
		copy(m.SST, sst)
	}
	if ifr, err := av.Field("ifrac"); err == nil {
		copy(m.IceFrac, ifr)
	}
	return nil
}
func (a *atmComp) Finalize() error { return nil }

type ocnComp struct{ e *ESM }

func (o *ocnComp) Name() string { return "ocn" }
func (o *ocnComp) Init() (exports, imports []string, err error) {
	return []string{"sst"},
		[]string{"taux", "tauy", "qsw", "qlw", "qsens", "qlat", "fwflux", "freezeheat"}, nil
}
func (o *ocnComp) Run(dt time.Duration) error { o.e.oceanImport(); o.e.oceanSubsteps(); return nil }
func (o *ocnComp) Export() (*coupler.AttrVect, error) {
	oc := o.e.Ocn
	b := oc.B
	av, err := coupler.NewAttrVect([]string{"sst"}, b.NJ*b.NI)
	if err != nil {
		return nil, err
	}
	copy(av.MustField("sst"), oc.SurfaceTemperature())
	return av, nil
}
func (o *ocnComp) Import(av *coupler.AttrVect) error {
	oc := o.e.Ocn
	b := oc.B
	if av.LSize != b.NJ*b.NI {
		return fmt.Errorf("core: ocn import size %d, want %d", av.LSize, b.NJ*b.NI)
	}
	set := func(name string, dst []float64) {
		if f, err := av.Field(name); err == nil {
			for lj := 0; lj < b.NJ; lj++ {
				for li := 0; li < b.NI; li++ {
					dst[o.e.ocnIdx2(li, lj)] = f[lj*b.NI+li]
				}
			}
		}
	}
	set("taux", oc.TauX)
	set("tauy", oc.TauY)
	// Reassemble net heat from the split parts plus the same-grid ice term.
	parts := make([][]float64, 0, 5)
	for _, name := range []string{"qsw", "qlw", "qsens", "qlat", "freezeheat"} {
		if f, err := av.Field(name); err == nil {
			parts = append(parts, f)
		}
	}
	if len(parts) > 0 {
		for lj := 0; lj < b.NJ; lj++ {
			for li := 0; li < b.NI; li++ {
				var q float64
				for _, f := range parts {
					q += f[lj*b.NI+li]
				}
				oc.QHeat[o.e.ocnIdx2(li, lj)] = q
			}
		}
	}
	set("fwflux", oc.FWFlux)
	return nil
}
func (o *ocnComp) Finalize() error { return nil }

type iceComp struct{ e *ESM }

func (i *iceComp) Name() string { return "ice" }
func (i *iceComp) Init() (exports, imports []string, err error) {
	return []string{"ifrac", "freezeheat"},
		[]string{"tair", "uwind", "vwind", "sst"}, nil
}
func (i *iceComp) Run(dt time.Duration) error { i.e.iceStep(); return nil }
func (i *iceComp) Export() (*coupler.AttrVect, error) {
	ic := i.e.Ice
	b := ic.B
	av, err := coupler.NewAttrVect([]string{"ifrac", "freezeheat"}, b.NJ*b.NI)
	if err != nil {
		return nil, err
	}
	fr := av.MustField("ifrac")
	fh := av.MustField("freezeheat")
	for lj := 0; lj < b.NJ; lj++ {
		for li := 0; li < b.NI; li++ {
			idx := b.LIdx(li, lj)
			fr[lj*b.NI+li] = ic.Conc[idx]
			fh[lj*b.NI+li] = ic.FreezeHeat[idx]
		}
	}
	return av, nil
}
func (i *iceComp) Import(av *coupler.AttrVect) error {
	ic := i.e.Ice
	b := ic.B
	if av.LSize != b.NJ*b.NI {
		return fmt.Errorf("core: ice import size %d, want %d", av.LSize, b.NJ*b.NI)
	}
	set := func(name string, dst []float64) {
		if f, err := av.Field(name); err == nil {
			for lj := 0; lj < b.NJ; lj++ {
				for li := 0; li < b.NI; li++ {
					dst[b.LIdx(li, lj)] = f[lj*b.NI+li]
				}
			}
		}
	}
	set("tair", ic.TAir)
	set("uwind", ic.WindU)
	set("vwind", ic.WindV)
	set("sst", ic.SST)
	return nil
}
func (i *iceComp) Finalize() error { return nil }
