package core

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/par"
	"repro/internal/precision"
	"repro/internal/statestore"
)

// TestServeLiveIngest pins the live-ingest path end to end: a resilient run
// feeds the forecast store through the OnCheckpoint hook while surviving a
// corrupt checkpoint and a mid-run NaN. The store must end up with exactly
// one snapshot per distinct committed step — the checkpoint replayed after
// the rollback-to-scratch is filtered, not double-ingested — and the stored
// surface pressure must equal the quantized round trip of a fault-free
// reference run at the same step (RunResilient recovers bit-for-bit, so the
// states agree exactly).
func TestServeLiveIngest(t *testing.T) {
	const steps = 20
	days := float64(steps) / 180

	// Fault-free reference: the surface pressure at step 16 (the last
	// committed checkpoint of the resilient run below).
	var refPs []float64
	par.Run(1, func(c *par.Comm) {
		e, err := mkESM(t, c)()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 16; i++ {
			e.Step()
		}
		snap, ok := e.CaptureServeSnapshot()
		if !ok {
			t.Fatal("rank 0 capture returned ok=false")
		}
		if len(snap.Fields) != 4 {
			t.Fatalf("capture has %d fields, want 4 (audit off)", len(snap.Fields))
		}
		refPs = snap.Fields[0].Data
	})

	// The first checkpoint is written with a flipped bit; the NaN at step 12
	// forces a rollback onto that corrupt set, which falls back to scratch
	// and replays — re-committing the step-8 checkpoint a second time.
	plan, err := fault.Parse("bitflip@pario.write:1;nan@esm.step:12", 7)
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(plan)
	defer fault.Disarm()

	storeDir := filepath.Join(t.TempDir(), "store")
	w, err := statestore.Create(storeDir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	in := statestore.NewIngester(w, 8, nil)

	ckDir := filepath.Join(t.TempDir(), "ck")
	par.Run(1, func(c *par.Comm) {
		_, rep, err := RunResilient(mkESM(t, c), ResilientConfig{
			Days: days, CheckpointEvery: 8, MaxRetries: 5,
			Dir: ckDir, Backoff: time.Millisecond,
			OnCheckpoint: ServeCaptureHook(in),
		})
		if err != nil {
			t.Fatalf("resilient run failed: %v (recoveries %+v)", err, rep.Recoveries)
		}
		if len(rep.Recoveries) != 1 {
			t.Fatalf("expected 1 recovery, got %+v", rep.Recoveries)
		}
		if rep.Checkpoints != 3 {
			t.Fatalf("committed %d checkpoints, want 3 (8, replayed 8, 16)", rep.Checkpoints)
		}
	})
	if err := in.Close(); err != nil {
		t.Fatalf("ingester: %v", err)
	}
	if in.Dropped() != 0 {
		t.Fatalf("dropped %d snapshots at queue depth 8", in.Dropped())
	}

	st, err := statestore.Open(storeDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Snapshots() != 2 {
		t.Fatalf("store holds %d snapshots, want 2 (steps 8 and 16)", st.Snapshots())
	}
	for i, want := range []int{8, 16} {
		step, sim, err := st.Meta(i)
		if err != nil {
			t.Fatal(err)
		}
		if step != want {
			t.Errorf("snapshot %d at step %d, want %d", i, step, want)
		}
		if sim <= 0 {
			t.Errorf("snapshot %d sim time %v", i, sim)
		}
	}

	// Bit-for-bit: the stored step-16 pressure equals the reference state
	// pushed through the same group-scaled quantizer.
	gs, err := precision.EncodeGroupScaled(refPs, st.Group())
	if err != nil {
		t.Fatal(err)
	}
	want := gs.Decode(nil)
	got, err := st.DecodeField(1, statestore.PsField)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stored field has %d cells, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ps[%d] = %v, want %v (stored state differs from fault-free reference)", i, got[i], want[i])
		}
	}

	// The diagnostics endpoint sees the same store.
	d, err := st.Diagnostics(1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Step != 16 || d.MinPs <= 0 || d.MaxWind < 0 {
		t.Fatalf("diagnostics = %+v", d)
	}
}
