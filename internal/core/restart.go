package core

import (
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/grid"
	"repro/internal/par"
	"repro/internal/pario"
)

// Restart support: the coupled model checkpoints through the §5.2.5
// subfile-partitioned parallel I/O and resumes bit-for-bit. Distributed
// ocean/ice fields are written as per-row chunks of the global index space
// by every rank. Replicated atmosphere and land states are written by rank 0
// only; decomposed, every rank writes the chunks it owns — contiguous cell
// ranges, the per-level runs of its owned edges, and the runs of its owned
// land slots — so the checkpoint is a rank-count-independent global image
// either way. Each rank reads the whole (small) restart set back and keeps
// its own region, which also makes restarts valid across rank counts and
// across the replicated/decomposed dataflows.

// restartMeta packs the counters a resumed run must reinstate.
const metaField = "meta"

// WriteRestart checkpoints the full coupled state into dir as nGroups
// binary subfiles. It must be called at a coupling boundary (between Step
// calls), which is the only time the driver is quiescent.
//
// The write is atomic end-to-end: subfiles land in a staging directory that
// is swapped into place only after every writer group has succeeded, so a
// crash or injected I/O error mid-checkpoint never clobbers the previous
// good restart set. Collective: all ranks participate and agree on the
// outcome.
func (e *ESM) WriteRestart(dir string, nGroups int) error {
	fields := e.restartFields()
	staging := dir + ".staging"
	var prep error
	if e.Comm.Rank() == 0 {
		os.RemoveAll(staging)
		prep = os.MkdirAll(staging, 0o755)
	}
	e.Comm.Barrier()

	werr := prep
	if werr == nil {
		werr = pario.WriteSubfilesTo(e.Comm, staging, nGroups, fields, e.obs)
	}
	// Collective agreement: the swap happens only if every group leader
	// succeeded, and every rank reports the same verdict.
	bad := 0.0
	if werr != nil {
		bad = 1
	}
	if e.Comm.Allreduce(bad, par.OpMax) != 0 {
		if e.Comm.Rank() == 0 {
			os.RemoveAll(staging)
		}
		e.Comm.Barrier()
		if werr != nil {
			return werr
		}
		return fmt.Errorf("core: checkpoint to %s failed on another rank", dir)
	}
	var cerr error
	if e.Comm.Rank() == 0 {
		cerr = commitRestartSet(staging, dir)
	}
	bad = 0
	if cerr != nil {
		bad = 1
	}
	if e.Comm.Allreduce(bad, par.OpMax) != 0 {
		if cerr != nil {
			return cerr
		}
		return fmt.Errorf("core: checkpoint commit to %s failed on rank 0", dir)
	}
	if e.obs != nil {
		e.obs.AddCount("restart.checkpoints", 1)
	}
	return nil
}

// commitRestartSet swaps a fully-written staging directory into place. The
// previous set is parked at dir+".old" for the instant between the two
// renames and restored on failure, so no crash point leaves the final name
// holding a partial set.
func commitRestartSet(staging, dir string) error {
	old := dir + ".old"
	os.RemoveAll(old)
	if _, err := os.Stat(dir); err == nil {
		if err := os.Rename(dir, old); err != nil {
			return fmt.Errorf("core: parking previous restart set: %w", err)
		}
	}
	if err := os.Rename(staging, dir); err != nil {
		os.Rename(old, dir) // best-effort restore of the previous set
		return fmt.Errorf("core: committing restart set: %w", err)
	}
	os.RemoveAll(old)
	return nil
}

// restartFields flattens the coupled state into pario fields: distributed
// ocean/ice rows from every rank, replicated atmosphere/land from rank 0.
func (e *ESM) restartFields() []pario.Field {
	var fields []pario.Field

	// --- Distributed ocean and ice fields, one chunk per local row ---
	// Replicated, rank 0's copy spans the whole grid and writes alone (the
	// other ranks hold identical state that would double-write the same
	// elements). Decomposed, every rank writes its owned rows, and rank 0
	// additionally writes zero-filled rows for the land-eliminated blocks no
	// rank owns — ocean and ice fields are identically zero over land, and
	// pario.ReadGlobal requires every element covered exactly once.
	o := e.Ocn
	b := o.B
	g := o.G
	n2g := g.NX * g.NY
	addRow := func(name string, global int, gStart int, data []float64) {
		fields = append(fields, pario.Field{Name: name, Global: global, Start: gStart, Data: data})
	}
	rowOf := func(src []float64, k, lj int) []float64 {
		out := make([]float64, b.NI)
		for li := 0; li < b.NI; li++ {
			out[li] = src[k*o.LNI*o.LNJ+e.ocnIdx2(li, lj)]
		}
		return out
	}
	ocnF3 := []struct {
		name string
		data []float64
	}{
		{"ocn.u", o.U}, {"ocn.v", o.V}, {"ocn.t", o.T}, {"ocn.s", o.S},
	}
	ocnF2 := []struct {
		name string
		data []float64
	}{
		{"ocn.eta", o.Eta}, {"ocn.ubar", o.Ubar}, {"ocn.vbar", o.Vbar},
		{"ocn.taux", o.TauX}, {"ocn.tauy", o.TauY},
		{"ocn.qheat", o.QHeat}, {"ocn.fw", o.FWFlux},
		{"ice.conc", e.Ice.Conc}, {"ice.thick", e.Ice.Thick},
		{"ice.freezeheat", e.Ice.FreezeHeat},
	}
	if !b.Replicated() || e.Comm.Rank() == 0 {
		for _, f3 := range ocnF3 {
			for k := 0; k < o.NL; k++ {
				for lj := 0; lj < b.NJ; lj++ {
					gStart := (k*g.NY+(b.J0+lj))*g.NX + b.I0
					addRow(f3.name, o.NL*n2g, gStart, rowOf(f3.data, k, lj))
				}
			}
		}
		for _, f2 := range ocnF2 {
			for lj := 0; lj < b.NJ; lj++ {
				gStart := (b.J0+lj)*g.NX + b.I0
				addRow(f2.name, n2g, gStart, rowOf(f2.data, 0, lj))
			}
		}
	}
	if e.Comm.Rank() == 0 {
		for _, db := range b.DryBlocks() {
			zero := make([]float64, db.NI)
			for _, f3 := range ocnF3 {
				for k := 0; k < o.NL; k++ {
					for lj := 0; lj < db.NJ; lj++ {
						addRow(f3.name, o.NL*n2g, (k*g.NY+(db.J0+lj))*g.NX+db.I0, zero)
					}
				}
			}
			for _, f2 := range ocnF2 {
				for lj := 0; lj < db.NJ; lj++ {
					addRow(f2.name, n2g, (db.J0+lj)*g.NX+db.I0, zero)
				}
			}
		}
	}

	// --- Atmosphere + land ---
	m := e.Atm
	if e.dec == nil {
		// Replicated: rank 0 writes the whole arrays.
		if e.Comm.Rank() == 0 {
			whole := func(name string, data []float64) {
				cp := append([]float64(nil), data...)
				fields = append(fields, pario.Field{Name: name, Global: len(cp), Start: 0, Data: cp})
			}
			whole("atm.ps", m.Ps)
			whole("atm.t", m.T)
			whole("atm.qv", m.Qv)
			whole("atm.u", m.U)
			whole("atm.sst", m.SST)
			whole("atm.icefrac", m.IceFrac)
			whole("atm.gsw", m.GSW)
			whole("atm.glw", m.GLW)
			whole("atm.precip", m.Precip)
			whole("atm.taux", m.TauX)
			whole("atm.tauy", m.TauY)
			whole("atm.shf", m.SHF)
			whole("atm.lhf", m.LHF)
			edge, dps := m.FluxAccumulators()
			if edge != nil {
				whole("atm.fluxedge", edge)
				whole("atm.fluxdps", dps)
			}
			whole("lnd.tsoil", e.Lnd.TSoil)
			whole("lnd.bucket", e.Lnd.Bucket)
		}
	} else {
		// Decomposed: every rank writes what it owns. Owned cell ranges,
		// owned edges, and owned land slots each partition their global index
		// space across ranks, so the union of chunks is exactly one global
		// image — bit-identical to what a replicated rank 0 would write.
		d := e.dec
		nc := m.Mesh.NCells()
		ne := m.Mesh.NEdges()
		ranges := d.OwnedRanges()
		chunk := func(name string, global, start int, data []float64) {
			cp := append([]float64(nil), data...)
			fields = append(fields, pario.Field{Name: name, Global: global, Start: start, Data: cp})
		}
		// Per-cell surface fields: one chunk per owned range.
		for _, fc := range []struct {
			name string
			data []float64
		}{
			{"atm.ps", m.Ps}, {"atm.sst", m.SST}, {"atm.icefrac", m.IceFrac},
			{"atm.gsw", m.GSW}, {"atm.glw", m.GLW}, {"atm.precip", m.Precip},
			{"atm.taux", m.TauX}, {"atm.tauy", m.TauY},
			{"atm.shf", m.SHF}, {"atm.lhf", m.LHF},
		} {
			for _, r := range ranges {
				chunk(fc.name, nc, r[0], fc.data[r[0]:r[0]+r[1]])
			}
		}
		// Per-level cell fields: one chunk per owned range per level.
		for _, f3 := range []struct {
			name string
			data []float64
		}{{"atm.t", m.T}, {"atm.qv", m.Qv}} {
			for k := 0; k < m.NLev; k++ {
				for _, r := range ranges {
					chunk(f3.name, m.NLev*nc, k*nc+r[0], f3.data[k*nc+r[0]:k*nc+r[0]+r[1]])
				}
			}
		}
		// Edge fields: the runs of this rank's owned edges, per level. Any
		// decomposition with edge state must expose its owned edge list for
		// checkpointing.
		ed, ok := d.(grid.EdgeDecomp)
		if !ok {
			panic("core: decomposed atmosphere restart requires an edge-aware decomposition")
		}
		edgeRuns := ownedLandRuns(ed.OwnedEdgeList())
		edgeField := func(name string, data []float64) {
			for k := 0; k < m.NLev; k++ {
				for _, r := range edgeRuns {
					s := k*ne + r[0]
					chunk(name, m.NLev*ne, s, data[s:s+r[1]])
				}
			}
		}
		edgeField("atm.u", m.U)
		edge, dps := m.FluxAccumulators()
		if edge != nil {
			edgeField("atm.fluxedge", edge)
			for _, r := range ranges {
				chunk("atm.fluxdps", nc, r[0], dps[r[0]:r[0]+r[1]])
			}
		}
		// Land: the runs of this rank's owned slots.
		for _, r := range ownedLandRuns(e.ownSlots) {
			chunk("lnd.tsoil", len(e.Lnd.TSoil), r[0], e.Lnd.TSoil[r[0]:r[0]+r[1]])
			chunk("lnd.bucket", len(e.Lnd.Bucket), r[0], e.Lnd.Bucket[r[0]:r[0]+r[1]])
		}
	}
	if e.Comm.Rank() == 0 {
		whole := func(name string, data []float64) {
			cp := append([]float64(nil), data...)
			fields = append(fields, pario.Field{Name: name, Global: len(cp), Start: 0, Data: cp})
		}
		whole("sfc.sstglobal", e.sstGlobal)
		whole("sfc.iceglobal", e.iceGlobal)
		whole(metaField, []float64{
			float64(e.couplingSteps),
			float64(m.Steps()),
			float64(o.Steps()),
		})
	}
	return fields
}

// ReadRestart loads a checkpoint written by WriteRestart into a freshly
// constructed ESM with the same configuration and clock interval. Every
// rank reads the subfile set and keeps its own region; the coupling clock
// is fast-forwarded to the checkpointed step so alarm phasing is preserved.
func (e *ESM) ReadRestart(dir string, nGroups int) error {
	if e.couplingSteps != 0 {
		return fmt.Errorf("core: ReadRestart requires a freshly constructed ESM")
	}
	global, err := pario.ReadGlobal(pario.SubfilePaths(dir, nGroups))
	if err != nil {
		return err
	}
	need := func(name string) ([]float64, error) {
		f, ok := global[name]
		if !ok {
			return nil, fmt.Errorf("core: restart missing field %q", name)
		}
		return f, nil
	}

	meta, err := need(metaField)
	if err != nil {
		return err
	}
	if len(meta) != 3 {
		return fmt.Errorf("core: corrupt restart metadata")
	}
	couplingSteps := int(meta[0])
	atmSteps := int(meta[1])
	ocnSteps := int(meta[2])

	// --- Atmosphere + land (replicated) ---
	m := e.Atm
	for _, spec := range []struct {
		name string
		dst  []float64
	}{
		{"atm.ps", m.Ps}, {"atm.t", m.T}, {"atm.qv", m.Qv}, {"atm.u", m.U},
		{"atm.sst", m.SST}, {"atm.icefrac", m.IceFrac},
		{"atm.gsw", m.GSW}, {"atm.glw", m.GLW}, {"atm.precip", m.Precip},
		{"atm.taux", m.TauX}, {"atm.tauy", m.TauY},
		{"atm.shf", m.SHF}, {"atm.lhf", m.LHF},
		{"lnd.tsoil", e.Lnd.TSoil}, {"lnd.bucket", e.Lnd.Bucket},
	} {
		f, err := need(spec.name)
		if err != nil {
			return err
		}
		if len(f) != len(spec.dst) {
			return fmt.Errorf("core: restart field %q has %d values, want %d", spec.name, len(f), len(spec.dst))
		}
		copy(spec.dst, f)
	}
	// The surface caches are Bcast-shared across the rank goroutines (one
	// backing array for all ranks), so restoring them in place would race
	// when every rank reads the checkpoint; each rank installs a private
	// copy instead, and the next coupling Bcast re-shares them.
	for _, spec := range []struct {
		name string
		dst  *[]float64
	}{
		{"sfc.sstglobal", &e.sstGlobal}, {"sfc.iceglobal", &e.iceGlobal},
	} {
		f, err := need(spec.name)
		if err != nil {
			return err
		}
		if len(f) != len(*spec.dst) {
			return fmt.Errorf("core: restart field %q has %d values, want %d", spec.name, len(f), len(*spec.dst))
		}
		*spec.dst = append([]float64(nil), f...)
	}
	edge, eok := global["atm.fluxedge"]
	dps, dok := global["atm.fluxdps"]
	if eok != dok {
		return fmt.Errorf("core: restart has partial flux accumulators")
	}
	if eok {
		m.RestoreState(atmSteps, edge, dps)
	} else {
		m.RestoreState(atmSteps, nil, nil)
	}

	// --- Ocean + ice (each rank keeps its block) ---
	o := e.Ocn
	b := o.B
	g := o.G
	n2g := g.NX * g.NY
	put3 := func(name string, dst []float64) error {
		f, err := need(name)
		if err != nil {
			return err
		}
		if len(f) != o.NL*n2g {
			return fmt.Errorf("core: restart field %q size %d", name, len(f))
		}
		for k := 0; k < o.NL; k++ {
			for lj := 0; lj < b.NJ; lj++ {
				for li := 0; li < b.NI; li++ {
					dst[k*o.LNI*o.LNJ+e.ocnIdx2(li, lj)] = f[(k*g.NY+(b.J0+lj))*g.NX+b.I0+li]
				}
			}
		}
		return nil
	}
	put2 := func(name string, dst []float64) error {
		f, err := need(name)
		if err != nil {
			return err
		}
		if len(f) != n2g {
			return fmt.Errorf("core: restart field %q size %d", name, len(f))
		}
		for lj := 0; lj < b.NJ; lj++ {
			for li := 0; li < b.NI; li++ {
				dst[e.ocnIdx2(li, lj)] = f[(b.J0+lj)*g.NX+b.I0+li]
			}
		}
		return nil
	}
	for _, s3 := range []struct {
		name string
		dst  []float64
	}{{"ocn.u", o.U}, {"ocn.v", o.V}, {"ocn.t", o.T}, {"ocn.s", o.S}} {
		if err := put3(s3.name, s3.dst); err != nil {
			return err
		}
	}
	for _, s2 := range []struct {
		name string
		dst  []float64
	}{
		{"ocn.eta", o.Eta}, {"ocn.ubar", o.Ubar}, {"ocn.vbar", o.Vbar},
		{"ocn.taux", o.TauX}, {"ocn.tauy", o.TauY},
		{"ocn.qheat", o.QHeat}, {"ocn.fw", o.FWFlux},
		{"ice.conc", e.Ice.Conc}, {"ice.thick", e.Ice.Thick},
		{"ice.freezeheat", e.Ice.FreezeHeat},
	} {
		if err := put2(s2.name, s2.dst); err != nil {
			return err
		}
	}
	o.SetSteps(ocnSteps)

	// --- Clock fast-forward preserves alarm phasing ---
	for i := 0; i < couplingSteps; i++ {
		if _, ok := e.Clock.Advance(); !ok {
			return fmt.Errorf("core: restart step %d beyond the clock interval", couplingSteps)
		}
	}
	e.couplingSteps = couplingSteps

	// Validate the restored state is finite.
	for _, v := range m.Ps {
		if math.IsNaN(v) {
			return fmt.Errorf("core: restart contains NaN surface pressure")
		}
	}
	return nil
}

// RestartAt reports the simulated time of the restored checkpoint.
func (e *ESM) RestartAt() time.Time { return e.Clock.Current }
