package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/atmos"
	"repro/internal/budget"
	"repro/internal/coupler"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/land"
	"repro/internal/obs"
	"repro/internal/ocean"
	"repro/internal/par"
	"repro/internal/pp"
	"repro/internal/seaice"
)

// ESM is the assembled coupled model. It runs SPMD over a communicator:
// by default both task domains are domain-decomposed — the ocean and sea
// ice over a 2D tripolar block partition with land-block elimination
// (the paper's second task domain), the atmosphere and land over an
// icosahedral cell partition (the first). Either side can instead run
// replicated (WithAtmDecomp(false) / WithOcnDecomp(false)): every rank
// computes it redundantly at miniature scale, which gives bit-identical
// coupling without the rearrangers and serves as the scaling baseline.
// Both decompositions are driven through the shared grid.Decomp contract.
// The component exchange contract, field names, coupling clock, and
// per-component alarms follow CPL7 (§5.1.1): 180 atmosphere, 36 ocean,
// and 180 sea-ice couplings per simulated day.
type ESM struct {
	Cfg  Config
	Comm *par.Comm

	Atm *atmos.Model
	Ocn *ocean.Ocean
	Ice *seaice.Model
	Lnd *land.Model
	Rg  *Regridder

	Clock *coupler.Clock

	// Global surface fields shared with the atmosphere (identical on all
	// ranks after each coupling).
	sstGlobal []float64
	iceGlobal []float64

	obs obs.Observer

	couplingSteps int
	ocnStepsPer   int

	// Component schedule state (see schedule.go): the schedule selector,
	// the persistent atmosphere-broadcast buffer of the concurrent
	// schedule's single-writer atmosphere, the join channel of the ocean
	// goroutine, and the overlap-fraction accumulator.
	schedule   Schedule
	atmPack    []float64
	ocnDone    chan time.Duration
	overlapSum float64
	overlapN   int

	// Flux remap mode, the conservation-audit ledger (nil when auditing is
	// off), and the persistent per-atmosphere-cell flux-part buffers used by
	// the conservative remap and the audit's export-side integrals (nil when
	// neither needs them).
	remap  RemapMode
	ledger *budget.Ledger
	af     *atmFluxes

	// Wire format of the hot communication paths (halo exchanges, nn and
	// ice-forcing rearrangers). The conservative flux rearranger is exempt
	// and always ships f64 — see initDistribute.
	wire par.WireFormat

	// Atmosphere + land domain decomposition (nil / empty when replicated):
	// the icosahedral partition behind the shared Decomp contract, the
	// distributed coupling rearrange state, the land slots this rank steps
	// (extended patch) and audits (owned range), and the persistent 10 m
	// wind buffers the surface loops fill in place.
	dec       grid.Decomp
	dst       *distState
	stepSlots []int
	ownSlots  []int
	u10, v10  []float64
}

// atmFluxes holds the per-atmosphere-cell air–sea flux parts, positive into
// the ocean, with the open-water fraction already folded in.
type atmFluxes struct {
	sw, lw, sens, lat, qnet []float64 // W/m²
	emp                     []float64 // evaporation − precipitation, kg/m²/s
	taux, tauy              []float64 // N/m²
}

func newAtmFluxes(n int) *atmFluxes {
	return &atmFluxes{
		sw: make([]float64, n), lw: make([]float64, n),
		sens: make([]float64, n), lat: make([]float64, n),
		qnet: make([]float64, n), emp: make([]float64, n),
		taux: make([]float64, n), tauy: make([]float64, n),
	}
}

// New assembles the coupled model over the communicator for the simulated
// interval [start, stop). It is the positional wrapper over NewWithOptions
// kept for existing call sites.
func New(cfg Config, c *par.Comm, start, stop time.Time, sp pp.Space) (*ESM, error) {
	return NewWithOptions(cfg, c, WithInterval(start, stop), WithSpace(sp))
}

// assemble builds the model from resolved options.
func assemble(cfg Config, c *par.Comm, opt options) (*ESM, error) {
	start, stop := opt.start, opt.stop
	sp, ob := opt.sp, opt.obs
	if opt.kprec == pp.PrecMixed {
		// The Vec wrapper goes on before instrumentation so components derive
		// their kernel precision from pp.PrecOf(sp) through the Instrumented
		// shell at construction time.
		sp = pp.NewVec(sp)
	}
	if _, disabled := ob.(obs.Nop); !disabled {
		// Live instrumentation: the communicator forwards traffic counts and
		// the execution space reports kernel launches to the same observer.
		c.SetObserver(ob)
		sp = pp.Instrument(sp, ob)
	}
	atm, err := atmos.New(cfg.AtmLevel, cfg.AtmNLev, cfg.AtmCfg, sp)
	if err != nil {
		return nil, fmt.Errorf("core: atmosphere: %w", err)
	}
	g, err := grid.NewTripolar(cfg.OcnNX, cfg.OcnNY, cfg.OcnNLev)
	if err != nil {
		return nil, fmt.Errorf("core: ocean grid: %w", err)
	}
	// Ocean + sea-ice decomposition: a 2D tripolar block partition with
	// land-block elimination by default, or the fully-replicated baseline
	// (every rank holds the whole grid) under WithOcnDecomp(false). The
	// distributed atmosphere's coupling routers address ocean columns by
	// owner, which a replicated ocean does not define — that combination
	// is rejected rather than silently misrouted.
	atmDistributed := opt.atmDecomp && c.Size() > 1 && c.Size() <= atm.Mesh.NCells()
	if atmDistributed && !opt.ocnDecomp {
		return nil, fmt.Errorf("core: the decomposed atmosphere requires the decomposed ocean at %d ranks (enable -ocn-decomp or disable -atm-decomp)", c.Size())
	}
	var blk *grid.TripolarDecomp
	if opt.ocnDecomp && c.Size() > 1 {
		blk, err = grid.NewTripolarDecomp(g, c, 1)
	} else {
		blk, err = grid.NewTripolarReplicated(g, c, 1)
	}
	if err != nil {
		return nil, fmt.Errorf("core: ocean decomposition: %w", err)
	}
	blk.SetObserver(ob)
	blk.SetWire(opt.wire)
	ocnCfg := cfg.OcnCfg
	ocnCfg.Policy = cfg.Policy
	ocn, err := ocean.New(g, blk, ocnCfg, sp)
	if err != nil {
		return nil, fmt.Errorf("core: ocean: %w", err)
	}
	ice, err := seaice.New(g, blk, cfg.IceCfg)
	if err != nil {
		return nil, fmt.Errorf("core: sea ice: %w", err)
	}
	lnd, err := land.New(atm.Mesh, land.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("core: land: %w", err)
	}

	// Coupling clock: the base step is the shortest coupling period.
	baseStep, err := coupler.PeriodForCouplingsPerDay(cfg.AtmCouplingsPerDay)
	if err != nil {
		return nil, err
	}
	clk, err := coupler.NewClock(start, stop, baseStep)
	if err != nil {
		return nil, err
	}
	for name, perDay := range map[string]int{
		"atm": cfg.AtmCouplingsPerDay,
		"ocn": cfg.OcnCouplingsPerDay,
		"ice": cfg.IceCouplingsPerDay,
	} {
		p, err := coupler.PeriodForCouplingsPerDay(perDay)
		if err != nil {
			return nil, err
		}
		if err := clk.AddAlarm(name, p); err != nil {
			return nil, err
		}
	}

	e := &ESM{
		Cfg: cfg, Comm: c,
		Atm: atm, Ocn: ocn, Ice: ice, Lnd: lnd,
		Rg:       NewRegridder(atm.Mesh, g),
		Clock:    clk,
		obs:      ob,
		schedule: opt.schedule,
		ocnDone:  make(chan time.Duration, 1),
		remap:    opt.remap,
		wire:     opt.wire,
	}

	// Route the unmapped atmosphere cells — non-land cells whose spiral
	// search found no wet ocean column — to the land model so their surface
	// exchange is never silently dropped: the land model adopts them and the
	// atmosphere treats them as land columns.
	if len(e.Rg.Unmapped) > 0 {
		lnd.Adopt(atm.Mesh, e.Rg.Unmapped)
		for _, cell := range e.Rg.Unmapped {
			atm.IsLand[cell] = true
		}
	}
	if opt.remap == RemapCons || opt.audit {
		e.af = newAtmFluxes(atm.Mesh.NCells())
	}
	if opt.audit {
		e.ledger = budget.NewLedger(ob)
	}

	// Atmosphere + land domain decomposition: partition the icosahedral
	// cells into contiguous owned ranges, register the halo-exchange plans
	// with the atmosphere, split the land columns with the same ownership
	// map (after Adopt, so adopted cells are partitioned too), and build
	// the distributed-coupling routers. Replicated operation — one rank, or
	// WithAtmDecomp(false) — leaves dec nil and every legacy path intact.
	e.u10 = make([]float64, atm.Mesh.NCells())
	e.v10 = make([]float64, atm.Mesh.NCells())
	if atmDistributed {
		d, err := atm.Decompose(c)
		if err != nil {
			return nil, fmt.Errorf("core: atmosphere decomposition: %w", err)
		}
		d.SetObserver(ob)
		d.SetWire(opt.wire)
		e.dec = d
		e.stepSlots = lnd.Slots(d.InExt)
		e.ownSlots = lnd.Slots(func(cell int) bool { return d.Owner(cell) == c.Rank() })
		if err := e.initDistribute(); err != nil {
			return nil, err
		}
	}

	// Ocean steps per ocean coupling interval.
	ocnInterval := 86400.0 / float64(cfg.OcnCouplingsPerDay)
	e.ocnStepsPer = int(math.Round(ocnInterval / ocn.Cfg.DtBaroclinic))
	if e.ocnStepsPer < 1 {
		e.ocnStepsPer = 1
	}

	// Validate the exchange contract once at init (the paper's naming and
	// dimension-alignment checks).
	if err := coupler.ValidateExchange([]coupler.Registration{
		{Comp: &atmComp{e}, CouplingsPerDay: cfg.AtmCouplingsPerDay},
		{Comp: &ocnComp{e}, CouplingsPerDay: cfg.OcnCouplingsPerDay},
		{Comp: &iceComp{e}, CouplingsPerDay: cfg.IceCouplingsPerDay},
	}); err != nil {
		return nil, err
	}

	// Initial surface fields.
	e.sstGlobal = make([]float64, g.NX*g.NY)
	e.iceGlobal = make([]float64, g.NX*g.NY)
	e.refreshOceanSurface()
	e.applySurfaceToAtmos()
	return e, nil
}

// factorize picks a process grid (px, py) with px·py = n that divides the
// ocean grid.
func factorize(n, nx, ny int) (int, int) {
	best := [2]int{1, n}
	for px := 1; px <= n; px++ {
		if n%px != 0 {
			continue
		}
		py := n / px
		if nx%px == 0 && ny%py == 0 {
			best = [2]int{px, py}
			// Prefer near-square factorizations.
			if abs(px-py) <= abs(best[0]-best[1]) {
				best = [2]int{px, py}
			}
		}
	}
	return best[0], best[1]
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Step advances one coupling interval; returns false when the clock is done.
//
// Both schedules run one shared dataflow per base step: (1) when the ocean
// couples this interval, import its air–sea fluxes from the currently
// exported surface state — the previous interval's export, which stays
// frozen until the export phase (the import barrier); (2) advance the two
// independent component groups, the ocean's baroclinic substeps and the
// atmosphere + land step, which read and write disjoint state; (3) couple
// the sea ice and export the new ocean surface to the atmosphere (the
// export barrier). ScheduleSeq runs the groups back to back; ScheduleConc
// overlaps them — bit-for-bit identically, because nothing crosses between
// the barriers either way.
func (e *ESM) Step() bool {
	ringing, ok := e.Clock.Advance()
	if !ok {
		return false
	}
	var atmRings, iceRings, ocnRings bool
	for _, name := range ringing {
		switch name {
		case "atm":
			atmRings = true
		case "ice":
			iceRings = true
		case "ocn":
			ocnRings = true
		}
	}
	if e.schedule == ScheduleConc && ocnRings {
		e.stepConcurrent(atmRings, iceRings)
	} else {
		if ocnRings {
			e.timed("ocn", func() {
				e.oceanImport()
				e.oceanSubsteps()
			})
		}
		if atmRings {
			e.timed("atm", e.atmosphereStep)
		}
		if iceRings {
			e.timed("ice", e.iceStep)
		}
	}
	e.couplingSteps++
	e.publishWireRatio()
	if f := fault.PointScoped(e.Comm.Member(), "esm.step", e.Comm.Rank()); f != nil && f.Kind == fault.NaN {
		// Silent data corruption in a coupled prognostic field — the failure
		// mode the per-step health guardrails exist to catch.
		e.Ocn.T[e.ocnIdx2(0, 0)] = math.NaN()
	}
	return true
}

// publishWireRatio updates the cpl.wire.ratio gauge — cumulative raw bytes
// over cumulative on-the-wire bytes across every compressed-capable path
// (both halo exchanges and the rearrangers, the exempt conservative router
// included at ratio 1). Only published under the compressed wire format and
// only when the observer carries a readable registry; under WireF64 the
// ratio is identically 1 and the gauge stays absent.
func (e *ESM) publishWireRatio() {
	if e.wire != par.WireGS32 {
		return
	}
	o, ok := e.obs.(*obs.Obs)
	if !ok {
		return
	}
	raw := o.Registry().Counter("cpl.wire.raw.bytes").Value()
	wireB := o.Registry().Counter("cpl.wire.bytes").Value()
	if wireB > 0 {
		e.obs.SetGauge("cpl.wire.ratio", float64(raw)/float64(wireB))
	}
}

// RunDays integrates n simulated days (or until the clock stops).
func (e *ESM) RunDays(days float64) int {
	steps := int(days * float64(e.Cfg.AtmCouplingsPerDay))
	n := 0
	for i := 0; i < steps; i++ {
		if !e.Step() {
			break
		}
		n++
	}
	return n
}

// atmosphereStep runs one atmosphere model step plus the direct land
// exchange (the land model bypasses the coupler, §5.1.1). Decomposed, every
// rank steps its own patch and the halo exchanges inside StepModel are the
// only cross-rank traffic — there is no atmosphere broadcast any more.
// Replicated under the sequential schedule every rank computes the
// atmosphere redundantly; replicated under the concurrent schedule computes
// it once on rank 0 and broadcasts the step's outputs, which is bit-for-bit
// the same state on every rank while freeing the other ranks' time inside
// the overlap window.
func (e *ESM) atmosphereStep() {
	switch {
	case e.dec != nil:
		e.Atm.StepModel()
	case e.schedule == ScheduleConc && e.Comm.Size() > 1:
		if e.Comm.Rank() == 0 {
			e.Atm.StepModel()
		}
		e.bcastAtmStep()
	default:
		e.Atm.StepModel()
	}
	e.landStep()
}

// landStep runs the direct atmosphere ↔ land exchange on land cells.
// Replicated, every rank steps every land column from the (identical)
// atmosphere state. Decomposed, each rank steps the land columns of its
// extended patch: owned cells for real, halo cells redundantly — the halo's
// atmosphere forcing is bit-identical to the owner's, so the skin
// temperature the redundant physics columns read matches the owner exactly.
func (e *ESM) landStep() {
	nc := e.Atm.Mesh.NCells()
	kb := e.Atm.NLev - 1
	e.Atm.Wind10mInto(e.u10, e.v10)
	u10, v10 := e.u10, e.v10
	dt := 86400.0 / float64(e.Cfg.AtmCouplingsPerDay)
	step := func(c int) {
		f := land.Forcing{
			GSW:    e.Atm.GSW[c],
			GLW:    e.Atm.GLW[c],
			TAir:   e.Atm.T[kb*nc+c],
			QAir:   e.Atm.Qv[kb*nc+c],
			Wind:   math.Hypot(u10[c], v10[c]),
			Precip: e.Atm.Precip[c],
			PSfc:   e.Atm.Ps[c],
		}
		resp, err := e.Lnd.StepCell(c, f, dt)
		if err == nil {
			// The land skin temperature is the surface the atmosphere sees.
			e.Atm.SST[c] = resp.TSkin
		}
	}
	if e.dec == nil {
		for _, c := range e.Lnd.Cells {
			step(c)
		}
		return
	}
	for _, slot := range e.stepSlots {
		step(e.Lnd.Cells[slot])
	}
}

// iceStep imports atmosphere and ocean state into the ice model, steps it,
// and refreshes the global ice fraction. Decomposed, the atmosphere forcing
// arrives through the nearest-neighbour rearranger (no rank holds the whole
// atmosphere); replicated, it is read from the local (identical) arrays.
func (e *ESM) iceStep() {
	if e.dec != nil {
		e.iceForcingDistributed()
	} else {
		ice := e.Ice
		b := ice.B
		nc := e.Atm.Mesh.NCells()
		e.Atm.Wind10mInto(e.u10, e.v10)
		kb := e.Atm.NLev - 1
		for lj := 0; lj < b.NJ; lj++ {
			for li := 0; li < b.NI; li++ {
				idx := b.LIdx(li, lj)
				gi := b.GIdx(li, lj)
				ac := e.Rg.OcnToAtm[gi]
				ice.TAir[idx] = e.Atm.T[kb*nc+ac]
				ice.WindU[idx] = e.u10[ac]
				ice.WindV[idx] = e.v10[ac]
				ice.SST[idx] = e.Ocn.T[e.ocnIdx2(li, lj)] + 273.15
			}
		}
	}
	e.Ice.Step()
	e.refreshOceanSurface()
	e.applySurfaceToAtmos()
}

// Bulk air–sea flux constants, shared by the ocean-grid (nearest) and
// atmosphere-grid (conservative) flux computations.
const (
	oceanAlbedo = 0.07
	oceanEmiss  = 0.97
	sigmaSB     = 5.670e-8
	bulkCd      = 1.3e-3
	bulkCh      = 1.0e-3
	bulkCe      = 1.2e-3
	rhoAirSfc   = 1.2
)

// oceanImport is the ocean group's import barrier — the flux coupler's job
// in CPL7: compute the air–sea fluxes and hand them to the ocean. Everything
// it reads from the atmosphere and ice is the state exported at the end of
// the previous base step, so it runs before the groups advance (on the
// driver goroutine under both schedules, which also makes the audit's
// collectives safe). RemapNN computes fluxes on the ocean grid from the
// nearest atmosphere cell; RemapCons computes them per atmosphere cell and
// delivers the conservative overlap average. When auditing, the ledger
// records the interval's interface and storage terms afterwards.
func (e *ESM) oceanImport() {
	if e.af != nil {
		e.computeAtmFluxes()
	}
	switch {
	case e.remap == RemapCons && e.dec != nil:
		e.importConservativeDistributed()
	case e.remap == RemapCons:
		e.importConservative()
	case e.dec != nil:
		e.importNearestDistributed()
	default:
		e.importNearest()
	}
	if e.ledger != nil {
		e.auditRecord()
	}
}

// importNearest computes the air–sea fluxes on the ocean grid: turbulent
// fluxes use the atmosphere's lowest-level state at the nearest cell
// together with the ocean's *own* SST, so coastal columns are never
// contaminated by land skin temperatures. Spot-accurate, but the
// area-integrated flux differs from what the atmosphere exports — the leak
// the budget ledger measures and RemapCons closes.
func (e *ESM) importNearest() {
	o := e.Ocn
	b := o.B
	nc := e.Atm.Mesh.NCells()
	kb := e.Atm.NLev - 1
	u10, v10 := e.Atm.Wind10m()
	for lj := 0; lj < b.NJ; lj++ {
		for li := 0; li < b.NI; li++ {
			idx := b.LIdx(li, lj)
			gi := b.GIdx(li, lj)
			if !o.G.Mask[gi] {
				continue
			}
			ac := e.Rg.OcnToAtm[gi]
			open := 1 - e.Ice.Conc[idx]
			sstK := o.T[idx] + 273.15
			wind := math.Hypot(u10[ac], v10[ac])
			tair := e.Atm.T[kb*nc+ac]
			qair := e.Atm.Qv[kb*nc+ac]

			// Momentum: bulk stress from the local wind, attenuated by ice.
			o.TauX[idx] = rhoAirSfc * bulkCd * wind * u10[ac] * open
			o.TauY[idx] = rhoAirSfc * bulkCd * wind * v10[ac] * open

			// Turbulent heat fluxes against the ocean's own SST.
			shf := rhoAirSfc * atmos.Cpd * bulkCh * wind * (sstK - tair)
			evap := rhoAirSfc * bulkCe * wind * (qsatSea(sstK) - qair)
			if evap < 0 {
				evap = 0
			}
			lhf := atmos.LatVap * evap

			qnet := (1-oceanAlbedo)*e.Atm.GSW[ac] +
				oceanEmiss*(e.Atm.GLW[ac]-sigmaSB*sstK*sstK*sstK*sstK) -
				shf - lhf
			o.QHeat[idx] = qnet*open + e.Ice.FreezeHeat[idx]
			// Freshwater: (evaporation − precipitation) concentrates salt.
			emp := evap - e.Atm.Precip[ac]
			o.FWFlux[idx] = ocean.SRef * emp / (ocean.Rho0 * firstLayerDepth(o))
		}
	}
}

// computeAtmFluxes fills the per-atmosphere-cell flux parts from the
// atmosphere-visible surface state (its imported SST and ice fraction), with
// the open-water fraction folded in. Land and zero-overlap cells hold zero
// — destination-area normalization: their overlap weight stays in the
// conservative rows, damping coastal fluxes instead of breaking the
// conservation identity.
func (e *ESM) computeAtmFluxes() {
	nc := e.Atm.Mesh.NCells()
	e.Atm.Wind10mInto(e.u10, e.v10)
	ranges := [][2]int{{0, nc}}
	if e.dec != nil {
		// Owned cells only: the flux parts feed the audit's owned-range
		// partial sums and the conservative packer, both owner-indexed.
		ranges = e.dec.OwnedRanges()
	}
	for _, rng := range ranges {
		for c := rng[0]; c < rng[0]+rng[1]; c++ {
			e.atmFluxCell(c)
		}
	}
}

// atmFluxCell fills one atmosphere cell's flux parts (see computeAtmFluxes).
func (e *ESM) atmFluxCell(c int) {
	a := e.Atm
	nc := a.Mesh.NCells()
	kb := a.NLev - 1
	u10, v10 := e.u10, e.v10
	f := e.af
	if a.IsLand[c] || e.Rg.AtmOverlapArea[c] == 0 {
		f.sw[c], f.lw[c], f.sens[c], f.lat[c], f.qnet[c] = 0, 0, 0, 0, 0
		f.emp[c], f.taux[c], f.tauy[c] = 0, 0, 0
		return
	}
	open := 1 - a.IceFrac[c]
	sstK := a.SST[c]
	wind := math.Hypot(u10[c], v10[c])
	tair := a.T[kb*nc+c]
	qair := a.Qv[kb*nc+c]

	shf := rhoAirSfc * atmos.Cpd * bulkCh * wind * (sstK - tair)
	evap := rhoAirSfc * bulkCe * wind * (qsatSea(sstK) - qair)
	if evap < 0 {
		evap = 0
	}
	f.sw[c] = (1 - oceanAlbedo) * a.GSW[c] * open
	f.lw[c] = oceanEmiss * (a.GLW[c] - sigmaSB*sstK*sstK*sstK*sstK) * open
	f.sens[c] = -shf * open
	f.lat[c] = -atmos.LatVap * evap * open
	f.qnet[c] = f.sw[c] + f.lw[c] + f.sens[c] + f.lat[c]
	f.emp[c] = evap - a.Precip[c]
	f.taux[c] = rhoAirSfc * bulkCd * wind * u10[c] * open
	f.tauy[c] = rhoAirSfc * bulkCd * wind * v10[c] * open
}

// importConservative delivers the per-atmosphere-cell flux parts to each
// owned wet ocean column through the normalized overlap weights, so the
// area-integrated flux the ocean imports equals what the atmosphere
// exported to round-off. The ice→ocean freeze heat is a local same-grid
// term added after the remap.
func (e *ESM) importConservative() {
	o := e.Ocn
	b := o.B
	f := e.af
	h0 := firstLayerDepth(o)
	for lj := 0; lj < b.NJ; lj++ {
		for li := 0; li < b.NI; li++ {
			idx := b.LIdx(li, lj)
			gi := b.GIdx(li, lj)
			if !o.G.Mask[gi] {
				continue
			}
			o.TauX[idx] = e.Rg.ConsRemap(f.taux, gi)
			o.TauY[idx] = e.Rg.ConsRemap(f.tauy, gi)
			o.QHeat[idx] = e.Rg.ConsRemap(f.qnet, gi) + e.Ice.FreezeHeat[idx]
			emp := e.Rg.ConsRemap(f.emp, gi)
			o.FWFlux[idx] = ocean.SRef * emp / (ocean.Rho0 * h0)
		}
	}
}

// auditRecord tallies one coupling interval into the ledger. Replicated,
// the atmosphere-side export integrals over the overlap areas Ã_c need no
// reduction, and only the ocean-side import integrals and storage terms
// cross ranks (one batched reduction). Decomposed, the atmosphere-side
// terms, the land water, and the atmosphere water are owned-range partial
// sums too, and every term — both sides of every interface plus every
// store — travels in a single batched AllreduceSlice.
func (e *ESM) auditRecord() {
	o := e.Ocn
	b := o.B
	f := e.af
	iv := budget.Interval{
		Seconds:       86400 / float64(e.Cfg.OcnCouplingsPerDay),
		UnmappedCells: len(e.Rg.Unmapped),
	}
	// Ocean-side: undo the freshwater flux scaling to recover the delivered
	// E−P, and split the same-grid ice→ocean heat out of QHeat so the
	// interface terms compare like for like.
	empScale := ocean.Rho0 * firstLayerDepth(o) / ocean.SRef
	var heatIn, fwIn, iceHeat float64
	for lj := 0; lj < b.NJ; lj++ {
		for li := 0; li < b.NI; li++ {
			idx := b.LIdx(li, lj)
			gi := b.GIdx(li, lj)
			if !o.G.Mask[gi] {
				continue
			}
			area := o.G.Area[gi]
			heatIn += area * (o.QHeat[idx] - e.Ice.FreezeHeat[idx])
			fwIn += area * o.FWFlux[idx] * empScale
			iceHeat += area * e.Ice.FreezeHeat[idx]
		}
	}
	const rhoWater = 1000.0
	if e.dec == nil {
		for c, ar := range e.Rg.AtmOverlapArea {
			if ar == 0 {
				continue
			}
			iv.HeatSW += ar * f.sw[c]
			iv.HeatLW += ar * f.lw[c]
			iv.HeatSens += ar * f.sens[c]
			iv.HeatLat += ar * f.lat[c]
			iv.HeatAtmCpl += ar * f.qnet[c]
			iv.HeatGross += ar * math.Abs(f.qnet[c])
			iv.FWAtmCpl += ar * f.emp[c]
			iv.FWGross += ar * math.Abs(f.emp[c])
		}
		if o.B.Replicated() {
			// Fully replicated: every term above and below is already the
			// global integral on every rank — a reduction would count the
			// domain once per rank.
			iv.HeatCplOcn, iv.FWCplOcn, iv.HeatIceOcn = heatIn, fwIn, iceHeat
			iv.OcnHeat, iv.OcnSalt = o.HeatContentLocal(), o.SaltContentLocal()
			iv.IceFW = seaice.RhoIce * e.Ice.LocalVolume()
		} else {
			sums := e.Comm.AllreduceSlice([]float64{
				heatIn, fwIn, iceHeat,
				o.HeatContentLocal(), o.SaltContentLocal(), e.Ice.LocalVolume(),
			}, par.OpSum)
			iv.HeatCplOcn, iv.FWCplOcn, iv.HeatIceOcn = sums[0], sums[1], sums[2]
			iv.OcnHeat, iv.OcnSalt = sums[3], sums[4]
			iv.IceFW = seaice.RhoIce * sums[5]
		}
		for slot, c := range e.Lnd.Cells {
			iv.LndWater += e.Lnd.Bucket[slot] * e.Atm.Mesh.AreaCell[c] *
				grid.EarthRadius * grid.EarthRadius * rhoWater
		}
		iv.AtmWater = e.Atm.TotalMoisture()
		e.ledger.Record(iv)
		return
	}
	// Decomposed: atmosphere-side partials over this rank's owned cells (the
	// owned ranges partition the mesh, so the sum over ranks reproduces the
	// replicated integrals up to summation order), batched with the
	// ocean-side terms into one 16-term reduction.
	var aSW, aLW, aSens, aLat, aCpl, aGross, aFW, aFWGross float64
	for _, rng := range e.dec.OwnedRanges() {
		for c := rng[0]; c < rng[0]+rng[1]; c++ {
			ar := e.Rg.AtmOverlapArea[c]
			if ar == 0 {
				continue
			}
			aSW += ar * f.sw[c]
			aLW += ar * f.lw[c]
			aSens += ar * f.sens[c]
			aLat += ar * f.lat[c]
			aCpl += ar * f.qnet[c]
			aGross += ar * math.Abs(f.qnet[c])
			aFW += ar * f.emp[c]
			aFWGross += ar * math.Abs(f.emp[c])
		}
	}
	var lndWater float64
	for _, slot := range e.ownSlots {
		c := e.Lnd.Cells[slot]
		lndWater += e.Lnd.Bucket[slot] * e.Atm.Mesh.AreaCell[c] *
			grid.EarthRadius * grid.EarthRadius * rhoWater
	}
	sums := e.Comm.AllreduceSlice([]float64{
		aSW, aLW, aSens, aLat, aCpl, aGross, aFW, aFWGross,
		heatIn, fwIn, iceHeat,
		o.HeatContentLocal(), o.SaltContentLocal(), e.Ice.LocalVolume(),
		lndWater, e.Atm.TotalMoistureLocal(),
	}, par.OpSum)
	iv.HeatSW, iv.HeatLW, iv.HeatSens, iv.HeatLat = sums[0], sums[1], sums[2], sums[3]
	iv.HeatAtmCpl, iv.HeatGross, iv.FWAtmCpl, iv.FWGross = sums[4], sums[5], sums[6], sums[7]
	iv.HeatCplOcn, iv.FWCplOcn, iv.HeatIceOcn = sums[8], sums[9], sums[10]
	iv.OcnHeat, iv.OcnSalt = sums[11], sums[12]
	iv.IceFW = seaice.RhoIce * sums[13]
	iv.LndWater = sums[14]
	iv.AtmWater = sums[15]
	e.ledger.Record(iv)
}

// Budget returns the conservation-audit ledger, or nil when auditing is off.
func (e *ESM) Budget() *budget.Ledger { return e.ledger }

// oceanSubsteps integrates the ocean over its coupling interval — the
// baroclinic sub-step loop that the concurrent schedule overlaps with the
// atmosphere + land group. It touches only ocean state and the ocean
// block's point-to-point halo traffic; the refreshed surface is exported
// to the atmosphere afterwards in iceStep, the base step's export phase.
func (e *ESM) oceanSubsteps() {
	for s := 0; s < e.ocnStepsPer; s++ {
		e.Ocn.Step()
	}
}

func firstLayerDepth(o *ocean.Ocean) float64 { return o.G.LevelDepth[0] }

// qsatSea is the saturation specific humidity over seawater at 1000 hPa
// (98 % of pure water's, the usual salinity correction).
func qsatSea(tK float64) float64 {
	es := 610.78 * math.Exp(17.27*(tK-273.15)/(tK-35.85))
	return 0.98 * 0.622 * es / (1e5 - 0.378*es)
}

// ocnIdx2 mirrors the ocean's internal local indexing for driver reads.
func (e *ESM) ocnIdx2(li, lj int) int {
	return (lj+e.Ocn.B.H)*e.Ocn.B.LNI() + li + e.Ocn.B.H
}

// refreshOceanSurface gathers SST and ice fraction into global arrays and
// broadcasts them so every rank's (redundant) atmosphere sees the same
// surface. In the replicated-ocean mode every rank assembles the globals
// locally and no traffic is needed.
func (e *ESM) refreshOceanSurface() {
	b := e.Ocn.B
	n2 := b.LNI() * b.LNJ()
	sstLoc := make([]float64, n2)
	copy(sstLoc, e.Ocn.T[:n2])
	iceLoc := make([]float64, n2)
	copy(iceLoc, e.Ice.Conc)
	sstG := b.GatherGlobal(sstLoc)
	iceG := b.GatherGlobal(iceLoc)
	if b.Replicated() {
		e.sstGlobal, e.iceGlobal = sstG, iceG
		return
	}
	e.sstGlobal = par.Bcast(e.Comm, 0, sstG)
	e.iceGlobal = par.Bcast(e.Comm, 0, iceG)
}

// applySurfaceToAtmos maps the global ocean surface onto atmosphere cells.
func (e *ESM) applySurfaceToAtmos() {
	for c := 0; c < e.Atm.Mesh.NCells(); c++ {
		if e.Atm.IsLand[c] {
			continue // land skin temperature is owned by the land model
		}
		oc := e.Rg.AtmToOcn[c]
		if oc < 0 {
			continue
		}
		e.Atm.SST[c] = e.sstGlobal[oc] + 273.15
		e.Atm.IceFrac[c] = e.iceGlobal[oc]
	}
}

// CouplingSteps returns the number of completed coupling intervals.
func (e *ESM) CouplingSteps() int { return e.couplingSteps }

// SimulatedSeconds returns the simulated time advanced so far.
func (e *ESM) SimulatedSeconds() float64 {
	return float64(e.couplingSteps) * 86400 / float64(e.Cfg.AtmCouplingsPerDay)
}

// MeasureSYPD runs n coupling steps and returns the measured
// simulated-years-per-day of this (miniature) configuration — the same
// metric the paper reports, computed the same way (§6.2), on the
// reproduction's grids.
func (e *ESM) MeasureSYPD(n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("core: need at least one step")
	}
	startWall := time.Now()
	simStart := e.SimulatedSeconds()
	for i := 0; i < n; i++ {
		if !e.Step() {
			return 0, fmt.Errorf("core: clock exhausted after %d steps", i)
		}
	}
	wall := time.Since(startWall).Seconds()
	sim := e.SimulatedSeconds() - simStart
	if wall <= 0 {
		return math.Inf(1), nil
	}
	return (sim / wall) * 86400 / (365 * 86400), nil
}
