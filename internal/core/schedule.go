package core

import (
	"fmt"
	"time"

	"repro/internal/par"
)

// Schedule selects how the component groups advance within one coupling
// interval — the paper's concurrent-components lever (components on
// disjoint processor sets progressing simultaneously), mapped onto the
// reproduction's SPMD layout.
type Schedule int

const (
	// ScheduleSeq runs the ocean group, then the atmosphere + land group,
	// then the ice/export phase strictly in sequence on every rank, with
	// the atmosphere computed redundantly everywhere.
	ScheduleSeq Schedule = iota
	// ScheduleConc overlaps the ocean group's baroclinic substeps with the
	// atmosphere + land group inside each coupling interval, and computes
	// the replicated atmosphere once (on rank 0, broadcasting the step's
	// outputs) instead of redundantly on every rank.
	ScheduleConc
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case ScheduleSeq:
		return "seq"
	case ScheduleConc:
		return "conc"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// ParseSchedule maps the -schedule flag values onto Schedule.
func ParseSchedule(name string) (Schedule, error) {
	switch name {
	case "seq":
		return ScheduleSeq, nil
	case "conc":
		return ScheduleConc, nil
	default:
		return 0, fmt.Errorf("core: unknown schedule %q (want seq or conc)", name)
	}
}

// Schedule returns the component schedule the model runs under.
func (e *ESM) Schedule() Schedule { return e.schedule }

// sectionAdder is the structural subset of *obs.Obs the concurrent
// schedule uses to report the ocean group's idle time: that duration is
// measured at the join rather than bracketing a region on the driver
// goroutine, so it cannot be a span.
type sectionAdder interface {
	AddSection(name string, d time.Duration)
}

// stepConcurrent advances one base step on which the ocean couples,
// overlapping the ocean group's baroclinic substeps with the atmosphere +
// land group. The two groups read and write disjoint state between the
// import and export barriers (see DESIGN.md), so the result is bit-for-bit
// identical to the sequential schedule.
//
// Concurrency discipline on the shared communicator: the ocean goroutine
// performs only point-to-point halo traffic on the tripolar decomposition's
// tag range, and during the overlap window the driver goroutine performs
// either the replicated atmosphere's broadcast collective or — decomposed —
// the atmosphere's own point-to-point halo exchanges on the disjoint
// icosahedral tag range. Point-to-point matching is per (source, tag), so neither
// goroutine can consume the other's messages, and the decomposed halo
// exchanges are barrier-free by design so no collective runs concurrently
// with the ocean's traffic. The coupling rearranges, which do end in a
// barrier, run only on the driver goroutine outside the overlap window: in
// oceanImport before the ocean goroutine launches and in iceStep after the
// join. The ocean goroutine makes no obs span calls (spans nest per rank);
// its wall time is measured with a plain clock and folded into sections at
// the join.
func (e *ESM) stepConcurrent(atmRings, iceRings bool) {
	osp := e.obs.StartSpan("ocn")
	e.oceanImport()
	start := time.Now()
	go func() {
		e.oceanSubsteps()
		e.ocnDone <- time.Since(start)
	}()
	var atmDur time.Duration
	if atmRings {
		e.timed("atm", e.atmosphereStep)
		atmDur = time.Since(start)
	}
	wsp := e.obs.StartSpan("cpl.wait.ocn")
	ocnDur := <-e.ocnDone
	wsp.End()
	osp.End()

	if atmDur > ocnDur {
		// The ocean group finished first and idled until the join — the
		// load-imbalance signal the overlap instrumentation exists to show.
		if h, ok := e.obs.(sectionAdder); ok {
			h.AddSection("cpl.wait.atm", atmDur-ocnDur)
		}
	}
	longer, shorter := atmDur, ocnDur
	if ocnDur > longer {
		longer, shorter = ocnDur, atmDur
	}
	frac := 0.0
	if longer > 0 {
		frac = float64(shorter) / float64(longer)
	}
	e.obs.SetGauge("cpl.overlap.frac", frac)
	e.overlapSum += frac
	e.overlapN++

	if iceRings {
		e.timed("ice", e.iceStep)
	}
}

// OverlapFraction returns the mean atmosphere–ocean overlap fraction over
// the concurrent couplings run so far (0 when none ran): per coupling, the
// shorter group's wall time divided by the longer's, i.e. the share of the
// critical path during which both groups were busy.
func (e *ESM) OverlapFraction() float64 {
	if e.overlapN == 0 {
		return 0
	}
	return e.overlapSum / float64(e.overlapN)
}

// bcastAtmStep replicates rank 0's atmosphere step outputs to every rank
// through one persistent flat buffer — the replicated concurrent schedule's
// single-writer path; decomposed runs never call it (each rank owns its
// patch and there is nothing to broadcast). par.Bcast shares the root's slice by
// reference, so non-root ranks copy out immediately; rank 0's next repack
// of the buffer is ordered after those copies by the surface-export
// collectives every base step performs before the next atmosphere step.
func (e *ESM) bcastAtmStep() {
	fields := e.Atm.StepOutputs()
	var pack []float64
	if e.Comm.Rank() == 0 {
		if e.atmPack == nil {
			total := 0
			for _, f := range fields {
				total += len(f)
			}
			e.atmPack = make([]float64, total)
		}
		off := 0
		for _, f := range fields {
			off += copy(e.atmPack[off:], f)
		}
		pack = e.atmPack
	}
	pack = par.Bcast(e.Comm, 0, pack)
	if e.Comm.Rank() != 0 {
		off := 0
		for _, f := range fields {
			off += copy(f, pack[off:off+len(f)])
		}
	}
}
