package core

import (
	"fmt"
	"math"

	"repro/internal/atmos"
	"repro/internal/coupler"
	"repro/internal/ocean"
)

// The distributed coupling path: with the atmosphere domain-decomposed, no
// rank holds the whole atmosphere any more, so the atm→ocn side of the
// coupler cannot read arbitrary atmosphere cells locally. The fluxes are
// routed through coupler.Router rearranges instead:
//
//   - nearest-neighbour mode rearranges the 7 per-column atmosphere inputs
//     (u10, v10, tair, qair, gsw, glw, precip) from the atmosphere's cell
//     ownership to the ocean's block ownership over the global ocean-column
//     index space, and the bulk formulas then run unchanged on the ocean
//     side — bit-identical to the replicated path because the formulas see
//     the same operands;
//   - conservative mode rearranges the CSR weight products w_p·f(col_p)
//     over the global index space of CSR entries, so each owned wet column
//     sums its row's terms in the same left-to-right order ConsRemap uses —
//     again bit-identical;
//   - the ice forcing (tair, u10, v10 at the nearest atmosphere cell)
//     reuses the nearest-neighbour router with a 3-field vector each base
//     step.
//
// The ocn→atm surface return stays replicated (refreshOceanSurface gathers
// and broadcasts SST/ice), which keeps the ring-1 halo's SST valid for the
// redundant physics columns without an extra exchange.
//
// All vectors are persistent, so the per-step pack/rearrange/consume cycle
// is allocation-free in steady state (the rearranger's own guarantee plus
// the preallocated AttrVects here).

var nnFields = []string{"u10", "v10", "tair", "qair", "gsw", "glw", "precip"}
var iceFields = []string{"tair", "u10", "v10"}
var consFields = []string{"taux", "tauy", "qnet", "emp"}

type distState struct {
	// Nearest-neighbour router over the global ocean-column space:
	// src owner(gi) = atm owner of OcnToAtm[gi], dst owner(gi) = ocean block
	// owner of column gi.
	nnRouter *coupler.Router
	nnSrcIdx []int // global ocean columns packed by this rank, ascending
	nnSrc    *coupler.AttrVect
	nnDst    *coupler.AttrVect
	iceSrc   *coupler.AttrVect
	iceDst   *coupler.AttrVect

	// Conservative router over the global CSR-entry space: src owner(p) =
	// atm owner of ConsCol[p], dst owner(p) = ocean block owner of the row
	// (wet column) entry p belongs to. Nil unless -remap=cons.
	consRouter *coupler.Router
	consSrcIdx []int
	consSrc    *coupler.AttrVect
	consDst    *coupler.AttrVect
}

// ocnColOwner returns the rank owning global ocean column gi under the 2D
// tripolar block decomposition, or -1 for columns of land-eliminated blocks
// — those columns appear in no GSMap and are never routed (their field
// values are identically zero).
func (e *ESM) ocnColOwner(gi int) int { return e.Ocn.B.Owner(gi) }

// initDistribute builds the rearrange plans once at assembly. Both GSMaps of
// each router are derived offline from rank-independent data, so every rank
// computes identical maps with no communication (§5.2.4's offline path).
func (e *ESM) initDistribute() error {
	d := e.dec
	c := e.Comm
	n := c.Size()
	nCol := e.Ocn.G.NX * e.Ocn.G.NY

	atmOwnerOfCol := func(gi int) int {
		if e.ocnColOwner(gi) < 0 {
			return -1 // land-eliminated destination column: filter at the source too
		}
		return d.Owner(e.Rg.OcnToAtm[gi])
	}
	srcMap, err := coupler.OfflineGSMap(atmOwnerOfCol, nCol, n)
	if err != nil {
		return fmt.Errorf("core: nn source map: %w", err)
	}
	dstMap, err := coupler.OfflineGSMap(e.ocnColOwner, nCol, n)
	if err != nil {
		return fmt.Errorf("core: nn destination map: %w", err)
	}
	rt, err := coupler.BuildRouter(c, srcMap, dstMap)
	if err != nil {
		return fmt.Errorf("core: nn router: %w", err)
	}
	// The nearest-neighbour router (shared by the nn flux inputs and the ice
	// forcing) follows the session wire format.
	rt.SetWire(e.wire)
	ds := &distState{nnRouter: rt, nnSrcIdx: srcMap.LocalIndices(c.Rank())}
	if ds.nnSrc, err = coupler.NewAttrVect(nnFields, rt.NSrc); err != nil {
		return err
	}
	if ds.nnDst, err = coupler.NewAttrVect(nnFields, rt.NDst); err != nil {
		return err
	}
	if ds.iceSrc, err = coupler.NewAttrVect(iceFields, rt.NSrc); err != nil {
		return err
	}
	if ds.iceDst, err = coupler.NewAttrVect(iceFields, rt.NDst); err != nil {
		return err
	}

	if e.remap == RemapCons {
		np := len(e.Rg.ConsCol)
		// rowOf maps a CSR entry to its wet column; ConsPtr is monotone over
		// gi, so a single forward walk assigns every entry.
		rowOf := make([]int32, np)
		for gi := 0; gi < nCol; gi++ {
			for p := e.Rg.ConsPtr[gi]; p < e.Rg.ConsPtr[gi+1]; p++ {
				rowOf[p] = int32(gi)
			}
		}
		atmOwnerOfEntry := func(p int) int {
			if e.ocnColOwner(int(rowOf[p])) < 0 {
				return -1 // entry of a land-eliminated row: never routed
			}
			return d.Owner(int(e.Rg.ConsCol[p]))
		}
		csrc, err := coupler.OfflineGSMap(atmOwnerOfEntry, np, n)
		if err != nil {
			return fmt.Errorf("core: cons source map: %w", err)
		}
		cdst, err := coupler.OfflineGSMap(func(p int) int { return e.ocnColOwner(int(rowOf[p])) }, np, n)
		if err != nil {
			return fmt.Errorf("core: cons destination map: %w", err)
		}
		crt, err := coupler.BuildRouter(c, csrc, cdst)
		if err != nil {
			return fmt.Errorf("core: cons router: %w", err)
		}
		// The conservative router is EXEMPT from wire compression, whatever
		// WithWireCompression selected: its payloads are the weight products
		// w_p·f(col_p) whose delivered sums must reproduce the atm-side
		// integrals to round-off — quantizing them would surface as an
		// O(1e-7) relative residual in the conservation audit, far past its
		// 1e-10 gate. Flux deliveries participating in the conservation
		// identity always travel f64.
		ds.consRouter = crt
		ds.consSrcIdx = csrc.LocalIndices(c.Rank())
		if ds.consSrc, err = coupler.NewAttrVect(consFields, crt.NSrc); err != nil {
			return err
		}
		if ds.consDst, err = coupler.NewAttrVect(consFields, crt.NDst); err != nil {
			return err
		}
	}
	e.dst = ds
	return nil
}

// rearrObs returns the observer handle for rearrange accounting, or nil.
func (e *ESM) rearrObs() coupler.Observer {
	if o, ok := e.obs.(coupler.Observer); ok {
		return o
	}
	return nil
}

// importNearestDistributed is importNearest with the atmosphere inputs
// arriving by rearrange instead of by replicated-array lookup. The packed
// values are read at owned atmosphere cells only, and the consuming loop
// walks owned columns in ascending global order — the destination vector's
// layout — with a running position, so the bulk formulas see exactly the
// operands the replicated path reads.
func (e *ESM) importNearestDistributed() {
	ds := e.dst
	a := e.Atm
	nc := a.Mesh.NCells()
	kb := a.NLev - 1
	a.Wind10mInto(e.u10, e.v10)
	pu, pv := ds.nnSrc.MustField("u10"), ds.nnSrc.MustField("v10")
	pt, pq := ds.nnSrc.MustField("tair"), ds.nnSrc.MustField("qair")
	psw, plw := ds.nnSrc.MustField("gsw"), ds.nnSrc.MustField("glw")
	ppr := ds.nnSrc.MustField("precip")
	for i, gi := range ds.nnSrcIdx {
		ac := e.Rg.OcnToAtm[gi]
		pu[i], pv[i] = e.u10[ac], e.v10[ac]
		pt[i], pq[i] = a.T[kb*nc+ac], a.Qv[kb*nc+ac]
		psw[i], plw[i] = a.GSW[ac], a.GLW[ac]
		ppr[i] = a.Precip[ac]
	}
	if err := coupler.RearrangeInto(e.Comm, ds.nnRouter, ds.nnSrc, ds.nnDst, coupler.ModeP2P, e.rearrObs()); err != nil {
		panic(fmt.Sprintf("core: nn rearrange: %v", err))
	}

	o := e.Ocn
	b := o.B
	du, dv := ds.nnDst.MustField("u10"), ds.nnDst.MustField("v10")
	dt, dq := ds.nnDst.MustField("tair"), ds.nnDst.MustField("qair")
	dsw, dlw := ds.nnDst.MustField("gsw"), ds.nnDst.MustField("glw")
	dpr := ds.nnDst.MustField("precip")
	pos := 0 // destination vectors are ascending-gi, matching the loop order
	for lj := 0; lj < b.NJ; lj++ {
		for li := 0; li < b.NI; li++ {
			idx := b.LIdx(li, lj)
			gi := b.GIdx(li, lj)
			p := pos
			pos++
			if !o.G.Mask[gi] {
				continue
			}
			open := 1 - e.Ice.Conc[idx]
			sstK := o.T[idx] + 273.15
			wind := math.Hypot(du[p], dv[p])
			tair := dt[p]
			qair := dq[p]

			o.TauX[idx] = rhoAirSfc * bulkCd * wind * du[p] * open
			o.TauY[idx] = rhoAirSfc * bulkCd * wind * dv[p] * open

			shf := rhoAirSfc * atmos.Cpd * bulkCh * wind * (sstK - tair)
			evap := rhoAirSfc * bulkCe * wind * (qsatSea(sstK) - qair)
			if evap < 0 {
				evap = 0
			}
			lhf := atmos.LatVap * evap

			qnet := (1-oceanAlbedo)*dsw[p] +
				oceanEmiss*(dlw[p]-sigmaSB*sstK*sstK*sstK*sstK) -
				shf - lhf
			o.QHeat[idx] = qnet*open + e.Ice.FreezeHeat[idx]
			emp := evap - dpr[p]
			o.FWFlux[idx] = ocean.SRef * emp / (ocean.Rho0 * firstLayerDepth(o))
		}
	}
}

// importConservativeDistributed delivers the conservative flux remap through
// the CSR-entry router: each rank packs w_p·f(col_p) for the entries whose
// atmosphere column it owns, and each owned wet ocean column sums its row's
// delivered terms in ascending-p order — the same left-to-right order
// ConsRemap uses, so the result is bit-identical to the replicated remap.
func (e *ESM) importConservativeDistributed() {
	ds := e.dst
	f := e.af
	ptx, pty := ds.consSrc.MustField("taux"), ds.consSrc.MustField("tauy")
	pqn, pem := ds.consSrc.MustField("qnet"), ds.consSrc.MustField("emp")
	for i, p := range ds.consSrcIdx {
		col := int(e.Rg.ConsCol[p])
		w := e.Rg.ConsW[p]
		ptx[i] = w * f.taux[col]
		pty[i] = w * f.tauy[col]
		pqn[i] = w * f.qnet[col]
		pem[i] = w * f.emp[col]
	}
	if err := coupler.RearrangeInto(e.Comm, ds.consRouter, ds.consSrc, ds.consDst, coupler.ModeP2P, e.rearrObs()); err != nil {
		panic(fmt.Sprintf("core: cons rearrange: %v", err))
	}

	o := e.Ocn
	b := o.B
	h0 := firstLayerDepth(o)
	dtx, dty := ds.consDst.MustField("taux"), ds.consDst.MustField("tauy")
	dqn, dem := ds.consDst.MustField("qnet"), ds.consDst.MustField("emp")
	pos := 0 // CSR entries arrive ascending-p = ascending (row, within-row)
	for lj := 0; lj < b.NJ; lj++ {
		for li := 0; li < b.NI; li++ {
			idx := b.LIdx(li, lj)
			gi := b.GIdx(li, lj)
			nrow := int(e.Rg.ConsPtr[gi+1] - e.Rg.ConsPtr[gi])
			if !o.G.Mask[gi] {
				pos += nrow // dry rows are empty, but keep the walk exact
				continue
			}
			var taux, tauy, qnet, emp float64
			for k := 0; k < nrow; k++ {
				taux += dtx[pos]
				tauy += dty[pos]
				qnet += dqn[pos]
				emp += dem[pos]
				pos++
			}
			o.TauX[idx] = taux
			o.TauY[idx] = tauy
			o.QHeat[idx] = qnet + e.Ice.FreezeHeat[idx]
			o.FWFlux[idx] = ocean.SRef * emp / (ocean.Rho0 * h0)
		}
	}
}

// iceForcingDistributed routes the ice model's atmosphere forcing (air
// temperature and 10 m wind at each column's nearest atmosphere cell)
// through the nearest-neighbour router, replacing iceStep's replicated
// lookups.
func (e *ESM) iceForcingDistributed() {
	ds := e.dst
	a := e.Atm
	nc := a.Mesh.NCells()
	kb := a.NLev - 1
	a.Wind10mInto(e.u10, e.v10)
	pt := ds.iceSrc.MustField("tair")
	pu, pv := ds.iceSrc.MustField("u10"), ds.iceSrc.MustField("v10")
	for i, gi := range ds.nnSrcIdx {
		ac := e.Rg.OcnToAtm[gi]
		pt[i] = a.T[kb*nc+ac]
		pu[i], pv[i] = e.u10[ac], e.v10[ac]
	}
	if err := coupler.RearrangeInto(e.Comm, ds.nnRouter, ds.iceSrc, ds.iceDst, coupler.ModeP2P, e.rearrObs()); err != nil {
		panic(fmt.Sprintf("core: ice rearrange: %v", err))
	}

	ice := e.Ice
	b := ice.B
	dt := ds.iceDst.MustField("tair")
	du, dv := ds.iceDst.MustField("u10"), ds.iceDst.MustField("v10")
	pos := 0
	for lj := 0; lj < b.NJ; lj++ {
		for li := 0; li < b.NI; li++ {
			idx := b.LIdx(li, lj)
			ice.TAir[idx] = dt[pos]
			ice.WindU[idx] = du[pos]
			ice.WindV[idx] = dv[pos]
			ice.SST[idx] = e.Ocn.T[e.ocnIdx2(li, lj)] + 273.15
			pos++
		}
	}
}

// ownedLandRuns computes the RLE runs (start slot, length) of a sorted slot
// list — the contiguous chunks a decomposed restart writes per rank.
func ownedLandRuns(slots []int) [][2]int {
	var runs [][2]int
	for i := 0; i < len(slots); {
		j := i
		for j+1 < len(slots) && slots[j+1] == slots[j]+1 {
			j++
		}
		runs = append(runs, [2]int{slots[i], j - i + 1})
		i = j + 1
	}
	return runs
}
