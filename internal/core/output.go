package core

import (
	"math"

	"repro/internal/atmos"
	"repro/internal/par"
	"repro/internal/pario"
)

// WriteSnapshot dumps the Fig 1-style diagnostic surface fields to one
// binary file readable with pario.ReadGlobal: atmosphere surface pressure,
// 10 m wind speed, precipitation, total-cloud proxy (on atmosphere cells),
// and SST, sea-surface kinetic energy, surface Rossby number, and ice
// concentration (on the global ocean grid). These are the quantities the
// paper visualizes in Figs 1 and 6.
func (e *ESM) WriteSnapshot(path string) error {
	var fields []pario.Field

	// Ocean-grid diagnostics are gathered and written by rank 0.
	o := e.Ocn
	b := o.B
	g := o.G
	n2g := g.NX * g.NY

	ro := o.SurfaceRossby()
	roLoc := b.Alloc()
	keLoc := b.Alloc()
	for lj := 0; lj < b.NJ; lj++ {
		for li := 0; li < b.NI; li++ {
			c := e.ocnIdx2(li, lj)
			roLoc[b.LIdx(li, lj)] = ro[lj*b.NI+li]
			u := 0.5 * (o.U[c] + o.U[c-1])
			v := 0.5 * (o.V[c] + o.V[c-o.LNI])
			keLoc[b.LIdx(li, lj)] = 0.5 * (u*u + v*v)
		}
	}
	roG := b.GatherGlobal(roLoc)
	keG := b.GatherGlobal(keLoc)
	sstG := b.GatherGlobal(o.T[:o.LNI*o.LNJ])
	iceLoc := b.Alloc()
	copy(iceLoc, e.Ice.Conc)
	iceG := b.GatherGlobal(iceLoc)

	// Atmosphere-cell diagnostics, assembled collectively (see
	// assembleAtmField).
	m := e.Atm
	nc := m.Mesh.NCells()
	m.Wind10mInto(e.u10, e.v10)
	speed := e.assembleAtmField(func(c int, out []float64) { out[c] = math.Hypot(e.u10[c], e.v10[c]) })
	ps := e.assembleAtmField(func(c int, out []float64) { out[c] = m.Ps[c] })
	precip := e.assembleAtmField(func(c int, out []float64) { out[c] = m.Precip[c] })
	cloud := e.assembleAtmField(func(c int, out []float64) {
		var w float64
		for k := 0; k < m.NLev; k++ {
			w += m.Qv[k*nc+c] * m.Ps[c] * m.DSig[k] / atmos.Gravity
		}
		out[c] = math.Min(1, w/50)
	})

	if e.Comm.Rank() == 0 {
		whole := func(name string, data []float64) {
			fields = append(fields, pario.Field{Name: name, Global: len(data), Start: 0, Data: data})
		}
		whole("ocn.rossby", roG)
		whole("ocn.ke", keG)
		whole("ocn.sst", sstG)
		whole("ice.conc", iceG)
		if len(roG) != n2g {
			panic("core: snapshot gather size mismatch")
		}
		whole("atm.ps", ps)
		whole("atm.wind10m", speed)
		whole("atm.precip", precip)
		whole("atm.cloud", cloud)
		// Cell coordinates so a plotting tool can place the unstructured
		// atmosphere values.
		whole("atm.loncell", append([]float64(nil), m.Mesh.LonCell...))
		whole("atm.latcell", append([]float64(nil), m.Mesh.LatCell...))
	}
	return pario.WriteSingleTo(e.Comm, path, fields, e.obs)
}

// assembleAtmField builds a global atmosphere-cell field. Replicated, every
// rank's arrays already hold the global state and fill runs over all cells;
// decomposed, each rank fills only its owned cells (halo and farther cells
// are stale at multi-rank) and a sum-allreduce assembles the global field —
// the owned ranges partition the mesh, so the sum places each value exactly
// once. Collective in both cases.
func (e *ESM) assembleAtmField(fill func(c int, out []float64)) []float64 {
	out := make([]float64, e.Atm.Mesh.NCells())
	if e.dec == nil {
		for c := range out {
			fill(c, out)
		}
		return out
	}
	for _, r := range e.dec.OwnedRanges() {
		for c := r[0]; c < r[0]+r[1]; c++ {
			fill(c, out)
		}
	}
	return e.Comm.AllreduceSlice(out, par.OpSum)
}

// GlobalAtmPs assembles the global surface-pressure field. Collective: under
// atmosphere decomposition only owned cells are live locally, so diagnostics
// that scan the whole field (typhoon center finding, ensemble spread) must go
// through this gather rather than reading Atm.Ps directly.
func (e *ESM) GlobalAtmPs() []float64 {
	m := e.Atm
	return e.assembleAtmField(func(c int, out []float64) { out[c] = m.Ps[c] })
}

// GlobalWind10m assembles the global 10 m wind components. Collective, like
// GlobalAtmPs.
func (e *ESM) GlobalWind10m() (u, v []float64) {
	e.Atm.Wind10mInto(e.u10, e.v10)
	u = e.assembleAtmField(func(c int, out []float64) { out[c] = e.u10[c] })
	v = e.assembleAtmField(func(c int, out []float64) { out[c] = e.v10[c] })
	return u, v
}
