package core

import (
	"math"

	"repro/internal/pario"
)

// WriteSnapshot dumps the Fig 1-style diagnostic surface fields to one
// binary file readable with pario.ReadGlobal: atmosphere surface pressure,
// 10 m wind speed, precipitation, total-cloud proxy (on atmosphere cells),
// and SST, sea-surface kinetic energy, surface Rossby number, and ice
// concentration (on the global ocean grid). These are the quantities the
// paper visualizes in Figs 1 and 6.
func (e *ESM) WriteSnapshot(path string) error {
	var fields []pario.Field

	// Ocean-grid diagnostics are gathered and written by rank 0.
	o := e.Ocn
	b := o.B
	g := o.G
	n2g := g.NX * g.NY

	ro := o.SurfaceRossby()
	roLoc := b.Alloc()
	keLoc := b.Alloc()
	for lj := 0; lj < b.NJ; lj++ {
		for li := 0; li < b.NI; li++ {
			c := e.ocnIdx2(li, lj)
			roLoc[b.LIdx(li, lj)] = ro[lj*b.NI+li]
			u := 0.5 * (o.U[c] + o.U[c-1])
			v := 0.5 * (o.V[c] + o.V[c-o.LNI])
			keLoc[b.LIdx(li, lj)] = 0.5 * (u*u + v*v)
		}
	}
	roG := b.GatherGlobal(roLoc)
	keG := b.GatherGlobal(keLoc)
	sstG := b.GatherGlobal(o.T[:o.LNI*o.LNJ])
	iceLoc := b.Alloc()
	copy(iceLoc, e.Ice.Conc)
	iceG := b.GatherGlobal(iceLoc)

	if e.Comm.Rank() == 0 {
		whole := func(name string, data []float64) {
			fields = append(fields, pario.Field{Name: name, Global: len(data), Start: 0, Data: data})
		}
		whole("ocn.rossby", roG)
		whole("ocn.ke", keG)
		whole("ocn.sst", sstG)
		whole("ice.conc", iceG)
		if len(roG) != n2g {
			panic("core: snapshot gather size mismatch")
		}

		m := e.Atm
		u, v := m.Wind10m()
		speed := make([]float64, len(u))
		for i := range u {
			speed[i] = math.Hypot(u[i], v[i])
		}
		whole("atm.ps", append([]float64(nil), m.Ps...))
		whole("atm.wind10m", speed)
		whole("atm.precip", append([]float64(nil), m.Precip...))
		whole("atm.cloud", m.TotalCloudProxy())
		// Cell coordinates so a plotting tool can place the unstructured
		// atmosphere values.
		whole("atm.loncell", append([]float64(nil), m.Mesh.LonCell...))
		whole("atm.latcell", append([]float64(nil), m.Mesh.LatCell...))
	}
	return pario.WriteSingleTo(e.Comm, path, fields, e.obs)
}
