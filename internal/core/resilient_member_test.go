package core

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pp"
	"repro/internal/typhoon"
)

func mkObservedESM(t *testing.T, c *par.Comm, o obs.Observer) func() (*ESM, error) {
	t.Helper()
	cfg, err := ConfigForLabel("25v10")
	if err != nil {
		t.Fatal(err)
	}
	start := resilientStart()
	return func() (*ESM, error) {
		e, err := NewWithOptions(cfg, c,
			WithInterval(start, start.Add(24*time.Hour)),
			WithSpace(pp.Serial{}),
			WithObserver(o))
		if err != nil {
			return nil, err
		}
		typhoon.Seed(e.Atm, typhoon.DoksuriSeed())
		return e, nil
	}
}

func counterVal(o *obs.Obs, name string) int64 {
	for _, p := range o.Snapshot() {
		if p.Name == name && p.Kind == obs.KindCounter {
			return p.Count
		}
	}
	return 0
}

// The jitter satellite: the chosen backoff is surfaced on the RecoveryEvent,
// lands inside [base/2, base] of the doubled-per-attempt base, and is
// deterministic in ResilientConfig.Seed — two runs with the same seed sleep
// identically, so a member's ranks stay collectively in step.
func TestRunResilientJitteredBackoff(t *testing.T) {
	const base = 4 * time.Millisecond
	run := func(seed int64) time.Duration {
		plan, err := fault.Parse("nan@esm.step:5", 9)
		if err != nil {
			t.Fatal(err)
		}
		fault.Arm(plan)
		defer fault.Disarm()
		var got time.Duration
		par.Run(1, func(c *par.Comm) {
			_, rep, err := RunResilient(mkESM(t, c), ResilientConfig{
				Days: 8.0 / 180, CheckpointEvery: 4, MaxRetries: 3,
				Dir: filepath.Join(t.TempDir(), "ck"), Backoff: base, Seed: seed,
			})
			if err != nil {
				t.Fatalf("resilient run failed: %v", err)
			}
			if len(rep.Recoveries) != 1 {
				t.Fatalf("recoveries %+v, want 1", rep.Recoveries)
			}
			got = rep.Recoveries[0].Backoff
		})
		return got
	}
	d1 := run(42)
	if d1 < base/2 || d1 > base {
		t.Fatalf("attempt-1 backoff %v outside [%v, %v]", d1, base/2, base)
	}
	if d2 := run(42); d2 != d1 {
		t.Fatalf("same seed drew different delays: %v vs %v", d1, d2)
	}
}

// The member-scoped supervision path end to end: a member world launched via
// par.RunNamed recovers from faults armed only under its scope — a transient
// NaN at the scoped esm.step site and an injected io-error at the scoped
// core.checkpoint site — and every recovery counter is emitted on both the
// plain and the {member="..."} labeled series.
func TestRunResilientMemberScoped(t *testing.T) {
	const member = "m03"
	plan, err := fault.Parse("nan@esm.step:5;io-error@core.checkpoint:3", 17)
	if err != nil {
		t.Fatal(err)
	}
	fault.ArmScoped(member, plan)
	defer fault.DisarmScoped(member)

	o := obs.New(0, nil)
	par.RunNamed(1, member, func(c *par.Comm) {
		_, rep, err := RunResilient(mkObservedESM(t, c, o), ResilientConfig{
			Days: 12.0 / 180, CheckpointEvery: 4, MaxRetries: 4,
			Dir: filepath.Join(t.TempDir(), "ck"), Backoff: time.Millisecond,
			Seed: 3, Member: member,
		})
		if err != nil {
			t.Fatalf("member run failed: %v (recoveries %+v)", err, rep.Recoveries)
		}
		if rep.Steps != 12 {
			t.Fatalf("completed %d steps, want 12", rep.Steps)
		}
		if len(rep.Recoveries) != 2 {
			t.Fatalf("recoveries %+v, want the scoped NaN and the scoped checkpoint io-error", rep.Recoveries)
		}
	})
	if c := plan.Counts(); c[fault.NaN] != 1 || c[fault.IOError] != 1 {
		t.Errorf("scoped fault counts %v", c)
	}
	plain := counterVal(o, "recovery.rollbacks")
	labeled := counterVal(o, obs.Labeled("recovery.rollbacks", "member", member))
	if plain != 2 || labeled != 2 {
		t.Errorf("recovery.rollbacks plain=%d labeled=%d, want 2 and 2", plain, labeled)
	}
	if n := counterVal(o, obs.Labeled("recovery.restores", "member", member)); n != 2 {
		t.Errorf("labeled recovery.restores = %d, want 2", n)
	}
}

// A foreign member's scoped plan must not leak: the same faults armed under
// another scope leave an unlabeled world's run untouched.
func TestScopedFaultDoesNotLeakAcrossMembers(t *testing.T) {
	plan, err := fault.Parse("nan@esm.step:2", 5)
	if err != nil {
		t.Fatal(err)
	}
	fault.ArmScoped("m99", plan)
	defer fault.DisarmScoped("m99")
	par.Run(1, func(c *par.Comm) {
		_, rep, err := RunResilient(mkESM(t, c), ResilientConfig{
			Days: 6.0 / 180, CheckpointEvery: 3, MaxRetries: 2,
			Dir: filepath.Join(t.TempDir(), "ck"), Backoff: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Recoveries) != 0 {
			t.Fatalf("foreign scoped plan fired in the global world: %+v", rep.Recoveries)
		}
	})
	if c := plan.Counts(); c[fault.NaN] != 0 {
		t.Errorf("scoped plan fired %v times outside its scope", c)
	}
}
