package core

import (
	"testing"

	"repro/internal/coupler"
	"repro/internal/par"
	"repro/internal/pp"
)

func TestParseSchedule(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Schedule
	}{{"seq", ScheduleSeq}, {"conc", ScheduleConc}} {
		got, err := ParseSchedule(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSchedule(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseSchedule("overlapped"); err == nil {
		t.Error("unknown schedule accepted")
	}
}

// snapshotState flattens every prognostic and exchanged field of the
// coupled model into one slice — the complete state the bit-for-bit
// comparison between schedules must agree on.
func snapshotState(e *ESM) []float64 {
	var s []float64
	for _, f := range [][]float64{
		e.Ocn.T, e.Ocn.S, e.Ocn.U, e.Ocn.V, e.Ocn.Eta, e.Ocn.Ubar, e.Ocn.Vbar,
		e.Atm.U, e.Atm.T, e.Atm.Qv, e.Atm.Ps, e.Atm.SST, e.Atm.IceFrac, e.Atm.Precip,
		e.Ice.Conc, e.Ice.Thick,
		e.Lnd.TSoil, e.Lnd.Bucket,
		e.sstGlobal,
	} {
		s = append(s, f...)
	}
	return s
}

// runScheduleSteps advances a fresh 2-rank model `steps` base steps under
// the schedule and returns each rank's state snapshot.
func runScheduleSteps(t *testing.T, sched Schedule, steps int) [][]float64 {
	t.Helper()
	cfg, err := ConfigForLabel("25v10")
	if err != nil {
		t.Fatal(err)
	}
	snaps := make([][]float64, 2)
	par.Run(2, func(c *par.Comm) {
		e, err := NewWithOptions(cfg, c, WithSpace(pp.Serial{}), WithSchedule(sched))
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < steps; i++ {
			if !e.Step() {
				t.Errorf("clock exhausted at step %d", i)
				return
			}
		}
		snaps[c.Rank()] = snapshotState(e)
	})
	return snaps
}

// The concurrent schedule must reproduce the sequential schedule
// bit-for-bit on every rank: the two component groups exchange nothing
// between the import and export barriers, and the broadcast atmosphere is
// the same state the redundant computation would produce.
func TestConcSeqBitForBit(t *testing.T) {
	const steps = 20 // four ocean couplings, twenty atmosphere couplings
	seq := runScheduleSteps(t, ScheduleSeq, steps)
	conc := runScheduleSteps(t, ScheduleConc, steps)
	for rank := range seq {
		if len(seq[rank]) == 0 || len(conc[rank]) == 0 {
			t.Fatalf("rank %d: missing snapshot", rank)
		}
		if len(seq[rank]) != len(conc[rank]) {
			t.Fatalf("rank %d: snapshot sizes differ: %d vs %d", rank, len(seq[rank]), len(conc[rank]))
		}
		for i := range seq[rank] {
			if seq[rank][i] != conc[rank][i] {
				t.Errorf("rank %d: state[%d] differs: seq %v, conc %v",
					rank, i, seq[rank][i], conc[rank][i])
				break
			}
		}
	}
}

// Race-detector stress lap: the concurrent schedule's ocean goroutine runs
// halo point-to-point traffic while the driver broadcasts the atmosphere,
// and a P2P rearrangement exercises the persistent-buffer path between
// steps. Run under -race by scripts/check.sh.
func TestConcScheduleRaceStress(t *testing.T) {
	cfg, err := ConfigForLabel("25v10")
	if err != nil {
		t.Fatal(err)
	}
	const p = 2
	n := cfg.OcnNX * cfg.OcnNY
	src, err := coupler.OfflineGSMap(func(gi int) int {
		if gi < n/p {
			return 0
		}
		return 1
	}, n, p)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := coupler.OfflineGSMap(func(gi int) int { return gi % p }, n, p)
	if err != nil {
		t.Fatal(err)
	}
	par.Run(p, func(c *par.Comm) {
		e, err := NewWithOptions(cfg, c, WithSpace(pp.Serial{}), WithSchedule(ScheduleConc))
		if err != nil {
			t.Error(err)
			return
		}
		r, err := coupler.BuildRouter(c, src, dst)
		if err != nil {
			t.Error(err)
			return
		}
		sv, _ := coupler.NewAttrVect([]string{"sst"}, len(src.LocalIndices(c.Rank())))
		dv, _ := coupler.NewAttrVect([]string{"sst"}, len(dst.LocalIndices(c.Rank())))
		for i := 0; i < 12; i++ {
			if !e.Step() {
				t.Errorf("clock exhausted at step %d", i)
				return
			}
			copy(sv.MustField("sst"), e.sstGlobal)
			if err := coupler.RearrangeInto(c, r, sv, dv, coupler.ModeP2P, nil); err != nil {
				t.Error(err)
				return
			}
		}
		if e.OverlapFraction() <= 0 {
			t.Error("no overlap recorded under the concurrent schedule")
		}
	})
}
