package core

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pp"
)

// TestObservedRun drives the acceptance scenario of the observability layer:
// a two-rank quickstart-config run into a shared JSONL sink must produce
// span events for every component section on every rank, plus nonzero par
// traffic counters after FlushMetrics.
func TestObservedRun(t *testing.T) {
	cfg, err := ConfigForLabel("25v10")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.jsonl")
	sink, err := obs.NewJSONLSink(path)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	par.Run(2, func(c *par.Comm) {
		o := obs.New(c.Rank(), sink)
		e, err := NewWithOptions(cfg, c,
			WithInterval(start, start.Add(24*time.Hour)),
			WithSpace(pp.NewHost(0)),
			WithObserver(o))
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 10; i++ {
			e.Step()
		}
		o.FlushMetrics()
	})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := obs.ReadJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	spans := map[string]map[int]int{} // section -> rank -> count
	counters := map[string]float64{}
	for _, e := range events {
		switch e.Kind {
		case "span":
			if spans[e.Name] == nil {
				spans[e.Name] = map[int]int{}
			}
			spans[e.Name][e.Rank]++
		case "counter":
			counters[e.Name] += e.Value
		}
	}
	for _, sec := range []string{"atm", "ice", "ocn"} {
		for rank := 0; rank < 2; rank++ {
			if spans[sec][rank] == 0 {
				t.Errorf("no %q span events from rank %d", sec, rank)
			}
		}
	}
	for _, name := range []string{"par.send.bytes", "par.recv.bytes", "par.collective.calls"} {
		if counters[name] <= 0 {
			t.Errorf("counter %q = %g, want > 0 after FlushMetrics", name, counters[name])
		}
	}
	if counters["pp.for.launches"] <= 0 {
		t.Errorf("instrumented space did not count launches: %v", counters["pp.for.launches"])
	}
}

// TestNewWithOptionsDefaults checks that the options constructor with no
// options behaves like the classic quickstart defaults and that the legacy
// positional New still produces an identical model trajectory.
func TestNewWithOptionsDefaults(t *testing.T) {
	cfg, err := ConfigForLabel("1v1")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	par.Run(1, func(c *par.Comm) {
		a, err := NewWithOptions(cfg, c)
		if err != nil {
			t.Error(err)
			return
		}
		b, err := New(cfg, c, start, start.Add(24*time.Hour), pp.Serial{})
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 5; i++ {
			a.Step()
			b.Step()
		}
		wa, _ := a.Atm.MinPs()
		wb, _ := b.Atm.MinPs()
		if wa != wb {
			t.Errorf("defaults diverge from positional New: min ps %v vs %v", wa, wb)
		}
	})
}

// TestNopObserverSkipsInstrumentation checks the disabled path: with
// obs.Nop the model must not wrap the space or forward communicator counts.
func TestNopObserverSkipsInstrumentation(t *testing.T) {
	cfg, err := ConfigForLabel("1v1")
	if err != nil {
		t.Fatal(err)
	}
	par.Run(1, func(c *par.Comm) {
		e, err := NewWithOptions(cfg, c, WithObserver(obs.Nop{}))
		if err != nil {
			t.Error(err)
			return
		}
		e.Step()
		if _, calls := e.Timing().Section("atm"); calls != 0 {
			t.Errorf("Nop observer accumulated sections (%d calls)", calls)
		}
	})
}
