package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/par"
	"repro/internal/pp"
)

// globalCoupledState assembles the rank-count-independent coupled state into
// one flat global image: atmosphere Ps/T/Qv/U/SST plus the land stores.
// Replicated, the local arrays already are that image; decomposed, each rank
// contributes exactly its owned cells, edges, and land slots to a zeroed
// buffer and a sum-allreduce places every value once (the owned sets
// partition their index spaces), so the result is bit-exact, not averaged.
func globalCoupledState(e *ESM) []float64 {
	m := e.Atm
	nc, ne, nl := m.Mesh.NCells(), m.Mesh.NEdges(), m.NLev
	nT := len(e.Lnd.TSoil)
	oPs := 0
	oT := oPs + nc
	oQv := oT + nl*nc
	oU := oQv + nl*nc
	oSST := oU + nl*ne
	oTS := oSST + nc
	oBk := oTS + nT
	buf := make([]float64, oBk+nT)
	if e.dec == nil {
		copy(buf[oPs:], m.Ps)
		copy(buf[oT:], m.T)
		copy(buf[oQv:], m.Qv)
		copy(buf[oU:], m.U)
		copy(buf[oSST:], m.SST)
		copy(buf[oTS:], e.Lnd.TSoil)
		copy(buf[oBk:], e.Lnd.Bucket)
		return buf
	}
	d := e.dec
	for _, r := range d.OwnedRanges() {
		for c := r[0]; c < r[0]+r[1]; c++ {
			buf[oPs+c] = m.Ps[c]
			buf[oSST+c] = m.SST[c]
			for k := 0; k < nl; k++ {
				buf[oT+k*nc+c] = m.T[k*nc+c]
				buf[oQv+k*nc+c] = m.Qv[k*nc+c]
			}
		}
	}
	for _, eg := range d.(grid.EdgeDecomp).OwnedEdgeList() {
		for k := 0; k < nl; k++ {
			buf[oU+k*ne+eg] = m.U[k*ne+eg]
		}
	}
	for _, slot := range e.ownSlots {
		buf[oTS+slot] = e.Lnd.TSoil[slot]
		buf[oBk+slot] = e.Lnd.Bucket[slot]
	}
	return e.Comm.AllreduceSlice(buf, par.OpSum)
}

// runDecomp advances a fresh audited conservative-remap model and returns
// the assembled global state, rank 0's gathered sea-surface height, and the
// worst audited residuals.
func runDecomp(t *testing.T, ranks int, sched Schedule, decomp bool, steps int) (state, eta []float64, maxHeat, maxFW float64) {
	t.Helper()
	cfg, err := ConfigForLabel("25v10")
	if err != nil {
		t.Fatal(err)
	}
	par.Run(ranks, func(c *par.Comm) {
		e, err := NewWithOptions(cfg, c, WithSpace(pp.Serial{}),
			WithSchedule(sched), WithRemap(RemapCons), WithAudit(true),
			WithAtmDecomp(decomp))
		if err != nil {
			t.Error(err)
			return
		}
		if decomp && ranks > 1 && e.dec == nil {
			t.Error("decomposition requested but not active")
			return
		}
		if (!decomp || ranks == 1) && e.dec != nil {
			t.Error("decomposition active but not requested")
			return
		}
		for i := 0; i < steps; i++ {
			if !e.Step() {
				t.Errorf("clock exhausted at step %d", i)
				return
			}
		}
		st := globalCoupledState(e)
		out := e.Ocn.GatherSurface(e.Ocn.Eta)
		if c.Rank() == 0 {
			state, eta = st, out
			s := e.Budget().Summary()
			maxHeat, maxFW = s.MaxHeatResid, s.MaxFWResid
		}
	})
	return state, eta, maxHeat, maxFW
}

// The tentpole acceptance test: the decomposed atmosphere + land, the 2D
// block-decomposed ocean + ice, and the distributed conservative coupling
// path reproduce the 1-rank replicated run bit-for-bit at 2, 4, 8, and 16
// ranks, under both schedules, while the conservation audit stays
// gate-clean at every rank count.
func TestDecompRankCountInvariance(t *testing.T) {
	const steps = 25 // five audited ocean couplings
	refState, refEta, refHeat, refFW := runDecomp(t, 1, ScheduleSeq, true, steps)
	if refHeat > 1e-10 || refFW > 1e-10 {
		t.Fatalf("1-rank residuals %.3e/%.3e exceed the 1e-10 gate", refHeat, refFW)
	}
	counts := []int{2, 4, 8, 16}
	if testing.Short() {
		counts = []int{2, 8}
	}
	for _, ranks := range counts {
		for _, sched := range []Schedule{ScheduleSeq, ScheduleConc} {
			t.Run(fmt.Sprintf("ranks=%d/%v", ranks, sched), func(t *testing.T) {
				state, eta, maxHeat, maxFW := runDecomp(t, ranks, sched, true, steps)
				if maxHeat > 1e-10 || maxFW > 1e-10 {
					t.Errorf("residuals %.3e/%.3e exceed the 1e-10 gate", maxHeat, maxFW)
				}
				if len(state) != len(refState) {
					t.Fatalf("state sizes differ: %d vs %d", len(state), len(refState))
				}
				for i := range state {
					if state[i] != refState[i] {
						t.Fatalf("state[%d] = %v, 1-rank reference %v", i, state[i], refState[i])
					}
				}
				for i := range eta {
					if eta[i] != refEta[i] {
						t.Fatalf("eta[%d] = %v, 1-rank reference %v", i, eta[i], refEta[i])
					}
				}
			})
		}
	}
}

// WithAtmDecomp(false) keeps the historical replicated dataflow — and it
// must agree bit-for-bit with the decomposed dataflow at the same rank
// count, the A/B the bench harness relies on.
func TestDecompMatchesReplicatedSameRanks(t *testing.T) {
	const steps = 15
	repState, repEta, _, _ := runDecomp(t, 2, ScheduleSeq, false, steps)
	decState, decEta, _, _ := runDecomp(t, 2, ScheduleSeq, true, steps)
	for i := range decState {
		if decState[i] != repState[i] {
			t.Fatalf("state[%d]: decomposed %v vs replicated %v", i, decState[i], repState[i])
		}
	}
	for i := range decEta {
		if decEta[i] != repEta[i] {
			t.Fatalf("eta[%d]: decomposed %v vs replicated %v", i, decEta[i], repEta[i])
		}
	}
}

// A decomposed run checkpoints through per-rank owned chunks; the restored
// run — on the same rank count or on a single replicated rank — must
// continue bit-for-bit. (The converse direction, a replicated checkpoint
// restored onto a decomposed run, is pinned by TestRestartAcrossRankCounts.)
func TestDecompRestartRoundTrip(t *testing.T) {
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	cfg, err := ConfigForLabel("25v10")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const stepsA, stepsB = 10, 8

	var ref []float64
	par.Run(2, func(c *par.Comm) {
		e, err := NewWithOptions(cfg, c, WithInterval(start, start.Add(24*time.Hour)))
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < stepsA; i++ {
			e.Step()
		}
		if err := e.WriteRestart(dir, 2); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < stepsB; i++ {
			e.Step()
		}
		st := globalCoupledState(e)
		if c.Rank() == 0 {
			ref = st
		}
	})
	if ref == nil {
		t.Fatal("no reference state")
	}

	check := func(name string, ranks int) {
		var got []float64
		par.Run(ranks, func(c *par.Comm) {
			e, err := NewWithOptions(cfg, c, WithInterval(start, start.Add(24*time.Hour)))
			if err != nil {
				t.Error(err)
				return
			}
			if err := e.ReadRestart(dir, 2); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < stepsB; i++ {
				e.Step()
			}
			st := globalCoupledState(e)
			if c.Rank() == 0 {
				got = st
			}
		})
		if got == nil {
			t.Fatalf("%s: no state", name)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: state[%d] = %v, want %v", name, i, got[i], ref[i])
			}
		}
	}
	check("same-rank-count resume", 2)
	check("replicated resume of decomposed checkpoint", 1)
}

// The distributed coupling hot path — pack, icos rearrange, consume — must
// be allocation-free in steady state, in both remap modes. Rank 0 measures
// while the peer drives the matching collectives the same number of times.
func TestDistributedImportZeroAllocs(t *testing.T) {
	cfg, err := ConfigForLabel("25v10")
	if err != nil {
		t.Fatal(err)
	}
	for _, remap := range []RemapMode{RemapNN, RemapCons} {
		t.Run(remap.String(), func(t *testing.T) {
			const runs = 20
			par.Run(2, func(c *par.Comm) {
				e, err := NewWithOptions(cfg, c, WithSpace(pp.Serial{}), WithRemap(remap))
				if err != nil {
					t.Error(err)
					return
				}
				// Steady state: grow every router pack buffer first.
				for i := 0; i < 3; i++ {
					e.oceanImport()
				}
				c.Barrier()
				if c.Rank() == 0 {
					if allocs := testing.AllocsPerRun(runs, func() {
						e.oceanImport()
					}); allocs != 0 {
						t.Errorf("%v import: %v allocs/op in steady state, want 0", remap, allocs)
					}
				} else {
					for i := 0; i < runs+1; i++ {
						e.oceanImport()
					}
				}
				c.Barrier()
			})
		})
	}
}
