package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/ocean"
	"repro/internal/par"
	"repro/internal/pp"
	"repro/internal/precision"
	"repro/internal/typhoon"
)

func TestConfigurationCatalog(t *testing.T) {
	cfgs := Configurations()
	if len(cfgs) != 5 {
		t.Fatalf("%d configurations", len(cfgs))
	}
	labels := map[string]bool{}
	for _, c := range cfgs {
		labels[c.Label] = true
		if c.AtmCouplingsPerDay != 180 || c.OcnCouplingsPerDay != 36 || c.IceCouplingsPerDay != 180 {
			t.Errorf("%s: coupling cadence %d/%d/%d, want 180/36/180",
				c.Label, c.AtmCouplingsPerDay, c.OcnCouplingsPerDay, c.IceCouplingsPerDay)
		}
		if c.OcnNX%2 != 0 {
			t.Errorf("%s: odd ocean nx", c.Label)
		}
	}
	for _, want := range []string{"1v1", "3v2", "6v3", "10v5", "25v10"} {
		if !labels[want] {
			t.Errorf("missing %s", want)
		}
	}
	if _, err := ConfigForLabel("2v2"); err == nil {
		t.Error("bogus label accepted")
	}
	c, err := ConfigForLabel("3v2")
	if err != nil || c.PaperAtmKm != 3 || c.PaperOcnKm != 2 {
		t.Errorf("3v2 lookup: %+v, %v", c, err)
	}
}

func newESM(t *testing.T, label string, c *par.Comm, days float64) *ESM {
	t.Helper()
	cfg, err := ConfigForLabel(label)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	stop := start.Add(time.Duration(days * 24 * float64(time.Hour)))
	e, err := New(cfg, c, start, stop, pp.Serial{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRegridderMapsAreTotal(t *testing.T) {
	mesh, _ := grid.NewIcosMesh(3)
	g, _ := grid.NewTripolar(48, 24, 5)
	r := NewRegridder(mesh, g)
	for gi, ac := range r.OcnToAtm {
		if ac < 0 || ac >= mesh.NCells() {
			t.Fatalf("ocean column %d maps to invalid atm cell %d", gi, ac)
		}
	}
	wet := 0
	for c, oc := range r.AtmToOcn {
		if oc >= len(g.Mask) {
			t.Fatalf("atm cell %d maps out of range", c)
		}
		if oc >= 0 {
			if !g.Mask[oc] {
				t.Fatalf("atm cell %d maps to land column", c)
			}
			wet++
		}
	}
	if wet < mesh.NCells()/2 {
		t.Errorf("only %d/%d atm cells find ocean columns", wet, mesh.NCells())
	}
	// Spot-check geometric sanity: a mapped pair is within a few grid cells.
	for c := 0; c < mesh.NCells(); c += 97 {
		oc := r.AtmToOcn[c]
		if oc < 0 {
			continue
		}
		oj, oi := oc/g.NX, oc%g.NX
		d := typhoon.GreatCircleKm(
			mesh.LonCell[c]*180/math.Pi, mesh.LatCell[c]*180/math.Pi,
			g.Lon[oi]*180/math.Pi, g.Lat[oj]*180/math.Pi)
		if d > 3000 {
			t.Errorf("atm cell %d mapped %f km away", c, d)
		}
	}
}

func TestCoupledQuickstartRuns(t *testing.T) {
	par.Run(1, func(c *par.Comm) {
		e := newESM(t, "25v10", c, 1)
		// One simulated day = 180 coupling steps.
		n := e.RunDays(0.25)
		if n != 45 {
			t.Errorf("ran %d coupling steps, want 45", n)
		}
		if e.SimulatedSeconds() != 45*480 {
			t.Errorf("simulated %v s", e.SimulatedSeconds())
		}
		// Everything stays finite and physical.
		if w := e.Atm.MaxWind(); math.IsNaN(w) || w > 200 {
			t.Errorf("atm max wind %v", w)
		}
		if v := e.Ocn.MaxSurfaceSpeed(); math.IsNaN(v) || v > 10 {
			t.Errorf("ocean max speed %v", v)
		}
		if e.Ice.IceArea() < 0 {
			t.Error("negative ice area")
		}
		// The atmosphere must have received a real SST pattern: warm
		// tropics, cold poles.
		var warm, cold float64
		var nw, ncold int
		for c2 := 0; c2 < e.Atm.Mesh.NCells(); c2++ {
			if e.Atm.IsLand[c2] {
				continue
			}
			lat := math.Abs(e.Atm.Mesh.LatCell[c2])
			if lat < 0.3 {
				warm += e.Atm.SST[c2]
				nw++
			} else if lat > 1.2 {
				cold += e.Atm.SST[c2]
				ncold++
			}
		}
		if nw > 0 && ncold > 0 && warm/float64(nw) <= cold/float64(ncold) {
			t.Error("tropical SST not warmer than polar SST after coupling")
		}
	})
}

func TestAirSeaCouplingTransfersMomentum(t *testing.T) {
	par.Run(1, func(c *par.Comm) {
		e := newESM(t, "25v10", c, 2)
		ke0 := e.Ocn.SurfaceKineticEnergy()
		e.RunDays(1)
		ke1 := e.Ocn.SurfaceKineticEnergy()
		if ke1 <= ke0 {
			t.Errorf("atmosphere did not spin up the ocean: KE %v -> %v", ke0, ke1)
		}
	})
}

func TestCoupledSerialParallelAgreement(t *testing.T) {
	run := func(n int) []float64 {
		var sst []float64
		par.Run(n, func(c *par.Comm) {
			e := newESM(t, "25v10", c, 1)
			e.RunDays(0.1)
			out := par.Bcast(c, 0, e.sstGlobal)
			if c.Rank() == 0 {
				sst = out
			}
		})
		return sst
	}
	ref := run(1)
	got := run(4)
	if len(ref) == 0 || len(got) != len(ref) {
		t.Fatal("missing SST")
	}
	for i := range ref {
		if math.Abs(ref[i]-got[i]) > 1e-10 {
			t.Fatalf("SST[%d]: serial %v vs 4 ranks %v", i, ref[i], got[i])
		}
	}
}

func TestMixedPrecisionCoupledRun(t *testing.T) {
	par.Run(1, func(c *par.Comm) {
		cfg, _ := ConfigForLabel("25v10")
		cfg.Policy = precision.Mixed
		start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
		e, err := New(cfg, c, start, start.Add(24*time.Hour), pp.Serial{})
		if err != nil {
			t.Fatal(err)
		}
		e.RunDays(0.1)
		if v := e.Ocn.MaxSurfaceSpeed(); math.IsNaN(v) {
			t.Error("mixed-precision coupled run produced NaN")
		}
	})
}

func TestDoksuriForecastExperiment(t *testing.T) {
	par.Run(1, func(c *par.Comm) {
		e := newESM(t, "10v5", c, 2)
		if err := typhoon.Seed(e.Atm, typhoon.DoksuriSeed()); err != nil {
			t.Fatal(err)
		}
		start := e.Clock.Current
		seed := typhoon.DoksuriSeed()
		prev := typhoon.Fix{Time: start, LonDeg: seed.LonDeg, LatDeg: seed.LatDeg}
		var fixes []typhoon.Fix
		// Track 6-hourly over half a simulated day, searching near the
		// previous fix as real trackers do.
		for h := 0; h < 2; h++ {
			for s := 0; s < 45; s++ {
				if !e.Step() {
					t.Fatal("clock exhausted")
				}
			}
			fix, err := typhoon.FindCenterNear(e.Atm, start.Add(time.Duration(h+1)*6*time.Hour), prev, 1200, 800)
			if err != nil {
				t.Fatal(err)
			}
			fixes = append(fixes, fix)
			prev = fix
		}
		// The storm persists as a coherent depression.
		last := fixes[len(fixes)-1]
		if last.PressPa > 99950 {
			t.Errorf("storm lost: central pressure %v", last.PressPa)
		}
		// Track error against the best track is finite and not absurd for
		// a half-day coarse forecast.
		errKm, err := typhoon.TrackError(fixes, typhoon.BestTrackDoksuri())
		if err != nil {
			t.Fatal(err)
		}
		if errKm > 2500 {
			t.Errorf("track error %v km", errKm)
		}
	})
}

func TestMeasureSYPDPositive(t *testing.T) {
	par.Run(1, func(c *par.Comm) {
		e := newESM(t, "25v10", c, 1)
		sypd, err := e.MeasureSYPD(5)
		if err != nil {
			t.Fatal(err)
		}
		if sypd <= 0 {
			t.Errorf("SYPD = %v", sypd)
		}
		if _, err := e.MeasureSYPD(0); err == nil {
			t.Error("zero steps accepted")
		}
	})
}

func TestFactorize(t *testing.T) {
	for _, tc := range []struct{ n, nx, ny, px, py int }{
		{1, 48, 24, 1, 1},
		{4, 48, 24, 2, 2},
		{6, 48, 24, 3, 2},
		{2, 48, 24, 2, 1},
	} {
		px, py := factorize(tc.n, tc.nx, tc.ny)
		if px*py != tc.n || tc.nx%px != 0 || tc.ny%py != 0 {
			t.Errorf("factorize(%d) = %dx%d", tc.n, px, py)
		}
	}
}

func TestTimingReport(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		e := newESM(t, "25v10", c, 1)
		e.RunDays(0.1) // 18 coupling steps
		rows := e.TimingReport()
		if len(rows) != 3 {
			t.Fatalf("%d timing sections, want atm/ice/ocn", len(rows))
		}
		byName := map[string]TimingRow{}
		var totalFrac float64
		for _, r := range rows {
			byName[r.Section] = r
			totalFrac += r.Fraction
			if r.MaxWall <= 0 || r.SYPD <= 0 {
				t.Fatalf("section %s: wall %v, sypd %v", r.Section, r.MaxWall, r.SYPD)
			}
		}
		if math.Abs(totalFrac-1) > 1e-9 {
			t.Errorf("fractions sum to %v", totalFrac)
		}
		// Coupling cadence: 18 atm and ice calls, 3-4 ocean calls.
		if byName["atm"].Calls != 18 || byName["ice"].Calls != 18 {
			t.Errorf("atm/ice calls %d/%d", byName["atm"].Calls, byName["ice"].Calls)
		}
		if byName["ocn"].Calls < 3 || byName["ocn"].Calls > 4 {
			t.Errorf("ocn calls %d", byName["ocn"].Calls)
		}
		if c.Rank() == 0 {
			out := FormatTiming(rows)
			if len(out) == 0 {
				t.Error("empty report")
			}
		}
	})
}

// The paper: "The coupled models also reproduce the sea surface temperature
// cold trails following typhoon passage." The wake has two drivers — the
// storm's enhanced turbulent heat loss, and wind-driven entrainment of cold
// thermocline water. At this reproduction's resolution the full SST signal
// is below dynamic noise (the paper needed its 3v2 configuration too), so
// the test asserts each mechanism directly: (1) in the coupled run, the net
// surface heat flux into the ocean under the storm is lower than in a
// control run; (2) in an ocean-only run, typhoon-strength stress plus
// Richardson mixing cools the surface under the storm relative to a
// no-mixing run.
func TestTyphoonColdWakeMechanisms(t *testing.T) {
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	cfg, _ := ConfigForLabel("10v5")
	cfg.OcnCfg.RiMixing = true

	// --- (1) Coupled: storm reduces the net heat flux into the ocean ---
	boxFlux := func(seed bool) float64 {
		var q float64
		par.Run(1, func(c *par.Comm) {
			e, err := New(cfg, c, start, start.Add(48*time.Hour), pp.Serial{})
			if err != nil {
				t.Fatal(err)
			}
			if seed {
				sc := typhoon.DoksuriSeed()
				sc.Moisten = false
				sc.DeltaPs = 2500
				if err := typhoon.Seed(e.Atm, sc); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 45; i++ { // 6 simulated hours
				e.Step()
			}
			g := e.Ocn.G
			b := e.Ocn.B
			var n int
			for lj := 0; lj < b.NJ; lj++ {
				for li := 0; li < b.NI; li++ {
					gi := b.GIdx(li, lj)
					if !g.Mask[gi] {
						continue
					}
					j, i2 := gi/g.NX, gi%g.NX
					if math.Abs(g.Lon[i2]*180/math.Pi-131.5) < 8 &&
						math.Abs(g.Lat[j]*180/math.Pi-14.0) < 8 {
						q += e.Ocn.QHeat[e.ocnIdx2(li, lj)]
						n++
					}
				}
			}
			q /= float64(n)
		})
		return q
	}
	qControl := boxFlux(false)
	qStorm := boxFlux(true)
	if qStorm >= qControl {
		t.Errorf("storm did not enhance ocean heat loss: q %-.1f (storm) vs %-.1f (control) W/m2",
			qStorm, qControl)
	}

	// --- (2) Ocean-only: mixing entrains cold water under storm winds ---
	surfUnderStorm := func(mix bool) float64 {
		var mean float64
		g, err := grid.NewTripolar(72, 36, 10)
		if err != nil {
			t.Fatal(err)
		}
		par.Run(1, func(c *par.Comm) {
			b, _ := grid.NewTripolarReplicated(g, c, 1)
			oc := cfg.OcnCfg
			oc.RiMixing = mix
			o, err := ocean.New(g, b, oc, pp.Serial{})
			if err != nil {
				t.Fatal(err)
			}
			// Rotating typhoon-strength stress patch near (131.5E, 14N).
			for lj := 0; lj < b.NJ; lj++ {
				for li := 0; li < b.NI; li++ {
					dLon := g.Lon[li] - 131.5*math.Pi/180
					dLat := g.Lat[b.J0+lj] - 14*math.Pi/180
					r := math.Hypot(dLon, dLat)
					if r > 1e-9 && r < 0.25 {
						sMag := 2.5 * (r / 0.08) * math.Exp(1-(r/0.08)*(r/0.08))
						idx := b.LIdx(li, lj)
						o.TauX[idx] = -sMag * dLat / r
						o.TauY[idx] = sMag * dLon / r
					}
				}
			}
			for s := 0; s < 72; s++ { // 24 simulated hours
				o.Step()
			}
			var n int
			for lj := 0; lj < b.NJ; lj++ {
				for li := 0; li < b.NI; li++ {
					gi := b.GIdx(li, lj)
					if !g.Mask[gi] {
						continue
					}
					j, i2 := gi/g.NX, gi%g.NX
					if math.Abs(g.Lon[i2]*180/math.Pi-131.5) < 8 &&
						math.Abs(g.Lat[j]*180/math.Pi-14.0) < 8 {
						mean += o.T[e2idx(o, li, lj)]
						n++
					}
				}
			}
			mean /= float64(n)
		})
		return mean
	}
	tNoMix := surfUnderStorm(false)
	tMix := surfUnderStorm(true)
	if tMix >= tNoMix {
		t.Errorf("no entrainment cooling: SST %.4f (mixing) vs %.4f (no mixing)", tMix, tNoMix)
	}
}

// e2idx mirrors the ocean's local indexing for test reads.
func e2idx(o *ocean.Ocean, li, lj int) int {
	return (lj+o.B.H)*o.LNI + li + o.B.H
}
