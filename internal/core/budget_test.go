package core

import (
	"fmt"
	"testing"

	"repro/internal/budget"
	"repro/internal/par"
	"repro/internal/pp"
)

// runAudited advances a fresh audited model 50 base steps (10 ocean
// couplings at 25v10) and returns each rank's ledger summary and state
// snapshot.
func runAudited(t *testing.T, ranks int, sched Schedule, remap RemapMode) ([]budget.Summary, [][]float64) {
	t.Helper()
	cfg, err := ConfigForLabel("25v10")
	if err != nil {
		t.Fatal(err)
	}
	const steps = 50
	sums := make([]budget.Summary, ranks)
	snaps := make([][]float64, ranks)
	par.Run(ranks, func(c *par.Comm) {
		e, err := NewWithOptions(cfg, c, WithSpace(pp.Serial{}),
			WithSchedule(sched), WithRemap(remap), WithAudit(true))
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < steps; i++ {
			if !e.Step() {
				t.Errorf("clock exhausted at step %d", i)
				return
			}
		}
		sums[c.Rank()] = e.Budget().Summary()
		snaps[c.Rank()] = snapshotState(e)
	})
	return sums, snaps
}

// The acceptance gate: under the conservative remap the globally reduced
// heat and freshwater residuals close to round-off (≤ 1e-10 relative) over
// ≥ 10 coupling intervals, on 1 and 2 ranks, both schedules — and seq/conc
// remain bit-for-bit identical with the conservative flux path active.
func TestConsBudgetCloses(t *testing.T) {
	for _, ranks := range []int{1, 2} {
		var ref [][]float64
		for _, sched := range []Schedule{ScheduleSeq, ScheduleConc} {
			t.Run(fmt.Sprintf("ranks=%d/%v", ranks, sched), func(t *testing.T) {
				sums, snaps := runAudited(t, ranks, sched, RemapCons)
				for rank, s := range sums {
					if s.N < 10 {
						t.Fatalf("rank %d: only %d audited intervals", rank, s.N)
					}
					if s.MaxHeatResid > 1e-10 {
						t.Errorf("rank %d: max heat residual %.3e exceeds 1e-10", rank, s.MaxHeatResid)
					}
					if s.MaxFWResid > 1e-10 {
						t.Errorf("rank %d: max freshwater residual %.3e exceeds 1e-10", rank, s.MaxFWResid)
					}
					// The ledger is identical on every rank by construction:
					// replicated runs pair replicated atm-side terms with
					// allreduced ocn-side terms, and decomposed runs (the
					// multi-rank default) batch both sides' owned-range
					// partials through one allreduce.
					if s != sums[0] {
						t.Errorf("rank %d: summary differs from rank 0", rank)
					}
				}
				if ref == nil {
					ref = snaps
					return
				}
				for rank := range snaps {
					if len(snaps[rank]) != len(ref[rank]) {
						t.Fatalf("rank %d: snapshot sizes differ", rank)
					}
					for i := range snaps[rank] {
						if snaps[rank][i] != ref[rank][i] {
							t.Fatalf("rank %d: state[%d] differs between schedules under cons remap",
								rank, i)
						}
					}
				}
			})
		}
	}
}

// Regression pin for the bug this PR fixes: the nearest-neighbour flux path
// leaks — its audited heat residual is systematically nonzero (orders of
// magnitude above round-off), while the conservative path on the same run
// closes. If nn ever closes to round-off, the pin below should be revisited
// (it would mean the flux paths were unified).
func TestNNBudgetLeakPinned(t *testing.T) {
	nn, _ := runAudited(t, 1, ScheduleSeq, RemapNN)
	cons, _ := runAudited(t, 1, ScheduleSeq, RemapCons)
	// Empirically the 25v10 nn leak is ~1e-2 relative for heat and fw; pin
	// two orders below so physics drift doesn't flake the test.
	if nn[0].MaxHeatResid < 1e-4 {
		t.Errorf("nn max heat residual %.3e unexpectedly small — leak gone?", nn[0].MaxHeatResid)
	}
	if nn[0].MaxFWResid < 1e-4 {
		t.Errorf("nn max fw residual %.3e unexpectedly small — leak gone?", nn[0].MaxFWResid)
	}
	if cons[0].MaxHeatResid >= nn[0].MaxHeatResid {
		t.Errorf("cons heat residual %.3e not below nn %.3e",
			cons[0].MaxHeatResid, nn[0].MaxHeatResid)
	}
}

// Unmapped atmosphere cells must be fully routed: flagged as land for the
// atmosphere's surface physics, owned by the land model, and counted by the
// audit — never dropped.
func TestUnmappedCellsRoutedToLand(t *testing.T) {
	cfg, err := ConfigForLabel("25v10")
	if err != nil {
		t.Fatal(err)
	}
	par.Run(1, func(c *par.Comm) {
		e, err := NewWithOptions(cfg, c, WithAudit(true))
		if err != nil {
			t.Error(err)
			return
		}
		owned := make(map[int]bool, len(e.Lnd.Cells))
		for _, cell := range e.Lnd.Cells {
			owned[cell] = true
		}
		for _, cell := range e.Rg.Unmapped {
			if !e.Atm.IsLand[cell] {
				t.Errorf("unmapped cell %d not flagged as land", cell)
			}
			if !owned[cell] {
				t.Errorf("unmapped cell %d not adopted by the land model", cell)
			}
		}
		for i := 0; i < 5; i++ {
			e.Step()
		}
		ivs := e.Budget().Intervals()
		if len(ivs) == 0 {
			t.Fatal("no audited intervals")
		}
		if got, want := ivs[0].UnmappedCells, len(e.Rg.Unmapped); got != want {
			t.Errorf("audited unmapped count %d, want %d", got, want)
		}
	})
}
