package core

import (
	"time"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pp"
)

// options collects the assembly parameters behind NewWithOptions.
type options struct {
	start, stop time.Time
	sp          pp.Space
	obs         obs.Observer
	schedule    Schedule
	remap       RemapMode
	audit       bool
	atmDecomp   bool
	ocnDecomp   bool
	wire        par.WireFormat
	kprec       pp.Prec
}

// Option configures model assembly.
type Option func(*options)

// WithInterval sets the simulated interval [start, stop).
func WithInterval(start, stop time.Time) Option {
	return func(o *options) { o.start, o.stop = start, stop }
}

// WithSpace selects the execution space the components run their kernels
// on; nil selects Serial.
func WithSpace(sp pp.Space) Option {
	return func(o *options) { o.sp = sp }
}

// WithObserver attaches an observability handle: component steps become
// spans on it, the communicator's traffic counters feed it, and the
// execution space is wrapped with launch accounting. Pass obs.Nop{} to
// disable instrumentation entirely; by default the model accumulates
// timings in memory (no sink), preserving the classic TimingReport.
func WithObserver(o obs.Observer) Option {
	return func(opt *options) { opt.obs = o }
}

// WithSchedule selects how the component groups advance within a coupling
// interval: ScheduleSeq (default) runs them strictly in sequence on every
// rank, ScheduleConc overlaps the ocean's baroclinic substeps with the
// atmosphere + land group and computes the replicated atmosphere once
// instead of redundantly. Both schedules are bit-for-bit identical.
func WithSchedule(s Schedule) Option {
	return func(opt *options) { opt.schedule = s }
}

// WithRemap selects the air–sea flux remap mode: RemapNN (default, the
// historical nearest-neighbour delivery) or RemapCons (first-order
// conservative overlap weights, closing the coupled heat and freshwater
// budgets to round-off).
func WithRemap(m RemapMode) Option {
	return func(opt *options) { opt.remap = m }
}

// WithAudit enables the conservation-audit ledger: every ocean coupling
// interval tallies the globally reduced interface and storage terms and
// streams them through the observer's budget.* gauges; Budget() returns the
// ledger for reports. Off by default — the audit adds one small collective
// per coupling interval.
func WithAudit(on bool) Option {
	return func(opt *options) { opt.audit = on }
}

// WithAtmDecomp selects whether the atmosphere + land are domain-decomposed
// across the communicator (the default) or computed redundantly on every
// rank (the historical replicated dataflow, kept as the 1-rank degenerate
// case and for A/B measurement). Decomposition partitions the icosahedral
// cells into contiguous ranges, keeps a one-ring halo current through
// point-to-point exchanges, and routes the atm→ocn coupling through the
// offline-scheduled rearranger; the prognostic state is bit-for-bit
// identical to the replicated dataflow at any rank count.
func WithAtmDecomp(on bool) Option {
	return func(opt *options) { opt.atmDecomp = on }
}

// WithOcnDecomp selects whether the ocean + sea ice are domain-decomposed
// across the communicator (the default) or replicated on every rank (the
// no-decomposition scaling baseline, mirroring WithAtmDecomp(false)).
// Decomposition partitions the tripolar grid into uniform 2D blocks —
// eliminating all-land blocks from the layout — and keeps a one-ring halo
// current through batched point-to-point exchanges; the prognostic state is
// bit-for-bit identical to the replicated dataflow at any rank count. The
// replicated ocean cannot be combined with the decomposed atmosphere at
// multi-rank (the coupling routers address ocean columns by owner).
func WithOcnDecomp(on bool) Option {
	return func(opt *options) { opt.ocnDecomp = on }
}

// WithWireCompression selects the wire format of the hot communication
// paths — both halo exchanges and the coupler rearranger's point-to-point
// path. par.WireF64 (default) ships raw float64 payloads, bit-for-bit
// identical to all prior behaviour; par.WireGS32 ships group-scaled FP32
// encodings (≈ 1.94× smaller), accepted because the conservation audit
// stays within its 1e-10 gate: halo quantization perturbs only redundantly
// recomputed overlap state, and the conservative flux rearranger is exempt
// — flux deliveries participating in the conservation identity always
// travel f64, whatever this option says.
func WithWireCompression(w par.WireFormat) Option {
	return func(opt *options) { opt.wire = w }
}

// WithKernelPrecision selects the precision the registered hot kernels run
// at. pp.PrecF64 (default) is bit-for-bit identical to all prior behaviour.
// pp.PrecMixed wraps the execution space in pp.Vec: the same kernel bodies
// run their float32 instantiations with unrolled inner loops, while
// accumulations, pressure integrals, and flux sums stay float64 — accepted
// because the conservation audit stays within its 1e-10 gate and the
// per-field error is bounded by the kernel-precision budget test. Distinct
// from the precision.Mixed state-quantization policy, which composes with
// either setting.
func WithKernelPrecision(p pp.Prec) Option {
	return func(opt *options) { opt.kprec = p }
}

// defaultOptions mirrors the quickstart setup: one simulated day from the
// repository's reference start date, Serial space, in-memory observer.
func defaultOptions() options {
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	return options{
		start:     start,
		stop:      start.Add(24 * time.Hour),
		sp:        pp.Serial{},
		atmDecomp: true,
		ocnDecomp: true,
	}
}

// NewWithOptions assembles the coupled model over the communicator with
// functional options — the redesigned entry point; New remains as a
// positional wrapper so call sites migrate incrementally.
func NewWithOptions(cfg Config, c *par.Comm, opts ...Option) (*ESM, error) {
	opt := defaultOptions()
	for _, apply := range opts {
		apply(&opt)
	}
	if opt.sp == nil {
		opt.sp = pp.Serial{}
	}
	if opt.obs == nil {
		opt.obs = obs.New(c.Rank(), nil)
	}
	return assemble(cfg, c, opt)
}
