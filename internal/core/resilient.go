package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/par"
)

// Resilient driving (§5.2.5's restart path promoted to a supervisor): at
// km-scale the production runs hold ~100k nodes for days, so the
// mean-time-between-failure is shorter than a run and the driver — not the
// operator — must detect faults, roll back to the last good checkpoint, and
// continue. RunResilient is that supervisor for the miniature machine:
// checkpoints at coupling boundaries, per-step physics health guardrails,
// and rollback with exponential backoff, all reported through obs
// ("recovery.*" counters next to the fault plan's "fault.injected.*").

// ResilientConfig parameterizes RunResilient.
type ResilientConfig struct {
	Days            float64       // simulated days to complete
	CheckpointEvery int           // coupling steps between checkpoints (≥ 1)
	MaxRetries      int           // consecutive failed recoveries before giving up
	Dir             string        // restart-set directory (the good set lives here)
	NGroups         int           // pario subfile groups (default 1)
	Backoff         time.Duration // base backoff, doubled per consecutive failure (default 10ms)

	// Seed drives the backoff jitter deterministically. Every rank of a
	// member passes the same seed, so the ranks draw identical delays and
	// stay collectively in step, while co-scheduled members seeded
	// differently spread their retries instead of thundering in lockstep.
	Seed int64

	// Member labels this run for fleet telemetry: when non-empty, every
	// recovery.* counter is emitted twice — the plain series and the
	// obs.Labeled `{member="..."}` series. (Fault-site scoping is separate:
	// the esm.step/core.checkpoint sites consult the plan armed under the
	// world's par.RunNamed member name.)
	Member string

	// OnCheckpoint, when non-nil, runs on every rank after each committed
	// checkpoint — the natural cadence for in-flight diagnostics (track
	// fixes, spread inputs). It must be collective-safe: every rank calls it
	// at the same step, so collective gathers (GlobalAtmPs, GlobalWind10m)
	// are fine inside. Work re-done after a rollback re-invokes it for
	// re-committed checkpoints; callbacks must tolerate replayed steps.
	OnCheckpoint func(e *ESM)
}

// RecoveryEvent records one detected fault and the rollback that answered it.
type RecoveryEvent struct {
	Step    int           // coupling step at which the fault was detected
	Reason  string        // what failed
	Attempt int           // consecutive attempt number (resets on a good checkpoint)
	Resumed int           // coupling step resumed from (0 = rebuilt initial state, -1 = gave up)
	Backoff time.Duration // the jittered delay slept before this rollback (0 when giving up)
}

// ResilientReport summarizes a resilient run.
type ResilientReport struct {
	Steps       int // coupling steps completed
	Checkpoints int // successful checkpoint commits
	Recoveries  []RecoveryEvent
}

// RunResilient integrates rc.Days simulated days, surviving faults. mk must
// build a fresh ESM in its initial state (including any seeding); it is
// called once up front and once per rollback, because ReadRestart requires a
// freshly constructed model. Collective: every rank runs the same loop and
// the health/checkpoint verdicts are allreduced, so all ranks roll back
// together. Returns the final model and the recovery report; err is non-nil
// only when MaxRetries consecutive recoveries failed or a rebuild failed.
func RunResilient(mk func() (*ESM, error), rc ResilientConfig) (*ESM, *ResilientReport, error) {
	if rc.CheckpointEvery < 1 {
		return nil, nil, fmt.Errorf("core: RunResilient needs CheckpointEvery ≥ 1, got %d", rc.CheckpointEvery)
	}
	if rc.Dir == "" {
		return nil, nil, fmt.Errorf("core: RunResilient needs a restart directory")
	}
	if rc.NGroups < 1 {
		rc.NGroups = 1
	}
	if rc.Backoff <= 0 {
		rc.Backoff = 10 * time.Millisecond
	}
	e, err := mk()
	if err != nil {
		return nil, nil, err
	}
	target := int(rc.Days * float64(e.Cfg.AtmCouplingsPerDay))
	rep := &ResilientReport{}
	goodStep := -1 // step of the last committed checkpoint; -1 = none yet
	attempt := 0
	rng := rand.New(rand.NewSource(rc.Seed))
	for e.CouplingSteps() < target {
		done, err := e.stepChecked()
		if done {
			// The clock interval ended before the step target — e.g. a
			// coupling period that does not divide the requested days. That
			// is completion, not a fault.
			break
		}
		if err == nil && e.CouplingSteps()%rc.CheckpointEvery == 0 {
			if cerr := e.checkpoint(rc); cerr != nil {
				err = fmt.Errorf("checkpoint at step %d: %w", e.CouplingSteps(), cerr)
			} else {
				goodStep = e.CouplingSteps()
				rep.Checkpoints++
				attempt = 0
				if rc.OnCheckpoint != nil {
					rc.OnCheckpoint(e)
				}
			}
		}
		if err == nil {
			continue
		}
		attempt++
		ev := RecoveryEvent{Step: e.CouplingSteps(), Reason: err.Error(), Attempt: attempt}
		e.countRecovery("recovery.rollbacks", rc.Member)
		if attempt > rc.MaxRetries {
			ev.Resumed = -1
			rep.Recoveries = append(rep.Recoveries, ev)
			e.countRecovery("recovery.giveups", rc.Member)
			return e, rep, fmt.Errorf("core: giving up after %d recovery attempts: %w", attempt, err)
		}
		// Exponential backoff with deterministic jitter before retrying: the
		// delay is drawn uniformly from [d/2, d] of the doubled base, so
		// co-scheduled ensemble members (seeded differently) spread their
		// retries instead of hammering the pool in lockstep, while the
		// shared per-member seed keeps that member's ranks in step.
		shift := attempt - 1
		if shift > 6 {
			shift = 6
		}
		base := rc.Backoff << shift
		delay := base/2 + time.Duration(rng.Int63n(int64(base/2)+1))
		ev.Backoff = delay
		time.Sleep(delay)
		fresh, rerr := rollback(mk, rc, &goodStep, e)
		if rerr != nil {
			ev.Resumed = -1
			rep.Recoveries = append(rep.Recoveries, ev)
			return e, rep, rerr
		}
		// Record Resumed only after rollback has settled where we actually
		// resumed from: a corrupt checkpoint resets goodStep to scratch.
		ev.Resumed = maxInt(goodStep, 0)
		rep.Recoveries = append(rep.Recoveries, ev)
		e = fresh
	}
	rep.Steps = e.CouplingSteps()
	e.obs.SetGauge("recovery.completed_steps", float64(rep.Steps))
	if rc.Member != "" {
		e.obs.SetGauge(obs.Labeled("recovery.completed_steps", "member", rc.Member), float64(rep.Steps))
	}
	return e, rep, nil
}

// countRecovery emits a recovery counter on the plain series and, when the
// run is an ensemble member, on the obs.Labeled `{member="..."}` series.
func (e *ESM) countRecovery(name, member string) {
	e.obs.AddCount(name, 1)
	if member != "" {
		e.obs.AddCount(obs.Labeled(name, "member", member), 1)
	}
}

// checkpoint commits a restart set, first consulting the "core.checkpoint"
// fault site scoped to the world's member name (like esm.step — fault scope
// always follows the world, while rc.Member only labels telemetry). The
// injected verdict is allreduced so a rank-targeted io-error rolls every
// rank back together instead of desynchronizing the collective WriteRestart.
func (e *ESM) checkpoint(rc ResilientConfig) error {
	bad := 0.0
	if f := fault.PointScoped(e.Comm.Member(), "core.checkpoint", e.Comm.Rank()); f != nil && f.Kind == fault.IOError {
		bad = 1
	}
	if e.Comm.Allreduce(bad, par.OpMax) != 0 {
		return fmt.Errorf("injected checkpoint io-error")
	}
	return e.WriteRestart(rc.Dir, rc.NGroups)
}

// rollback rebuilds the model at the last good checkpoint. A checkpoint that
// no longer loads (e.g. an injected bit-flip caught by the v2 checksums) is
// discarded and the run restarts from the initial state.
func rollback(mk func() (*ESM, error), rc ResilientConfig, goodStep *int, prev *ESM) (*ESM, error) {
	fresh, err := mk()
	if err != nil {
		return nil, fmt.Errorf("core: rebuilding model for rollback: %w", err)
	}
	if *goodStep < 0 {
		prev.countRecovery("recovery.restarts_from_scratch", rc.Member)
		return fresh, nil
	}
	if rerr := fresh.ReadRestart(rc.Dir, rc.NGroups); rerr != nil {
		// ReadRestart may have partially populated the model: rebuild again
		// and fall back to the initial state.
		prev.countRecovery("recovery.checkpoint_corrupt", rc.Member)
		*goodStep = -1
		fresh, err = mk()
		if err != nil {
			return nil, fmt.Errorf("core: rebuilding model after corrupt checkpoint: %w", err)
		}
		return fresh, nil
	}
	prev.countRecovery("recovery.restores", rc.Member)
	return fresh, nil
}

// stepChecked advances one coupling interval, converting panics to errors
// and validating physics health afterward. done reports that the clock
// interval is exhausted (normal end of run). Collective.
func (e *ESM) stepChecked() (done bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			done, err = false, fmt.Errorf("core: step %d panicked: %v", e.couplingSteps+1, p)
		}
	}()
	if !e.Step() {
		return true, nil
	}
	return false, e.Health()
}

// Health validates the physics guardrails at a coupling boundary: every
// prognostic field finite, surface pressure and ice concentration inside
// physical bounds, and CFL-style wind/current limits, per component. The
// verdict is allreduced so every rank agrees (collective); the distributed
// ocean/ice blocks would otherwise let ranks diverge on whether to roll
// back.
func (e *ESM) Health() error {
	local := e.healthLocal()
	bad := 0.0
	if local != nil {
		bad = 1
	}
	if e.Comm.Allreduce(bad, par.OpMax) != 0 {
		if local != nil {
			return local
		}
		return fmt.Errorf("core: health check failed on another rank at step %d", e.couplingSteps)
	}
	return nil
}

// Physics guardrails. The bounds are generous — they exist to catch NaN/Inf
// propagation and runaway instability, not to police climate.
const (
	healthMinPs   = 3.0e4  // Pa; deeper than any recorded cyclone
	healthMaxPs   = 1.2e5  // Pa
	healthMaxWind = 250.0  // m/s; CFL guardrail for the atmosphere dycore
	healthMaxCur  = 25.0   // m/s; CFL guardrail for the ocean
	healthMaxEta  = 100.0  // m of sea surface height
	healthMaxTemp = 1000.0 // K, atmosphere; runaway detector
)

func (e *ESM) healthLocal() error {
	step := e.couplingSteps
	finite := func(comp, field string, vals []float64) error {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: %s health: %s[%d] = %v at step %d", comp, field, i, v, step)
			}
		}
		return nil
	}
	m := e.Atm
	for _, f := range []struct {
		name string
		vals []float64
	}{{"ps", m.Ps}, {"t", m.T}, {"qv", m.Qv}, {"u", m.U}} {
		if err := finite("atm", f.name, f.vals); err != nil {
			return err
		}
	}
	for i, v := range m.Ps {
		if v < healthMinPs || v > healthMaxPs {
			return fmt.Errorf("core: atm health: ps[%d] = %.0f Pa outside [%g, %g] at step %d",
				i, v, healthMinPs, healthMaxPs, step)
		}
	}
	for i, v := range m.T {
		if v <= 0 || v > healthMaxTemp {
			return fmt.Errorf("core: atm health: t[%d] = %g K at step %d", i, v, step)
		}
	}
	if w := m.MaxWindLocal(); w > healthMaxWind {
		return fmt.Errorf("core: atm health: max wind %.1f m/s beyond the %g CFL guardrail at step %d",
			w, healthMaxWind, step)
	}
	o := e.Ocn
	for _, f := range []struct {
		name string
		vals []float64
	}{{"u", o.U}, {"v", o.V}, {"t", o.T}, {"s", o.S}, {"eta", o.Eta}} {
		if err := finite("ocn", f.name, f.vals); err != nil {
			return err
		}
	}
	for i, v := range o.Eta {
		if v < -healthMaxEta || v > healthMaxEta {
			return fmt.Errorf("core: ocn health: eta[%d] = %.1f m at step %d", i, v, step)
		}
	}
	for i, v := range o.U {
		if v < -healthMaxCur || v > healthMaxCur {
			return fmt.Errorf("core: ocn health: u[%d] = %.1f m/s beyond the %g CFL guardrail at step %d",
				i, v, healthMaxCur, step)
		}
	}
	ice := e.Ice
	if err := finite("ice", "conc", ice.Conc); err != nil {
		return err
	}
	for i, v := range ice.Conc {
		if v < -1e-9 || v > 1+1e-9 {
			return fmt.Errorf("core: ice health: conc[%d] = %g outside [0, 1] at step %d", i, v, step)
		}
	}
	if err := finite("ice", "thick", ice.Thick); err != nil {
		return err
	}
	if err := finite("lnd", "tsoil", e.Lnd.TSoil); err != nil {
		return err
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
