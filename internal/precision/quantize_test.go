package precision

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// QuantizeInPlace must be idempotent: the decoded field re-quantizes to
// itself, so repeated FP32 compute-and-store cycles under the Mixed policy
// do not drift. Property-tested over random fields, including mixed
// magnitudes within one group.
func TestQuantizeIdempotentProperty(t *testing.T) {
	prop := func(seed int64, group uint8) bool {
		g := int(group)%16 + 1
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 64)
		for i := range x {
			// Wide finite dynamic range: magnitudes from subnormal float64
			// (mantissa × 10⁻³²⁰) up to ~10³⁰⁰.
			x[i] = (rng.Float64()*2 - 1) * math.Pow(10, float64(rng.Intn(621)-320))
		}
		if err := QuantizeInPlace(x, g); err != nil {
			return false
		}
		once := append([]float64(nil), x...)
		if err := QuantizeInPlace(x, g); err != nil {
			return false
		}
		for i := range x {
			if x[i] != once[i] && !(math.IsNaN(x[i]) && math.IsNaN(once[i])) {
				t.Logf("seed %d group %d: x[%d] %.17g → %.17g", seed, g, i, once[i], x[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Round-trip safety at the exponent extremes: group maxima at or near the
// float64 overflow and subnormal boundaries must decode finite, non-NaN,
// within the float32 relative rounding bound, and idempotently.
func TestQuantizeExtremeGroupMaxima(t *testing.T) {
	const f32RelBound = 1.3e-7 // ~2·2⁻²⁴, covers rounding plus the cap clamp
	cases := []struct {
		name string
		vals []float64
	}{
		{"max-float64", []float64{math.MaxFloat64, 1.0, -3e300}},
		{"pow2-1023", []float64{math.Ldexp(1, 1023), -math.Ldexp(1, 1023), 5.5}},
		{"near-overflow", []float64{1.7e308, -1.6e308, 2.2}},
		{"min-subnormal", []float64{5e-324, 0, -5e-324}},
		{"subnormal", []float64{1e-310, -3e-311, 2e-312}},
		{"min-normal", []float64{2.2250738585072014e-308, 1e-308}},
		{"zeros", []float64{0, 0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x := append([]float64(nil), tc.vals...)
			if err := QuantizeInPlace(x, len(x)); err != nil {
				t.Fatal(err)
			}
			var maxAbs float64
			for _, v := range tc.vals {
				if a := math.Abs(v); a > maxAbs {
					maxAbs = a
				}
			}
			for i := range x {
				if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
					t.Fatalf("x[%d] = %g: non-finite round-trip of %g", i, x[i], tc.vals[i])
				}
				// Error bound relative to the group max (the representation's
				// granularity is set by the shared scale).
				if err := math.Abs(x[i] - tc.vals[i]); err > f32RelBound*maxAbs {
					t.Errorf("x[%d]: |%g − %g| = %g exceeds %g",
						i, x[i], tc.vals[i], err, f32RelBound*maxAbs)
				}
			}
			once := append([]float64(nil), x...)
			if err := QuantizeInPlace(x, len(x)); err != nil {
				t.Fatal(err)
			}
			for i := range x {
				if x[i] != once[i] {
					t.Errorf("not idempotent at %d: %.17g → %.17g", i, once[i], x[i])
				}
			}
		})
	}
}
