package precision

import (
	"errors"
	"math"
	"testing"
)

func TestDecodeIntoShapeErrors(t *testing.T) {
	gs, err := EncodeGroupScaled([]float64{1, 2, 3, 4, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*GroupScaled)
		dst    int
		what   string
	}{
		{"short dst", func(*GroupScaled) {}, 3, "dst"},
		{"long dst", func(*GroupScaled) {}, 7, "dst"},
		{"truncated vals", func(g *GroupScaled) { g.Vals = g.Vals[:2] }, 5, "vals"},
		{"truncated scales", func(g *GroupScaled) { g.Scales = g.Scales[:1] }, 5, "scales"},
		{"zero group", func(g *GroupScaled) { g.Group = 0 }, 5, "group"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := &GroupScaled{
				Group:  gs.Group,
				Scales: append([]float64(nil), gs.Scales...),
				Vals:   append([]float32(nil), gs.Vals...),
				N:      gs.N,
			}
			tc.mutate(g)
			err := g.DecodeInto(make([]float64, tc.dst))
			var shape *ErrShape
			if !errors.As(err, &shape) {
				t.Fatalf("want *ErrShape, got %v", err)
			}
			if shape.What != tc.what {
				t.Fatalf("ErrShape.What = %q, want %q", shape.What, tc.what)
			}
		})
	}
	// The intact encoding decodes cleanly through the error-returning form.
	dst := make([]float64, gs.N)
	if err := gs.DecodeInto(dst); err != nil {
		t.Fatalf("valid DecodeInto: %v", err)
	}
}

func TestDecodePanicsOnMismatch(t *testing.T) {
	gs, err := EncodeGroupScaled([]float64{1, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Decode on a short destination did not panic")
		}
	}()
	gs.Decode(make([]float64, 2))
}

func TestEncodeGroupScaledIntoReusesStorage(t *testing.T) {
	x := make([]float64, 640)
	for i := range x {
		x[i] = math.Sin(float64(i)) * math.Pow(10, float64(i%30-15))
	}
	gs := &GroupScaled{}
	if err := EncodeGroupScaledInto(gs, x, 64); err != nil {
		t.Fatal(err)
	}
	want := gs.Decode(nil)

	allocs := testing.AllocsPerRun(50, func() {
		if err := EncodeGroupScaledInto(gs, x, 64); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state EncodeGroupScaledInto allocates %.1f/op, want 0", allocs)
	}
	got := make([]float64, len(x))
	if err := gs.DecodeInto(got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("re-encode into reused storage diverged at %d: %v vs %v", i, got[i], want[i])
		}
	}

	// Shrinking inputs reuse the larger buffers without stale tail reads.
	if err := EncodeGroupScaledInto(gs, x[:100], 7); err != nil {
		t.Fatal(err)
	}
	if gs.N != 100 || len(gs.Vals) != 100 || len(gs.Scales) != 15 {
		t.Fatalf("shrunk encode has N=%d vals=%d scales=%d", gs.N, len(gs.Vals), len(gs.Scales))
	}
	out := make([]float64, 100)
	if err := gs.DecodeInto(out); err != nil {
		t.Fatal(err)
	}
}
