package precision

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzGroupScaledRoundTrip drives the group-scaled encoder with arbitrary
// field contents and group sizes: every finite input must encode without
// error, decode through the error-returning wire form, land within the
// representation's bit-error budget, and re-encode idempotently (the decoded
// field re-encodes to bit-identical values and scales — the property that
// keeps repeated wire hops from drifting).
func FuzzGroupScaledRoundTrip(f *testing.F) {
	seed := func(group int, vals ...float64) []byte {
		b := make([]byte, 2+8*len(vals))
		b[0] = byte(group)
		b[1] = byte(group >> 8)
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[2+8*i:], math.Float64bits(v))
		}
		return b
	}
	f.Add(seed(1, 1.0, -2.0, 3.5))
	f.Add(seed(4, 0.0, 0.0, 0.0, 0.0, 1e-300, 1e300))
	f.Add(seed(64, math.MaxFloat64, -math.MaxFloat64, 5e-324, 1.0))
	f.Add(seed(3, 101325.0, 3e-6, -9.81))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		group := int(data[0]) | int(data[1])<<8
		if group == 0 {
			group = 1
		}
		body := data[2:]
		x := make([]float64, len(body)/8)
		for i := range x {
			v := math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0 // the encoder's contract covers finite fields
			}
			x[i] = v
		}

		gs, err := EncodeGroupScaled(x, group)
		if err != nil {
			t.Fatalf("encode group=%d n=%d: %v", group, len(x), err)
		}
		got := make([]float64, len(x))
		if err := gs.DecodeInto(got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		// Bit-error budget: one float32 rounding step of the scaled value.
		// Stored magnitudes stay below 1 except at the exponent cap, where
		// the maxQuant clamp admits values up to just under 2 — so the bound
		// is one ulp at 2.0, i.e. 2^-23 of the group's power-of-two scale.
		for g := 0; g*group < len(x); g++ {
			lo, hi := g*group, (g+1)*group
			if hi > len(x) {
				hi = len(x)
			}
			budget := gs.Scales[g] * math.Pow(2, -23)
			for i := lo; i < hi; i++ {
				if d := math.Abs(got[i] - x[i]); d > budget {
					t.Fatalf("value %d: |%v - %v| = %v exceeds budget %v (scale %v)",
						i, got[i], x[i], d, budget, gs.Scales[g])
				}
				if math.IsNaN(got[i]) || math.IsInf(got[i], 0) {
					t.Fatalf("value %d decoded non-finite %v from finite %v", i, got[i], x[i])
				}
			}
		}

		// Idempotence: re-encoding the decoded field reproduces the encoding.
		gs2 := &GroupScaled{}
		if err := EncodeGroupScaledInto(gs2, got, group); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		for g := range gs.Scales {
			if gs2.Scales[g] != gs.Scales[g] {
				t.Fatalf("group %d scale changed on re-encode: %v -> %v", g, gs.Scales[g], gs2.Scales[g])
			}
		}
		for i := range gs.Vals {
			if gs2.Vals[i] != gs.Vals[i] {
				t.Fatalf("value %d changed on re-encode: %v -> %v", i, gs.Vals[i], gs2.Vals[i])
			}
		}
	})
}
