package precision

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTripAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 1000)
	for i := range x {
		// Wide dynamic range across groups, narrow within each group,
		// the regime group scaling is designed for.
		base := math.Pow(10, float64(i/64)-8)
		x[i] = base * (1 + rng.Float64())
	}
	gs, err := EncodeGroupScaled(x, 64)
	if err != nil {
		t.Fatal(err)
	}
	y := gs.Decode(nil)
	for i := range x {
		rel := math.Abs(y[i]-x[i]) / math.Abs(x[i])
		if rel > 1.2e-7 { // float32 epsilon ~1.19e-7
			t.Fatalf("x[%d]: rel err %g", i, rel)
		}
	}
}

func TestGroupScalingBeatsPlainFloat32OnWideRange(t *testing.T) {
	// A field mixing O(1e5) and O(1e-7) values: plain float32 keeps the
	// small values' relative error, but a *shared-exponent fixed-point*
	// would not. Group scaling must bound relative error per group.
	x := []float64{1e5, 1.00001e5, 1e-7, 1.23456789e-7}
	gs, _ := EncodeGroupScaled(x, 2)
	y := gs.Decode(nil)
	for i := range x {
		rel := math.Abs(y[i]-x[i]) / math.Abs(x[i])
		if rel > 1.2e-7 {
			t.Errorf("x[%d] rel err %g", i, rel)
		}
	}
}

func TestEncodeErrorBoundProperty(t *testing.T) {
	f := func(seed int64, rawGroup uint8) bool {
		group := 1 + int(rawGroup%100)
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		x := make([]float64, n)
		for i := range x {
			x[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(12)-6))
		}
		gs, err := EncodeGroupScaled(x, group)
		if err != nil {
			return false
		}
		y := gs.Decode(nil)
		for g := 0; (g * group) < n; g++ {
			lo := g * group
			hi := lo + group
			if hi > n {
				hi = n
			}
			maxAbs := 0.0
			for _, v := range x[lo:hi] {
				if a := math.Abs(v); a > maxAbs {
					maxAbs = a
				}
			}
			for i := lo; i < hi; i++ {
				// Absolute error bounded by group max × float32 eps.
				if math.Abs(y[i]-x[i]) > maxAbs*1.2e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEncodeHandlesZerosAndNegatives(t *testing.T) {
	x := []float64{0, 0, -3.5, 2.25, 0, -1e-300}
	gs, err := EncodeGroupScaled(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	y := gs.Decode(nil)
	if y[0] != 0 || y[1] != 0 {
		t.Error("zeros not preserved")
	}
	if y[2] != -3.5 || y[3] != 2.25 {
		t.Errorf("exact dyadics changed: %v", y)
	}
}

func TestEncodeRejectsBadGroup(t *testing.T) {
	if _, err := EncodeGroupScaled([]float64{1}, 0); err == nil {
		t.Error("group 0 accepted")
	}
	if err := QuantizeInPlace([]float64{1}, -1); err == nil {
		t.Error("negative group accepted")
	}
}

func TestQuantizeInPlaceIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64() * 1e3
	}
	if err := QuantizeInPlace(x, 32); err != nil {
		t.Fatal(err)
	}
	y := append([]float64(nil), x...)
	if err := QuantizeInPlace(y, 32); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("quantize not idempotent at %d: %v vs %v", i, x[i], y[i])
		}
	}
}

func TestBytesAccounting(t *testing.T) {
	gs, _ := EncodeGroupScaled(make([]float64, 128), 32)
	want := 4*128 + 8*4
	if gs.Bytes() != want {
		t.Errorf("bytes = %d, want %d", gs.Bytes(), want)
	}
	// Mixed storage must save vs FP64 (8 bytes/val).
	if gs.Bytes() >= 8*128 {
		t.Error("no memory saving")
	}
}

func TestRelL2(t *testing.T) {
	b := []float64{3, 4}
	a := []float64{3, 4.5}
	got, err := RelL2(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5/5) > 1e-15 {
		t.Errorf("relL2 = %v", got)
	}
	if _, err := RelL2([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	z, _ := RelL2([]float64{0, 0}, []float64{0, 0})
	if z != 0 {
		t.Errorf("zero/zero = %v", z)
	}
	inf, _ := RelL2([]float64{1}, []float64{0})
	if !math.IsInf(inf, 1) {
		t.Errorf("nonzero/zero = %v", inf)
	}
}

func TestAreaWeightedRMSD(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{1, 0}
	// Weight the deviating point by 3 of 4 total area.
	got, err := AreaWeightedRMSD(a, b, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(3 * 4 / 4.0)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("rmsd = %v, want %v", got, want)
	}
	if _, err := AreaWeightedRMSD(a, b, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := AreaWeightedRMSD(a, b, []float64{0, 0}); err == nil {
		t.Error("zero area accepted")
	}
}

func TestMaskedAreaRMSD(t *testing.T) {
	a := []float64{5, 2, 9}
	b := []float64{5, 0, 0}
	mask := []bool{true, true, false} // third point is land: excluded
	got, err := MaskedAreaRMSD(a, b, []float64{1, 1, 1}, mask)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(4.0 / 2)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("masked rmsd = %v, want %v", got, want)
	}
	if _, err := MaskedAreaRMSD(a, b, []float64{1, 1, 1}, []bool{false, false, false}); err == nil {
		t.Error("empty mask accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if FP64.String() != "FP64" {
		t.Error(FP64.String())
	}
	if Mixed.String() == "" || Policy(9).String() == "" {
		t.Error("empty string")
	}
}

func TestPaperThresholds(t *testing.T) {
	th := PaperThresholds()
	if th.AtmosRelL2 != 0.05 || th.OceanTempC != 0.018 ||
		th.OceanSaltPSU != 0.0098 || th.OceanSSHm != 0.0005 {
		t.Errorf("thresholds = %+v", th)
	}
}
