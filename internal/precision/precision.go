// Package precision implements the mixed-precision machinery of §5.2.3: a
// group-wise scaling FP64/FP32 scheme for model state, and the accuracy
// metrics the paper uses to accept a mixed-precision configuration — the
// relative L2 norm for the atmosphere (surface pressure and relative
// vorticity, 5 % threshold) and the grid-area-weighted root-mean-square
// deviation for the tripolar-grid ocean (temperature, salinity, sea surface
// height).
package precision

import (
	"fmt"
	"math"
)

// Policy selects the arithmetic mode of a model component.
type Policy int

const (
	// FP64 keeps all state and arithmetic in float64 (the baseline).
	FP64 Policy = iota
	// Mixed stores designated variable groups in group-wise scaled FP32
	// while accumulations remain FP64.
	Mixed
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FP64:
		return "FP64"
	case Mixed:
		return "FP64/FP32 group-wise scaled"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// GroupScaled is a float64 vector stored as scaled float32 groups: each
// group of Group consecutive values shares one power-of-two scale chosen so
// the group's maximum magnitude uses the full float32 mantissa. This is the
// "group-wise scaling mixed-precision method" of §5.2.3: scaling prevents
// the dynamic-range loss that plain float64→float32 truncation suffers for
// fields spanning many orders of magnitude (e.g. moisture, pressure).
type GroupScaled struct {
	Group  int
	Scales []float64 // one per group, power of two
	Vals   []float32
	N      int
}

// The scale exponent is clamped to [minScaleExp, maxScaleExp]: above the
// cap the scale itself overflows (Ldexp(1, 1024) = +Inf) and below the
// floor its *inverse* does (1/2⁻¹⁰²⁴ = +Inf), either way turning the whole
// group into NaN/Inf on decode. maxQuant is the largest float32 below 2,
// the clamp bound for scaled values at the exponent cap.
const (
	maxScaleExp = 1023
	minScaleExp = -1023
)

var maxQuant = math.Nextafter32(2, 0)

// EncodeGroupScaled packs x into a GroupScaled with the given group size.
func EncodeGroupScaled(x []float64, group int) (*GroupScaled, error) {
	gs := &GroupScaled{}
	if err := EncodeGroupScaledInto(gs, x, group); err != nil {
		return nil, err
	}
	return gs, nil
}

// EncodeGroupScaledInto re-encodes x into gs with the given group size,
// reusing gs's scale and value storage when its capacity suffices — the
// steady-state form the compressed wire paths use so that a persistent
// per-peer GroupScaled performs zero allocations per exchange.
func EncodeGroupScaledInto(gs *GroupScaled, x []float64, group int) error {
	if group <= 0 {
		return fmt.Errorf("precision: group size must be positive, got %d", group)
	}
	ng := (len(x) + group - 1) / group
	gs.Group = group
	gs.N = len(x)
	if cap(gs.Scales) < ng {
		gs.Scales = make([]float64, ng)
	}
	gs.Scales = gs.Scales[:ng]
	if cap(gs.Vals) < len(x) {
		gs.Vals = make([]float32, len(x))
	}
	gs.Vals = gs.Vals[:len(x)]
	for g := 0; g < ng; g++ {
		lo := g * group
		hi := lo + group
		if hi > len(x) {
			hi = len(x)
		}
		maxAbs := 0.0
		for _, v := range x[lo:hi] {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		scale := 1.0
		if maxAbs > 0 {
			// Power-of-two scale so the group max lands near 1: exact to
			// re-multiply, so scaling itself introduces no rounding error.
			_, exp := math.Frexp(maxAbs)
			// A scaled magnitude just below 1 can round UP to 1.0 in
			// float32; escalate the scale so stored values stay < 1 and a
			// re-encode of the decoded field reuses the same scale
			// (idempotence). Capped at the largest finite power of two —
			// beyond it Ldexp overflows to +Inf and the whole group would
			// decode as NaN.
			if exp < maxScaleExp && float32(math.Ldexp(maxAbs, -exp)) >= 1 {
				exp++
			}
			if exp > maxScaleExp {
				exp = maxScaleExp
			} else if exp < minScaleExp {
				// Subnormal group maxima: keep the inverse scale finite; the
				// scaled values land well below 1 and round-trip exactly on
				// the subnormal grid.
				exp = minScaleExp
			}
			scale = math.Ldexp(1, exp)
		}
		gs.Scales[g] = scale
		inv := 1 / scale
		for i := lo; i < hi; i++ {
			v := float32(x[i] * inv)
			// At the exponent cap the scaled max can still round to ≥ 1
			// (e.g. MaxFloat64·2⁻¹⁰²³ → 2.0f), and decoding 2.0·2¹⁰²³
			// overflows; clamp to the largest float32 below 2. The clamp
			// error is within the representation's own rounding bound.
			if v > maxQuant {
				v = maxQuant
			} else if v < -maxQuant {
				v = -maxQuant
			}
			gs.Vals[i] = v
		}
	}
	return nil
}

// ErrShape reports a structurally invalid GroupScaled payload: a destination
// length that does not match N, or an encoding whose own value/scale tables
// disagree with its declared shape (a truncated or corrupted wire payload).
// The wire-decode paths return it instead of panicking, so a faulty peer's
// message surfaces through the fault-tolerance layer rather than killing the
// receiving rank.
type ErrShape struct {
	Got, Want int
	What      string // which length disagreed: "dst", "vals", "scales", "group"
}

// Error implements error.
func (e *ErrShape) Error() string {
	return fmt.Sprintf("precision: group-scaled %s length %d, want %d", e.What, e.Got, e.Want)
}

// DecodeInto unpacks gs into dst, validating every length against the
// declared shape before touching dst. It is the error-returning form the
// compressed wire paths use; Decode keeps the historical panicking contract.
func (gs *GroupScaled) DecodeInto(dst []float64) error {
	if len(dst) != gs.N {
		return &ErrShape{Got: len(dst), Want: gs.N, What: "dst"}
	}
	if gs.Group <= 0 {
		return &ErrShape{Got: gs.Group, Want: 1, What: "group"}
	}
	if len(gs.Vals) != gs.N {
		return &ErrShape{Got: len(gs.Vals), Want: gs.N, What: "vals"}
	}
	if ng := (gs.N + gs.Group - 1) / gs.Group; len(gs.Scales) != ng {
		return &ErrShape{Got: len(gs.Scales), Want: ng, What: "scales"}
	}
	for i := 0; i < gs.N; i++ {
		dst[i] = float64(gs.Vals[i]) * gs.Scales[i/gs.Group]
	}
	return nil
}

// Decode unpacks into dst (allocated if nil) and returns it. It panics on a
// shape mismatch — the in-memory quantization contract, where the caller
// built the encoding itself; wire receivers use DecodeInto instead.
func (gs *GroupScaled) Decode(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, gs.N)
	}
	if err := gs.DecodeInto(dst); err != nil {
		panic(err.Error())
	}
	return dst
}

// Bytes returns the storage footprint in bytes (values + scales), for the
// memory-saving accounting.
func (gs *GroupScaled) Bytes() int {
	return 4*len(gs.Vals) + 8*len(gs.Scales)
}

// QuantizeInPlace rounds x through the group-scaled FP32 representation,
// simulating one FP32 compute-and-store cycle on the field. Model steps
// under the Mixed policy call this on their designated variable groups.
func QuantizeInPlace(x []float64, group int) error {
	gs, err := EncodeGroupScaled(x, group)
	if err != nil {
		return err
	}
	gs.Decode(x)
	return nil
}

// RelL2 returns the relative L2 norm of (a - b) against b:
// ‖a−b‖₂ / ‖b‖₂. This is the atmosphere acceptance metric (5 % threshold
// for surface pressure and relative vorticity deviations).
func RelL2(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("precision: RelL2 length mismatch %d vs %d", len(a), len(b))
	}
	var num, den float64
	for i := range a {
		d := a[i] - b[i]
		num += d * d
		den += b[i] * b[i]
	}
	if den == 0 {
		if num == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	return math.Sqrt(num / den), nil
}

// AreaWeightedRMSD returns sqrt(Σ w·(a−b)² / Σ w): the ocean acceptance
// metric, with w the tripolar-grid cell areas (§5.2.3 incorporates grid
// area because tripolar cells vary strongly in size).
func AreaWeightedRMSD(a, b, area []float64) (float64, error) {
	if len(a) != len(b) || len(a) != len(area) {
		return 0, fmt.Errorf("precision: RMSD length mismatch %d/%d/%d", len(a), len(b), len(area))
	}
	var num, den float64
	for i := range a {
		d := a[i] - b[i]
		num += area[i] * d * d
		den += area[i]
	}
	if den == 0 {
		return 0, fmt.Errorf("precision: zero total area")
	}
	return math.Sqrt(num / den), nil
}

// MaskedAreaRMSD is AreaWeightedRMSD restricted to points where mask is
// true (ocean-only comparison of T, S, SSH).
func MaskedAreaRMSD(a, b, area []float64, mask []bool) (float64, error) {
	if len(a) != len(b) || len(a) != len(area) || len(a) != len(mask) {
		return 0, fmt.Errorf("precision: masked RMSD length mismatch")
	}
	var num, den float64
	for i := range a {
		if !mask[i] {
			continue
		}
		d := a[i] - b[i]
		num += area[i] * d * d
		den += area[i]
	}
	if den == 0 {
		return 0, fmt.Errorf("precision: empty mask")
	}
	return math.Sqrt(num / den), nil
}

// Thresholds bundles the acceptance criteria of §5.2.3.
type Thresholds struct {
	AtmosRelL2   float64 // 0.05: surface pressure & vorticity
	OceanTempC   float64 // 0.018 °C reported RMSD scale
	OceanSaltPSU float64 // 0.0098 psu
	OceanSSHm    float64 // 0.0005 m
}

// PaperThresholds returns the paper's reported acceptance values.
func PaperThresholds() Thresholds {
	return Thresholds{
		AtmosRelL2:   0.05,
		OceanTempC:   0.018,
		OceanSaltPSU: 0.0098,
		OceanSSHm:    0.0005,
	}
}
