package coupler

import (
	"fmt"
	"time"
)

// Component is the CPL7 contract every model component implements (§5.1.1):
// MCT-style init/run/finalize plus import/export of boundary-condition
// attribute vectors. GRIST and LICOM implement exactly these five methods
// to join the coupled system.
type Component interface {
	// Name identifies the component ("atm", "ocn", "ice", "lnd").
	Name() string
	// Init prepares internal state and returns the export field names the
	// component provides and the import field names it expects.
	Init() (exports, imports []string, err error)
	// Run integrates the component forward by dt of simulated time.
	Run(dt time.Duration) error
	// Export fills an attribute vector with the component's current
	// boundary-condition outputs.
	Export() (*AttrVect, error)
	// Import delivers boundary-condition inputs from other components.
	Import(av *AttrVect) error
	// Finalize releases resources and reports diagnostics.
	Finalize() error
}

// Registration couples a component to the driver: its coupling period and
// the counterpart it exchanges fields with.
type Registration struct {
	Comp            Component
	CouplingsPerDay int
}

// ValidateExchange checks that everything one component imports is exported
// by some other registered component — the dimension-alignment and naming
// checks the engineering phase had to resolve (§5.1).
func ValidateExchange(regs []Registration) error {
	exported := map[string]string{}
	type compImports struct {
		name    string
		imports []string
	}
	var pending []compImports
	for _, r := range regs {
		exp, imp, err := r.Comp.Init()
		if err != nil {
			return fmt.Errorf("coupler: init %s: %w", r.Comp.Name(), err)
		}
		for _, f := range exp {
			if prev, dup := exported[f]; dup {
				return fmt.Errorf("coupler: field %q exported by both %s and %s (naming conflict)", f, prev, r.Comp.Name())
			}
			exported[f] = r.Comp.Name()
		}
		pending = append(pending, compImports{r.Comp.Name(), imp})
	}
	for _, p := range pending {
		for _, f := range p.imports {
			if _, ok := exported[f]; !ok {
				return fmt.Errorf("coupler: %s imports %q which no component exports", p.name, f)
			}
		}
	}
	return nil
}
