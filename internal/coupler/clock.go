package coupler

import (
	"fmt"
	"time"
)

// Clock is the coupler's main clock (§5.1.1): it owns the current simulated
// time, advances in coupling steps, and drives per-component alarms whose
// periods are the component coupling frequencies. Components keep their own
// clocks consistent with the coupling clock by construction — they only
// step when their alarm rings.
type Clock struct {
	Start   time.Time
	Current time.Time
	Stop    time.Time
	Step    time.Duration // base coupling step

	alarms map[string]*Alarm
}

// Alarm rings every Period of simulated time from the clock start.
type Alarm struct {
	Name   string
	Period time.Duration
	next   time.Time
}

// NewClock creates a clock over [start, stop) with the given base step.
// The per-day coupling frequencies of AP3ESM (180 atmosphere, 36 ocean,
// 180 sea ice couplings per day) translate to alarm periods of 8, 40, and
// 8 minutes; the base step must divide every alarm period.
func NewClock(start, stop time.Time, step time.Duration) (*Clock, error) {
	if !stop.After(start) {
		return nil, fmt.Errorf("coupler: stop %v not after start %v", stop, start)
	}
	if step <= 0 {
		return nil, fmt.Errorf("coupler: non-positive step %v", step)
	}
	return &Clock{
		Start: start, Current: start, Stop: stop, Step: step,
		alarms: make(map[string]*Alarm),
	}, nil
}

// PeriodForCouplingsPerDay converts a coupling frequency to an alarm period.
func PeriodForCouplingsPerDay(n int) (time.Duration, error) {
	if n <= 0 || (24*time.Hour)%time.Duration(n) != 0 {
		return 0, fmt.Errorf("coupler: %d couplings/day does not divide a day evenly", n)
	}
	return 24 * time.Hour / time.Duration(n), nil
}

// AddAlarm registers a component alarm. The period must be a positive
// multiple of the base step so that alarms always ring exactly on a step.
func (c *Clock) AddAlarm(name string, period time.Duration) error {
	if period <= 0 || period%c.Step != 0 {
		return fmt.Errorf("coupler: alarm %q period %v is not a multiple of step %v", name, period, c.Step)
	}
	if _, dup := c.alarms[name]; dup {
		return fmt.Errorf("coupler: duplicate alarm %q", name)
	}
	c.alarms[name] = &Alarm{Name: name, Period: period, next: c.Start}
	return nil
}

// Advance moves the clock one coupling step and returns the names of alarms
// ringing at the *beginning* of the new interval (a component whose alarm
// rings integrates forward over its period). Returns false when the clock
// has reached its stop time.
func (c *Clock) Advance() ([]string, bool) {
	if !c.Current.Before(c.Stop) {
		return nil, false
	}
	var ringing []string
	for _, a := range c.alarms {
		if !a.next.After(c.Current) {
			ringing = append(ringing, a.Name)
			a.next = a.next.Add(a.Period)
		}
	}
	c.Current = c.Current.Add(c.Step)
	sortStrings(ringing)
	return ringing, true
}

// Done reports whether the clock reached its stop time.
func (c *Clock) Done() bool { return !c.Current.Before(c.Stop) }

// StepsTotal returns the number of coupling steps in the run.
func (c *Clock) StepsTotal() int {
	return int(c.Stop.Sub(c.Start) / c.Step)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
