package coupler

import (
	"math"
	"testing"

	"repro/internal/par"
)

// TestRearrangeGS32WithinBudget rearranges the same source under both wire
// formats: f64 must deliver bit-exact values, gs32 must land within the
// group-scaled bit-error budget (2⁻²² of the group max) on every delivered
// element.
func TestRearrangeGS32WithinBudget(t *testing.T) {
	const n, p = 240, 4
	src, _ := OfflineGSMap(blockOwner(n, p), n, p)
	dst, _ := OfflineGSMap(cyclicOwner(p), n, p)
	par.Run(p, func(c *par.Comm) {
		r, err := BuildRouter(c, src, dst)
		if err != nil {
			t.Error(err)
			return
		}
		mysrc := src.LocalIndices(c.Rank())
		mydst := dst.LocalIndices(c.Rank())
		sv, _ := NewAttrVect([]string{"t", "s"}, len(mysrc))
		for i, gi := range mysrc {
			sv.MustField("t")[i] = 300 + float64(gi)*0.5
			sv.MustField("s")[i] = -35 - float64(gi)*0.01
		}
		run := func(w par.WireFormat) *AttrVect {
			r.SetWire(w)
			dv, _ := NewAttrVect([]string{"t", "s"}, len(mydst))
			if err := RearrangeInto(c, r, sv, dv, ModeP2P, nil); err != nil {
				t.Errorf("wire %v: %v", w, err)
			}
			return dv
		}
		exact := run(par.WireF64)
		quant := run(par.WireGS32)
		r.SetWire(par.WireF64)
		for i, gi := range mydst {
			if got, want := exact.MustField("t")[i], 300+float64(gi)*0.5; got != want {
				t.Errorf("f64 t[%d] = %v, want %v", i, got, want)
				return
			}
			for _, f := range []string{"t", "s"} {
				a, b := exact.MustField(f)[i], quant.MustField(f)[i]
				budget := (300 + float64(n)) * math.Pow(2, -22)
				if d := math.Abs(a - b); d > budget {
					t.Errorf("gs32 %s[%d] off by %v, budget %v", f, i, d, budget)
					return
				}
			}
		}
	})
}

// TestRearrangeGS32Counters checks the compressed-path accounting: the
// rearrange byte counter reports actual wire bytes (smaller under gs32 by at
// least the 1.6× bench gate), and the shared cpl.wire.{raw.,}bytes counters
// carry the raw-vs-wire split the ratio gauge is computed from.
func TestRearrangeGS32Counters(t *testing.T) {
	const n, p = 256, 4
	src, _ := OfflineGSMap(blockOwner(n, p), n, p)
	dst, _ := OfflineGSMap(cyclicOwner(p), n, p)
	par.Run(p, func(c *par.Comm) {
		r, err := BuildRouter(c, src, dst)
		if err != nil {
			t.Error(err)
			return
		}
		sv, _ := NewAttrVect([]string{"t", "s", "u"}, len(src.LocalIndices(c.Rank())))
		dv, _ := NewAttrVect([]string{"t", "s", "u"}, len(dst.LocalIndices(c.Rank())))
		bytesUnder := func(w par.WireFormat) (rearr, raw, wire int64) {
			r.SetWire(w)
			ob := newCountObserver()
			if err := RearrangeInto(c, r, sv, dv, ModeP2P, ob); err != nil {
				t.Errorf("wire %v: %v", w, err)
			}
			return ob.counts["coupler.rearrange.bytes"], ob.counts["cpl.wire.raw.bytes"], ob.counts["cpl.wire.bytes"]
		}
		f64Bytes, f64Raw, f64Wire := bytesUnder(par.WireF64)
		gsBytes, gsRaw, gsWire := bytesUnder(par.WireGS32)
		r.SetWire(par.WireF64)
		if f64Bytes == 0 {
			t.Error("no traffic recorded under f64")
			return
		}
		if f64Raw != f64Bytes || f64Wire != f64Bytes {
			t.Errorf("f64: raw/wire %d/%d != rearrange bytes %d", f64Raw, f64Wire, f64Bytes)
		}
		if gsWire != gsBytes || gsRaw != f64Bytes {
			t.Errorf("gs32: raw/wire %d/%d, rearrange bytes %d, f64 bytes %d",
				gsRaw, gsWire, gsBytes, f64Bytes)
		}
		if float64(f64Bytes) < 1.6*float64(gsBytes) {
			t.Errorf("gs32 rearrange bytes %d vs f64 %d = %.2fx, want ≥ 1.6x",
				gsBytes, f64Bytes, float64(f64Bytes)/float64(gsBytes))
		}
	})
}

// TestRearrangeGS32ZeroAllocs pins the compressed P2P path to zero
// steady-state allocations across a real 2-rank exchange: the persistent
// per-peer encodings and the decode scratch absorb every call after warm-up.
func TestRearrangeGS32ZeroAllocs(t *testing.T) {
	const n, runs = 128, 50
	src, _ := OfflineGSMap(blockOwner(n, 2), n, 2)
	dst, _ := OfflineGSMap(cyclicOwner(2), n, 2)
	par.Run(2, func(c *par.Comm) {
		r, err := BuildRouter(c, src, dst)
		if err != nil {
			t.Error(err)
			return
		}
		r.SetWire(par.WireGS32)
		sv, _ := NewAttrVect([]string{"t", "s"}, len(src.LocalIndices(c.Rank())))
		dv, _ := NewAttrVect([]string{"t", "s"}, len(dst.LocalIndices(c.Rank())))
		step := func() {
			if err := RearrangeInto(c, r, sv, dv, ModeP2P, nil); err != nil {
				t.Error(err)
			}
		}
		step() // warm the pack buffers and encodings
		if c.Rank() == 0 {
			allocs := testing.AllocsPerRun(runs, step)
			if allocs != 0 {
				t.Errorf("gs32 rearrange allocates %.1f per steady-state call, want 0", allocs)
			}
		} else {
			for i := 0; i < runs+1; i++ {
				step()
			}
		}
		c.Barrier()
	})
}
