package coupler

import (
	"testing"

	"repro/internal/par"
)

// countObserver is a per-rank Observer stub accumulating counters; each
// rank goroutine owns its own instance, so no locking is needed.
type countObserver struct {
	counts map[string]int64
}

func newCountObserver() *countObserver {
	return &countObserver{counts: make(map[string]int64)}
}

func (o *countObserver) AddCount(name string, delta int64) { o.counts[name] += delta }
func (o *countObserver) SetGauge(string, float64)          {}

// The messages RearrangeTo reports must match Router.MessageCount exactly
// in a multi-rank run, for both modes — the accounting the §5.2.4 traffic
// tables are built from.
func TestRearrangeTrafficMatchesMessageCount(t *testing.T) {
	const n, p = 120, 4
	src, _ := OfflineGSMap(blockOwner(n, p), n, p)
	dst, _ := OfflineGSMap(cyclicOwner(p), n, p)
	for _, mode := range []RearrangeMode{ModeAlltoall, ModeP2P} {
		par.Run(p, func(c *par.Comm) {
			r, err := BuildRouter(c, src, dst)
			if err != nil {
				t.Error(err)
				return
			}
			av, _ := NewAttrVect([]string{"t", "s", "u"}, len(src.LocalIndices(c.Rank())))
			ob := newCountObserver()
			if _, err := RearrangeTo(c, r, av, mode, ob); err != nil {
				t.Errorf("mode %v: %v", mode, err)
				return
			}
			a2a, p2p := r.MessageCount(c.Rank(), p)
			want := int64(a2a)
			if mode == ModeP2P {
				want = int64(p2p)
			}
			if got := ob.counts["coupler.rearrange.msgs"]; got != want {
				t.Errorf("mode %v rank %d: recorded %d msgs, MessageCount says %d",
					mode, c.Rank(), got, want)
			}
			// Bytes must cover exactly the packed payload the mode sends:
			// non-empty non-self blocks under P2P, every block (self
			// included) under the collective.
			var wantBytes int64
			for pe, offs := range r.SendTo {
				if len(offs) == 0 || (mode == ModeP2P && pe == c.Rank()) {
					continue
				}
				wantBytes += int64(8 * av.NFields() * len(offs))
			}
			if got := ob.counts["coupler.rearrange.bytes"]; got != wantBytes {
				t.Errorf("mode %v rank %d: recorded %d bytes, want %d",
					mode, c.Rank(), got, wantBytes)
			}
		})
	}
}

// On a single rank every block is the self block: the P2P path sends
// nothing at all, while the collective still runs its one slot.
func TestRearrangeSelfTrafficExcluded(t *testing.T) {
	const n = 64
	src, _ := OfflineGSMap(blockOwner(n, 1), n, 1)
	dst, _ := OfflineGSMap(cyclicOwner(1), n, 1)
	par.Run(1, func(c *par.Comm) {
		r, err := BuildRouter(c, src, dst)
		if err != nil {
			t.Error(err)
			return
		}
		av, _ := NewAttrVect([]string{"t", "s"}, n)
		for _, mode := range []RearrangeMode{ModeAlltoall, ModeP2P} {
			ob := newCountObserver()
			if _, err := RearrangeTo(c, r, av, mode, ob); err != nil {
				t.Errorf("mode %v: %v", mode, err)
				continue
			}
			msgs := ob.counts["coupler.rearrange.msgs"]
			bytes := ob.counts["coupler.rearrange.bytes"]
			switch mode {
			case ModeP2P:
				if msgs != 0 || bytes != 0 {
					t.Errorf("p2p self traffic counted: %d msgs, %d bytes", msgs, bytes)
				}
			case ModeAlltoall:
				if msgs != 1 {
					t.Errorf("alltoall msgs = %d, want 1", msgs)
				}
				if want := int64(8 * 2 * n); bytes != want {
					t.Errorf("alltoall bytes = %d, want %d", bytes, want)
				}
			}
		}
	})
}

// Steady-state RearrangeInto must not allocate: the persistent pack
// buffers absorb every call after the first.
func TestRearrangeIntoZeroAllocs(t *testing.T) {
	const n = 96
	src, _ := OfflineGSMap(blockOwner(n, 1), n, 1)
	dst, _ := OfflineGSMap(cyclicOwner(1), n, 1)
	par.Run(1, func(c *par.Comm) {
		r, err := BuildRouter(c, src, dst)
		if err != nil {
			t.Error(err)
			return
		}
		sv, _ := NewAttrVect([]string{"t", "s"}, n)
		dv, _ := NewAttrVect([]string{"t", "s"}, n)
		for i := 0; i < n; i++ {
			sv.MustField("t")[i] = float64(i)
			sv.MustField("s")[i] = float64(i) * 0.25
		}
		for _, mode := range []RearrangeMode{ModeAlltoall, ModeP2P} {
			// Warm call grows the router's buffers.
			if err := RearrangeInto(c, r, sv, dv, mode, nil); err != nil {
				t.Errorf("mode %v: %v", mode, err)
				continue
			}
			allocs := testing.AllocsPerRun(50, func() {
				if err := RearrangeInto(c, r, sv, dv, mode, nil); err != nil {
					t.Error(err)
				}
			})
			if allocs != 0 {
				t.Errorf("mode %v: %.1f allocs per steady-state rearrange, want 0", mode, allocs)
			}
		}
		// The zero-alloc path must still move the data correctly.
		mydst := dst.LocalIndices(0)
		for i, gi := range mydst {
			if dv.MustField("t")[i] != float64(gi) {
				t.Errorf("t[%d] = %v, want %d", i, dv.MustField("t")[i], gi)
				return
			}
		}
	})
}
