package coupler

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/par"
)

// Segment is one run of consecutive global indices owned by one process.
type Segment struct {
	Start  int // first global index of the run
	Length int
	PE     int // owning rank
}

// GSMap is MCT's global segment map: a globally-replicated, run-length
// compressed description of how a grid's global index space is distributed
// over processes. Building it online requires an allgather of every rank's
// index list — the memory- and time-consuming step that §5.2.4 moves
// offline on Sunway, where a core group cannot hold the full map during
// initialization.
type GSMap struct {
	GlobalSize int
	NProcs     int
	Segments   []Segment // sorted by Start; non-overlapping
}

// NewGSMap builds the map online: every rank contributes the sorted list of
// global indices it owns; the lists are allgathered and compressed. Every
// global index in [0, globalSize) must be owned by exactly one rank.
func NewGSMap(c *par.Comm, localIndices []int, globalSize int) (*GSMap, error) {
	mine := append([]int(nil), localIndices...)
	sort.Ints(mine)
	all := par.Allgather(c, mine)
	return buildGSMap(all, globalSize, false)
}

// OfflineGSMap builds the map without communication from a decomposition
// function (global index -> owning rank), the offline preprocessing path of
// §5.2.4. All ranks calling it with the same function get identical maps.
// An owner of -1 marks an index assigned to no rank (a land-eliminated
// block); such indices are simply absent from the map and are never routed.
func OfflineGSMap(owner func(gi int) int, globalSize, nprocs int) (*GSMap, error) {
	lists := make([][]int, nprocs)
	gaps := false
	for gi := 0; gi < globalSize; gi++ {
		pe := owner(gi)
		if pe == -1 {
			gaps = true
			continue
		}
		if pe < -1 || pe >= nprocs {
			return nil, fmt.Errorf("coupler: owner(%d) = %d out of range", gi, pe)
		}
		lists[pe] = append(lists[pe], gi)
	}
	return buildGSMap(lists, globalSize, gaps)
}

func buildGSMap(lists [][]int, globalSize int, allowGaps bool) (*GSMap, error) {
	m := &GSMap{GlobalSize: globalSize, NProcs: len(lists)}
	seen := make([]bool, globalSize)
	for pe, list := range lists {
		for i := 0; i < len(list); {
			start := list[i]
			if start < 0 || start >= globalSize {
				return nil, fmt.Errorf("coupler: global index %d out of range [0,%d)", start, globalSize)
			}
			j := i
			for j+1 < len(list) && list[j+1] == list[j]+1 {
				j++
			}
			length := j - i + 1
			for k := start; k < start+length; k++ {
				if seen[k] {
					return nil, fmt.Errorf("coupler: global index %d owned twice", k)
				}
				seen[k] = true
			}
			m.Segments = append(m.Segments, Segment{Start: start, Length: length, PE: pe})
			i = j + 1
		}
	}
	if !allowGaps {
		for gi, ok := range seen {
			if !ok {
				return nil, fmt.Errorf("coupler: global index %d unowned", gi)
			}
		}
	}
	sort.Slice(m.Segments, func(a, b int) bool { return m.Segments[a].Start < m.Segments[b].Start })
	return m, nil
}

// Owner returns the rank owning a global index.
func (m *GSMap) Owner(gi int) (int, error) {
	if gi < 0 || gi >= m.GlobalSize {
		return -1, fmt.Errorf("coupler: index %d out of range [0,%d)", gi, m.GlobalSize)
	}
	// Binary search for the segment containing gi.
	lo, hi := 0, len(m.Segments)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		s := m.Segments[mid]
		switch {
		case gi < s.Start:
			hi = mid - 1
		case gi >= s.Start+s.Length:
			lo = mid + 1
		default:
			return s.PE, nil
		}
	}
	return -1, fmt.Errorf("coupler: index %d not covered (corrupt GSMap)", gi)
}

// LocalIndices returns the sorted global indices owned by a rank.
func (m *GSMap) LocalIndices(pe int) []int {
	var out []int
	for _, s := range m.Segments {
		if s.PE != pe {
			continue
		}
		for k := 0; k < s.Length; k++ {
			out = append(out, s.Start+k)
		}
	}
	return out
}

// LocalSize returns the number of points owned by a rank.
func (m *GSMap) LocalSize(pe int) int {
	n := 0
	for _, s := range m.Segments {
		if s.PE == pe {
			n += s.Length
		}
	}
	return n
}

// Bytes returns the in-memory footprint of the segment table — the quantity
// that overflows a Sunway core group during online initialization at scale.
func (m *GSMap) Bytes() int { return 24 * len(m.Segments) }

// Encode serializes the map for offline preprocessing (written once by the
// preprocessing tool, read by every rank at startup).
func (m *GSMap) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("coupler: encoding GSMap: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeGSMap deserializes a map produced by Encode.
func DecodeGSMap(data []byte) (*GSMap, error) {
	var m GSMap
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return nil, fmt.Errorf("coupler: decoding GSMap: %w", err)
	}
	return &m, nil
}
