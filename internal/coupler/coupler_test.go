package coupler

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/par"
)

func TestAttrVectBasics(t *testing.T) {
	av, err := NewAttrVect([]string{"sst", "taux", "tauy"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if av.NFields() != 3 || av.LSize != 10 || len(av.Data) != 30 {
		t.Fatal("bad shape")
	}
	sst := av.MustField("sst")
	sst[3] = 7
	again, _ := av.Field("sst")
	if again[3] != 7 {
		t.Error("field slices must alias storage")
	}
	if _, err := av.Field("nope"); err == nil {
		t.Error("unknown field accepted")
	}
	if !av.HasField("taux") || av.HasField("zzz") {
		t.Error("HasField wrong")
	}
}

func TestAttrVectValidation(t *testing.T) {
	if _, err := NewAttrVect([]string{"a", "a"}, 4); err == nil {
		t.Error("duplicate field accepted")
	}
	if _, err := NewAttrVect([]string{"a"}, -1); err == nil {
		t.Error("negative size accepted")
	}
}

func TestAttrVectRestrict(t *testing.T) {
	av, _ := NewAttrVect([]string{"a", "b", "c"}, 4)
	av.MustField("b")[2] = 5
	r, err := av.Restrict([]string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if r.NFields() != 1 || r.MustField("b")[2] != 5 {
		t.Error("restrict lost data")
	}
	// Restricting shrinks the exchanged payload (§5.2.4).
	if len(r.Data) >= len(av.Data) {
		t.Error("no payload reduction")
	}
	if _, err := av.Restrict([]string{"zzz"}); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestSharedFields(t *testing.T) {
	a, _ := NewAttrVect([]string{"x", "y", "z"}, 1)
	b, _ := NewAttrVect([]string{"y", "w", "x"}, 1)
	got := SharedFields(a, b)
	if !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("shared = %v", got)
	}
}

// blockOwner distributes n global indices in contiguous blocks over p ranks.
func blockOwner(n, p int) func(int) int {
	return func(gi int) int {
		pe := gi * p / n
		if pe >= p {
			pe = p - 1
		}
		return pe
	}
}

// cyclicOwner distributes round-robin.
func cyclicOwner(p int) func(int) int {
	return func(gi int) int { return gi % p }
}

func TestGSMapOnlineOfflineAgree(t *testing.T) {
	const n, p = 97, 4
	off, err := OfflineGSMap(cyclicOwner(p), n, p)
	if err != nil {
		t.Fatal(err)
	}
	par.Run(p, func(c *par.Comm) {
		var mine []int
		for gi := c.Rank(); gi < n; gi += p {
			mine = append(mine, gi)
		}
		on, err := NewGSMap(c, mine, n)
		if err != nil {
			t.Error(err)
			return
		}
		if !reflect.DeepEqual(on.Segments, off.Segments) {
			t.Error("online and offline maps differ")
		}
	})
}

func TestGSMapOwnerAndLocalIndices(t *testing.T) {
	const n, p = 100, 3
	m, err := OfflineGSMap(blockOwner(n, p), n, p)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for pe := 0; pe < p; pe++ {
		idx := m.LocalIndices(pe)
		if len(idx) != m.LocalSize(pe) {
			t.Fatal("size mismatch")
		}
		total += len(idx)
		for _, gi := range idx {
			owner, err := m.Owner(gi)
			if err != nil || owner != pe {
				t.Fatalf("owner(%d) = %d, want %d (%v)", gi, owner, pe, err)
			}
		}
	}
	if total != n {
		t.Fatalf("total local = %d", total)
	}
	if _, err := m.Owner(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := m.Owner(n); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestGSMapRejectsBadCoverage(t *testing.T) {
	// An owner of -1 marks a land-eliminated gap: the map builds, and the
	// index simply resolves to no owner.
	m, err := OfflineGSMap(func(gi int) int {
		if gi == 5 {
			return -1
		}
		return 0
	}, 10, 1)
	if err != nil {
		t.Fatalf("gapped map rejected: %v", err)
	}
	if _, err := m.Owner(5); err == nil {
		t.Error("eliminated index resolved to an owner")
	}
	if pe, err := m.Owner(4); err != nil || pe != 0 {
		t.Errorf("Owner(4) = %d, %v", pe, err)
	}
	// Genuinely invalid owners still fail.
	if _, err := OfflineGSMap(func(gi int) int { return 7 }, 10, 1); err == nil {
		t.Error("out-of-range owner accepted")
	}
	if _, err := OfflineGSMap(func(gi int) int { return -2 }, 10, 1); err == nil {
		t.Error("negative owner accepted")
	}
	// Duplicate ownership via buildGSMap directly.
	if _, err := buildGSMap([][]int{{0, 1, 2}, {2, 3}}, 4, false); err == nil {
		t.Error("duplicate ownership accepted")
	}
	if _, err := buildGSMap([][]int{{0, 1}}, 4, false); err == nil {
		t.Error("unowned index accepted")
	}
}

func TestGSMapCompression(t *testing.T) {
	// Block layout compresses to one segment per rank.
	m, _ := OfflineGSMap(blockOwner(1000, 4), 1000, 4)
	if len(m.Segments) != 4 {
		t.Errorf("%d segments, want 4", len(m.Segments))
	}
	// Cyclic layout cannot compress: one segment per element.
	m2, _ := OfflineGSMap(cyclicOwner(4), 1000, 4)
	if len(m2.Segments) != 1000 {
		t.Errorf("%d segments, want 1000", len(m2.Segments))
	}
	if m.Bytes() >= m2.Bytes() {
		t.Error("block map should be smaller")
	}
}

func TestGSMapEncodeDecodeRoundTrip(t *testing.T) {
	m, _ := OfflineGSMap(blockOwner(64, 4), 64, 4)
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeGSMap(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Error("round trip changed map")
	}
	if _, err := DecodeGSMap([]byte("garbage")); err == nil {
		t.Error("garbage decoded")
	}
}

func TestGSMapPermutationRoundTripProperty(t *testing.T) {
	// Property: for a random permutation-based decomposition, every index
	// has exactly one owner and LocalIndices partitions [0, n).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(200)
		p := 1 + rng.Intn(8)
		owners := make([]int, n)
		for i := range owners {
			owners[i] = rng.Intn(p)
		}
		m, err := OfflineGSMap(func(gi int) int { return owners[gi] }, n, p)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for pe := 0; pe < p; pe++ {
			for _, gi := range m.LocalIndices(pe) {
				if seen[gi] || owners[gi] != pe {
					return false
				}
				seen[gi] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRouterOnlineMatchesOffline(t *testing.T) {
	const n, p = 120, 4
	src, _ := OfflineGSMap(blockOwner(n, p), n, p)
	dst, _ := OfflineGSMap(cyclicOwner(p), n, p)
	offline, err := BuildRouterOffline(src, dst, p)
	if err != nil {
		t.Fatal(err)
	}
	par.Run(p, func(c *par.Comm) {
		online, err := BuildRouter(c, src, dst)
		if err != nil {
			t.Error(err)
			return
		}
		if !reflect.DeepEqual(online, offline[c.Rank()]) {
			t.Errorf("rank %d: online router differs from offline", c.Rank())
		}
	})
}

func TestRouterEncodeDecode(t *testing.T) {
	src, _ := OfflineGSMap(blockOwner(30, 3), 30, 3)
	dst, _ := OfflineGSMap(cyclicOwner(3), 30, 3)
	rs, _ := BuildRouterOffline(src, dst, 3)
	data, err := rs[1].Encode()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := DecodeRouter(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs[1], r2) {
		t.Error("round trip changed router")
	}
}

func TestRouterMismatchedSizesRejected(t *testing.T) {
	a, _ := OfflineGSMap(blockOwner(10, 2), 10, 2)
	b, _ := OfflineGSMap(blockOwner(12, 2), 12, 2)
	if _, err := BuildRouterOffline(a, b, 2); err == nil {
		t.Error("mismatched sizes accepted")
	}
}

// rearrangeScenario runs a block->cyclic rearrangement and verifies every
// value lands at the right global position, in both modes.
func rearrangeScenario(t *testing.T, mode RearrangeMode) {
	t.Helper()
	const n, p = 200, 4
	src, _ := OfflineGSMap(blockOwner(n, p), n, p)
	dst, _ := OfflineGSMap(cyclicOwner(p), n, p)
	par.Run(p, func(c *par.Comm) {
		r, err := BuildRouter(c, src, dst)
		if err != nil {
			t.Error(err)
			return
		}
		mysrc := src.LocalIndices(c.Rank())
		av, _ := NewAttrVect([]string{"t", "s"}, len(mysrc))
		for i, gi := range mysrc {
			av.MustField("t")[i] = float64(gi)
			av.MustField("s")[i] = float64(gi) * 0.5
		}
		out, err := Rearrange(c, r, av, mode)
		if err != nil {
			t.Error(err)
			return
		}
		mydst := dst.LocalIndices(c.Rank())
		if out.LSize != len(mydst) {
			t.Errorf("out size %d, want %d", out.LSize, len(mydst))
			return
		}
		for i, gi := range mydst {
			if out.MustField("t")[i] != float64(gi) {
				t.Errorf("mode %v: t[%d] = %v, want %d", mode, i, out.MustField("t")[i], gi)
				return
			}
			if out.MustField("s")[i] != float64(gi)*0.5 {
				t.Errorf("mode %v: s mismatch at %d", mode, i)
				return
			}
		}
	})
}

func TestRearrangeAlltoall(t *testing.T) { rearrangeScenario(t, ModeAlltoall) }
func TestRearrangeP2P(t *testing.T)      { rearrangeScenario(t, ModeP2P) }

// Property: rearrangement is a permutation — rearranging src->dst and then
// dst->src recovers the original vector bit-for-bit, for random
// decompositions and both modes.
func TestRearrangeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		p := 2 + rng.Intn(4)
		ownersA := make([]int, n)
		ownersB := make([]int, n)
		// Every rank must own at least one point on each side for the maps
		// to be valid decompositions over p ranks.
		for i := range ownersA {
			ownersA[i] = rng.Intn(p)
			ownersB[i] = rng.Intn(p)
		}
		for pe := 0; pe < p; pe++ {
			ownersA[pe] = pe
			ownersB[n-1-pe] = pe
		}
		a, err := OfflineGSMap(func(gi int) int { return ownersA[gi] }, n, p)
		if err != nil {
			return false
		}
		b, err := OfflineGSMap(func(gi int) int { return ownersB[gi] }, n, p)
		if err != nil {
			return false
		}
		ok := true
		mode := RearrangeMode(((seed % 2) + 2) % 2)
		par.Run(p, func(c *par.Comm) {
			fwd, err := BuildRouter(c, a, b)
			if err != nil {
				ok = false
				return
			}
			bwd, err := BuildRouter(c, b, a)
			if err != nil {
				ok = false
				return
			}
			mine := a.LocalIndices(c.Rank())
			av, _ := NewAttrVect([]string{"q"}, len(mine))
			for i, gi := range mine {
				av.MustField("q")[i] = float64(gi*7 + 1)
			}
			mid, err := Rearrange(c, fwd, av, mode)
			if err != nil {
				ok = false
				return
			}
			back, err := Rearrange(c, bwd, mid, mode)
			if err != nil {
				ok = false
				return
			}
			if !reflect.DeepEqual(back.Data, av.Data) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMessageCountP2PBelowAlltoall(t *testing.T) {
	const n, p = 64, 8
	src, _ := OfflineGSMap(blockOwner(n, p), n, p)
	// A destination map that only reshuffles within pairs of ranks: few
	// communication partners per rank.
	dst, _ := OfflineGSMap(func(gi int) int {
		pe := blockOwner(n, p)(gi)
		return pe ^ 1
	}, n, p)
	rs, _ := BuildRouterOffline(src, dst, p)
	for pe, r := range rs {
		a2a, p2p := r.MessageCount(pe, p)
		if a2a != p {
			t.Errorf("alltoall count %d", a2a)
		}
		if p2p > 1 {
			t.Errorf("rank %d: p2p count %d, want <= 1", pe, p2p)
		}
	}
}

func TestRearrangeSizeValidation(t *testing.T) {
	src, _ := OfflineGSMap(blockOwner(8, 2), 8, 2)
	dst := src
	par.Run(2, func(c *par.Comm) {
		r, _ := BuildRouter(c, src, dst)
		av, _ := NewAttrVect([]string{"x"}, 1) // wrong local size
		if _, err := Rearrange(c, r, av, ModeP2P); err == nil {
			t.Error("wrong size accepted")
		}
	})
}

func TestClockAlarmsAndAdvance(t *testing.T) {
	start := time.Date(2023, 7, 23, 0, 0, 0, 0, time.UTC)
	stop := start.Add(24 * time.Hour)
	step, err := PeriodForCouplingsPerDay(180) // 8 minutes
	if err != nil {
		t.Fatal(err)
	}
	clk, err := NewClock(start, stop, step)
	if err != nil {
		t.Fatal(err)
	}
	for name, perDay := range map[string]int{"atm": 180, "ice": 180, "ocn": 36} {
		p, err := PeriodForCouplingsPerDay(perDay)
		if err != nil {
			t.Fatal(err)
		}
		if err := clk.AddAlarm(name, p); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[string]int{}
	steps := 0
	for {
		ringing, ok := clk.Advance()
		if !ok {
			break
		}
		steps++
		for _, name := range ringing {
			counts[name]++
		}
	}
	if steps != 180 || clk.StepsTotal() != 180 {
		t.Errorf("steps = %d", steps)
	}
	if counts["atm"] != 180 || counts["ice"] != 180 || counts["ocn"] != 36 {
		t.Errorf("alarm counts = %v (want atm/ice 180, ocn 36)", counts)
	}
	if !clk.Done() {
		t.Error("clock not done")
	}
}

func TestClockValidation(t *testing.T) {
	now := time.Now()
	if _, err := NewClock(now, now, time.Minute); err == nil {
		t.Error("empty interval accepted")
	}
	if _, err := NewClock(now, now.Add(time.Hour), 0); err == nil {
		t.Error("zero step accepted")
	}
	clk, _ := NewClock(now, now.Add(time.Hour), 8*time.Minute)
	if err := clk.AddAlarm("x", 9*time.Minute); err == nil {
		t.Error("non-multiple period accepted")
	}
	if err := clk.AddAlarm("y", 16*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := clk.AddAlarm("y", 16*time.Minute); err == nil {
		t.Error("duplicate alarm accepted")
	}
	if _, err := PeriodForCouplingsPerDay(7); err == nil {
		t.Error("non-divisor frequency accepted")
	}
}

// fakeComp is a minimal Component for contract tests.
type fakeComp struct {
	name     string
	exports  []string
	imports  []string
	ran      time.Duration
	finalize bool
}

func (f *fakeComp) Name() string { return f.name }
func (f *fakeComp) Init() (exp, imp []string, err error) {
	return f.exports, f.imports, nil
}
func (f *fakeComp) Run(dt time.Duration) error { f.ran += dt; return nil }
func (f *fakeComp) Export() (*AttrVect, error) { return NewAttrVect(f.exports, 1) }
func (f *fakeComp) Import(av *AttrVect) error  { return nil }
func (f *fakeComp) Finalize() error            { f.finalize = true; return nil }

func TestValidateExchange(t *testing.T) {
	atm := &fakeComp{name: "atm", exports: []string{"taux", "precip"}, imports: []string{"sst"}}
	ocn := &fakeComp{name: "ocn", exports: []string{"sst"}, imports: []string{"taux"}}
	if err := ValidateExchange([]Registration{{atm, 180}, {ocn, 36}}); err != nil {
		t.Error(err)
	}
	// Missing export.
	bad := &fakeComp{name: "ice", imports: []string{"nothing-exports-this"}}
	if err := ValidateExchange([]Registration{{atm, 180}, {ocn, 36}, {bad, 180}}); err == nil {
		t.Error("missing export accepted")
	}
	// Naming conflict: two exporters of the same field.
	dup := &fakeComp{name: "lnd", exports: []string{"sst"}}
	if err := ValidateExchange([]Registration{{ocn, 36}, {dup, 180}}); err == nil {
		t.Error("naming conflict accepted")
	}
}
