package coupler

import (
	"fmt"

	"repro/internal/par"
)

// RearrangeMode selects the communication pattern of the rearranger.
type RearrangeMode int

const (
	// ModeAlltoall is the original CPL7 implementation: one collective
	// all-to-all carrying every pair's block, including the many empty ones.
	ModeAlltoall RearrangeMode = iota
	// ModeP2P is the §5.2.4 optimization: non-blocking point-to-point
	// messages only between ranks that actually exchange data, overlapping
	// communication with the local pack/unpack work.
	ModeP2P
)

// String implements fmt.Stringer.
func (m RearrangeMode) String() string {
	switch m {
	case ModeAlltoall:
		return "alltoall"
	case ModeP2P:
		return "nonblocking-p2p"
	default:
		return fmt.Sprintf("RearrangeMode(%d)", int(m))
	}
}

const rearrangeTag = 7100

// Observer is the instrumentation hook consumed by the coupler — the
// structural subset of obs.Observer it needs, declared locally to keep the
// dependency order (obs sits above par, beside coupler).
type Observer interface {
	AddCount(name string, delta int64)
	SetGauge(name string, v float64)
}

// Rearrange moves an attribute vector from the source decomposition to the
// destination decomposition according to the router, using the selected
// communication mode. src must have LSize == router.NSrc; the result has
// LSize == router.NDst with the same fields. Both modes produce identical
// results; the P2P mode is the optimized production path.
func Rearrange(c *par.Comm, r *Router, src *AttrVect, mode RearrangeMode) (*AttrVect, error) {
	return RearrangeTo(c, r, src, mode, nil)
}

// RearrangeTo is Rearrange reporting its exchange volume to an observer:
// the number of non-empty pairwise messages this rank produced under the
// selected mode and the payload bytes it packed — the §5.2.4
// traffic-reduction accounting, recorded per call.
func RearrangeTo(c *par.Comm, r *Router, src *AttrVect, mode RearrangeMode, o Observer) (*AttrVect, error) {
	if o != nil {
		var sentBytes, msgs int64
		for _, offs := range r.SendTo {
			if len(offs) == 0 {
				continue
			}
			sentBytes += int64(8 * src.NFields() * len(offs))
			msgs++
		}
		if mode == ModeAlltoall {
			msgs = int64(c.Size()) // the collective touches every pair slot
		}
		o.AddCount("coupler.rearrange.calls", 1)
		o.AddCount("coupler.rearrange.bytes", sentBytes)
		o.AddCount("coupler.rearrange.msgs", msgs)
	}
	return rearrange(c, r, src, mode)
}

// rearrange is the communication body shared by both entry points.
func rearrange(c *par.Comm, r *Router, src *AttrVect, mode RearrangeMode) (*AttrVect, error) {
	if src.LSize != r.NSrc {
		return nil, fmt.Errorf("coupler: rearrange source size %d, router expects %d", src.LSize, r.NSrc)
	}
	dst, err := NewAttrVect(src.Fields, r.NDst)
	if err != nil {
		return nil, err
	}
	nf := src.NFields()
	n := c.Size()

	pack := func(offs []int) []float64 {
		buf := make([]float64, nf*len(offs))
		for f := 0; f < nf; f++ {
			base := f * len(offs)
			fieldBase := f * src.LSize
			for i, off := range offs {
				buf[base+i] = src.Data[fieldBase+off]
			}
		}
		return buf
	}
	unpack := func(offs []int, buf []float64) error {
		if len(buf) != nf*len(offs) {
			return fmt.Errorf("coupler: rearrange received %d values, want %d", len(buf), nf*len(offs))
		}
		for f := 0; f < nf; f++ {
			base := f * len(offs)
			fieldBase := f * dst.LSize
			for i, off := range offs {
				dst.Data[fieldBase+off] = buf[base+i]
			}
		}
		return nil
	}

	switch mode {
	case ModeAlltoall:
		send := make([][]float64, n)
		for pe := 0; pe < n; pe++ {
			send[pe] = pack(r.SendTo[pe]) // empty blocks still participate
		}
		recv := c.AlltoallvF64(send)
		for pe := 0; pe < n; pe++ {
			if err := unpack(r.RecvFrom[pe], recv[pe]); err != nil {
				return nil, err
			}
		}
	case ModeP2P:
		// Post sends only to ranks with data; local copy short-circuits.
		for pe := 0; pe < n; pe++ {
			if len(r.SendTo[pe]) == 0 || pe == c.Rank() {
				continue
			}
			par.Isend(c, pe, rearrangeTag, pack(r.SendTo[pe]))
		}
		if len(r.SendTo[c.Rank()]) > 0 {
			if err := unpack(r.RecvFrom[c.Rank()], pack(r.SendTo[c.Rank()])); err != nil {
				return nil, err
			}
		}
		reqs := make(map[int]*par.Request)
		for pe := 0; pe < n; pe++ {
			if len(r.RecvFrom[pe]) == 0 || pe == c.Rank() {
				continue
			}
			reqs[pe] = par.Irecv[[]float64](c, pe, rearrangeTag)
		}
		for pe, req := range reqs {
			req.Wait()
			if err := unpack(r.RecvFrom[pe], req.Data().([]float64)); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("coupler: unknown rearrange mode %v", mode)
	}
	return dst, nil
}

// MessageCount returns how many non-empty messages this rank's plan
// produces under each mode — the traffic-reduction accounting of §5.2.4.
func (r *Router) MessageCount(commSize int) (alltoall, p2p int) {
	alltoall = commSize // collective touches every rank pair slot
	for _, s := range r.SendTo {
		if len(s) > 0 {
			p2p++
		}
	}
	return
}
