package coupler

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/precision"
)

// RearrangeMode selects the communication pattern of the rearranger.
type RearrangeMode int

const (
	// ModeAlltoall is the original CPL7 implementation: one collective
	// all-to-all carrying every pair's block, including the many empty ones.
	ModeAlltoall RearrangeMode = iota
	// ModeP2P is the §5.2.4 optimization: non-blocking point-to-point
	// messages only between ranks that actually exchange data, overlapping
	// communication with the local pack/unpack work.
	ModeP2P
)

// String implements fmt.Stringer.
func (m RearrangeMode) String() string {
	switch m {
	case ModeAlltoall:
		return "alltoall"
	case ModeP2P:
		return "nonblocking-p2p"
	default:
		return fmt.Sprintf("RearrangeMode(%d)", int(m))
	}
}

const rearrangeTag = 7100

// Observer is the instrumentation hook consumed by the coupler — the
// structural subset of obs.Observer it needs, declared locally to keep the
// dependency order (obs sits above par, beside coupler).
type Observer interface {
	AddCount(name string, delta int64)
	SetGauge(name string, v float64)
}

// Rearrange moves an attribute vector from the source decomposition to the
// destination decomposition according to the router, using the selected
// communication mode. src must have LSize == router.NSrc; the result has
// LSize == router.NDst with the same fields. Both modes produce identical
// results; the P2P mode is the optimized production path.
func Rearrange(c *par.Comm, r *Router, src *AttrVect, mode RearrangeMode) (*AttrVect, error) {
	return RearrangeTo(c, r, src, mode, nil)
}

// RearrangeTo is Rearrange reporting its exchange volume to an observer:
// the number of messages this rank produced under the selected mode and the
// payload bytes it packed — the §5.2.4 traffic-reduction accounting,
// recorded per call. Under ModeP2P the self-rank block is short-circuited
// locally and never sent, so it counts toward neither messages nor bytes;
// under ModeAlltoall the collective touches every pair slot (msgs =
// commSize) and the bytes cover every packed block, the self slot included.
func RearrangeTo(c *par.Comm, r *Router, src *AttrVect, mode RearrangeMode, o Observer) (*AttrVect, error) {
	if src.LSize != r.NSrc {
		return nil, fmt.Errorf("coupler: rearrange source size %d, router expects %d", src.LSize, r.NSrc)
	}
	dst, err := NewAttrVect(src.Fields, r.NDst)
	if err != nil {
		return nil, err
	}
	if err := RearrangeInto(c, r, src, dst, mode, o); err != nil {
		return nil, err
	}
	return dst, nil
}

// RearrangeInto is the allocation-free form of Rearrange: it fills a
// caller-owned destination vector (LSize == router.NDst, same field list as
// src) through the router's persistent per-peer pack buffers. In steady
// state — after the first call has grown the buffers — a single-rank
// rearrange performs zero heap allocations in either mode, and multi-rank
// calls reuse every pack buffer. par.Send shares payloads by reference, so
// a closing barrier orders buffer reuse after every peer has unpacked.
func RearrangeInto(c *par.Comm, r *Router, src, dst *AttrVect, mode RearrangeMode, o Observer) error {
	if src.LSize != r.NSrc {
		return fmt.Errorf("coupler: rearrange source size %d, router expects %d", src.LSize, r.NSrc)
	}
	if dst.LSize != r.NDst {
		return fmt.Errorf("coupler: rearrange destination size %d, router expects %d", dst.LSize, r.NDst)
	}
	if !sameFields(src, dst) {
		return fmt.Errorf("coupler: rearrange source/destination field lists differ")
	}
	nf := src.NFields()
	n := c.Size()
	me := c.Rank()
	compressed := mode == ModeP2P && r.wire == par.WireGS32
	if o != nil {
		var rawBytes, sentBytes, msgs int64
		for pe, offs := range r.SendTo {
			if len(offs) == 0 || (mode == ModeP2P && pe == me) {
				continue
			}
			nvals := nf * len(offs)
			rawBytes += int64(8 * nvals)
			if compressed {
				sentBytes += gsWireBytes(nvals)
			} else {
				sentBytes += int64(8 * nvals)
			}
			msgs++
		}
		if mode == ModeAlltoall {
			msgs = int64(n) // the collective touches every pair slot
		}
		o.AddCount("coupler.rearrange.calls", 1)
		o.AddCount("coupler.rearrange.bytes", sentBytes)
		o.AddCount("coupler.rearrange.msgs", msgs)
		// Wire-compression accounting, shared with the halo exchanges: raw
		// vs actual payload bytes, from which core publishes cpl.wire.ratio.
		o.AddCount("cpl.wire.raw.bytes", rawBytes)
		o.AddCount("cpl.wire.bytes", sentBytes)
	}
	r.ensurePeers(n)

	if n == 1 {
		// Pure-local fast path: no communication, so no barrier either.
		offs := r.SendTo[0]
		if len(offs) == 0 {
			return nil
		}
		buf := r.pbuf(0, nf*len(offs))
		packInto(buf, src, offs)
		return unpackFrom(dst, r.RecvFrom[0], buf)
	}

	var firstErr error
	switch mode {
	case ModeAlltoall:
		for pe := 0; pe < n; pe++ {
			buf := r.pbuf(pe, nf*len(r.SendTo[pe]))
			packInto(buf, src, r.SendTo[pe]) // empty blocks still participate
			r.sendTable[pe] = buf
		}
		recv := c.AlltoallvF64(r.sendTable)
		for pe := 0; pe < n; pe++ {
			if err := unpackFrom(dst, r.RecvFrom[pe], recv[pe]); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	case ModeP2P:
		// Post sends only to ranks with data; local copy short-circuits.
		// Under the compressed wire format each pack buffer is re-encoded
		// into the peer's persistent group-scaled payload; the closing
		// barrier (not parity double-buffering) orders its reuse.
		for pe := 0; pe < n; pe++ {
			if pe == me || len(r.SendTo[pe]) == 0 {
				continue
			}
			buf := r.pbuf(pe, nf*len(r.SendTo[pe]))
			packInto(buf, src, r.SendTo[pe])
			if compressed {
				gs := r.gsbuf(pe)
				if err := precision.EncodeGroupScaledInto(gs, buf, par.WireGroup); err != nil {
					return err // group size is a package constant; unreachable
				}
				par.SendGS(c, pe, rearrangeTag, gs)
			} else {
				par.SendF64(c, pe, rearrangeTag, buf)
			}
		}
		if offs := r.SendTo[me]; len(offs) > 0 {
			// The self block never touches the wire and stays bit-exact in
			// both formats.
			buf := r.pbuf(me, nf*len(offs))
			packInto(buf, src, offs)
			firstErr = unpackFrom(dst, r.RecvFrom[me], buf)
		}
		// Blocking receives in ascending peer order; the sends above are
		// buffered (par.Send never blocks), so there is no cycle. Drain
		// every expected message even after an unpack or decode error, so
		// the closing barrier is reached on all ranks; decode faults come
		// back as returned errors (typed *par.PayloadTypeError or
		// *precision.ErrShape), never panics.
		for pe := 0; pe < n; pe++ {
			if pe == me || len(r.RecvFrom[pe]) == 0 {
				continue
			}
			var data []float64
			if compressed {
				gs, _, err := par.RecvGS(c, pe, rearrangeTag)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
				if cap(r.rbuf) < gs.N {
					r.rbuf = make([]float64, gs.N)
				}
				data = r.rbuf[:gs.N]
				if err := gs.DecodeInto(data); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
			} else {
				var err error
				data, _, err = par.RecvF64E(c, pe, rearrangeTag)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
			}
			if err := unpackFrom(dst, r.RecvFrom[pe], data); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	default:
		return fmt.Errorf("coupler: unknown rearrange mode %v", mode)
	}
	// Publish "done reading every peer's buffer": after this barrier the
	// peers may repack their persistent buffers for the next call.
	c.Barrier()
	return firstErr
}

// ensurePeers sizes the router's persistent buffer tables for n peers.
func (r *Router) ensurePeers(n int) {
	if len(r.pbufs) < n {
		r.pbufs = make([][]float64, n)
	}
	if len(r.sendTable) < n {
		r.sendTable = make([][]float64, n)
	}
	if len(r.gsbufs) < n {
		r.gsbufs = make([]*precision.GroupScaled, n)
	}
}

// gsbuf returns the persistent group-scaled send payload for peer pe,
// allocated on first use.
func (r *Router) gsbuf(pe int) *precision.GroupScaled {
	if r.gsbufs[pe] == nil {
		r.gsbufs[pe] = &precision.GroupScaled{}
	}
	return r.gsbufs[pe]
}

// gsWireBytes returns the wire size of a group-scaled encoding of n values
// under the par.WireGroup group size: 4 bytes per value plus one 8-byte
// scale per group.
func gsWireBytes(n int) int64 {
	return int64(4*n + 8*((n+par.WireGroup-1)/par.WireGroup))
}

// pbuf returns the persistent pack buffer for peer pe with exactly n
// elements, growing it on first use.
func (r *Router) pbuf(pe, n int) []float64 {
	b := r.pbufs[pe]
	if cap(b) < n {
		b = make([]float64, n)
		r.pbufs[pe] = b
	}
	return b[:n]
}

// packInto gathers the listed source offsets field-by-field into buf
// (len(buf) == NFields·len(offs)).
func packInto(buf []float64, src *AttrVect, offs []int) {
	nf := src.NFields()
	for f := 0; f < nf; f++ {
		base := f * len(offs)
		fieldBase := f * src.LSize
		for i, off := range offs {
			buf[base+i] = src.Data[fieldBase+off]
		}
	}
}

// unpackFrom scatters buf into the listed destination offsets.
func unpackFrom(dst *AttrVect, offs []int, buf []float64) error {
	nf := dst.NFields()
	if len(buf) != nf*len(offs) {
		return fmt.Errorf("coupler: rearrange received %d values, want %d", len(buf), nf*len(offs))
	}
	for f := 0; f < nf; f++ {
		base := f * len(offs)
		fieldBase := f * dst.LSize
		for i, off := range offs {
			dst.Data[fieldBase+off] = buf[base+i]
		}
	}
	return nil
}

// sameFields reports whether two attribute vectors carry the same field
// list in the same order.
func sameFields(a, b *AttrVect) bool {
	if len(a.Fields) != len(b.Fields) {
		return false
	}
	for i := range a.Fields {
		if a.Fields[i] != b.Fields[i] {
			return false
		}
	}
	return true
}

// MessageCount returns how many messages rank's plan produces under each
// mode — the traffic-reduction accounting of §5.2.4, consistent with what
// RearrangeTo records: the collective touches every rank pair slot, while
// the point-to-point path sends only non-empty blocks and short-circuits
// the self block locally, so the self pair is excluded from p2p.
func (r *Router) MessageCount(rank, commSize int) (alltoall, p2p int) {
	alltoall = commSize
	for pe, s := range r.SendTo {
		if pe != rank && len(s) > 0 {
			p2p++
		}
	}
	return
}
