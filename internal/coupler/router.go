package coupler

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/par"
	"repro/internal/precision"
)

// Router is MCT's M×N transfer table: given a source decomposition (GSMap)
// over M processes and a destination decomposition over N processes, it
// records, for the calling rank, which local elements go to which
// destination rank and where arriving elements land locally.
//
// Because both GSMaps are globally replicated, the plan is computed without
// communication; what is expensive is holding and scanning both segment
// tables — the §5.2.4 motivation for building Routers offline as a
// preprocessing step on Sunway.
type Router struct {
	// SendTo[r] lists local source offsets (positions within this rank's
	// local vector, ordered by global index) destined for rank r.
	SendTo [][]int
	// RecvFrom[r] lists local destination offsets filled by values arriving
	// from rank r, in the order that rank sends them.
	RecvFrom [][]int
	// NSrc and NDst are the local vector lengths on each side.
	NSrc, NDst int

	// Persistent per-peer pack buffers and the alltoall send table of the
	// allocation-free rearrange path (RearrangeInto). Lazily grown and
	// unexported, so gob snapshots and plan comparisons see only the plan.
	pbufs     [][]float64
	sendTable [][]float64

	// Compressed wire format state of the P2P rearrange path: per-peer
	// persistent group-scaled encodings of the pack buffers and one decode
	// scratch. Unexported for the same reason — the wire format is runtime
	// configuration, not part of the plan.
	wire   par.WireFormat
	gsbufs []*precision.GroupScaled
	rbuf   []float64
}

// SetWire selects the rearranger's wire format for this router. Under
// par.WireGS32 the ModeP2P path ships group-scaled FP32 encodings of the
// pack buffers; the self-rank block (never on the wire) and the alltoall
// collective stay exact. Every rank must set the same format on the routers
// of one transfer — the sender's encoding must match the receiver's decode.
func (r *Router) SetWire(w par.WireFormat) { r.wire = w }

// Wire returns the router's active wire format.
func (r *Router) Wire() par.WireFormat { return r.wire }

// BuildRouter constructs the plan for the calling rank, which participates
// on both sides of the transfer (the usual CPL7 arrangement where the
// coupler runs on the union of processes). The local element order on each
// side is ascending global index, matching GSMap.LocalIndices.
//
// The per-destination index lists are sorted with the standard library's
// introsort — the "quick sort algorithm for rearranging communication" that
// the CPL7 optimization adopts (§5.1.1) to replace MCT's original
// insertion-style ordering.
func BuildRouter(c *par.Comm, src, dst *GSMap) (*Router, error) {
	if src.GlobalSize != dst.GlobalSize {
		return nil, fmt.Errorf("coupler: router over mismatched global sizes %d vs %d", src.GlobalSize, dst.GlobalSize)
	}
	me := c.Rank()
	n := c.Size()
	r := &Router{
		SendTo:   make([][]int, n),
		RecvFrom: make([][]int, n),
	}

	// Send side: walk my source indices, route each to its destination owner.
	mysrc := src.LocalIndices(me)
	r.NSrc = len(mysrc)
	type pair struct{ gi, off int }
	byDst := make(map[int][]pair)
	for off, gi := range mysrc {
		pe, err := dst.Owner(gi)
		if err != nil {
			return nil, err
		}
		byDst[pe] = append(byDst[pe], pair{gi, off})
	}
	for pe, ps := range byDst {
		sort.Slice(ps, func(i, j int) bool { return ps[i].gi < ps[j].gi })
		offs := make([]int, len(ps))
		for i, p := range ps {
			offs[i] = p.off
		}
		r.SendTo[pe] = offs
	}

	// Receive side: walk my destination indices, find each one's source owner.
	mydst := dst.LocalIndices(me)
	r.NDst = len(mydst)
	bySrc := make(map[int][]pair)
	for off, gi := range mydst {
		pe, err := src.Owner(gi)
		if err != nil {
			return nil, err
		}
		bySrc[pe] = append(bySrc[pe], pair{gi, off})
	}
	for pe, ps := range bySrc {
		// The sender transmits in ascending global order, so receiving
		// offsets must be ordered the same way.
		sort.Slice(ps, func(i, j int) bool { return ps[i].gi < ps[j].gi })
		offs := make([]int, len(ps))
		for i, p := range ps {
			offs[i] = p.off
		}
		r.RecvFrom[pe] = offs
	}
	return r, nil
}

// BuildRouterOffline computes the Router plans of every rank serially (the
// preprocessing tool's code path) and returns them indexed by rank.
func BuildRouterOffline(src, dst *GSMap, nprocs int) ([]*Router, error) {
	if src.GlobalSize != dst.GlobalSize {
		return nil, fmt.Errorf("coupler: router over mismatched global sizes %d vs %d", src.GlobalSize, dst.GlobalSize)
	}
	routers := make([]*Router, nprocs)
	for pe := range routers {
		routers[pe] = &Router{
			SendTo:   make([][]int, nprocs),
			RecvFrom: make([][]int, nprocs),
		}
	}
	// One pass over the global index space builds every rank's plan.
	srcOff := make([]int, nprocs)
	dstOff := make([]int, nprocs)
	for gi := 0; gi < src.GlobalSize; gi++ {
		sp, err := src.Owner(gi)
		if err != nil {
			return nil, err
		}
		dp, err := dst.Owner(gi)
		if err != nil {
			return nil, err
		}
		routers[sp].SendTo[dp] = append(routers[sp].SendTo[dp], srcOff[sp])
		routers[dp].RecvFrom[sp] = append(routers[dp].RecvFrom[sp], dstOff[dp])
		srcOff[sp]++
		dstOff[dp]++
	}
	for pe := range routers {
		routers[pe].NSrc = srcOff[pe]
		routers[pe].NDst = dstOff[pe]
	}
	return routers, nil
}

// Record publishes the router plan's footprint and shape as gauges under
// the given metric prefix ("<prefix>.bytes", "<prefix>.nsrc",
// "<prefix>.ndst", "<prefix>.peers") — the aggregation-size accounting the
// offline-preprocessing discussion of §5.2.4 measures.
func (r *Router) Record(o Observer, prefix string) {
	if o == nil {
		return
	}
	peers := 0
	for _, s := range r.SendTo {
		if len(s) > 0 {
			peers++
		}
	}
	o.SetGauge(prefix+".bytes", float64(r.Bytes()))
	o.SetGauge(prefix+".nsrc", float64(r.NSrc))
	o.SetGauge(prefix+".ndst", float64(r.NDst))
	o.SetGauge(prefix+".peers", float64(peers))
}

// Bytes returns the router's table footprint.
func (r *Router) Bytes() int {
	n := 0
	for _, s := range r.SendTo {
		n += 8 * len(s)
	}
	for _, s := range r.RecvFrom {
		n += 8 * len(s)
	}
	return n
}

// Encode serializes the router for the offline-preprocessing file.
func (r *Router) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("coupler: encoding router: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRouter deserializes a router produced by Encode.
func DecodeRouter(data []byte) (*Router, error) {
	var r Router
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&r); err != nil {
		return nil, fmt.Errorf("coupler: decoding router: %w", err)
	}
	return &r, nil
}
