// Package coupler is the CPL7/MCT substitute of the reproduction (§5.1.1,
// §5.2.4): the attribute-vector data type, the global segment map (GSMap)
// describing a decomposition, the Router built from two GSMaps, the
// rearranger that moves distributed fields between decompositions (with the
// baseline all-to-all and the optimized non-blocking point-to-point
// implementations), coupling clocks with alarms, and the component
// init/run/finalize + import/export contract.
package coupler

import (
	"fmt"
	"sort"
)

// AttrVect is MCT's fundamental distributed data type: a set of named
// real-valued attributes over the local points of a decomposition. Storage
// is field-major: field f occupies Data[f*LSize : (f+1)*LSize].
type AttrVect struct {
	Fields []string
	index  map[string]int
	LSize  int
	Data   []float64
}

// NewAttrVect creates a zeroed attribute vector with the given fields over
// lsize local points. Duplicate field names are rejected.
func NewAttrVect(fields []string, lsize int) (*AttrVect, error) {
	if lsize < 0 {
		return nil, fmt.Errorf("coupler: negative local size %d", lsize)
	}
	av := &AttrVect{
		Fields: append([]string(nil), fields...),
		index:  make(map[string]int, len(fields)),
		LSize:  lsize,
		Data:   make([]float64, len(fields)*lsize),
	}
	for i, f := range fields {
		if _, dup := av.index[f]; dup {
			return nil, fmt.Errorf("coupler: duplicate field %q", f)
		}
		av.index[f] = i
	}
	return av, nil
}

// Field returns the slice of the named attribute, aliasing internal storage.
func (av *AttrVect) Field(name string) ([]float64, error) {
	i, ok := av.index[name]
	if !ok {
		return nil, fmt.Errorf("coupler: no field %q (have %v)", name, av.Fields)
	}
	return av.Data[i*av.LSize : (i+1)*av.LSize], nil
}

// MustField is Field that panics on unknown names.
func (av *AttrVect) MustField(name string) []float64 {
	f, err := av.Field(name)
	if err != nil {
		panic(err)
	}
	return f
}

// HasField reports whether the attribute exists.
func (av *AttrVect) HasField(name string) bool {
	_, ok := av.index[name]
	return ok
}

// NFields returns the attribute count.
func (av *AttrVect) NFields() int { return len(av.Fields) }

// Restrict returns a new AttrVect holding only the named fields, sharing no
// storage. This implements the §5.2.4 optimization of dropping
// communication variables that are registered in MCT but unused by GRIST
// and LICOM: restricting before rearrangement shrinks message volume.
func (av *AttrVect) Restrict(fields []string) (*AttrVect, error) {
	out, err := NewAttrVect(fields, av.LSize)
	if err != nil {
		return nil, err
	}
	for _, f := range fields {
		src, err := av.Field(f)
		if err != nil {
			return nil, err
		}
		copy(out.MustField(f), src)
	}
	return out, nil
}

// SharedFields returns the sorted intersection of two field lists — the
// variables actually exchanged between a pair of components.
func SharedFields(a, b *AttrVect) []string {
	var out []string
	for _, f := range a.Fields {
		if b.HasField(f) {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}
