package atmos

import (
	"math"

	"repro/internal/grid"
)

// reconstructor recovers full tangent-plane velocity vectors at cell
// centers from edge-normal components, by per-cell least squares over the
// cell's edges. The weights are precomputed once from the mesh geometry;
// a constant vector field is reconstructed exactly because each cell's edge
// normals span its tangent plane.
type reconstructor struct {
	mesh *grid.IcosMesh
	// For each cell, the 3×nEdges pseudo-inverse rows flattened:
	// uVec(cell) = Σ_e w[cell][e] · u_e, with w a 3-vector per edge.
	weights [][]grid.Vec3
	// normal3 is the unit normal direction of each edge (pointing c1→c2,
	// tangent to the sphere at the edge midpoint).
	normal3 []grid.Vec3
	// east and north are the local unit vectors at each cell center, used
	// to express reconstructed vectors as (zonal, meridional) components.
	east, north []grid.Vec3
}

func newReconstructor(mesh *grid.IcosMesh) *reconstructor {
	r := &reconstructor{mesh: mesh}
	ne := mesh.NEdges()
	r.normal3 = make([]grid.Vec3, ne)
	for e := 0; e < ne; e++ {
		c1, c2 := mesh.CellsOnEdge[e][0], mesh.CellsOnEdge[e][1]
		mid := mesh.EdgeMidpoint[e]
		n := mesh.CellCenter[c2].Sub(mesh.CellCenter[c1])
		// Project onto the tangent plane at the midpoint.
		n = n.Sub(mid.Scale(n.Dot(mid))).Normalize()
		r.normal3[e] = n
	}

	nc := mesh.NCells()
	r.weights = make([][]grid.Vec3, nc)
	r.east = make([]grid.Vec3, nc)
	r.north = make([]grid.Vec3, nc)
	for c := 0; c < nc; c++ {
		p := mesh.CellCenter[c]
		lon, lat := mesh.LonCell[c], mesh.LatCell[c]
		r.east[c] = grid.Vec3{X: -math.Sin(lon), Y: math.Cos(lon), Z: 0}
		r.north[c] = grid.Vec3{
			X: -math.Sin(lat) * math.Cos(lon),
			Y: -math.Sin(lat) * math.Sin(lon),
			Z: math.Cos(lat),
		}

		edges := mesh.EdgesOnCell[c]
		// Solve min Σ_e (v·n_e − u_e)² for v in the tangent plane at p:
		// v = (Σ n nᵀ + λ p pᵀ)⁻¹ Σ n u — the p pᵀ term pins the radial
		// component to zero.
		var a [3][3]float64
		for _, e := range edges {
			n := r.normal3[e]
			a[0][0] += n.X * n.X
			a[0][1] += n.X * n.Y
			a[0][2] += n.X * n.Z
			a[1][1] += n.Y * n.Y
			a[1][2] += n.Y * n.Z
			a[2][2] += n.Z * n.Z
		}
		const lambda = 10.0
		a[0][0] += lambda * p.X * p.X
		a[0][1] += lambda * p.X * p.Y
		a[0][2] += lambda * p.X * p.Z
		a[1][1] += lambda * p.Y * p.Y
		a[1][2] += lambda * p.Y * p.Z
		a[2][2] += lambda * p.Z * p.Z
		a[1][0], a[2][0], a[2][1] = a[0][1], a[0][2], a[1][2]

		inv := invert3(a)
		w := make([]grid.Vec3, len(edges))
		for i, e := range edges {
			n := r.normal3[e]
			w[i] = grid.Vec3{
				X: inv[0][0]*n.X + inv[0][1]*n.Y + inv[0][2]*n.Z,
				Y: inv[1][0]*n.X + inv[1][1]*n.Y + inv[1][2]*n.Z,
				Z: inv[2][0]*n.X + inv[2][1]*n.Y + inv[2][2]*n.Z,
			}
		}
		r.weights[c] = w
	}
	return r
}

// invert3 inverts a symmetric 3×3 matrix by cofactors.
func invert3(a [3][3]float64) [3][3]float64 {
	det := a[0][0]*(a[1][1]*a[2][2]-a[1][2]*a[2][1]) -
		a[0][1]*(a[1][0]*a[2][2]-a[1][2]*a[2][0]) +
		a[0][2]*(a[1][0]*a[2][1]-a[1][1]*a[2][0])
	inv := [3][3]float64{}
	if det == 0 {
		return inv
	}
	d := 1 / det
	inv[0][0] = (a[1][1]*a[2][2] - a[1][2]*a[2][1]) * d
	inv[0][1] = (a[0][2]*a[2][1] - a[0][1]*a[2][2]) * d
	inv[0][2] = (a[0][1]*a[1][2] - a[0][2]*a[1][1]) * d
	inv[1][0] = (a[1][2]*a[2][0] - a[1][0]*a[2][2]) * d
	inv[1][1] = (a[0][0]*a[2][2] - a[0][2]*a[2][0]) * d
	inv[1][2] = (a[0][2]*a[1][0] - a[0][0]*a[1][2]) * d
	inv[2][0] = (a[1][0]*a[2][1] - a[1][1]*a[2][0]) * d
	inv[2][1] = (a[0][1]*a[2][0] - a[0][0]*a[2][1]) * d
	inv[2][2] = (a[0][0]*a[1][1] - a[0][1]*a[1][0]) * d
	return inv
}

// CellVector reconstructs the 3-D tangent velocity at cell c from one
// level's edge field.
func (r *reconstructor) CellVector(uEdge []float64, c int) grid.Vec3 {
	var v grid.Vec3
	for i, e := range r.mesh.EdgesOnCell[c] {
		v = v.Add(r.weights[c][i].Scale(uEdge[e]))
	}
	return v
}

// CellUV reconstructs the zonal and meridional velocity components at cell c.
func (r *reconstructor) CellUV(uEdge []float64, c int) (u, v float64) {
	vec := r.CellVector(uEdge, c)
	return vec.Dot(r.east[c]), vec.Dot(r.north[c])
}

// TangentAtEdge estimates the velocity component perpendicular to the edge
// normal (the "tangential wind" needed by the Coriolis term): the mean of
// the two adjacent cells' reconstructed vectors projected on ẑ×n̂.
func (r *reconstructor) TangentAtEdge(uEdge []float64, e int) float64 {
	c1, c2 := r.mesh.CellsOnEdge[e][0], r.mesh.CellsOnEdge[e][1]
	v1 := r.CellVector(uEdge, c1)
	v2 := r.CellVector(uEdge, c2)
	v := v1.Add(v2).Scale(0.5)
	mid := r.mesh.EdgeMidpoint[e]
	t := mid.Cross(r.normal3[e]) // 90° counterclockwise from the normal
	return v.Dot(t)
}
