package atmos

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/par"
)

// TestDecomposedMatchesReplicated pins the tentpole equivalence at the
// component level: a decomposed atmosphere stepped on 2 and 4 ranks produces
// bit-for-bit the serial answer on every owned cell and edge, across enough
// model steps to cover several tracer and physics firings.
func TestDecomposedMatchesReplicated(t *testing.T) {
	const level, nlev, modelSteps = 2, 6, 3
	cfg := DefaultConfig()

	ref, err := New(level, nlev, cfg, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < modelSteps; i++ {
		ref.StepModel()
	}

	for _, ranks := range []int{2, 4} {
		par.Run(ranks, func(c *par.Comm) {
			m, err := New(level, nlev, cfg, nil)
			if err != nil {
				t.Errorf("New: %v", err)
				return
			}
			d, err := grid.NewIcosDecomp(m.Mesh, c)
			if err != nil {
				t.Errorf("NewIcosDecomp: %v", err)
				return
			}
			m.SetDecomp(d)
			for i := 0; i < modelSteps; i++ {
				m.StepModel()
			}
			nc, ne := m.Mesh.NCells(), m.Mesh.NEdges()
			for c2 := d.C0; c2 < d.C1; c2++ {
				if m.Ps[c2] != ref.Ps[c2] {
					t.Errorf("ranks=%d rank %d: Ps[%d] = %v, want %v", ranks, c.Rank(), c2, m.Ps[c2], ref.Ps[c2])
					return
				}
				for k := 0; k < nlev; k++ {
					i := k*nc + c2
					if m.T[i] != ref.T[i] || m.Qv[i] != ref.Qv[i] {
						t.Errorf("ranks=%d rank %d: T/Qv mismatch at cell %d lev %d", ranks, c.Rank(), c2, k)
						return
					}
				}
				for _, f := range [][2][]float64{
					{m.Precip, ref.Precip}, {m.TauX, ref.TauX}, {m.TauY, ref.TauY},
					{m.SHF, ref.SHF}, {m.LHF, ref.LHF}, {m.GSW, ref.GSW}, {m.GLW, ref.GLW},
				} {
					if f[0][c2] != f[1][c2] {
						t.Errorf("ranks=%d rank %d: physics export mismatch at cell %d", ranks, c.Rank(), c2)
						return
					}
				}
			}
			for _, e := range d.OwnEdges {
				for k := 0; k < nlev; k++ {
					if m.U[k*ne+e] != ref.U[k*ne+e] {
						t.Errorf("ranks=%d rank %d: U[%d] lev %d = %v, want %v", ranks, c.Rank(), e, k, m.U[k*ne+e], ref.U[k*ne+e])
						return
					}
				}
			}
			// The halo must mirror its owners bit-for-bit too — that is what
			// makes the redundant physics columns safe.
			for _, h := range d.HaloCells {
				if m.Ps[h] != ref.Ps[h] {
					t.Errorf("ranks=%d rank %d: halo Ps[%d] = %v, want %v", ranks, c.Rank(), h, m.Ps[h], ref.Ps[h])
					return
				}
			}
		})
	}
}
