package atmos

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/pp"
	"repro/internal/precision"
)

func newTestModel(t *testing.T, level, nlev int) *Model {
	t.Helper()
	m, err := New(level, nlev, DefaultConfig(), pp.Serial{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(3, 1, DefaultConfig(), nil); err == nil {
		t.Error("single level accepted")
	}
	bad := DefaultConfig()
	bad.DtDycore = 0
	if _, err := New(3, 5, bad, nil); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := New(99, 5, DefaultConfig(), nil); err == nil {
		t.Error("bogus level accepted")
	}
}

func TestSigmaLayersPartitionUnity(t *testing.T) {
	m := newTestModel(t, 2, 8)
	var sum float64
	for k := 0; k < m.NLev; k++ {
		if m.DSig[k] <= 0 {
			t.Fatal("non-positive layer")
		}
		if k > 0 && m.Sig[k] <= m.Sig[k-1] {
			t.Fatal("sigma not increasing")
		}
		sum += m.DSig[k]
	}
	if math.Abs(sum-(1-0.05)) > 1e-12 {
		t.Errorf("Δσ sums to %v", sum)
	}
	// Interfaces consistent with layers.
	if math.Abs(m.sigInt(0)-0.05) > 1e-12 || math.Abs(m.sigInt(m.NLev)-1) > 1e-12 {
		t.Error("interface endpoints wrong")
	}
}

func TestInitialStateSane(t *testing.T) {
	m := newTestModel(t, 3, 8)
	nc := m.Mesh.NCells()
	for c := 0; c < nc; c++ {
		if m.Ps[c] != P0 {
			t.Fatal("ps not P0")
		}
		for k := 0; k < m.NLev; k++ {
			tt := m.T[k*nc+c]
			if tt < 150 || tt > 340 {
				t.Fatalf("T = %v", tt)
			}
			q := m.Qv[k*nc+c]
			if q < 0 || q > 0.05 {
				t.Fatalf("q = %v", q)
			}
		}
	}
}

// The velocity reconstruction must recover a constant tangent field: set
// u_e = W·n̂_e for a fixed vector W and check the cell vectors.
func TestReconstructionExactForUniformField(t *testing.T) {
	m := newTestModel(t, 3, 2)
	mesh := m.Mesh
	w := grid.Vec3{X: 3, Y: -2, Z: 1}
	ne := mesh.NEdges()
	u := make([]float64, ne)
	for e := 0; e < ne; e++ {
		// Project W onto the local tangent plane first: a constant 3-vector
		// is not tangent everywhere, so test against its tangent projection.
		u[e] = w.Dot(m.recon.normal3[e])
	}
	for c := 0; c < mesh.NCells(); c++ {
		got := m.recon.CellVector(u, c)
		p := mesh.CellCenter[c]
		want := w.Sub(p.Scale(w.Dot(p)))
		if got.Sub(want).Norm() > 0.15*want.Norm()+1e-9 {
			t.Fatalf("cell %d: reconstructed %v, want %v", c, got, want)
		}
	}
}

func TestReconstructionZonalFlow(t *testing.T) {
	m := newTestModel(t, 3, 2)
	mesh := m.Mesh
	ne := mesh.NEdges()
	u := make([]float64, ne)
	// Solid-body zonal flow: velocity = Ω×r with Ω = ẑ; normal component
	// at each edge.
	for e := 0; e < ne; e++ {
		mid := mesh.EdgeMidpoint[e]
		vel := grid.Vec3{X: -mid.Y, Y: mid.X, Z: 0}
		u[e] = vel.Dot(m.recon.normal3[e])
	}
	for c := 0; c < mesh.NCells(); c++ {
		lat := mesh.LatCell[c]
		if math.Abs(lat) > 1.2 {
			continue // skip near-pole cells where cos(lat) is small
		}
		uz, vm := m.recon.CellUV(u, c)
		want := math.Cos(lat) // |Ω×r| along east
		if math.Abs(uz-want) > 0.12*want+0.02 {
			t.Fatalf("cell %d: zonal %v, want %v", c, uz, want)
		}
		if math.Abs(vm) > 0.08 {
			t.Fatalf("cell %d: meridional %v, want ~0", c, vm)
		}
	}
}

func TestMassConservationExact(t *testing.T) {
	m := newTestModel(t, 3, 6)
	// Perturb to create motion.
	m.Ps[10] += 500
	m.Ps[200] -= 500
	m0 := m.TotalMass()
	for s := 0; s < 20; s++ {
		m.Step()
	}
	m1 := m.TotalMass()
	if rel := math.Abs(m1-m0) / m0; rel > 1e-13 {
		t.Errorf("mass drift %.3e", rel)
	}
}

// Between physics calls, transport must conserve mass-weighted moisture
// exactly (physics adds evaporation/precipitation).
func TestMoistureConservationByTransport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PhysicsEvery = 1 << 30 // physics never fires
	m, err := New(3, 6, cfg, pp.Serial{})
	if err != nil {
		t.Fatal(err)
	}
	m.Ps[5] += 300
	m.Ps[100] -= 300
	q0 := m.TotalMoisture()
	for s := 0; s < 8; s++ {
		m.Step()
	}
	q1 := m.TotalMoisture()
	if rel := math.Abs(q1-q0) / q0; rel > 1e-12 {
		t.Errorf("moisture drift %.3e under pure transport", rel)
	}
}

func TestRestStateStaysBalanced(t *testing.T) {
	// With no physics and horizontally uniform T(σ) and ps, the pressure
	// gradient terms vanish: the state is an exact steady solution.
	cfg := DefaultConfig()
	cfg.PhysicsEvery = 1 << 30
	m, err := New(3, 5, cfg, pp.Serial{})
	if err != nil {
		t.Fatal(err)
	}
	nc := m.Mesh.NCells()
	for c := 0; c < nc; c++ {
		for k := 0; k < m.NLev; k++ {
			m.T[k*nc+c] = 260 // isothermal
			m.Qv[k*nc+c] = 0.001
		}
	}
	for s := 0; s < 10; s++ {
		m.Step()
	}
	if w := m.MaxWind(); w > 1e-10 {
		t.Errorf("rest state developed wind %v", w)
	}
}

func TestStabilityWithPhysics(t *testing.T) {
	m := newTestModel(t, 3, 8)
	steps := 3 * m.Cfg.PhysicsEvery
	for s := 0; s < steps; s++ {
		m.Step()
	}
	if w := m.MaxWind(); math.IsNaN(w) || w > 150 {
		t.Fatalf("max wind %v after %d substeps", w, steps)
	}
	for c := 0; c < m.Mesh.NCells(); c++ {
		if math.IsNaN(m.Ps[c]) || m.Ps[c] < 8e4 || m.Ps[c] > 1.15e5 {
			t.Fatalf("ps[%d] = %v", c, m.Ps[c])
		}
	}
}

func TestPhysicsDrivesCirculation(t *testing.T) {
	m := newTestModel(t, 3, 8)
	// Radiative relaxation toward the equator-pole gradient must spin up
	// winds from rest.
	for s := 0; s < 5*m.Cfg.PhysicsEvery; s++ {
		m.Step()
	}
	if w := m.MaxWind(); w < 0.01 {
		t.Errorf("no circulation developed: max wind %v", w)
	}
}

func TestEvaporationAndPrecipitation(t *testing.T) {
	m := newTestModel(t, 3, 8)
	q0 := m.TotalMoisture()
	for s := 0; s < 10*m.Cfg.PhysicsEvery; s++ {
		m.Step()
	}
	// Ocean evaporation must have changed total moisture (in either
	// direction once rain balances), and some precipitation must occur
	// somewhere after saturation.
	q1 := m.TotalMoisture()
	if q0 == q1 {
		t.Error("moisture never changed — surface hydrology inert")
	}
	var anyPrecip bool
	for _, p := range m.Precip {
		if p > 0 {
			anyPrecip = true
			break
		}
	}
	if !anyPrecip {
		t.Log("no precipitation after short spin-up (acceptable on coarse mesh)")
	}
}

func TestPhysicsSuiteContract(t *testing.T) {
	m := newTestModel(t, 2, 6)
	s := NewConventionalSuite(m)
	if s.Name() != "conventional" {
		t.Error(s.Name())
	}
	nlev := m.NLev
	in := ColumnIn{
		U: make([]float64, nlev), V: make([]float64, nlev),
		T: make([]float64, nlev), Q: make([]float64, nlev),
		P:   make([]float64, nlev),
		Lat: 0.2, TSkin: 300, CosZ: 0.8,
	}
	for k := 0; k < nlev; k++ {
		in.T[k] = equilibriumT(0.2, m.Sig[k])
		in.P[k] = m.Sig[k] * P0
		in.Q[k] = 0.001
	}
	in.U[nlev-1] = 10
	out := ColumnOut{
		DT: make([]float64, nlev), DQ: make([]float64, nlev),
		DU: make([]float64, nlev), DV: make([]float64, nlev),
	}
	s.Column(in, 600, &out)
	// At radiative equilibrium with a warm sea surface: positive sensible
	// and latent fluxes, eastward surface stress, sunlight at the surface.
	if out.TauX <= 0 {
		t.Errorf("TauX = %v with eastward surface wind", out.TauX)
	}
	if out.LHF <= 0 {
		t.Errorf("LHF = %v over warm ocean", out.LHF)
	}
	if out.GSW <= 0 || out.GSW > 1361 {
		t.Errorf("GSW = %v", out.GSW)
	}
	if out.GLW <= 100 || out.GLW > 600 {
		t.Errorf("GLW = %v", out.GLW)
	}
	// Friction decelerates the surface wind.
	if out.DU[nlev-1] >= 0 {
		t.Errorf("DU = %v with positive wind", out.DU[nlev-1])
	}
}

func TestSupersaturationRainsOut(t *testing.T) {
	m := newTestModel(t, 2, 6)
	s := NewConventionalSuite(m)
	nlev := m.NLev
	in := ColumnIn{
		U: make([]float64, nlev), V: make([]float64, nlev),
		T: make([]float64, nlev), Q: make([]float64, nlev),
		P:   make([]float64, nlev),
		Lat: 0, TSkin: 300, Land: true,
	}
	for k := 0; k < nlev; k++ {
		in.T[k] = 290
		in.P[k] = m.Sig[k] * P0
		in.Q[k] = qsat(290, in.P[k]) * 1.5 // strongly supersaturated
	}
	out := ColumnOut{
		DT: make([]float64, nlev), DQ: make([]float64, nlev),
		DU: make([]float64, nlev), DV: make([]float64, nlev),
	}
	s.Column(in, 600, &out)
	if out.Precip <= 0 {
		t.Fatal("no rain from supersaturated column")
	}
	for k := 0; k < nlev; k++ {
		if out.DQ[k] >= 0 {
			t.Fatalf("level %d: moisture not removed", k)
		}
		if out.DT[k] <= -1e-3 {
			t.Fatalf("level %d: no latent heating (DT=%v)", k, out.DT[k])
		}
	}
	// Land column: no evaporation.
	if out.LHF != 0 {
		t.Errorf("land LHF = %v", out.LHF)
	}
}

func TestMixedPrecisionAtmosWithinThreshold(t *testing.T) {
	run := func(pol precision.Policy) *Model {
		cfg := DefaultConfig()
		cfg.Policy = pol
		m, err := New(3, 6, cfg, pp.Serial{})
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 4*m.Cfg.PhysicsEvery; s++ {
			m.Step()
		}
		return m
	}
	m64 := run(precision.FP64)
	m32 := run(precision.Mixed)
	relPs, err := precision.RelL2(m32.Ps, m64.Ps)
	if err != nil {
		t.Fatal(err)
	}
	v64 := m64.SurfaceVorticity()
	v32 := m32.SurfaceVorticity()
	// Vorticity can be near zero globally; compare against its own scale.
	var scale float64
	for _, v := range v64 {
		scale += v * v
	}
	th := precision.PaperThresholds()
	if relPs > th.AtmosRelL2 {
		t.Errorf("surface pressure rel L2 %.4g over threshold %.2g", relPs, th.AtmosRelL2)
	}
	if scale > 0 {
		relV, _ := precision.RelL2(v32, v64)
		if relV > th.AtmosRelL2 {
			t.Errorf("vorticity rel L2 %.4g over threshold", relV)
		}
	}
	// The runs must actually differ.
	same := true
	for i := range m64.Ps {
		if m64.Ps[i] != m32.Ps[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("mixed run identical to FP64")
	}
}

func TestBackendEquivalence(t *testing.T) {
	run := func(sp pp.Space) []float64 {
		m, err := New(2, 5, DefaultConfig(), sp)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < m.Cfg.PhysicsEvery+3; s++ {
			m.Step()
		}
		return m.Ps
	}
	ref := run(pp.Serial{})
	for _, sp := range []pp.Space{pp.NewHost(4), pp.NewCPE(8)} {
		got := run(sp)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: ps[%d] = %v vs %v", sp.Name(), i, got[i], ref[i])
			}
		}
	}
}

func TestDiagnosticsShapes(t *testing.T) {
	m := newTestModel(t, 2, 5)
	for s := 0; s < m.Cfg.PhysicsEvery; s++ {
		m.Step()
	}
	nc := m.Mesh.NCells()
	u, v := m.Wind10m()
	if len(u) != nc || len(v) != nc {
		t.Fatal("wind10m size")
	}
	if len(m.SurfaceVorticity()) != nc {
		t.Fatal("vorticity size")
	}
	cloud := m.TotalCloudProxy()
	for _, cf := range cloud {
		if cf < 0 || cf > 1 {
			t.Fatal("cloud proxy out of [0,1]")
		}
	}
	ps, at := m.MinPs()
	if at < 0 || ps <= 0 {
		t.Fatal("MinPs")
	}
	if m.GlobalPrecipRate() < 0 {
		t.Fatal("negative precip")
	}
	if m.DtModel() != m.Cfg.DtDycore*float64(m.Cfg.PhysicsEvery) {
		t.Fatal("DtModel")
	}
}

func TestQsatMonotonicity(t *testing.T) {
	// qsat grows with temperature and falls with pressure.
	if !(qsat(300, 1e5) > qsat(280, 1e5)) {
		t.Error("qsat not increasing in T")
	}
	if !(qsat(300, 8e4) > qsat(300, 1e5)) {
		t.Error("qsat not decreasing in p")
	}
	if q := qsat(400, 1e5); q > 0.08+1e-12 {
		t.Error("qsat cap missing")
	}
}
