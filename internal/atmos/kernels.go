package atmos

import (
	"math"

	"repro/internal/grid"
	"repro/internal/pp"
)

// This file is the atmosphere's half of the single-source kernel layer: the
// three top-profiled dycore sweeps — cell diagnostics (velocity
// reconstruction, kinetic energy, divergence), vertex vorticity, and the
// edge momentum update — live here as free kernel bodies over explicit
// argument bundles, registered in pp.Kernels and launched by the thin
// driver in dycore.go. The bodies are generic over pp.Float: the float64
// instantiation is bit-for-bit the pre-refactor arithmetic (expression
// structure and evaluation order preserved; every T() conversion is the
// identity at float64), and the float32 instantiation is the Vec-space
// mixed-precision path. Sensitive sub-expressions — the KE+geopotential
// gradient, the ln(ps) pressure-gradient term, the damping and viscosity
// differences — are evaluated in float64 inside the momentum kernel and
// converted once, so mixed precision never differences large float32
// values. The virtual-temperature/geopotential integral, continuity, tracer
// transport, and physics stay float64-only by policy (DESIGN.md
// "single-source kernels").

// Registered kernel hashes, one registration per process.
var (
	hAtmKeDiv    = pp.Kernels.MustRegister("atm.kediv", keDivKernel)
	hAtmVort     = pp.Kernels.MustRegister("atm.vort", vortKernel)
	hAtmMomentum = pp.Kernels.MustRegister("atm.momentum", atmMomentumKernel)
)

// atmGeom is the precision-typed mesh geometry the kernels read, flattened
// out of the reconstructor and IcosMesh ragged arrays into contiguous
// per-slot tables so the inner loops index raw storage. Products that the
// original sweeps formed per iteration are prefolded only where bit-safe:
// sign·Dv and sign·Dc (sign = ±1, exact), and the left-associated area
// denominators (AreaCell·re)·re.
type atmGeom[T pp.Float] struct {
	nc, ne, nv, nlev int
	re               T

	// Cell sweeps: ragged EdgesOnCell flattened to [ceStart[c], ceStart[c+1]).
	ceStart       []int32 // [nc+1]
	ceEdge        []int32 // per slot: edge index
	wX, wY, wZ    []T     // per slot: reconstruction weight vector
	sdv           []T     // per slot: sign·Dv
	areaRR        []T     // per cell: (AreaCell·re)·re
	// Vertex sweeps: fixed degree 3.
	veEdge        []int32 // [3*nv]
	sdc           []T     // [3*nv]: sign·Dc
	dualRR        []T     // per vertex: (AreaDual·re)·re
	// Edge sweeps.
	ec1, ec2     []int32 // cells on edge
	ev1, ev2     []int32 // vertices on edge
	tX, tY, tZ   []T     // edge tangent t = mid × n̂ (ẑ×n̂ direction)
}

// edgeGeomF is the float64 per-edge geometry shared by both momentum
// instantiations: the metric lengths, Coriolis parameter, and the
// step-dependent divergence-damping coefficient. The sensitive momentum
// terms are formed from these in float64 regardless of T.
type edgeGeomF struct {
	dcm, dvm []float64 // Dc·re, Dv·re
	fE       []float64 // 2Ω·sin(lat) at the edge midpoint

	damp           []float64 // Div4·dcm·dcm/dt, rebuilt when dt or Div4 changes
	dampDt, dampD4 float64
	dt, kh         float64 // current substep parameters
}

// bindStep fixes the substep parameters, rebuilding the damping table only
// when dt or the damping coefficient actually changed.
func (eg *edgeGeomF) bindStep(dt, div4, kh float64) {
	eg.dt, eg.kh = dt, kh
	if eg.dampDt == dt && eg.dampD4 == div4 {
		return
	}
	for e := range eg.damp {
		dcm := eg.dcm[e]
		eg.damp[e] = div4 * dcm * dcm / dt
	}
	eg.dampDt, eg.dampD4 = dt, div4
}

// newAtmGeomF builds the canonical float64 geometry from the mesh and the
// reconstructor; the float32 table is derived from it by narrowing.
func newAtmGeomF(mesh *grid.IcosMesh, r *reconstructor, nlev int) (*atmGeom[float64], *edgeGeomF) {
	nc, ne, nv := mesh.NCells(), mesh.NEdges(), mesh.NVertices()
	re := grid.EarthRadius
	g := &atmGeom[float64]{nc: nc, ne: ne, nv: nv, nlev: nlev, re: re}

	g.ceStart = make([]int32, nc+1)
	for c := 0; c < nc; c++ {
		g.ceStart[c+1] = g.ceStart[c] + int32(len(mesh.EdgesOnCell[c]))
	}
	nslot := int(g.ceStart[nc])
	g.ceEdge = make([]int32, nslot)
	g.wX = make([]float64, nslot)
	g.wY = make([]float64, nslot)
	g.wZ = make([]float64, nslot)
	g.sdv = make([]float64, nslot)
	g.areaRR = make([]float64, nc)
	for c := 0; c < nc; c++ {
		o := int(g.ceStart[c])
		for j, e := range mesh.EdgesOnCell[c] {
			g.ceEdge[o+j] = int32(e)
			w := r.weights[c][j]
			g.wX[o+j], g.wY[o+j], g.wZ[o+j] = w.X, w.Y, w.Z
			g.sdv[o+j] = float64(mesh.EdgeSignOnCell[c][j]) * mesh.Dv[e]
		}
		g.areaRR[c] = mesh.AreaCell[c] * re * re
	}

	g.veEdge = make([]int32, 3*nv)
	g.sdc = make([]float64, 3*nv)
	g.dualRR = make([]float64, nv)
	for v := 0; v < nv; v++ {
		for j := 0; j < 3; j++ {
			e := mesh.EdgesOnVertex[v][j]
			g.veEdge[3*v+j] = int32(e)
			g.sdc[3*v+j] = float64(mesh.EdgeSignOnVtx[v][j]) * mesh.Dc[e]
		}
		g.dualRR[v] = mesh.AreaDual[v] * re * re
	}

	g.ec1 = make([]int32, ne)
	g.ec2 = make([]int32, ne)
	g.ev1 = make([]int32, ne)
	g.ev2 = make([]int32, ne)
	g.tX = make([]float64, ne)
	g.tY = make([]float64, ne)
	g.tZ = make([]float64, ne)
	eg := &edgeGeomF{
		dcm: make([]float64, ne),
		dvm: make([]float64, ne),
		fE:  make([]float64, ne),
	}
	eg.damp = make([]float64, ne)
	for e := 0; e < ne; e++ {
		g.ec1[e] = int32(mesh.CellsOnEdge[e][0])
		g.ec2[e] = int32(mesh.CellsOnEdge[e][1])
		g.ev1[e] = int32(mesh.VerticesOnEdge[e][0])
		g.ev2[e] = int32(mesh.VerticesOnEdge[e][1])
		t := mesh.EdgeMidpoint[e].Cross(r.normal3[e])
		g.tX[e], g.tY[e], g.tZ[e] = t.X, t.Y, t.Z
		eg.dcm[e] = mesh.Dc[e] * re
		eg.dvm[e] = mesh.Dv[e] * re
		_, latE := grid.LonLat(mesh.EdgeMidpoint[e])
		eg.fE[e] = 2 * 7.292e-5 * math.Sin(latE)
	}
	return g, eg
}

// narrowGeom derives the float32 geometry table from the float64 one.
func narrowGeom(g *atmGeom[float64]) *atmGeom[float32] {
	n32 := func(src []float64) []float32 {
		dst := make([]float32, len(src))
		pp.Convert32(dst, src)
		return dst
	}
	return &atmGeom[float32]{
		nc: g.nc, ne: g.ne, nv: g.nv, nlev: g.nlev, re: float32(g.re),
		ceStart: g.ceStart, ceEdge: g.ceEdge,
		wX: n32(g.wX), wY: n32(g.wY), wZ: n32(g.wZ),
		sdv: n32(g.sdv), areaRR: n32(g.areaRR),
		veEdge: g.veEdge, sdc: n32(g.sdc), dualRR: n32(g.dualRR),
		ec1: g.ec1, ec2: g.ec2, ev1: g.ev1, ev2: g.ev2,
		tX: n32(g.tX), tY: n32(g.tY), tZ: n32(g.tZ),
	}
}

// --- cell diagnostics: reconstruction, kinetic energy, divergence ---

// keDivArgs is the cell-diagnostics bundle. The reconstructed tangent-plane
// velocity is stored per (level, cell) so the momentum kernel reuses it for
// the edge tangential wind instead of re-reconstructing both endpoint cells
// per edge per level — the same accumulation on the same inputs, so the
// reuse is bit-identical to the original nested calls.
type keDivArgs[T pp.Float] struct {
	g             *atmGeom[T]
	u             []T // [nlev*ne] edge-normal velocity
	vcx, vcy, vcz []T // [nlev*nc] reconstructed cell vector (out)
	ke, div       []T // [nlev*nc] (out)

	cells []int // iteration set; nil sweeps every cell
	rowF  func(i int)
}

func (a *keDivArgs[T]) n() int {
	if a.cells != nil {
		return len(a.cells)
	}
	return a.g.nc
}

func (a *keDivArgs[T]) cell(i int) {
	c := i
	if a.cells != nil {
		c = a.cells[i]
	}
	nlev := a.g.nlev
	k := 0
	for ; k+2 <= nlev; k += 2 {
		a.level(c, k)
		a.level(c, k+1)
	}
	if k < nlev {
		a.level(c, k)
	}
}

// level runs one (cell, level): v = Σ w_e·u_e, ke = ½|v|², div = Σ s·u·Dv·re
// over the cell area. The accumulators start at zero and add in edge order,
// matching the original CellVector/divergence loops term for term.
func (a *keDivArgs[T]) level(c, k int) {
	g := a.g
	kn := k * g.ne
	re := g.re
	var vx, vy, vz, d T
	for o := g.ceStart[c]; o < g.ceStart[c+1]; o++ {
		uE := a.u[kn+int(g.ceEdge[o])]
		vx += g.wX[o] * uE
		vy += g.wY[o] * uE
		vz += g.wZ[o] * uE
		d += g.sdv[o] * uE * re
	}
	ic := k*g.nc + c
	a.vcx[ic], a.vcy[ic], a.vcz[ic] = vx, vy, vz
	a.ke[ic] = T(0.5) * (vx*vx + vy*vy + vz*vz)
	a.div[ic] = d / g.areaRR[c]
}

func keDivKernel(s pp.Space, args any) {
	switch a := args.(type) {
	case *keDivArgs[float64]:
		s.ParallelFor(a.n(), a.rowF)
	case *keDivArgs[float32]:
		s.ParallelFor(a.n(), a.rowF)
	default:
		panic("atmos: atm.kediv launched with wrong argument bundle")
	}
}

// --- vertex vorticity ---

type vortArgs[T pp.Float] struct {
	g    *atmGeom[T]
	u    []T // [nlev*ne]
	vort []T // [nlev*nv] (out)

	verts []int // iteration set; nil sweeps every vertex
	rowF  func(i int)
}

func (a *vortArgs[T]) n() int {
	if a.verts != nil {
		return len(a.verts)
	}
	return a.g.nv
}

func (a *vortArgs[T]) vertex(i int) {
	v := i
	if a.verts != nil {
		v = a.verts[i]
	}
	nlev := a.g.nlev
	k := 0
	for ; k+2 <= nlev; k += 2 {
		a.level(v, k)
		a.level(v, k+1)
	}
	if k < nlev {
		a.level(v, k)
	}
}

// level accumulates the circulation over the vertex's three edges in the
// original += order (the leading 0 + t₀ matters for the sign of zero).
func (a *vortArgs[T]) level(v, k int) {
	g := a.g
	kn := k * g.ne
	re := g.re
	var circ T
	circ += g.sdc[3*v] * a.u[kn+int(g.veEdge[3*v])] * re
	circ += g.sdc[3*v+1] * a.u[kn+int(g.veEdge[3*v+1])] * re
	circ += g.sdc[3*v+2] * a.u[kn+int(g.veEdge[3*v+2])] * re
	a.vort[k*g.nv+v] = circ / g.dualRR[v]
}

func vortKernel(s pp.Space, args any) {
	switch a := args.(type) {
	case *vortArgs[float64]:
		s.ParallelFor(a.n(), a.rowF)
	case *vortArgs[float32]:
		s.ParallelFor(a.n(), a.rowF)
	default:
		panic("atmos: atm.vort launched with wrong argument bundle")
	}
}

// --- edge momentum update ---

// momentumArgs carries the momentum kernel's inputs: the T-typed dynamic
// fields produced by the diagnostics kernels plus the float64 thermodynamic
// state (tv, phi, lnPs) the driver computes, with the step parameters
// explicit in the shared edge geometry. Each tendency term is formed in
// float64 — exact widenings of the T inputs, so float64 stays bit-for-bit —
// and folded into the T-typed du chain with one conversion per term.
type momentumArgs[T pp.Float] struct {
	g  *atmGeom[T]
	eg *edgeGeomF

	u, newU       []T // [nlev*ne]
	vcx, vcy, vcz []T // [nlev*nc] from atm.kediv
	ke, div       []T // [nlev*nc] from atm.kediv
	vort          []T // [nlev*nv] from atm.vort
	tv, phi       []float64
	lnPs          []float64 // per-cell ln(ps), hoisted out of the edge loop

	edges []int // iteration set; nil sweeps every edge
	rowF  func(i int)
}

func (a *momentumArgs[T]) n() int {
	if a.edges != nil {
		return len(a.edges)
	}
	return a.g.ne
}

func (a *momentumArgs[T]) edge(i int) {
	e := i
	if a.edges != nil {
		e = a.edges[i]
	}
	g := a.g
	c1, c2 := int(g.ec1[e]), int(g.ec2[e])
	v1, v2 := int(g.ev1[e]), int(g.ev2[e])
	eg := a.eg
	dcm, dvm := eg.dcm[e], eg.dvm[e]
	f, damp := eg.fE[e], eg.damp[e]
	psd := a.lnPs[c2] - a.lnPs[c1]
	tx, ty, tz := g.tX[e], g.tY[e], g.tZ[e]
	dtT := T(eg.dt)
	nlev := g.nlev
	k := 0
	for ; k+2 <= nlev; k += 2 {
		a.level(e, k, c1, c2, v1, v2, tx, ty, tz, dtT, f, psd, dcm, dvm, damp)
		a.level(e, k+1, c1, c2, v1, v2, tx, ty, tz, dtT, f, psd, dcm, dvm, damp)
	}
	if k < nlev {
		a.level(e, k, c1, c2, v1, v2, tx, ty, tz, dtT, f, psd, dcm, dvm, damp)
	}
}

// level is one (edge, level) momentum update, term order exactly as the
// original sweep: Coriolis on the tangential wind, KE+geopotential
// gradient, surface-pressure gradient, divergence damping, vector
// Laplacian viscosity.
func (a *momentumArgs[T]) level(e, k, c1, c2, v1, v2 int, tx, ty, tz, dtT T, f, psd, dcm, dvm, damp float64) {
	g := a.g
	ic1, ic2 := k*g.nc+c1, k*g.nc+c2
	iv1, iv2 := k*g.nv+v1, k*g.nv+v2
	half := T(0.5)
	// Tangential wind from the stored cell reconstructions: the mean of the
	// two endpoint vectors projected on t = mid × n̂.
	ut := half*(a.vcx[ic1]+a.vcx[ic2])*tx +
		half*(a.vcy[ic1]+a.vcy[ic2])*ty +
		half*(a.vcz[ic1]+a.vcz[ic2])*tz
	eta := f + 0.5*(float64(a.vort[iv1])+float64(a.vort[iv2]))
	du := T(eta) * ut
	du -= T((float64(a.ke[ic2]) - float64(a.ke[ic1]) + a.phi[ic2] - a.phi[ic1]) / dcm)
	tvb := 0.5 * (a.tv[ic1] + a.tv[ic2])
	du -= T(Rd * tvb * psd / dcm)
	dd := float64(a.div[ic2]) - float64(a.div[ic1])
	du += T(damp * dd / dcm)
	lap := dd/dcm - (float64(a.vort[iv2])-float64(a.vort[iv1]))/dvm
	du += T(a.eg.kh * lap)
	i := k*g.ne + e
	a.newU[i] = a.u[i] + dtT*du
}

func atmMomentumKernel(s pp.Space, args any) {
	switch a := args.(type) {
	case *momentumArgs[float64]:
		s.ParallelFor(a.n(), a.rowF)
	case *momentumArgs[float32]:
		s.ParallelFor(a.n(), a.rowF)
	default:
		panic("atmos: atm.momentum launched with wrong argument bundle")
	}
}

// --- driver scratch ---

// dyScratch is the persistent per-model dycore state: the arrays the
// original dynamicsSubstep allocated per call, the geometry tables, and the
// pre-bound argument bundles. Externally visible buffers (newU, dpsDt) are
// zero-filled each substep so decomposed runs see exactly the fresh-
// allocation semantics the rank-invariance test pins.
type dyScratch struct {
	geo *atmGeom[float64]
	eg  *edgeGeomF

	tv, phi, lnPs []float64 // thermodynamic diagnostics (always float64)
	vcx, vcy, vcz []float64
	ke, div, vort []float64
	newU, dpsDt   []float64

	bKeDiv *keDivArgs[float64]
	bVort  *vortArgs[float64]
	bMom   *momentumArgs[float64]

	m32 *dyMixed32
}

// dyMixed32 is the float32 mirror state for the mixed-precision path.
type dyMixed32 struct {
	geo *atmGeom[float32]

	u             []float32
	vcx, vcy, vcz []float32
	ke, div, vort []float32
	newU          []float32

	bKeDiv *keDivArgs[float32]
	bVort  *vortArgs[float32]
	bMom   *momentumArgs[float32]
}

// dyEnsure builds the scratch on first use.
func (m *Model) dyEnsure() *dyScratch {
	if m.dy != nil {
		return m.dy
	}
	mesh := m.Mesh
	nc, ne, nv := mesh.NCells(), mesh.NEdges(), mesh.NVertices()
	nlev := m.NLev
	geo, eg := newAtmGeomF(mesh, m.recon, nlev)
	s := &dyScratch{
		geo:  geo,
		eg:   eg,
		tv:   make([]float64, nlev*nc),
		phi:  make([]float64, nlev*nc),
		lnPs: make([]float64, nc),
		vcx:  make([]float64, nlev*nc),
		vcy:  make([]float64, nlev*nc),
		vcz:  make([]float64, nlev*nc),
		ke:   make([]float64, nlev*nc),
		div:  make([]float64, nlev*nc),
		vort: make([]float64, nlev*nv),
		newU: make([]float64, nlev*ne),
		dpsDt: make([]float64, nc),
	}
	s.bKeDiv = &keDivArgs[float64]{g: geo, vcx: s.vcx, vcy: s.vcy, vcz: s.vcz, ke: s.ke, div: s.div}
	s.bKeDiv.rowF = s.bKeDiv.cell
	s.bVort = &vortArgs[float64]{g: geo, vort: s.vort}
	s.bVort.rowF = s.bVort.vertex
	s.bMom = &momentumArgs[float64]{
		g: geo, eg: eg,
		vcx: s.vcx, vcy: s.vcy, vcz: s.vcz, ke: s.ke, div: s.div, vort: s.vort,
		tv: s.tv, phi: s.phi, lnPs: s.lnPs,
	}
	s.bMom.rowF = s.bMom.edge
	if m.kprec == pp.PrecMixed {
		g32 := narrowGeom(geo)
		m32 := &dyMixed32{
			geo:  g32,
			u:    make([]float32, nlev*ne),
			vcx:  make([]float32, nlev*nc),
			vcy:  make([]float32, nlev*nc),
			vcz:  make([]float32, nlev*nc),
			ke:   make([]float32, nlev*nc),
			div:  make([]float32, nlev*nc),
			vort: make([]float32, nlev*nv),
			newU: make([]float32, nlev*ne),
		}
		m32.bKeDiv = &keDivArgs[float32]{g: g32, u: m32.u, vcx: m32.vcx, vcy: m32.vcy, vcz: m32.vcz, ke: m32.ke, div: m32.div}
		m32.bKeDiv.rowF = m32.bKeDiv.cell
		m32.bVort = &vortArgs[float32]{g: g32, u: m32.u, vort: m32.vort}
		m32.bVort.rowF = m32.bVort.vertex
		m32.bMom = &momentumArgs[float32]{
			g: g32, eg: eg,
			u: m32.u, newU: m32.newU,
			vcx: m32.vcx, vcy: m32.vcy, vcz: m32.vcz, ke: m32.ke, div: m32.div, vort: m32.vort,
			tv: s.tv, phi: s.phi, lnPs: s.lnPs,
		}
		m32.bMom.rowF = m32.bMom.edge
		s.m32 = m32
	}
	m.dy = s
	return s
}

// ---------------------------------------------------------------------------
// Radiation: the single-source two-stream sweep.
//
// Profiling the coupled model puts the conventional suite's correlated-k
// radiation at ~45% of total CPU — nearly all of it math.Exp — which makes
// it the one physics loop worth porting into the kernel layer. Unlike the
// row kernels above it is a per-column body invoked from inside the physics
// column sweep (already a ParallelFor), so it is a generic function rather
// than a registered launch: one body, two instantiations, selected by the
// suite from the model's kernel precision.
//
// Bit-for-bit contract of the float64 instantiation: path, tau, the
// attenuation/emissivity recurrences, and the final flux expressions keep
// the historical operand grouping exactly; the per-g-point kAbs tables and
// the per-level Planck emission are hoisted out of their loops, but every
// hoisted entry is the identical expression the inner loop computed, so
// the values (and therefore every downstream bit) are unchanged.
// ---------------------------------------------------------------------------

// twoStreamRad attenuates each shortwave g-point's direct beam down the
// column and sweeps each longwave g-point's emissivity recurrence top-down.
// q and tcol are the column's specific humidity and temperature, dsig the
// sigma-layer thicknesses, ps the diagnosed surface pressure, mu0 the
// cosine of the solar zenith angle, swK/lwK the g-point absorption tables.
func twoStreamRad[T pp.Float](q, tcol, dsig []float64, ps, mu0, s0 float64, swK, lwK []float64) (gsw, glw float64) {
	nlev := len(tcol)
	// Per-layer absorber path: water vapour mass (kg/m²) plus a small dry
	// (well-mixed gas) contribution.
	path := make([]T, nlev)
	for k := 0; k < nlev; k++ {
		lm := ps * dsig[k] / Gravity
		path[k] = T(q[k]*lm + 1e-4*lm)
	}

	// --- Shortwave: direct-beam attenuation per g-point ---
	if mu0 > 0 {
		mu := T(mu0)
		var down T
		for g := range swK {
			kAbs := T(swK[g])
			var tau T
			for k := 0; k < nlev; k++ {
				tau += kAbs * path[k]
			}
			down += pp.Exp(-tau / mu)
		}
		gsw = s0 * mu0 * (float64(down) / float64(len(swK))) * (1 - 0.15) // 15% Rayleigh/aerosol loss
	}

	// --- Longwave: emissivity sweep per g-point, top down ---
	const sb = 5.67e-8
	planck := make([]T, nlev)
	for k := 0; k < nlev; k++ {
		tk := T(tcol[k])
		planck[k] = T(sb) * tk * tk * tk * tk
	}
	lit := T(1.66) // diffusivity factor
	var glwSum T
	for g := range lwK {
		kAbs := T(lwK[g])
		var d T // downward flux of this g-point (normalized weight 1)
		for k := 0; k < nlev; k++ {
			trans := pp.Exp(-kAbs * path[k] * lit)
			d = d*trans + planck[k]*(1-trans)
		}
		glwSum += d
	}
	glw = float64(glwSum) / float64(len(lwK))
	return gsw, glw
}
