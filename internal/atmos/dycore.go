package atmos

import (
	"math"

	"repro/internal/grid"
	"repro/internal/pp"
	"repro/internal/precision"
)

// The dynamical core integrates the hydrostatic primitive equations in
// sigma coordinates on the icosahedral C-grid:
//
//   - normal velocity at edges, vector-invariant form: absolute-vorticity
//     Coriolis term, kinetic-energy + geopotential gradient, surface-
//     pressure gradient, divergence damping, vector Laplacian viscosity;
//   - surface pressure by flux-form column mass continuity (exactly
//     conservative);
//   - potential temperature and specific humidity by mass-weighted upwind
//     flux-form transport on the slower tracer step, using the mass fluxes
//     accumulated over the intervening dycore substeps (so tracer mass is
//     exactly consistent with the pressure field);
//   - a pluggable physics suite on the slowest step.
//
// Step runs one dycore substep and fires the tracer and physics steps at
// the configured multiples — GRIST's 8 s / 30 s / 120 s hierarchy.

// Step advances the model by one dycore substep.
func (m *Model) Step() {
	dt := m.Cfg.DtDycore
	m.dynamicsSubstep(dt)
	m.steps++
	if m.steps%m.Cfg.TracerEvery == 0 {
		m.tracerStep()
	}
	if m.steps%m.Cfg.PhysicsEvery == 0 {
		m.physicsStep(dt * float64(m.Cfg.PhysicsEvery))
		if m.Cfg.Policy == precision.Mixed {
			for _, f := range [][]float64{m.U, m.T, m.Qv, m.Ps} {
				if err := precision.QuantizeInPlace(f, m.Cfg.PrecGroup); err != nil {
					panic(err)
				}
			}
			if m.dec != nil {
				// Group-scaled quantization is sensitive to the whole group's
				// contents, so stale regions can requantize owned values
				// differently per rank; re-exchanging the prognostics keeps
				// every halo bit-identical to its owner (self-consistent,
				// though Mixed runs are not rank-count-invariant).
				m.dec.ExchangeEdges(m.U, m.NLev)
				m.dec.ExchangeCells(m.T, m.NLev)
				m.dec.ExchangeCells(m.Qv, m.NLev)
				m.dec.ExchangeCells(m.Ps, 1)
			}
		}
	}
}

// StepModel advances one full model step (PhysicsEvery dycore substeps),
// the unit the coupler drives.
func (m *Model) StepModel() {
	for i := 0; i < m.Cfg.PhysicsEvery; i++ {
		m.Step()
	}
}

// DtModel returns the model (physics) step length in seconds.
func (m *Model) DtModel() float64 {
	return m.Cfg.DtDycore * float64(m.Cfg.PhysicsEvery)
}

// StepOutputs returns, in a fixed order, every externally visible array
// StepModel mutates: the prognostics and the physics export fields. A
// single-writer schedule replicates one rank's step by copying these
// between ranks. The internal flux accumulators and substep counter are
// deliberately excluded — they are consumed only by the rank that computes
// StepModel and by rank-0-written restart files.
func (m *Model) StepOutputs() [][]float64 {
	return [][]float64{
		m.U, m.T, m.Qv, m.Ps,
		m.Precip, m.TauX, m.TauY, m.SHF, m.LHF, m.GSW, m.GLW,
	}
}

// accFlux accumulates time-integrated per-level edge mass fluxes between
// tracer steps (kg/s · s = kg), and the per-level cell mass divergence
// integrals for the vertical redistribution.
type accFlux struct {
	edge []float64 // [nlev*nEdges] ∫ F_e dt
	dps  []float64 // [nCells] ∫ dps/dt dt (pressure change since last tracer step)
}

// FluxAccumulators exposes the tracer-window mass-flux accumulators for
// restart files. Both are nil before the first dycore substep.
func (m *Model) FluxAccumulators() (edge, dps []float64) {
	if m.flux == nil {
		return nil, nil
	}
	return m.flux.edge, m.flux.dps
}

// RestoreState reinstates the substep counter and flux accumulators from a
// restart file, so a restarted run fires its tracer and physics steps on
// exactly the original schedule.
func (m *Model) RestoreState(steps int, edge, dps []float64) {
	m.steps = steps
	if edge == nil && dps == nil {
		return
	}
	ne, nc := m.Mesh.NEdges(), m.Mesh.NCells()
	if len(edge) != m.NLev*ne || len(dps) != nc {
		panic("atmos: restart flux accumulator size mismatch")
	}
	m.flux = &accFlux{
		edge: append([]float64(nil), edge...),
		dps:  append([]float64(nil), dps...),
	}
}

// dynamicsSubstep is the thin driver over the registered kernels in
// kernels.go: it refreshes the float64 thermodynamic diagnostics, launches
// the cell/vertex/edge kernels at the configured precision, and keeps the
// continuity update (exact conservation) in float64. The float64 path is
// bit-for-bit the pre-refactor sweep; the mixed path runs the same kernel
// bodies at float32 with the sensitive differences still formed in float64.
func (m *Model) dynamicsSubstep(dt float64) {
	mesh := m.Mesh
	nc, ne := mesh.NCells(), mesh.NEdges()
	nlev := m.NLev
	re := grid.EarthRadius

	if m.flux == nil {
		m.flux = &accFlux{
			edge: make([]float64, nlev*ne),
			dps:  make([]float64, nc),
		}
	}
	s := m.dyEnsure()
	s.eg.bindStep(dt, m.Cfg.Div4, m.Cfg.KhMomentum)

	// --- Diagnostics needed by the momentum equation ---

	// Virtual temperature and geopotential at full levels — the Log-based
	// vertical integral stays float64 at every kernel precision.
	tv, phi := s.tv, s.phi
	m.forExtCells(func(c int) {
		below := 0.0 // geopotential at the interface below the current layer
		for k := nlev - 1; k >= 0; k-- {
			i := k*nc + c
			tv[i] = m.T[i] * (1 + 0.608*m.Qv[i])
			sTop := m.sigInt(k)
			sBot := m.sigInt(k + 1)
			phi[i] = below + Rd*tv[i]*math.Log(sBot/m.Sig[k])
			below += Rd * tv[i] * math.Log(sBot/sTop)
		}
	})
	// Per-cell ln(ps), hoisted out of the per-edge momentum loop: the same
	// math.Log on the same input, so every edge reads identical bits.
	lnPs := s.lnPs
	m.forExtCells(func(c int) { lnPs[c] = math.Log(m.Ps[c]) })

	// --- Cell diagnostics, vorticity, momentum: registered kernels ---
	var cells, verts, edges []int
	if m.dec != nil {
		cells, verts, edges = m.dec.ExtCells, m.dec.CompVerts, m.dec.CompEdges
	}
	if m.kprec == pp.PrecMixed {
		m32 := s.m32
		pp.Convert32(m32.u, m.U)
		for i := range m32.newU {
			m32.newU[i] = 0
		}
		m32.bKeDiv.cells = cells
		pp.Kernels.MustLaunch(hAtmKeDiv, m.Sp, m32.bKeDiv)
		m32.bVort.verts = verts
		pp.Kernels.MustLaunch(hAtmVort, m.Sp, m32.bVort)
		m32.bMom.edges = edges
		pp.Kernels.MustLaunch(hAtmMomentum, m.Sp, m32.bMom)
	} else {
		for i := range s.newU {
			s.newU[i] = 0
		}
		s.bKeDiv.u, s.bKeDiv.cells = m.U, cells
		pp.Kernels.MustLaunch(hAtmKeDiv, m.Sp, s.bKeDiv)
		s.bVort.u, s.bVort.verts = m.U, verts
		pp.Kernels.MustLaunch(hAtmVort, m.Sp, s.bVort)
		s.bMom.u, s.bMom.newU, s.bMom.edges = m.U, s.newU, edges
		pp.Kernels.MustLaunch(hAtmMomentum, m.Sp, s.bMom)
		s.bKeDiv.u, s.bVort.u, s.bMom.u, s.bMom.newU = nil, nil, nil, nil
	}

	// --- Continuity: per-level mass fluxes and surface pressure ---
	// Mass per area of layer k is ps·Δσ_k/g; the flux through an edge uses
	// upwind ps, evaluated with the *pre-update* velocity for consistency
	// with the accumulated tracer fluxes.
	dpsDt := s.dpsDt
	for i := range dpsDt {
		dpsDt[i] = 0
	}
	m.forOwnedCells(func(c int) {
		var sum float64
		for k := 0; k < nlev; k++ {
			uLvl := m.U[k*ne : (k+1)*ne]
			for j, e := range mesh.EdgesOnCell[c] {
				sign := float64(mesh.EdgeSignOnCell[c][j])
				u := uLvl[e]
				// Upwind surface pressure.
				var psUp float64
				if sign*u >= 0 {
					psUp = m.Ps[c]
				} else {
					psUp = m.Ps[mesh.CellsOnCell[c][j]]
				}
				sum += sign * u * psUp * m.DSig[k] * mesh.Dv[e] * re
			}
		}
		dpsDt[c] = -sum / (mesh.AreaCell[c] * re * re)
	})
	// Edge flux accumulation runs over edges (each edge once); decomposed,
	// every edge of an owned cell is a computed edge, so the accumulators the
	// tracer step reads are always locally valid.
	m.forCompEdges(func(e int) {
		c1, c2 := mesh.CellsOnEdge[e][0], mesh.CellsOnEdge[e][1]
		for k := 0; k < nlev; k++ {
			u := m.U[k*ne+e]
			var psUp float64
			if u >= 0 {
				psUp = m.Ps[c1]
			} else {
				psUp = m.Ps[c2]
			}
			// kg/s through the edge (positive c1→c2), times dt.
			m.flux.edge[k*ne+e] += dt * u * psUp * m.DSig[k] / Gravity * m.Mesh.Dv[e] * re
		}
	})
	m.forOwnedCells(func(c int) {
		m.Ps[c] += dt * dpsDt[c]
		m.flux.dps[c] += dt * dpsDt[c]
	})
	// Publish the momentum update. The float64 path swaps the persistent
	// scratch in (the retired array becomes next substep's scratch); the
	// mixed path widens the float32 result back into the model state.
	if m.kprec == pp.PrecMixed {
		pp.Convert64(m.U, s.m32.newU)
	} else {
		m.U, s.newU = s.newU, m.U
	}
	if m.dec != nil {
		// Halo barrier: refresh Ps on the ring-1 halo and U on the extended
		// edges the neighbours own, so the next substep's stencils read the
		// owners' freshly computed values.
		m.dec.ExchangeCells(m.Ps, 1)
		m.dec.ExchangeEdges(m.U, nlev)
	}
}

// sigInt returns the sigma value of interface k (k = 0 is the model top).
func (m *Model) sigInt(k int) float64 {
	const top = 0.05
	return top + (1-top)*float64(k)/float64(m.NLev)
}

// tracerStep transports potential-temperature-carrying T and moisture with
// the accumulated mass fluxes. Transport is formulated on θ = T·(p0/pσ)^κ
// so that adiabatic compression is handled by the coordinate, then mapped
// back to T.
func (m *Model) tracerStep() {
	nc := m.Mesh.NCells()
	nlev := m.NLev

	// Decomposed, the dps accumulator was only summed on owned cells; the
	// halo needs the owners' values before psOld (and through it θ) can be
	// evaluated on the extended patch.
	if m.dec != nil {
		m.dec.ExchangeCells(m.flux.dps, 1)
	}

	// Pre-update masses: ps before this tracer window = Ps - accumulated dps.
	// The full-range loop is kept in both modes: outside the extended patch
	// the inputs are stale-but-finite and the result is never read.
	psOld := make([]float64, nc)
	for c := 0; c < nc; c++ {
		psOld[c] = m.Ps[c] - m.flux.dps[c]
	}

	// θ and qv as mass-weighted quantities.
	theta := make([]float64, nlev*nc)
	m.forExtCells(func(c int) {
		for k := 0; k < nlev; k++ {
			i := k*nc + c
			theta[i] = m.T[i] * math.Pow(P0/(m.Sig[k]*psOld[c]), Kappa)
		}
	})

	newTheta := m.transport(theta, psOld)
	newQv := m.transport(m.Qv, psOld)

	m.forOwnedCells(func(c int) {
		for k := 0; k < nlev; k++ {
			i := k*nc + c
			m.T[i] = newTheta[i] * math.Pow(m.Sig[k]*m.Ps[c]/P0, Kappa)
			m.Qv[i] = math.Max(newQv[i], 0)
		}
	})
	if m.dec != nil {
		m.dec.ExchangeCells(m.T, nlev)
		m.dec.ExchangeCells(m.Qv, nlev)
	}

	// Reset accumulators.
	for i := range m.flux.edge {
		m.flux.edge[i] = 0
	}
	for i := range m.flux.dps {
		m.flux.dps[i] = 0
	}
}

// transport advances one tracer with the accumulated horizontal mass fluxes
// plus the implied vertical redistribution, conserving Σ M·X exactly.
func (m *Model) transport(x []float64, psOld []float64) []float64 {
	mesh := m.Mesh
	nc, ne := mesh.NCells(), mesh.NEdges()
	nlev := m.NLev
	re := grid.EarthRadius

	out := make([]float64, len(x))
	// Per-cell: new mass content = old content − horizontal flux divergence
	// − vertical flux divergence, then divide by new mass. Owned cells only:
	// the upwind stencil reads x on the ring-1 halo, and the caller
	// exchanges the written-back tracers afterwards.
	m.forOwnedCells(func(c int) {
		area := mesh.AreaCell[c] * re * re
		// Horizontal: per-level content change (kg·X).
		dContent := make([]float64, nlev)
		hdiv := make([]float64, nlev) // accumulated mass divergence per level (kg)
		for k := 0; k < nlev; k++ {
			for j, e := range mesh.EdgesOnCell[c] {
				sign := float64(mesh.EdgeSignOnCell[c][j])
				fm := sign * m.flux.edge[k*ne+e] // kg leaving through e if > 0
				var xUp float64
				if fm >= 0 {
					xUp = x[k*nc+c]
				} else {
					xUp = x[k*nc+mesh.CellsOnCell[c][j]]
				}
				dContent[k] -= fm * xUp
				hdiv[k] -= fm
			}
		}
		// Vertical redistribution: layer k's target mass is ps_new·Δσ/g·A.
		// The interface mass flux W (downward positive, kg over the window)
		// follows from per-layer continuity; upwind X across interfaces.
		dpsA := (m.Ps[c] - psOld[c]) * area / Gravity
		w := 0.0 // flux through the top of the current layer
		for k := 0; k < nlev; k++ {
			// Mass balance of layer k: ΔM_k = hdiv_k + w_top − w_bot
			// with ΔM_k = Δσ_k·Δps·A/g  ⇒  w_bot = hdiv_k + w_top − ΔM_k.
			wBot := hdiv[k] + w - m.DSig[k]*dpsA
			if k == nlev-1 {
				wBot = 0 // closed lower boundary (telescopes exactly)
			}
			// Upwind interface values.
			if w > 0 { // mass entering from above
				if k > 0 {
					dContent[k] += w * x[(k-1)*nc+c]
				}
			} else if k > 0 {
				dContent[k] += w * x[k*nc+c]
			}
			if wBot > 0 { // mass leaving downward
				dContent[k] -= wBot * x[k*nc+c]
			} else if k < nlev-1 {
				dContent[k] -= wBot * x[(k+1)*nc+c]
			}
			oldMass := psOld[c] * m.DSig[k] / Gravity * area
			newMass := m.Ps[c] * m.DSig[k] / Gravity * area
			out[k*nc+c] = (x[k*nc+c]*oldMass + dContent[k]) / newMass
			w = wBot
		}
	})
	return out
}

// physicsStep runs the pluggable suite column by column and applies its
// tendencies; cell-vector momentum tendencies project back onto edges.
func (m *Model) physicsStep(dt float64) {
	mesh := m.Mesh
	nc, ne := mesh.NCells(), mesh.NEdges()
	nlev := m.NLev

	duCell := make([]float64, nc)
	dvCell := make([]float64, nc)

	// Physics columns run on the extended patch: the halo columns are
	// recomputed redundantly from inputs the exchanges keep bit-identical to
	// their owners', so the column outputs (T, Qv, and the seven export
	// fields) are halo-valid without any post-physics cell exchange.
	m.forExtCells(func(c int) {
		in := ColumnIn{
			U: make([]float64, nlev), V: make([]float64, nlev),
			T: make([]float64, nlev), Q: make([]float64, nlev),
			P:     make([]float64, nlev),
			Lat:   mesh.LatCell[c],
			TSkin: m.SST[c],
			CosZ:  m.cosZenith(c),
			Land:  m.IsLand[c],
			Ice:   m.IceFrac[c],
		}
		for k := 0; k < nlev; k++ {
			uLvl := m.U[k*ne : (k+1)*ne]
			in.U[k], in.V[k] = m.recon.CellUV(uLvl, c)
			in.T[k] = m.T[k*nc+c]
			in.Q[k] = m.Qv[k*nc+c]
			in.P[k] = m.Sig[k] * m.Ps[c]
		}
		var out ColumnOut
		out.DT = make([]float64, nlev)
		out.DQ = make([]float64, nlev)
		out.DU = make([]float64, nlev)
		out.DV = make([]float64, nlev)
		m.Physics.Column(in, dt, &out)
		for k := 0; k < nlev; k++ {
			i := k*nc + c
			m.T[i] += dt * out.DT[k]
			m.Qv[i] = math.Max(m.Qv[i]+dt*out.DQ[k], 0)
		}
		// Lowest-level momentum tendency represents surface drag; store the
		// cell tendency for edge projection of the whole column via the
		// lowest level (dominant), and the fluxes for export.
		duCell[c] = out.DU[nlev-1]
		dvCell[c] = out.DV[nlev-1]
		m.Precip[c] = out.Precip
		m.TauX[c] = out.TauX
		m.TauY[c] = out.TauY
		m.SHF[c] = out.SHF
		m.LHF[c] = out.LHF
		m.GSW[c] = out.GSW
		m.GLW[c] = out.GLW

		// Upper-level momentum tendencies applied through the cell pair
		// averaging below need per-level storage; the conventional and AI
		// suites only produce boundary-layer drag, so the lowest level
		// carries the signal.
	})

	// Project the boundary-layer momentum tendency onto lowest-level edges.
	kB := nlev - 1
	m.forCompEdges(func(e int) {
		c1, c2 := mesh.CellsOnEdge[e][0], mesh.CellsOnEdge[e][1]
		n := m.recon.normal3[e]
		add := func(c int) float64 {
			vec := m.recon.east[c].Scale(duCell[c]).Add(m.recon.north[c].Scale(dvCell[c]))
			return vec.Dot(n)
		}
		m.U[kB*ne+e] += dt * 0.5 * (add(c1) + add(c2))
	})
	if m.dec != nil {
		// Only the lowest level changed; exchange just that contiguous window
		// to refresh the received extended edges the projection left stale.
		m.dec.ExchangeEdges(m.U[kB*ne:(kB+1)*ne], 1)
	}
}

// cosZenith returns the diurnally-averaged cosine of the solar zenith angle
// for the model's perpetual-equinox insolation: cos(lat)/π, the daily mean
// at equinox. Using the daily mean (rather than an instantaneous sun fixed
// over one meridian) keeps every longitude climatologically equivalent,
// which regional experiments such as the Doksuri hindcast rely on.
func (m *Model) cosZenith(c int) float64 {
	cz := math.Cos(m.Mesh.LatCell[c]) / math.Pi
	if cz < 0 {
		cz = 0
	}
	return cz
}
