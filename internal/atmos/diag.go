package atmos

import (
	"math"

	"repro/internal/grid"
)

// TotalMass returns the global atmospheric mass (kg), conserved exactly by
// the flux-form continuity equation.
func (m *Model) TotalMass() float64 {
	re2 := grid.EarthRadius * grid.EarthRadius
	var sum float64
	for c := 0; c < m.Mesh.NCells(); c++ {
		sum += m.Ps[c] / Gravity * m.Mesh.AreaCell[c] * re2
	}
	return sum
}

// TotalMoisture returns the global water-vapour mass (kg), changed only by
// evaporation and precipitation.
func (m *Model) TotalMoisture() float64 {
	nc := m.Mesh.NCells()
	re2 := grid.EarthRadius * grid.EarthRadius
	var sum float64
	for c := 0; c < nc; c++ {
		colMass := m.Ps[c] / Gravity * m.Mesh.AreaCell[c] * re2
		for k := 0; k < m.NLev; k++ {
			sum += m.Qv[k*nc+c] * colMass * m.DSig[k]
		}
	}
	return sum
}

// MassWeightedTheta returns the global integral of potential temperature
// times mass, the quantity the tracer transport conserves between physics
// calls.
func (m *Model) MassWeightedTheta() float64 {
	nc := m.Mesh.NCells()
	re2 := grid.EarthRadius * grid.EarthRadius
	var sum float64
	for c := 0; c < nc; c++ {
		colMass := m.Ps[c] / Gravity * m.Mesh.AreaCell[c] * re2
		for k := 0; k < m.NLev; k++ {
			theta := m.T[k*nc+c] * math.Pow(P0/(m.Sig[k]*m.Ps[c]), Kappa)
			sum += theta * colMass * m.DSig[k]
		}
	}
	return sum
}

// MaxWind returns the largest reconstructed wind speed at any cell on any
// level (m/s) — the stability canary.
func (m *Model) MaxWind() float64 {
	nc, ne := m.Mesh.NCells(), m.Mesh.NEdges()
	var worst float64
	for k := 0; k < m.NLev; k++ {
		uLvl := m.U[k*ne : (k+1)*ne]
		for c := 0; c < nc; c++ {
			u, v := m.recon.CellUV(uLvl, c)
			if s := math.Hypot(u, v); s > worst {
				worst = s
			}
		}
	}
	return worst
}

// Wind10m returns the lowest-level zonal and meridional wind at every cell,
// the paper's 10 m wind diagnostic (Fig 6a/6b).
func (m *Model) Wind10m() (u, v []float64) {
	nc := m.Mesh.NCells()
	u = make([]float64, nc)
	v = make([]float64, nc)
	m.Wind10mInto(u, v)
	return u, v
}

// Wind10mInto fills caller-owned buffers with the lowest-level wind — the
// allocation-free form the coupler's hot path uses. Decomposed, it fills the
// extended patch (owned + halo), the cells whose edges are locally valid;
// everything the surface-flux and coupling loops read lies inside it.
func (m *Model) Wind10mInto(u, v []float64) {
	ne := m.Mesh.NEdges()
	kb := m.NLev - 1
	uLvl := m.U[kb*ne : (kb+1)*ne]
	fill := func(c int) { u[c], v[c] = m.recon.CellUV(uLvl, c) }
	if m.dec == nil {
		for c := 0; c < m.Mesh.NCells(); c++ {
			fill(c)
		}
		return
	}
	for _, c := range m.dec.ExtCells {
		fill(c)
	}
}

// MaxWindLocal returns the largest reconstructed wind speed over this rank's
// owned cells (all cells when replicated). Owned regions partition the mesh,
// so a max-allreduce of the local values reproduces MaxWind exactly.
func (m *Model) MaxWindLocal() float64 {
	ne := m.Mesh.NEdges()
	var worst float64
	scan := func(c int) {
		for k := 0; k < m.NLev; k++ {
			uLvl := m.U[k*ne : (k+1)*ne]
			u, v := m.recon.CellUV(uLvl, c)
			if s := math.Hypot(u, v); s > worst {
				worst = s
			}
		}
	}
	if m.dec == nil {
		for c := 0; c < m.Mesh.NCells(); c++ {
			scan(c)
		}
		return worst
	}
	for c := m.dec.C0; c < m.dec.C1; c++ {
		scan(c)
	}
	return worst
}

// TotalMoistureLocal returns the water-vapour mass over this rank's owned
// cells; summed across ranks it equals TotalMoisture on a replicated run.
func (m *Model) TotalMoistureLocal() float64 {
	nc := m.Mesh.NCells()
	re2 := grid.EarthRadius * grid.EarthRadius
	c0, c1 := 0, nc
	if m.dec != nil {
		c0, c1 = m.dec.C0, m.dec.C1
	}
	var sum float64
	for c := c0; c < c1; c++ {
		colMass := m.Ps[c] / Gravity * m.Mesh.AreaCell[c] * re2
		for k := 0; k < m.NLev; k++ {
			sum += m.Qv[k*nc+c] * colMass * m.DSig[k]
		}
	}
	return sum
}

// SurfaceVorticity returns the lowest-level relative vorticity interpolated
// to cells (1/s), used by the storm tracker.
func (m *Model) SurfaceVorticity() []float64 {
	mesh := m.Mesh
	nc, ne, nv := mesh.NCells(), mesh.NEdges(), mesh.NVertices()
	kb := m.NLev - 1
	uLvl := m.U[kb*ne : (kb+1)*ne]
	re := grid.EarthRadius

	vortV := make([]float64, nv)
	for v := 0; v < nv; v++ {
		var circ float64
		for j := 0; j < 3; j++ {
			e := mesh.EdgesOnVertex[v][j]
			circ += float64(mesh.EdgeSignOnVtx[v][j]) * uLvl[e] * mesh.Dc[e] * re
		}
		vortV[v] = circ / (mesh.AreaDual[v] * re * re)
	}
	out := make([]float64, nc)
	cnt := make([]int, nc)
	for v := 0; v < nv; v++ {
		for _, c := range mesh.CellsOnVertex[v] {
			out[c] += vortV[v]
			cnt[c]++
		}
	}
	for c := 0; c < nc; c++ {
		if cnt[c] > 0 {
			out[c] /= float64(cnt[c])
		}
	}
	return out
}

// MinPs returns the lowest surface pressure and the cell holding it — the
// storm-center diagnostic.
func (m *Model) MinPs() (float64, int) {
	best, at := math.Inf(1), -1
	for c, p := range m.Ps {
		if p < best {
			best, at = p, c
		}
	}
	return best, at
}

// MinPsLocal returns the lowest surface pressure over this rank's owned
// cells (all cells when replicated). Owned ranges partition the mesh, so a
// min-allreduce of the local values reproduces MinPs.
func (m *Model) MinPsLocal() float64 {
	best := math.Inf(1)
	c0, c1 := 0, m.Mesh.NCells()
	if m.dec != nil {
		c0, c1 = m.dec.C0, m.dec.C1
	}
	for c := c0; c < c1; c++ {
		if m.Ps[c] < best {
			best = m.Ps[c]
		}
	}
	return best
}

// GlobalPrecipRate returns the area-weighted mean precipitation rate
// (kg/m²/s ≈ mm/s).
func (m *Model) GlobalPrecipRate() float64 {
	var num, den float64
	for c := 0; c < m.Mesh.NCells(); c++ {
		num += m.Precip[c] * m.Mesh.AreaCell[c]
		den += m.Mesh.AreaCell[c]
	}
	return num / den
}

// TotalCloudProxy returns a 0–1 cloud-fraction-like field from column
// moisture, the Fig 1b visualization quantity.
func (m *Model) TotalCloudProxy() []float64 {
	nc := m.Mesh.NCells()
	out := make([]float64, nc)
	for c := 0; c < nc; c++ {
		var w float64
		for k := 0; k < m.NLev; k++ {
			w += m.Qv[k*nc+c] * m.Ps[c] * m.DSig[k] / Gravity
		}
		out[c] = math.Min(1, w/50)
	}
	return out
}
