// Package atmos is the GRIST-substitute atmosphere general circulation
// model: a hydrostatic primitive-equation dynamical core in sigma
// coordinates on the icosahedral cell/edge/vertex mesh, with GRIST's
// three-rate time stepping (fast dycore substeps, slower tracer transport,
// slowest physics — the paper's 8 s / 30 s / 120 s hierarchy), flux-form
// conservative mass and moisture transport, and a pluggable physics suite:
// either the conventional parameterizations or the AI-powered suite of
// §5.2.1, both behind the same physics–dynamics coupling interface.
//
// Parallelism follows the paper's division of labour: the atmosphere's
// heavy lifting is thread-level (OpenMP/SWGOMP on the CPEs), which the
// reproduction expresses by running every mesh sweep through a pp execution
// space; the distributed-memory layer is exercised by the ocean component.
package atmos

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/par"
	"repro/internal/pp"
	"repro/internal/precision"
)

// Physical constants.
const (
	Gravity = 9.80616
	Rd      = 287.04  // gas constant, dry air
	Cpd     = 1004.64 // heat capacity, dry air
	P0      = 1.0e5   // reference surface pressure, Pa
	Kappa   = Rd / Cpd
	LatVap  = 2.5e6 // latent heat of vaporization, J/kg
)

// Config sets resolution-independent model parameters.
type Config struct {
	DtDycore     float64 // seconds per dynamics substep
	TracerEvery  int     // dycore substeps per tracer step (paper: 30 s / 8 s ≈ 4)
	PhysicsEvery int     // dycore substeps per physics step (paper: 120 s / 8 s = 15)
	Div4         float64 // divergence damping coefficient (nondimensional)
	Kh           float64 // horizontal diffusion for T, qv (m²/s)
	KhMomentum   float64 // horizontal viscosity for u (m²/s)
	Policy       precision.Policy
	PrecGroup    int
}

// DefaultConfig returns the standard test configuration: the paper's
// 1 : 3.75 : 15 sub-step ratios rounded to integers, laptop-scale dt.
func DefaultConfig() Config {
	return Config{
		DtDycore:     120,
		TracerEvery:  4,
		PhysicsEvery: 15,
		Div4:         0.02,
		Kh:           1.0e5,
		KhMomentum:   2.0e5,
		Policy:       precision.FP64,
		PrecGroup:    64,
	}
}

// Model is the atmosphere state.
type Model struct {
	Mesh *grid.IcosMesh
	Cfg  Config
	Sp   pp.Space
	NLev int

	// Sigma full-level values and layer thicknesses (Δσ), k=0 at the top.
	Sig  []float64
	DSig []float64

	// Prognostics. Cell-centred scalars are [k*nCells + c]; the normal
	// velocity is [k*nEdges + e].
	Ps []float64 // surface pressure [nCells]
	T  []float64 // temperature [nlev*nCells]
	Qv []float64 // specific humidity [nlev*nCells]
	U  []float64 // edge-normal velocity [nlev*nEdges]

	// Surface boundary conditions (imported from ocean/ice via the coupler,
	// or from the land model directly).
	SST     []float64 // surface temperature under each column [nCells], K
	IceFrac []float64 // sea-ice fraction [nCells]
	IsLand  []bool    // land mask on atmosphere cells [nCells]

	// Physics outputs accumulated for export.
	Precip []float64 // precipitation rate [nCells], kg/m²/s
	TauX   []float64 // surface zonal wind stress on cells, N/m²
	TauY   []float64
	SHF    []float64 // sensible heat flux to the surface owner (atm→sfc positive down)
	LHF    []float64 // latent heat flux
	GSW    []float64 // downward shortwave at surface (radiation diagnosis output)
	GLW    []float64 // downward longwave

	Physics Suite
	recon   *reconstructor
	flux    *accFlux
	steps   int
	dec     *grid.IcosDecomp
	kprec   pp.Prec // kernel precision, derived from the execution space
	dy      *dyScratch
}

// SetDecomp switches the model to decomposed stepping: every sweep covers
// only this rank's patch (owned cells plus the ring-1 halo required by the
// stencils), with halo exchanges at the substep boundaries. A nil decomp —
// the default, and the only valid state at 1 rank — keeps the original
// global-array path verbatim, which the golden tests pin bit-for-bit.
func (m *Model) SetDecomp(d *grid.IcosDecomp) { m.dec = d }

// Decomp returns the active decomposition (nil when replicated).
func (m *Model) Decomp() *grid.IcosDecomp { return m.dec }

// Decompose partitions the mesh over the communicator and switches the
// model to decomposed stepping, returning the partition behind the shared
// grid.Decomp contract so callers never name the concrete icosahedral type.
func (m *Model) Decompose(c *par.Comm) (grid.Decomp, error) {
	d, err := grid.NewIcosDecomp(m.Mesh, c)
	if err != nil {
		return nil, err
	}
	m.dec = d
	return d, nil
}

// The loop helpers below pick the iteration set for each sweep class. In the
// replicated case they are exactly the original full-range ParallelFor, so
// the 1-rank answer is bit-identical by construction; decomposed, they visit
// the listed subset through the same execution space. Per-cell arithmetic is
// identical either way, which is what makes the decomposed answer
// rank-count-invariant bit-for-bit.

// forExtCells sweeps the extended patch: owned cells plus the ring-1 halo.
// Cell diagnostics (tv, phi, ke, div, θ) and physics columns run here so
// that edge and ownership stencils never read a stale cell.
func (m *Model) forExtCells(fn func(c int)) {
	if m.dec == nil {
		m.Sp.ParallelFor(m.Mesh.NCells(), fn)
		return
	}
	ext := m.dec.ExtCells
	m.Sp.ParallelFor(len(ext), func(i int) { fn(ext[i]) })
}

// forOwnedCells sweeps only the owned contiguous range — prognostic
// writebacks (Ps, T, Qv) whose halo copies arrive by exchange.
func (m *Model) forOwnedCells(fn func(c int)) {
	if m.dec == nil {
		m.Sp.ParallelFor(m.Mesh.NCells(), fn)
		return
	}
	c0 := m.dec.C0
	m.Sp.ParallelFor(m.dec.NOwned(), func(i int) { fn(c0 + i) })
}

// forCompEdges sweeps the computed edges: every edge with at least one owned
// endpoint. Adjacent ranks compute the shared boundary edges redundantly
// from identical inputs, so no edge-tendency exchange is needed.
func (m *Model) forCompEdges(fn func(e int)) {
	if m.dec == nil {
		m.Sp.ParallelFor(m.Mesh.NEdges(), fn)
		return
	}
	ce := m.dec.CompEdges
	m.Sp.ParallelFor(len(ce), func(i int) { fn(ce[i]) })
}

// forCompVerts sweeps the vertices of the computed edges; their three-cell
// and three-edge stencils stay inside the extended sets.
func (m *Model) forCompVerts(fn func(v int)) {
	if m.dec == nil {
		m.Sp.ParallelFor(m.Mesh.NVertices(), fn)
		return
	}
	cv := m.dec.CompVerts
	m.Sp.ParallelFor(len(cv), func(i int) { fn(cv[i]) })
}

// New builds the model at the given mesh refinement level with nlev levels.
func New(level, nlev int, cfg Config, sp pp.Space) (*Model, error) {
	if nlev < 2 {
		return nil, fmt.Errorf("atmos: need at least 2 levels, got %d", nlev)
	}
	if cfg.DtDycore <= 0 || cfg.TracerEvery <= 0 || cfg.PhysicsEvery <= 0 {
		return nil, fmt.Errorf("atmos: non-positive stepping configuration")
	}
	mesh, err := grid.NewIcosMesh(level)
	if err != nil {
		return nil, err
	}
	if sp == nil {
		sp = pp.Serial{}
	}
	m := &Model{Mesh: mesh, Cfg: cfg, Sp: sp, NLev: nlev, kprec: pp.PrecOf(sp)}

	// Sigma layers: uniform interfaces from σ=0.05 (model top) to 1.
	m.Sig = make([]float64, nlev)
	m.DSig = make([]float64, nlev)
	top := 0.05
	for k := 0; k < nlev; k++ {
		si0 := top + (1-top)*float64(k)/float64(nlev)
		si1 := top + (1-top)*float64(k+1)/float64(nlev)
		m.Sig[k] = 0.5 * (si0 + si1)
		m.DSig[k] = si1 - si0
	}

	nc, ne := mesh.NCells(), mesh.NEdges()
	m.Ps = make([]float64, nc)
	m.T = make([]float64, nlev*nc)
	m.Qv = make([]float64, nlev*nc)
	m.U = make([]float64, nlev*ne)
	m.SST = make([]float64, nc)
	m.IceFrac = make([]float64, nc)
	m.IsLand = make([]bool, nc)
	m.Precip = make([]float64, nc)
	m.TauX = make([]float64, nc)
	m.TauY = make([]float64, nc)
	m.SHF = make([]float64, nc)
	m.LHF = make([]float64, nc)
	m.GSW = make([]float64, nc)
	m.GLW = make([]float64, nc)

	for c := 0; c < nc; c++ {
		m.IsLand[c] = grid.IsLand(m.Mesh.LonCell[c], m.Mesh.LatCell[c])
	}

	m.recon = newReconstructor(mesh)
	m.Physics = NewConventionalSuite(m)
	m.InitBaroclinicRest()
	return m, nil
}

// InitBaroclinicRest sets the canonical initial condition: a resting
// atmosphere with a latitude-dependent temperature structure near radiative
// equilibrium, moist near the tropical surface, ps = P0 everywhere.
func (m *Model) InitBaroclinicRest() {
	nc := m.Mesh.NCells()
	for c := 0; c < nc; c++ {
		m.Ps[c] = P0
		lat := m.Mesh.LatCell[c]
		tSkin := 273.15 + 28*math.Cos(lat)*math.Cos(lat)
		for k := 0; k < m.NLev; k++ {
			i := k*nc + c
			m.T[i] = equilibriumT(lat, m.Sig[k])
			if sig := m.Sig[k]; sig > 0.85 {
				w := (sig - 0.85) / 0.15
				m.T[i] = w*(tSkin-1) + (1-w)*m.T[i]
			}
			// Moisture: ~80 % of saturation in the lowest layers, drying
			// upward.
			p := m.Sig[k] * P0
			m.Qv[i] = 0.8 * qsat(m.T[i], p) * math.Pow(m.Sig[k], 3)
		}
		m.SST[c] = 273.15 + 28*math.Cos(lat)*math.Cos(lat)
	}
	for i := range m.U {
		m.U[i] = 0
	}
}

// equilibriumT is the Held–Suarez radiative-equilibrium temperature used
// both for initialization and by the conventional suite's radiation.
func equilibriumT(lat, sig float64) float64 {
	p := sig * P0
	t := (315 - 60*sinSq(lat) - 10*math.Log(p/P0)*cosSq(lat)) * math.Pow(p/P0, Kappa)
	if t < 200 {
		t = 200
	}
	return t
}

func sinSq(x float64) float64 { s := math.Sin(x); return s * s }
func cosSq(x float64) float64 { c := math.Cos(x); return c * c }

// qsat returns saturation specific humidity (kg/kg) at temperature T (K)
// and pressure p (Pa), via the Tetens formula.
func qsat(t, p float64) float64 {
	es := 610.78 * math.Exp(17.27*(t-273.15)/(t-35.85))
	q := 0.622 * es / math.Max(p-0.378*es, 1)
	return math.Min(q, 0.08)
}

// Steps returns the number of dycore substeps taken.
func (m *Model) Steps() int { return m.steps }

// SigmaP returns the pressure at full level k of column c.
func (m *Model) SigmaP(k, c int) float64 { return m.Sig[k] * m.Ps[c] }
