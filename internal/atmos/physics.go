package atmos

import (
	"math"
	"sync"

	"repro/internal/pp"
)

// ColumnIn is the physics–dynamics coupling interface input (§5.2.1): the
// AI tendency module takes horizontal wind, temperature, specific humidity,
// and pressure; the AI radiation diagnosis additionally takes the skin
// temperature and the cosine of the solar zenith angle. The conventional
// suite consumes the same contract, which is what makes the suites
// interchangeable.
type ColumnIn struct {
	U, V, T, Q, P []float64 // per level, k = 0 at the model top
	Lat           float64
	TSkin         float64 // surface (skin) temperature, K
	CosZ          float64 // cosine of solar zenith angle
	Land          bool
	Ice           float64 // sea-ice fraction
}

// ColumnOut carries the suite's tendencies and diagnosed surface fields.
type ColumnOut struct {
	DT, DQ, DU, DV []float64 // tendencies per level, per second
	GSW, GLW       float64   // downward shortwave/longwave at the surface, W/m²
	Precip         float64   // precipitation rate, kg/m²/s
	TauX, TauY     float64   // surface wind stress, N/m²
	SHF, LHF       float64   // sensible/latent heat flux, W/m² (positive up)
}

// Suite is the pluggable physics parameterization suite.
type Suite interface {
	Name() string
	// Column computes tendencies for one column over timestep dt. The out
	// slices are pre-allocated by the caller.
	Column(in ColumnIn, dt float64, out *ColumnOut)
}

// ConventionalSuite is the traditional parameterization package the AI
// suite replaces: Held–Suarez radiation (Newtonian relaxation toward the
// analytic equilibrium temperature) and boundary-layer Rayleigh friction,
// plus bulk surface fluxes, surface evaporation, large-scale condensation
// with latent heating, and an empirical surface radiation diagnosis.
type ConventionalSuite struct {
	m *Model

	// Held–Suarez timescales.
	TauRad  float64 // background radiative relaxation, s (40 days)
	TauRadT float64 // tropical boundary-layer relaxation, s (4 days)
	TauFric float64 // boundary-layer friction, s (1 day)
	SigmaB  float64 // boundary-layer top in sigma

	// Bulk exchange coefficients.
	Cd float64 // drag
	Ch float64 // sensible heat
	Ce float64 // evaporation

	S0     float64 // solar constant, W/m²
	Albedo float64

	// Spectral g-point counts for the two-stream radiation diagnosis.
	// The defaults match RRTMG's discretization (112 shortwave and 140
	// longwave g-points), which is what makes conventional radiation the
	// dominant physics cost that the AI radiation module replaces.
	SWGPoints int
	LWGPoints int

	// DisableRadiation skips the two-stream diagnosis; the AI suite sets it
	// on its retained conventional diagnostic module, because the AI
	// radiation module replaces exactly that computation (§5.2.1).
	DisableRadiation bool

	// Cached per-g-point absorption coefficients, rebuilt when the g-point
	// counts change. Columns run concurrently under ParallelFor, so the
	// lazy build is mutex-guarded; after the first column it is a
	// check-and-return.
	kMu      sync.Mutex
	swK, lwK []float64
}

// NewConventionalSuite returns the suite with standard coefficients.
func NewConventionalSuite(m *Model) *ConventionalSuite {
	return &ConventionalSuite{
		m:       m,
		TauRad:  40 * 86400,
		TauRadT: 4 * 86400,
		TauFric: 1 * 86400,
		SigmaB:  0.7,
		Cd:      1.3e-3,
		Ch:      1.0e-3,
		Ce:      1.2e-3,
		S0:      1361,
		Albedo:  0.3,

		SWGPoints: 112,
		LWGPoints: 140,
	}
}

// Name implements Suite.
func (s *ConventionalSuite) Name() string { return "conventional" }

// Column implements Suite.
func (s *ConventionalSuite) Column(in ColumnIn, dt float64, out *ColumnOut) {
	nlev := len(in.T)
	m := s.m
	ps := in.P[nlev-1] / m.Sig[nlev-1]

	// --- Held–Suarez radiation: relax T toward equilibrium. In the
	// boundary layer the analytic target blends toward the actual skin
	// temperature (≈1 K warmer air aloft), the usual aquaplanet correction:
	// without it the analytic tropics sit ~6 K above the SST, inverting the
	// sensible heat flux and shutting off evaporation. ---
	for k := 0; k < nlev; k++ {
		sig := m.Sig[k]
		teq := equilibriumT(in.Lat, sig)
		if sig > 0.85 && in.TSkin > 0 {
			w := (sig - 0.85) / 0.15
			teq = w*(in.TSkin-1) + (1-w)*teq
		}
		// Relaxation rate: fast in the tropical boundary layer.
		kt := 1 / s.TauRad
		if sig > s.SigmaB {
			frac := (sig - s.SigmaB) / (1 - s.SigmaB)
			kt += (1/s.TauRadT - 1/s.TauRad) * frac * cosSq(in.Lat) * cosSq(in.Lat)
		}
		out.DT[k] = -kt * (in.T[k] - teq)
	}

	// --- Boundary-layer friction ---
	for k := 0; k < nlev; k++ {
		sig := m.Sig[k]
		if sig > s.SigmaB {
			kv := (sig - s.SigmaB) / (1 - s.SigmaB) / s.TauFric
			out.DU[k] = -kv * in.U[k]
			out.DV[k] = -kv * in.V[k]
		}
	}

	// --- Surface exchange (lowest level) ---
	kb := nlev - 1
	wind := math.Hypot(in.U[kb], in.V[kb])
	rhoSfc := ps / (Rd * in.T[kb])
	// The skin temperature is the ocean SST, the ice surface, or the land
	// model's soil temperature, whichever owns the cell.
	tSfc := in.TSkin
	// Wind stress (on the atmosphere: deceleration; exported as stress on
	// the surface).
	out.TauX = rhoSfc * s.Cd * wind * in.U[kb]
	out.TauY = rhoSfc * s.Cd * wind * in.V[kb]
	// Sensible heat flux (positive = surface heats the atmosphere when the
	// surface is warmer).
	shf := rhoSfc * Cpd * s.Ch * wind * (tSfc - in.T[kb])
	out.SHF = shf
	// The lowest layer warms/cools accordingly: flux divided by layer mass.
	layerMass := ps * s.m.DSig[kb] / Gravity
	out.DT[kb] += shf / (Cpd * layerMass)

	// --- Evaporation (open water only, scaled down by ice cover) ---
	if !in.Land {
		open := 1 - in.Ice
		qs := qsat(tSfc, ps)
		evap := rhoSfc * s.Ce * wind * (qs - in.Q[kb]) * open
		if evap < 0 {
			evap = 0
		}
		out.DQ[kb] += evap / layerMass
		out.LHF = LatVap * evap
	}

	// --- Large-scale condensation with latent heating ---
	var precip float64
	for k := 0; k < nlev; k++ {
		qs := qsat(in.T[k], in.P[k])
		if in.Q[k] > qs {
			excess := (in.Q[k] - qs) / (1 + LatVap*LatVap*qs/(Cpd*Rd*in.T[k]*in.T[k]))
			// Rain out over the physics step.
			rate := excess / dt
			out.DQ[k] -= rate
			out.DT[k] += LatVap / Cpd * rate
			lm := ps * s.m.DSig[k] / Gravity
			precip += rate * lm
		}
	}
	out.Precip = precip

	// --- Radiation diagnosis (gsw, glw): the fields the AI radiation
	// module estimates for the land model and surface layer (§5.2.1).
	// Computed with a real multi-g-point two-stream sweep, the dominant
	// cost of a conventional physics suite.
	if !s.DisableRadiation {
		out.GSW, out.GLW = s.TwoStreamRadiation(in)
	}
}

// TwoStreamRadiation computes the downward shortwave and longwave fluxes at
// the surface with a correlated-k two-stream scheme: the spectrum is
// discretized into g-points with log-spaced absorption strengths; each
// g-point's beam is attenuated (SW) or emitted/absorbed (LW) layer by layer
// down the column. Water vapour is the absorber; the g-point weights follow
// an exponential distribution so a few strong g-points saturate while the
// window g-points carry flux to the surface — the structure real k-
// distribution radiation codes (RRTMG) have, at the same per-column cost
// scale.
// The sweep itself is the single-source twoStreamRad body in kernels.go:
// the float64 instantiation reproduces the historical arithmetic bit-for-
// bit (the g-point coefficient tables are hoisted out of the column loop,
// but each table entry is the identical expression the loop computed); the
// float32 instantiation is the mixed-precision path, whose win comes from
// pp.FastExpf replacing the ~1200 math.Exp calls per column that dominate
// the conventional suite's cost.
func (s *ConventionalSuite) TwoStreamRadiation(in ColumnIn) (gsw, glw float64) {
	nlev := len(in.T)
	m := s.m
	ps := in.P[nlev-1] / m.Sig[nlev-1]
	swK, lwK := s.gTables()
	if m.kprec == pp.PrecMixed {
		return twoStreamRad[float32](in.Q, in.T, m.DSig, ps, in.CosZ, s.S0, swK, lwK)
	}
	return twoStreamRad[float64](in.Q, in.T, m.DSig, ps, in.CosZ, s.S0, swK, lwK)
}

// gTables returns the log-spaced absorption coefficient tables, window to
// saturated, building them on first use or when the g-point counts change.
func (s *ConventionalSuite) gTables() (swK, lwK []float64) {
	s.kMu.Lock()
	defer s.kMu.Unlock()
	if len(s.swK) != s.SWGPoints {
		s.swK = make([]float64, s.SWGPoints)
		for g := range s.swK {
			s.swK[g] = 2e-4 * math.Exp(9*float64(g)/float64(s.SWGPoints-1))
		}
	}
	if len(s.lwK) != s.LWGPoints {
		s.lwK = make([]float64, s.LWGPoints)
		for g := range s.lwK {
			s.lwK[g] = 5e-4 * math.Exp(8*float64(g)/float64(s.LWGPoints-1))
		}
	}
	return s.swK, s.lwK
}
