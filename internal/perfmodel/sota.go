package perfmodel

import "math"

// SOTAEntry is one published high-resolution coupled model run plotted in
// Figure 2: total grid points against achieved SYPD.
type SOTAEntry struct {
	Name       string
	Year       int
	GridPoints float64
	SYPD       float64
	// LineAnchor marks the two "most favorable" cases the paper draws its
	// state-of-the-art dividing line through (CNRM 2019 and CESM 2024).
	LineAnchor bool
	// ThisWork marks the AP3ESM points.
	ThisWork bool
	// Source notes whether the numbers are quoted in the paper's text or
	// estimated from the cited publication's configuration.
	Source string
}

// Figure2Entries returns the Fig 2 dataset. SYPD values quoted in the
// paper's text are used verbatim; grid-point totals not stated in the text
// are estimates from the cited configurations (resolution × levels), which
// is all Fig 2 needs — the figure is read on log axes.
func Figure2Entries() []SOTAEntry {
	return []SOTAEntry{
		{Name: "HadGEM3-GC3.1-HH", Year: 2018, GridPoints: 1.3e9, SYPD: 0.49,
			Source: "paper text (0.49 SYPD); grid total estimated from 0.08° ocean + N512 atmosphere"},
		{Name: "CNRM-CM6-1-HR", Year: 2019, GridPoints: 1.6e8, SYPD: 2.1, LineAnchor: true,
			Source: "line anchor; estimated from 0.25° ocean + 0.5° atmosphere CMIP6 DECK configuration"},
		{Name: "E3SM v1 HR", Year: 2019, GridPoints: 1.1e8, SYPD: 0.8,
			Source: "paper text (~0.8 SYPD on ~640k cores)"},
		{Name: "ICON MSA (JUWELS)", Year: 2023, GridPoints: 3.0e9, SYPD: 0.47,
			Source: "paper text (170 SDPD ≈ 0.47 SYPD at 5 km global)"},
		{Name: "EC-Earth3P-VHR", Year: 2024, GridPoints: 1.1e9, SYPD: 2.8,
			Source: "paper text (~2.8 SYPD); note: this point plots above the paper's own SOTA line"},
		{Name: "CESM (Sunway)", Year: 2024, GridPoints: 5.0e9, SYPD: 0.61, LineAnchor: true,
			Source: "paper text (222 SDPD = 0.61 SYPD coupled, 5 km atm / 3 km ocn)"},
		{Name: "nextGEMS ICON", Year: 2025, GridPoints: 1.5e9, SYPD: 1.64,
			Source: "paper text (600 SDPD at 9 km atm / 5 km ocn production)"},
		{Name: "IFS-FESOM", Year: 2025, GridPoints: 1.2e9, SYPD: 1.6,
			Source: "estimated; nextGEMS companion configuration"},
		{Name: "AP3ESM 3v2", Year: 2025, GridPoints: 1.5e10, SYPD: 1.01, ThisWork: true,
			Source: "this paper, Table 1/§7.2"},
		{Name: "AP3ESM 1v1", Year: 2025, GridPoints: 7.2e10, SYPD: 0.54, ThisWork: true,
			Source: "this paper, Table 1/§7.2"},
	}
}

// SOTALine is the log-linear dividing line of Fig 2: log10(SYPD) =
// Slope·log10(gridPoints) + Intercept, fit through the two anchor entries.
type SOTALine struct {
	Slope     float64
	Intercept float64
}

// FitSOTALine computes the line through the two LineAnchor entries.
func FitSOTALine(entries []SOTAEntry) SOTALine {
	var xs, ys []float64
	for _, e := range entries {
		if e.LineAnchor {
			xs = append(xs, math.Log10(e.GridPoints))
			ys = append(ys, math.Log10(e.SYPD))
		}
	}
	if len(xs) != 2 {
		panic("perfmodel: Fig 2 needs exactly two line anchors")
	}
	slope := (ys[1] - ys[0]) / (xs[1] - xs[0])
	return SOTALine{Slope: slope, Intercept: ys[0] - slope*xs[0]}
}

// At returns the line's SYPD at a grid-point count.
func (l SOTALine) At(gridPoints float64) float64 {
	return math.Pow(10, l.Slope*math.Log10(gridPoints)+l.Intercept)
}

// Above reports whether an entry sits above the state-of-the-art line, and
// by what factor.
func (l SOTALine) Above(e SOTAEntry) (bool, float64) {
	ref := l.At(e.GridPoints)
	return e.SYPD > ref, e.SYPD / ref
}
