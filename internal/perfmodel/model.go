// Package perfmodel is the scaling simulator that regenerates the paper's
// performance results (Table 2, Figures 2, 8a, 8b) without 37 million cores.
//
// Each measured configuration of the paper — a (machine, component, variant,
// resolution) combination — is a Curve. A curve's wall-clock time per model
// step is the physically-structured expression
//
//	t(P) = C_sup·P^-1.3 + C_comp·P^-1 + C_halo·P^-0.5 + C_coll·log2(P)
//
// whose terms are, respectively: the cache/working-set effect that makes
// MPE-only runs superlinear at small scale, perfectly-divisible compute,
// surface-to-volume halo exchange, and latency-bound collectives (the
// barotropic solver reductions and coupler synchronization). The
// coefficients are calibrated once against the anchor points published in
// §7.2/Table 2 (see anchors.go); resolutions without published anchors are
// obtained by family scaling: C_comp scales with the grid-point count,
// C_halo with its square root, C_coll stays fixed.
//
// SYPD follows as dtStep/(365·86400·t) normalized so that the anchor units
// cancel; the package works directly in t = 1/SYPD.
package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/machine"
)

// Anchor is one published measurement: a resource count (Sunway cores or
// ORISE GPUs) and the reported SYPD.
type Anchor struct {
	Res  float64 // cores or GPUs
	SYPD float64
}

// Basis term indices.
const (
	bSuper = iota // P^-1.3: cache/working-set superlinearity
	bComp         // P^-1: divisible compute
	bHalo         // P^-0.5: halo surface term
	bColl         // log2(P): collective latency chain
	nBasis
)

func basisValue(term int, p float64) float64 {
	switch term {
	case bSuper:
		return math.Pow(p, -1.3)
	case bComp:
		return 1 / p
	case bHalo:
		return 1 / math.Sqrt(p)
	case bColl:
		return math.Log2(p)
	default:
		panic(fmt.Sprintf("perfmodel: bad basis term %d", term))
	}
}

// Curve is one calibrated scaling curve.
type Curve struct {
	ID        string
	Label     string
	Machine   *machine.Machine
	Component string  // "ATM", "OCN", "ESM"
	Variant   string  // "MPE", "CPE+OPT", "Original", "OPT"
	ResKm     float64 // nominal resolution (atmosphere res for ESM curves)
	Points    float64 // 3-D grid points of the configuration
	Unit      string  // "cores" or "GPUs"

	Anchors     []Anchor
	Superlinear bool // admit the P^-1.3 term in the basis search
	// LogLog selects piecewise log-log interpolation through the anchors
	// instead of a basis fit. The 1v1 coupled curve uses it: its efficiency
	// falls to 82.8 % and then rises to 110 % between segments because the
	// largest run used a different component configuration (§7.2), a shape
	// no fixed-exponent cost decomposition can produce.
	LogLog bool

	coef [nBasis]float64
	fit  bool
}

// timeAt evaluates the model t = 1/SYPD at resource count p.
func (c *Curve) timeAt(p float64) float64 {
	if c.LogLog {
		return 1 / c.logLogSYPD(p)
	}
	var t float64
	for term := 0; term < nBasis; term++ {
		if c.coef[term] != 0 {
			t += c.coef[term] * basisValue(term, p)
		}
	}
	return t
}

// logLogSYPD interpolates the anchors piecewise-linearly in log-log space,
// extrapolating with the end segments' slopes.
func (c *Curve) logLogSYPD(p float64) float64 {
	a := c.Anchors
	seg := 0
	for seg < len(a)-2 && p > a[seg+1].Res {
		seg++
	}
	x0, x1 := math.Log(a[seg].Res), math.Log(a[seg+1].Res)
	y0, y1 := math.Log(a[seg].SYPD), math.Log(a[seg+1].SYPD)
	f := (math.Log(p) - x0) / (x1 - x0)
	return math.Exp(y0 + f*(y1-y0))
}

// SYPD returns the modelled simulated-years-per-day at the given resource
// count (cores or GPUs, matching Unit).
func (c *Curve) SYPD(res float64) float64 {
	if !c.fit {
		panic(fmt.Sprintf("perfmodel: curve %s not calibrated", c.ID))
	}
	t := c.timeAt(res)
	if t <= 0 {
		return math.Inf(1)
	}
	return 1 / t
}

// Efficiency returns the strong-scaling parallel efficiency between two
// resource counts: (S1/S0)/(P1/P0).
func (c *Curve) Efficiency(res0, res1 float64) float64 {
	return (c.SYPD(res1) / c.SYPD(res0)) / (res1 / res0)
}

// Calibrate fits the curve's coefficients to its anchors by a non-negative
// least-squares search over basis subsets: every non-empty subset of the
// admitted terms with at most as many terms as anchors is fit, and the
// subset with the smallest maximum relative anchor error wins. The subset
// search matters because different regimes dominate different curves — the
// MPE-only baselines are communication/latency bound (halo + collective
// terms), the accelerated curves are compute bound with a halo tail.
func (c *Curve) Calibrate() error {
	if len(c.Anchors) < 2 {
		return fmt.Errorf("perfmodel: curve %s has %d anchors, need >= 2", c.ID, len(c.Anchors))
	}
	if c.LogLog {
		c.fit = true
		return nil
	}
	allowed := []int{bComp, bHalo, bColl}
	if c.Superlinear {
		allowed = append([]int{bSuper}, allowed...)
	}
	coef, err := bestSubsetFit(c.Anchors, allowed, len(c.Anchors))
	if err != nil {
		return fmt.Errorf("perfmodel: curve %s: %w", c.ID, err)
	}
	c.coef = coef
	c.fit = true
	return nil
}

// bestSubsetFit returns the coefficient vector minimizing the maximum
// relative anchor error over all feasible basis subsets.
func bestSubsetFit(anchors []Anchor, allowed []int, maxTerms int) ([nBasis]float64, error) {
	var best [nBasis]float64
	bestErr := math.Inf(1)
	n := len(allowed)
	for mask := 1; mask < 1<<n; mask++ {
		var terms []int
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				terms = append(terms, allowed[j])
			}
		}
		if len(terms) > maxTerms {
			continue
		}
		coef, err := nnlsFit(anchors, terms)
		if err != nil {
			continue
		}
		e := maxRelError(anchors, coef)
		if e < bestErr {
			bestErr = e
			best = coef
		}
	}
	if math.IsInf(bestErr, 1) {
		return best, fmt.Errorf("no feasible basis subset")
	}
	return best, nil
}

func maxRelError(anchors []Anchor, coef [nBasis]float64) float64 {
	worst := 0.0
	for _, a := range anchors {
		var t float64
		for term := 0; term < nBasis; term++ {
			t += coef[term] * basisValue(term, a.Res)
		}
		if t <= 0 {
			return math.Inf(1)
		}
		rel := math.Abs(1/t-a.SYPD) / a.SYPD
		if rel > worst {
			worst = rel
		}
	}
	return worst
}

// calibrateWithFixedColl fits the compute and halo terms with the collective
// coefficient pinned to gamma. Used by the weak-scaling joint calibration.
func (c *Curve) calibrateWithFixedColl(gamma float64) error {
	adj := make([]Anchor, len(c.Anchors))
	for i, a := range c.Anchors {
		t := 1/a.SYPD - gamma*basisValue(bColl, a.Res)
		if t <= 0 {
			return fmt.Errorf("perfmodel: curve %s: collective term %g exceeds anchor time", c.ID, gamma)
		}
		adj[i] = Anchor{Res: a.Res, SYPD: 1 / t}
	}
	allowed := []int{bComp, bHalo}
	if c.Superlinear {
		allowed = append([]int{bSuper}, allowed...)
	}
	coef, err := bestSubsetFit(adj, allowed, len(adj))
	if err != nil {
		return err
	}
	coef[bColl] = gamma
	c.coef = coef
	c.fit = true
	return nil
}

// nnlsFit solves min Σ ((Σ_j x_j·b_j(P_i) − t_i)/t_i)² over x ≥ 0 by the
// simple active-set strategy: solve unconstrained; while any coefficient is
// negative, drop the most negative term and re-solve.
func nnlsFit(anchors []Anchor, terms []int) ([nBasis]float64, error) {
	var out [nBasis]float64
	active := append([]int(nil), terms...)
	for len(active) > 0 {
		x, err := lsqSolve(anchors, active)
		if err != nil {
			return out, err
		}
		worst, worstVal := -1, 0.0
		for j, v := range x {
			if v < worstVal {
				worst, worstVal = j, v
			}
		}
		if worst < 0 {
			for j, term := range active {
				out[term] = x[j]
			}
			return out, nil
		}
		active = append(active[:worst], active[worst+1:]...)
	}
	return out, fmt.Errorf("no non-negative fit possible")
}

// lsqSolve solves the weighted normal equations for the active terms.
func lsqSolve(anchors []Anchor, terms []int) ([]float64, error) {
	n := len(terms)
	ata := make([][]float64, n)
	atb := make([]float64, n)
	for i := range ata {
		ata[i] = make([]float64, n)
	}
	for _, a := range anchors {
		t := 1 / a.SYPD
		w := 1 / t // relative-error weighting
		row := make([]float64, n)
		for j, term := range terms {
			row[j] = basisValue(term, a.Res) * w
		}
		rhs := t * w
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ata[i][j] += row[i] * row[j]
			}
			atb[i] += row[i] * rhs
		}
	}
	return gaussSolve(ata, atb)
}

// gaussSolve solves a small dense SPD-ish system with partial pivoting.
func gaussSolve(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-300 {
			return nil, fmt.Errorf("singular system in least squares")
		}
		m[col], m[piv] = m[piv], m[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for k := col; k <= n; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n] / m[i][i]
	}
	return x, nil
}

// MaxAnchorError returns the largest relative deviation of the calibrated
// model from the curve's own anchors — the calibration residual.
func (c *Curve) MaxAnchorError() float64 {
	worst := 0.0
	for _, a := range c.Anchors {
		rel := math.Abs(c.SYPD(a.Res)-a.SYPD) / a.SYPD
		if rel > worst {
			worst = rel
		}
	}
	return worst
}

// ScaledTo returns a new curve for a configuration with a different
// grid-point count, using family scaling of the calibrated coefficients:
// compute scales with points, halo with √points, collectives unchanged.
// The derived curve has no anchors of its own.
func (c *Curve) ScaledTo(id string, resKm, points float64) *Curve {
	if !c.fit {
		panic(fmt.Sprintf("perfmodel: scaling uncalibrated curve %s", c.ID))
	}
	if c.LogLog {
		panic(fmt.Sprintf("perfmodel: curve %s is interpolated and cannot be family-scaled", c.ID))
	}
	ratio := points / c.Points
	out := &Curve{
		ID:        id,
		Label:     fmt.Sprintf("%s (family-scaled from %s)", id, c.ID),
		Machine:   c.Machine,
		Component: c.Component,
		Variant:   c.Variant,
		ResKm:     resKm,
		Points:    points,
		Unit:      c.Unit,
		fit:       true,
	}
	out.coef[bSuper] = c.coef[bSuper] * math.Pow(ratio, 1.3)
	out.coef[bComp] = c.coef[bComp] * ratio
	out.coef[bHalo] = c.coef[bHalo] * math.Sqrt(ratio)
	out.coef[bColl] = c.coef[bColl]
	return out
}

// Breakdown reports the fractional contribution of each cost term at a
// resource count: compute (including the cache term), halo, collectives.
func (c *Curve) Breakdown(res float64) (comp, halo, coll float64) {
	if c.LogLog {
		// Interpolated curves carry no cost decomposition; report the whole
		// time as compute.
		return 1, 0, 0
	}
	t := c.timeAt(res)
	if t == 0 {
		return 0, 0, 0
	}
	comp = (c.coef[bSuper]*basisValue(bSuper, res) + c.coef[bComp]*basisValue(bComp, res)) / t
	halo = c.coef[bHalo] * basisValue(bHalo, res) / t
	coll = c.coef[bColl] * basisValue(bColl, res) / t
	return
}
