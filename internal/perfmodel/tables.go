package perfmodel

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/grid"
)

// Table2Row is one measurement row of Table 2, with the paper's value and
// the calibrated model's value side by side.
type Table2Row struct {
	System    string
	Config    string
	Nodes     int
	Resource  int // cores (Sunway) or GPUs (ORISE)
	Unit      string
	PaperSYPD float64
	ModelSYPD float64
	// Efficiency is strong-scaling efficiency relative to the first row of
	// the same configuration (modelled values).
	Efficiency float64
}

// nodesForAnchor converts an anchor's resource count to nodes for display:
// MPE-only Sunway runs use one active core per rank (6 per node); CPE runs
// use the full 390 cores per node; ORISE runs use 4 GPUs per node.
func nodesForAnchor(c *Curve, res float64) int {
	switch {
	case c.Unit == "GPUs":
		return int(res) / c.Machine.AccelPerNode
	case c.Variant == "MPE":
		return int(res) / c.Machine.RanksPerNode
	default:
		return int(res) / c.Machine.CoresPerNode
	}
}

// Table2 regenerates every row of Table 2 from the calibrated model.
func (m *Model) Table2() []Table2Row {
	specs := []struct {
		id     string
		system string
		config string
	}{
		{CurveOCN1Orig, "ORISE", "1 km OCN model (Original)"},
		{CurveOCN1OPT, "ORISE", "1 km OCN model (OPT)"},
		{CurveOCN2MPE, "Sunway OceanLight", "2 km OCN model (MPE)"},
		{CurveOCN2CPE, "Sunway OceanLight", "2 km OCN model (CPE+OPT)"},
		{CurveATM3MPE, "Sunway OceanLight", "3 km ATM model (MPE)"},
		{CurveATM3CPE, "Sunway OceanLight", "3 km ATM model (CPE+OPT)"},
		{CurveATM1CPE, "Sunway OceanLight", "1 km ATM model (CPE+OPT)"},
		{CurveESM3v2, "Sunway OceanLight", "3v2 AP3ESM (CPE+OPT)"},
		{CurveESM1v1, "Sunway OceanLight", "1v1 AP3ESM (CPE+OPT)"},
	}
	var rows []Table2Row
	for _, sp := range specs {
		c := m.MustCurve(sp.id)
		first := c.Anchors[0]
		for _, a := range c.Anchors {
			rows = append(rows, Table2Row{
				System:     sp.system,
				Config:     sp.config,
				Nodes:      nodesForAnchor(c, a.Res),
				Resource:   int(a.Res),
				Unit:       c.Unit,
				PaperSYPD:  a.SYPD,
				ModelSYPD:  c.SYPD(a.Res),
				Efficiency: c.Efficiency(first.Res, a.Res),
			})
		}
	}
	return rows
}

// FormatTable2 renders the rows as the aligned text table printed by
// cmd/tables.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-28s %8s %10s %6s %10s %10s %6s\n",
		"System", "Configuration", "Nodes", "Resource", "Unit", "Paper", "Model", "Eff")
	prev := ""
	for _, r := range rows {
		cfg := r.Config
		if cfg == prev {
			cfg = ""
		} else {
			prev = cfg
		}
		fmt.Fprintf(&b, "%-18s %-28s %8d %10d %6s %10.4f %10.4f %5.1f%%\n",
			r.System, cfg, r.Nodes, r.Resource, r.Unit, r.PaperSYPD, r.ModelSYPD, 100*r.Efficiency)
	}
	return b.String()
}

// Fig8aPoint is one sample of a strong-scaling curve for Figure 8a.
type Fig8aPoint struct {
	Nodes    int
	Resource float64
	SYPD     float64
	IsAnchor bool
	Paper    float64 // paper SYPD when IsAnchor
}

// Fig8aSeries samples a curve across its measured node range with the given
// number of log-spaced samples plus the anchors themselves.
func (m *Model) Fig8aSeries(id string, samples int) (string, []Fig8aPoint, error) {
	c, err := m.Curve(id)
	if err != nil {
		return "", nil, err
	}
	lo := c.Anchors[0].Res
	hi := c.Anchors[len(c.Anchors)-1].Res
	var pts []Fig8aPoint
	for i := 0; i < samples; i++ {
		f := float64(i) / float64(samples-1)
		res := lo * math.Pow(hi/lo, f)
		pts = append(pts, Fig8aPoint{
			Nodes:    nodesForAnchor(c, res),
			Resource: res,
			SYPD:     c.SYPD(res),
		})
	}
	for _, a := range c.Anchors {
		pts = append(pts, Fig8aPoint{
			Nodes: nodesForAnchor(c, a.Res), Resource: a.Res,
			SYPD: c.SYPD(a.Res), IsAnchor: true, Paper: a.SYPD,
		})
	}
	return c.Label, pts, nil
}

// Table1Row is one configuration row of Table 1, regenerated from the grid
// generators' closed forms and catalogs.
type Table1Row struct {
	Label      string
	AtmResKm   int
	AtmCells   int64
	AtmEdges   int64
	AtmVerts   int64
	AtmPoints  float64 // cells × 30 levels
	OcnResKm   int
	OcnLon     int
	OcnLat     int
	OcnPoints  float64 // lon × lat × 80 levels
	TotalGrids float64
}

// CoupledPairs lists the five AP3ESM resolution pairs of Table 1.
var CoupledPairs = []struct {
	Label    string
	AtmResKm int
	OcnResKm int
}{
	{"1v1", 1, 1},
	{"3v2", 3, 2},
	{"6v3", 6, 3},
	{"10v5", 10, 5},
	{"25v10", 25, 10},
}

// Table1 regenerates the configuration table.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, p := range CoupledPairs {
		r := Table1Row{Label: p.Label, AtmResKm: p.AtmResKm, OcnResKm: p.OcnResKm}
		r.AtmCells, r.AtmEdges, r.AtmVerts = grid.IcosCounts(grid.GristLevelForRes[p.AtmResKm])
		r.AtmPoints = float64(r.AtmCells) * 30
		cfg, err := grid.LICOMConfigForRes(p.OcnResKm)
		if err != nil {
			panic(err)
		}
		r.OcnLon, r.OcnLat = cfg.NLon, cfg.NLat
		r.OcnPoints = float64(cfg.NLon) * float64(cfg.NLat) * float64(cfg.NLevel)
		r.TotalGrids = r.AtmPoints + r.OcnPoints
		rows = append(rows, r)
	}
	return rows
}

// FormatTable1 renders Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s | %-3s %12s %12s %12s %12s | %-3s %8s %8s %12s | %12s\n",
		"Label", "atm", "cells", "edges", "vertices", "3D points",
		"ocn", "nlon", "nlat", "3D points", "total grids")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s | %3d %12d %12d %12d %12.3g | %3d %8d %8d %12.3g | %12.3g\n",
			r.Label, r.AtmResKm, r.AtmCells, r.AtmEdges, r.AtmVerts, r.AtmPoints,
			r.OcnResKm, r.OcnLon, r.OcnLat, r.OcnPoints, r.TotalGrids)
	}
	return b.String()
}
