package perfmodel

import (
	"math"
	"strings"
	"testing"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Every anchor of every curve — i.e. every measurement row of Table 2 and
// every Fig 8a point — must be reproduced by the calibrated model within
// 10 % (most are within a few percent; the MPE curves have the cache bend).
func TestCalibrationReproducesAllAnchors(t *testing.T) {
	m := newModel(t)
	for _, id := range m.IDs() {
		c := m.MustCurve(id)
		if got := c.MaxAnchorError(); got > 0.10 {
			t.Errorf("curve %s: max anchor error %.1f%%", id, 100*got)
			for _, a := range c.Anchors {
				t.Logf("  P=%.0f paper=%.4f model=%.4f", a.Res, a.SYPD, c.SYPD(a.Res))
			}
		}
	}
}

func TestHeadlineNumbers(t *testing.T) {
	m := newModel(t)
	checks := []struct {
		id   string
		res  float64
		want float64
		tol  float64
	}{
		{CurveATM1CPE, 34078270, 0.85, 0.05}, // 1 km ATM on 34.1M cores
		{CurveOCN1OPT, 16085, 1.98, 0.05},    // 1 km OCN on 16085 GPUs
		{CurveESM1v1, 37172980, 0.54, 0.05},  // 1v1 coupled on 37.2M cores
		{CurveESM3v2, 36553140, 1.01, 0.05},  // 3v2 coupled near full system
		{CurveATM3CPE, 17039360, 1.16, 0.05}, // 3 km ATM
		{CurveOCN2CPE, 19513780, 1.59, 0.05}, // 2 km OCN
	}
	for _, ck := range checks {
		got := m.MustCurve(ck.id).SYPD(ck.res)
		if math.Abs(got-ck.want)/ck.want > ck.tol {
			t.Errorf("%s at %.0f: model %.4f, paper %.4f", ck.id, ck.res, got, ck.want)
		}
	}
}

func TestStrongScalingEfficiencies(t *testing.T) {
	m := newModel(t)
	checks := []struct {
		id      string
		p0, p1  float64
		wantEff float64
		tolPts  float64 // absolute tolerance in efficiency points
	}{
		{CurveATM3MPE, 32768, 262144, 0.246, 0.03},
		{CurveATM3CPE, 2129920, 17039360, 0.403, 0.04},
		{CurveATM1CPE, 4259840, 34078270, 0.515, 0.05},
		{CurveOCN2CPE, 1273415, 19513780, 0.494, 0.05},
		{CurveESM1v1, 8745360, 37172980, 0.907, 0.06},
		{CurveOCN1OPT, 4060, 16085, 0.543, 0.05},
	}
	for _, ck := range checks {
		got := m.MustCurve(ck.id).Efficiency(ck.p0, ck.p1)
		if math.Abs(got-ck.wantEff) > ck.tolPts {
			t.Errorf("%s efficiency %.0f->%.0f: model %.3f, paper %.3f",
				ck.id, ck.p0, ck.p1, got, ck.wantEff)
		}
	}
}

// §7.2: the CPE+OPT code is 112–184× the MPE code for the atmosphere and
// 84–150× for the ocean. The model must reproduce both bands.
func TestCPEOverMPESpeedupBands(t *testing.T) {
	m := newModel(t)
	lo, hi, err := m.SpeedupRange(CurveATM3MPE, CurveATM3CPE, true)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 95 || lo > 135 || hi < 160 || hi > 210 {
		t.Errorf("ATM speedup band [%.0f, %.0f], paper [112, 184]", lo, hi)
	}
	lo, hi, err = m.SpeedupRange(CurveOCN2MPE, CurveOCN2CPE, true)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 70 || lo > 100 || hi < 125 || hi > 175 {
		t.Errorf("OCN speedup band [%.0f, %.0f], paper [84, 150]", lo, hi)
	}
}

// §7.2: at the largest ORISE scale this work is ~1.2× the 2024 Gordon Bell
// finalist record.
func TestORISEOptBeatsOriginalRecord(t *testing.T) {
	m := newModel(t)
	opt := m.MustCurve(CurveOCN1OPT).SYPD(16085)
	orig := m.MustCurve(CurveOCN1Orig).SYPD(16085) // extrapolated baseline
	ratio := opt / orig
	if ratio < 1.10 || ratio > 1.35 {
		t.Errorf("OPT/Original at 16085 GPUs = %.2f, paper ~1.2", ratio)
	}
}

func TestWeakScalingLaddersMatchPaper(t *testing.T) {
	m := newModel(t)
	atm, err := m.WeakSeries(CurveATM3CPE, ATMWeakLadder())
	if err != nil {
		t.Fatal(err)
	}
	if len(atm) != 4 || atm[0].Efficiency != 1 {
		t.Fatalf("atm series malformed: %+v", atm)
	}
	if got := atm[3].Efficiency; math.Abs(got-0.8785) > 0.03 {
		t.Errorf("atm weak efficiency %.4f, paper 0.8785", got)
	}
	if atm[3].Cores != 17039490 && atm[3].Cores != 17039360+130 {
		// 43691 nodes × 390 cores; the paper quotes 17039360 (43690 nodes).
		if math.Abs(float64(atm[3].Cores)-17039360) > 1e5 {
			t.Errorf("atm final cores %d", atm[3].Cores)
		}
	}
	ocn, err := m.WeakSeries(CurveOCN2CPE, OCNWeakLadder())
	if err != nil {
		t.Fatal(err)
	}
	if got := ocn[3].Efficiency; math.Abs(got-0.9657) > 0.03 {
		t.Errorf("ocn weak efficiency %.4f, paper 0.9657", got)
	}
	// Efficiency must decline monotonically with scale (Fig 8b shape).
	for i := 1; i < 4; i++ {
		if atm[i].Efficiency > atm[i-1].Efficiency+1e-9 {
			t.Errorf("atm weak efficiency not monotone: %+v", atm)
		}
		if ocn[i].Efficiency > ocn[i-1].Efficiency+1e-9 {
			t.Errorf("ocn weak efficiency not monotone: %+v", ocn)
		}
	}
}

func TestFamilyScalingDirection(t *testing.T) {
	m := newModel(t)
	c := m.MustCurve(CurveATM3CPE)
	// Scaling to 4x the points at fixed cores must slow the model down by
	// at least 2x (compute alone would be 4x; halo scales by 2x).
	big := c.ScaledTo("test/atm1.5km", 1.5, c.Points*4)
	s0, s1 := c.SYPD(8519680), big.SYPD(8519680)
	if s1 >= s0/2 || s1 <= s0/8 {
		t.Errorf("4x points: SYPD %v -> %v (ratio %.2f)", s0, s1, s0/s1)
	}
}

func TestCurveBreakdownSumsToOne(t *testing.T) {
	m := newModel(t)
	for _, id := range m.IDs() {
		c := m.MustCurve(id)
		for _, a := range c.Anchors {
			comp, halo, coll := c.Breakdown(a.Res)
			if math.Abs(comp+halo+coll-1) > 1e-9 {
				t.Errorf("%s at %.0f: breakdown sums to %v", id, a.Res, comp+halo+coll)
			}
			if comp < 0 || halo < 0 || coll < 0 {
				t.Errorf("%s: negative cost fraction", id)
			}
		}
	}
}

// Communication share must grow as a strong-scaled job spreads out — the
// physical reason efficiency falls in Fig 8a.
func TestCommunicationShareGrowsUnderStrongScaling(t *testing.T) {
	m := newModel(t)
	c := m.MustCurve(CurveATM3CPE)
	comp0, _, _ := c.Breakdown(2129920)
	comp1, _, _ := c.Breakdown(17039360)
	if comp1 >= comp0 {
		t.Errorf("compute share did not fall: %.3f -> %.3f", comp0, comp1)
	}
}

func TestUnknownCurveRejected(t *testing.T) {
	m := newModel(t)
	if _, err := m.Curve("nope"); err == nil {
		t.Error("unknown curve accepted")
	}
}

func TestUncalibratedCurvePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c := &Curve{ID: "raw"}
	c.SYPD(100)
}

func TestCalibrateNeedsTwoAnchors(t *testing.T) {
	c := &Curve{ID: "one", Anchors: []Anchor{{100, 1}}}
	if err := c.Calibrate(); err == nil {
		t.Error("single-anchor calibration accepted")
	}
}

func TestSequentialVsConcurrentLayout(t *testing.T) {
	m := newModel(t)
	atm := m.MustCurve(CurveATM3CPE)
	ocn := m.MustCurve(CurveOCN2CPE)
	cores := 2.0e7
	seq := SequentialLayout(atm, ocn, cores, 0.01)
	conc, err := OptimalSplit(atm, ocn, cores, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's production layout is concurrent; with a near-balanced
	// split it must beat running both components over all cores in sequence.
	if conc.SYPD <= seq.SYPD {
		t.Errorf("concurrent %.3f <= sequential %.3f", conc.SYPD, seq.SYPD)
	}
	// The optimum balances domains: idle fraction small.
	if conc.IdleFraction > 0.10 {
		t.Errorf("optimal split leaves %.0f%% idle", 100*conc.IdleFraction)
	}
	// The atmosphere, being the most expensive component (§7.2), gets the
	// larger share.
	if conc.AtmFraction < 0.5 {
		t.Errorf("atmosphere fraction %.2f < 0.5", conc.AtmFraction)
	}
}

func TestConcurrentLayoutValidation(t *testing.T) {
	m := newModel(t)
	atm := m.MustCurve(CurveATM3CPE)
	ocn := m.MustCurve(CurveOCN2CPE)
	if _, err := ConcurrentLayout(atm, ocn, 1e7, 0, 0); err == nil {
		t.Error("f=0 accepted")
	}
	if _, err := ConcurrentLayout(atm, ocn, 1e7, 1, 0); err == nil {
		t.Error("f=1 accepted")
	}
}

func TestImpliedCouplerTimeNonNegative(t *testing.T) {
	m := newModel(t)
	ct := ImpliedCouplerTime(m.MustCurve(CurveESM3v2), m.MustCurve(CurveATM3CPE),
		m.MustCurve(CurveOCN2CPE), 3.0e7)
	if ct < 0 {
		t.Errorf("implied coupler time %v", ct)
	}
	// Coupler + concurrency losses shouldn't dominate: under half the total.
	total := 1 / m.MustCurve(CurveESM3v2).SYPD(3.0e7)
	if ct > 0.6*total {
		t.Errorf("implied coupler time %v is %.0f%% of total", ct, 100*ct/total)
	}
}

func TestTable1MatchesPaperTotals(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// Coupled totals, paper: 7.2e10, 1.5e10, 6.3e9, 2.3e9, 5.5e8. Our
	// derivation (cells×30 + lon×lat×80) reproduces the order of magnitude
	// and the 1v1 total within ~12% (the paper's per-component totals carry
	// undocumented factors; see EXPERIMENTS.md).
	paper := []float64{7.2e10, 1.5e10, 6.3e9, 2.3e9, 5.5e8}
	for i, r := range rows {
		ratio := r.TotalGrids / paper[i]
		if ratio < 0.5 || ratio > 2.2 {
			t.Errorf("%s total %.3g vs paper %.3g (ratio %.2f)",
				r.Label, r.TotalGrids, paper[i], ratio)
		}
	}
	// Ocean 1 km 3-D points: 36000×22018×80 = 6.34e10 ≈ paper's 6.3e10.
	if math.Abs(rows[0].OcnPoints-6.3e10)/6.3e10 > 0.02 {
		t.Errorf("1 km ocean points %.4g", rows[0].OcnPoints)
	}
	if !strings.Contains(FormatTable1(rows), "1v1") {
		t.Error("formatted table missing labels")
	}
}

func TestTable2RowsComplete(t *testing.T) {
	m := newModel(t)
	rows := m.Table2()
	// 3+4+4+4+2+2+2+5+3 anchors = 29 rows.
	if len(rows) != 29 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.ModelSYPD <= 0 || r.PaperSYPD <= 0 || r.Nodes <= 0 {
			t.Errorf("bad row %+v", r)
		}
		rel := math.Abs(r.ModelSYPD-r.PaperSYPD) / r.PaperSYPD
		if rel > 0.10 {
			t.Errorf("%s %s at %d %s: model %.4f vs paper %.4f (%.0f%%)",
				r.System, r.Config, r.Resource, r.Unit, r.ModelSYPD, r.PaperSYPD, 100*rel)
		}
	}
	if !strings.Contains(FormatTable2(rows), "AP3ESM") {
		t.Error("formatted table missing configs")
	}
}

func TestFig8aSeries(t *testing.T) {
	m := newModel(t)
	for _, id := range m.IDs() {
		label, pts, err := m.Fig8aSeries(id, 10)
		if err != nil {
			t.Fatal(err)
		}
		if label == "" || len(pts) < 12 {
			t.Errorf("%s: label %q, %d points", id, label, len(pts))
		}
		// SYPD must increase with resources (throughput curves rise).
		var prev float64
		for i, p := range pts {
			if p.IsAnchor {
				break
			}
			if i > 0 && p.SYPD < prev {
				t.Errorf("%s: SYPD not monotone at sample %d", id, i)
			}
			prev = p.SYPD
		}
	}
}

func TestFigure2SOTA(t *testing.T) {
	entries := Figure2Entries()
	line := FitSOTALine(entries)
	if line.Slope >= 0 {
		t.Errorf("SOTA line slope %.3f, want negative (bigger models are slower)", line.Slope)
	}
	// The two anchors lie on the line by construction.
	for _, e := range entries {
		if e.LineAnchor {
			if math.Abs(line.At(e.GridPoints)-e.SYPD)/e.SYPD > 1e-9 {
				t.Errorf("anchor %s off its own line", e.Name)
			}
		}
	}
	// Both AP3ESM points must plot above the state of the art, with the 1v1
	// point holding the largest grid total in the figure.
	var maxPoints float64
	for _, e := range entries {
		if e.GridPoints > maxPoints {
			maxPoints = e.GridPoints
		}
	}
	for _, e := range entries {
		if e.ThisWork {
			above, factor := line.Above(e)
			if !above {
				t.Errorf("%s not above the SOTA line", e.Name)
			}
			if factor < 1.5 {
				t.Errorf("%s only %.2fx above the line", e.Name, factor)
			}
		}
	}
	if maxPoints != 7.2e10 {
		t.Errorf("largest configuration is %.3g, want AP3ESM 1v1 at 7.2e10", maxPoints)
	}
}

func TestMachineTopologyHelpers(t *testing.T) {
	m := newModel(t)
	if m.Sunway.TotalCores() != 41932800 {
		t.Errorf("Sunway cores = %d", m.Sunway.TotalCores())
	}
	if err := m.Sunway.Validate(); err != nil {
		t.Error(err)
	}
	if err := m.ORISE.Validate(); err != nil {
		t.Error(err)
	}
	if f := m.Sunway.CrossSupernodeFraction(100); f != 0 {
		t.Errorf("within-supernode fraction %v", f)
	}
	f1 := m.Sunway.CrossSupernodeFraction(1024)
	f2 := m.Sunway.CrossSupernodeFraction(100000)
	if !(f1 > 0 && f2 > f1 && f2 <= 1) {
		t.Errorf("fractions %v %v", f1, f2)
	}
	bw0 := m.Sunway.EffectiveHaloBW(128)
	bw1 := m.Sunway.EffectiveHaloBW(100000)
	if !(bw1 < bw0 && bw0 == m.Sunway.InjectGBs) {
		t.Errorf("bw %v -> %v", bw0, bw1)
	}
}
