package perfmodel

import "testing"

func TestProjectComponentMatchesCalibratedCurves(t *testing.T) {
	m := newModel(t)
	// Projecting a curve at its own resolution must reproduce it exactly.
	p, err := m.ProjectComponent(CurveATM3CPE, 3, 17039360)
	if err != nil {
		t.Fatal(err)
	}
	want := m.MustCurve(CurveATM3CPE).SYPD(17039360)
	if p.SYPD != want {
		t.Errorf("self-projection %v != %v", p.SYPD, want)
	}
	// Family-scaling the 3 km curve to 1 km must land near the calibrated
	// 1 km curve (it was measured independently) — the cross-validation of
	// the family-scaling assumption.
	p1, err := m.ProjectComponent(CurveATM3CPE, 1, 34078270)
	if err != nil {
		t.Fatal(err)
	}
	meas := m.MustCurve(CurveATM1CPE).SYPD(34078270) // 0.85
	if p1.SYPD < meas/2 || p1.SYPD > meas*2 {
		t.Errorf("1 km projection %v vs measured %v (family scaling off by >2x)", p1.SYPD, meas)
	}
	// Unknown curve and non-component curves rejected.
	if _, err := m.ProjectComponent("nope", 3, 1e6); err == nil {
		t.Error("unknown curve accepted")
	}
	if _, err := m.ProjectComponent(CurveESM3v2, 3, 1e6); err == nil {
		t.Error("coupled curve accepted for component projection")
	}
}

func TestProjectCoupledLadder(t *testing.T) {
	m := newModel(t)
	const cores = 3.6e7
	ladder, err := m.ProjectionLadder(cores)
	if err != nil {
		t.Fatal(err)
	}
	if len(ladder) != 5 {
		t.Fatalf("%d rungs", len(ladder))
	}
	// SYPD must increase monotonically from 1v1 to 25v10 (coarser = faster),
	// spanning orders of magnitude.
	for i := 1; i < len(ladder); i++ {
		if ladder[i].SYPD <= ladder[i-1].SYPD {
			t.Errorf("ladder not monotone: %s %.3f <= %s %.3f",
				ladder[i].Label, ladder[i].SYPD, ladder[i-1].Label, ladder[i-1].SYPD)
		}
	}
	// The 3v2 rung must sit near the paper's measured coupled result
	// (1.01 SYPD at 36.6M cores) — the composition's validation point.
	var p3v2 ProjectedPoint
	for _, p := range ladder {
		if p.Label == "3v2" {
			p3v2 = p
		}
	}
	if p3v2.SYPD < 0.7 || p3v2.SYPD > 1.4 {
		t.Errorf("3v2 projection %.3f SYPD, paper measured 1.01", p3v2.SYPD)
	}
	// The atmosphere takes the larger domain share at the paper's measured
	// configurations (3v2 and 1v1, where §7.2 calls it the most expensive
	// component); at the coarsest pair the 10 km ocean legitimately
	// dominates, so only the split's validity is asserted there.
	for _, p := range ladder {
		if p.AtmShare <= 0 || p.AtmShare >= 1 {
			t.Errorf("%s: invalid split %.2f", p.Label, p.AtmShare)
		}
		if (p.Label == "3v2" || p.Label == "1v1") && p.AtmShare < 0.5 {
			t.Errorf("%s: atmosphere share %.2f < 0.5", p.Label, p.AtmShare)
		}
	}
}
