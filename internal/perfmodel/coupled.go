package perfmodel

import (
	"fmt"
	"math"
)

// The coupled-model composition works directly in t = 1/SYPD space: a
// component needing t_c wall-days per simulated year contributes additively
// when components run sequentially in one task domain, and via max() when
// they run concurrently in disjoint domains (§5.1.2, §7.2). The paper's
// AP3ESM production layout is the two-domain concurrent one: domain 1 holds
// the coupler + atmosphere + sea ice + land, domain 2 holds the ocean.

// LayoutResult describes one evaluated task layout.
type LayoutResult struct {
	Layout       string  // "sequential" or "concurrent"
	AtmFraction  float64 // share of cores given to the atmosphere domain
	SYPD         float64
	AtmTime      float64 // wall-days per simulated year in the atmosphere
	OcnTime      float64
	CouplerTime  float64
	IdleFraction float64 // concurrent only: wasted time in the faster domain
}

// SequentialLayout runs both components on all cores, one after the other.
func SequentialLayout(atm, ocn *Curve, cores, couplerTime float64) LayoutResult {
	ta := 1 / atm.SYPD(cores)
	to := 1 / ocn.SYPD(cores)
	total := ta + to + couplerTime
	return LayoutResult{
		Layout: "sequential", AtmFraction: 1,
		SYPD: 1 / total, AtmTime: ta, OcnTime: to, CouplerTime: couplerTime,
	}
}

// ConcurrentLayout splits the cores into an atmosphere domain (fraction f)
// and an ocean domain (1−f) running concurrently.
func ConcurrentLayout(atm, ocn *Curve, cores, f, couplerTime float64) (LayoutResult, error) {
	if f <= 0 || f >= 1 {
		return LayoutResult{}, fmt.Errorf("perfmodel: atmosphere fraction %v out of (0,1)", f)
	}
	ta := 1 / atm.SYPD(cores*f)
	to := 1 / ocn.SYPD(cores*(1-f))
	slow := math.Max(ta, to)
	total := slow + couplerTime
	idle := 0.0
	if slow > 0 {
		idle = (slow - math.Min(ta, to)) / slow
	}
	return LayoutResult{
		Layout: "concurrent", AtmFraction: f,
		SYPD: 1 / total, AtmTime: ta, OcnTime: to, CouplerTime: couplerTime,
		IdleFraction: idle,
	}, nil
}

// OptimalSplit searches the atmosphere share that maximizes coupled SYPD in
// the concurrent layout. The optimum balances the two domains (ta ≈ to),
// which is the load-balancing argument of §5.1.2.
func OptimalSplit(atm, ocn *Curve, cores, couplerTime float64) (LayoutResult, error) {
	best := LayoutResult{SYPD: -1}
	for f := 0.05; f <= 0.951; f += 0.005 {
		r, err := ConcurrentLayout(atm, ocn, cores, f, couplerTime)
		if err != nil {
			return LayoutResult{}, err
		}
		if r.SYPD > best.SYPD {
			best = r
		}
	}
	return best, nil
}

// ImpliedCouplerTime back-solves the coupler/synchronization overhead that
// reconciles the fitted coupled curve with the optimal concurrent
// composition of its components at the given core count: fitted coupled
// time minus the best-achievable max(atm, ocn) composition. Negative values
// are clamped to zero (the composition already explains the coupled cost).
func ImpliedCouplerTime(coupled, atm, ocn *Curve, cores float64) float64 {
	best, err := OptimalSplit(atm, ocn, cores, 0)
	if err != nil || best.SYPD <= 0 {
		return 0
	}
	implied := 1/coupled.SYPD(cores) - 1/best.SYPD
	if implied < 0 {
		return 0
	}
	return implied
}
