package perfmodel

import (
	"fmt"
	"math"
)

// Projection answers the questions the paper leaves open: what would a
// configuration it never measured do? The family scaling of a calibrated
// curve extrapolates to other resolutions of the same component/variant, and
// the concurrent-layout composition assembles coupled configurations from
// their components.

// ProjectedPoint is one projected configuration.
type ProjectedPoint struct {
	Label    string
	Cores    float64
	SYPD     float64
	AtmShare float64 // coupled projections: atmosphere domain share
	Basis    string  // which calibrated curves the projection rests on
}

// ProjectComponent extrapolates a calibrated component curve to another
// nominal resolution at the given core count. Only non-interpolated curves
// support family scaling.
func (m *Model) ProjectComponent(id string, resKm int, cores float64) (ProjectedPoint, error) {
	c, err := m.Curve(id)
	if err != nil {
		return ProjectedPoint{}, err
	}
	var points float64
	switch c.Component {
	case "ATM":
		points = atmPoints3D(resKm)
	case "OCN":
		points = ocnPoints3D(resKm)
	default:
		return ProjectedPoint{}, fmt.Errorf("perfmodel: cannot project component type %q", c.Component)
	}
	cv := c
	if points != c.Points {
		cv = c.ScaledTo(fmt.Sprintf("%s@%dkm", id, resKm), float64(resKm), points)
	}
	return ProjectedPoint{
		Label: fmt.Sprintf("%s %d km at %.3g cores", c.Component, resKm, cores),
		Cores: cores,
		SYPD:  cv.SYPD(cores),
		Basis: id,
	}, nil
}

// ProjectCoupled composes a coupled configuration from family-scaled
// component curves under the optimal two-domain concurrent layout, with the
// coupler overhead implied by the calibrated 3v2 coupled curve.
func (m *Model) ProjectCoupled(atmResKm, ocnResKm int, cores float64) (ProjectedPoint, error) {
	atmBase := m.MustCurve(CurveATM3CPE)
	ocnBase := m.MustCurve(CurveOCN2CPE)
	atm := atmBase
	if p := atmPoints3D(atmResKm); p != atmBase.Points {
		atm = atmBase.ScaledTo(fmt.Sprintf("proj/atm%dkm", atmResKm), float64(atmResKm), p)
	}
	ocn := ocnBase
	if p := ocnPoints3D(ocnResKm); p != ocnBase.Points {
		ocn = ocnBase.ScaledTo(fmt.Sprintf("proj/ocn%dkm", ocnResKm), float64(ocnResKm), p)
	}
	cpl := ImpliedCouplerTime(m.MustCurve(CurveESM3v2), atmBase, ocnBase, math.Min(cores, 3.6e7))
	best, err := OptimalSplit(atm, ocn, cores, cpl)
	if err != nil {
		return ProjectedPoint{}, err
	}
	return ProjectedPoint{
		Label:    fmt.Sprintf("AP3ESM %dv%d at %.3g cores", atmResKm, ocnResKm, cores),
		Cores:    cores,
		SYPD:     best.SYPD,
		AtmShare: best.AtmFraction,
		Basis:    "family-scaled ATM3CPE + OCN2CPE, 3v2-implied coupler overhead",
	}, nil
}

// ProjectionLadder evaluates every Table 1 coupled pair at a core count —
// the SYPD ladder the paper reports only two rungs of (3v2 and 1v1).
func (m *Model) ProjectionLadder(cores float64) ([]ProjectedPoint, error) {
	out := make([]ProjectedPoint, 0, len(CoupledPairs))
	for _, p := range CoupledPairs {
		pt, err := m.ProjectCoupled(p.AtmResKm, p.OcnResKm, cores)
		if err != nil {
			return nil, err
		}
		pt.Label = p.Label
		out = append(out, pt)
	}
	return out, nil
}
