package perfmodel

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/grid"
	"repro/internal/machine"
)

// atmPoints3D returns the 3-D grid-point count of the GRIST configuration
// at the given nominal resolution (cells × 30 levels).
func atmPoints3D(resKm int) float64 {
	lvl, ok := grid.GristLevelForRes[resKm]
	if !ok {
		panic(fmt.Sprintf("perfmodel: no GRIST level for %d km", resKm))
	}
	cells, _, _ := grid.IcosCounts(lvl)
	return float64(cells) * 30
}

// ocnPoints3D returns the 3-D grid-point count of the LICOM configuration.
func ocnPoints3D(resKm int) float64 {
	c, err := grid.LICOMConfigForRes(resKm)
	if err != nil {
		panic(err)
	}
	return float64(c.NLon) * float64(c.NLat) * float64(c.NLevel)
}

// Model holds every calibrated curve, keyed by ID.
type Model struct {
	Sunway *machine.Machine
	ORISE  *machine.Machine
	curves map[string]*Curve
	order  []string
}

// Curve IDs. The anchor values below are the measurements reported in
// §7.2 and Table 2 of the paper.
const (
	CurveATM3MPE  = "sunway/atm3km/mpe"
	CurveATM3CPE  = "sunway/atm3km/cpe+opt"
	CurveATM1CPE  = "sunway/atm1km/cpe+opt"
	CurveOCN2MPE  = "sunway/ocn2km/mpe"
	CurveOCN2CPE  = "sunway/ocn2km/cpe+opt"
	CurveOCN1Orig = "orise/ocn1km/original"
	CurveOCN1OPT  = "orise/ocn1km/opt"
	CurveESM3v2   = "sunway/esm3v2/cpe+opt"
	CurveESM1v1   = "sunway/esm1v1/cpe+opt"
)

// NewModel constructs and calibrates the full curve set. The two
// CPE-accelerated component families additionally receive a collective-term
// calibration against the paper's weak-scaling endpoint efficiencies
// (Fig 8b: 87.85 % for the atmosphere, 96.57 % for the ocean).
func NewModel() (*Model, error) {
	m := &Model{
		Sunway: machine.SunwayOceanLight(),
		ORISE:  machine.ORISE(),
		curves: make(map[string]*Curve),
	}

	add := func(c *Curve) { m.curves[c.ID] = c; m.order = append(m.order, c.ID) }

	add(&Curve{
		ID: CurveATM3MPE, Label: "3 km ATM, MPE only",
		Machine: m.Sunway, Component: "ATM", Variant: "MPE",
		ResKm: 3, Points: atmPoints3D(3), Unit: "cores",
		Anchors: []Anchor{
			{32768, 0.0032}, {262144, 0.0063},
		},
	})
	add(&Curve{
		ID: CurveATM3CPE, Label: "3 km ATM, CPE + optimizations",
		Machine: m.Sunway, Component: "ATM", Variant: "CPE+OPT",
		ResKm: 3, Points: atmPoints3D(3), Unit: "cores",
		// §7.2 text: 0.36 → 1.16 SYPD from 2.13M to 17.04M cores (40.3 %
		// efficiency). The print table's intermediate values for this block
		// are inconsistent with its own endpoints and are omitted.
		Anchors: []Anchor{
			{2129920, 0.36}, {17039360, 1.16},
		},
	})
	add(&Curve{
		ID: CurveATM1CPE, Label: "1 km ATM, CPE + optimizations",
		Machine: m.Sunway, Component: "ATM", Variant: "CPE+OPT",
		ResKm: 1, Points: atmPoints3D(1), Unit: "cores",
		Anchors: []Anchor{
			{4259840, 0.20}, {34078270, 0.85},
		},
	})
	add(&Curve{
		ID: CurveOCN2MPE, Label: "2 km OCN, MPE only",
		Machine: m.Sunway, Component: "OCN", Variant: "MPE",
		ResKm: 2, Points: ocnPoints3D(2), Unit: "cores",
		Superlinear: true,
		Anchors: []Anchor{
			{19608, 0.0014}, {38550, 0.0033}, {76026, 0.0060}, {300000, 0.019},
		},
	})
	add(&Curve{
		ID: CurveOCN2CPE, Label: "2 km OCN, CPE + optimizations",
		Machine: m.Sunway, Component: "OCN", Variant: "CPE+OPT",
		ResKm: 2, Points: ocnPoints3D(2), Unit: "cores",
		Anchors: []Anchor{
			{1273415, 0.21}, {2505880, 0.42}, {4941755, 0.72}, {19513780, 1.59},
		},
	})
	add(&Curve{
		ID: CurveOCN1Orig, Label: "1 km OCN, ORISE (2024 Gordon Bell finalist record)",
		Machine: m.ORISE, Component: "OCN", Variant: "Original",
		ResKm: 1, Points: ocnPoints3D(1), Unit: "GPUs",
		Anchors: []Anchor{
			{4000, 0.77}, {8000, 1.25}, {12000, 1.49},
		},
	})
	add(&Curve{
		ID: CurveOCN1OPT, Label: "1 km OCN, ORISE, this work",
		Machine: m.ORISE, Component: "OCN", Variant: "OPT",
		ResKm: 1, Points: ocnPoints3D(1), Unit: "GPUs",
		Anchors: []Anchor{
			{4060, 0.92}, {8060, 1.45}, {11927, 1.76}, {16085, 1.98},
		},
	})
	add(&Curve{
		ID: CurveESM3v2, Label: "AP3ESM 3v2 coupled",
		Machine: m.Sunway, Component: "ESM", Variant: "CPE+OPT",
		ResKm: 3, Points: atmPoints3D(3) + ocnPoints3D(2), Unit: "cores",
		Anchors: []Anchor{
			{3403335, 0.18}, {4259840, 0.20}, {8519680, 0.40},
			{17039360, 0.71}, {36553140, 1.01},
		},
	})
	add(&Curve{
		ID: CurveESM1v1, Label: "AP3ESM 1v1 coupled",
		Machine: m.Sunway, Component: "ESM", Variant: "CPE+OPT",
		ResKm: 1, Points: atmPoints3D(1) + ocnPoints3D(1), Unit: "cores",
		LogLog: true,
		Anchors: []Anchor{
			{8745360, 0.14}, {17359160, 0.23}, {37172980, 0.54},
		},
	})

	for _, id := range m.order {
		if err := m.curves[id].Calibrate(); err != nil {
			return nil, err
		}
	}

	// Joint weak-scaling calibration (§7.3): tune the collective term of the
	// CPE component families so the family-scaled weak ladders end at the
	// paper's reported efficiencies.
	if err := m.calibrateWeak(CurveATM3CPE, ATMWeakLadder(), 0.8785); err != nil {
		return nil, err
	}
	if err := m.calibrateWeak(CurveOCN2CPE, OCNWeakLadder(), 0.9657); err != nil {
		return nil, err
	}
	return m, nil
}

// Curve returns the calibrated curve with the given ID.
func (m *Model) Curve(id string) (*Curve, error) {
	c, ok := m.curves[id]
	if !ok {
		return nil, fmt.Errorf("perfmodel: unknown curve %q", id)
	}
	return c, nil
}

// MustCurve is Curve that panics on unknown IDs.
func (m *Model) MustCurve(id string) *Curve {
	c, err := m.Curve(id)
	if err != nil {
		panic(err)
	}
	return c
}

// IDs returns all curve IDs in registration order.
func (m *Model) IDs() []string { return append([]string(nil), m.order...) }

// WeakRung is one configuration of a weak-scaling ladder (Fig 8b).
type WeakRung struct {
	ResKm  int
	Nodes  int
	Points float64
}

// ATMWeakLadder returns the atmosphere weak-scaling ladder of Fig 8b:
// 25/10/6/3 km on 683/2731/10922/43691 nodes.
func ATMWeakLadder() []WeakRung {
	return []WeakRung{
		{25, 683, atmPoints3D(25)},
		{10, 2731, atmPoints3D(10)},
		{6, 10922, atmPoints3D(6)},
		{3, 43691, atmPoints3D(3)},
	}
}

// OCNWeakLadder returns the ocean weak-scaling ladder of Fig 8b:
// 10/5/3/2 km on 2107/8212/18225/50035 nodes.
func OCNWeakLadder() []WeakRung {
	return []WeakRung{
		{10, 2107, ocnPoints3D(10)},
		{5, 8212, ocnPoints3D(5)},
		{3, 18225, ocnPoints3D(3)},
		{2, 50035, ocnPoints3D(2)},
	}
}

// weakEfficiency computes the end-to-end weak-scaling efficiency of a
// ladder under the family scaling of curve c: per-core sustained throughput
// (points simulated per core-second) of the last rung over the first.
func (m *Model) weakEfficiency(c *Curve, ladder []WeakRung) float64 {
	first := ladder[0]
	last := ladder[len(ladder)-1]
	thr := func(r WeakRung) float64 {
		cv := c
		if r.Points != c.Points {
			cv = c.ScaledTo(fmt.Sprintf("%s@%dkm", c.ID, r.ResKm), float64(r.ResKm), r.Points)
		}
		cores := float64(c.Machine.CoresForNodes(r.Nodes))
		return r.Points * cv.SYPD(cores) / cores
	}
	return thr(last) / thr(first)
}

// calibrateWeak bisects the collective coefficient of the named curve so
// the ladder's final weak efficiency matches the target, re-fitting the
// compute and halo terms to the strong anchors at each trial.
func (m *Model) calibrateWeak(id string, ladder []WeakRung, target float64) error {
	c := m.curves[id]
	eval := func(gamma float64) (float64, error) {
		if err := c.calibrateWithFixedColl(gamma); err != nil {
			return 0, err
		}
		return m.weakEfficiency(c, ladder), nil
	}
	e0, err := eval(0)
	if err != nil {
		return err
	}
	if e0 <= target {
		// Already at or below the target without any collective term:
		// keep the plain fit (residual degradation comes from halo scaling).
		return c.Calibrate()
	}
	// Find an upper bracket where efficiency falls below the target.
	lo, hi := 0.0, 1e-6
	for i := 0; i < 60; i++ {
		e, err := eval(hi)
		if err != nil {
			hi = (lo + hi) / 2 // collective term too large for anchors
			continue
		}
		if e < target {
			break
		}
		lo, hi = hi, hi*2
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		e, err := eval(mid)
		if err != nil || e < target {
			hi = mid
		} else {
			lo = mid
		}
	}
	_, err = eval(lo)
	return err
}

// WeakPoint is one computed rung of a weak-scaling series.
type WeakPoint struct {
	ResKm      int
	Nodes      int
	Cores      int
	SYPD       float64
	Efficiency float64 // relative to the first rung
}

// WeakSeries evaluates a ladder under the family scaling of the given curve.
func (m *Model) WeakSeries(id string, ladder []WeakRung) ([]WeakPoint, error) {
	c, err := m.Curve(id)
	if err != nil {
		return nil, err
	}
	out := make([]WeakPoint, len(ladder))
	var thr0 float64
	for i, r := range ladder {
		cv := c
		if r.Points != c.Points {
			cv = c.ScaledTo(fmt.Sprintf("%s@%dkm", c.ID, r.ResKm), float64(r.ResKm), r.Points)
		}
		cores := float64(c.Machine.CoresForNodes(r.Nodes))
		s := cv.SYPD(cores)
		thr := r.Points * s / cores
		if i == 0 {
			thr0 = thr
		}
		out[i] = WeakPoint{
			ResKm: r.ResKm, Nodes: r.Nodes, Cores: int(cores),
			SYPD: s, Efficiency: thr / thr0,
		}
	}
	return out, nil
}

// SpeedupRange returns the min and max CPE-over-MPE speedup across the node
// range where both variants were measured, evaluated at equal node counts
// (the paper reports 112–184× for the atmosphere and 84–150× for the ocean).
func (m *Model) SpeedupRange(mpeID, cpeID string, mpeRanks1Core bool) (lo, hi float64, err error) {
	mpe, err := m.Curve(mpeID)
	if err != nil {
		return 0, 0, err
	}
	cpe, err := m.Curve(cpeID)
	if err != nil {
		return 0, 0, err
	}
	// Node counts spanned by the MPE anchors. MPE-only runs use one core
	// per rank, RanksPerNode ranks per node.
	perNode := float64(mpe.Machine.RanksPerNode)
	if !mpeRanks1Core {
		perNode = float64(mpe.Machine.CoresPerNode)
	}
	nodesOf := func(a Anchor) float64 { return a.Res / perNode }
	cpeCoresPerNode := float64(cpe.Machine.CoresPerNode)

	lo, hi = math.Inf(1), math.Inf(-1)
	nodes := []float64{nodesOf(mpe.Anchors[0]), nodesOf(mpe.Anchors[len(mpe.Anchors)-1])}
	sort.Float64s(nodes)
	for _, n := range nodes {
		sp := cpe.SYPD(n*cpeCoresPerNode) / mpe.SYPD(n*perNode)
		if sp < lo {
			lo = sp
		}
		if sp > hi {
			hi = sp
		}
	}
	return lo, hi, nil
}
