package par

// Request represents an in-flight nonblocking operation.
type Request struct {
	done   chan struct{}
	data   any
	status Status
}

// Isend starts a nonblocking send. Because sends are buffered, the request
// completes immediately; it exists so ported code keeps the
// Isend/Irecv/Waitall structure of the original MPI implementation.
func Isend[T any](c *Comm, dst int, tag int, data T) *Request {
	Send(c, dst, tag, data)
	r := &Request{done: make(chan struct{})}
	close(r.done)
	return r
}

// Irecv starts a nonblocking receive from src with the given tag. The
// payload becomes available through Wait.
func Irecv[T any](c *Comm, src int, tag int) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		v, st := Recv[T](c, src, tag)
		r.data = v
		r.status = st
		close(r.done)
	}()
	return r
}

// Wait blocks until the request completes and returns its status.
func (r *Request) Wait() Status {
	<-r.done
	return r.status
}

// Test reports whether the request has completed without blocking.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Data returns the received payload after Wait; nil for sends.
func (r *Request) Data() any {
	<-r.done
	return r.data
}

// WaitAll blocks until every request completes.
func WaitAll(reqs []*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}
