package par

import (
	"fmt"
	"sync"
	"testing"
)

// mockObserver collects forwarded counts, concurrency-safe because every
// rank of a world shares one in the forwarding test.
type mockObserver struct {
	mu     sync.Mutex
	counts map[string]int64
}

func newMockObserver() *mockObserver { return &mockObserver{counts: make(map[string]int64)} }

func (m *mockObserver) AddCount(name string, delta int64) {
	m.mu.Lock()
	m.counts[name] += delta
	m.mu.Unlock()
}

func (m *mockObserver) get(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[name]
}

func TestP2PTrafficCounters(t *testing.T) {
	cases := []struct {
		ranks   int
		payload int // float64 elements per message
	}{
		{ranks: 2, payload: 16},
		{ranks: 4, payload: 128},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%dranks_%delems", tc.ranks, tc.payload), func(t *testing.T) {
			Run(tc.ranks, func(c *Comm) {
				// Ring: every rank sends one payload right, receives one
				// from the left.
				next := (c.Rank() + 1) % c.Size()
				prev := (c.Rank() - 1 + c.Size()) % c.Size()
				Send(c, next, 1, make([]float64, tc.payload))
				Recv[[]float64](c, prev, 1)

				st := c.Stats()
				wantBytes := int64(8 * tc.payload)
				if got := st.SendMsgs.Load(); got != 1 {
					t.Errorf("rank %d: SendMsgs = %d, want 1", c.Rank(), got)
				}
				if got := st.SendBytes.Load(); got != wantBytes {
					t.Errorf("rank %d: SendBytes = %d, want %d", c.Rank(), got, wantBytes)
				}
				if got := st.RecvMsgs.Load(); got != 1 {
					t.Errorf("rank %d: RecvMsgs = %d, want 1", c.Rank(), got)
				}
				if got := st.RecvBytes.Load(); got != wantBytes {
					t.Errorf("rank %d: RecvBytes = %d, want %d", c.Rank(), got, wantBytes)
				}
			})
		})
	}
}

func TestCollectiveTrafficCounters(t *testing.T) {
	for _, ranks := range []int{2, 4} {
		ranks := ranks
		t.Run(fmt.Sprintf("%dranks", ranks), func(t *testing.T) {
			Run(ranks, func(c *Comm) {
				c.Allreduce(1, OpSum)
				c.AllreduceSlice([]float64{1, 2, 3}, OpMax)
				Bcast(c, 0, make([]float64, 8))
				Gather(c, 0, []float64{1})
				Allgather(c, []float64{2})

				st := c.Stats()
				if got := st.Collectives.Load(); got != 5 {
					t.Errorf("rank %d: Collectives = %d, want 5", c.Rank(), got)
				}
				// Contributed bytes: allreduce 8, slice 24, bcast 64 on root
				// only (others contribute nil), gather 8, allgather 8.
				want := int64(8 + 24 + 8 + 8)
				if c.Rank() == 0 {
					want += 64
				}
				if got := st.CollectiveBytes.Load(); got != want {
					t.Errorf("rank %d: CollectiveBytes = %d, want %d", c.Rank(), got, want)
				}
			})
		})
	}
}

func TestSplitGetsFreshCountersAndInheritsObserver(t *testing.T) {
	obs := newMockObserver()
	Run(4, func(c *Comm) {
		c.SetObserver(obs)
		sub := c.Split(c.Rank()%2, c.Rank())
		if sub.Stats() == c.Stats() {
			t.Errorf("rank %d: Split shares parent CommStats", c.Rank())
		}
		peer := 1 - sub.Rank()
		Send(sub, peer, 9, []float64{1, 2})
		Recv[[]float64](sub, peer, 9)
		if got := sub.Stats().SendBytes.Load(); got != 16 {
			t.Errorf("rank %d: sub SendBytes = %d, want 16", c.Rank(), got)
		}
		if got := c.Stats().SendMsgs.Load(); got != 0 {
			t.Errorf("rank %d: parent counted sub traffic (%d msgs)", c.Rank(), got)
		}
	})
	// 4 ranks x 1 message each, forwarded through the inherited observer.
	if got := obs.get("par.send.msgs"); got != 4 {
		t.Errorf("forwarded par.send.msgs = %d, want 4", got)
	}
	if got := obs.get("par.send.bytes"); got != 64 {
		t.Errorf("forwarded par.send.bytes = %d, want 64", got)
	}
}

func TestObserverForwarding(t *testing.T) {
	obs := newMockObserver()
	Run(2, func(c *Comm) {
		c.SetObserver(obs)
		c.Allreduce(float64(c.Rank()), OpSum)
		if c.Rank() == 0 {
			Send(c, 1, 3, []float64{1, 2, 3})
		} else {
			Recv[[]float64](c, 0, 3)
		}
	})
	if got := obs.get("par.collective.allreduce"); got != 2 {
		t.Errorf("par.collective.allreduce = %d, want 2", got)
	}
	if got := obs.get("par.collective.calls"); got != 2 {
		t.Errorf("par.collective.calls = %d, want 2", got)
	}
	if got := obs.get("par.send.bytes"); got != 24 {
		t.Errorf("par.send.bytes = %d, want 24", got)
	}
	if got := obs.get("par.recv.bytes"); got != 24 {
		t.Errorf("par.recv.bytes = %d, want 24", got)
	}
}

func TestPayloadBytes(t *testing.T) {
	type block struct {
		Name string
		Data []float64
	}
	cases := []struct {
		name string
		v    any
		want int64
	}{
		{"nil", nil, 0},
		{"f64slice", make([]float64, 10), 80},
		{"nested", [][]float64{{1, 2}, {3}}, 24},
		{"f32slice", make([]float32, 4), 16},
		{"bytes", []byte("abc"), 3},
		{"string", "hello", 5},
		{"scalar", 3.14, 8},
		{"bool", true, 1},
		{"struct", block{Name: "ps", Data: []float64{1, 2, 3}}, 26},
		{"ptr", &block{Name: "x", Data: []float64{1}}, 9},
		{"intslice", []int{1, 2}, 16},
	}
	for _, tc := range cases {
		if got := payloadBytes(tc.v); got != tc.want {
			t.Errorf("%s: payloadBytes = %d, want %d", tc.name, got, tc.want)
		}
	}
}
