package par

import (
	"reflect"
	"sync/atomic"
)

// Observer receives traffic counts from the runtime. It is the structural
// subset of obs.Observer the runtime consumes, declared here so par does
// not import obs (obs sits above par: its Reduce step uses collectives).
type Observer interface {
	AddCount(name string, delta int64)
}

// CommStats are one rank's traffic counters for one communicator —
// point-to-point messages and bytes, collective invocations and contributed
// bytes, and barrier entries (§5.2.4's measured quantities). All fields are
// atomic, so the hot path is a single uncontended add.
type CommStats struct {
	SendMsgs        atomic.Int64
	SendBytes       atomic.Int64
	RecvMsgs        atomic.Int64
	RecvBytes       atomic.Int64
	Collectives     atomic.Int64
	CollectiveBytes atomic.Int64
	// Barriers counts Barrier entries, including the barrier every
	// collective takes internally to protect its exchange slots.
	Barriers atomic.Int64
}

// Stats returns this rank's counters for this communicator. Each rank of
// each communicator (including Split products) has its own CommStats.
func (c *Comm) Stats() *CommStats { return c.stats }

// SetObserver forwards this rank's traffic counts to o as they happen
// (counter names "par.send.*", "par.recv.*", "par.collective.*").
// Communicators produced by Split inherit the observer. A nil observer
// disables forwarding; the atomic CommStats are always maintained.
func (c *Comm) SetObserver(o Observer) { c.obs = o }

// countSend records one outgoing point-to-point message.
func (c *Comm) countSend(payload any) {
	n := payloadBytes(payload)
	c.stats.SendMsgs.Add(1)
	c.stats.SendBytes.Add(n)
	if c.obs != nil {
		c.obs.AddCount("par.send.msgs", 1)
		c.obs.AddCount("par.send.bytes", n)
	}
}

// countP2PF64 records one SendF64/RecvF64 message of n float64 values with
// the exact byte accounting of the generic path but no payloadBytes call
// (whose `any` parameter would re-introduce the boxing the typed path
// removes).
func (c *Comm) countP2PF64(msgs, bytes *atomic.Int64, msgName, byteName string, n int) {
	msgs.Add(1)
	bytes.Add(int64(8 * n))
	if c.obs != nil {
		c.obs.AddCount(msgName, 1)
		c.obs.AddCount(byteName, int64(8*n))
	}
}

// countP2PBytes is countP2PF64 with an exact byte count, for payloads whose
// wire size is not 8·len — the group-scaled compressed messages, whose size
// mixes 4-byte values with 8-byte group scales.
func (c *Comm) countP2PBytes(msgs, bytes *atomic.Int64, msgName, byteName string, n int64) {
	msgs.Add(1)
	bytes.Add(n)
	if c.obs != nil {
		c.obs.AddCount(msgName, 1)
		c.obs.AddCount(byteName, n)
	}
}

// countRecv records one delivered point-to-point message.
func (c *Comm) countRecv(payload any) {
	n := payloadBytes(payload)
	c.stats.RecvMsgs.Add(1)
	c.stats.RecvBytes.Add(n)
	if c.obs != nil {
		c.obs.AddCount("par.recv.msgs", 1)
		c.obs.AddCount("par.recv.bytes", n)
	}
}

// countCollective records one collective invocation and this rank's
// contributed payload.
func (c *Comm) countCollective(op string, payload any) {
	n := payloadBytes(payload)
	c.stats.Collectives.Add(1)
	c.stats.CollectiveBytes.Add(n)
	if c.obs != nil {
		c.obs.AddCount("par.collective.calls", 1)
		c.obs.AddCount("par.collective.bytes", n)
		c.obs.AddCount("par.collective."+op, 1)
	}
}

// payloadBytes estimates the wire size of a message payload. The common
// payload types of the model (float64 slices and blocks) are sized exactly
// on a fast path; everything else is walked reflectively, which only
// happens for the coupler's and I/O layer's small struct payloads.
func payloadBytes(v any) int64 {
	switch x := v.(type) {
	case nil:
		return 0
	case []float64:
		return int64(8 * len(x))
	case [][]float64:
		var n int64
		for _, s := range x {
			n += int64(8 * len(s))
		}
		return n
	case []float32:
		return int64(4 * len(x))
	case []int:
		return int64(8 * len(x))
	case []int64:
		return int64(8 * len(x))
	case []int32:
		return int64(4 * len(x))
	case []byte:
		return int64(len(x))
	case string:
		return int64(len(x))
	case []string:
		var n int64
		for _, s := range x {
			n += int64(len(s))
		}
		return n
	case bool:
		return 1
	case float64, float32, int, int64, int32, uint64, uint32:
		return 8
	default:
		return reflectBytes(reflect.ValueOf(v), 0)
	}
}

// reflectBytes deep-sizes uncommon payloads, bounded in depth so cyclic or
// pathological values cannot hang the accounting.
func reflectBytes(rv reflect.Value, depth int) int64 {
	if depth > 6 || !rv.IsValid() {
		return 8
	}
	switch rv.Kind() {
	case reflect.Slice, reflect.Array:
		if rv.Kind() == reflect.Slice && rv.IsNil() {
			return 0
		}
		n := rv.Len()
		if n == 0 {
			return 0
		}
		// Fixed-size element kinds need no walk.
		switch rv.Type().Elem().Kind() {
		case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
			reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
			return int64(n) * int64(rv.Type().Elem().Size())
		}
		var total int64
		for i := 0; i < n; i++ {
			total += reflectBytes(rv.Index(i), depth+1)
		}
		return total
	case reflect.String:
		return int64(rv.Len())
	case reflect.Struct:
		var total int64
		for i := 0; i < rv.NumField(); i++ {
			total += reflectBytes(rv.Field(i), depth+1)
		}
		return total
	case reflect.Pointer, reflect.Interface:
		if rv.IsNil() {
			return 0
		}
		return reflectBytes(rv.Elem(), depth+1)
	case reflect.Map:
		var total int64
		it := rv.MapRange()
		for it.Next() {
			total += reflectBytes(it.Key(), depth+1)
			total += reflectBytes(it.Value(), depth+1)
		}
		return total
	default:
		return int64(rv.Type().Size())
	}
}
